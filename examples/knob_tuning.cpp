/// Knob-tuning advisor: the motivating scenario of the paper's introduction.
/// A tuned cost model that understands the *environment* can rank candidate
/// knob configurations for a workload without executing it under each one.
///
/// This example trains QCFE(qpp) across a grid of environments, then uses
/// the model to score three candidate configurations for a reporting
/// workload — and verifies the ranking against ground-truth execution.
///
///   ./build/examples/knob_tuning

#include <iostream>
#include <limits>

#include "core/pipeline.h"
#include "sql/data_abstract.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "workload/benchmark.h"
#include "workload/collector.h"

using namespace qcfe;

namespace {

/// Mean predicted latency of a workload under one environment: plan every
/// query under the candidate knobs, then score the whole workload through
/// the pipeline's batched serving path.
double ScoreEnvironment(const Pipeline& pipeline, Database* db,
                        const std::vector<QuerySpec>& workload,
                        const Environment& env) {
  std::vector<std::unique_ptr<PlanNode>> plans;
  std::vector<PlanSample> batch;
  size_t unplannable = 0;
  for (const auto& spec : workload) {
    auto plan = db->Plan(spec, env.knobs);
    if (!plan.ok()) {
      ++unplannable;
      continue;
    }
    plans.push_back(std::move(plan.value()));
    batch.push_back({plans.back().get(), env.id, 0.0});
  }
  if (unplannable > 0) {
    std::cerr << "warning: env " << env.id << ": " << unplannable << "/"
              << workload.size() << " queries unplannable, scoring the rest\n";
  }
  auto preds = pipeline.PredictBatch(batch);
  if (!preds.ok() || preds->empty()) {
    // An unscorable candidate must never look like the cheapest one.
    return std::numeric_limits<double>::infinity();
  }
  return Mean(*preds);
}

/// Ground-truth mean latency (what an actual deployment would measure).
double MeasureEnvironment(Database* db, const std::vector<QuerySpec>& workload,
                          const Environment& env) {
  Rng noise(17);
  std::vector<double> costs;
  for (const auto& spec : workload) {
    auto run = db->Run(spec, env, &noise);
    if (run.ok()) costs.push_back(run->total_ms);
  }
  return Mean(costs);
}

}  // namespace

int main() {
  auto bench = MakeBenchmark("tpch");
  auto db = (*bench)->BuildDatabase(0.06, 11);
  auto templates = (*bench)->Templates();

  // Train across a diverse environment grid. Candidate configurations must
  // be part of the snapshot store, so include them in the training grid.
  std::vector<Environment> envs =
      EnvironmentSampler::Sample(6, HardwareProfile::H1(), 23);
  // Three hand-crafted candidates an admin might consider:
  Environment small_mem = envs[0];
  small_mem.id = 3;
  small_mem.knobs = Knobs{};
  small_mem.knobs.shared_buffers_mb = 16;
  small_mem.knobs.work_mem_kb = 256;
  Environment big_mem = envs[0];
  big_mem.id = 4;
  big_mem.knobs = Knobs{};
  big_mem.knobs.shared_buffers_mb = 1024;
  big_mem.knobs.work_mem_kb = 65536;
  Environment jit_on = envs[0];
  jit_on.id = 5;
  jit_on.knobs = Knobs{};
  jit_on.knobs.jit = true;
  envs[3] = small_mem;
  envs[4] = big_mem;
  envs[5] = jit_on;

  QueryCollector collector(db.get(), &envs);
  auto corpus = collector.Collect(templates, 700, 31);
  if (!corpus.ok()) {
    std::cerr << corpus.status().ToString() << "\n";
    return 1;
  }
  std::vector<PlanSample> train;
  for (const auto& q : corpus->queries) {
    train.push_back({q.plan.get(), q.env_id, q.total_ms});
  }

  PipelineConfig cfg;
  cfg.estimator = "qppnet";
  cfg.train.epochs = 20;
  auto model = Pipeline::Fit(db.get(), &envs, &templates, cfg, train);
  if (!model.ok()) {
    std::cerr << model.status().ToString() << "\n";
    return 1;
  }

  // The reporting workload to tune for: a fixed set of analytical queries.
  DataAbstract abstract(db->catalog());
  Rng rng(37);
  std::vector<QuerySpec> workload;
  for (int i = 0; i < 30; ++i) {
    auto spec = templates[static_cast<size_t>(i) % templates.size()]
                    .Instantiate(abstract, &rng);
    if (spec.ok()) {
      workload.push_back(*spec);
    } else {
      std::cerr << "warning: skipping template " << (i % templates.size())
                << ": " << spec.status().ToString() << "\n";
    }
  }

  std::cout << "candidate ranking for the reporting workload:\n";
  struct Row {
    std::string name;
    double predicted, measured;
  };
  std::vector<Row> rows;
  for (const Environment* env : {&small_mem, &big_mem, &jit_on}) {
    Row row;
    row.name = env->knobs.ToString().substr(0, 56);
    row.predicted = ScoreEnvironment(**model, db.get(), workload, *env);
    row.measured = MeasureEnvironment(db.get(), workload, *env);
    rows.push_back(row);
    std::cout << "  cfg[" << env->id << "] predicted "
              << FormatDouble(row.predicted, 2) << " ms/query, measured "
              << FormatDouble(row.measured, 2) << " ms/query  (" << row.name
              << "...)\n";
  }

  // Did the model rank the candidates like ground truth?
  auto best_pred = std::min_element(rows.begin(), rows.end(),
                                    [](const Row& a, const Row& b) {
                                      return a.predicted < b.predicted;
                                    });
  auto best_real = std::min_element(rows.begin(), rows.end(),
                                    [](const Row& a, const Row& b) {
                                      return a.measured < b.measured;
                                    });
  std::cout << "model's pick:  " << best_pred->name << "\n"
            << "actual best :  " << best_real->name << "\n"
            << (best_pred == best_real ? "=> correct recommendation\n"
                                       : "=> mismatch (model needs more "
                                         "training data)\n");
  return 0;
}
