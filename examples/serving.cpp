/// Async serving: fit a QCFE pipeline, stand up the micro-batching front
/// end, and serve single-plan requests from many concurrent caller threads.
///
///   - Pipeline::ServeAsync       — AsyncServer over the fitted estimator
///   - AsyncServer::Submit        — one (plan, env) request -> future
///   - AsyncServeConfig           — batch-full size, deadline, admission
///   - AsyncServeStats            — flush counters / occupancy
///   - FakeClock                  — deterministic deadline flush, no sleeps
///
///   ./build/examples/serving
///
/// The front end coalesces concurrent singleton submissions into
/// micro-batches for the batched serving path (request dedup + matrix
/// batching), flushing on batch-full or deadline — results are
/// bit-identical to calling PredictMs yourself, just cheaper per request.

#include <future>
#include <iostream>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "serve/async_server.h"
#include "util/clock.h"
#include "util/string_util.h"
#include "workload/benchmark.h"
#include "workload/collector.h"

using namespace qcfe;

int main() {
  // 1. Database, environments, labeled corpus (see quickstart for details).
  auto bench = MakeBenchmark("sysbench");
  if (!bench.ok()) {
    std::cerr << bench.status().ToString() << "\n";
    return 1;
  }
  std::unique_ptr<Database> db = (*bench)->BuildDatabase(/*scale_factor=*/0.1,
                                                         /*seed=*/11);
  std::vector<Environment> envs =
      EnvironmentSampler::Sample(3, HardwareProfile::H1(), 13);
  std::vector<QueryTemplate> templates = (*bench)->Templates();
  QueryCollector collector(db.get(), &envs);
  auto corpus = collector.Collect(templates, /*count=*/300, /*seed=*/17);
  if (!corpus.ok()) {
    std::cerr << corpus.status().ToString() << "\n";
    return 1;
  }
  std::vector<PlanSample> train, test;
  TrainTestSplit split = SplitIndices(corpus->queries.size(), 0.8, 3);
  for (size_t i : split.train) {
    const LabeledQuery& q = corpus->queries[i];
    train.push_back({q.plan.get(), q.env_id, q.total_ms});
  }
  for (size_t i : split.test) {
    const LabeledQuery& q = corpus->queries[i];
    test.push_back({q.plan.get(), q.env_id, q.total_ms});
  }

  // 2. Fit the pipeline; the async_serve knobs ride in the same config.
  PipelineConfig cfg;
  cfg.estimator = "qppnet";
  cfg.train.epochs = 10;
  cfg.async_serve.max_batch = 32;        // flush when 32 requests coalesce
  cfg.async_serve.max_delay_micros = 500;  // ...or 0.5 ms after the oldest
  cfg.async_serve.max_queue = 4096;      // admission control bound
  auto pipeline = Pipeline::Fit(db.get(), &envs, &templates, cfg, train);
  if (!pipeline.ok()) {
    std::cerr << pipeline.status().ToString() << "\n";
    return 1;
  }
  std::cout << (*pipeline)->Explain();

  // 3. Serve: four caller threads submit single plans concurrently; the
  //    server coalesces them into micro-batches behind the scenes. Every
  //    future's value is bit-identical to a direct PredictMs call.
  {
    std::unique_ptr<AsyncServer> server = (*pipeline)->ServeAsync();
    constexpr size_t kCallers = 4;
    std::vector<double> sums(kCallers, 0.0);
    std::vector<size_t> failures(kCallers, 0);
    std::vector<std::thread> callers;
    for (size_t c = 0; c < kCallers; ++c) {
      callers.emplace_back([&, c] {
        std::vector<std::future<Result<double>>> futures;
        for (size_t i = c; i < test.size(); i += kCallers) {
          futures.push_back(server->Submit(*test[i].plan, test[i].env_id));
        }
        for (auto& f : futures) {
          Result<double> r = f.get();
          if (r.ok()) {
            sums[c] += *r;
          } else {
            ++failures[c];
          }
        }
      });
    }
    for (std::thread& t : callers) t.join();
    size_t failed = 0;
    for (size_t n : failures) failed += n;
    if (failed > 0) {
      std::cerr << "warning: " << failed << " async predictions failed\n";
    }
    AsyncServeStats stats = server->stats();
    std::cout << "\nasync serving: " << stats.served << " requests in "
              << stats.batches_flushed << " micro-batches (mean occupancy "
              << FormatDouble(stats.mean_occupancy, 1) << ", "
              << stats.full_flushes << " full / " << stats.deadline_flushes
              << " deadline / " << stats.drain_flushes << " drain flushes)\n";
    double total = 0.0;
    for (double s : sums) total += s;
    std::cout << "sum of predictions: " << FormatDouble(total, 2)
              << " ms (callers saw bit-identical PredictMs values)\n";
  }  // ~AsyncServer drains and joins.

  // 4. Deterministic flush timing with an injected clock: time only moves
  //    when the test (here: this example) advances it, so the deadline
  //    flush below is forced, not raced. This is how the async test suite
  //    pins flush behaviour without sleeps.
  FakeClock clock;
  std::unique_ptr<AsyncServer> server = (*pipeline)->ServeAsync(&clock);
  auto early = server->Submit(*test[0].plan, test[0].env_id);
  std::cout << "\nfake clock: submitted 1 request; batches_flushed="
            << server->stats().batches_flushed << " (deadline not reached)\n";
  clock.Advance(cfg.async_serve.max_delay_micros);
  Result<double> r = early.get();
  std::cout << "advanced " << cfg.async_serve.max_delay_micros
            << " us: deadline flush served the partial batch -> "
            << (r.ok() ? FormatDouble(*r, 3) + " ms" : r.status().ToString())
            << "\n";
  server->Shutdown();
  return 0;
}
