/// Hardware migration: reuse a trained cost model on a new machine by
/// swapping the feature snapshot (paper Section V-E). Train a QCFE(qpp)
/// basis on hardware h1, compute fresh snapshots for environments on h2,
/// and warm-start with a short retrain — comparing against training from
/// scratch on h2.
///
///   ./build/examples/transfer_learning

#include <iostream>

#include "core/pipeline.h"
#include "harness/evaluate.h"
#include "util/string_util.h"
#include "workload/benchmark.h"
#include "workload/collector.h"

using namespace qcfe;

int main() {
  auto bench = MakeBenchmark("sysbench");
  auto db = (*bench)->BuildDatabase(0.05, 61);
  auto templates = (*bench)->Templates();

  // Hardware h1: the machine the basis model is trained on.
  std::vector<Environment> h1 =
      EnvironmentSampler::Sample(4, HardwareProfile::H1(), 67);
  QueryCollector h1_collector(db.get(), &h1);
  auto h1_corpus = h1_collector.Collect(templates, 600, 71);
  if (!h1_corpus.ok()) {
    std::cerr << h1_corpus.status().ToString() << "\n";
    return 1;
  }
  std::vector<PlanSample> h1_train;
  for (const auto& q : h1_corpus->queries) {
    h1_train.push_back({q.plan.get(), q.env_id, q.total_ms});
  }

  PipelineConfig cfg;
  cfg.estimator = "qppnet";
  cfg.train.epochs = 24;
  auto basis = Pipeline::Fit(db.get(), &h1, &templates, cfg, h1_train);
  if (!basis.ok()) {
    std::cerr << basis.status().ToString() << "\n";
    return 1;
  }
  std::cout << "basis model trained on h1 in "
            << FormatDouble((*basis)->train_stats().train_seconds, 2)
            << " s\n";

  // Hardware h2: same data, faster machine, new knob grid (fresh env ids).
  std::vector<Environment> h2 =
      EnvironmentSampler::Sample(4, HardwareProfile::H2(), 73);
  for (auto& e : h2) e.id += 100;
  QueryCollector h2_collector(db.get(), &h2);
  auto h2_corpus = h2_collector.Collect(templates, 400, 79);
  if (!h2_corpus.ok()) {
    std::cerr << h2_corpus.status().ToString() << "\n";
    return 1;
  }
  std::vector<PlanSample> h2_train, h2_test;
  for (size_t i = 0; i < h2_corpus->queries.size(); ++i) {
    const LabeledQuery& q = h2_corpus->queries[i];
    (i < 320 ? h2_train : h2_test)
        .push_back({q.plan.get(), q.env_id, q.total_ms});
  }

  // Transfer: compute h2 snapshots (cheap, simplified templates) into the
  // basis pipeline's snapshot store, then retrain briefly.
  Status st = (*basis)->ExtendSnapshots(h2, /*from_templates=*/true,
                                        /*scale=*/2, /*seed=*/83);
  // kAlreadyExists = deliberate re-collection of a cached environment; the
  // store was refit, so transfer proceeds.
  if (!st.ok() && st.code() != StatusCode::kAlreadyExists) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  TrainConfig retrain;
  retrain.epochs = 6;  // 25% of the basis budget
  TrainStats transfer_stats;
  st = (*basis)->Retrain(h2_train, retrain, &transfer_stats);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  EvalResult transfer_eval = EvaluateModel(**basis, h2_test);

  // Baseline: train from scratch on h2 with the full budget.
  auto direct = Pipeline::Fit(db.get(), &h2, &templates, cfg, h2_train);
  if (!direct.ok()) {
    std::cerr << direct.status().ToString() << "\n";
    return 1;
  }
  EvalResult direct_eval = EvaluateModel(**direct, h2_test);

  std::cout << "direct on h2   : median q-error "
            << FormatDouble(direct_eval.summary.median_qerror, 3) << " (mean "
            << FormatDouble(direct_eval.summary.mean_qerror, 3) << ") after "
            << FormatDouble((*direct)->train_stats().train_seconds, 2)
            << " s of training\n";
  std::cout << "transfer to h2 : median q-error "
            << FormatDouble(transfer_eval.summary.median_qerror, 3) << " (mean "
            << FormatDouble(transfer_eval.summary.mean_qerror, 3) << ") after "
            << FormatDouble(transfer_stats.train_seconds, 2)
            << " s of retraining (snapshot swap)\n";
  std::cout << "=> the snapshot carries the environment; the plan-structure "
               "weights transfer across hardware\n";
  return 0;
}
