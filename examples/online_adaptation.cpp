/// The full online adaptation loop: serve, observe real execution times,
/// detect drift, retrain in the background, and hot-swap the fixed model —
/// no restarts, no sleeps, no manual retrain button.
///
///   - AsyncServer::ReportObserved — feed (plan, predicted, actual) back
///   - adapt::ObservationSink      — rolling q-error windows + label buffer
///   - adapt::DriftDetector        — mean-ratio vs fit-time baseline and a
///                                   Page–Hinkley change-point test
///   - adapt::AdaptationController — observe -> drift-detect -> retrain ->
///                                   Save -> LoadAndSwap, in the background
///   - AdaptationStats             — typed counters for every cycle outcome
///
///   ./build/examples/online_adaptation
///
/// The trainer pipeline is dedicated to the controller and never published:
/// serving only ever sees fresh generations that LoadAndSwap loads from the
/// artifact, so a failed retrain/save/swap is a non-event for traffic.

#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "adapt/adaptation_controller.h"
#include "core/pipeline.h"
#include "serve/async_server.h"
#include "serve/model_swap.h"
#include "util/fs.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "workload/benchmark.h"
#include "workload/collector.h"

using namespace qcfe;

namespace {

/// Serves `samples` in full micro-batches and reports each reply together
/// with the "measured" execution time: the collected label scaled by
/// `slowdown` (1.0 = the world the model was fitted on). Returns the mean
/// q-error of the served predictions against those measurements.
double ServeAndObserve(AsyncServer* server,
                       const std::vector<PlanSample>& samples,
                       double slowdown) {
  std::vector<std::future<Result<double>>> futures;
  futures.reserve(samples.size());
  for (const PlanSample& s : samples) {
    futures.push_back(server->Submit(*s.plan, s.env_id));
  }
  std::vector<double> qerrors;
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<double> r = futures[i].get();
    if (!r.ok()) continue;
    const double actual_ms = slowdown * samples[i].label_ms;
    server->ReportObserved(*samples[i].plan, samples[i].env_id, *r, actual_ms);
    qerrors.push_back(QError(actual_ms, *r));
  }
  return Mean(qerrors);
}

}  // namespace

int main() {
  // 1. Database, environments, labeled corpus (see quickstart for details).
  auto bench = MakeBenchmark("sysbench");
  if (!bench.ok()) {
    std::cerr << bench.status().ToString() << "\n";
    return 1;
  }
  std::unique_ptr<Database> db = (*bench)->BuildDatabase(/*scale_factor=*/0.1,
                                                         /*seed=*/11);
  std::vector<Environment> envs =
      EnvironmentSampler::Sample(2, HardwareProfile::H1(), 13);
  std::vector<QueryTemplate> templates = (*bench)->Templates();
  QueryCollector collector(db.get(), &envs);
  auto corpus = collector.Collect(templates, /*count=*/240, /*seed=*/17);
  if (!corpus.ok()) {
    std::cerr << corpus.status().ToString() << "\n";
    return 1;
  }
  std::vector<PlanSample> train;
  for (const LabeledQuery& q : corpus->queries) {
    train.push_back({q.plan.get(), q.env_id, q.total_ms});
  }

  // 2. Fit the trainer pipeline and publish generation 1 from its artifact.
  //    The trainer itself stays behind the controller; only artifact loads
  //    are ever served.
  PipelineConfig cfg;
  cfg.estimator = "qppnet";
  cfg.train.epochs = 6;
  auto fitted = Pipeline::Fit(db.get(), &envs, &templates, cfg, train);
  if (!fitted.ok()) {
    std::cerr << fitted.status().ToString() << "\n";
    return 1;
  }
  std::unique_ptr<Pipeline> trainer = std::move(fitted.value());
  const std::string path = "/tmp/qcfe_online_adaptation.qcfa";
  if (Status s = trainer->Save(path); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }

  SwappableModel models;
  AsyncServeConfig serve_cfg;
  serve_cfg.max_batch = 8;  // traffic below arrives in full batches
  std::unique_ptr<AsyncServer> server = Pipeline::ServeAsync(&models, serve_cfg);
  auto v1 = LoadAndSwap(db.get(), &envs, &templates, path, {}, &models,
                        server.get());
  if (!v1.ok()) {
    std::cerr << v1.status().ToString() << "\n";
    return 1;
  }
  std::shared_ptr<const Pipeline> generation1 = *v1;
  std::cout << "serving at model_version=" << models.version() << "\n";

  // 3. Close the loop. The controller seeds its drift baselines from the
  //    trainer's fit-time per-environment mean q-errors (persisted in the
  //    artifact), evaluates each environment's rolling window every 8th
  //    observation, and on a trip retrains on the buffered observed
  //    executions, saves, and republishes — all on its own worker thread.
  adapt::AdaptationConfig acfg;
  // A tight label buffer keeps retraining focused on the *recent* world:
  // by the time the detector trips, the healthy-phase labels have mostly
  // been overwritten by drifted measurements.
  acfg.window.label_capacity = 48;
  acfg.drift.min_samples = 16;
  acfg.evaluate_every = 8;
  acfg.min_retrain_samples = 32;
  // The retrain corpus is tiny (the label buffer), so each cycle can afford
  // a real epoch budget and still finish in well under a second.
  acfg.retrain.epochs = 30;
  acfg.artifact_path = path;
  adapt::AdaptationController controller(trainer.get(), &models, acfg,
                                         server.get());
  server->set_observation_listener(&controller);

  // 4. Healthy traffic: observed times match what the model was fitted on.
  //    Windows hover at the baseline; the detector stays quiet.
  std::vector<PlanSample> traffic(train.begin(), train.begin() + 64);
  double q_healthy = ServeAndObserve(server.get(), traffic, /*slowdown=*/1.0);
  adapt::AdaptationStats stats = controller.stats();
  std::cout << "healthy phase: mean q-error " << FormatDouble(q_healthy, 3)
            << ", " << stats.windows_evaluated << " windows evaluated, "
            << stats.drift_trips << " drift trips\n";

  // 5. The deployment changes under the model: every query now runs 4x
  //    slower (think: buffer pool shrank, noisy neighbor moved in). Keep
  //    serving the same plans and reporting the new measurements until the
  //    detector trips, then wait for the background cycle to finish.
  double q_drifted = 0.0;
  for (size_t round = 0; round < 40 && controller.stats().drift_trips == 0;
       ++round) {
    std::vector<PlanSample> group(train.begin() + (8 * round) % 128,
                                  train.begin() + (8 * round) % 128 + 8);
    q_drifted = ServeAndObserve(server.get(), group, /*slowdown=*/4.0);
  }
  controller.WaitForIdle();
  stats = controller.stats();
  std::cout << "drifted phase: mean q-error rose to "
            << FormatDouble(q_drifted, 3) << "; " << stats.drift_trips
            << " trip(s), " << stats.swaps_published
            << " new version(s) published -> model_version="
            << models.version() << "\n";

  // The background cycle may have retrained on a buffer still partly full
  // of healthy-phase labels (the trip fires as early as possible). Keep
  // reporting the new world until the buffer holds only drifted
  // measurements, then use the operator's "retrain right now" button —
  // RunCycleNow runs a full cycle synchronously on this thread.
  for (size_t round = 0; round < 6; ++round) {
    std::vector<PlanSample> group(train.begin() + 8 * round,
                                  train.begin() + 8 * round + 8);
    ServeAndObserve(server.get(), group, /*slowdown=*/4.0);
  }
  if (Status s = controller.RunCycleNow(); !s.ok()) {
    std::cerr << "forced cycle failed: " << s.ToString() << "\n";
    return 1;
  }
  std::cout << "forced cycle on a fully drifted buffer -> model_version="
            << models.version() << "\n";

  // 6. The published generation was retrained on the observed (4x) world:
  //    compare it against the generation it replaced, on that world.
  std::vector<PlanSample> eval;
  std::vector<double> actuals;
  for (size_t i = 0; i < 64; ++i) {
    eval.push_back({train[i].plan, train[i].env_id, 4.0 * train[i].label_ms});
    actuals.push_back(eval.back().label_ms);
  }
  auto old_preds = generation1->PredictBatch(eval);
  auto new_preds = models.Current()->PredictBatch(eval);
  if (!old_preds.ok() || !new_preds.ok()) {
    std::cerr << "post-swap evaluation failed\n";
    return 1;
  }
  const double q_old = Mean(QErrors(actuals, *old_preds));
  const double q_new = Mean(QErrors(actuals, *new_preds));
  std::cout << "on the drifted workload: old generation q-error "
            << FormatDouble(q_old, 3) << ", adapted generation "
            << FormatDouble(q_new, 3) << "\n";

  server->set_observation_listener(nullptr);
  controller.Stop();
  server->Shutdown();
  stats = controller.stats();
  std::cout << "\ncycle counters: " << stats.cycles_started << " started, "
            << stats.cycles_skipped << " skipped, " << stats.retrain_failures
            << " retrain / " << stats.save_failures << " save failures, "
            << stats.swaps_rejected << " rejected, " << stats.swaps_published
            << " published\n";
  (void)Fs::Default()->RemoveFile(path);  // best-effort demo cleanup
  return stats.swaps_published >= 1 && q_new < q_old ? 0 : 1;
}
