/// Feature-engineering introspection: show what QCFE actually feeds the
/// estimator. Prints the operator encoding of a plan (named dimensions),
/// the per-environment feature snapshot (Table I coefficients), and which
/// dimensions difference-propagation reduction keeps vs drops.
///
///   ./build/examples/explain_features

#include <iostream>

#include "core/pipeline.h"
#include "sql/parser.h"
#include "util/string_util.h"
#include "workload/benchmark.h"
#include "workload/collector.h"

using namespace qcfe;

int main() {
  auto bench = MakeBenchmark("tpch");
  auto db = (*bench)->BuildDatabase(0.05, 91);
  auto templates = (*bench)->Templates();
  std::vector<Environment> envs =
      EnvironmentSampler::Sample(3, HardwareProfile::H1(), 97);

  QueryCollector collector(db.get(), &envs);
  auto corpus = collector.Collect(templates, 400, 101);
  if (!corpus.ok()) {
    std::cerr << corpus.status().ToString() << "\n";
    return 1;
  }
  std::vector<PlanSample> train;
  for (const auto& q : corpus->queries) {
    train.push_back({q.plan.get(), q.env_id, q.total_ms});
  }

  PipelineConfig cfg;
  cfg.estimator = "qppnet";
  cfg.train.epochs = 14;
  auto model = Pipeline::Fit(db.get(), &envs, &templates, cfg, train);
  if (!model.ok()) {
    std::cerr << model.status().ToString() << "\n";
    return 1;
  }
  std::cout << (*model)->Explain() << "\n";

  // 1. Encode one operator of a fresh query and print non-zero dimensions.
  auto spec = ParseQuery(
      "select * from lineitem where lineitem.l_quantity > 25 "
      "order by lineitem.l_extendedprice");
  auto plan = db->Plan(*spec, envs[0].knobs);
  const OperatorFeaturizer* featurizer = (*model)->snapshot_featurizer();
  const PlanNode* scan = plan.value()->child(0);
  std::vector<double> x = featurizer->Encode(*scan, 1, envs[0].id);
  const FeatureSchema& schema = featurizer->schema(scan->op);
  std::cout << "non-zero encoded dimensions of: " << OpTypeName(scan->op)
            << " on lineitem\n";
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] != 0.0) {
      std::cout << "  [" << i << "] " << schema.name(i) << " = "
                << FormatDouble(x[i], 4) << "\n";
    }
  }

  // 2. The feature snapshot per environment: the paper's C coefficients.
  std::cout << "\nfeature snapshot (Seq Scan: t = c0*n + c1) per "
               "environment:\n";
  for (const auto& env : envs) {
    const FeatureSnapshot* snap = (*model)->snapshot_store()->Get(env.id);
    const OperatorSnapshot& os = snap->Get(OpType::kSeqScan);
    std::cout << "  env" << env.id << ": c0=" << FormatDouble(os.coeffs[0], 6)
              << " ms/tuple, c1=" << FormatDouble(os.coeffs[1], 4)
              << " ms  (" << os.num_observations << " observations; jit="
              << (env.knobs.jit ? "on" : "off") << ")\n";
  }

  // 3. What feature reduction kept for the Seq Scan unit.
  const auto& reduction = (*model)->reduction().per_op.at(OpType::kSeqScan);
  std::cout << "\ndifference-propagation reduction for Seq Scan: kept "
            << reduction.kept.size() << "/" << reduction.original_dim
            << " dims\n  survivors: ";
  std::vector<std::string> names;
  const FeatureSchema& full = featurizer->schema(OpType::kSeqScan);
  for (size_t k : reduction.kept) names.push_back(full.name(k));
  std::cout << Join(names, ", ") << "\n";
  return 0;
}
