/// Zero-downtime model replacement: serve from version 1 while a better
/// model trains in the background, publish it atomically, and keep serving
/// through a failed swap.
///
///   - Pipeline::Save / Load      — crash-safe versioned artifacts
///   - SwappableModel             — RCU-style publication point
///   - Pipeline::ServeAsync(models, ...) — hot-swappable micro-batcher
///   - LoadAndSwap                — validate + warm + publish, all-or-nothing
///   - AsyncServeStats            — swaps_published / swaps_rejected /
///                                  model_version counters
///   - FakeClock                  — deterministic deadline flushes, no sleeps
///
///   ./build/examples/hot_swap
///
/// The server resolves the current model once per micro-batch, so every
/// request is answered by exactly one version — a swap never tears a batch.
/// A failed LoadAndSwap (corrupt bytes, fingerprint mismatch, probe
/// divergence) leaves the old version serving and only bumps a counter.
///
/// This example drives the swap by hand; examples/online_adaptation.cpp
/// shows the same machinery triggered automatically by drift detection.

#include <cstdio>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "serve/async_server.h"
#include "serve/model_swap.h"
#include "util/clock.h"
#include "util/fs.h"
#include "util/string_util.h"
#include "workload/benchmark.h"
#include "workload/collector.h"

using namespace qcfe;

namespace {

/// Submits `samples` one by one, drives the deadline flush with the fake
/// clock, and returns the served predictions.
std::vector<double> ServeBatch(AsyncServer* server, FakeClock* clock,
                               const std::vector<PlanSample>& samples,
                               int64_t max_delay_micros) {
  std::vector<std::future<Result<double>>> futures;
  futures.reserve(samples.size());
  for (const PlanSample& s : samples) {
    futures.push_back(server->Submit(*s.plan, s.env_id));
  }
  clock->Advance(max_delay_micros + 1);  // force the deadline flush
  std::vector<double> out;
  out.reserve(futures.size());
  for (auto& f : futures) {
    Result<double> r = f.get();
    out.push_back(r.ok() ? *r : -1.0);
  }
  return out;
}

}  // namespace

int main() {
  // 1. Database, environments, labeled corpus (see quickstart for details).
  auto bench = MakeBenchmark("sysbench");
  if (!bench.ok()) {
    std::cerr << bench.status().ToString() << "\n";
    return 1;
  }
  std::unique_ptr<Database> db = (*bench)->BuildDatabase(/*scale_factor=*/0.1,
                                                         /*seed=*/11);
  std::vector<Environment> envs =
      EnvironmentSampler::Sample(3, HardwareProfile::H1(), 13);
  std::vector<QueryTemplate> templates = (*bench)->Templates();
  QueryCollector collector(db.get(), &envs);
  auto corpus = collector.Collect(templates, /*count=*/300, /*seed=*/17);
  if (!corpus.ok()) {
    std::cerr << corpus.status().ToString() << "\n";
    return 1;
  }
  std::vector<PlanSample> train, probe;
  TrainTestSplit split = SplitIndices(corpus->queries.size(), 0.8, 3);
  for (size_t i : split.train) {
    const LabeledQuery& q = corpus->queries[i];
    train.push_back({q.plan.get(), q.env_id, q.total_ms});
  }
  for (size_t i = 0; i < 6; ++i) {
    const LabeledQuery& q = corpus->queries[split.test[i]];
    probe.push_back({q.plan.get(), q.env_id, q.total_ms});
  }

  // 2. Version 1: a cheap first model, saved as a versioned artifact.
  PipelineConfig cfg;
  cfg.estimator = "qppnet";
  cfg.train.epochs = 4;  // deliberately undertrained: v2 will replace it
  auto v1 = Pipeline::Fit(db.get(), &envs, &templates, cfg, train);
  if (!v1.ok()) {
    std::cerr << v1.status().ToString() << "\n";
    return 1;
  }
  const std::string v1_path = "/tmp/qcfe_hot_swap_v1.qcfa";
  const std::string v2_path = "/tmp/qcfe_hot_swap_v2.qcfa";
  if (Status s = (*v1)->Save(v1_path); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  std::cout << "saved v1 artifact: " << v1_path << "\n";

  // 3. Publication point + hot-swappable server. The server outlives any
  //    single pipeline generation; each micro-batch is answered by the
  //    version current at flush time.
  SwappableModel models(std::shared_ptr<const Pipeline>(std::move(v1.value())));
  AsyncServeConfig serve_cfg;
  serve_cfg.max_batch = 64;  // larger than the probe: flushes by deadline
  serve_cfg.max_delay_micros = 500;
  FakeClock clock;
  std::unique_ptr<AsyncServer> server =
      Pipeline::ServeAsync(&models, serve_cfg, &clock);

  std::vector<double> before =
      ServeBatch(server.get(), &clock, probe, serve_cfg.max_delay_micros);
  std::cout << "serving at model_version=" << models.version() << "\n";

  // 4. "Overnight" retrain in the background of the serving process: a
  //    longer-trained v2, saved to its own artifact. Its own predictions on
  //    the probe set become the parity expectations for the swap.
  cfg.train.epochs = 20;
  auto v2 = Pipeline::Fit(db.get(), &envs, &templates, cfg, train);
  if (!v2.ok()) {
    std::cerr << v2.status().ToString() << "\n";
    return 1;
  }
  SwapOptions swap;
  swap.probe = probe;
  auto expected = (*v2)->PredictBatch(probe);
  if (!expected.ok()) {
    std::cerr << expected.status().ToString() << "\n";
    return 1;
  }
  swap.expected = *expected;
  if (Status s = (*v2)->Save(v2_path); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  std::cout << "retrained and saved v2 artifact: " << v2_path << "\n";

  // 5. Swap: load the artifact, validate its fingerprint, warm it with the
  //    parity probe, publish. In-flight requests keep the version they
  //    resolved; new batches see v2.
  auto swapped = LoadAndSwap(db.get(), &envs, &templates, v2_path, swap,
                             &models, server.get());
  if (!swapped.ok()) {
    std::cerr << swapped.status().ToString() << "\n";
    return 1;
  }
  std::vector<double> after =
      ServeBatch(server.get(), &clock, probe, serve_cfg.max_delay_micros);
  std::cout << "hot-swapped to model_version=" << models.version()
            << "; pre/post-swap predictions on the probe set:\n";
  for (size_t i = 0; i < probe.size(); ++i) {
    std::cout << "  plan " << i << ": " << FormatDouble(before[i], 3)
              << " ms -> " << FormatDouble(after[i], 3) << " ms (label "
              << FormatDouble(probe[i].label_ms, 3) << ")\n";
  }

  // 6. A failed swap is a non-event for traffic: corrupt the v1 artifact,
  //    try to swap to it, and watch the rejected-swap counter tick while v2
  //    keeps serving bit-identically.
  {
    Fs* fs = Fs::Default();
    auto bytes = fs->ReadFile(v1_path);
    if (bytes.ok()) {
      std::string damaged = *bytes;
      damaged[damaged.size() / 2] ^= 0x20;
      // If corrupting the demo file fails, the swap below just succeeds.
      (void)AtomicWriteFile(fs, v1_path, damaged);
    }
  }
  auto failed = LoadAndSwap(db.get(), &envs, &templates, v1_path, {}, &models,
                            server.get());
  std::cout << "\nswap to corrupted artifact rejected: "
            << failed.status().ToString() << "\n";
  std::vector<double> still =
      ServeBatch(server.get(), &clock, probe, serve_cfg.max_delay_micros);
  bool identical = still == after;
  std::cout << "old version kept serving, predictions "
            << (identical ? "bit-identical" : "DIVERGED (bug!)") << "\n";

  server->Shutdown();
  AsyncServeStats stats = server->stats();
  std::cout << "\nswap counters: " << stats.swaps_published << " published, "
            << stats.swaps_rejected << " rejected, final model_version="
            << stats.model_version << "; " << stats.served
            << " requests served across " << stats.batches_flushed
            << " micro-batches\n";
  (void)Fs::Default()->RemoveFile(v1_path);  // best-effort demo cleanup
  (void)Fs::Default()->RemoveFile(v2_path);  // best-effort demo cleanup
  return identical && stats.swaps_published == 1 && stats.swaps_rejected == 1
             ? 0
             : 1;
}
