/// Quickstart: build a database, run queries under different environments,
/// then fit a QCFE cost-estimation Pipeline and serve predictions from it.
/// This walks the whole public API surface in ~100 lines:
///
///   - Pipeline::Fit     — snapshot + reduction + estimator, one call
///   - Pipeline::PredictMs / PredictBatch — one-off and batched serving
///   - Pipeline::Explain — what the feature engineering actually did
///
///   ./build/examples/quickstart

#include <iostream>

#include "core/pipeline.h"
#include "sql/parser.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "workload/benchmark.h"
#include "workload/collector.h"

using namespace qcfe;

int main() {
  // 1. Build a benchmark database (TPC-H-like schema with synthetic data).
  auto bench = MakeBenchmark("tpch");
  if (!bench.ok()) {
    std::cerr << bench.status().ToString() << "\n";
    return 1;
  }
  std::unique_ptr<Database> db = (*bench)->BuildDatabase(/*scale_factor=*/0.06,
                                                         /*seed=*/42);
  std::cout << "database: " << db->catalog()->num_tables() << " tables, "
            << FormatDouble(db->catalog()->TotalSizeMb(), 1) << " MB\n";

  // 2. Sample database environments (knob configurations on one machine).
  std::vector<Environment> envs =
      EnvironmentSampler::Sample(4, HardwareProfile::H1(), 7);

  // 3. Run one SQL query under two environments and inspect the plans.
  auto spec = ParseQuery(
      "select count(*) from orders join lineitem "
      "on orders.o_orderkey = lineitem.l_orderkey "
      "where orders.o_totalprice > 150000");
  if (!spec.ok()) {
    std::cerr << spec.status().ToString() << "\n";
    return 1;
  }
  Rng noise(1);
  for (int env_id : {0, 1}) {
    auto run = db->Run(*spec, envs[static_cast<size_t>(env_id)], &noise);
    if (!run.ok()) {
      std::cerr << run.status().ToString() << "\n";
      return 1;
    }
    std::cout << "\nenv" << env_id << " ("
              << envs[static_cast<size_t>(env_id)].knobs.ToString()
              << ")\n  latency " << FormatDouble(run->total_ms, 3) << " ms, "
              << run->result_rows << " rows\n"
              << run->plan->ToString(1) << "\n";
  }

  // 4. Collect a labeled corpus across all environments.
  std::vector<QueryTemplate> templates = (*bench)->Templates();
  QueryCollector collector(db.get(), &envs);
  auto corpus = collector.Collect(templates, /*count=*/600, /*seed=*/99);
  if (!corpus.ok()) {
    std::cerr << corpus.status().ToString() << "\n";
    return 1;
  }
  std::vector<PlanSample> train, test;
  TrainTestSplit split = SplitIndices(corpus->queries.size(), 0.8, 5);
  for (size_t i : split.train) {
    const LabeledQuery& q = corpus->queries[i];
    train.push_back({q.plan.get(), q.env_id, q.total_ms});
  }
  for (size_t i : split.test) {
    const LabeledQuery& q = corpus->queries[i];
    test.push_back({q.plan.get(), q.env_id, q.total_ms});
  }

  // 5. Fit the pipeline. The default PipelineConfig is the paper's full
  //    QCFE recipe around QPPNet: a feature snapshot from simplified
  //    templates (FST), then difference-propagation feature reduction.
  //    Swapping cfg.estimator to "mscn" (or any registered name) is the
  //    only change needed to serve a different model.
  PipelineConfig cfg;
  cfg.estimator = "qppnet";
  cfg.train.epochs = 20;
  auto pipeline = Pipeline::Fit(db.get(), &envs, &templates, cfg, train);
  if (!pipeline.ok()) {
    std::cerr << pipeline.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\n" << (*pipeline)->Explain();

  // 6. Serve the held-out queries through the batched hot path; PredictMs
  //    is the equivalent one-plan-at-a-time call.
  auto predicted = (*pipeline)->PredictBatch(test);
  if (!predicted.ok()) {
    std::cerr << predicted.status().ToString() << "\n";
    return 1;
  }
  std::vector<double> actual;
  for (const auto& s : test) actual.push_back(s.label_ms);
  MetricSummary m = Summarize(actual, *predicted);
  std::cout << "test set: pearson=" << FormatDouble(m.pearson, 3)
            << " mean q-error=" << FormatDouble(m.mean_qerror, 3)
            << " (n=" << m.count << ")\n";
  return 0;
}
