#ifndef QCFE_MODELS_COST_MODEL_H_
#define QCFE_MODELS_COST_MODEL_H_

/// \file cost_model.h
/// The estimator interface shared by the PostgreSQL analytical baseline and
/// the learned models (QPPNet, MSCN). Estimators are trained on labeled
/// plans and predict total query latency in milliseconds from plan-time
/// information only.

#include <memory>
#include <string>
#include <vector>

#include "engine/plan.h"
#include "featurize/featurizer.h"
#include "nn/mlp.h"
#include "nn/scaler.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace qcfe {

class ByteReader;
class ByteWriter;

/// One training/evaluation sample: an executed plan (carrying per-operator
/// actual latencies used as training signal), the environment it ran under,
/// and the total ground-truth latency.
struct PlanSample {
  const PlanNode* plan = nullptr;
  int env_id = 0;
  double label_ms = 0.0;
};

/// Training hyper-parameters.
struct TrainConfig {
  int epochs = 100;
  size_t batch_size = 32;
  double learning_rate = 1e-3;
  uint64_t seed = 1;
  /// Samples per data-parallel gradient chunk. Each optimizer batch is cut
  /// into fixed chunks of this width; chunks backprop concurrently into
  /// private GradSinks across the model's thread pool and merge in chunk
  /// index order. The partition depends only on batch_size and the
  /// resolved chunk_size — never on the worker count — so the fitted model
  /// is bit-identical at any thread count; chunk_size only trades
  /// scheduling granularity against per-chunk accumulator overhead.
  ///
  /// 0 (the default) autotunes: models derive the width from batch_size and
  /// the measured per-chunk sink-merge cost — the exact count of gradient
  /// elements a chunk zeroes and merges versus the per-sample backprop
  /// element count (see ResolveTrainChunkSize). Element counts rather than
  /// wall timings keep the partition deterministic, so autotuned training
  /// stays bit-identical across runs and thread counts; small models whose
  /// merge cost rivals their per-sample compute get wider chunks instead
  /// of over-chunking at a fixed width.
  size_t chunk_size = 0;
  /// If > 0, evaluate mean q-error on `eval_set` every `eval_every` epochs
  /// (drives the paper's Figure 8 convergence curves).
  int eval_every = 0;
  std::vector<PlanSample> eval_set;
};

/// Bookkeeping returned from Train().
struct TrainStats {
  double train_seconds = 0.0;
  std::vector<double> loss_curve;  ///< training loss per epoch
  /// (epoch, mean q-error on eval_set) pairs when eval_every > 0.
  std::vector<std::pair<int, double>> eval_curve;
};

/// A query cost estimator.
class CostModel {
 public:
  virtual ~CostModel() = default;

  virtual std::string name() const = 0;

  /// Trains (or continues training — learned models warm-start, which is
  /// how the transfer-learning experiment retrains a basis model).
  virtual Status Train(const std::vector<PlanSample>& train,
                       const TrainConfig& config, TrainStats* stats) = 0;

  /// Predicted total latency (ms) for a plan under an environment.
  virtual Result<double> PredictMs(const PlanNode& plan, int env_id) const = 0;

  /// Predicted latency for a whole batch of plans: the serving hot path.
  /// Results are positionally aligned with `batch` and bit-identical to
  /// calling PredictMs per sample; implementations override the two-arg
  /// form to amortise featurization and run matrix-batched forward passes
  /// instead of per-plan scalar loops. This overload serves with the pool
  /// configured via set_thread_pool (none by default).
  Result<std::vector<double>> PredictBatchMs(
      const std::vector<PlanSample>& batch) const {
    return PredictBatchMs(batch, pool_);
  }

  /// Batched prediction across an explicit pool: deduped requests are
  /// sharded into contiguous blocks, one per worker, each with its own
  /// scratch buffers. Per-request arithmetic is row-independent, so results
  /// are bit-identical for every thread count (and to PredictMs). The
  /// default implementation runs the per-plan loop across the pool.
  virtual Result<std::vector<double>> PredictBatchMs(
      const std::vector<PlanSample>& batch, ThreadPool* pool) const;

  /// One request's outcome in a per-request batched prediction: either an
  /// OK status with the predicted latency, or the request's own error.
  struct BatchPrediction {
    Status status;
    double ms = 0.0;
  };

  /// Batched prediction with per-request status isolation: positionally
  /// aligned with `batch`, and a request that cannot be served (null plan,
  /// unknown environment, numeric failure) fails alone instead of poisoning
  /// its co-batched neighbours. The healthy path is one PredictBatchMs call
  /// (so throughput matches the all-or-nothing API); only when that whole
  /// batch fails does it fall back to deduped per-request PredictMs — which
  /// the parity contract guarantees is bit-identical, so healthy requests
  /// in a poisoned batch still receive exactly the values a clean batch
  /// would have produced. This is the serving surface the async front end
  /// (serve/async_server.h) flushes micro-batches through.
  std::vector<BatchPrediction> PredictBatchEach(
      const std::vector<PlanSample>& batch, ThreadPool* pool) const;
  std::vector<BatchPrediction> PredictBatchEach(
      const std::vector<PlanSample>& batch) const {
    return PredictBatchEach(batch, pool_);
  }

  /// Attaches a serving/training pool (not owned; must outlive the model —
  /// the Pipeline owns both and guarantees this). Null detaches. The pool
  /// is used by PredictBatchMs(batch) and by per-epoch eval during Train.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

  /// The featurizer backing this model (nullptr for analytical models).
  virtual const OperatorFeaturizer* featurizer() const { return nullptr; }

  /// Label scaler (nullptr for analytical models).
  virtual const LogTargetScaler* label_scaler() const { return nullptr; }

  /// Materializes a plain MLP view mapping one operator's feature vector to
  /// the model's (scaled) cost prediction, holding all other model context
  /// (child outputs / sibling sets) fixed at averages over `context`.
  /// The feature-reduction algorithms (gradient and difference propagation)
  /// walk this view's layers. Analytical models return FailedPrecondition.
  virtual Result<Mlp> OperatorView(
      OpType op, const std::vector<PlanSample>& context) const {
    (void)op;
    (void)context;
    return Status::FailedPrecondition("model has no operator view");
  }

  /// Serializes the trained state — weights, scalers, optimizer moments,
  /// RNG stream position — into `w` as this model's own versioned
  /// sub-format inside an artifact's model section (core/artifact.h).
  /// Stateless analytical models write nothing.
  virtual Status SaveState(ByteWriter* w) const {
    (void)w;
    return Status::OK();
  }

  /// Restores state written by SaveState into a model constructed against
  /// the same featurizer/catalog/config: weights are overwritten **in
  /// place** (no layer or moment slot is reallocated, so optimizer
  /// parameter bindings survive). Wrong model family or architecture is
  /// kFailedPrecondition; truncated bytes are kDataLoss.
  virtual Status LoadState(ByteReader* r) {
    (void)r;
    return Status::OK();
  }

 private:
  ThreadPool* pool_ = nullptr;
};

/// Subtree latency of a node: the per-operator training signal used by
/// plan-structured models (sum of actual_ms in the subtree).
double SubtreeLatencyMs(const PlanNode& node);

/// Cost-model constant for chunk autotuning: backprop element-traffic per
/// parameter element per sample (forward + backward + accumulate roughly
/// triple the forward's two flops per weight).
constexpr double kTrainFlopsPerParam = 6.0;

/// Resolves TrainConfig::chunk_size. Explicit widths pass through; 0
/// (auto) picks the smallest chunk whose per-chunk sink overhead
/// (`merge_cost_elems`, the gradient elements zeroed + merged per chunk)
/// stays under a fixed fraction of the chunk's compute
/// (`per_sample_cost_elems` per sample), clamped to [1, batch_size]. All
/// inputs are deterministic element counts, so the resolved width — and
/// with it the chunk partition and the trained model — is identical across
/// runs and thread counts.
size_t ResolveTrainChunkSize(const TrainConfig& config,
                             double merge_cost_elems,
                             double per_sample_cost_elems);

/// Mean q-error of the model on `eval_set` through the batched, pool-sharded
/// serving path (bit-identical to the per-plan loop). Drives the per-epoch
/// convergence traces (TrainConfig::eval_every) without serializing a full
/// eval sweep per epoch. Samples whose prediction fails are skipped, like
/// the historical per-plan loop.
double EvalMeanQError(const CostModel& model,
                      const std::vector<PlanSample>& eval_set,
                      ThreadPool* pool);

/// Request-level deduplication for batched serving. Production estimation
/// traffic is highly repetitive — templated workloads, knob sweeps and plan
/// enumeration all resubmit the same (plan, environment) pairs — and a
/// deterministic model maps identical requests to identical predictions, so
/// a batch only needs one forward pass per distinct request. `unique` holds
/// the distinct samples in first-appearance order and `slot[i]` maps batch
/// position i to its index in `unique`.
struct BatchRequestDedup {
  explicit BatchRequestDedup(const std::vector<PlanSample>& batch);

  /// Expands per-unique results back to batch order.
  std::vector<double> Expand(const std::vector<double>& unique_results) const;

  std::vector<PlanSample> unique;
  std::vector<size_t> slot;
};

}  // namespace qcfe

#endif  // QCFE_MODELS_COST_MODEL_H_
