#include "models/registry.h"

#include "util/check.h"
#include "util/string_util.h"

namespace qcfe {

EstimatorRegistry& EstimatorRegistry::Global() {
  // Leaked on purpose: registrations run during static init, so the registry
  // must outlive every static destructor.
  // qcfe-lint: allow(no-naked-new)
  static EstimatorRegistry* registry = new EstimatorRegistry();
  return *registry;
}

Status EstimatorRegistry::Register(EstimatorInfo info, Factory factory) {
  if (info.name.empty()) {
    return Status::InvalidArgument("estimator name must not be empty");
  }
  if (factory == nullptr) {
    return Status::InvalidArgument("estimator factory must not be null");
  }
  WriterMutexLock lock(&mu_);
  // Copy the key before moving `info` into the entry: evaluation order of
  // the emplace arguments is unspecified.
  std::string name = info.name;
  auto [it, inserted] = entries_.emplace(
      std::move(name), Entry{std::move(info), std::move(factory)});
  if (!inserted) {
    return Status::InvalidArgument("estimator already registered: " +
                                   it->first);
  }
  return Status::OK();
}

Result<std::unique_ptr<CostModel>> EstimatorRegistry::Create(
    const std::string& name, const EstimatorContext& context) const {
  Factory factory;
  {
    ReaderMutexLock lock(&mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      std::vector<std::string> names;
      for (const auto& [key, entry] : entries_) {
        (void)entry;
        names.push_back(key);
      }
      return Status::NotFound("unknown estimator \"" + name +
                              "\" (registered: " + Join(names, ", ") + ")");
    }
    factory = it->second.factory;
  }
  return factory(context);
}

Result<EstimatorInfo> EstimatorRegistry::Info(const std::string& name) const {
  ReaderMutexLock lock(&mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("unknown estimator \"" + name + "\"");
  }
  return it->second.info;
}

bool EstimatorRegistry::Contains(const std::string& name) const {
  ReaderMutexLock lock(&mu_);
  return entries_.count(name) > 0;
}

std::vector<std::string> EstimatorRegistry::Names() const {
  // entries_ is an ordered map, so the result is already sorted.
  ReaderMutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    (void)entry;
    names.push_back(name);
  }
  return names;
}

EstimatorRegistration::EstimatorRegistration(EstimatorInfo info,
                                             EstimatorRegistry::Factory factory) {
  // A failed static registration (duplicate or empty name) is a programming
  // bug; abort at startup instead of silently dropping the estimator.
  QCFE_CHECK_OK(
      EstimatorRegistry::Global().Register(std::move(info), std::move(factory)));
}

}  // namespace qcfe
