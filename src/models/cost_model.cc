#include "models/cost_model.h"

#include <map>
#include <utility>

namespace qcfe {

BatchRequestDedup::BatchRequestDedup(const std::vector<PlanSample>& batch) {
  std::map<std::pair<const PlanNode*, int>, size_t> seen;
  slot.reserve(batch.size());
  for (const PlanSample& s : batch) {
    auto [it, inserted] =
        seen.emplace(std::make_pair(s.plan, s.env_id), unique.size());
    if (inserted) unique.push_back(s);
    slot.push_back(it->second);
  }
}

std::vector<double> BatchRequestDedup::Expand(
    const std::vector<double>& unique_results) const {
  std::vector<double> out;
  out.reserve(slot.size());
  for (size_t s : slot) out.push_back(unique_results[s]);
  return out;
}

Result<std::vector<double>> CostModel::PredictBatchMs(
    const std::vector<PlanSample>& batch) const {
  std::vector<double> out;
  out.reserve(batch.size());
  for (const PlanSample& s : batch) {
    if (s.plan == nullptr) {
      return Status::InvalidArgument("null plan in prediction batch");
    }
    Result<double> p = PredictMs(*s.plan, s.env_id);
    if (!p.ok()) return p.status();
    out.push_back(*p);
  }
  return out;
}

double SubtreeLatencyMs(const PlanNode& node) { return node.TotalActualMs(); }

}  // namespace qcfe
