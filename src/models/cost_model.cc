#include "models/cost_model.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "util/stats.h"

namespace qcfe {

BatchRequestDedup::BatchRequestDedup(const std::vector<PlanSample>& batch) {
  std::map<std::pair<const PlanNode*, int>, size_t> seen;
  slot.reserve(batch.size());
  for (const PlanSample& s : batch) {
    auto [it, inserted] =
        seen.emplace(std::make_pair(s.plan, s.env_id), unique.size());
    if (inserted) unique.push_back(s);
    slot.push_back(it->second);
  }
}

std::vector<double> BatchRequestDedup::Expand(
    const std::vector<double>& unique_results) const {
  std::vector<double> out;
  out.reserve(slot.size());
  for (size_t s : slot) out.push_back(unique_results[s]);
  return out;
}

namespace {

/// Deduped per-request prediction loop shared by the base PredictBatchMs
/// and the PredictBatchEach fallback: one PredictMs task per distinct
/// request across the pool (each writing only its own slot, so results
/// match the serial loop exactly), expanded back to batch order. Requests
/// must have non-null plans.
std::vector<CostModel::BatchPrediction> PredictEachByRequest(
    const CostModel& model, const std::vector<PlanSample>& batch,
    ThreadPool* pool) {
  BatchRequestDedup dedup(batch);
  std::vector<CostModel::BatchPrediction> unique_results =
      ParallelMap<CostModel::BatchPrediction>(
          pool, dedup.unique.size(), [&](size_t u) {
            CostModel::BatchPrediction p;
            Result<double> r =
                model.PredictMs(*dedup.unique[u].plan, dedup.unique[u].env_id);
            if (r.ok()) {
              p.ms = *r;
            } else {
              p.status = r.status();
            }
            return p;
          });
  std::vector<CostModel::BatchPrediction> out;
  out.reserve(dedup.slot.size());
  for (size_t s : dedup.slot) out.push_back(unique_results[s]);
  return out;
}

}  // namespace

Result<std::vector<double>> CostModel::PredictBatchMs(
    const std::vector<PlanSample>& batch, ThreadPool* pool) const {
  for (const PlanSample& s : batch) {
    if (s.plan == nullptr) {
      return Status::InvalidArgument("null plan in prediction batch");
    }
  }
  // Fallback batched path (all-or-nothing contract): the shared per-request
  // loop, collapsed to the first error in batch order — which is also the
  // first failing distinct request, since unique order is first-appearance
  // order.
  std::vector<BatchPrediction> each = PredictEachByRequest(*this, batch, pool);
  std::vector<double> out;
  out.reserve(each.size());
  for (const BatchPrediction& p : each) {
    if (!p.status.ok()) return p.status;
    out.push_back(p.ms);
  }
  return out;
}

std::vector<CostModel::BatchPrediction> CostModel::PredictBatchEach(
    const std::vector<PlanSample>& batch, ThreadPool* pool) const {
  std::vector<BatchPrediction> out(batch.size());
  // Null plans fail individually up front; the all-or-nothing batched path
  // below then only ever sees servable-looking requests.
  std::vector<PlanSample> valid;
  std::vector<size_t> valid_pos;
  valid.reserve(batch.size());
  valid_pos.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].plan == nullptr) {
      out[i].status = Status::InvalidArgument("null plan in prediction batch");
    } else {
      valid.push_back(batch[i]);
      valid_pos.push_back(i);
    }
  }
  if (valid.empty()) return out;

  Result<std::vector<double>> whole = PredictBatchMs(valid, pool);
  if (whole.ok()) {
    for (size_t j = 0; j < valid_pos.size(); ++j) {
      out[valid_pos[j]].ms = (*whole)[j];
    }
    return out;
  }

  // Some request poisoned the whole batch. Retry per distinct request so
  // the error reaches only its own slot(s); per-request results are
  // bit-identical to the batched forward (parity contract), so the healthy
  // requests lose nothing by taking this path. For estimators without a
  // batched override the failed attempt above already ran this loop once —
  // accepted cost: it is paid only on batches that contain a bad request,
  // and keeping the fast path a single virtual PredictBatchMs call is what
  // lets the healthy path match the all-or-nothing API's throughput.
  std::vector<BatchPrediction> fallback =
      PredictEachByRequest(*this, valid, pool);
  for (size_t j = 0; j < valid_pos.size(); ++j) {
    out[valid_pos[j]] = fallback[j];
  }
  return out;
}

double SubtreeLatencyMs(const PlanNode& node) { return node.TotalActualMs(); }

size_t ResolveTrainChunkSize(const TrainConfig& config,
                             double merge_cost_elems,
                             double per_sample_cost_elems) {
  if (config.chunk_size > 0) return config.chunk_size;
  const size_t batch = std::max<size_t>(1, config.batch_size);
  // Keep per-chunk sink overhead under 1/16 of the chunk's backprop work:
  // chunk >= merge / (target * per_sample). Degenerate inputs (no measured
  // compute) fall back to single-sample chunks.
  constexpr double kTargetOverheadFraction = 1.0 / 16.0;
  if (per_sample_cost_elems <= 0.0 || merge_cost_elems <= 0.0) return 1;
  double width = std::ceil(merge_cost_elems /
                           (kTargetOverheadFraction * per_sample_cost_elems));
  if (width < 1.0) width = 1.0;
  if (width > static_cast<double>(batch)) width = static_cast<double>(batch);
  return static_cast<size_t>(width);
}

double EvalMeanQError(const CostModel& model,
                      const std::vector<PlanSample>& eval_set,
                      ThreadPool* pool) {
  std::vector<double> actual, predicted;
  Result<std::vector<double>> batch = model.PredictBatchMs(eval_set, pool);
  if (batch.ok()) {
    actual.reserve(eval_set.size());
    for (const auto& s : eval_set) actual.push_back(s.label_ms);
    predicted = std::move(batch.value());
  } else {
    // Whole-batch failure: fall back to the per-plan loop, skipping
    // individually failing samples (historical eval semantics).
    for (const auto& s : eval_set) {
      Result<double> p = model.PredictMs(*s.plan, s.env_id);
      if (!p.ok()) continue;
      actual.push_back(s.label_ms);
      predicted.push_back(*p);
    }
  }
  return Mean(QErrors(actual, predicted));
}

}  // namespace qcfe
