#include "models/cost_model.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "util/stats.h"

namespace qcfe {

BatchRequestDedup::BatchRequestDedup(const std::vector<PlanSample>& batch) {
  std::map<std::pair<const PlanNode*, int>, size_t> seen;
  slot.reserve(batch.size());
  for (const PlanSample& s : batch) {
    auto [it, inserted] =
        seen.emplace(std::make_pair(s.plan, s.env_id), unique.size());
    if (inserted) unique.push_back(s);
    slot.push_back(it->second);
  }
}

std::vector<double> BatchRequestDedup::Expand(
    const std::vector<double>& unique_results) const {
  std::vector<double> out;
  out.reserve(slot.size());
  for (size_t s : slot) out.push_back(unique_results[s]);
  return out;
}

Result<std::vector<double>> CostModel::PredictBatchMs(
    const std::vector<PlanSample>& batch, ThreadPool* pool) const {
  for (const PlanSample& s : batch) {
    if (s.plan == nullptr) {
      return Status::InvalidArgument("null plan in prediction batch");
    }
  }
  // Fallback batched path: dedup, then the per-plan loop across the pool.
  // Each unique request is one task writing its own slot, so results match
  // the serial loop exactly.
  BatchRequestDedup dedup(batch);
  struct OnePrediction {
    Status status;
    double ms = 0.0;
  };
  std::vector<OnePrediction> predicted = ParallelMap<OnePrediction>(
      pool, dedup.unique.size(), [&](size_t i) {
        OnePrediction out;
        Result<double> p =
            PredictMs(*dedup.unique[i].plan, dedup.unique[i].env_id);
        if (p.ok()) {
          out.ms = *p;
        } else {
          out.status = p.status();
        }
        return out;
      });
  std::vector<double> unique_results;
  unique_results.reserve(predicted.size());
  for (const OnePrediction& p : predicted) {
    if (!p.status.ok()) return p.status;
    unique_results.push_back(p.ms);
  }
  return dedup.Expand(unique_results);
}

double SubtreeLatencyMs(const PlanNode& node) { return node.TotalActualMs(); }

size_t ResolveTrainChunkSize(const TrainConfig& config,
                             double merge_cost_elems,
                             double per_sample_cost_elems) {
  if (config.chunk_size > 0) return config.chunk_size;
  const size_t batch = std::max<size_t>(1, config.batch_size);
  // Keep per-chunk sink overhead under 1/16 of the chunk's backprop work:
  // chunk >= merge / (target * per_sample). Degenerate inputs (no measured
  // compute) fall back to single-sample chunks.
  constexpr double kTargetOverheadFraction = 1.0 / 16.0;
  if (per_sample_cost_elems <= 0.0 || merge_cost_elems <= 0.0) return 1;
  double width = std::ceil(merge_cost_elems /
                           (kTargetOverheadFraction * per_sample_cost_elems));
  if (width < 1.0) width = 1.0;
  if (width > static_cast<double>(batch)) width = static_cast<double>(batch);
  return static_cast<size_t>(width);
}

double EvalMeanQError(const CostModel& model,
                      const std::vector<PlanSample>& eval_set,
                      ThreadPool* pool) {
  std::vector<double> actual, predicted;
  Result<std::vector<double>> batch = model.PredictBatchMs(eval_set, pool);
  if (batch.ok()) {
    actual.reserve(eval_set.size());
    for (const auto& s : eval_set) actual.push_back(s.label_ms);
    predicted = std::move(batch.value());
  } else {
    // Whole-batch failure: fall back to the per-plan loop, skipping
    // individually failing samples (historical eval semantics).
    for (const auto& s : eval_set) {
      Result<double> p = model.PredictMs(*s.plan, s.env_id);
      if (!p.ok()) continue;
      actual.push_back(s.label_ms);
      predicted.push_back(*p);
    }
  }
  return Mean(QErrors(actual, predicted));
}

}  // namespace qcfe
