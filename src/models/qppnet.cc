#include "models/qppnet.h"

#include <algorithm>
#include <cmath>

#include "models/registry.h"
#include "util/env_config.h"
#include "util/serialize.h"
#include "util/stats.h"

namespace qcfe {

namespace {
/// Model-section sub-format marker; bump on any layout change so an old
/// binary rejects a new artifact with a clear error instead of misparsing.
constexpr const char kQppNetStateMarker[] = "qppnet-state-v1";
}  // namespace

QppNet::QppNet(const OperatorFeaturizer* featurizer, QppNetConfig config,
               uint64_t seed)
    : featurizer_(featurizer), config_(config), rng_(seed) {
  for (OpType op : AllOpTypes()) {
    size_t in = featurizer_->dim(op) +
                config_.max_children * config_.data_vector_dim;
    units_[static_cast<size_t>(op)] = std::make_unique<Mlp>(
        std::vector<size_t>{in, config_.hidden, config_.hidden,
                            config_.data_vector_dim},
        Activation::kRelu, &rng_);
  }
  std::vector<Matrix*> params, grads;
  for (auto& unit : units_) {
    for (Matrix* p : unit->Params()) params.push_back(p);
    for (Matrix* g : unit->Grads()) grads.push_back(g);
  }
  auto adam = std::make_unique<AdamOptimizer>(params, grads, 1e-3);
  adam->set_clip_norm(5.0);
  optimizer_ = std::move(adam);
}

void QppNet::FitScalers(const std::vector<PlanSample>& train) {
  if (scalers_fitted_) return;
  // Gather raw features and subtree latencies per operator type.
  std::array<std::vector<std::vector<double>>, kNumOpTypes> rows;
  std::vector<double> latencies;
  for (const auto& sample : train) {
    std::function<void(const PlanNode&, size_t)> walk = [&](const PlanNode& n,
                                                            size_t depth) {
      rows[static_cast<size_t>(n.op)].push_back(
          featurizer_->Encode(n, depth, sample.env_id));
      latencies.push_back(SubtreeLatencyMs(n));
      for (const auto& c : n.children) walk(*c, depth + 1);
    };
    walk(*sample.plan, 0);
  }
  for (OpType op : AllOpTypes()) {
    size_t oi = static_cast<size_t>(op);
    size_t dim = featurizer_->dim(op);
    if (rows[oi].empty()) {
      // Never-seen operator: identity scaling.
      Matrix empty(1, dim);
      feature_scalers_[oi].Fit(empty);
      continue;
    }
    Matrix m(rows[oi].size(), dim);
    for (size_t r = 0; r < rows[oi].size(); ++r) m.SetRow(r, rows[oi][r]);
    feature_scalers_[oi].Fit(m);
  }
  label_scaler_.Fit(latencies);
  scalers_fitted_ = true;
}

QppNet::EncodedPlan QppNet::EncodePlan(const PlanNode& plan, int env_id,
                                       bool scale_features,
                                       bool with_labels) const {
  EncodedPlan encoded;
  std::function<size_t(const PlanNode&, size_t)> walk =
      [&](const PlanNode& n, size_t depth) -> size_t {
    size_t index = encoded.nodes.size();
    encoded.nodes.emplace_back();
    encoded.nodes[index].op = n.op;
    encoded.nodes[index].label_scaled =
        with_labels && label_scaler_.fitted()
            ? label_scaler_.TransformOne(SubtreeLatencyMs(n))
            : 0.0;
    std::vector<double> feats = featurizer_->Encode(n, depth, env_id);
    if (scale_features) {
      // Inline standardisation: identical arithmetic to
      // StandardScaler::Transform, without the per-node matrix round-trip.
      const StandardScaler& sc = feature_scalers_[static_cast<size_t>(n.op)];
      if (sc.fitted()) {
        const std::vector<double>& mean = sc.mean();
        const std::vector<double>& std = sc.stddev();
        for (size_t i = 0; i < feats.size(); ++i) {
          feats[i] = (feats[i] - mean[i]) / std[i];
        }
      }
    }
    encoded.nodes[index].feats = std::move(feats);
    for (const auto& c : n.children) {
      size_t child = walk(*c, depth + 1);
      encoded.nodes[index].children.push_back(child);
    }
    return index;
  };
  walk(plan, 0);
  return encoded;
}

Matrix QppNet::UnitInput(const EncodedPlan& plan, size_t node_index,
                         const std::vector<Matrix>& node_outputs) const {
  const EncodedNode& node = plan.nodes[node_index];
  size_t d = config_.data_vector_dim;
  size_t feat_dim = node.feats.size();
  Matrix x(1, feat_dim + config_.max_children * d);
  for (size_t i = 0; i < feat_dim; ++i) x.At(0, i) = node.feats[i];
  for (size_t c = 0; c < node.children.size() && c < config_.max_children;
       ++c) {
    const Matrix& child_out = node_outputs[node.children[c]];
    for (size_t i = 0; i < d; ++i) {
      x.At(0, feat_dim + c * d + i) = child_out.At(0, i);
    }
  }
  return x;
}

void QppNet::UnitInputInto(const EncodedPlan& plan, size_t node_index,
                           const std::vector<Mlp::Tape>& tapes,
                           Matrix* x) const {
  const EncodedNode& node = plan.nodes[node_index];
  size_t d = config_.data_vector_dim;
  size_t feat_dim = node.feats.size();
  // ResetShape (zeroing) keeps absent-children slots at exactly 0.0, like
  // the freshly constructed matrix UnitInput builds.
  x->ResetShape(1, feat_dim + config_.max_children * d);
  double* row = x->RowPtr(0);
  for (size_t i = 0; i < feat_dim; ++i) row[i] = node.feats[i];
  for (size_t c = 0; c < node.children.size() && c < config_.max_children;
       ++c) {
    const double* child_out =
        tapes[node.children[c]].activations.back().RowPtr(0);
    for (size_t i = 0; i < d; ++i) row[feat_dim + c * d + i] = child_out[i];
  }
}

void QppNet::ForwardPlan(const EncodedPlan& plan,
                         std::vector<Matrix>* node_outputs) const {
  node_outputs->assign(plan.nodes.size(), Matrix());
  // Children precede use: walk indices in reverse pre-order so leaves are
  // computed before parents (children always have larger indices).
  for (size_t ii = plan.nodes.size(); ii > 0; --ii) {
    size_t i = ii - 1;
    Matrix x = UnitInput(plan, i, *node_outputs);
    (*node_outputs)[i] =
        units_[static_cast<size_t>(plan.nodes[i].op)]->Predict(x);
  }
}

double QppNet::TrainPlan(const EncodedPlan& plan, double inv_node_count,
                         ChunkAccum* accum) const {
  size_t d = config_.data_vector_dim;
  size_t n = plan.nodes.size();
  // Bottom-up forward recording one reused tape per node (children always
  // have larger pre-order indices, so reverse order computes leaves first).
  // Tapes, per-node gradients and the unit-input row all live in the
  // chunk's scratch arena, so a warm accumulator runs the whole
  // forward/backward without allocating.
  if (accum->tapes.size() < n) accum->tapes.resize(n);
  if (accum->node_grads.size() < n) accum->node_grads.resize(n);
  std::vector<Mlp::Tape>& tapes = accum->tapes;
  for (size_t ii = n; ii > 0; --ii) {
    size_t i = ii - 1;
    UnitInputInto(plan, i, tapes, &accum->unit_input);
    units_[static_cast<size_t>(plan.nodes[i].op)]->Forward(accum->unit_input,
                                                           &tapes[i]);
  }

  std::vector<Matrix>& grads = accum->node_grads;
  for (size_t i = 0; i < n; ++i) grads[i].ResetShape(1, d);
  double loss = 0.0;
  // Pre-order: parents first, so parent-propagated gradients are complete
  // before a node's own backward pass runs.
  for (size_t i = 0; i < n; ++i) {
    const EncodedNode& node = plan.nodes[i];
    double err = tapes[i].activations.back().At(0, 0) - node.label_scaled;
    loss += err * err;
    grads[i].At(0, 0) += 2.0 * err * inv_node_count;

    size_t oi = static_cast<size_t>(node.op);
    if (!accum->touched[oi]) {
      accum->sinks[oi].InitLike(units_[oi]->Grads());
      accum->touched[oi] = true;
    }
    const Matrix& gx =
        units_[oi]->Backward(grads[i], &tapes[i], &accum->sinks[oi]);
    size_t feat_dim = node.feats.size();
    for (size_t c = 0; c < node.children.size() && c < config_.max_children;
         ++c) {
      for (size_t k = 0; k < d; ++k) {
        grads[node.children[c]].At(0, k) += gx.At(0, feat_dim + c * d + k);
      }
    }
  }
  return loss;
}

Status QppNet::Train(const std::vector<PlanSample>& train,
                     const TrainConfig& config, TrainStats* stats) {
  if (train.empty()) return Status::InvalidArgument("empty training set");
  WallTimer timer;
  FitScalers(train);
  static_cast<AdamOptimizer*>(optimizer_.get())->set_lr(config.learning_rate);
  ThreadPool* pool = thread_pool();

  // Pre-encode all plans once (per-plan tasks; gathered in sample order).
  std::vector<EncodedPlan> encoded =
      ParallelMap<EncodedPlan>(pool, train.size(), [&](size_t i) {
        return EncodePlan(*train[i].plan, train[i].env_id,
                          /*scale_features=*/true);
      });

  Rng train_rng(config.seed);
  std::vector<size_t> order(encoded.size());
  // Chunk autotuning (chunk_size == 0): per-chunk overhead is the gradient
  // elements zeroed and merged for the unit types a chunk touches; per-plan
  // compute is proportional to plan nodes x unit parameter elements. Both
  // are exact element counts over the encoded training set — deterministic,
  // so the partition stays thread-count- and run-independent.
  double merge_elems = 0.0;
  double plan_elems = 0.0;
  {
    std::array<double, kNumOpTypes> unit_elems{};
    for (size_t oi = 0; oi < kNumOpTypes; ++oi) {
      for (const Matrix* g : units_[oi]->Grads()) unit_elems[oi] += g->size();
    }
    for (const auto& plan : encoded) {
      std::array<bool, kNumOpTypes> seen{};
      for (const auto& node : plan.nodes) {
        size_t oi = static_cast<size_t>(node.op);
        plan_elems += kTrainFlopsPerParam * unit_elems[oi];
        seen[oi] = true;
      }
      for (size_t oi = 0; oi < kNumOpTypes; ++oi) {
        if (seen[oi]) merge_elems += 2.0 * unit_elems[oi];
      }
    }
    merge_elems /= static_cast<double>(encoded.size());
    plan_elems /= static_cast<double>(encoded.size());
  }
  const size_t chunk_size =
      ResolveTrainChunkSize(config, merge_elems, plan_elems);
  // Per-chunk gradient state, reused across batches. The chunk partition
  // depends only on batch_size and the resolved chunk_size — never on the
  // worker count — and chunk results merge in chunk index order below,
  // which keeps the fitted model bit-identical at any thread count.
  std::vector<ChunkAccum> accums;
  std::vector<double> chunk_losses;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    // Per-epoch order from an epoch-keyed Split stream: epoch e's shuffle
    // depends only on (seed, e), not on thread count or prior epochs.
    Rng epoch_rng = train_rng.Split(static_cast<uint64_t>(epoch));
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    epoch_rng.Shuffle(&order);

    double epoch_loss = 0.0;
    size_t epoch_nodes = 0;
    for (size_t start = 0; start < order.size(); start += config.batch_size) {
      size_t end = std::min(start + config.batch_size, order.size());
      optimizer_->ZeroGrad();
      size_t batch_nodes = 0;
      for (size_t i = start; i < end; ++i) {
        batch_nodes += encoded[order[i]].nodes.size();
      }
      double inv = batch_nodes > 0 ? 1.0 / static_cast<double>(batch_nodes)
                                   : 1.0;
      size_t num_chunks = (end - start + chunk_size - 1) / chunk_size;
      if (accums.size() < num_chunks) accums.resize(num_chunks);
      chunk_losses.assign(num_chunks, 0.0);
      ParallelFor(pool, num_chunks, [&](size_t c) {
        ChunkAccum& accum = accums[c];
        accum.BeginBatch();
        size_t cs = start + c * chunk_size;
        size_t ce = std::min(cs + chunk_size, end);
        double loss = 0.0;
        for (size_t i = cs; i < ce; ++i) {
          loss += TrainPlan(encoded[order[i]], inv, &accum);
        }
        chunk_losses[c] = loss;
      });
      // Fixed-order reduction: chunk index major, operator index minor.
      for (size_t c = 0; c < num_chunks; ++c) {
        epoch_loss += chunk_losses[c];
        for (size_t oi = 0; oi < kNumOpTypes; ++oi) {
          if (accums[c].touched[oi]) {
            accums[c].sinks[oi].AddTo(units_[oi]->Grads());
          }
        }
      }
      epoch_nodes += batch_nodes;
      optimizer_->Step();
    }
    if (stats != nullptr) {
      stats->loss_curve.push_back(
          epoch_nodes > 0 ? epoch_loss / static_cast<double>(epoch_nodes)
                          : 0.0);
      if (config.eval_every > 0 && !config.eval_set.empty() &&
          (epoch + 1) % config.eval_every == 0) {
        stats->eval_curve.emplace_back(
            epoch + 1, EvalMeanQError(*this, config.eval_set, pool));
      }
    }
  }
  if (stats != nullptr) stats->train_seconds = timer.Seconds();
  return Status::OK();
}

std::vector<Matrix*> QppNet::Params() {
  std::vector<Matrix*> out;
  for (auto& unit : units_) {
    for (Matrix* p : unit->Params()) out.push_back(p);
  }
  return out;
}

std::vector<Matrix*> QppNet::Grads() {
  std::vector<Matrix*> out;
  for (auto& unit : units_) {
    for (Matrix* g : unit->Grads()) out.push_back(g);
  }
  return out;
}

Result<double> QppNet::TrainingLoss(const std::vector<PlanSample>& samples,
                                    bool accumulate_gradients) {
  if (samples.empty()) return Status::InvalidArgument("empty sample set");
  FitScalers(samples);
  std::vector<EncodedPlan> encoded;
  encoded.reserve(samples.size());
  size_t total_nodes = 0;
  for (const auto& s : samples) {
    encoded.push_back(EncodePlan(*s.plan, s.env_id, /*scale_features=*/true));
    total_nodes += encoded.back().nodes.size();
  }
  if (total_nodes == 0) return Status::InvalidArgument("no plan nodes");
  double inv = 1.0 / static_cast<double>(total_nodes);
  ChunkAccum accum;
  accum.BeginBatch();
  double loss = 0.0;
  for (const auto& plan : encoded) loss += TrainPlan(plan, inv, &accum);
  if (accumulate_gradients) {
    for (size_t oi = 0; oi < kNumOpTypes; ++oi) {
      if (accum.touched[oi]) accum.sinks[oi].AddTo(units_[oi]->Grads());
    }
  }
  return loss * inv;
}

Result<double> QppNet::PredictMs(const PlanNode& plan, int env_id) const {
  if (!scalers_fitted_) {
    return Status::FailedPrecondition("QPPNet is untrained");
  }
  EncodedPlan encoded = EncodePlan(plan, env_id, /*scale_features=*/true);
  std::vector<Matrix> outs;
  ForwardPlan(encoded, &outs);
  return label_scaler_.InverseTransformOne(
      label_scaler_.ClampTransformed(outs[0].At(0, 0)));
}

void QppNet::PredictShard(const std::vector<PlanSample>& requests,
                          size_t begin, size_t end,
                          std::vector<double>* out) const {
  const size_t d = config_.data_vector_dim;
  const size_t count = end - begin;

  // Featurize each distinct plan of this shard once through the lean
  // serving encode.
  std::vector<EncodedPlan> encoded;
  encoded.reserve(count);
  for (size_t s = begin; s < end; ++s) {
    encoded.push_back(EncodePlan(*requests[s].plan, requests[s].env_id,
                                 /*scale_features=*/true,
                                 /*with_labels=*/false));
  }

  // Schedule nodes into waves: wave w holds nodes whose children all sit in
  // earlier waves. Children have larger pre-order indices, so one reverse
  // sweep per plan computes every wave number.
  size_t max_wave = 0;
  std::vector<std::vector<size_t>> wave(encoded.size());
  for (size_t p = 0; p < encoded.size(); ++p) {
    const auto& nodes = encoded[p].nodes;
    wave[p].assign(nodes.size(), 0);
    for (size_t ii = nodes.size(); ii > 0; --ii) {
      size_t i = ii - 1;
      size_t w = 0;
      for (size_t c : nodes[i].children) w = std::max(w, wave[p][c] + 1);
      wave[p][i] = w;
      max_wave = std::max(max_wave, w);
    }
  }

  // Per-plan node outputs, one d-wide row per node.
  std::vector<Matrix> outputs;
  outputs.reserve(encoded.size());
  for (const auto& plan : encoded) outputs.emplace_back(plan.nodes.size(), d);

  // One matrix-batched unit forward per (wave, operator type): every plan in
  // the shard contributes its wave-w nodes of that type as rows. Unit
  // forwards compute each row independently, so which plans share a shard
  // (and hence a matrix) never changes any output row.
  struct NodeRef {
    size_t plan;
    size_t node;
  };
  std::array<std::vector<NodeRef>, kNumOpTypes> buckets;
  Mlp::Scratch scratch;
  Matrix x;
  for (size_t w = 0; w <= max_wave; ++w) {
    for (auto& bucket : buckets) bucket.clear();
    for (size_t p = 0; p < encoded.size(); ++p) {
      for (size_t i = 0; i < encoded[p].nodes.size(); ++i) {
        if (wave[p][i] == w) {
          buckets[static_cast<size_t>(encoded[p].nodes[i].op)].push_back(
              {p, i});
        }
      }
    }
    for (OpType op : AllOpTypes()) {
      const auto& bucket = buckets[static_cast<size_t>(op)];
      if (bucket.empty()) continue;
      size_t feat_dim = featurizer_->dim(op);
      x.ResetShape(bucket.size(), feat_dim + config_.max_children * d);
      for (size_t r = 0; r < bucket.size(); ++r) {
        const EncodedNode& node =
            encoded[bucket[r].plan].nodes[bucket[r].node];
        double* row = x.RowPtr(r);
        for (size_t i = 0; i < node.feats.size(); ++i) row[i] = node.feats[i];
        const Matrix& plan_outputs = outputs[bucket[r].plan];
        for (size_t c = 0;
             c < node.children.size() && c < config_.max_children; ++c) {
          const double* child = plan_outputs.RowPtr(node.children[c]);
          for (size_t k = 0; k < d; ++k) row[feat_dim + c * d + k] = child[k];
        }
      }
      const Matrix& y = units_[static_cast<size_t>(op)]->Predict(x, &scratch);
      for (size_t r = 0; r < bucket.size(); ++r) {
        double* dst = outputs[bucket[r].plan].RowPtr(bucket[r].node);
        const double* src = y.RowPtr(r);
        for (size_t k = 0; k < d; ++k) dst[k] = src[k];
      }
    }
  }

  for (size_t p = 0; p < encoded.size(); ++p) {
    (*out)[begin + p] = label_scaler_.InverseTransformOne(
        label_scaler_.ClampTransformed(outputs[p].At(0, 0)));
  }
}

Result<std::vector<double>> QppNet::PredictBatchMs(
    const std::vector<PlanSample>& batch, ThreadPool* pool) const {
  if (!scalers_fitted_) {
    return Status::FailedPrecondition("QPPNet is untrained");
  }
  if (batch.empty()) return std::vector<double>{};

  // Deduplicate repeated (plan, environment) requests, then shard the
  // distinct requests into one contiguous block per worker; every shard
  // runs its own wave-batched sweep with its own scratch buffers.
  BatchRequestDedup dedup(batch);
  const std::vector<PlanSample>& requests = dedup.unique;
  for (const auto& s : requests) {
    if (s.plan == nullptr) {
      return Status::InvalidArgument("null plan in prediction batch");
    }
  }
  std::vector<double> result(requests.size());
  std::vector<std::pair<size_t, size_t>> shards = PartitionBlocks(
      requests.size(), pool == nullptr ? 1 : pool->num_workers());
  ParallelFor(pool, shards.size(), [&](size_t b) {
    PredictShard(requests, shards[b].first, shards[b].second, &result);
  });
  return dedup.Expand(result);
}

Result<Mlp> QppNet::OperatorView(
    OpType op, const std::vector<PlanSample>& context) const {
  if (!scalers_fitted_) {
    return Status::FailedPrecondition("QPPNet is untrained");
  }
  size_t oi = static_cast<size_t>(op);
  size_t feat_dim = featurizer_->dim(op);
  size_t d = config_.data_vector_dim;
  size_t child_dims = config_.max_children * d;

  // Average child-output context for this operator type over the context set.
  std::vector<double> child_ctx(child_dims, 0.0);
  size_t ctx_count = 0;
  for (const auto& s : context) {
    EncodedPlan encoded = EncodePlan(*s.plan, s.env_id, true);
    std::vector<Matrix> outs;
    ForwardPlan(encoded, &outs);
    for (size_t i = 0; i < encoded.nodes.size(); ++i) {
      if (encoded.nodes[i].op != op) continue;
      Matrix x = UnitInput(encoded, i, outs);
      for (size_t k = 0; k < child_dims; ++k) {
        child_ctx[k] += x.At(0, feat_dim + k);
      }
      ++ctx_count;
    }
  }
  if (ctx_count > 0) {
    for (double& v : child_ctx) v /= static_cast<double>(ctx_count);
  }

  // View = Embed(raw feat -> [scaled feat, child_ctx]) ∘ unit layers ∘
  // SelectChannel0. Folding the standardisation into the embed layer means
  // the view consumes *raw* featurizer output, so reduction code needs no
  // access to the model's internal scalers.
  Mlp view;
  auto embed = Mlp::MakeZeroLinear(feat_dim, feat_dim + child_dims);
  const StandardScaler& sc = feature_scalers_[oi];
  for (size_t i = 0; i < feat_dim; ++i) {
    double std = sc.fitted() ? sc.stddev()[i] : 1.0;
    double mean = sc.fitted() ? sc.mean()[i] : 0.0;
    embed->weights().At(i, i) = 1.0 / std;
    embed->bias().At(0, i) = -mean / std;
  }
  for (size_t k = 0; k < child_dims; ++k) {
    embed->bias().At(0, feat_dim + k) = child_ctx[k];
  }
  view.AppendLayer(std::move(embed));
  for (const auto& layer : units_[oi]->layers()) {
    view.AppendLayer(Mlp::CloneLayer(*layer));
  }
  auto select = Mlp::MakeZeroLinear(d, 1);
  select->weights().At(0, 0) = 1.0;
  view.AppendLayer(std::move(select));
  return view;
}

Status QppNet::SaveState(ByteWriter* w) const {
  w->PutString(kQppNetStateMarker);
  w->PutU64(config_.hidden);
  w->PutU64(config_.data_vector_dim);
  w->PutU64(config_.max_children);
  w->PutU64(rng_.state());
  w->PutBool(scalers_fitted_);
  for (const StandardScaler& scaler : feature_scalers_) scaler.SaveBinary(w);
  label_scaler_.SaveBinary(w);
  for (const auto& unit : units_) unit->SaveBinary(w);
  optimizer_->SaveState(w);
  return Status::OK();
}

Status QppNet::LoadState(ByteReader* r) {
  std::string marker;
  QCFE_RETURN_IF_ERROR(r->ReadString(&marker));
  if (marker != kQppNetStateMarker) {
    return Status::FailedPrecondition("model state is not " +
                                      std::string(kQppNetStateMarker) +
                                      " (found \"" + marker + "\")");
  }
  uint64_t hidden = 0, dvec = 0, max_children = 0;
  QCFE_RETURN_IF_ERROR(r->ReadU64(&hidden));
  QCFE_RETURN_IF_ERROR(r->ReadU64(&dvec));
  QCFE_RETURN_IF_ERROR(r->ReadU64(&max_children));
  if (hidden != config_.hidden || dvec != config_.data_vector_dim ||
      max_children != config_.max_children) {
    return Status::FailedPrecondition(
        "saved qppnet config (hidden=" + std::to_string(hidden) +
        ", data_vector_dim=" + std::to_string(dvec) +
        ", max_children=" + std::to_string(max_children) +
        ") does not match this model (hidden=" +
        std::to_string(config_.hidden) +
        ", data_vector_dim=" + std::to_string(config_.data_vector_dim) +
        ", max_children=" + std::to_string(config_.max_children) + ")");
  }
  uint64_t rng_state = 0;
  QCFE_RETURN_IF_ERROR(r->ReadU64(&rng_state));
  rng_.set_state(rng_state);
  QCFE_RETURN_IF_ERROR(r->ReadBool(&scalers_fitted_));
  for (size_t i = 0; i < feature_scalers_.size(); ++i) {
    QCFE_RETURN_IF_ERROR(feature_scalers_[i].LoadBinary(r).WithContext(
        "feature scaler for op " + std::to_string(i)));
  }
  QCFE_RETURN_IF_ERROR(label_scaler_.LoadBinary(r).WithContext("label scaler"));
  for (size_t i = 0; i < units_.size(); ++i) {
    QCFE_RETURN_IF_ERROR(units_[i]->LoadBinary(r).WithContext(
        "neural unit for op " + std::to_string(i)));
  }
  QCFE_RETURN_IF_ERROR(optimizer_->LoadState(r).WithContext("optimizer"));
  return Status::OK();
}

namespace {
const EstimatorRegistration kQppNetRegistration{
    {"qppnet", "QPPNet", "qpp", /*learned=*/true,
     /*uniform_feature_width=*/false},
    [](const EstimatorContext& context) -> Result<std::unique_ptr<CostModel>> {
      if (context.featurizer == nullptr) {
        return Status::InvalidArgument("qppnet requires a featurizer");
      }
      return std::unique_ptr<CostModel>(std::make_unique<QppNet>(
          context.featurizer, QppNetConfig{}, context.seed));
    }};
}  // namespace

}  // namespace qcfe
