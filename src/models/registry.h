#ifndef QCFE_MODELS_REGISTRY_H_
#define QCFE_MODELS_REGISTRY_H_

/// \file registry.h
/// String-keyed estimator registry: the extension point that lets new cost
/// estimators plug into the QCFE pipeline, the harness, and the serving API
/// without touching core code. Each estimator ships a self-registering
/// factory (see the bottom of qppnet.cc / mscn.cc / pg_cost_model.cc), so
/// model selection everywhere flows through a name like "qppnet", "mscn" or
/// "pgsql" instead of a hard-coded enum switch.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "models/cost_model.h"
#include "util/sync.h"

namespace qcfe {

class Catalog;

/// Everything a factory may need to construct an estimator. Analytical
/// models ignore all of it; learned models pick what they need (QPPNet the
/// featurizer, MSCN the catalog and the featurizer). Pointers must outlive
/// the created model.
struct EstimatorContext {
  const Catalog* catalog = nullptr;
  const OperatorFeaturizer* featurizer = nullptr;
  uint64_t seed = 0;
};

/// Static properties of a registered estimator, consumed by the pipeline
/// and the harness instead of per-kind special cases.
struct EstimatorInfo {
  std::string name;          ///< registry key, e.g. "qppnet"
  std::string display_name;  ///< human name, e.g. "QPPNet"
  std::string qcfe_label;    ///< tag inside "QCFE(...)", e.g. "qpp"
  /// Learned models train, expose OperatorView for feature reduction, and
  /// benefit from the snapshot; analytical models (pgsql) do none of that.
  bool learned = true;
  /// True when the model requires the same feature width for every operator
  /// type (MSCN's single operator module), which forces uniform reduction
  /// masks across types.
  bool uniform_feature_width = false;
};

/// Thread-safe name -> factory map.
class EstimatorRegistry {
 public:
  using Factory =
      std::function<Result<std::unique_ptr<CostModel>>(const EstimatorContext&)>;

  /// The process-wide registry all estimators self-register into.
  static EstimatorRegistry& Global();

  /// Registers a factory; fails on empty or duplicate names.
  Status Register(EstimatorInfo info, Factory factory);

  /// Instantiates the named estimator. Unknown names produce NotFound with
  /// the list of registered names in the message.
  Result<std::unique_ptr<CostModel>> Create(const std::string& name,
                                            const EstimatorContext& context) const;

  /// Properties of the named estimator (NotFound for unknown names).
  Result<EstimatorInfo> Info(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// Registered names in sorted order.
  std::vector<std::string> Names() const;

 private:
  struct Entry {
    EstimatorInfo info;
    Factory factory;
  };

  /// Read-mostly after static init: writes happen only through Register
  /// (static registration at startup plus the occasional test), every other
  /// call is a shared-mode lookup.
  mutable SharedMutex mu_{lock_rank::kEstimatorRegistry};
  std::map<std::string, Entry> entries_ QCFE_GUARDED_BY(mu_);
};

/// Performs registration from a static initialiser:
///
///   const EstimatorRegistration kReg{{"qppnet", "QPPNet", "qpp"},
///                                    [](const EstimatorContext& ctx) {...}};
///
/// Registration failures (duplicate names) are silently ignored — the first
/// registration wins, and tests cover the registry contents.
struct EstimatorRegistration {
  EstimatorRegistration(EstimatorInfo info, EstimatorRegistry::Factory factory);
};

}  // namespace qcfe

#endif  // QCFE_MODELS_REGISTRY_H_
