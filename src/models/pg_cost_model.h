#ifndef QCFE_MODELS_PG_COST_MODEL_H_
#define QCFE_MODELS_PG_COST_MODEL_H_

/// \file pg_cost_model.h
/// The "PGSQL" baseline of the paper's Table IV: the optimizer's own
/// analytical cost estimate converted to milliseconds with a fixed unit
/// constant. It needs no training, is environment-oblivious beyond the
/// planner cost knobs, and — as in the paper — its q-error is orders of
/// magnitude worse than any learned estimator while remaining loosely
/// correlated with true latency.

#include "models/cost_model.h"

namespace qcfe {

/// Analytical baseline: predicted_ms = root plan cost * ms_per_cost_unit.
class PgCostModel : public CostModel {
 public:
  /// The default treats optimizer cost units as milliseconds directly —
  /// the naive reading practitioners use, and the reason the paper's PGSQL
  /// rows show q-errors in the hundreds-to-millions: planner units are not
  /// calibrated to wall-clock at all.
  explicit PgCostModel(double ms_per_cost_unit = 1.0)
      : ms_per_cost_unit_(ms_per_cost_unit) {}

  std::string name() const override { return "PGSQL"; }

  Status Train(const std::vector<PlanSample>& train, const TrainConfig& config,
               TrainStats* stats) override;

  Result<double> PredictMs(const PlanNode& plan, int env_id) const override;

 private:
  double ms_per_cost_unit_;
};

}  // namespace qcfe

#endif  // QCFE_MODELS_PG_COST_MODEL_H_
