#include "models/mscn.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "models/registry.h"
#include "util/env_config.h"
#include "util/serialize.h"
#include "util/stats.h"

namespace qcfe {

namespace {
constexpr size_t kMaxTables = 24;   // join-table one-hot slots
constexpr size_t kMaxColumns = 48;  // predicate-column one-hot slots
constexpr size_t kNumPredOps = 9;
/// Model-section sub-format marker; bump on any layout change so an old
/// binary rejects a new artifact with a clear error instead of misparsing.
constexpr const char kMscnStateMarker[] = "mscn-state-v1";

void WriteSlotMap(const std::map<std::string, size_t>& slots, ByteWriter* w) {
  w->PutU64(slots.size());
  for (const auto& [name, slot] : slots) {
    w->PutString(name);
    w->PutU64(slot);
  }
}

/// Validates the saved vocabulary against the live catalog-derived one: a
/// mismatch means the artifact would one-hot encode joins/predicates into
/// different slots than training did, i.e. silently wrong predictions.
Status CheckSlotMap(const char* what, const std::map<std::string, size_t>& live,
                    ByteReader* r) {
  uint64_t count = 0;
  QCFE_RETURN_IF_ERROR(r->ReadCount(&count, sizeof(uint64_t)));
  if (count != live.size()) {
    return Status::FailedPrecondition(
        std::string(what) + " vocabulary size mismatch: saved " +
        std::to_string(count) + ", catalog has " +
        std::to_string(live.size()));
  }
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    uint64_t slot = 0;
    QCFE_RETURN_IF_ERROR(r->ReadString(&name));
    QCFE_RETURN_IF_ERROR(r->ReadU64(&slot));
    auto it = live.find(name);
    if (it == live.end() || it->second != slot) {
      return Status::FailedPrecondition(
          std::string(what) + " vocabulary mismatch at \"" + name +
          "\": the artifact was fit against a different catalog");
    }
  }
  return Status::OK();
}
}  // namespace

Mscn::Mscn(const Catalog* catalog, const OperatorFeaturizer* featurizer,
           MscnConfig config, uint64_t seed)
    : catalog_(catalog),
      featurizer_(featurizer),
      config_(config),
      rng_(seed) {
  // Vocabularies (sorted order, same convention as OperatorEncoder).
  for (const auto& t : catalog_->TableNames()) {
    if (table_slots_.size() < kMaxTables) {
      table_slots_[t] = table_slots_.size();
    }
    const Table* table = catalog_->GetTable(t);
    for (const auto& col : table->schema().columns()) {
      std::string key = t + "." + col.name;
      if (column_slots_.size() < kMaxColumns) {
        column_slots_[key] = column_slots_.size();
      }
    }
  }
  size_t i = 0;
  for (auto& [k, v] : table_slots_) v = i++;
  i = 0;
  for (auto& [k, v] : column_slots_) v = i++;

  join_dim_ = 2 * kMaxTables;
  pred_dim_ = kMaxColumns + kNumPredOps + 1;
  op_dim_ = featurizer_->dim(OpType::kSeqScan);

  join_net_ = std::make_unique<Mlp>(
      std::vector<size_t>{join_dim_, config_.set_hidden, config_.set_hidden},
      Activation::kRelu, &rng_);
  pred_net_ = std::make_unique<Mlp>(
      std::vector<size_t>{pred_dim_, config_.set_hidden, config_.set_hidden},
      Activation::kRelu, &rng_);
  op_net_ = std::make_unique<Mlp>(
      std::vector<size_t>{op_dim_, config_.op_hidden, config_.set_hidden},
      Activation::kRelu, &rng_);
  final_net_ = std::make_unique<Mlp>(
      std::vector<size_t>{3 * config_.set_hidden, config_.final_hidden, 1},
      Activation::kRelu, &rng_);

  std::vector<Matrix*> params, grads;
  for (Mlp* net : {join_net_.get(), pred_net_.get(), op_net_.get(),
                   final_net_.get()}) {
    for (Matrix* p : net->Params()) params.push_back(p);
    for (Matrix* g : net->Grads()) grads.push_back(g);
  }
  auto adam = std::make_unique<AdamOptimizer>(params, grads, 1e-3);
  adam->set_clip_norm(5.0);
  optimizer_ = std::move(adam);
}

std::vector<double> Mscn::EncodeJoin(const JoinCondition& join) const {
  std::vector<double> x(join_dim_, 0.0);
  auto lt = table_slots_.find(join.left.table);
  if (lt != table_slots_.end()) x[lt->second] = 1.0;
  auto rt = table_slots_.find(join.right.table);
  if (rt != table_slots_.end()) x[kMaxTables + rt->second] = 1.0;
  return x;
}

std::vector<double> Mscn::EncodePredicate(const Predicate& pred) const {
  std::vector<double> x(pred_dim_, 0.0);
  auto ct = column_slots_.find(pred.column.ToString());
  if (ct != column_slots_.end()) x[ct->second] = 1.0;
  x[kMaxColumns + static_cast<size_t>(pred.op)] = 1.0;
  // Normalised literal value (first literal; strings hash into [0,1]).
  const ColumnStats* cs =
      catalog_->GetColumnStats(pred.column.table, pred.column.column);
  if (!pred.literals.empty() && cs != nullptr && cs->max > cs->min) {
    double v = ValueToDouble(pred.literals[0]);
    x[pred_dim_ - 1] = std::clamp((v - cs->min) / (cs->max - cs->min), 0.0, 1.0);
  }
  return x;
}

Mscn::EncodedQuery Mscn::EncodeQuery(const PlanNode& plan, int env_id,
                                     bool scale) const {
  EncodedQuery q;
  std::function<void(const PlanNode&, size_t)> walk = [&](const PlanNode& n,
                                                          size_t depth) {
    if (n.join.has_value()) q.joins.push_back(EncodeJoin(*n.join));
    for (const auto& f : n.filters) q.preds.push_back(EncodePredicate(f));
    q.ops.push_back(featurizer_->Encode(n, depth, env_id));
    for (const auto& c : n.children) walk(*c, depth + 1);
  };
  walk(plan, 0);
  if (q.joins.empty()) q.joins.emplace_back(join_dim_, 0.0);
  if (q.preds.empty()) q.preds.emplace_back(pred_dim_, 0.0);
  if (q.ops.empty()) q.ops.emplace_back(op_dim_, 0.0);

  if (scale && scalers_fitted_) {
    auto apply = [](const StandardScaler& sc,
                    std::vector<std::vector<double>>* rows) {
      for (auto& r : *rows) {
        for (size_t i = 0; i < r.size(); ++i) {
          r[i] = (r[i] - sc.mean()[i]) / sc.stddev()[i];
        }
      }
    };
    apply(join_scaler_, &q.joins);
    apply(pred_scaler_, &q.preds);
    apply(op_scaler_, &q.ops);
  }
  return q;
}

Mscn::Packed Mscn::Pack(const std::vector<const EncodedQuery*>& batch) const {
  Packed p;
  PackInto(batch, &p);
  return p;
}

void Mscn::PackInto(const std::vector<const EncodedQuery*>& batch,
                    Packed* p) const {
  size_t nj = 0, np = 0, no = 0;
  for (const auto* q : batch) {
    nj += q->joins.size();
    np += q->preds.size();
    no += q->ops.size();
  }
  // Every row is fully overwritten by SetRow below, so the element
  // matrices reshape without zeroing (and without reallocating at steady
  // chunk sizes).
  p->joins.ResetShapeUninitialized(nj, join_dim_);
  p->preds.ResetShapeUninitialized(np, pred_dim_);
  p->ops.ResetShapeUninitialized(no, op_dim_);
  p->join_offsets.assign(1, 0);
  p->pred_offsets.assign(1, 0);
  p->op_offsets.assign(1, 0);
  p->labels.clear();
  size_t ji = 0, pi = 0, oi = 0;
  for (const auto* q : batch) {
    for (const auto& r : q->joins) p->joins.SetRow(ji++, r);
    for (const auto& r : q->preds) p->preds.SetRow(pi++, r);
    for (const auto& r : q->ops) p->ops.SetRow(oi++, r);
    p->join_offsets.push_back(ji);
    p->pred_offsets.push_back(pi);
    p->op_offsets.push_back(oi);
    p->labels.push_back(q->label_scaled);
  }
}

namespace {

/// Mean-pools rows [offsets[q], offsets[q+1]) into row q of `out`
/// (reshaped in place; zero-seeded ascending-row sums, then one divide —
/// the historical SegmentMean arithmetic without the fresh matrix).
void SegmentMeanInto(const Matrix& rows, const std::vector<size_t>& offsets,
                     size_t hidden, Matrix* out) {
  size_t nq = offsets.size() - 1;
  out->ResetShape(nq, hidden);
  for (size_t q = 0; q < nq; ++q) {
    size_t count = offsets[q + 1] - offsets[q];
    if (count == 0) continue;
    for (size_t r = offsets[q]; r < offsets[q + 1]; ++r) {
      for (size_t c = 0; c < hidden; ++c) out->At(q, c) += rows.At(r, c);
    }
    for (size_t c = 0; c < hidden; ++c) {
      out->At(q, c) /= static_cast<double>(count);
    }
  }
}

Matrix SegmentMean(const Matrix& rows, const std::vector<size_t>& offsets,
                   size_t hidden) {
  Matrix out;
  SegmentMeanInto(rows, offsets, hidden, &out);
  return out;
}

/// Inverse of SegmentMean for gradients.
void SegmentExpandInto(const Matrix& pooled_grad,
                       const std::vector<size_t>& offsets, size_t total_rows,
                       size_t hidden, Matrix* out) {
  out->ResetShape(total_rows, hidden);
  size_t nq = offsets.size() - 1;
  for (size_t q = 0; q < nq; ++q) {
    size_t count = offsets[q + 1] - offsets[q];
    if (count == 0) continue;
    double inv = 1.0 / static_cast<double>(count);
    for (size_t r = offsets[q]; r < offsets[q + 1]; ++r) {
      for (size_t c = 0; c < hidden; ++c) {
        out->At(r, c) = pooled_grad.At(q, c) * inv;
      }
    }
  }
}

void ConcatColsInto(const Matrix& a, const Matrix& b, const Matrix& c,
                    Matrix* out) {
  out->ResetShapeUninitialized(a.rows(), a.cols() + b.cols() + c.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t i = 0; i < a.cols(); ++i) out->At(r, i) = a.At(r, i);
    for (size_t i = 0; i < b.cols(); ++i) {
      out->At(r, a.cols() + i) = b.At(r, i);
    }
    for (size_t i = 0; i < c.cols(); ++i) {
      out->At(r, a.cols() + b.cols() + i) = c.At(r, i);
    }
  }
}

Matrix ConcatCols(const Matrix& a, const Matrix& b, const Matrix& c) {
  Matrix out;
  ConcatColsInto(a, b, c, &out);
  return out;
}

}  // namespace

const Matrix& Mscn::ForwardPacked(const Packed& packed,
                                  ChunkScratch* scratch) const {
  size_t h = config_.set_hidden;
  const Matrix& hj = join_net_->Forward(packed.joins, &scratch->tapes.join);
  const Matrix& hp = pred_net_->Forward(packed.preds, &scratch->tapes.pred);
  const Matrix& ho = op_net_->Forward(packed.ops, &scratch->tapes.op);
  SegmentMeanInto(hj, packed.join_offsets, h, &scratch->pooled_join);
  SegmentMeanInto(hp, packed.pred_offsets, h, &scratch->pooled_pred);
  SegmentMeanInto(ho, packed.op_offsets, h, &scratch->pooled_op);
  ConcatColsInto(scratch->pooled_join, scratch->pooled_pred,
                 scratch->pooled_op, &scratch->concat);
  return final_net_->Forward(scratch->concat, &scratch->tapes.final_net);
}

Matrix Mscn::PredictPacked(const Packed& packed) const {
  size_t h = config_.set_hidden;
  // One scratch serves all four nets sequentially: each module's rows are
  // pooled into a fresh matrix before the next module reuses the buffers.
  // This keeps large batched activations out of the allocator (big blocks
  // would be mmap'd and faulted in on every call).
  Mlp::Scratch scratch;
  Matrix pj = SegmentMean(join_net_->Predict(packed.joins, &scratch),
                          packed.join_offsets, h);
  Matrix pp = SegmentMean(pred_net_->Predict(packed.preds, &scratch),
                          packed.pred_offsets, h);
  Matrix po = SegmentMean(op_net_->Predict(packed.ops, &scratch),
                          packed.op_offsets, h);
  Matrix out = final_net_->Predict(ConcatCols(pj, pp, po), &scratch);
  return out;
}

void Mscn::BackwardPacked(const Packed& packed, const Matrix& grad_out,
                          ChunkScratch* scratch, NetSinks* sinks) const {
  size_t h = config_.set_hidden;
  const Matrix& grad_concat = final_net_->Backward(
      grad_out, &scratch->tapes.final_net, &sinks->final_net);
  // Split the concat gradient back into the three pooled segments (every
  // element overwritten, so the split buffers reshape without zeroing).
  size_t nq = grad_concat.rows();
  Matrix& gj = scratch->split_join;
  Matrix& gp = scratch->split_pred;
  Matrix& go = scratch->split_op;
  gj.ResetShapeUninitialized(nq, h);
  gp.ResetShapeUninitialized(nq, h);
  go.ResetShapeUninitialized(nq, h);
  for (size_t r = 0; r < nq; ++r) {
    for (size_t c = 0; c < h; ++c) {
      gj.At(r, c) = grad_concat.At(r, c);
      gp.At(r, c) = grad_concat.At(r, h + c);
      go.At(r, c) = grad_concat.At(r, 2 * h + c);
    }
  }
  // One expand buffer serves the three modules in sequence: each module's
  // Backward has consumed it before the next expand overwrites it.
  SegmentExpandInto(gj, packed.join_offsets, packed.joins.rows(), h,
                    &scratch->expand);
  join_net_->Backward(scratch->expand, &scratch->tapes.join, &sinks->join);
  SegmentExpandInto(gp, packed.pred_offsets, packed.preds.rows(), h,
                    &scratch->expand);
  pred_net_->Backward(scratch->expand, &scratch->tapes.pred, &sinks->pred);
  SegmentExpandInto(go, packed.op_offsets, packed.ops.rows(), h,
                    &scratch->expand);
  op_net_->Backward(scratch->expand, &scratch->tapes.op, &sinks->op);
}

void Mscn::NetSinks::InitFor(Mscn* model) {
  join.InitLike(model->join_net_->Grads());
  pred.InitLike(model->pred_net_->Grads());
  op.InitLike(model->op_net_->Grads());
  final_net.InitLike(model->final_net_->Grads());
}

void Mscn::NetSinks::AddTo(Mscn* model) const {
  join.AddTo(model->join_net_->Grads());
  pred.AddTo(model->pred_net_->Grads());
  op.AddTo(model->op_net_->Grads());
  final_net.AddTo(model->final_net_->Grads());
}

double Mscn::TrainChunk(const std::vector<EncodedQuery>& encoded,
                        const std::vector<size_t>& order, size_t start,
                        size_t end, double inv_batch, ChunkScratch* scratch,
                        NetSinks* sinks) const {
  scratch->refs.clear();
  scratch->refs.reserve(end - start);
  for (size_t i = start; i < end; ++i) {
    scratch->refs.push_back(&encoded[order[i]]);
  }
  PackInto(scratch->refs, &scratch->packed);
  const Matrix& out = ForwardPacked(scratch->packed, scratch);
  scratch->grad.ResetShapeUninitialized(out.rows(), 1);
  double loss = 0.0;
  for (size_t r = 0; r < out.rows(); ++r) {
    double err = out.At(r, 0) - scratch->packed.labels[r];
    loss += err * err;
    scratch->grad.At(r, 0) = 2.0 * err * inv_batch;
  }
  BackwardPacked(scratch->packed, scratch->grad, scratch, sinks);
  return loss;
}

void Mscn::FitScalers(const std::vector<EncodedQuery>& queries,
                      const std::vector<double>& labels_ms) {
  if (scalers_fitted_) return;
  auto fit = [](StandardScaler* sc, size_t dim,
                const std::vector<const std::vector<double>*>& rows) {
    Matrix m(std::max<size_t>(rows.size(), 1), dim);
    for (size_t r = 0; r < rows.size(); ++r) m.SetRow(r, *rows[r]);
    sc->Fit(m);
  };
  std::vector<const std::vector<double>*> jr, pr, orow;
  for (const auto& q : queries) {
    for (const auto& r : q.joins) jr.push_back(&r);
    for (const auto& r : q.preds) pr.push_back(&r);
    for (const auto& r : q.ops) orow.push_back(&r);
  }
  fit(&join_scaler_, join_dim_, jr);
  fit(&pred_scaler_, pred_dim_, pr);
  fit(&op_scaler_, op_dim_, orow);
  label_scaler_.Fit(labels_ms);
  scalers_fitted_ = true;
}

Status Mscn::Train(const std::vector<PlanSample>& train,
                   const TrainConfig& config, TrainStats* stats) {
  if (train.empty()) return Status::InvalidArgument("empty training set");
  if (featurizer_->dim(OpType::kSeqScan) != op_dim_) {
    return Status::FailedPrecondition("featurizer width changed under MSCN");
  }
  WallTimer timer;
  ThreadPool* pool = thread_pool();
  // First encode raw (for scaler fitting), then scale (per-query tasks,
  // gathered in sample order).
  std::vector<EncodedQuery> raw =
      ParallelMap<EncodedQuery>(pool, train.size(), [&](size_t i) {
        return EncodeQuery(*train[i].plan, train[i].env_id, /*scale=*/false);
      });
  std::vector<double> labels_ms;
  labels_ms.reserve(train.size());
  for (const auto& s : train) labels_ms.push_back(s.label_ms);
  FitScalers(raw, labels_ms);
  std::vector<EncodedQuery> encoded =
      ParallelMap<EncodedQuery>(pool, train.size(), [&](size_t i) {
        EncodedQuery q =
            EncodeQuery(*train[i].plan, train[i].env_id, /*scale=*/true);
        q.label_scaled = label_scaler_.TransformOne(labels_ms[i]);
        return q;
      });

  static_cast<AdamOptimizer*>(optimizer_.get())->set_lr(config.learning_rate);
  Rng train_rng(config.seed);
  std::vector<size_t> order(encoded.size());
  // Chunk autotuning (chunk_size == 0): per-chunk overhead is the gradient
  // elements all four sinks zero and merge; per-query compute is the
  // query's set rows x module parameter elements plus one final-module
  // pass. Exact element counts over the encoded set — deterministic, so
  // the partition stays thread-count- and run-independent.
  double merge_elems = 0.0;
  double query_elems = 0.0;
  {
    auto net_elems = [](Mlp* net) {
      double elems = 0.0;
      for (const Matrix* g : net->Grads()) elems += g->size();
      return elems;
    };
    const double je = net_elems(join_net_.get());
    const double pe = net_elems(pred_net_.get());
    const double oe = net_elems(op_net_.get());
    const double fe = net_elems(final_net_.get());
    merge_elems = 2.0 * (je + pe + oe + fe);
    for (const auto& q : encoded) {
      query_elems += kTrainFlopsPerParam *
                     (static_cast<double>(q.joins.size()) * je +
                      static_cast<double>(q.preds.size()) * pe +
                      static_cast<double>(q.ops.size()) * oe + fe);
    }
    query_elems /= static_cast<double>(encoded.size());
  }
  const size_t chunk_size =
      ResolveTrainChunkSize(config, merge_elems, query_elems);
  // Per-chunk gradient state, reused across batches. The chunk partition
  // depends only on batch_size and the resolved chunk_size — never on the
  // worker count — and chunk sinks merge in chunk index order below, which
  // keeps the fitted model bit-identical at any thread count. Module
  // forwards are row-wise and pooling is per-query, so chunk boundaries
  // never change a query's forward value either.
  std::vector<ChunkScratch> scratch;
  std::vector<NetSinks> sinks;
  std::vector<double> chunk_losses;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    // Per-epoch order from an epoch-keyed Split stream: epoch e's shuffle
    // depends only on (seed, e), not on thread count or prior epochs.
    Rng epoch_rng = train_rng.Split(static_cast<uint64_t>(epoch));
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    epoch_rng.Shuffle(&order);

    double epoch_loss = 0.0;
    for (size_t start = 0; start < order.size(); start += config.batch_size) {
      size_t end = std::min(start + config.batch_size, order.size());
      optimizer_->ZeroGrad();
      double inv = 1.0 / static_cast<double>(end - start);
      size_t num_chunks = (end - start + chunk_size - 1) / chunk_size;
      if (scratch.size() < num_chunks) scratch.resize(num_chunks);
      if (sinks.size() < num_chunks) sinks.resize(num_chunks);
      chunk_losses.assign(num_chunks, 0.0);
      ParallelFor(pool, num_chunks, [&](size_t c) {
        sinks[c].InitFor(this);
        size_t cs = start + c * chunk_size;
        size_t ce = std::min(cs + chunk_size, end);
        chunk_losses[c] =
            TrainChunk(encoded, order, cs, ce, inv, &scratch[c], &sinks[c]);
      });
      // Fixed-order reduction: chunk index major, module order minor.
      for (size_t c = 0; c < num_chunks; ++c) {
        epoch_loss += chunk_losses[c];
        sinks[c].AddTo(this);
      }
      optimizer_->Step();
    }
    if (stats != nullptr) {
      stats->loss_curve.push_back(epoch_loss /
                                  static_cast<double>(encoded.size()));
      if (config.eval_every > 0 && !config.eval_set.empty() &&
          (epoch + 1) % config.eval_every == 0) {
        stats->eval_curve.emplace_back(
            epoch + 1, EvalMeanQError(*this, config.eval_set, pool));
      }
    }
  }
  if (stats != nullptr) stats->train_seconds = timer.Seconds();
  return Status::OK();
}

std::vector<Matrix*> Mscn::Params() {
  std::vector<Matrix*> out;
  for (Mlp* net : {join_net_.get(), pred_net_.get(), op_net_.get(),
                   final_net_.get()}) {
    for (Matrix* p : net->Params()) out.push_back(p);
  }
  return out;
}

std::vector<Matrix*> Mscn::Grads() {
  std::vector<Matrix*> out;
  for (Mlp* net : {join_net_.get(), pred_net_.get(), op_net_.get(),
                   final_net_.get()}) {
    for (Matrix* g : net->Grads()) out.push_back(g);
  }
  return out;
}

Result<double> Mscn::TrainingLoss(const std::vector<PlanSample>& samples,
                                  bool accumulate_gradients) {
  if (samples.empty()) return Status::InvalidArgument("empty sample set");
  if (!scalers_fitted_) {
    std::vector<EncodedQuery> raw;
    std::vector<double> labels_ms;
    raw.reserve(samples.size());
    for (const auto& s : samples) {
      raw.push_back(EncodeQuery(*s.plan, s.env_id, /*scale=*/false));
      labels_ms.push_back(s.label_ms);
    }
    FitScalers(raw, labels_ms);
  }
  std::vector<EncodedQuery> encoded;
  std::vector<size_t> order;
  encoded.reserve(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    encoded.push_back(
        EncodeQuery(*samples[i].plan, samples[i].env_id, /*scale=*/true));
    encoded.back().label_scaled =
        label_scaler_.TransformOne(samples[i].label_ms);
    order.push_back(i);
  }
  double inv = 1.0 / static_cast<double>(samples.size());
  ChunkScratch scratch;
  NetSinks sinks;
  sinks.InitFor(this);
  double loss =
      TrainChunk(encoded, order, 0, encoded.size(), inv, &scratch, &sinks);
  if (accumulate_gradients) sinks.AddTo(this);
  return loss * inv;
}

Result<double> Mscn::PredictMs(const PlanNode& plan, int env_id) const {
  if (!scalers_fitted_) return Status::FailedPrecondition("MSCN is untrained");
  EncodedQuery q = EncodeQuery(plan, env_id, /*scale=*/true);
  Packed packed = Pack({&q});
  Matrix out = PredictPacked(packed);
  return label_scaler_.InverseTransformOne(
      label_scaler_.ClampTransformed(out.At(0, 0)));
}

void Mscn::PredictShard(const std::vector<PlanSample>& requests, size_t begin,
                        size_t end, std::vector<double>* out) const {
  std::vector<EncodedQuery> encoded;
  encoded.reserve(end - begin);
  for (size_t s = begin; s < end; ++s) {
    encoded.push_back(
        EncodeQuery(*requests[s].plan, requests[s].env_id, /*scale=*/true));
  }
  std::vector<const EncodedQuery*> refs;
  refs.reserve(encoded.size());
  for (const auto& q : encoded) refs.push_back(&q);
  // One pack + one forward per set module for the shard's queries;
  // SegmentMean keeps per-query pooling identical to the single-query path,
  // so shard composition never changes a prediction.
  Packed packed = Pack(refs);
  Matrix y = PredictPacked(packed);
  for (size_t r = 0; r < y.rows(); ++r) {
    (*out)[begin + r] = label_scaler_.InverseTransformOne(
        label_scaler_.ClampTransformed(y.At(r, 0)));
  }
}

Result<std::vector<double>> Mscn::PredictBatchMs(
    const std::vector<PlanSample>& batch, ThreadPool* pool) const {
  if (!scalers_fitted_) return Status::FailedPrecondition("MSCN is untrained");
  if (batch.empty()) return std::vector<double>{};
  // Deduplicate repeated (plan, environment) requests, then shard the
  // distinct requests into one contiguous block per worker.
  BatchRequestDedup dedup(batch);
  const std::vector<PlanSample>& requests = dedup.unique;
  for (const auto& s : requests) {
    if (s.plan == nullptr) {
      return Status::InvalidArgument("null plan in prediction batch");
    }
  }
  std::vector<double> result(requests.size());
  std::vector<std::pair<size_t, size_t>> shards = PartitionBlocks(
      requests.size(), pool == nullptr ? 1 : pool->num_workers());
  ParallelFor(pool, shards.size(), [&](size_t b) {
    PredictShard(requests, shards[b].first, shards[b].second, &result);
  });
  return dedup.Expand(result);
}

Result<Mlp> Mscn::OperatorView(OpType /*op*/,
                               const std::vector<PlanSample>& context) const {
  if (!scalers_fitted_) return Status::FailedPrecondition("MSCN is untrained");
  size_t h = config_.set_hidden;

  // Average join/predicate pools over the context set; they become the fixed
  // bias of the concat embedding.
  Matrix pj_ctx(1, h), pp_ctx(1, h);
  size_t count = 0;
  for (const auto& s : context) {
    EncodedQuery q = EncodeQuery(*s.plan, s.env_id, /*scale=*/true);
    Packed packed = Pack({&q});
    Matrix hj = join_net_->Predict(packed.joins);
    Matrix hp = pred_net_->Predict(packed.preds);
    Matrix pj = SegmentMean(hj, packed.join_offsets, h);
    Matrix pp = SegmentMean(hp, packed.pred_offsets, h);
    pj_ctx.Add(pj);
    pp_ctx.Add(pp);
    ++count;
  }
  if (count > 0) {
    pj_ctx.Scale(1.0 / static_cast<double>(count));
    pp_ctx.Scale(1.0 / static_cast<double>(count));
  }

  // View = Scale(raw op feats) ∘ op_net ∘ Concat(ctx_j, ctx_p, ·) ∘ final.
  Mlp view;
  auto scale_embed = Mlp::MakeZeroLinear(op_dim_, op_dim_);
  for (size_t i = 0; i < op_dim_; ++i) {
    double std = op_scaler_.fitted() ? op_scaler_.stddev()[i] : 1.0;
    double mean = op_scaler_.fitted() ? op_scaler_.mean()[i] : 0.0;
    scale_embed->weights().At(i, i) = 1.0 / std;
    scale_embed->bias().At(0, i) = -mean / std;
  }
  view.AppendLayer(std::move(scale_embed));
  for (const auto& layer : op_net_->layers()) {
    view.AppendLayer(Mlp::CloneLayer(*layer));
  }
  auto concat = Mlp::MakeZeroLinear(h, 3 * h);
  for (size_t i = 0; i < h; ++i) concat->weights().At(i, 2 * h + i) = 1.0;
  for (size_t i = 0; i < h; ++i) {
    concat->bias().At(0, i) = pj_ctx.At(0, i);
    concat->bias().At(0, h + i) = pp_ctx.At(0, i);
  }
  view.AppendLayer(std::move(concat));
  for (const auto& layer : final_net_->layers()) {
    view.AppendLayer(Mlp::CloneLayer(*layer));
  }
  return view;
}

Status Mscn::SaveState(ByteWriter* w) const {
  w->PutString(kMscnStateMarker);
  w->PutU64(config_.set_hidden);
  w->PutU64(config_.op_hidden);
  w->PutU64(config_.final_hidden);
  w->PutU64(join_dim_);
  w->PutU64(pred_dim_);
  w->PutU64(op_dim_);
  WriteSlotMap(table_slots_, w);
  WriteSlotMap(column_slots_, w);
  w->PutU64(rng_.state());
  w->PutBool(scalers_fitted_);
  join_scaler_.SaveBinary(w);
  pred_scaler_.SaveBinary(w);
  op_scaler_.SaveBinary(w);
  label_scaler_.SaveBinary(w);
  join_net_->SaveBinary(w);
  pred_net_->SaveBinary(w);
  op_net_->SaveBinary(w);
  final_net_->SaveBinary(w);
  optimizer_->SaveState(w);
  return Status::OK();
}

Status Mscn::LoadState(ByteReader* r) {
  std::string marker;
  QCFE_RETURN_IF_ERROR(r->ReadString(&marker));
  if (marker != kMscnStateMarker) {
    return Status::FailedPrecondition("model state is not " +
                                      std::string(kMscnStateMarker) +
                                      " (found \"" + marker + "\")");
  }
  uint64_t set_hidden = 0, op_hidden = 0, final_hidden = 0;
  QCFE_RETURN_IF_ERROR(r->ReadU64(&set_hidden));
  QCFE_RETURN_IF_ERROR(r->ReadU64(&op_hidden));
  QCFE_RETURN_IF_ERROR(r->ReadU64(&final_hidden));
  if (set_hidden != config_.set_hidden || op_hidden != config_.op_hidden ||
      final_hidden != config_.final_hidden) {
    return Status::FailedPrecondition(
        "saved mscn config (set_hidden=" + std::to_string(set_hidden) +
        ", op_hidden=" + std::to_string(op_hidden) +
        ", final_hidden=" + std::to_string(final_hidden) +
        ") does not match this model");
  }
  uint64_t join_dim = 0, pred_dim = 0, op_dim = 0;
  QCFE_RETURN_IF_ERROR(r->ReadU64(&join_dim));
  QCFE_RETURN_IF_ERROR(r->ReadU64(&pred_dim));
  QCFE_RETURN_IF_ERROR(r->ReadU64(&op_dim));
  if (join_dim != join_dim_ || pred_dim != pred_dim_ || op_dim != op_dim_) {
    return Status::FailedPrecondition(
        "saved mscn element dims (join=" + std::to_string(join_dim) +
        ", pred=" + std::to_string(pred_dim) +
        ", op=" + std::to_string(op_dim) + ") do not match this model (join=" +
        std::to_string(join_dim_) + ", pred=" + std::to_string(pred_dim_) +
        ", op=" + std::to_string(op_dim_) + ")");
  }
  QCFE_RETURN_IF_ERROR(CheckSlotMap("join-table", table_slots_, r));
  QCFE_RETURN_IF_ERROR(CheckSlotMap("predicate-column", column_slots_, r));
  uint64_t rng_state = 0;
  QCFE_RETURN_IF_ERROR(r->ReadU64(&rng_state));
  rng_.set_state(rng_state);
  QCFE_RETURN_IF_ERROR(r->ReadBool(&scalers_fitted_));
  QCFE_RETURN_IF_ERROR(join_scaler_.LoadBinary(r).WithContext("join scaler"));
  QCFE_RETURN_IF_ERROR(pred_scaler_.LoadBinary(r).WithContext("pred scaler"));
  QCFE_RETURN_IF_ERROR(op_scaler_.LoadBinary(r).WithContext("op scaler"));
  QCFE_RETURN_IF_ERROR(label_scaler_.LoadBinary(r).WithContext("label scaler"));
  QCFE_RETURN_IF_ERROR(join_net_->LoadBinary(r).WithContext("join net"));
  QCFE_RETURN_IF_ERROR(pred_net_->LoadBinary(r).WithContext("pred net"));
  QCFE_RETURN_IF_ERROR(op_net_->LoadBinary(r).WithContext("op net"));
  QCFE_RETURN_IF_ERROR(final_net_->LoadBinary(r).WithContext("final net"));
  QCFE_RETURN_IF_ERROR(optimizer_->LoadState(r).WithContext("optimizer"));
  return Status::OK();
}

namespace {
const EstimatorRegistration kMscnRegistration{
    {"mscn", "MSCN", "mscn", /*learned=*/true, /*uniform_feature_width=*/true},
    [](const EstimatorContext& context) -> Result<std::unique_ptr<CostModel>> {
      if (context.catalog == nullptr || context.featurizer == nullptr) {
        return Status::InvalidArgument(
            "mscn requires a catalog and a featurizer");
      }
      return std::unique_ptr<CostModel>(std::make_unique<Mscn>(
          context.catalog, context.featurizer, MscnConfig{}, context.seed));
    }};
}  // namespace

}  // namespace qcfe
