#ifndef QCFE_MODELS_QPPNET_H_
#define QCFE_MODELS_QPPNET_H_

/// \file qppnet.h
/// QPPNet (Marcus & Papaemmanouil, "Plan-Structured Deep Neural Network
/// Models for Query Performance Prediction"): one MLP "neural unit" per
/// physical operator type. A unit consumes the operator's feature vector
/// concatenated with its children's output vectors and emits a d-dimensional
/// vector whose first channel is the predicted (scaled) latency of the
/// operator's subtree; the remaining channels are a learned "data vector"
/// passed to the parent. Training backpropagates a per-operator latency loss
/// through the plan-tree structure.

#include <array>
#include <memory>

#include "models/cost_model.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace qcfe {

/// QPPNet hyper-parameters.
struct QppNetConfig {
  size_t hidden = 48;          ///< hidden width of each neural unit
  size_t data_vector_dim = 8;  ///< unit output width (latency + data vector)
  size_t max_children = 2;     ///< plan nodes have at most two children
};

/// Plan-structured estimator.
class QppNet : public CostModel {
 public:
  /// `featurizer` must outlive the model.
  QppNet(const OperatorFeaturizer* featurizer, QppNetConfig config,
         uint64_t seed);

  std::string name() const override { return "QPPNet"; }
  /// Chunk-parallel training: each epoch's sample order (drawn from an
  /// epoch-keyed Rng::Split stream) is cut into fixed-width chunks
  /// (TrainConfig::chunk_size) independent of the worker count; chunks of
  /// one optimizer batch backprop concurrently into private GradSinks via
  /// the attached thread pool, and sinks merge into the optimizer-bound
  /// gradients in chunk order — so the trained model is bit-identical at
  /// any thread count.
  Status Train(const std::vector<PlanSample>& train, const TrainConfig& config,
               TrainStats* stats) override;
  Result<double> PredictMs(const PlanNode& plan, int env_id) const override;
  /// Wave-batched inference: featurizes every plan once, then schedules
  /// nodes bottom-up into "waves" whose children are already computed, so
  /// each (wave, operator type) runs one matrix-batched unit forward over
  /// the whole batch instead of a 1-row forward per node. With a pool, the
  /// deduped requests are sharded into contiguous blocks, one wave-batched
  /// sweep per worker with per-shard scratch buffers; unit forwards are
  /// row-independent, so shard boundaries never change a prediction.
  using CostModel::PredictBatchMs;
  Result<std::vector<double>> PredictBatchMs(
      const std::vector<PlanSample>& batch, ThreadPool* pool) const override;
  const OperatorFeaturizer* featurizer() const override { return featurizer_; }
  const LogTargetScaler* label_scaler() const override { return &label_scaler_; }
  Result<Mlp> OperatorView(
      OpType op, const std::vector<PlanSample>& context) const override;

  /// Persists units, per-op feature scalers, label scaler, Adam moments and
  /// the RNG stream position (core/artifact.h model section). A loaded
  /// model predicts — and, warm-started, trains — bit-identically to the
  /// original.
  Status SaveState(ByteWriter* w) const override;
  Status LoadState(ByteReader* r) override;

  const Mlp& unit(OpType op) const { return *units_[static_cast<size_t>(op)]; }

  /// Flat trainable-parameter / optimizer-bound gradient lists across all
  /// neural units, in operator order (autodiff verification and external
  /// optimizers; same layout in both lists).
  std::vector<Matrix*> Params();
  std::vector<Matrix*> Grads();

  /// Mean per-node squared loss of the scaled subtree-latency regression
  /// over `samples`, treated as one batch. With `accumulate_gradients`, the
  /// matching parameter gradients are added into Grads() (not applied).
  /// Fits the scalers on `samples` if the model is untrained. This is the
  /// differentiable quantity Train() descends, exposed so finite-difference
  /// checks can verify the tape-based composite backprop end to end.
  Result<double> TrainingLoss(const std::vector<PlanSample>& samples,
                              bool accumulate_gradients);

 private:
  /// Pre-encoded plan: nodes in pre-order with child links.
  struct EncodedNode {
    OpType op = OpType::kSeqScan;
    std::vector<double> feats;      ///< scaled features
    std::vector<size_t> children;   ///< indices into EncodedPlan::nodes
    double label_scaled = 0.0;      ///< scaled subtree latency
  };
  struct EncodedPlan {
    std::vector<EncodedNode> nodes;  ///< pre-order; root at 0
  };

  /// `with_labels=false` is the serving path: it skips the per-node
  /// subtree-latency/label transforms that only training needs.
  EncodedPlan EncodePlan(const PlanNode& plan, int env_id, bool scale_features,
                         bool with_labels = true) const;

  /// Wave-batched serving sweep over requests [begin, end), writing
  /// predictions into the matching slots of `out` (one shard of
  /// PredictBatchMs; the serial path is the single shard [0, n)).
  void PredictShard(const std::vector<PlanSample>& requests, size_t begin,
                    size_t end, std::vector<double>* out) const;

  /// Forward all nodes of one plan; returns per-node outputs (1 x d rows).
  void ForwardPlan(const EncodedPlan& plan,
                   std::vector<Matrix>* node_outputs) const;

  /// One training chunk's private gradient state: a sink per neural unit,
  /// lazily (re)zeroed on first touch within a batch so untouched units
  /// cost nothing to reset or merge. Doubles as the chunk's scratch arena:
  /// per-node tapes, per-node output gradients and the unit-input row are
  /// reshaped in place across plans and batches, so steady-state training
  /// never touches the allocator.
  struct ChunkAccum {
    std::array<GradSink, kNumOpTypes> sinks;
    std::array<bool, kNumOpTypes> touched{};
    /// Reusable per-node forward/backward state (grown to the widest plan).
    std::vector<Mlp::Tape> tapes;
    std::vector<Matrix> node_grads;
    Matrix unit_input;

    void BeginBatch() { touched.fill(false); }
  };

  /// Forward + backward for one plan on per-node tapes, accumulating
  /// parameter gradients (seeded with 2 * err * inv_node_count per node)
  /// into `accum`. Returns the plan's summed squared error. Const and
  /// state-free: concurrent calls only share the read-only units.
  double TrainPlan(const EncodedPlan& plan, double inv_node_count,
                   ChunkAccum* accum) const;

  /// Fits feature scalers and the label scaler on first training.
  void FitScalers(const std::vector<PlanSample>& train);

  Matrix UnitInput(const EncodedPlan& plan, size_t node_index,
                   const std::vector<Matrix>& node_outputs) const;

  /// UnitInput variant for the tape-based training path: child outputs are
  /// read off the children's tapes and the row is built in the caller's
  /// reusable scratch matrix.
  void UnitInputInto(const EncodedPlan& plan, size_t node_index,
                     const std::vector<Mlp::Tape>& tapes, Matrix* x) const;

  const OperatorFeaturizer* featurizer_;
  QppNetConfig config_;
  Rng rng_;
  std::array<std::unique_ptr<Mlp>, kNumOpTypes> units_;
  std::array<StandardScaler, kNumOpTypes> feature_scalers_;
  LogTargetScaler label_scaler_;
  bool scalers_fitted_ = false;
  std::unique_ptr<AdamOptimizer> optimizer_;
};

}  // namespace qcfe

#endif  // QCFE_MODELS_QPPNET_H_
