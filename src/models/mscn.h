#ifndef QCFE_MODELS_MSCN_H_
#define QCFE_MODELS_MSCN_H_

/// \file mscn.h
/// MSCN (Kipf et al., "Learned Cardinalities") extended to cost estimation
/// as in the paper's Section V-A: three set modules — joins, predicates, and
/// fine-grained plan operators (the extension; carries cardinalities and,
/// under QCFE, the feature snapshot) — each an MLP applied per element and
/// mean-pooled, concatenated into a final MLP that outputs query cost.

#include <memory>

#include "engine/catalog.h"
#include "models/cost_model.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace qcfe {

/// MSCN hyper-parameters.
struct MscnConfig {
  size_t set_hidden = 32;    ///< hidden width of join/predicate modules
  size_t op_hidden = 64;     ///< hidden width of the operator module
  size_t final_hidden = 64;  ///< hidden width of the output MLP
};

/// Set-based estimator.
class Mscn : public CostModel {
 public:
  /// `catalog` provides the join/predicate vocabularies and literal
  /// normalisation stats; `featurizer` encodes the operator set. The
  /// featurizer must use the same width for every operator type (MSCN's
  /// operator module is a single MLP), which base and uniformly-masked
  /// featurizers satisfy. Both must outlive the model.
  Mscn(const Catalog* catalog, const OperatorFeaturizer* featurizer,
       MscnConfig config, uint64_t seed);

  std::string name() const override { return "MSCN"; }
  /// Chunk-parallel training: each epoch's query order (drawn from an
  /// epoch-keyed Rng::Split stream) is cut into fixed-width chunks
  /// (TrainConfig::chunk_size) independent of the worker count; each chunk
  /// packs its queries and backprops into private GradSinks concurrently
  /// via the attached thread pool, and sinks merge into the optimizer-bound
  /// gradients in chunk order — bit-identical models at any thread count.
  Status Train(const std::vector<PlanSample>& train, const TrainConfig& config,
               TrainStats* stats) override;
  Result<double> PredictMs(const PlanNode& plan, int env_id) const override;
  /// Batched inference: every query in the batch is packed into one element
  /// matrix per set module, so each module runs a single matrix-batched
  /// forward over all elements of all queries instead of one tiny forward
  /// per query. With a pool, deduped requests are sharded into contiguous
  /// blocks, one pack + forward per worker with its own scratch; module
  /// forwards and SegmentMean are per-row/per-query, so shard boundaries
  /// never change a prediction.
  using CostModel::PredictBatchMs;
  Result<std::vector<double>> PredictBatchMs(
      const std::vector<PlanSample>& batch, ThreadPool* pool) const override;
  const OperatorFeaturizer* featurizer() const override { return featurizer_; }
  const LogTargetScaler* label_scaler() const override { return &label_scaler_; }
  Result<Mlp> OperatorView(
      OpType op, const std::vector<PlanSample>& context) const override;

  /// Persists the four module networks, set/label scalers, Adam moments,
  /// the RNG stream position and the catalog-derived slot maps — the slot
  /// maps are *validated* on load, so an artifact fit against a different
  /// catalog vocabulary is rejected instead of silently mis-encoding.
  Status SaveState(ByteWriter* w) const override;
  Status LoadState(ByteReader* r) override;

  size_t join_dim() const { return join_dim_; }
  size_t pred_dim() const { return pred_dim_; }
  size_t op_dim() const { return op_dim_; }

  /// Flat trainable-parameter / optimizer-bound gradient lists across the
  /// four modules (join, predicate, operator, final), for autodiff
  /// verification and external optimizers (same layout in both lists).
  std::vector<Matrix*> Params();
  std::vector<Matrix*> Grads();

  /// Mean squared loss of the scaled-cost regression over `samples`,
  /// treated as one batch. With `accumulate_gradients`, the matching
  /// parameter gradients are added into Grads() (not applied). Fits the
  /// scalers on `samples` if the model is untrained. Exposed so
  /// finite-difference checks can verify the composite set-module backprop.
  Result<double> TrainingLoss(const std::vector<PlanSample>& samples,
                              bool accumulate_gradients);

 private:
  /// Pre-encoded query: the three element sets (each at least one row; empty
  /// sets contribute a single zero row, MSCN's padding convention).
  struct EncodedQuery {
    std::vector<std::vector<double>> joins;
    std::vector<std::vector<double>> preds;
    std::vector<std::vector<double>> ops;
    double label_scaled = 0.0;
  };

  EncodedQuery EncodeQuery(const PlanNode& plan, int env_id,
                           bool scale) const;

  /// Encode + pack + forward for requests [begin, end), writing predictions
  /// into the matching slots of `out` (one shard of PredictBatchMs; the
  /// serial path is the single shard [0, n)).
  void PredictShard(const std::vector<PlanSample>& requests, size_t begin,
                    size_t end, std::vector<double>* out) const;
  std::vector<double> EncodeJoin(const JoinCondition& join) const;
  std::vector<double> EncodePredicate(const Predicate& pred) const;

  /// Packs queries into per-module element matrices with segment offsets.
  struct Packed {
    Matrix joins, preds, ops;
    std::vector<size_t> join_offsets, pred_offsets, op_offsets;  // size nq+1
    std::vector<double> labels;
  };
  Packed Pack(const std::vector<const EncodedQuery*>& batch) const;
  /// Pack into a reusable arena: matrices and offset vectors are reshaped
  /// in place, so repacking chunks of steady size never allocates.
  void PackInto(const std::vector<const EncodedQuery*>& batch,
                Packed* packed) const;

  /// One forward pass's activation record across the four modules; what
  /// BackwardPacked consumes instead of per-layer caches.
  struct NetTapes {
    Mlp::Tape join, pred, op, final_net;
  };

  /// One training chunk's reusable scratch arena: the module tapes, the
  /// packed element matrices and every pooled/concat/split intermediate of
  /// the chunked forward/backward, reshaped in place across chunks and
  /// batches so steady-state training never touches the allocator.
  struct ChunkScratch {
    NetTapes tapes;
    Packed packed;
    std::vector<const EncodedQuery*> refs;
    Matrix pooled_join, pooled_pred, pooled_op, concat;  // forward
    Matrix grad;                                         // dL/d(out)
    Matrix split_join, split_pred, split_op, expand;     // backward
  };

  /// One training chunk's private gradient state across the four modules.
  struct NetSinks {
    GradSink join, pred, op, final_net;

    /// (Re)shapes and zeroes every sink for this model's modules.
    void InitFor(Mscn* model);
    /// Merges into the optimizer-bound gradients in fixed module order.
    void AddTo(Mscn* model) const;
  };

  /// Forward returns per-query predictions (nq x 1) as a reference into
  /// the scratch's final-module tape, recording module activations on the
  /// scratch's tapes for a subsequent BackwardPacked. Const and
  /// state-free: concurrent chunks share only the read-only modules.
  const Matrix& ForwardPacked(const Packed& packed, ChunkScratch* scratch) const;
  Matrix PredictPacked(const Packed& packed) const;
  void BackwardPacked(const Packed& packed, const Matrix& grad_out,
                      ChunkScratch* scratch, NetSinks* sinks) const;

  /// Pack + forward + backward for queries [start, end) of `order`,
  /// accumulating into `sinks` (seeded with 2 * err * inv_batch per query).
  /// Returns the chunk's summed squared error.
  double TrainChunk(const std::vector<EncodedQuery>& encoded,
                    const std::vector<size_t>& order, size_t start, size_t end,
                    double inv_batch, ChunkScratch* scratch,
                    NetSinks* sinks) const;

  void FitScalers(const std::vector<EncodedQuery>& queries,
                  const std::vector<double>& labels_ms);

  const Catalog* catalog_;
  const OperatorFeaturizer* featurizer_;
  MscnConfig config_;
  Rng rng_;
  size_t join_dim_ = 0;
  size_t pred_dim_ = 0;
  size_t op_dim_ = 0;
  std::map<std::string, size_t> table_slots_;
  std::map<std::string, size_t> column_slots_;

  std::unique_ptr<Mlp> join_net_;
  std::unique_ptr<Mlp> pred_net_;
  std::unique_ptr<Mlp> op_net_;
  std::unique_ptr<Mlp> final_net_;
  StandardScaler join_scaler_, pred_scaler_, op_scaler_;
  LogTargetScaler label_scaler_;
  bool scalers_fitted_ = false;
  std::unique_ptr<AdamOptimizer> optimizer_;
};

}  // namespace qcfe

#endif  // QCFE_MODELS_MSCN_H_
