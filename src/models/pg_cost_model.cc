#include "models/pg_cost_model.h"

#include "models/registry.h"

namespace qcfe {

Status PgCostModel::Train(const std::vector<PlanSample>& /*train*/,
                          const TrainConfig& /*config*/, TrainStats* stats) {
  if (stats != nullptr) {
    stats->train_seconds = 0.0;  // analytical model: nothing to train
    stats->loss_curve.clear();
    stats->eval_curve.clear();
  }
  return Status::OK();
}

Result<double> PgCostModel::PredictMs(const PlanNode& plan,
                                      int /*env_id*/) const {
  return plan.est_cost * ms_per_cost_unit_;
}

namespace {
const EstimatorRegistration kPgsqlRegistration{
    {"pgsql", "PGSQL", "pgsql", /*learned=*/false,
     /*uniform_feature_width=*/false},
    [](const EstimatorContext& /*context*/)
        -> Result<std::unique_ptr<CostModel>> {
      return std::unique_ptr<CostModel>(std::make_unique<PgCostModel>());
    }};
}  // namespace

}  // namespace qcfe
