#include "util/fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace qcfe {

namespace {

Status ErrnoStatus(const std::string& what, const std::string& path, int err) {
  return Status::IOError(what + " " + path + ": " + std::strerror(err));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    // Abandoned file (error path): close the descriptor without syncing.
    // Close() already set fd_ to -1 on the normal path.
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const void* data, size_t n) override {
    const char* p = static_cast<const char*>(data);
    size_t left = n;
    while (left > 0) {
      const ssize_t written = ::write(fd_, p, left);
      if (written < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write", path_, errno);
      }
      p += written;
      left -= static_cast<size_t>(written);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close", path_, errno);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

}  // namespace

Fs* Fs::Default() {
  static RealFs real;
  return &real;
}

Result<std::unique_ptr<WritableFile>> RealFs::NewWritableFile(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open", path, errno);
  return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
}

Result<std::string> RealFs::ReadFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open", path, errno);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return ErrnoStatus("read", path, err);
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status RealFs::RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoStatus("rename", from + " -> " + to, errno);
  }
  return Status::OK();
}

Status RealFs::RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink", path, errno);
  return Status::OK();
}

bool RealFs::FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

/// Wraps a base WritableFile, routing op counting and torn-write/fsync
/// faults through the owning FaultInjectingFs so the whole save shares one
/// deterministic op sequence.
class FaultInjectingWritableFile : public WritableFile {
 public:
  FaultInjectingWritableFile(FaultInjectingFs* fs,
                             std::unique_ptr<WritableFile> base)
      : fs_(fs), base_(std::move(base)) {}

  Status Append(const void* data, size_t n) override {
    QCFE_RETURN_IF_ERROR(fs_->CountOp("write"));
    const int64_t threshold = fs_->config_.torn_write_at_byte;
    const int64_t before = fs_->bytes_written_.fetch_add(
        static_cast<int64_t>(n), std::memory_order_relaxed);
    if (threshold >= 0 && before + static_cast<int64_t>(n) > threshold) {
      // Tear: persist only the prefix up to the threshold, then fail, as a
      // crash mid-write would.
      const size_t prefix =
          before >= threshold ? 0 : static_cast<size_t>(threshold - before);
      if (prefix > 0) {
        QCFE_RETURN_IF_ERROR(base_->Append(data, std::min(prefix, n)));
      }
      return Status::IOError("injected torn write at byte " +
                             std::to_string(threshold));
    }
    return base_->Append(data, n);
  }

  Status Sync() override {
    QCFE_RETURN_IF_ERROR(fs_->CountOp("fsync"));
    if (fs_->config_.fail_fsync) {
      return Status::IOError("injected fsync failure (EIO)");
    }
    return base_->Sync();
  }

  Status Close() override {
    QCFE_RETURN_IF_ERROR(fs_->CountOp("close"));
    return base_->Close();
  }

 private:
  FaultInjectingFs* fs_;
  std::unique_ptr<WritableFile> base_;
};

Status FaultInjectingFs::CountOp(const char* what) {
  const int64_t op = ops_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (config_.fail_at_op >= 0 && op == config_.fail_at_op) {
    return Status::IOError("injected fault at op " + std::to_string(op) +
                           " (" + what + ")");
  }
  return Status::OK();
}

Result<std::unique_ptr<WritableFile>> FaultInjectingFs::NewWritableFile(
    const std::string& path) {
  QCFE_RETURN_IF_ERROR(CountOp("open"));
  Result<std::unique_ptr<WritableFile>> base = base_->NewWritableFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(std::make_unique<FaultInjectingWritableFile>(
      this, std::move(base.value())));
}

Result<std::string> FaultInjectingFs::ReadFile(const std::string& path) {
  QCFE_RETURN_IF_ERROR(CountOp("read"));
  Result<std::string> bytes = base_->ReadFile(path);
  if (!bytes.ok()) return bytes;
  if (config_.short_read_bytes >= 0 &&
      bytes.value().size() > static_cast<size_t>(config_.short_read_bytes)) {
    // Deliberately *succeeds* with truncated data: the torn file is only
    // discoverable by the artifact CRCs downstream.
    bytes.value().resize(static_cast<size_t>(config_.short_read_bytes));
  }
  return bytes;
}

Status FaultInjectingFs::RenameFile(const std::string& from,
                                    const std::string& to) {
  QCFE_RETURN_IF_ERROR(CountOp("rename"));
  return base_->RenameFile(from, to);
}

Status FaultInjectingFs::RemoveFile(const std::string& path) {
  QCFE_RETURN_IF_ERROR(CountOp("remove"));
  return base_->RemoveFile(path);
}

bool FaultInjectingFs::FileExists(const std::string& path) {
  // Existence probes are read-only and fault-free: crash-consistency sweeps
  // count only operations that can damage or observe torn state.
  return base_->FileExists(path);
}

Status AtomicWriteFile(Fs* fs, const std::string& path,
                       const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  Status status = [&]() -> Status {
    Result<std::unique_ptr<WritableFile>> file = fs->NewWritableFile(tmp);
    if (!file.ok()) return file.status();
    QCFE_RETURN_IF_ERROR(file.value()->Append(bytes));
    // Sync before rename: rename-then-crash must never publish a file whose
    // data blocks were still in the page cache.
    QCFE_RETURN_IF_ERROR(file.value()->Sync());
    QCFE_RETURN_IF_ERROR(file.value()->Close());
    return fs->RenameFile(tmp, path);
  }();
  if (!status.ok() && fs->FileExists(tmp)) {
    // Best-effort cleanup; the failure being reported is the interesting one.
    (void)fs->RemoveFile(tmp);
  }
  return status.WithContext("atomic write of " + path);
}

}  // namespace qcfe
