#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace qcfe {
namespace internal {

void CheckFailed(const char* file, int line, const char* cond,
                 const char* msg) {
  // fprintf + abort rather than iostreams: the failure path must work from
  // any thread, during static init/teardown, and under sanitizers, without
  // pulling stream locales into every contract's translation unit.
  std::fprintf(stderr, "QCFE_CHECK failed at %s:%d: %s — %s\n", file, line,
               cond, msg);
  std::fflush(stderr);
  std::abort();
}

void StatusCheckFailed(const char* file, int line, const char* expr,
                       const Status& status) {
  std::fprintf(stderr, "QCFE_CHECK_OK failed at %s:%d: %s returned %s\n", file,
               line, expr, status.ToString().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace qcfe
