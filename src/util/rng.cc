#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace qcfe {

uint64_t Rng::Next() {
  state_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return lo + static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t v = Next();
  while (v >= limit) v = Next();
  return lo + static_cast<int64_t>(v % span);
}

double Rng::Gaussian() {
  // Box-Muller; draw u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - Uniform();
  double u2 = Uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::LognormalNoise(double sigma) {
  if (sigma <= 0.0) return 1.0;
  return std::exp(Gaussian(-0.5 * sigma * sigma, sigma));
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int64_t Rng::Zipf(int64_t n, double s) {
  assert(n >= 1);
  if (s <= 0.0) return UniformInt(1, n);
  // Inverse CDF by linear scan; n is small (column domains) in this project.
  double norm = 0.0;
  for (int64_t i = 1; i <= n; ++i) norm += 1.0 / std::pow(static_cast<double>(i), s);
  double target = Uniform() * norm;
  double acc = 0.0;
  for (int64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), s);
    if (acc >= target) return i;
  }
  return n;
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  assert(k <= n);
  // Partial Fisher-Yates over an index vector.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = static_cast<size_t>(
        UniformInt(static_cast<int64_t>(i), static_cast<int64_t>(n - 1)));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

std::string Rng::RandomString(size_t length) {
  std::string out(length, 'a');
  for (size_t i = 0; i < length; ++i) {
    out[i] = static_cast<char>('a' + UniformInt(0, 25));
  }
  return out;
}

Rng Rng::Fork(uint64_t stream) {
  // Mix the stream id into a fresh seed derived from our state without
  // perturbing our own sequence.
  uint64_t salted = state_ ^ (0xD1B54A32D192ED03ULL * (stream + 1));
  return Rng(salted);
}

Rng Rng::Split(uint64_t stream) const {
  // Full SplitMix64 finalizer over (state, stream) so that adjacent stream
  // ids land in well-separated states; a distinct additive constant keeps
  // Split(i) decorrelated from Fork(i) at the same parent state.
  uint64_t z = state_ + 0xBF58476D1CE4E5B9ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return Rng(z ^ (z >> 31));
}

}  // namespace qcfe
