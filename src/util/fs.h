#ifndef QCFE_UTIL_FS_H_
#define QCFE_UTIL_FS_H_

/// \file fs.h
/// The file-system seam all artifact I/O flows through.
///
/// Production uses RealFs (POSIX open/write/fsync/rename); tests wrap it in
/// FaultInjectingFs to fail deterministically at the Nth operation, tear a
/// write at byte K, truncate reads, or EIO every fsync — so every I/O
/// failure path in the persistence layer is unit-testable without root,
/// loopback devices, or flaky disks. The `no-raw-file-io` lint rule bans
/// fstream/fopen outside this file, keeping future code on the seam.
///
/// AtomicWriteFile is the durability primitive: temp file → fsync → atomic
/// rename, so a crash or injected fault mid-save leaves the previously
/// published file untouched.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "util/status.h"

namespace qcfe {

/// An open file being written. Append/Sync/Close return kIoError on failure
/// (real errno or injected fault). Destroying an unclosed file closes it
/// without syncing — only an explicit Sync provides durability.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const void* data, size_t n) = 0;
  Status Append(const std::string& bytes) {
    return Append(bytes.data(), bytes.size());
  }
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Minimal file-system interface: whole-file reads, streaming writes, and
/// the rename/remove/exists trio the atomic-publish protocol needs.
class Fs {
 public:
  virtual ~Fs() = default;

  /// Creates (or truncates) `path` for writing.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// Reads the whole file into a string. kIoError if it cannot be opened or
  /// read (artifacts are single-digit MB; streaming reads buy nothing and
  /// would multiply the fault-injection surface).
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  virtual Status RemoveFile(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// Process-wide RealFs singleton; functions taking an optional Fs* treat
  /// null as Default().
  static Fs* Default();
};

/// POSIX-backed Fs.
class RealFs : public Fs {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;
};

/// Deterministic fault plan for FaultInjectingFs. All triggers are exact —
/// the same save against the same plan fails at the same byte on every run.
struct FaultInjectionConfig {
  /// Fail the Nth counted operation (1-based; see FaultInjectingFs for what
  /// counts as an operation). -1 disables. The failed operation performs no
  /// work: a failed Append writes nothing, a failed Rename leaves both
  /// paths as they were.
  int64_t fail_at_op = -1;
  /// Tear writes at this cumulative appended-byte count: the Append that
  /// would cross the threshold writes only the prefix up to it, then
  /// returns kIoError — simulating a crash mid-write. -1 disables.
  int64_t torn_write_at_byte = -1;
  /// Silently truncate every ReadFile to its first N bytes — the read
  /// *succeeds* with short data, simulating a torn file discovered later
  /// (the artifact CRCs must catch it). -1 disables.
  int64_t short_read_bytes = -1;
  /// Every Sync returns kIoError (the classic lying-fsync EIO).
  bool fail_fsync = false;
};

/// Wraps a base Fs and injects the configured faults. Operation counting
/// covers NewWritableFile, Append, Sync, Close, ReadFile, RenameFile and
/// RemoveFile, in call order — so a crash-consistency sweep can run a save
/// once to count its operations, then re-run it failing at op 1, 2, … N.
/// Thread-safe counters; the config itself must be set while quiescent.
class FaultInjectingFs : public Fs {
 public:
  /// `base` must outlive this object and is not owned.
  explicit FaultInjectingFs(Fs* base) : base_(base) {}

  /// Installs a fault plan and resets the operation/byte counters.
  void Arm(const FaultInjectionConfig& config) {
    config_ = config;
    ops_.store(0, std::memory_order_relaxed);
    bytes_written_.store(0, std::memory_order_relaxed);
  }

  /// Operations counted since the last Arm().
  int64_t op_count() const { return ops_.load(std::memory_order_relaxed); }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;

 private:
  friend class FaultInjectingWritableFile;

  /// Counts one operation; returns non-OK if it is the one slated to fail.
  Status CountOp(const char* what);

  Fs* base_;
  FaultInjectionConfig config_;
  std::atomic<int64_t> ops_{0};
  std::atomic<int64_t> bytes_written_{0};
};

/// Durable whole-file publish: writes `bytes` to `path + ".tmp"`, fsyncs,
/// closes, then atomically renames over `path`. On any failure the previous
/// content of `path` is untouched and the temp file is best-effort removed.
Status AtomicWriteFile(Fs* fs, const std::string& path,
                       const std::string& bytes);

}  // namespace qcfe

#endif  // QCFE_UTIL_FS_H_
