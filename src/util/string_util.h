#ifndef QCFE_UTIL_STRING_UTIL_H_
#define QCFE_UTIL_STRING_UTIL_H_

/// \file string_util.h
/// Small string helpers shared by the SQL tokenizer, printers and workloads.

#include <string>
#include <vector>

namespace qcfe {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(const std::string& s, char delim);

/// Strips ASCII whitespace from both ends.
std::string Trim(const std::string& s);

/// ASCII lower-casing.
std::string ToLower(const std::string& s);

/// ASCII upper-casing.
std::string ToUpper(const std::string& s);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// True if `s` contains `needle`.
bool Contains(const std::string& s, const std::string& needle);

/// Replaces every occurrence of `from` with `to`.
std::string ReplaceAll(std::string s, const std::string& from,
                       const std::string& to);

/// Fixed-precision double formatting ("%.3f" style) without locale surprises.
std::string FormatDouble(double v, int precision = 3);

}  // namespace qcfe

#endif  // QCFE_UTIL_STRING_UTIL_H_
