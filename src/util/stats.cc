#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace qcfe {

double QError(double actual, double predicted, double floor) {
  double a = std::max(actual, floor);
  double p = std::max(predicted, floor);
  return std::max(a / p, p / a);
}

std::vector<double> QErrors(const std::vector<double>& actual,
                            const std::vector<double>& predicted) {
  assert(actual.size() == predicted.size());
  std::vector<double> out(actual.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    out[i] = QError(actual[i], predicted[i]);
  }
  return out;
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double Stddev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Pearson(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  double ma = Mean(a), mb = Mean(b);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double da = a[i] - ma, db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

double Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  double pos = q * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

MetricSummary Summarize(const std::vector<double>& actual,
                        const std::vector<double>& predicted) {
  MetricSummary s;
  s.count = actual.size();
  if (actual.empty()) return s;
  std::vector<double> qe = QErrors(actual, predicted);
  s.pearson = Pearson(actual, predicted);
  s.mean_qerror = Mean(qe);
  s.median_qerror = Quantile(qe, 0.50);
  s.q25 = Quantile(qe, 0.25);
  s.q75 = Quantile(qe, 0.75);
  s.q90 = Quantile(qe, 0.90);
  s.q95 = Quantile(qe, 0.95);
  s.max_qerror = Quantile(qe, 1.0);
  return s;
}

}  // namespace qcfe
