#include "util/env_config.h"

#include <chrono>
#include <cstdlib>

#include "util/string_util.h"

namespace qcfe {

RunScale GetRunScale() {
  const char* v = std::getenv("QCFE_SCALE");
  if (v != nullptr && ToLower(v) == "full") return RunScale::kFull;
  return RunScale::kQuick;
}

size_t ScaledCount(size_t paper_count, size_t divisor, size_t min_quick) {
  if (GetRunScale() == RunScale::kFull) return paper_count;
  size_t scaled = paper_count / (divisor == 0 ? 1 : divisor);
  return scaled < min_quick ? min_quick : scaled;
}

std::string RunScaleName() {
  return GetRunScale() == RunScale::kFull ? "full" : "quick";
}

namespace {
double NowSeconds() {
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}
}  // namespace

WallTimer::WallTimer() : start_(NowSeconds()) {}

double WallTimer::Seconds() const { return NowSeconds() - start_; }

void WallTimer::Reset() { start_ = NowSeconds(); }

}  // namespace qcfe
