#include "util/env_config.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "util/clock.h"
#include "util/string_util.h"

namespace qcfe {

RunScale GetRunScale() {
  const char* v = std::getenv("QCFE_SCALE");
  if (v != nullptr && ToLower(v) == "full") return RunScale::kFull;
  return RunScale::kQuick;
}

size_t ScaledCount(size_t paper_count, size_t divisor, size_t min_quick) {
  if (GetRunScale() == RunScale::kFull) return paper_count;
  size_t scaled = paper_count / (divisor == 0 ? 1 : divisor);
  return scaled < min_quick ? min_quick : scaled;
}

std::string RunScaleName() {
  return GetRunScale() == RunScale::kFull ? "full" : "quick";
}

namespace {

/// Strict integer parse; malformed values fall back to serial (1) with a
/// warning rather than silently becoming 0 = all hardware threads.
int ParseThreadCount(const char* text, const char* origin) {
  char* end = nullptr;
  long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "warning: ignoring non-numeric %s value \"%s\"\n",
                 origin, text);
    return 1;
  }
  return static_cast<int>(value);
}

}  // namespace

int ThreadsFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      return ParseThreadCount(arg.c_str() + 10, "--threads");
    }
    if (arg == "--threads" && i + 1 < argc) {
      return ParseThreadCount(argv[i + 1], "--threads");
    }
  }
  const char* env = std::getenv("QCFE_THREADS");
  if (env != nullptr && *env != '\0') {
    return ParseThreadCount(env, "QCFE_THREADS");
  }
  return 1;
}

WallTimer::WallTimer() : WallTimer(Clock::Real()) {}

WallTimer::WallTimer(const Clock* clock) : clock_(clock), start_(Now()) {}

double WallTimer::Now() const {
  const Clock* clock = clock_ != nullptr ? clock_ : Clock::Real();
  return 1e-6 * static_cast<double>(clock->NowMicros());
}

double WallTimer::Seconds() const { return Now() - start_; }

void WallTimer::Reset() { start_ = Now(); }

}  // namespace qcfe
