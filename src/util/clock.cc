#include "util/clock.h"

#include <algorithm>
#include <chrono>

namespace qcfe {

Clock* Clock::Real() {
  // Leaked on purpose so the process-wide clock survives static destruction.
  // qcfe-lint: allow(no-naked-new)
  static RealClock* clock = new RealClock();
  return clock;
}

namespace {

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

RealClock::RealClock() : epoch_micros_(SteadyNowMicros()) {}

int64_t RealClock::NowMicros() const { return SteadyNowMicros() - epoch_micros_; }

bool RealClock::WaitUntil(CondVar* cv, Mutex* mu, int64_t deadline_micros,
                          const std::function<bool()>& wake) {
  if (deadline_micros == kNoDeadline) {
    cv->Wait(mu, wake);
    return true;
  }
  // Wait in bounded slices of the remaining duration, capped so that adding
  // an astronomical deadline (callers saturate toward kNoDeadline to
  // disable timeouts) cannot overflow the underlying timed wait.
  constexpr int64_t kMaxWaitMicros = int64_t{1} << 50;  // ~35 years
  while (!wake()) {
    const int64_t now = NowMicros();
    if (now >= deadline_micros) return wake();
    const int64_t remaining =
        std::min(deadline_micros - now, kMaxWaitMicros);
    // Timeout or spurious wake both just re-check predicate and deadline.
    (void)cv->WaitFor(mu, remaining);  // loop re-evaluates wake and deadline
  }
  return true;
}

FakeClock::FakeClock(int64_t start_micros) : now_micros_(start_micros) {}

FakeClock::~FakeClock() {
  MutexLock lock(&mu_);
  QCFE_DCHECK(waiters_.empty(),
              "FakeClock destroyed while threads are parked in WaitUntil");
}

int64_t FakeClock::NowMicros() const {
  return now_micros_.load(std::memory_order_acquire);
}

FakeClock::ScopedWaiterRegistration::ScopedWaiterRegistration(FakeClock* clock,
                                                              CondVar* cv,
                                                              Mutex* mu)
    : clock_(clock) {
  // The caller of WaitUntil already holds `mu`, so the lock order here is
  // caller-mutex -> clock mu_ (rank kClockWaiters, the tree's highest);
  // Advance() never holds mu_ while taking a caller mutex, so the order
  // cannot invert.
  MutexLock lock(&clock_->mu_);
  id_ = clock_->next_waiter_id_++;
  clock_->waiters_.push_back({cv, mu, id_});
}

FakeClock::ScopedWaiterRegistration::~ScopedWaiterRegistration() {
  MutexLock lock(&clock_->mu_);
  const bool erased = clock_->EraseWaiterLocked(id_);
  QCFE_DCHECK(erased,
              "FakeClock waiter registration vanished before its WaitUntil "
              "returned");
  // No stale entry may survive the unregister: ids are unique, so a second
  // hit means the registry double-registered this waiter.
  QCFE_DCHECK(!clock_->ContainsWaiterLocked(id_),
              "FakeClock waiter registry holds a stale duplicate entry");
}

bool FakeClock::EraseWaiterLocked(uint64_t id) {
  auto it = std::find_if(waiters_.begin(), waiters_.end(),
                         [&](const Waiter& w) { return w.id == id; });
  if (it == waiters_.end()) return false;
  waiters_.erase(it);
  return true;
}

bool FakeClock::ContainsWaiterLocked(uint64_t id) const {
  return std::any_of(waiters_.begin(), waiters_.end(),
                     [&](const Waiter& w) { return w.id == id; });
}

bool FakeClock::WaitUntil(CondVar* cv, Mutex* mu, int64_t deadline_micros,
                          const std::function<bool()>& wake) {
  // Register so Advance() can find this waiter; the scoped registration
  // unregisters on every exit path (including an exception thrown by the
  // predicate) and dchecks that its entry — and only its entry — is gone.
  ScopedWaiterRegistration registration(this, cv, mu);
  cv->Wait(mu, [&] {
    return wake() || NowMicros() >= deadline_micros;
  });
  return wake();
}

void FakeClock::Advance(int64_t micros) {
  std::vector<Waiter> snapshot;
  {
    MutexLock lock(&mu_);
    now_micros_.fetch_add(micros, std::memory_order_acq_rel);
    snapshot = waiters_;
  }
  // Wake every parked waiter. Locking (and immediately releasing) the
  // waiter's mutex before notifying closes the lost-wakeup window: a thread
  // that has evaluated its wait predicate against the old time but has not
  // yet blocked still holds its mutex, so by the time we acquire it the
  // thread is inside the wait and will receive the notification.
  for (const Waiter& w : snapshot) {
    w.mu->Lock();
    w.mu->Unlock();
    w.cv->NotifyAll();
  }
}

size_t FakeClock::waiter_count_for_test() const {
  MutexLock lock(&mu_);
  return waiters_.size();
}

}  // namespace qcfe
