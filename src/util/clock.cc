#include "util/clock.h"

#include <algorithm>

namespace qcfe {

Clock* Clock::Real() {
  // Leaked on purpose so the process-wide clock survives static destruction.
  // qcfe-lint: allow(no-naked-new)
  static RealClock* clock = new RealClock();
  return clock;
}

RealClock::RealClock() : epoch_(std::chrono::steady_clock::now()) {}

int64_t RealClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

bool RealClock::WaitUntil(std::condition_variable* cv,
                          std::unique_lock<std::mutex>* lock,
                          int64_t deadline_micros,
                          const std::function<bool()>& wake) {
  if (deadline_micros == kNoDeadline) {
    cv->wait(*lock, wake);
    return true;
  }
  // Wait on the remaining duration, capped so that adding an astronomical
  // deadline (callers saturate toward kNoDeadline to disable timeouts)
  // cannot overflow the steady_clock time_point arithmetic.
  constexpr int64_t kMaxWaitMicros = int64_t{1} << 50;  // ~35 years
  const int64_t now = NowMicros();
  int64_t remaining = deadline_micros > now ? deadline_micros - now : 0;
  if (remaining > kMaxWaitMicros) remaining = kMaxWaitMicros;
  return cv->wait_until(
      *lock,
      std::chrono::steady_clock::now() + std::chrono::microseconds(remaining),
      wake);
}

FakeClock::FakeClock(int64_t start_micros) : now_micros_(start_micros) {}

int64_t FakeClock::NowMicros() const {
  return now_micros_.load(std::memory_order_acquire);
}

bool FakeClock::WaitUntil(std::condition_variable* cv,
                          std::unique_lock<std::mutex>* lock,
                          int64_t deadline_micros,
                          const std::function<bool()>& wake) {
  // Register so Advance() can find this waiter. The caller already holds
  // `lock`, so the lock order here is caller-mutex -> mu_; Advance() never
  // holds mu_ while taking a caller mutex, so the order cannot invert.
  {
    std::lock_guard<std::mutex> l(mu_);
    waiters_.push_back({cv, lock->mutex()});
  }
  cv->wait(*lock, [&] {
    return wake() || NowMicros() >= deadline_micros;
  });
  {
    std::lock_guard<std::mutex> l(mu_);
    auto it = std::find_if(waiters_.begin(), waiters_.end(),
                           [&](const Waiter& w) { return w.cv == cv; });
    if (it != waiters_.end()) waiters_.erase(it);
  }
  return wake();
}

void FakeClock::Advance(int64_t micros) {
  std::vector<Waiter> snapshot;
  {
    std::lock_guard<std::mutex> l(mu_);
    now_micros_.fetch_add(micros, std::memory_order_acq_rel);
    snapshot = waiters_;
  }
  // Wake every parked waiter. Locking (and immediately releasing) the
  // waiter's mutex before notifying closes the lost-wakeup window: a thread
  // that has evaluated its wait predicate against the old time but has not
  // yet blocked still holds its mutex, so by the time we acquire it the
  // thread is inside cv::wait and will receive the notification.
  for (const Waiter& w : snapshot) {
    { std::lock_guard<std::mutex> wl(*w.mu); }
    w.cv->notify_all();
  }
}

}  // namespace qcfe
