#ifndef QCFE_UTIL_CHECK_H_
#define QCFE_UTIL_CHECK_H_

/// \file check.h
/// Always-on and debug-only invariant contracts.
///
/// QCFE's determinism story (bit-identical parallel/kernel/async paths)
/// rests on preconditions the type system cannot express: shape/stride
/// agreement between GEMM operands, tape-reuse discipline in backprop,
/// queue-state transitions in the async server, snapshot-store id
/// consistency. These macros make those contracts executable:
///
///  * QCFE_CHECK(cond, msg)    — always compiled in, every build type.
///    Aborts with file:line, the failed expression and `msg`. Use on cold
///    or per-call (not per-element) paths where a violated contract would
///    otherwise corrupt results silently.
///  * QCFE_CHECK_OK(expr)      — evaluates a Status-returning expression
///    and aborts on non-OK. The loud alternative to `(void)` for call
///    sites where failure is a programming error (e.g. appending rows of
///    a statically-known schema while building a synthetic workload).
///  * QCFE_DCHECK(cond, msg)   — compiled only when QCFE_ENABLE_DCHECKS
///    is defined (the `-DQCFE_ENABLE_DCHECKS=ON` CMake option, default ON
///    for Debug builds). In other builds it expands to a dead branch that
///    still type-checks its operands but evaluates nothing, so hot-loop
///    contracts (per-panel indexing, per-element bounds) are free in
///    release. Death-tested in tests/check_test.cc, including the
///    no-evaluation guarantee.
///
/// Contracts are for invariants — conditions that are true unless the
/// code is wrong. Recoverable conditions (bad user input, missing env id,
/// parse failures) stay on the Status path in util/status.h.

#include "util/status.h"

namespace qcfe {
namespace internal {

/// Prints "QCFE_CHECK failed at <file>:<line>: <cond> — <msg>" to stderr
/// and aborts. Out of line so the macro expansion stays one call.
[[noreturn]] void CheckFailed(const char* file, int line, const char* cond,
                              const char* msg);

/// QCFE_CHECK_OK failure path: renders the status and aborts.
[[noreturn]] void StatusCheckFailed(const char* file, int line,
                                    const char* expr, const Status& status);

}  // namespace internal
}  // namespace qcfe

/// Always-on contract. `cond` is evaluated exactly once.
#define QCFE_CHECK(cond, msg)                                              \
  (static_cast<bool>(cond)                                                 \
       ? static_cast<void>(0)                                              \
       : ::qcfe::internal::CheckFailed(__FILE__, __LINE__, #cond, (msg)))

/// Always-on Status contract: aborts (with the rendered status) when the
/// expression returns non-OK. Use where failure means the program is
/// wrong, not where the caller could meaningfully handle it.
#define QCFE_CHECK_OK(expr)                                                \
  do {                                                                     \
    const ::qcfe::Status qcfe_check_ok_st = (expr);                        \
    if (!qcfe_check_ok_st.ok()) {                                          \
      ::qcfe::internal::StatusCheckFailed(__FILE__, __LINE__, #expr,       \
                                          qcfe_check_ok_st);               \
    }                                                                      \
  } while (0)

#if defined(QCFE_ENABLE_DCHECKS)

/// Debug contract: identical to QCFE_CHECK when dchecks are compiled in.
#define QCFE_DCHECK(cond, msg) QCFE_CHECK(cond, msg)
/// True when QCFE_DCHECK is live in this translation unit.
#define QCFE_DCHECKS_ENABLED 1

#else

/// Release expansion: the condition is parsed and type-checked (so a
/// dcheck cannot rot behind the flag) but sits in a constant-false branch
/// the compiler deletes — zero evaluations, zero codegen, which is what
/// lets dchecks guard per-element kernel indexing.
#define QCFE_DCHECK(cond, msg)                         \
  (true ? static_cast<void>(0)                         \
        : QCFE_CHECK(cond, msg))
#define QCFE_DCHECKS_ENABLED 0

#endif  // QCFE_ENABLE_DCHECKS

#endif  // QCFE_UTIL_CHECK_H_
