#ifndef QCFE_UTIL_TABLE_PRINTER_H_
#define QCFE_UTIL_TABLE_PRINTER_H_

/// \file table_printer.h
/// Console table / CSV rendering for the benchmark harness. All paper tables
/// are printed through this so the output format is uniform.

#include <ostream>
#include <string>
#include <vector>

namespace qcfe {

/// Accumulates rows of strings and renders an ASCII-aligned table.
///
///   TablePrinter tp({"model", "pearson", "mean", "time"});
///   tp.AddRow({"QCFE(qpp)", "0.985", "1.072", "424.3"});
///   tp.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> row);

  /// Renders the table with column alignment and a header separator.
  void Print(std::ostream& os) const;

  /// Renders comma-separated values (no alignment, header first).
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner used between experiments in bench output.
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace qcfe

#endif  // QCFE_UTIL_TABLE_PRINTER_H_
