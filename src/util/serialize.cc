#include "util/serialize.h"

#include <cstring>

namespace qcfe {

void ByteWriter::PutF64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

Status ByteReader::ReadU8(uint8_t* out) {
  if (remaining() < 1) return Underrun(1);
  *out = data_[pos_++];
  return Status::OK();
}

Status ByteReader::ReadBool(bool* out) {
  uint8_t v = 0;
  QCFE_RETURN_IF_ERROR(ReadU8(&v));
  if (v > 1) {
    return Status::DataLoss("invalid bool byte " + std::to_string(v) +
                            " at offset " + std::to_string(pos_ - 1));
  }
  *out = v != 0;
  return Status::OK();
}

Status ByteReader::ReadU32(uint32_t* out) {
  if (remaining() < 4) return Underrun(4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  *out = v;
  return Status::OK();
}

Status ByteReader::ReadU64(uint64_t* out) {
  if (remaining() < 8) return Underrun(8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  *out = v;
  return Status::OK();
}

Status ByteReader::ReadI64(int64_t* out) {
  uint64_t v = 0;
  QCFE_RETURN_IF_ERROR(ReadU64(&v));
  // Implementation-defined before C++20 only in theory; two's complement in
  // practice everywhere this builds, and memcpy keeps it UB-free.
  std::memcpy(out, &v, sizeof(v));
  return Status::OK();
}

Status ByteReader::ReadF64(double* out) {
  uint64_t bits = 0;
  QCFE_RETURN_IF_ERROR(ReadU64(&bits));
  std::memcpy(out, &bits, sizeof(bits));
  return Status::OK();
}

Status ByteReader::ReadString(std::string* out) {
  uint64_t len = 0;
  QCFE_RETURN_IF_ERROR(ReadU64(&len));
  if (len > remaining()) {
    return Status::DataLoss("string length " + std::to_string(len) +
                            " exceeds remaining " +
                            std::to_string(remaining()) + " bytes at offset " +
                            std::to_string(pos_));
  }
  out->assign(reinterpret_cast<const char*>(data_ + pos_),
              static_cast<size_t>(len));
  pos_ += static_cast<size_t>(len);
  return Status::OK();
}

Status ByteReader::ReadCount(uint64_t* out, size_t min_bytes_per_elem) {
  uint64_t count = 0;
  QCFE_RETURN_IF_ERROR(ReadU64(&count));
  const uint64_t min_elem = min_bytes_per_elem > 0 ? min_bytes_per_elem : 1;
  if (count > remaining() / min_elem) {
    return Status::DataLoss("element count " + std::to_string(count) +
                            " cannot fit in remaining " +
                            std::to_string(remaining()) + " bytes at offset " +
                            std::to_string(pos_));
  }
  *out = count;
  return Status::OK();
}

Status ByteReader::ReadBytes(void* dst, size_t n) {
  if (remaining() < n) return Underrun(n);
  std::memcpy(dst, data_ + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status ByteReader::Skip(size_t n) {
  if (remaining() < n) return Underrun(n);
  pos_ += n;
  return Status::OK();
}

}  // namespace qcfe
