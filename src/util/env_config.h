#ifndef QCFE_UTIL_ENV_CONFIG_H_
#define QCFE_UTIL_ENV_CONFIG_H_

/// \file env_config.h
/// Run-scale selection for bench binaries. By default benches run a reduced
/// ("quick") configuration so the full suite completes in minutes; setting
/// QCFE_SCALE=full in the environment switches to paper-scale parameters.

#include <cstddef>
#include <string>

namespace qcfe {

/// Which parameter grid the bench binaries use.
enum class RunScale {
  kQuick,  ///< reduced scales; default, CI-friendly
  kFull,   ///< paper-scale grids (slow)
};

/// Reads QCFE_SCALE ("quick"/"full"); defaults to kQuick.
RunScale GetRunScale();

/// Scales a paper-sized count down for quick runs (divides by `divisor`,
/// clamped below by `min_quick`).
size_t ScaledCount(size_t paper_count, size_t divisor, size_t min_quick);

/// Human-readable name of the active scale ("quick" or "full").
std::string RunScaleName();

/// Worker-thread count for bench binaries: parses a `--threads=N` (or
/// `--threads N`) command-line argument, falling back to the QCFE_THREADS
/// environment variable, then to 1 (serial). 0 means one worker per
/// hardware thread. All parallel paths are bit-identical across thread
/// counts, so this flag only changes wall-clock.
int ThreadsFromArgs(int argc, char** argv);

class Clock;

/// Simple monotonic wall timer returning elapsed seconds. By default it
/// reads the real steady clock; tests inject a Clock (util/clock.h) so
/// elapsed-time behaviour can be asserted exactly instead of against
/// wall-clock bounds that flake under load.
class WallTimer {
 public:
  WallTimer();
  /// Timer driven by an injected clock (non-owning; may not be null).
  explicit WallTimer(const Clock* clock);
  /// Seconds since construction or the last Reset().
  double Seconds() const;
  void Reset();

 private:
  double Now() const;

  const Clock* clock_ = nullptr;  ///< null = real steady clock
  double start_;
};

}  // namespace qcfe

#endif  // QCFE_UTIL_ENV_CONFIG_H_
