#ifndef QCFE_UTIL_ALIGNED_H_
#define QCFE_UTIL_ALIGNED_H_

/// \file aligned.h
/// Minimal over-aligned allocator for the numeric containers. The SIMD
/// kernel tiers (nn/kernels_simd_*.cc) want every matrix row to start on a
/// cache-line boundary so vector loads never straddle lines; std::vector's
/// default allocator only guarantees alignof(std::max_align_t) (16 on
/// x86-64). C++17 aligned operator new/delete provide the stronger
/// guarantee without a platform-specific posix_memalign path.

#include <cstddef>
// The header name trips the naked-new pattern; nothing is allocated here.
#include <new>  // qcfe-lint: allow(no-naked-new)

namespace qcfe {

/// std::allocator drop-in whose allocations are kAlign-byte aligned.
/// kAlign must be a power of two and at least alignof(T).
template <typename T, std::size_t kAlign>
class AlignedAllocator {
 public:
  static_assert((kAlign & (kAlign - 1)) == 0, "alignment must be a power of 2");
  static_assert(kAlign >= alignof(T), "alignment weaker than the type's own");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, kAlign>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, kAlign>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(kAlign)));
  }

  void deallocate(T* p, std::size_t) noexcept {
    // Raw aligned operator delete is the only way to release memory from
    // the matching aligned operator new above; ownership never escapes
    // this allocator. qcfe-lint: allow(no-naked-new)
    ::operator delete(p, std::align_val_t(kAlign));
  }
};

template <typename T, typename U, std::size_t kAlign>
bool operator==(const AlignedAllocator<T, kAlign>&,
                const AlignedAllocator<U, kAlign>&) {
  return true;
}

template <typename T, typename U, std::size_t kAlign>
bool operator!=(const AlignedAllocator<T, kAlign>&,
                const AlignedAllocator<U, kAlign>&) {
  return false;
}

/// The kernel tiers' row alignment: one x86 cache line / AVX-512 vector.
constexpr std::size_t kMatrixAlignBytes = 64;

}  // namespace qcfe

#endif  // QCFE_UTIL_ALIGNED_H_
