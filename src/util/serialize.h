#ifndef QCFE_UTIL_SERIALIZE_H_
#define QCFE_UTIL_SERIALIZE_H_

/// \file serialize.h
/// Little-endian byte codec for the artifact format (core/artifact.h).
///
/// ByteWriter appends fixed-width integers, IEEE-754 doubles (by bit
/// pattern — serialization is exact, never a decimal round trip) and
/// length-prefixed strings to a growable buffer. ByteReader is the
/// bounds-checked inverse: every read validates against the remaining
/// byte count and returns kDataLoss on underrun, so hostile or truncated
/// bytes can never read out of bounds or trigger an allocation bomb.
/// Encoding is explicit shift-based little-endian — byte-identical output
/// on every platform regardless of host endianness.

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "util/status.h"

namespace qcfe {

/// Append-only little-endian encoder. Infallible: the buffer grows as
/// needed, and all values are encoded exactly (doubles as raw bit patterns).
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
    }
  }

  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
    }
  }

  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

  /// Exact: the double's bit pattern, not a decimal rendering. Round trips
  /// NaNs, infinities, -0.0 and denormals bit for bit.
  void PutF64(double v);

  /// u64 byte length followed by the raw bytes.
  void PutString(const std::string& s) {
    PutU64(s.size());
    buf_.append(s);
  }

  void PutBytes(const void* data, size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }

  size_t size() const { return buf_.size(); }
  const std::string& bytes() const { return buf_; }
  std::string TakeBytes() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian decoder over a borrowed byte range (the
/// caller keeps the buffer alive). Every read returns kDataLoss with the
/// current offset if fewer bytes remain than the value needs; no read ever
/// touches memory past `size`.
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : data_(static_cast<const unsigned char*>(data)), size_(size) {}
  explicit ByteReader(const std::string& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  size_t offset() const { return pos_; }
  size_t size() const { return size_; }
  size_t remaining() const { return size_ - pos_; }

  Status ReadU8(uint8_t* out);
  Status ReadBool(bool* out);
  Status ReadU32(uint32_t* out);
  Status ReadU64(uint64_t* out);
  Status ReadI64(int64_t* out);
  Status ReadF64(double* out);

  /// Length-prefixed string. The prefix is validated against the remaining
  /// byte count *before* any allocation, so a hostile 2^60 length yields
  /// kDataLoss, not an OOM.
  Status ReadString(std::string* out);

  /// Reads a u64 element count and validates `count * min_bytes_per_elem`
  /// against the remaining bytes, so callers can reserve()/resize() by the
  /// count without an allocation bomb. min_bytes_per_elem is the smallest
  /// possible encoding of one element (use 1 for variable-size elements).
  Status ReadCount(uint64_t* out, size_t min_bytes_per_elem);

  Status ReadBytes(void* dst, size_t n);
  Status Skip(size_t n);

 private:
  Status Underrun(size_t need) const {
    return Status::DataLoss("unexpected end of data at offset " +
                            std::to_string(pos_) + " (need " +
                            std::to_string(need) + " bytes, have " +
                            std::to_string(remaining()) + ")");
  }

  const unsigned char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace qcfe

#endif  // QCFE_UTIL_SERIALIZE_H_
