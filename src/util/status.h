#ifndef QCFE_UTIL_STATUS_H_
#define QCFE_UTIL_STATUS_H_

/// \file status.h
/// RocksDB-style Status / Result<T> error handling. Library code never throws
/// across public boundaries; fallible operations return Status (or Result<T>
/// when they also produce a value).

#include <string>
#include <utility>
#include <variant>

namespace qcfe {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kParseError,
  kNumericError,
  kInternal,
  /// The operation found (and replaced or refit) state that already
  /// existed — e.g. re-collecting a snapshot for a cached environment. The
  /// work was performed; the status names what collided so callers can
  /// react (or ignore it deliberately).
  kAlreadyExists,
  /// The service declined the request without attempting it: admission
  /// control rejected it (serving queue full) or the serving front end is
  /// shutting down. Retryable — nothing about the request itself is wrong.
  kUnavailable,
  /// Stored bytes are not what was written: CRC mismatch, truncation, bad
  /// magic, or a structurally impossible artifact. The data is gone or
  /// damaged; retrying the read will not help. Distinct from kIoError (the
  /// medium failed) and kFailedPrecondition (the data is intact but belongs
  /// to a different world — version or fingerprint skew).
  kDataLoss,
  /// The storage medium failed mid-operation: a write/fsync/rename/read
  /// returned an error (real errno or an injected fault). The artifact on
  /// disk is in whatever state the atomic-publish protocol guarantees —
  /// a failed save never damages the previously published file.
  kIoError,
};

/// Outcome of a fallible operation: a code plus a human-readable message.
///
/// Usage mirrors rocksdb::Status:
///   Status s = DoThing();
///   if (!s.ok()) return s;
///
/// The class is [[nodiscard]]: silently dropping a Status is a compile
/// warning (an error under -Werror CI), because an estimator pipeline that
/// swallows failures degrades silently instead of crashing. A call site
/// that genuinely does not care must say so:
///   (void)DoThing();  // reason the failure is acceptable here
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NumericError(std::string msg) {
    return Status(StatusCode::kNumericError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns a copy with `context` prepended to the message (same code), so
  /// an error gains operands as it unwinds:
  ///   "DataLoss: loading model.qcfa: model section: unexpected end of data
  ///    at offset 132". No-op on OK.
  Status WithContext(const std::string& context) const {
    if (ok()) return *this;
    if (message_.empty()) return Status(code_, context);
    return Status(code_, context + ": " + message_);
  }

  /// Renders e.g. "InvalidArgument: scale must be positive".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-error union. `ok()` implies `value()` is valid. [[nodiscard]]
/// for the same reason as Status: a discarded Result is a discarded error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value (success).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK Status (failure).
  Result(Status status) : data_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const {
    return std::holds_alternative<T>(data_);
  }
  /// Returns the error status (OK if the result holds a value).
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }
  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK status to the caller.
#define QCFE_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::qcfe::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace qcfe

#endif  // QCFE_UTIL_STATUS_H_
