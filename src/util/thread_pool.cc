#include "util/thread_pool.h"

#include <atomic>
#include <deque>
#include <exception>
#include <thread>

#include "util/sync.h"

namespace qcfe {

size_t ResolveNumThreads(int requested) {
  if (requested > 0) return static_cast<size_t>(requested);
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

std::vector<std::pair<size_t, size_t>> PartitionBlocks(size_t n,
                                                       size_t max_blocks) {
  std::vector<std::pair<size_t, size_t>> blocks;
  if (n == 0 || max_blocks == 0) return blocks;
  size_t k = std::min(max_blocks, n);
  size_t base = n / k;
  size_t rem = n % k;
  size_t begin = 0;
  for (size_t b = 0; b < k; ++b) {
    size_t end = begin + base + (b < rem ? 1 : 0);
    blocks.emplace_back(begin, end);
    begin = end;
  }
  return blocks;
}

struct ThreadPool::Impl {
  Mutex mu{lock_rank::kThreadPoolQueue};
  CondVar cv;
  std::deque<std::function<void()>> queue QCFE_GUARDED_BY(mu);
  bool shutting_down QCFE_GUARDED_BY(mu) = false;
  /// Written only during construction (before any external call can reach
  /// the pool) and joined in the destructor; not guarded.
  std::vector<std::thread> workers;

  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(&mu);
        cv.Wait(&mu, [this] {
          QCFE_ASSERT_HELD(mu);
          return shutting_down || !queue.empty();
        });
        if (queue.empty()) return;  // shutting down and drained
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();
    }
  }
};

// pimpl: Impl is incomplete in the header, so the raw pointer is owned here
// and deleted by the destructor below.
// qcfe-lint: allow(no-naked-new)
ThreadPool::ThreadPool(int num_threads) : impl_(new Impl()) {
  size_t n = ResolveNumThreads(num_threads);
  impl_->workers.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    impl_->workers.emplace_back([this] { impl_->WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&impl_->mu);
    impl_->shutting_down = true;
  }
  impl_->cv.NotifyAll();
  for (auto& worker : impl_->workers) worker.join();
  delete impl_;  // qcfe-lint: allow(no-naked-new) — pimpl counterpart
}

size_t ThreadPool::num_workers() const { return impl_->workers.size(); }

bool ThreadPool::InWorkerThread() const {
  std::thread::id self = std::this_thread::get_id();
  for (const auto& worker : impl_->workers) {
    if (worker.get_id() == self) return true;
  }
  return false;
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&impl_->mu);
    impl_->queue.push_back(std::move(task));
  }
  impl_->cv.NotifyOne();
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Serial fallbacks: no pool, a one-worker pool, a trivial range, or a
  // nested call from inside a worker (whose block must not block on the
  // queue it is itself draining).
  if (pool == nullptr || pool->num_workers() <= 1 || n == 1 ||
      pool->InWorkerThread()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::vector<std::pair<size_t, size_t>> blocks =
      PartitionBlocks(n, pool->num_workers());
  size_t num_blocks = blocks.size();

  struct Join {
    Mutex mu{lock_rank::kParallelForJoin};
    CondVar cv;
    size_t remaining QCFE_GUARDED_BY(mu) = 0;
    std::vector<std::exception_ptr> errors QCFE_GUARDED_BY(mu);
  } join;
  {
    // Uncontended (no task has been submitted yet); taken so the guarded
    // initialisation is lock-consistent for the analysis and TSan alike.
    MutexLock lock(&join.mu);
    join.remaining = num_blocks;
    join.errors.assign(num_blocks, nullptr);
  }

  for (size_t b = 0; b < num_blocks; ++b) {
    size_t begin = blocks[b].first;
    size_t end = blocks[b].second;
    pool->Submit([&join, &fn, b, begin, end] {
      try {
        for (size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        MutexLock lock(&join.mu);
        join.errors[b] = std::current_exception();
      }
      // Notify while holding the lock: once we release it the waiting
      // thread may return and destroy `join`, so no member may be touched
      // after the unlock.
      MutexLock lock(&join.mu);
      if (--join.remaining == 0) join.cv.NotifyOne();
    });
  }

  // Rethrow the first failing block — what a serial loop would have hit
  // first, independent of completion order.
  std::exception_ptr first_error;
  {
    MutexLock lock(&join.mu);
    join.cv.Wait(&join.mu, [&join] {
      QCFE_ASSERT_HELD(join.mu);
      return join.remaining == 0;
    });
    for (const std::exception_ptr& err : join.errors) {
      if (err != nullptr) {
        first_error = err;
        break;
      }
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace qcfe
