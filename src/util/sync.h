#ifndef QCFE_UTIL_SYNC_H_
#define QCFE_UTIL_SYNC_H_

/// \file sync.h
/// The project's only sanctioned synchronization primitives: capability-
/// annotated wrappers over the standard library that make locking
/// discipline a compile-time property instead of a comment.
///
/// Three layers of enforcement stack on top of each other:
///
///  1. **Clang Thread Safety Analysis.** Every mutex here is a
///     `capability`, every guarded member is declared `QCFE_GUARDED_BY`,
///     and every must-hold helper is `QCFE_REQUIRES`. Under clang the
///     whole tree compiles with `-Werror=thread-safety
///     -Werror=thread-safety-beta` (CI `thread-safety` job), so touching
///     a guarded member without its lock — or holding a lock across a
///     call that excludes it — is a build break, not a TSan roll of the
///     dice. On other compilers the macros expand to nothing.
///  2. **Debug lock-rank checking.** A `Mutex`/`SharedMutex` may carry a
///     rank (see `lock_rank` below). Under `QCFE_ENABLE_DCHECKS`, a
///     thread-local stack of held ranks verifies that ranked locks are
///     acquired in strictly increasing rank order; an inversion aborts
///     naming both ranks. Release builds compile the bookkeeping out of
///     the inline `Lock`/`Unlock` paths entirely — a ranked mutex costs
///     exactly a `std::mutex` (tests/sync_test.cc proves both halves).
///  3. **The `no-raw-mutex` lint** (tools/qcfe_lint.py) confines
///     `std::mutex`/`std::condition_variable`/scoped-locker spellings to
///     this file, so new code cannot opt out by accident.
///
/// NOTE: unlike util/check.h, this header must NOT be included with a
/// per-TU `#define`/`#undef` of QCFE_ENABLE_DCHECKS: `Mutex::Lock` is an
/// inline function, and two TUs disagreeing about its body is an ODR
/// violation. The dcheck flag for this header is the build-level one.
/// tests/sync_release_tu.cc documents the consequence: release-mode
/// behaviour is runtime-queried via `LockRankCheckingEnabled()`, not
/// macro-forced.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "util/check.h"

// ---------------------------------------------------------------------------
// Clang Thread Safety Analysis attribute macros. `QCFE_THREAD_ANNOTATION`
// expands to the attribute under clang and to nothing elsewhere, so GCC
// builds see plain classes.
// ---------------------------------------------------------------------------
#if defined(__clang__)
#define QCFE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define QCFE_THREAD_ANNOTATION(x)
#endif

/// Declares a class to be a lockable capability ("mutex", "shared_mutex").
#define QCFE_CAPABILITY(x) QCFE_THREAD_ANNOTATION(capability(x))
/// Declares an RAII class that acquires in its ctor, releases in its dtor.
#define QCFE_SCOPED_CAPABILITY QCFE_THREAD_ANNOTATION(scoped_lockable)
/// Member may only be touched while holding the named capability.
#define QCFE_GUARDED_BY(x) QCFE_THREAD_ANNOTATION(guarded_by(x))
/// Pointee may only be touched while holding the named capability.
#define QCFE_PT_GUARDED_BY(x) QCFE_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function requires the capability held (exclusively) on entry, and does
/// not release it.
#define QCFE_REQUIRES(...) \
  QCFE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function requires the capability held at least shared on entry.
#define QCFE_REQUIRES_SHARED(...) \
  QCFE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
/// Function acquires the capability exclusively and holds it on return.
#define QCFE_ACQUIRE(...) \
  QCFE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function acquires the capability shared and holds it on return.
#define QCFE_ACQUIRE_SHARED(...) \
  QCFE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
/// Function releases the capability (exclusive or shared) before return.
#define QCFE_RELEASE(...) \
  QCFE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function releases a shared hold of the capability before return.
#define QCFE_RELEASE_SHARED(...) \
  QCFE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (deadlock prevention: the function
/// acquires it itself).
#define QCFE_EXCLUDES(...) QCFE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Declares that the function dynamically verifies the capability is held
/// and informs the analysis of that fact (Mutex::AssertHeld).
#define QCFE_ASSERT_CAPABILITY(...) \
  QCFE_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))
/// Escape hatch: disables the analysis for one function. Every use needs a
/// comment explaining why the analysis cannot see the invariant.
#define QCFE_NO_THREAD_SAFETY_ANALYSIS \
  QCFE_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Statement form of the dynamic held-check: aborts under dchecks when the
/// calling thread does not hold `mu` exclusively, and tells the static
/// analysis that it is held from this point on. Use at the top of lambdas
/// that run under a lock the analysis cannot see (wake predicates passed
/// through Clock::WaitUntil / CondVar::Wait).
#define QCFE_ASSERT_HELD(mu) (mu).AssertHeld()

namespace qcfe {

class CondVar;

/// Rank table for every ranked mutex in the tree, in required acquisition
/// order: a thread may acquire a ranked lock only while all ranked locks
/// it already holds have strictly smaller ranks. Leaf mutexes (never held
/// across another acquisition) still get a rank so an accidental nesting
/// is caught the first time it runs under dchecks. Gaps are deliberate —
/// new subsystems slot in without renumbering. The README
/// ("Thread-safety analysis & lock ranks") mirrors this table.
namespace lock_rank {
/// ThreadPool's task queue: released before any task body runs.
inline constexpr int kThreadPoolQueue = 10;
/// ParallelFor's per-call join latch: taken by workers after their block
/// completes and by the caller while waiting; never wraps another lock.
inline constexpr int kParallelForJoin = 20;
/// AsyncServer's request queue: held while registering with the clock's
/// waiter list, so it must rank below kClockWaiters.
inline constexpr int kAsyncServerQueue = 30;
/// ObservationSink's window/label rings: a leaf taken from serving callers
/// after the AsyncServer queue lock is released (ReportObserved delivers
/// outside the queue lock), ranked above it so an accidental nesting under
/// the queue would still be legal in call order and caught if reversed.
inline constexpr int kObservationSink = 31;
/// DriftDetector's baseline/threshold tables: a leaf; evaluation copies
/// what it needs and computes outside the lock.
inline constexpr int kDriftDetector = 32;
/// AdaptationController's trip/worker state. The retrain cycle itself runs
/// with no controller lock held (it acquires thread-pool, model-swap and
/// server locks on its own), so this is a leaf below kModelSwap.
inline constexpr int kAdaptController = 33;
/// SwappableModel's publish lock: readers resolve the current model while
/// holding nothing heavier, and AsyncServer::stats() reads the version
/// while holding kAsyncServerQueue — so it must rank above the queue.
/// Publish never calls out while holding it (leaf on the write side).
inline constexpr int kModelSwap = 35;
/// Database's execution cache: leaf (execution runs outside the lock).
inline constexpr int kDatabaseCache = 40;
/// EstimatorRegistry's entry map: leaf (factories run outside the lock).
inline constexpr int kEstimatorRegistry = 50;
/// FakeClock's waiter registry: the highest rank in the tree because
/// WaitUntil registers while the caller's own mutex is held.
inline constexpr int kClockWaiters = 90;
}  // namespace lock_rank

/// Rank value meaning "unranked": the lock-rank checker ignores the mutex.
inline constexpr int kNoLockRank = -1;

namespace sync_internal {

/// Lock-rank checker core. Always compiled (sync.cc) so the checker itself
/// is death-testable in every build type; whether Mutex::Lock *calls* it
/// is decided by the build-level QCFE_ENABLE_DCHECKS flag.
///
/// Verifies `rank` is strictly greater than every held rank and pushes it;
/// aborts naming both ranks on violation. No-op for kNoLockRank.
void RankOnAcquire(int rank);
/// Pops the most recent occurrence of `rank` (locks may be released out of
/// LIFO order). No-op for kNoLockRank.
void RankOnRelease(int rank);
/// Highest rank currently held by the calling thread (kNoLockRank if none).
int TopHeldRank();

}  // namespace sync_internal

/// True when the sync layer was built with lock-rank checking and owner
/// tracking compiled in (-DQCFE_ENABLE_DCHECKS=ON). Out of line so it
/// reports sync.cc's build-level truth.
bool LockRankCheckingEnabled();

/// Exclusive mutex (std::mutex-backed) with capability annotations, an
/// optional lock rank, and debug owner tracking for AssertHeld.
class QCFE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// A ranked mutex participates in the debug lock-rank check; use a
  /// lock_rank constant (or a test-local value).
  explicit Mutex(int rank) : rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() QCFE_ACQUIRE() {
#if QCFE_DCHECKS_ENABLED
    sync_internal::RankOnAcquire(rank_);
#endif
    mu_.lock();
#if QCFE_DCHECKS_ENABLED
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
  }

  void Unlock() QCFE_RELEASE() {
#if QCFE_DCHECKS_ENABLED
    owner_.store(std::thread::id(), std::memory_order_relaxed);
    sync_internal::RankOnRelease(rank_);
#endif
    mu_.unlock();
  }

  /// Dynamic + static held-check; see QCFE_ASSERT_HELD. Under dchecks,
  /// aborts when the calling thread is not the current owner; in release
  /// it only informs the static analysis.
  void AssertHeld() const QCFE_ASSERT_CAPABILITY() {
#if QCFE_DCHECKS_ENABLED
    QCFE_CHECK(owner_.load(std::memory_order_relaxed) ==
                   std::this_thread::get_id(),
               "Mutex::AssertHeld: calling thread does not hold this mutex");
#endif
  }

  int rank() const { return rank_; }

 private:
  friend class CondVar;

  /// CondVar::Wait bookkeeping around the wait's release/reacquire window
  /// (the wait itself operates on mu_ directly via std::unique_lock).
  void PrepareToWait() {
#if QCFE_DCHECKS_ENABLED
    AssertHeld();
    owner_.store(std::thread::id(), std::memory_order_relaxed);
#endif
  }
  void ResumeAfterWait() {
#if QCFE_DCHECKS_ENABLED
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
  }

  std::mutex mu_;
  /// Debug-only state; members exist in every build so the class layout
  /// never depends on the dcheck flag.
  std::atomic<std::thread::id> owner_{};
  int rank_ = kNoLockRank;
};

/// Reader/writer mutex (std::shared_mutex-backed) for read-mostly state
/// (the estimator registry, the execution cache). Exclusive side mirrors
/// Mutex; the shared side has no owner tracking (shared_mutex cannot name
/// its readers) but still participates in rank checking — a reader hold
/// can deadlock against a writer just as well as an exclusive one.
class QCFE_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(int rank) : rank_(rank) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() QCFE_ACQUIRE() {
#if QCFE_DCHECKS_ENABLED
    sync_internal::RankOnAcquire(rank_);
#endif
    mu_.lock();
#if QCFE_DCHECKS_ENABLED
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
  }

  void Unlock() QCFE_RELEASE() {
#if QCFE_DCHECKS_ENABLED
    owner_.store(std::thread::id(), std::memory_order_relaxed);
    sync_internal::RankOnRelease(rank_);
#endif
    mu_.unlock();
  }

  void ReaderLock() QCFE_ACQUIRE_SHARED() {
#if QCFE_DCHECKS_ENABLED
    sync_internal::RankOnAcquire(rank_);
#endif
    mu_.lock_shared();
  }

  void ReaderUnlock() QCFE_RELEASE_SHARED() {
#if QCFE_DCHECKS_ENABLED
    sync_internal::RankOnRelease(rank_);
#endif
    mu_.unlock_shared();
  }

  /// Exclusive-hold assertion only: shared holders are anonymous.
  void AssertHeld() const QCFE_ASSERT_CAPABILITY() {
#if QCFE_DCHECKS_ENABLED
    QCFE_CHECK(owner_.load(std::memory_order_relaxed) ==
                   std::this_thread::get_id(),
               "SharedMutex::AssertHeld: calling thread does not hold this "
               "mutex exclusively");
#endif
  }

  int rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  std::atomic<std::thread::id> owner_{};
  int rank_ = kNoLockRank;
};

/// RAII exclusive lock on a Mutex.
class QCFE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) QCFE_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() QCFE_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII shared (reader) lock on a SharedMutex.
class QCFE_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) QCFE_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderMutexLock() QCFE_RELEASE() { mu_->ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class QCFE_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) QCFE_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() QCFE_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable bound to qcfe::Mutex. Waiting releases and
/// reacquires the mutex, so the net capability effect is "requires":
/// callers hold the mutex before and after, which is exactly what the
/// annotation says. Wake predicates are evaluated with the mutex held —
/// start them with QCFE_ASSERT_HELD(mu) so the analysis knows it too.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken). Prefer the predicate
  /// overload.
  void Wait(Mutex* mu) QCFE_REQUIRES(mu);

  /// Blocks until `pred()` is true. `pred` runs with `mu` held.
  template <typename Pred>
  void Wait(Mutex* mu, Pred pred) QCFE_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  /// Blocks until notified or `timeout_micros` elapses (whichever first).
  /// Returns false iff the wait timed out. Like std::condition_variable,
  /// may also return true spuriously — callers loop on their predicate
  /// (Clock::WaitUntil does).
  bool WaitFor(Mutex* mu, int64_t timeout_micros) QCFE_REQUIRES(mu);

  void NotifyOne();
  void NotifyAll();

 private:
  std::condition_variable cv_;
};

}  // namespace qcfe

#endif  // QCFE_UTIL_SYNC_H_
