#ifndef QCFE_UTIL_RNG_H_
#define QCFE_UTIL_RNG_H_

/// \file rng.h
/// Deterministic pseudo-random generation used across the whole project.
/// Every stochastic component takes an explicit seed so experiments are
/// reproducible run-to-run and machine-to-machine (no std:: distribution
/// implementation dependence).

#include <cstdint>
#include <string>
#include <vector>

namespace qcfe {

/// SplitMix64-based generator with hand-rolled distributions.
///
/// Deliberately small: uniform ints/doubles, Gaussian (Box-Muller),
/// log-normal, Zipf, sampling and shuffling. All methods are deterministic
/// functions of the seed and the call sequence.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ^ 0x9E3779B97F4A7C15ULL) {
    // Warm up so small seeds decorrelate quickly.
    Next();
    Next();
  }

  /// Next raw 64-bit value (SplitMix64 step).
  uint64_t Next();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (stateless variant; no cached spare).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Log-normal multiplicative noise centred at 1.0:
  /// exp(N(-sigma^2/2, sigma)) so that E[value] == 1.
  double LognormalNoise(double sigma);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Zipf-distributed integer in [1, n] with exponent `s` (s=0 -> uniform).
  /// Uses rejection-free inverse-CDF over a cached table when n is small.
  int64_t Zipf(int64_t n, double s);

  /// Picks one element uniformly.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    return items[static_cast<size_t>(UniformInt(0, items.size() - 1))];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

  /// Random lowercase ASCII string of the given length.
  std::string RandomString(size_t length);

  /// Derives an independent child generator; stream `i` differs from stream
  /// `j` for i != j even with the same parent state.
  Rng Fork(uint64_t stream);

  /// Derives an independent deterministic sub-stream identified by
  /// `stream`. Unlike Fork(), Split() is const — it does not advance this
  /// generator — so Split(i) depends only on the generator's state at the
  /// call and the stream id, never on how many sibling streams were split
  /// before it. This is the per-task seeding primitive for parallel
  /// collection and reduction: task i always gets the same stream whether
  /// tasks run serially, in any interleaving, or not at all.
  Rng Split(uint64_t stream) const;

  /// Raw generator state, for model persistence (core/artifact.h): restoring
  /// it resumes the stream exactly where the saved generator left off, so a
  /// loaded model's future stochastic decisions (e.g. warm-start retraining)
  /// match the never-persisted original bit for bit.
  uint64_t state() const { return state_; }
  void set_state(uint64_t state) { state_ = state; }

 private:
  uint64_t state_;
};

}  // namespace qcfe

#endif  // QCFE_UTIL_RNG_H_
