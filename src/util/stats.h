#ifndef QCFE_UTIL_STATS_H_
#define QCFE_UTIL_STATS_H_

/// \file stats.h
/// Metric utilities used throughout the evaluation: q-error (paper Eq. 2),
/// Pearson correlation (paper Eq. 3), quantiles and summary statistics.

#include <cstddef>
#include <vector>

namespace qcfe {

/// q-error of one prediction (paper Equation 2):
///   max(actual/predict, predict/actual), both clamped away from zero.
/// A perfect prediction scores 1.0; the metric is symmetric in over/under
/// estimation. Non-positive inputs are clamped to `floor` first (real query
/// latencies are positive; learned models may emit tiny negatives).
double QError(double actual, double predicted, double floor = 1e-6);

/// Element-wise q-errors for two aligned vectors.
std::vector<double> QErrors(const std::vector<double>& actual,
                            const std::vector<double>& predicted);

/// Arithmetic mean; returns 0 for an empty vector.
double Mean(const std::vector<double>& xs);

/// Population variance; returns 0 for fewer than 2 elements.
double Variance(const std::vector<double>& xs);

/// Population standard deviation.
double Stddev(const std::vector<double>& xs);

/// Pearson correlation coefficient (paper Equation 3). Returns 0 when either
/// side is constant (undefined correlation).
double Pearson(const std::vector<double>& a, const std::vector<double>& b);

/// Quantile with linear interpolation, q in [0, 1]. Copies and sorts.
double Quantile(std::vector<double> xs, double q);

/// Summary bundle reported by the harness for one model/benchmark/scale cell.
struct MetricSummary {
  double pearson = 0.0;
  double mean_qerror = 0.0;
  double median_qerror = 0.0;
  double q25 = 0.0;   ///< 25th percentile q-error (Fig. 5 box lower edge)
  double q75 = 0.0;   ///< 75th percentile q-error (Fig. 5 box upper edge)
  double q90 = 0.0;   ///< 90th percentile q-error
  double q95 = 0.0;   ///< 95th percentile q-error
  double max_qerror = 0.0;
  size_t count = 0;
};

/// Computes the full summary from aligned actual/predicted vectors.
MetricSummary Summarize(const std::vector<double>& actual,
                        const std::vector<double>& predicted);

}  // namespace qcfe

#endif  // QCFE_UTIL_STATS_H_
