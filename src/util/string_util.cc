#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace qcfe {

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool Contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

std::string ReplaceAll(std::string s, const std::string& from,
                       const std::string& to) {
  if (from.empty()) return s;
  size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return std::string(buf);
}

}  // namespace qcfe
