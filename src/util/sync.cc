#include "util/sync.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace qcfe {

bool LockRankCheckingEnabled() { return QCFE_DCHECKS_ENABLED != 0; }

namespace sync_internal {
namespace {

/// Ranks of the ranked locks the calling thread currently holds, in
/// acquisition order. Monotone acquisition is enforced on push, so the
/// back is always the maximum.
std::vector<int>& HeldRanks() {
  thread_local std::vector<int> held;
  return held;
}

[[noreturn]] void RankViolation(int held, int acquiring) {
  std::fprintf(stderr,
               "QCFE lock-rank violation: acquiring rank %d while holding "
               "rank %d; ranked mutexes must be acquired in strictly "
               "increasing rank order (see lock_rank in util/sync.h)\n",
               acquiring, held);
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void RankOnAcquire(int rank) {
  if (rank == kNoLockRank) return;
  std::vector<int>& held = HeldRanks();
  if (!held.empty() && held.back() >= rank) RankViolation(held.back(), rank);
  held.push_back(rank);
}

void RankOnRelease(int rank) {
  if (rank == kNoLockRank) return;
  std::vector<int>& held = HeldRanks();
  // Locks may be released out of LIFO order: drop the most recent
  // occurrence of this rank.
  auto it = std::find(held.rbegin(), held.rend(), rank);
  QCFE_CHECK(it != held.rend(),
             "lock-rank bookkeeping: released a ranked mutex this thread "
             "does not hold");
  held.erase(std::next(it).base());
}

int TopHeldRank() {
  const std::vector<int>& held = HeldRanks();
  return held.empty() ? kNoLockRank : held.back();
}

}  // namespace sync_internal

void CondVar::Wait(Mutex* mu) {
  mu->PrepareToWait();
  // Adopt the already-held native mutex for the duration of the wait; the
  // release() afterwards hands ownership back to the caller's scoped lock
  // without unlocking.
  std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
  mu->ResumeAfterWait();
}

bool CondVar::WaitFor(Mutex* mu, int64_t timeout_micros) {
  if (timeout_micros < 0) timeout_micros = 0;
  mu->PrepareToWait();
  std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
  const std::cv_status status =
      cv_.wait_for(lock, std::chrono::microseconds(timeout_micros));
  lock.release();
  mu->ResumeAfterWait();
  return status == std::cv_status::no_timeout;
}

void CondVar::NotifyOne() { cv_.notify_one(); }

void CondVar::NotifyAll() { cv_.notify_all(); }

}  // namespace qcfe
