#include "util/status.h"

namespace qcfe {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNumericError:
      return "NumericError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kIoError:
      return "IOError";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace qcfe
