#ifndef QCFE_UTIL_CRC32_H_
#define QCFE_UTIL_CRC32_H_

/// \file crc32.h
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte range.
/// Used by the artifact layer (core/artifact.h) to checksum each on-disk
/// section so bit rot and truncation surface as typed kDataLoss errors
/// instead of garbage model weights. Pure integer arithmetic — the same
/// bytes hash to the same value on every platform and compiler.

#include <cstddef>
#include <cstdint>
#include <string>

namespace qcfe {

/// CRC-32 of `n` bytes starting at `data` (init 0xFFFFFFFF, final XOR).
/// Crc32("123456789") == 0xCBF43926, the standard check value.
uint32_t Crc32(const void* data, size_t n);

inline uint32_t Crc32(const std::string& bytes) {
  return Crc32(bytes.data(), bytes.size());
}

}  // namespace qcfe

#endif  // QCFE_UTIL_CRC32_H_
