#ifndef QCFE_UTIL_CLOCK_H_
#define QCFE_UTIL_CLOCK_H_

/// \file clock.h
/// Injectable time source for everything in the serving path that waits on
/// a deadline. Production code takes a Clock* and uses it both to read the
/// current time and to perform its condition-variable waits; tests inject a
/// FakeClock and step it manually, so flush-timing behaviour (deadline
/// flushes, drain semantics, admission windows) is exercised without a
/// single sleep and is fully deterministic under ThreadSanitizer.
///
/// The design couples waiting to the clock on purpose: a fake clock that
/// only answered NowMicros() could not wake a thread blocked in a real
/// cv::wait_until. WaitUntil hands the clock the caller's condition
/// variable and lock, so the real clock maps the deadline onto a
/// steady_clock wait while the fake clock parks the waiter and wakes it
/// from Advance().

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <vector>

namespace qcfe {

/// Monotonic microsecond time source plus deadline-aware waiting.
class Clock {
 public:
  /// Deadline value meaning "wait on the predicate alone, forever".
  static constexpr int64_t kNoDeadline = std::numeric_limits<int64_t>::max();

  virtual ~Clock() = default;

  /// Microseconds since this clock's epoch (construction for RealClock, the
  /// configured start for FakeClock). Monotonic, never wraps in practice.
  virtual int64_t NowMicros() const = 0;

  /// Blocks the calling thread on `cv` (whose associated mutex `lock` must
  /// hold) until `wake()` returns true or this clock reaches
  /// `deadline_micros`, whichever comes first. `wake` is evaluated only
  /// with the lock held. Returns the final value of `wake()` — false means
  /// the deadline fired first. Other threads signal state changes by
  /// notifying `cv` as usual; time-driven wakeups come from the clock
  /// itself (the real clock's timed wait, or FakeClock::Advance).
  virtual bool WaitUntil(std::condition_variable* cv,
                         std::unique_lock<std::mutex>* lock,
                         int64_t deadline_micros,
                         const std::function<bool()>& wake) = 0;

  /// Process-wide real (steady_clock-backed) instance. Never null; callers
  /// that accept an optional Clock* treat null as Real().
  static Clock* Real();
};

/// Wall clock backed by std::chrono::steady_clock. Epoch is the singleton's
/// construction time, so NowMicros() values stay small and overflow-safe
/// when added to delays.
class RealClock : public Clock {
 public:
  RealClock();
  int64_t NowMicros() const override;
  bool WaitUntil(std::condition_variable* cv,
                 std::unique_lock<std::mutex>* lock, int64_t deadline_micros,
                 const std::function<bool()>& wake) override;

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// Manually-stepped clock for tests. Time only moves when Advance() is
/// called; WaitUntil parks the caller until its predicate is satisfied or
/// an Advance() carries the clock past the deadline. There are no timed
/// waits anywhere in the implementation, so tests built on FakeClock are
/// sleep-free and deterministic.
///
/// Lifetime contract: Advance() notifies the condition variables of every
/// thread currently blocked in WaitUntil, so the objects those threads wait
/// on (their cv and mutex) must stay alive for the duration of any
/// concurrent Advance() call. Sequencing Advance() before shutdown on the
/// test thread — the natural test shape — satisfies this trivially.
class FakeClock : public Clock {
 public:
  explicit FakeClock(int64_t start_micros = 0);

  int64_t NowMicros() const override;
  bool WaitUntil(std::condition_variable* cv,
                 std::unique_lock<std::mutex>* lock, int64_t deadline_micros,
                 const std::function<bool()>& wake) override;

  /// Steps time forward and wakes every parked WaitUntil so it can re-check
  /// its predicate and deadline against the new time.
  void Advance(int64_t micros);

 private:
  struct Waiter {
    std::condition_variable* cv;
    std::mutex* mu;
  };

  std::atomic<int64_t> now_micros_;
  mutable std::mutex mu_;            ///< guards waiters_
  std::vector<Waiter> waiters_;
};

}  // namespace qcfe

#endif  // QCFE_UTIL_CLOCK_H_
