#ifndef QCFE_UTIL_CLOCK_H_
#define QCFE_UTIL_CLOCK_H_

/// \file clock.h
/// Injectable time source for everything in the serving path that waits on
/// a deadline. Production code takes a Clock* and uses it both to read the
/// current time and to perform its condition-variable waits; tests inject a
/// FakeClock and step it manually, so flush-timing behaviour (deadline
/// flushes, drain semantics, admission windows) is exercised without a
/// single sleep and is fully deterministic under ThreadSanitizer.
///
/// The design couples waiting to the clock on purpose: a fake clock that
/// only answered NowMicros() could not wake a thread blocked in a real
/// timed wait. WaitUntil hands the clock the caller's CondVar and Mutex
/// (util/sync.h — the annotated primitives, so the caller's hold is
/// checked by thread-safety analysis), and the real clock maps the
/// deadline onto a timed wait while the fake clock parks the waiter and
/// wakes it from Advance().

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "util/sync.h"

namespace qcfe {

/// Monotonic microsecond time source plus deadline-aware waiting.
class Clock {
 public:
  /// Deadline value meaning "wait on the predicate alone, forever".
  static constexpr int64_t kNoDeadline = std::numeric_limits<int64_t>::max();

  virtual ~Clock() = default;

  /// Microseconds since this clock's epoch (construction for RealClock, the
  /// configured start for FakeClock). Monotonic, never wraps in practice.
  virtual int64_t NowMicros() const = 0;

  /// Blocks the calling thread on `cv` until `wake()` returns true or this
  /// clock reaches `deadline_micros`, whichever comes first. The caller
  /// must hold `mu` (compile-time checked under clang); `wake` is
  /// evaluated only with the lock held, so predicates should open with
  /// QCFE_ASSERT_HELD(*mu) to teach the analysis the same fact. Returns
  /// the final value of `wake()` — false means the deadline fired first.
  /// Other threads signal state changes by notifying `cv` as usual;
  /// time-driven wakeups come from the clock itself (the real clock's
  /// timed wait, or FakeClock::Advance).
  virtual bool WaitUntil(CondVar* cv, Mutex* mu, int64_t deadline_micros,
                         const std::function<bool()>& wake)
      QCFE_REQUIRES(*mu) = 0;

  /// Process-wide real (steady_clock-backed) instance. Never null; callers
  /// that accept an optional Clock* treat null as Real().
  static Clock* Real();
};

/// Wall clock backed by std::chrono::steady_clock. Epoch is the singleton's
/// construction time, so NowMicros() values stay small and overflow-safe
/// when added to delays.
class RealClock : public Clock {
 public:
  RealClock();
  int64_t NowMicros() const override;
  bool WaitUntil(CondVar* cv, Mutex* mu, int64_t deadline_micros,
                 const std::function<bool()>& wake)
      QCFE_REQUIRES(*mu) override;

 private:
  int64_t epoch_micros_;
};

/// Manually-stepped clock for tests. Time only moves when Advance() is
/// called; WaitUntil parks the caller until its predicate is satisfied or
/// an Advance() carries the clock past the deadline. There are no timed
/// waits anywhere in the implementation, so tests built on FakeClock are
/// sleep-free and deterministic.
///
/// Lifetime contract: Advance() notifies the condition variables of every
/// thread currently blocked in WaitUntil, so the objects those threads wait
/// on (their cv and mutex) must stay alive for the duration of any
/// concurrent Advance() call. Every WaitUntil registers through a scoped
/// registration whose destructor removes exactly its own entry (keyed by a
/// unique id, so concurrent waiters on one cv cannot unregister each
/// other), and the FakeClock destructor dchecks that no waiter outlived
/// its WaitUntil.
class FakeClock : public Clock {
 public:
  explicit FakeClock(int64_t start_micros = 0);
  ~FakeClock() override;

  int64_t NowMicros() const override;
  bool WaitUntil(CondVar* cv, Mutex* mu, int64_t deadline_micros,
                 const std::function<bool()>& wake)
      QCFE_REQUIRES(*mu) override;

  /// Steps time forward and wakes every parked WaitUntil so it can re-check
  /// its predicate and deadline against the new time. Takes the waiter
  /// registry lock itself, so the caller must not hold it.
  void Advance(int64_t micros) QCFE_EXCLUDES(mu_);

  /// Number of threads currently parked in WaitUntil. Test hook for the
  /// waiter-registry lifetime regression (tests/util_test.cc).
  size_t waiter_count_for_test() const QCFE_EXCLUDES(mu_);

 private:
  struct Waiter {
    CondVar* cv;
    Mutex* mu;
    uint64_t id;  ///< unique per registration; the unregister key
  };

  /// Scoped registry entry: registers in the constructor, removes exactly
  /// its own entry in the destructor, and dchecks that no stale entry with
  /// its id survives — closing the lifetime hole where an erase keyed on
  /// the cv pointer could remove a *different* thread's registration (two
  /// workers legitimately wait on the same cv) and leave a dangling one
  /// behind.
  class ScopedWaiterRegistration {
   public:
    ScopedWaiterRegistration(FakeClock* clock, CondVar* cv, Mutex* mu);
    ~ScopedWaiterRegistration();

    ScopedWaiterRegistration(const ScopedWaiterRegistration&) = delete;
    ScopedWaiterRegistration& operator=(const ScopedWaiterRegistration&) =
        delete;

   private:
    FakeClock* const clock_;
    uint64_t id_;
  };

  /// Removes the registration with `id`; returns whether it was present.
  bool EraseWaiterLocked(uint64_t id) QCFE_REQUIRES(mu_);
  /// True when a registration with `id` is present (stale-entry dcheck).
  bool ContainsWaiterLocked(uint64_t id) const QCFE_REQUIRES(mu_);

  std::atomic<int64_t> now_micros_;
  /// Ranked above every mutex that can be held while entering WaitUntil
  /// (the registration locks mu_ under the caller's mutex).
  mutable Mutex mu_{lock_rank::kClockWaiters};
  std::vector<Waiter> waiters_ QCFE_GUARDED_BY(mu_);
  uint64_t next_waiter_id_ QCFE_GUARDED_BY(mu_) = 0;
};

}  // namespace qcfe

#endif  // QCFE_UTIL_CLOCK_H_
