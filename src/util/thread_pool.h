#ifndef QCFE_UTIL_THREAD_POOL_H_
#define QCFE_UTIL_THREAD_POOL_H_

/// \file thread_pool.h
/// The shared concurrency layer. One ThreadPool is created per Pipeline (or
/// per bench/test) and threaded through collection, snapshot fitting,
/// feature reduction and batched serving. The design rules every parallel
/// call site in this project follows:
///
///  * Determinism first. Work is partitioned into fixed contiguous blocks
///    (no work stealing), every task writes only its own output slot, and
///    callers reduce results in index order. Combined with per-task RNG
///    streams (Rng::Split), any code built on ParallelFor/ParallelMap
///    produces bit-identical results for every thread count, including the
///    inline serial path (null pool / one worker).
///  * Exceptions propagate. A task that throws does not crash a worker: the
///    exception is captured and rethrown on the calling thread — the one
///    from the lowest block index when several blocks throw, matching what
///    a serial loop would have surfaced first.
///  * Nesting degrades gracefully. A ParallelFor issued from inside a pool
///    worker runs inline (serially) instead of deadlocking on the pool's
///    own queue, so helpers can parallelize unconditionally.

#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

namespace qcfe {

/// User-facing parallelism knob, threaded from the harness --threads flag
/// down through PipelineConfig to every parallel call site.
struct Parallelism {
  /// Unset (default) = inherit the surrounding default: serial, unless a
  /// harness context threads its --threads setting through. Explicit 1 =
  /// serial even when the context is parallel. 0 or negative = one worker
  /// per hardware thread. Above 1 = that many workers.
  std::optional<int> num_threads;
};

/// Resolves a Parallelism request to a concrete worker count (>= 1).
size_t ResolveNumThreads(int requested);

/// Splits [0, n) into at most `max_blocks` contiguous [begin, end) blocks,
/// the first n % k blocks one longer. This fixed partition is what
/// ParallelFor schedules and what sharded serving paths use directly when
/// they need one explicit state object (scratch buffers) per block.
std::vector<std::pair<size_t, size_t>> PartitionBlocks(size_t n,
                                                       size_t max_blocks);

/// Fixed-size worker pool with a plain FIFO queue (deliberately
/// work-stealing-free: block-partitioned loops don't benefit, and static
/// scheduling keeps runs reproducible and easy to reason about under TSan).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 or negative means one per hardware
  /// thread.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const;

  /// True when the calling thread is one of this pool's workers (used by
  /// ParallelFor to run nested loops inline instead of deadlocking).
  bool InWorkerThread() const;

  /// Enqueues a task. Tasks must not throw (ParallelFor wraps its blocks
  /// with exception capture; use it rather than Submit for user code).
  void Submit(std::function<void()> task);

 private:
  struct Impl;
  Impl* impl_;
};

/// Runs fn(i) for every i in [0, n). With a usable pool, [0, n) is split
/// into at most num_workers contiguous blocks, one task per block; indices
/// inside a block run in ascending order, exactly like the serial loop.
/// Runs inline (plain serial loop) when `pool` is null, has one worker, the
/// range is empty or a single index, or the caller is itself a pool worker.
/// The first exception (lowest block) is rethrown on the calling thread.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

/// ParallelFor producing a value per index, in index order. T must be
/// default-constructible; each task writes only its own slot.
template <typename T>
std::vector<T> ParallelMap(ThreadPool* pool, size_t n,
                           const std::function<T(size_t)>& fn) {
  std::vector<T> out(n);
  ParallelFor(pool, n, [&](size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace qcfe

#endif  // QCFE_UTIL_THREAD_POOL_H_
