#include "sql/parser.h"

#include <cstdlib>

#include "sql/tokenizer.h"
#include "util/string_util.h"

namespace qcfe {

namespace {

/// Token cursor with small helpers.
class Cursor {
 public:
  explicit Cursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  bool IsKeyword(const std::string& kw) const {
    return Peek().type == TokenType::kIdentifier && Peek().text == kw;
  }
  bool AcceptKeyword(const std::string& kw) {
    if (!IsKeyword(kw)) return false;
    Next();
    return true;
  }
  bool AcceptPunct(const std::string& p) {
    if (Peek().type != TokenType::kPunct || Peek().text != p) return false;
    Next();
    return true;
  }
  Status Expect(TokenType type, const std::string& what) {
    if (Peek().type != type) {
      return Status::ParseError("expected " + what + " near offset " +
                                std::to_string(Peek().position));
    }
    return Status::OK();
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

bool IsAggregateName(const std::string& name, Aggregate::Kind* kind) {
  if (name == "count") *kind = Aggregate::Kind::kCount;
  else if (name == "sum") *kind = Aggregate::Kind::kSum;
  else if (name == "avg") *kind = Aggregate::Kind::kAvg;
  else if (name == "min") *kind = Aggregate::Kind::kMin;
  else if (name == "max") *kind = Aggregate::Kind::kMax;
  else return false;
  return true;
}

/// The parser builds unresolved refs first; single-table queries may omit the
/// qualifier.
struct ParserState {
  QuerySpec query;

  Status ResolveRef(ColumnRef* ref) const {
    if (!ref->table.empty()) return Status::OK();
    if (query.tables.size() == 1) {
      ref->table = query.tables[0];
      return Status::OK();
    }
    return Status::ParseError("unqualified column '" + ref->column +
                              "' with multiple tables");
  }
};

Result<ColumnRef> ParseColumnRef(Cursor* cur) {
  QCFE_RETURN_IF_ERROR(cur->Expect(TokenType::kIdentifier, "column reference"));
  std::string first = cur->Next().text;
  if (cur->AcceptPunct(".")) {
    QCFE_RETURN_IF_ERROR(cur->Expect(TokenType::kIdentifier, "column name"));
    return ColumnRef{first, cur->Next().text};
  }
  return ColumnRef{"", first};
}

Result<Value> ParseLiteral(Cursor* cur) {
  const Token& t = cur->Peek();
  if (t.type == TokenType::kNumber) {
    std::string text = cur->Next().text;
    if (text.find('.') != std::string::npos) {
      return Value(std::strtod(text.c_str(), nullptr));
    }
    return Value(static_cast<int64_t>(std::strtoll(text.c_str(), nullptr, 10)));
  }
  if (t.type == TokenType::kString) {
    return Value(cur->Next().text);
  }
  if (t.type == TokenType::kPlaceholder) {
    return Status::ParseError(
        "unbound placeholder {" + t.text +
        "}: instantiate the template before parsing");
  }
  return Status::ParseError("expected literal near offset " +
                            std::to_string(t.position));
}

Status ParsePredicateOrJoin(Cursor* cur, ParserState* state) {
  Result<ColumnRef> lhs = ParseColumnRef(cur);
  if (!lhs.ok()) return lhs.status();

  const Token& t = cur->Peek();
  if (t.type == TokenType::kOperator) {
    std::string op = cur->Next().text;
    // Column-vs-column equality is an implicit join condition.
    if (op == "=" && cur->Peek().type == TokenType::kIdentifier &&
        !cur->IsKeyword("true") && !cur->IsKeyword("false")) {
      Result<ColumnRef> rhs = ParseColumnRef(cur);
      if (!rhs.ok()) return rhs.status();
      QCFE_RETURN_IF_ERROR(state->ResolveRef(&lhs.value()));
      QCFE_RETURN_IF_ERROR(state->ResolveRef(&rhs.value()));
      state->query.joins.push_back({lhs.value(), rhs.value()});
      return Status::OK();
    }
    Result<Value> lit = ParseLiteral(cur);
    if (!lit.ok()) return lit.status();
    Predicate p;
    QCFE_RETURN_IF_ERROR(state->ResolveRef(&lhs.value()));
    p.column = lhs.value();
    if (op == "=") p.op = CompareOp::kEq;
    else if (op == "<>") p.op = CompareOp::kNe;
    else if (op == "<") p.op = CompareOp::kLt;
    else if (op == "<=") p.op = CompareOp::kLe;
    else if (op == ">") p.op = CompareOp::kGt;
    else if (op == ">=") p.op = CompareOp::kGe;
    else return Status::ParseError("unknown operator " + op);
    p.literals = {lit.value()};
    state->query.filters.push_back(std::move(p));
    return Status::OK();
  }

  if (cur->AcceptKeyword("between")) {
    Result<Value> lo = ParseLiteral(cur);
    if (!lo.ok()) return lo.status();
    if (!cur->AcceptKeyword("and")) {
      return Status::ParseError("expected AND in BETWEEN");
    }
    Result<Value> hi = ParseLiteral(cur);
    if (!hi.ok()) return hi.status();
    Predicate p;
    QCFE_RETURN_IF_ERROR(state->ResolveRef(&lhs.value()));
    p.column = lhs.value();
    p.op = CompareOp::kBetween;
    p.literals = {lo.value(), hi.value()};
    state->query.filters.push_back(std::move(p));
    return Status::OK();
  }

  if (cur->AcceptKeyword("in")) {
    if (!cur->AcceptPunct("(")) return Status::ParseError("expected ( after IN");
    Predicate p;
    QCFE_RETURN_IF_ERROR(state->ResolveRef(&lhs.value()));
    p.column = lhs.value();
    p.op = CompareOp::kIn;
    do {
      Result<Value> lit = ParseLiteral(cur);
      if (!lit.ok()) return lit.status();
      p.literals.push_back(lit.value());
    } while (cur->AcceptPunct(","));
    if (!cur->AcceptPunct(")")) return Status::ParseError("expected ) after IN list");
    state->query.filters.push_back(std::move(p));
    return Status::OK();
  }

  if (cur->AcceptKeyword("like")) {
    QCFE_RETURN_IF_ERROR(cur->Expect(TokenType::kString, "LIKE pattern"));
    Predicate p;
    QCFE_RETURN_IF_ERROR(state->ResolveRef(&lhs.value()));
    p.column = lhs.value();
    p.op = CompareOp::kLike;
    p.literals = {Value(cur->Next().text)};
    state->query.filters.push_back(std::move(p));
    return Status::OK();
  }

  return Status::ParseError("expected predicate near offset " +
                            std::to_string(t.position));
}

struct SelectItem {
  bool star = false;
  bool is_aggregate = false;
  Aggregate agg;
  ColumnRef col;
};

Result<SelectItem> ParseSelectItem(Cursor* cur) {
  SelectItem item;
  if (cur->AcceptPunct("*")) {
    item.star = true;
    return item;
  }
  QCFE_RETURN_IF_ERROR(cur->Expect(TokenType::kIdentifier, "select item"));
  Aggregate::Kind kind;
  if (IsAggregateName(cur->Peek().text, &kind)) {
    std::string name = cur->Next().text;
    if (cur->AcceptPunct("(")) {
      item.is_aggregate = true;
      item.agg.kind = kind;
      if (!cur->AcceptPunct("*")) {
        Result<ColumnRef> ref = ParseColumnRef(cur);
        if (!ref.ok()) return ref.status();
        item.agg.column = ref.value();
      }
      if (!cur->AcceptPunct(")")) {
        return Status::ParseError("expected ) after aggregate");
      }
      return item;
    }
    // Not an aggregate call: treat the keyword as a plain column name.
    item.col = ColumnRef{"", name};
    if (cur->AcceptPunct(".")) {
      QCFE_RETURN_IF_ERROR(cur->Expect(TokenType::kIdentifier, "column name"));
      item.col = ColumnRef{name, cur->Next().text};
    }
    return item;
  }
  Result<ColumnRef> ref = ParseColumnRef(cur);
  if (!ref.ok()) return ref.status();
  item.col = ref.value();
  return item;
}

}  // namespace

Result<QuerySpec> ParseQuery(const std::string& sql) {
  Result<std::vector<Token>> tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  Cursor cur(std::move(tokens.value()));
  ParserState state;

  if (!cur.AcceptKeyword("select")) {
    return Status::ParseError("query must start with SELECT");
  }
  state.query.distinct = cur.AcceptKeyword("distinct");

  std::vector<SelectItem> items;
  do {
    Result<SelectItem> item = ParseSelectItem(&cur);
    if (!item.ok()) return item.status();
    items.push_back(item.value());
  } while (cur.AcceptPunct(","));

  if (!cur.AcceptKeyword("from")) {
    return Status::ParseError("expected FROM");
  }
  // FROM list: comma-separated tables and/or JOIN ... ON chains.
  QCFE_RETURN_IF_ERROR(cur.Expect(TokenType::kIdentifier, "table name"));
  state.query.tables.push_back(cur.Next().text);
  while (true) {
    if (cur.AcceptPunct(",")) {
      QCFE_RETURN_IF_ERROR(cur.Expect(TokenType::kIdentifier, "table name"));
      state.query.tables.push_back(cur.Next().text);
      continue;
    }
    if (cur.AcceptKeyword("join")) {
      QCFE_RETURN_IF_ERROR(cur.Expect(TokenType::kIdentifier, "table name"));
      state.query.tables.push_back(cur.Next().text);
      if (!cur.AcceptKeyword("on")) {
        return Status::ParseError("expected ON after JOIN");
      }
      Result<ColumnRef> l = ParseColumnRef(&cur);
      if (!l.ok()) return l.status();
      if (cur.Peek().type != TokenType::kOperator || cur.Peek().text != "=") {
        return Status::ParseError("JOIN condition must be an equality");
      }
      cur.Next();
      Result<ColumnRef> r = ParseColumnRef(&cur);
      if (!r.ok()) return r.status();
      state.query.joins.push_back({l.value(), r.value()});
      continue;
    }
    break;
  }

  if (cur.AcceptKeyword("where")) {
    do {
      QCFE_RETURN_IF_ERROR(ParsePredicateOrJoin(&cur, &state));
    } while (cur.AcceptKeyword("and"));
  }

  if (cur.AcceptKeyword("group")) {
    if (!cur.AcceptKeyword("by")) return Status::ParseError("expected BY");
    do {
      Result<ColumnRef> ref = ParseColumnRef(&cur);
      if (!ref.ok()) return ref.status();
      QCFE_RETURN_IF_ERROR(state.ResolveRef(&ref.value()));
      state.query.group_by.push_back(ref.value());
    } while (cur.AcceptPunct(","));
  }

  if (cur.AcceptKeyword("order")) {
    if (!cur.AcceptKeyword("by")) return Status::ParseError("expected BY");
    do {
      Result<ColumnRef> ref = ParseColumnRef(&cur);
      if (!ref.ok()) return ref.status();
      QCFE_RETURN_IF_ERROR(state.ResolveRef(&ref.value()));
      OrderKey key;
      key.column = ref.value();
      if (cur.AcceptKeyword("desc")) key.descending = true;
      else cur.AcceptKeyword("asc");
      state.query.order_by.push_back(key);
    } while (cur.AcceptPunct(","));
  }

  if (cur.AcceptKeyword("limit")) {
    QCFE_RETURN_IF_ERROR(cur.Expect(TokenType::kNumber, "LIMIT count"));
    state.query.limit = static_cast<size_t>(
        std::strtoll(cur.Next().text.c_str(), nullptr, 10));
  }

  if (!cur.AtEnd()) {
    return Status::ParseError("unexpected trailing tokens near offset " +
                              std::to_string(cur.Peek().position));
  }

  // Resolve select items now that tables are known.
  for (auto& item : items) {
    if (item.star) continue;
    if (item.is_aggregate) {
      if (!item.agg.column.column.empty()) {
        QCFE_RETURN_IF_ERROR(state.ResolveRef(&item.agg.column));
      }
      state.query.aggregates.push_back(item.agg);
    } else {
      QCFE_RETURN_IF_ERROR(state.ResolveRef(&item.col));
      state.query.select_columns.push_back(item.col);
    }
  }
  return state.query;
}

}  // namespace qcfe
