#include "sql/data_abstract.h"

#include "util/rng.h"

namespace qcfe {

Result<Value> DataAbstract::SampleValue(const std::string& table,
                                        const std::string& column,
                                        Rng* rng) const {
  const ColumnStats* cs = catalog_->GetColumnStats(table, column);
  if (cs == nullptr) {
    return Status::NotFound("no statistics for " + table + "." + column);
  }
  if (!cs->sample.empty()) {
    return cs->sample[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(cs->sample.size()) - 1))];
  }
  return Value(rng->Uniform(cs->min, cs->max));
}

Result<std::string> DataAbstract::SamplePrefix(const std::string& table,
                                               const std::string& column,
                                               Rng* rng,
                                               size_t prefix_len) const {
  Result<Value> v = SampleValue(table, column, rng);
  if (!v.ok()) return v.status();
  if (v.value().index() != 2) {
    return Status::InvalidArgument(table + "." + column +
                                   " is not a string column");
  }
  const std::string& s = std::get<std::string>(v.value());
  return s.substr(0, std::min(prefix_len, s.size()));
}

bool DataAbstract::IsStringColumn(const std::string& table,
                                  const std::string& column) const {
  const Table* t = catalog_->GetTable(table);
  if (t == nullptr) return false;
  auto idx = t->schema().FindColumn(column);
  if (!idx.has_value()) return false;
  return t->schema().column(*idx).type == DataType::kString;
}

}  // namespace qcfe
