#include "sql/tokenizer.h"

#include <cctype>

#include "util/string_util.h"

namespace qcfe {

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_')) {
        ++j;
      }
      tokens.push_back({TokenType::kIdentifier,
                        ToLower(sql.substr(i, j - i)), start});
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i + 1;
      bool seen_dot = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       (sql[j] == '.' && !seen_dot &&
                        j + 1 < n &&
                        std::isdigit(static_cast<unsigned char>(sql[j + 1]))))) {
        if (sql[j] == '.') seen_dot = true;
        ++j;
      }
      tokens.push_back({TokenType::kNumber, sql.substr(i, j - i), start});
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      while (j < n && sql[j] != '\'') ++j;
      if (j >= n) {
        return Status::ParseError("unterminated string at offset " +
                                  std::to_string(start));
      }
      tokens.push_back({TokenType::kString, sql.substr(i + 1, j - i - 1),
                        start});
      i = j + 1;
    } else if (c == '{') {
      size_t j = i + 1;
      while (j < n && sql[j] != '}') ++j;
      if (j >= n) {
        return Status::ParseError("unterminated placeholder at offset " +
                                  std::to_string(start));
      }
      tokens.push_back({TokenType::kPlaceholder,
                        ToLower(Trim(sql.substr(i + 1, j - i - 1))), start});
      i = j + 1;
    } else if (c == '<' || c == '>' || c == '=') {
      size_t j = i + 1;
      if (j < n && (sql[j] == '=' || (c == '<' && sql[j] == '>'))) ++j;
      tokens.push_back({TokenType::kOperator, sql.substr(i, j - i), start});
      i = j;
    } else if (c == '(' || c == ')' || c == ',' || c == '.' || c == '*' ||
               c == ';') {
      if (c != ';') {
        tokens.push_back({TokenType::kPunct, std::string(1, c), start});
      }
      ++i;
    } else {
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' at offset " + std::to_string(start));
    }
  }
  tokens.push_back({TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace qcfe
