#ifndef QCFE_SQL_TEMPLATE_H_
#define QCFE_SQL_TEMPLATE_H_

/// \file template.h
/// Query templates: SQL text with `{table.column}` placeholders that are
/// bound from the data abstract at instantiation time.
///
/// Placeholder forms:
///   {table.column}        fresh sample from the column
///   {table.column+K}      last sample of that column plus constant K
///                         (correlates range endpoints, e.g. Sysbench's
///                          BETWEEN {id} AND {id+99})
///   {table.column:prefix} 3-char prefix of a sampled string (LIKE patterns)

#include <string>
#include <vector>

#include "engine/query.h"
#include "sql/data_abstract.h"
#include "util/status.h"

namespace qcfe {

class Rng;

/// A named SQL template.
struct QueryTemplate {
  std::string name;
  std::string text;

  /// Substitutes every placeholder using `abstract` + `rng` and returns the
  /// concrete SQL text.
  Result<std::string> InstantiateText(const DataAbstract& abstract,
                                      Rng* rng) const;

  /// InstantiateText + ParseQuery.
  Result<QuerySpec> Instantiate(const DataAbstract& abstract, Rng* rng) const;

  /// Parses the template structure itself (placeholders replaced by neutral
  /// literals) — used by Algorithm 1 to extract operator/table/column info
  /// without touching data.
  Result<QuerySpec> ParseStructure() const;
};

}  // namespace qcfe

#endif  // QCFE_SQL_TEMPLATE_H_
