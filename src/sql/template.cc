#include "sql/template.h"

#include <map>

#include "engine/types.h"
#include "sql/parser.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace qcfe {

namespace {

struct PlaceholderSpec {
  std::string table;
  std::string column;
  double offset = 0.0;
  bool has_offset = false;
  bool prefix = false;
};

Result<PlaceholderSpec> ParsePlaceholder(const std::string& body) {
  PlaceholderSpec spec;
  std::string rest = body;
  size_t colon = rest.find(':');
  if (colon != std::string::npos) {
    std::string mode = Trim(rest.substr(colon + 1));
    if (mode != "prefix") {
      return Status::ParseError("unknown placeholder mode :" + mode);
    }
    spec.prefix = true;
    rest = Trim(rest.substr(0, colon));
  }
  size_t plus = rest.find('+');
  if (plus != std::string::npos) {
    spec.has_offset = true;
    spec.offset = std::strtod(rest.substr(plus + 1).c_str(), nullptr);
    rest = Trim(rest.substr(0, plus));
  }
  size_t dot = rest.find('.');
  if (dot == std::string::npos) {
    return Status::ParseError("placeholder must be table.column: {" + body +
                              "}");
  }
  spec.table = Trim(rest.substr(0, dot));
  spec.column = Trim(rest.substr(dot + 1));
  return spec;
}

std::string RenderLiteral(const Value& v) {
  // Numeric values render bare; strings render quoted.
  return ValueToString(v);
}

}  // namespace

Result<std::string> QueryTemplate::InstantiateText(
    const DataAbstract& abstract, Rng* rng) const {
  std::string out;
  out.reserve(text.size());
  // Last numeric sample per column, for {t.c+K} correlation.
  std::map<std::string, double> last_numeric;

  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c != '{') {
      out.push_back(c);
      ++i;
      continue;
    }
    size_t close = text.find('}', i);
    if (close == std::string::npos) {
      return Status::ParseError("unterminated placeholder in template " + name);
    }
    std::string body = Trim(text.substr(i + 1, close - i - 1));
    Result<PlaceholderSpec> spec = ParsePlaceholder(body);
    if (!spec.ok()) return spec.status();
    std::string key = spec->table + "." + spec->column;

    if (spec->prefix) {
      Result<std::string> prefix =
          abstract.SamplePrefix(spec->table, spec->column, rng);
      if (!prefix.ok()) return prefix.status();
      out += *prefix;  // caller supplies quotes/wildcards in the text
    } else if (spec->has_offset) {
      auto it = last_numeric.find(key);
      double base;
      if (it != last_numeric.end()) {
        base = it->second;
      } else {
        Result<Value> v = abstract.SampleValue(spec->table, spec->column, rng);
        if (!v.ok()) return v.status();
        base = ValueToDouble(*v);
        last_numeric[key] = base;
      }
      double shifted = base + spec->offset;
      // Preserve integer-ness when the offset and base are integral.
      if (shifted == static_cast<double>(static_cast<int64_t>(shifted))) {
        out += std::to_string(static_cast<int64_t>(shifted));
      } else {
        out += FormatDouble(shifted, 4);
      }
    } else {
      Result<Value> v = abstract.SampleValue(spec->table, spec->column, rng);
      if (!v.ok()) return v.status();
      if (v->index() != 2) last_numeric[key] = ValueToDouble(*v);
      out += RenderLiteral(*v);
    }
    i = close + 1;
  }
  return out;
}

Result<QuerySpec> QueryTemplate::Instantiate(const DataAbstract& abstract,
                                             Rng* rng) const {
  Result<std::string> sql = InstantiateText(abstract, rng);
  if (!sql.ok()) return sql.status();
  Result<QuerySpec> parsed = ParseQuery(*sql);
  if (!parsed.ok()) {
    return Status::ParseError("template " + name + ": " +
                              parsed.status().message() + " in: " + *sql);
  }
  return parsed;
}

Result<QuerySpec> QueryTemplate::ParseStructure() const {
  // Replace placeholders with a neutral numeric literal; prefix placeholders
  // sit inside string quotes already, so they vanish harmlessly.
  std::string neutral;
  neutral.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '{') {
      neutral.push_back(text[i]);
      ++i;
      continue;
    }
    size_t close = text.find('}', i);
    if (close == std::string::npos) {
      return Status::ParseError("unterminated placeholder in template " + name);
    }
    std::string body = text.substr(i + 1, close - i - 1);
    neutral += Contains(body, ":prefix") ? "" : "0";
    i = close + 1;
  }
  return ParseQuery(neutral);
}

}  // namespace qcfe
