#ifndef QCFE_SQL_SIMPLIFIED_TEMPLATES_H_
#define QCFE_SQL_SIMPLIFIED_TEMPLATES_H_

/// \file simplified_templates.h
/// Paper Algorithm 1: generate simplified query templates.
///
/// Phase 1 parses the original workload templates and collects the
/// operator -> (table, column) information using the keyword mapping of
/// paper Table II (filter keywords -> scans, ORDER BY -> sort, GROUP BY ->
/// aggregate, equi-joins -> join operators).
/// Phase 2 instantiates the per-operator parent templates with that info.
/// Phase 3 fills the templates `scale` times with values from the data
/// abstract and random comparison keywords, yielding executable queries.
///
/// The output queries exercise the same operator/table/column combinations
/// as the original workload but run much faster (single scan / single join),
/// which is what makes FST snapshots cheap to collect (paper Table V).

#include <string>
#include <vector>

#include "engine/catalog.h"
#include "engine/query.h"
#include "sql/data_abstract.h"
#include "sql/template.h"
#include "util/status.h"

namespace qcfe {

class Rng;

/// Operator family a simplified template reproduces (Table II rows).
enum class SimplifiedOpClass {
  kScan,       ///< Seq/Index Scan
  kSort,       ///< Sort
  kAggregate,  ///< Aggregate
  kJoin,       ///< Merge/Hash Join, Nested Loop
};

const char* SimplifiedOpClassName(SimplifiedOpClass c);

/// One simplified template (phase 2 output).
struct SimplifiedTemplate {
  SimplifiedOpClass op_class = SimplifiedOpClass::kScan;
  // Scan/sort/aggregate target.
  std::string table;
  std::string column;
  // Join targets.
  ColumnRef left;
  ColumnRef right;
  /// Join variant with a trailing ORDER BY (second parent template of
  /// Table II's join row).
  bool with_order_by = false;

  /// Human-readable pattern, e.g.
  /// "SELECT * FROM partsupp WHERE ps_partkey [OP] [VALUE]".
  std::string ToPattern() const;
};

/// Algorithm 1 implementation.
class SimplifiedTemplateGenerator {
 public:
  explicit SimplifiedTemplateGenerator(const Catalog* catalog)
      : catalog_(catalog) {}

  /// Phases 1+2: original templates -> deduplicated simplified templates.
  Result<std::vector<SimplifiedTemplate>> Generate(
      const std::vector<QueryTemplate>& original) const;

  /// Phase 3: fills each template `scale` times. Numeric columns draw a
  /// random comparison keyword from {<, <=, =, >=, >}; string columns use
  /// {=, like}. Returns scale * templates.size() executable queries.
  Result<std::vector<QuerySpec>> Fill(
      const std::vector<SimplifiedTemplate>& templates,
      const DataAbstract& abstract, int scale, Rng* rng) const;

 private:
  const Catalog* catalog_;
};

}  // namespace qcfe

#endif  // QCFE_SQL_SIMPLIFIED_TEMPLATES_H_
