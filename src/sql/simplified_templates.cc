#include "sql/simplified_templates.h"

#include <set>

#include "engine/types.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace qcfe {

const char* SimplifiedOpClassName(SimplifiedOpClass c) {
  switch (c) {
    case SimplifiedOpClass::kScan:
      return "scan";
    case SimplifiedOpClass::kSort:
      return "sort";
    case SimplifiedOpClass::kAggregate:
      return "aggregate";
    case SimplifiedOpClass::kJoin:
      return "join";
  }
  return "?";
}

std::string SimplifiedTemplate::ToPattern() const {
  switch (op_class) {
    case SimplifiedOpClass::kScan:
      return "SELECT * FROM " + table + " WHERE " + column + " [OP] [VALUE]";
    case SimplifiedOpClass::kSort:
      return "SELECT * FROM " + table + " WHERE " + column +
             " [OP] [VALUE] ORDER BY " + table + "." + column;
    case SimplifiedOpClass::kAggregate:
      return "SELECT COUNT(*) FROM " + table + " WHERE " + column +
             " [OP] [VALUE] GROUP BY " + column;
    case SimplifiedOpClass::kJoin: {
      std::string base = "SELECT * FROM " + left.table + " JOIN " +
                         right.table + " ON " + left.ToString() + " = " +
                         right.ToString() + " WHERE " + left.ToString() +
                         " [OP] [VALUE]";
      if (with_order_by) base += " ORDER BY " + left.ToString();
      return base;
    }
  }
  return "?";
}

Result<std::vector<SimplifiedTemplate>> SimplifiedTemplateGenerator::Generate(
    const std::vector<QueryTemplate>& original) const {
  // Phase 1: operator -> table/column info, deduplicated.
  std::set<std::pair<std::string, std::string>> scan_info;
  std::set<std::pair<std::string, std::string>> sort_info;
  std::set<std::pair<std::string, std::string>> agg_info;
  std::set<std::pair<std::string, std::string>> join_info;  // "t.c" x "t.c"

  for (const auto& tmpl : original) {
    Result<QuerySpec> parsed = tmpl.ParseStructure();
    if (!parsed.ok()) {
      return Status::ParseError("template " + tmpl.name + ": " +
                                parsed.status().message());
    }
    const QuerySpec& q = *parsed;
    // Filter keywords (>, <, =, in, like, between, ...) -> scan operators.
    for (const auto& p : q.filters) {
      scan_info.insert({p.column.table, p.column.column});
    }
    for (const auto& k : q.order_by) {
      sort_info.insert({k.column.table, k.column.column});
    }
    for (const auto& g : q.group_by) {
      agg_info.insert({g.table, g.column});
    }
    // COUNT(*)/SUM(...)-style aggregates without GROUP BY and DISTINCT
    // queries still execute an Aggregate operator; reproduce it with a
    // grouped template over a referenced column so the snapshot observes
    // the operator (job-light and Sysbench are full of such queries).
    if (q.group_by.empty() && (!q.aggregates.empty() || q.distinct)) {
      if (!q.filters.empty()) {
        agg_info.insert(
            {q.filters[0].column.table, q.filters[0].column.column});
      } else if (!q.joins.empty()) {
        agg_info.insert({q.joins[0].left.table, q.joins[0].left.column});
      }
    }
    for (const auto& j : q.joins) {
      join_info.insert({j.left.ToString(), j.right.ToString()});
    }
  }

  // Phase 2: instantiate parent templates.
  std::vector<SimplifiedTemplate> out;
  auto valid_column = [&](const std::string& t, const std::string& c) {
    return catalog_->GetColumnStats(t, c) != nullptr;
  };
  for (const auto& [t, c] : scan_info) {
    if (!valid_column(t, c)) continue;
    SimplifiedTemplate s;
    s.op_class = SimplifiedOpClass::kScan;
    s.table = t;
    s.column = c;
    out.push_back(s);
  }
  for (const auto& [t, c] : sort_info) {
    if (!valid_column(t, c)) continue;
    SimplifiedTemplate s;
    s.op_class = SimplifiedOpClass::kSort;
    s.table = t;
    s.column = c;
    out.push_back(s);
  }
  for (const auto& [t, c] : agg_info) {
    if (!valid_column(t, c)) continue;
    SimplifiedTemplate s;
    s.op_class = SimplifiedOpClass::kAggregate;
    s.table = t;
    s.column = c;
    out.push_back(s);
  }
  for (const auto& [l, r] : join_info) {
    auto ldot = l.find('.');
    auto rdot = r.find('.');
    SimplifiedTemplate s;
    s.op_class = SimplifiedOpClass::kJoin;
    s.left = {l.substr(0, ldot), l.substr(ldot + 1)};
    s.right = {r.substr(0, rdot), r.substr(rdot + 1)};
    if (!valid_column(s.left.table, s.left.column) ||
        !valid_column(s.right.table, s.right.column)) {
      continue;
    }
    out.push_back(s);
    // Second parent template of the join row: with ORDER BY.
    SimplifiedTemplate s2 = s;
    s2.with_order_by = true;
    out.push_back(s2);
  }
  return out;
}

namespace {

Predicate RandomPredicate(const ColumnRef& col, const DataAbstract& abstract,
                          Rng* rng, Status* status) {
  Predicate p;
  p.column = col;
  Result<Value> v = abstract.SampleValue(col.table, col.column, rng);
  if (!v.ok()) {
    *status = v.status();
    return p;
  }
  if (abstract.IsStringColumn(col.table, col.column)) {
    // Random keyword from {=, like} for strings.
    if (rng->Bernoulli(0.5)) {
      p.op = CompareOp::kEq;
      p.literals = {*v};
    } else {
      p.op = CompareOp::kLike;
      Result<std::string> prefix =
          abstract.SamplePrefix(col.table, col.column, rng);
      if (!prefix.ok()) {
        *status = prefix.status();
        return p;
      }
      p.literals = {Value(*prefix + "%")};
    }
  } else {
    // Random keyword from {<, <=, =, >=, >}.
    static const CompareOp kOps[] = {CompareOp::kLt, CompareOp::kLe,
                                     CompareOp::kEq, CompareOp::kGe,
                                     CompareOp::kGt};
    p.op = kOps[rng->UniformInt(0, 4)];
    p.literals = {*v};
  }
  *status = Status::OK();
  return p;
}

}  // namespace

Result<std::vector<QuerySpec>> SimplifiedTemplateGenerator::Fill(
    const std::vector<SimplifiedTemplate>& templates,
    const DataAbstract& abstract, int scale, Rng* rng) const {
  std::vector<QuerySpec> out;
  out.reserve(templates.size() * static_cast<size_t>(scale));
  for (int round = 0; round < scale; ++round) {
    for (const auto& tmpl : templates) {
      QuerySpec q;
      Status st;
      switch (tmpl.op_class) {
        case SimplifiedOpClass::kScan: {
          q.tables = {tmpl.table};
          q.filters = {RandomPredicate({tmpl.table, tmpl.column}, abstract,
                                       rng, &st)};
          break;
        }
        case SimplifiedOpClass::kSort: {
          q.tables = {tmpl.table};
          q.filters = {RandomPredicate({tmpl.table, tmpl.column}, abstract,
                                       rng, &st)};
          q.order_by = {{{tmpl.table, tmpl.column}, rng->Bernoulli(0.25)}};
          break;
        }
        case SimplifiedOpClass::kAggregate: {
          q.tables = {tmpl.table};
          q.filters = {RandomPredicate({tmpl.table, tmpl.column}, abstract,
                                       rng, &st)};
          Aggregate a;
          a.kind = Aggregate::Kind::kCount;
          q.aggregates = {a};
          q.group_by = {{tmpl.table, tmpl.column}};
          break;
        }
        case SimplifiedOpClass::kJoin: {
          q.tables = {tmpl.left.table, tmpl.right.table};
          q.joins = {{tmpl.left, tmpl.right}};
          q.filters = {RandomPredicate(tmpl.left, abstract, rng, &st)};
          if (tmpl.with_order_by) {
            q.order_by = {{tmpl.left, false}};
          }
          break;
        }
      }
      if (!st.ok()) return st;
      out.push_back(std::move(q));
    }
  }
  return out;
}

}  // namespace qcfe
