#ifndef QCFE_SQL_PARSER_H_
#define QCFE_SQL_PARSER_H_

/// \file parser.h
/// Recursive-descent parser for the workload SQL dialect. Supported grammar
/// (case-insensitive keywords):
///
///   query    := SELECT [DISTINCT] items FROM tables [WHERE conj]
///               [GROUP BY cols] [ORDER BY keys] [LIMIT n]
///   items    := '*' | item (',' item)*
///   item     := agg '(' (colref|'*') ')' | colref
///   tables   := tref (',' tref)* | tref (JOIN tref ON colref '=' colref)*
///   conj     := pred (AND pred)*
///   pred     := colref op literal | colref BETWEEN lit AND lit
///             | colref IN '(' lit (',' lit)* ')' | colref LIKE string
///             | colref '=' colref            -- implicit join condition
///
/// Column references are `table.column`; unqualified columns are resolved
/// against the single FROM table when unambiguous.

#include <string>

#include "engine/query.h"
#include "util/status.h"

namespace qcfe {

/// Parses one statement into the logical query IR.
Result<QuerySpec> ParseQuery(const std::string& sql);

}  // namespace qcfe

#endif  // QCFE_SQL_PARSER_H_
