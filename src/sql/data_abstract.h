#ifndef QCFE_SQL_DATA_ABSTRACT_H_
#define QCFE_SQL_DATA_ABSTRACT_H_

/// \file data_abstract.h
/// The "data abstract R" of paper Algorithm 1: a compact per-column summary
/// (built from ANALYZE statistics) from which realistic literal values are
/// sampled when filling query templates.

#include <string>

#include "engine/catalog.h"
#include "engine/types.h"
#include "util/status.h"

namespace qcfe {

class Rng;

/// Samples literals for template parameters from column statistics.
class DataAbstract {
 public:
  /// The catalog must outlive the DataAbstract and be analyzed already.
  explicit DataAbstract(const Catalog* catalog) : catalog_(catalog) {}

  /// A value drawn from the column's sample (falls back to the min/max range
  /// for columns without samples). Errors on unknown table/column.
  Result<Value> SampleValue(const std::string& table, const std::string& column,
                            Rng* rng) const;

  /// A short prefix (default 3 chars) of a sampled string value, for LIKE
  /// patterns. Errors if the column is not a string column.
  Result<std::string> SamplePrefix(const std::string& table,
                                   const std::string& column, Rng* rng,
                                   size_t prefix_len = 3) const;

  /// True if the column exists and holds strings.
  bool IsStringColumn(const std::string& table, const std::string& column) const;

  const Catalog* catalog() const { return catalog_; }

 private:
  const Catalog* catalog_;
};

}  // namespace qcfe

#endif  // QCFE_SQL_DATA_ABSTRACT_H_
