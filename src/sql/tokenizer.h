#ifndef QCFE_SQL_TOKENIZER_H_
#define QCFE_SQL_TOKENIZER_H_

/// \file tokenizer.h
/// Lexer for the SQL dialect used by workload templates: SELECT/FROM/JOIN/
/// WHERE/GROUP BY/ORDER BY/LIMIT plus `{placeholder}` tokens that templates
/// bind at instantiation time.

#include <string>
#include <vector>

#include "util/status.h"

namespace qcfe {

/// Token categories.
enum class TokenType {
  kIdentifier,   ///< unquoted name (select, lineitem, l_quantity, ...)
  kNumber,       ///< integer or decimal literal
  kString,       ///< single-quoted literal, quotes stripped
  kOperator,     ///< = <> < <= > >=
  kPunct,        ///< ( ) , . *
  kPlaceholder,  ///< {table.column} or {table.column+offset}
  kEnd,
};

/// One token with its source text (identifiers lower-cased).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  size_t position = 0;  ///< byte offset for error messages
};

/// Splits `sql` into tokens. Fails on unterminated strings/placeholders or
/// unexpected characters.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace qcfe

#endif  // QCFE_SQL_TOKENIZER_H_
