#ifndef QCFE_FEATURIZE_OPERATOR_ENCODER_H_
#define QCFE_FEATURIZE_OPERATOR_ENCODER_H_

/// \file operator_encoder.h
/// QPPNet-style operator encoding: one-hot blocks for operator type, table,
/// index and filter columns, predicate-keyword counts, numeric planner
/// estimates, and a fixed block of reserved padding dimensions (mirroring
/// the fixed-width vectors of the reference implementations — these padding
/// dims plus unused one-hot slots are exactly what feature reduction should
/// discover and drop).
///
/// Only *plan-time* information is encoded (optimizer estimates, never
/// actual rows/latencies), so features are available before execution.

#include <map>
#include <string>
#include <vector>

#include "engine/catalog.h"
#include "engine/plan.h"
#include "featurize/feature_schema.h"

namespace qcfe {

/// Block sizes of the encoding layout.
struct EncoderOptions {
  size_t max_tables = 24;   ///< table one-hot slots (pad past real tables)
  size_t max_indexes = 16;  ///< index one-hot slots
  size_t max_columns = 48;  ///< filter-column one-hot slots
  size_t padding = 8;       ///< reserved always-zero dims
};

/// Encodes one plan operator into a fixed-width vector. The layout is shared
/// by all operator types (per-type irrelevant blocks stay zero).
class OperatorEncoder {
 public:
  /// The catalog (analyzed) provides the table/index/column vocabularies;
  /// it must outlive the encoder.
  explicit OperatorEncoder(const Catalog* catalog,
                           EncoderOptions options = EncoderOptions());

  const FeatureSchema& schema() const { return schema_; }
  size_t dim() const { return schema_.size(); }

  /// Encodes `node` at tree depth `depth` (root = 0).
  std::vector<double> Encode(const PlanNode& node, size_t depth) const;

  /// Index of a table in the one-hot vocabulary (for tests).
  int TableSlot(const std::string& table) const;
  /// Index of a "table.column" in the column vocabulary (for tests).
  int ColumnSlot(const std::string& qualified) const;

 private:
  const Catalog* catalog_;
  EncoderOptions options_;
  FeatureSchema schema_;
  std::map<std::string, size_t> table_slots_;
  std::map<std::string, size_t> index_slots_;   // "table.column" of indexes
  std::map<std::string, size_t> column_slots_;  // "table.column"

  // Block offsets within the feature vector.
  size_t off_op_ = 0;
  size_t off_table_ = 0;
  size_t off_index_ = 0;
  size_t off_column_ = 0;
  size_t off_predop_ = 0;
  size_t off_jointable_ = 0;
  size_t off_numeric_ = 0;
  size_t off_padding_ = 0;
};

}  // namespace qcfe

#endif  // QCFE_FEATURIZE_OPERATOR_ENCODER_H_
