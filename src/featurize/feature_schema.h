#ifndef QCFE_FEATURIZE_FEATURE_SCHEMA_H_
#define QCFE_FEATURIZE_FEATURE_SCHEMA_H_

/// \file feature_schema.h
/// Named feature dimensions. Every encoder publishes a schema so the
/// reduction experiments (paper Figure 7) can report *which* features each
/// algorithm dropped, and masks can be applied by name in tests.

#include <optional>
#include <string>
#include <vector>

namespace qcfe {

/// An ordered list of named dimensions.
class FeatureSchema {
 public:
  /// Appends a dimension and returns its index.
  size_t Add(const std::string& name);

  size_t size() const { return names_.size(); }
  const std::string& name(size_t i) const { return names_[i]; }
  const std::vector<std::string>& names() const { return names_; }

  /// Index of a named dimension.
  std::optional<size_t> Find(const std::string& name) const;

  /// Indices of dimensions whose name starts with `prefix` (feature groups,
  /// e.g. "table=" or "pad.").
  std::vector<size_t> FindGroup(const std::string& prefix) const;

  /// Schema equality (same names in the same order).
  bool operator==(const FeatureSchema& other) const {
    return names_ == other.names_;
  }

 private:
  std::vector<std::string> names_;
};

}  // namespace qcfe

#endif  // QCFE_FEATURIZE_FEATURE_SCHEMA_H_
