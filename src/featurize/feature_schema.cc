#include "featurize/feature_schema.h"

#include "util/string_util.h"

namespace qcfe {

size_t FeatureSchema::Add(const std::string& name) {
  names_.push_back(name);
  return names_.size() - 1;
}

std::optional<size_t> FeatureSchema::Find(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  return std::nullopt;
}

std::vector<size_t> FeatureSchema::FindGroup(const std::string& prefix) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < names_.size(); ++i) {
    if (StartsWith(names_[i], prefix)) out.push_back(i);
  }
  return out;
}

}  // namespace qcfe
