#include "featurize/featurizer.h"

namespace qcfe {

size_t BaseFeaturizer::dim(OpType) const { return encoder_.dim(); }

const FeatureSchema& BaseFeaturizer::schema(OpType) const {
  return encoder_.schema();
}

std::vector<double> BaseFeaturizer::Encode(const PlanNode& node, size_t depth,
                                           int /*env_id*/) const {
  return encoder_.Encode(node, depth);
}

MaskedFeaturizer::MaskedFeaturizer(const OperatorFeaturizer* inner,
                                   std::map<OpType, std::vector<size_t>> kept)
    : inner_(inner) {
  for (OpType op : AllOpTypes()) {
    size_t oi = static_cast<size_t>(op);
    auto it = kept.find(op);
    if (it != kept.end()) {
      kept_[oi] = it->second;
    } else {
      kept_[oi].resize(inner_->dim(op));
      for (size_t i = 0; i < kept_[oi].size(); ++i) kept_[oi][i] = i;
    }
    const FeatureSchema& inner_schema = inner_->schema(op);
    for (size_t c : kept_[oi]) schemas_[oi].Add(inner_schema.name(c));
  }
}

size_t MaskedFeaturizer::dim(OpType op) const {
  return kept_[static_cast<size_t>(op)].size();
}

const FeatureSchema& MaskedFeaturizer::schema(OpType op) const {
  return schemas_[static_cast<size_t>(op)];
}

const std::vector<size_t>& MaskedFeaturizer::kept(OpType op) const {
  return kept_[static_cast<size_t>(op)];
}

std::vector<double> MaskedFeaturizer::Encode(const PlanNode& node,
                                             size_t depth, int env_id) const {
  std::vector<double> full = inner_->Encode(node, depth, env_id);
  const std::vector<size_t>& keep = kept_[static_cast<size_t>(node.op)];
  std::vector<double> out(keep.size());
  for (size_t i = 0; i < keep.size(); ++i) out[i] = full[keep[i]];
  return out;
}

size_t MaskedFeaturizer::TotalRemoved() const {
  size_t removed = 0;
  for (OpType op : AllOpTypes()) {
    removed += inner_->dim(op) - dim(op);
  }
  return removed;
}

}  // namespace qcfe
