#ifndef QCFE_FEATURIZE_FEATURIZER_H_
#define QCFE_FEATURIZE_FEATURIZER_H_

/// \file featurizer.h
/// The featurizer abstraction that decouples estimators from feature
/// engineering. Models (QPPNet / MSCN) only see this interface; QCFE plugs
/// in by wrapping a base featurizer with snapshot augmentation (src/core)
/// and/or per-operator-type masks produced by feature reduction.
///
/// Featurizers are env-aware: Encode receives the environment id of the
/// query because the feature snapshot differs per environment. The base
/// featurizer ignores it (that is exactly the paper's "general FE" gap).

#include <array>
#include <map>
#include <memory>
#include <vector>

#include "engine/plan.h"
#include "featurize/feature_schema.h"
#include "featurize/operator_encoder.h"
#include "util/status.h"

namespace qcfe {

/// Per-operator feature encoder with per-operator-type widths.
class OperatorFeaturizer {
 public:
  virtual ~OperatorFeaturizer() = default;

  /// Feature width for operators of this type.
  virtual size_t dim(OpType op) const = 0;

  /// Dimension names for operators of this type.
  virtual const FeatureSchema& schema(OpType op) const = 0;

  /// Encodes one operator. `depth` is the node's depth in its plan (root 0);
  /// `env_id` identifies the environment the query ran/will run under.
  virtual std::vector<double> Encode(const PlanNode& node, size_t depth,
                                     int env_id) const = 0;
};

/// Plain QPPNet-style encoding (no snapshot, no mask): same layout for all
/// operator types, env_id ignored.
class BaseFeaturizer : public OperatorFeaturizer {
 public:
  explicit BaseFeaturizer(const Catalog* catalog,
                          EncoderOptions options = EncoderOptions())
      : encoder_(catalog, options) {}

  size_t dim(OpType op) const override;
  const FeatureSchema& schema(OpType op) const override;
  std::vector<double> Encode(const PlanNode& node, size_t depth,
                             int env_id) const override;

  const OperatorEncoder& encoder() const { return encoder_; }

 private:
  OperatorEncoder encoder_;
};

/// Applies per-operator-type column masks on top of another featurizer:
/// the physical form of feature reduction (paper Section IV). Kept columns
/// are indices into the inner featurizer's dimensions for that type.
class MaskedFeaturizer : public OperatorFeaturizer {
 public:
  /// `inner` must outlive this featurizer. Types missing from `kept` keep
  /// all inner dimensions.
  MaskedFeaturizer(const OperatorFeaturizer* inner,
                   std::map<OpType, std::vector<size_t>> kept);

  size_t dim(OpType op) const override;
  const FeatureSchema& schema(OpType op) const override;
  std::vector<double> Encode(const PlanNode& node, size_t depth,
                             int env_id) const override;

  /// Kept columns for one type (all columns if the type was not reduced).
  const std::vector<size_t>& kept(OpType op) const;

  /// Total dims removed across all operator types (for reduction ratios).
  size_t TotalRemoved() const;

 private:
  const OperatorFeaturizer* inner_;
  std::array<std::vector<size_t>, kNumOpTypes> kept_;
  std::array<FeatureSchema, kNumOpTypes> schemas_;
};

}  // namespace qcfe

#endif  // QCFE_FEATURIZE_FEATURIZER_H_
