#include "featurize/operator_encoder.h"

#include <cmath>

namespace qcfe {

namespace {
constexpr size_t kNumPredOps = 9;   // CompareOp cardinality
constexpr size_t kNumAggKinds = 5;  // Aggregate::Kind cardinality

double Log1pSafe(double v) { return std::log1p(std::max(v, 0.0)); }
}  // namespace

OperatorEncoder::OperatorEncoder(const Catalog* catalog,
                                 EncoderOptions options)
    : catalog_(catalog), options_(options) {
  // Vocabularies from the catalog, in deterministic (sorted) order.
  std::vector<std::string> tables = catalog_->TableNames();
  for (const auto& t : tables) {
    if (table_slots_.size() < options_.max_tables) {
      table_slots_[t] = table_slots_.size();
    }
    const Table* table = catalog_->GetTable(t);
    for (const auto& idx : table->indexes()) {
      std::string key = t + "." + idx->column;
      if (index_slots_.size() < options_.max_indexes) {
        index_slots_[key] = index_slots_.size();
      }
    }
    for (const auto& col : table->schema().columns()) {
      std::string key = t + "." + col.name;
      if (column_slots_.size() < options_.max_columns) {
        column_slots_[key] = column_slots_.size();
      }
    }
  }

  // Re-number map slots in sorted-name order for determinism.
  size_t i = 0;
  for (auto& [name, slot] : table_slots_) slot = i++;
  i = 0;
  for (auto& [name, slot] : index_slots_) slot = i++;
  i = 0;
  for (auto& [name, slot] : column_slots_) slot = i++;

  // Build the schema (block by block).
  off_op_ = schema_.size();
  for (OpType op : AllOpTypes()) {
    schema_.Add(std::string("op=") + OpTypeName(op));
  }
  off_table_ = schema_.size();
  {
    std::vector<std::string> by_slot(options_.max_tables);
    for (const auto& [name, slot] : table_slots_) by_slot[slot] = name;
    for (size_t s = 0; s < options_.max_tables; ++s) {
      schema_.Add("table=" + (by_slot[s].empty()
                                  ? "unused" + std::to_string(s)
                                  : by_slot[s]));
    }
  }
  off_index_ = schema_.size();
  {
    std::vector<std::string> by_slot(options_.max_indexes);
    for (const auto& [name, slot] : index_slots_) by_slot[slot] = name;
    for (size_t s = 0; s < options_.max_indexes; ++s) {
      schema_.Add("idx=" + (by_slot[s].empty() ? "unused" + std::to_string(s)
                                               : by_slot[s]));
    }
  }
  off_column_ = schema_.size();
  {
    std::vector<std::string> by_slot(options_.max_columns);
    for (const auto& [name, slot] : column_slots_) by_slot[slot] = name;
    for (size_t s = 0; s < options_.max_columns; ++s) {
      schema_.Add("filtercol=" + (by_slot[s].empty()
                                      ? "unused" + std::to_string(s)
                                      : by_slot[s]));
    }
  }
  off_predop_ = schema_.size();
  for (size_t s = 0; s < kNumPredOps; ++s) {
    schema_.Add(std::string("predop=") +
                CompareOpName(static_cast<CompareOp>(s)));
  }
  off_jointable_ = schema_.size();
  {
    std::vector<std::string> by_slot(options_.max_tables);
    for (const auto& [name, slot] : table_slots_) by_slot[slot] = name;
    for (size_t s = 0; s < options_.max_tables; ++s) {
      schema_.Add("jointable=" + (by_slot[s].empty()
                                      ? "unused" + std::to_string(s)
                                      : by_slot[s]));
    }
  }
  off_numeric_ = schema_.size();
  schema_.Add("num.log_est_rows");
  schema_.Add("num.log_est_width");
  schema_.Add("num.log_est_self_cost");
  schema_.Add("num.log_est_total_cost");
  schema_.Add("num.depth");
  schema_.Add("num.num_children");
  schema_.Add("num.num_filters");
  schema_.Add("num.sort_key_count");
  schema_.Add("num.group_col_count");
  for (size_t s = 0; s < kNumAggKinds; ++s) {
    static const char* kAggNames[] = {"count", "sum", "avg", "min", "max"};
    schema_.Add(std::string("num.agg_") + kAggNames[s]);
  }
  schema_.Add("num.distinct_flag");
  off_padding_ = schema_.size();
  for (size_t s = 0; s < options_.padding; ++s) {
    schema_.Add("pad." + std::to_string(s));
  }
}

int OperatorEncoder::TableSlot(const std::string& table) const {
  auto it = table_slots_.find(table);
  return it == table_slots_.end() ? -1 : static_cast<int>(it->second);
}

int OperatorEncoder::ColumnSlot(const std::string& qualified) const {
  auto it = column_slots_.find(qualified);
  return it == column_slots_.end() ? -1 : static_cast<int>(it->second);
}

std::vector<double> OperatorEncoder::Encode(const PlanNode& node,
                                            size_t depth) const {
  std::vector<double> x(schema_.size(), 0.0);

  x[off_op_ + static_cast<size_t>(node.op)] = 1.0;

  if (!node.table.empty()) {
    auto it = table_slots_.find(node.table);
    if (it != table_slots_.end()) x[off_table_ + it->second] = 1.0;
  }
  if (!node.index_column.empty()) {
    auto it = index_slots_.find(node.table + "." + node.index_column);
    if (it != index_slots_.end()) x[off_index_ + it->second] = 1.0;
  }
  for (const auto& f : node.filters) {
    auto it = column_slots_.find(f.column.ToString());
    if (it != column_slots_.end()) x[off_column_ + it->second] = 1.0;
    x[off_predop_ + static_cast<size_t>(f.op)] += 1.0;
  }
  if (node.join.has_value()) {
    auto lt = table_slots_.find(node.join->left.table);
    if (lt != table_slots_.end()) x[off_jointable_ + lt->second] = 1.0;
    auto rt = table_slots_.find(node.join->right.table);
    if (rt != table_slots_.end()) x[off_jointable_ + rt->second] = 1.0;
    auto lc = column_slots_.find(node.join->left.ToString());
    if (lc != column_slots_.end()) x[off_column_ + lc->second] = 1.0;
    auto rc = column_slots_.find(node.join->right.ToString());
    if (rc != column_slots_.end()) x[off_column_ + rc->second] = 1.0;
  }
  for (const auto& k : node.sort_keys) {
    auto it = column_slots_.find(k.column.ToString());
    if (it != column_slots_.end()) x[off_column_ + it->second] = 1.0;
  }
  for (const auto& g : node.group_by) {
    auto it = column_slots_.find(g.ToString());
    if (it != column_slots_.end()) x[off_column_ + it->second] = 1.0;
  }

  size_t n = off_numeric_;
  x[n + 0] = Log1pSafe(node.est_rows);
  x[n + 1] = Log1pSafe(node.est_width);
  x[n + 2] = Log1pSafe(node.est_self_cost);
  x[n + 3] = Log1pSafe(node.est_cost);
  x[n + 4] = static_cast<double>(depth);
  x[n + 5] = static_cast<double>(node.num_children());
  x[n + 6] = static_cast<double>(node.filters.size());
  x[n + 7] = static_cast<double>(node.sort_keys.size());
  x[n + 8] = static_cast<double>(node.group_by.size());
  for (const auto& a : node.aggregates) {
    x[n + 9 + static_cast<size_t>(a.kind)] += 1.0;
  }
  x[n + 14] = node.distinct ? 1.0 : 0.0;
  // Padding dims stay zero by construction.
  return x;
}

}  // namespace qcfe
