#include "serve/async_server.h"

#include <algorithm>
#include <string>
#include <utility>

#include "serve/model_swap.h"
#include "util/check.h"

namespace qcfe {

namespace {

std::future<Result<double>> ReadyError(Status status) {
  std::promise<Result<double>> promise;
  std::future<Result<double>> future = promise.get_future();
  promise.set_value(Result<double>(std::move(status)));
  return future;
}

AsyncServeConfig Normalize(const AsyncServeConfig& config) {
  AsyncServeConfig c = config;
  if (c.max_batch == 0) c.max_batch = 1;
  if (c.num_workers == 0) c.num_workers = 1;
  if (c.max_delay_micros < 0) c.max_delay_micros = 0;
  return c;
}

}  // namespace

AsyncServer::AsyncServer(const CostModel* model, const AsyncServeConfig& config,
                         Clock* clock, ThreadPool* pool)
    : model_(model),
      swappable_(nullptr),
      config_(Normalize(config)),
      clock_(clock != nullptr ? clock : Clock::Real()),
      pool_(pool) {
  StartWorkers();
}

AsyncServer::AsyncServer(const SwappableModel* models,
                         const AsyncServeConfig& config, Clock* clock)
    : model_(nullptr),
      swappable_(models),
      config_(Normalize(config)),
      clock_(clock != nullptr ? clock : Clock::Real()),
      pool_(nullptr) {
  StartWorkers();
}

void AsyncServer::StartWorkers() {
  workers_.reserve(config_.num_workers);
  for (size_t i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AsyncServer::~AsyncServer() { Shutdown(ShutdownMode::kDrain); }

std::future<Result<double>> AsyncServer::Submit(const PlanNode& plan,
                                                int env_id) {
  {
    MutexLock lock(&mu_);
    if (shutdown_) {
      ++stats_.rejected;
    } else if (config_.max_queue > 0 && queue_.size() >= config_.max_queue) {
      ++stats_.rejected;
      return ReadyError(Status::Unavailable(
          "admission control: serving queue full (" +
          std::to_string(config_.max_queue) + " requests waiting)"));
    } else {
      Pending pending;
      pending.sample = {&plan, env_id, 0.0};
      pending.enqueued_micros = clock_->NowMicros();
      // Queue-state invariant: enqueue times are non-decreasing (pushes are
      // serialized under mu_ and the clock is monotonic). The deadline-flush
      // logic reads only the head's time on the strength of this.
      QCFE_DCHECK(queue_.empty() ||
                      pending.enqueued_micros >= queue_.back().enqueued_micros,
                  "AsyncServer queue enqueue times went backwards");
      std::future<Result<double>> future = pending.promise.get_future();
      queue_.push_back(std::move(pending));
      ++stats_.submitted;
      // Flushers only need to learn about two transitions: a new queue head
      // (its deadline starts the next flush timer) and a full batch.
      if (queue_.size() == 1 || queue_.size() >= config_.max_batch) {
        cv_.NotifyAll();
      }
      return future;
    }
  }
  return ReadyError(
      Status::Unavailable("async server is shut down; request rejected"));
}

int64_t AsyncServer::HeadFlushDeadlineLocked() const {
  const int64_t head_enqueued = queue_.front().enqueued_micros;
  // Saturating add: a huge max_delay_micros must disable the deadline, not
  // overflow into signed UB.
  return head_enqueued > Clock::kNoDeadline - config_.max_delay_micros
             ? Clock::kNoDeadline
             : head_enqueued + config_.max_delay_micros;
}

std::vector<AsyncServer::Pending> AsyncServer::CutBatchLocked() {
  const size_t take = std::min(queue_.size(), config_.max_batch);
  // Every caller enters with work to cut: batch-full and deadline imply a
  // non-empty queue, and the drain path returns before cutting when the
  // queue is empty.
  QCFE_DCHECK(take >= 1, "AsyncServer cut an empty batch");
  std::vector<Pending> batch;
  batch.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  // Leftover work (several full batches queued at once): hand it to a
  // sibling flusher before this thread disappears into the model.
  if (!queue_.empty()) cv_.NotifyAll();
  return batch;
}

void AsyncServer::WorkerLoop() {
  for (;;) {
    std::vector<Pending> batch;
    FlushReason reason = FlushReason::kFull;
    {
      MutexLock lock(&mu_);
      for (;;) {
        if (queue_.size() >= config_.max_batch) {
          reason = FlushReason::kFull;
          break;
        }
        if (shutdown_) {
          // kCancel shutdown empties the queue itself; drain mode serves
          // what is left, one (partial) batch per loop iteration.
          if (queue_.empty()) return;
          reason = FlushReason::kDrain;
          break;
        }
        if (queue_.empty()) {
          clock_->WaitUntil(&cv_, &mu_, Clock::kNoDeadline, [this] {
            QCFE_ASSERT_HELD(mu_);
            return !queue_.empty() || shutdown_;
          });
          continue;
        }
        const int64_t head_enqueued = queue_.front().enqueued_micros;
        const int64_t deadline = HeadFlushDeadlineLocked();
        if (clock_->NowMicros() >= deadline) {
          reason = FlushReason::kDeadline;
          break;
        }
        // Wait out the head request's deadline; wake early on a full batch,
        // shutdown, or another worker having cut the head out from under us
        // (its deadline no longer governs).
        clock_->WaitUntil(&cv_, &mu_, deadline, [this, head_enqueued] {
          QCFE_ASSERT_HELD(mu_);
          return queue_.size() >= config_.max_batch || shutdown_ ||
                 queue_.empty() ||
                 queue_.front().enqueued_micros != head_enqueued;
        });
      }
      batch = CutBatchLocked();
    }
    FlushBatch(&batch, reason);
  }
}

void AsyncServer::FlushBatch(std::vector<Pending>* batch, FlushReason reason) {
  std::vector<PlanSample> samples;
  samples.reserve(batch->size());
  for (const Pending& p : *batch) samples.push_back(p.sample);

  // Resolve the model exactly once per cut batch, before taking mu_. The
  // handle pins the resolved pipeline generation for the whole flush, so a
  // concurrent Publish can neither tear this batch across versions nor
  // destroy the model under it.
  const CostModel* model = model_;
  std::shared_ptr<const CostModel> held;
  uint64_t version = 0;
  if (swappable_ != nullptr) {
    held = swappable_->CurrentModel(&version);
    model = held.get();
  }
  if (model == nullptr) {
    {
      MutexLock lock(&mu_);
      ++stats_.batches_flushed;
      stats_.served += batch->size();
      stats_.failed += batch->size();
      switch (reason) {
        case FlushReason::kFull:
          ++stats_.full_flushes;
          break;
        case FlushReason::kDeadline:
          ++stats_.deadline_flushes;
          break;
        case FlushReason::kDrain:
          ++stats_.drain_flushes;
          break;
      }
    }
    for (Pending& p : *batch) {
      p.promise.set_value(Result<double>(Status::FailedPrecondition(
          "no model version has been published to this server yet")));
    }
    return;
  }

  std::vector<CostModel::BatchPrediction> results =
      model->PredictBatchEach(samples, pool_);
  // The promise-fulfilment loop below indexes results positionally; a model
  // returning a short/long vector would fulfil the wrong futures.
  QCFE_CHECK(results.size() == batch->size(),
             "PredictBatchEach returned a result count different from its "
             "request count");

  size_t failures = 0;
  for (const CostModel::BatchPrediction& r : results) {
    if (!r.status.ok()) ++failures;
  }
  // Publish counters before fulfilling the futures, so an observer that
  // sees a completed request also sees its flush accounted for.
  {
    MutexLock lock(&mu_);
    ++stats_.batches_flushed;
    stats_.served += batch->size();
    stats_.failed += failures;
    if (swappable_ != nullptr) stats_.model_version = version;
    // Counter conservation: every served or cancelled request was admitted.
    QCFE_DCHECK(stats_.served + stats_.cancelled <= stats_.submitted,
                "AsyncServer served/cancelled more requests than submitted");
    switch (reason) {
      case FlushReason::kFull:
        ++stats_.full_flushes;
        break;
      case FlushReason::kDeadline:
        ++stats_.deadline_flushes;
        break;
      case FlushReason::kDrain:
        ++stats_.drain_flushes;
        break;
    }
  }
  for (size_t i = 0; i < batch->size(); ++i) {
    if (results[i].status.ok()) {
      (*batch)[i].promise.set_value(Result<double>(results[i].ms));
    } else {
      (*batch)[i].promise.set_value(Result<double>(results[i].status));
    }
  }
}

void AsyncServer::Shutdown(ShutdownMode mode) {
  std::vector<Pending> to_cancel;
  {
    MutexLock lock(&mu_);
    if (!shutdown_) {
      shutdown_ = true;
      // Cancel mode empties the queue here; requests already cut into a
      // flushing batch are still served either way. Drain mode leaves the
      // queue for the workers, which flush it before exiting.
      if (mode == ShutdownMode::kCancel) {
        to_cancel.reserve(queue_.size());
        while (!queue_.empty()) {
          to_cancel.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
        stats_.cancelled += to_cancel.size();
      }
    }
  }
  cv_.NotifyAll();
  for (Pending& p : to_cancel) {
    p.promise.set_value(Result<double>(Status::Unavailable(
        "async server shut down before the request was served")));
  }
  std::call_once(join_once_, [this] {
    for (std::thread& worker : workers_) worker.join();
  });
}

void AsyncServer::set_observation_listener(ObservationListener* listener) {
  MutexLock lock(&mu_);
  listener_ = listener;
}

void AsyncServer::ReportObserved(const PlanNode& plan, int env_id,
                                 double predicted_ms, double actual_ms) {
  ObservationListener* listener = nullptr;
  {
    MutexLock lock(&mu_);
    if (listener_ == nullptr) {
      ++stats_.observations_dropped;
      return;
    }
    ++stats_.observations;
    listener = listener_;
  }
  // Deliver outside mu_: the listener updates its own structures (window
  // rings, drift state) and must not stall the flushers. The pointer read
  // under the lock stays valid because listeners outlive the server (or
  // detach first) per the set_observation_listener contract.
  listener->OnObservation(plan, env_id, predicted_ms, actual_ms);
}

void AsyncServer::RecordSwapPublished(uint64_t version) {
  MutexLock lock(&mu_);
  ++stats_.swaps_published;
  stats_.model_version = version;
}

void AsyncServer::RecordSwapRejected() {
  MutexLock lock(&mu_);
  ++stats_.swaps_rejected;
}

AsyncServeStats AsyncServer::stats() const {
  MutexLock lock(&mu_);
  AsyncServeStats out = stats_;
  out.mean_occupancy =
      out.batches_flushed > 0
          ? static_cast<double>(out.served) /
                static_cast<double>(out.batches_flushed)
          : 0.0;
  return out;
}

}  // namespace qcfe
