#ifndef QCFE_SERVE_ASYNC_SERVER_H_
#define QCFE_SERVE_ASYNC_SERVER_H_

/// \file async_server.h
/// Micro-batching serving front end over CostModel::PredictBatchMs.
///
/// The batched prediction path pays off only when callers hand it whole
/// batches, but online traffic arrives one plan at a time from many
/// concurrent callers. AsyncServer bridges the two: Submit() enqueues a
/// single (plan, environment) request and returns a future; dedicated
/// flusher threads coalesce queued requests into micro-batches and flush on
/// whichever comes first — the batch reaching `max_batch`, or the oldest
/// queued request reaching its `max_delay_micros` deadline — then fulfil
/// every future from one PredictBatchEach call.
///
/// Contracts:
///  * Results are bit-identical to a direct PredictBatchMs / PredictMs call
///    on the same model. Which micro-batch a request lands in is
///    scheduling-dependent, but per-request arithmetic is independent of
///    co-batched requests, so batching is invisible in the output bits.
///  * Per-request status isolation: a request that cannot be served fails
///    its own future only; co-batched requests still succeed (see
///    CostModel::PredictBatchEach).
///  * Admission control: when `max_queue` requests are already waiting,
///    Submit rejects immediately with StatusCode::kUnavailable instead of
///    letting the queue grow without bound.
///  * Clean shutdown: Shutdown(kDrain) serves everything already queued,
///    Shutdown(kCancel) fails queued requests with kUnavailable; both then
///    join the flusher threads. The destructor drains.
///  * Clock-injectable: all waiting goes through a Clock (util/clock.h), so
///    tests drive deadline flushes with FakeClock::Advance instead of
///    sleeps.
///  * Lock discipline is compiler-checked: the queue, shutdown flag and
///    stats are QCFE_GUARDED_BY(mu_), the batch-cut path is a
///    QCFE_REQUIRES(mu_) helper, and mu_ ranks below the clock's waiter
///    registry (see lock_rank in util/sync.h).

#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "models/cost_model.h"
#include "util/clock.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/thread_pool.h"

namespace qcfe {

class SwappableModel;

/// Feedback interface for observed executions — the "observe" half of the
/// online adaptation loop (src/adapt). Serving callers that later learn a
/// request's true latency hand the (plan, env, predicted, actual) tuple
/// back through AsyncServer::ReportObserved, which forwards it here.
/// Implementations must be thread-safe: observations arrive from arbitrary
/// caller threads, and must not block for long (the canonical
/// implementation, ObservationSink, does O(1) ring updates).
class ObservationListener {
 public:
  virtual ~ObservationListener() = default;
  /// `plan` is only guaranteed alive for the duration of the call;
  /// implementations that keep it (e.g. as a retraining sample) must know
  /// the caller keeps the plan alive, as all in-repo drivers do.
  virtual void OnObservation(const PlanNode& plan, int env_id,
                             double predicted_ms, double actual_ms) = 0;
};

/// Micro-batcher tuning knobs (PipelineConfig::async_serve carries these).
struct AsyncServeConfig {
  /// Flush as soon as this many requests are queued.
  size_t max_batch = 64;
  /// Flush a partial batch once its oldest request has waited this long.
  /// This bounds the latency cost of batching: a request is served at most
  /// max_delay after arrival even at low QPS.
  int64_t max_delay_micros = 2000;
  /// Dedicated flusher threads. More than one lets the next micro-batch cut
  /// while a previous one is still in the model; results are identical
  /// either way.
  size_t num_workers = 1;
  /// Admission control: reject Submit with kUnavailable once this many
  /// requests are queued (not yet cut into a flushing batch). 0 = no limit.
  size_t max_queue = 4096;
};

/// Serving counters, all monotonically increasing except mean_occupancy
/// and model_version (which tracks the published version).
struct AsyncServeStats {
  uint64_t submitted = 0;         ///< requests accepted into the queue
  uint64_t rejected = 0;          ///< refused at admission (or post-shutdown)
  uint64_t cancelled = 0;         ///< queued requests failed by kCancel
  uint64_t served = 0;            ///< requests flushed through the model
  uint64_t failed = 0;            ///< served requests with per-request errors
  uint64_t batches_flushed = 0;
  uint64_t full_flushes = 0;      ///< flush reason: batch reached max_batch
  uint64_t deadline_flushes = 0;  ///< flush reason: max_delay deadline
  uint64_t drain_flushes = 0;     ///< flush reason: shutdown drain
  double mean_occupancy = 0.0;    ///< served / batches_flushed
  // Hot-swap counters (serve/model_swap.h); all zero for fixed-model
  // servers.
  uint64_t swaps_published = 0;   ///< successful LoadAndSwap publishes
  uint64_t swaps_rejected = 0;    ///< LoadAndSwap failures (old model kept)
  uint64_t model_version = 0;     ///< version of the last publish/flush seen
  // Observation counters (the observe half of src/adapt); both zero until
  // callers use ReportObserved.
  uint64_t observations = 0;          ///< observations forwarded to a listener
  uint64_t observations_dropped = 0;  ///< observations with no listener set
};

/// Request-queue front end over one CostModel. Thread-safe: any number of
/// caller threads may Submit concurrently. The model, clock and pool are
/// not owned and must outlive the server (the Pipeline guarantees this for
/// servers built via Pipeline::ServeAsync).
class AsyncServer {
 public:
  /// `clock` null means the process-wide real clock; `pool` (optional)
  /// shards each flushed batch across workers exactly like
  /// PredictBatchMs(batch, pool).
  AsyncServer(const CostModel* model, const AsyncServeConfig& config,
              Clock* clock = nullptr, ThreadPool* pool = nullptr);
  /// Hot-swappable variant: every cut batch is served by the model version
  /// current at flush time, resolved once per batch — a concurrent Publish
  /// never tears a batch across versions, and each request is answered by
  /// exactly one version. `models` must outlive the server. While no
  /// version is published yet, requests fail with kFailedPrecondition.
  /// No worker pool: the pool belongs to a pipeline generation, which a
  /// swap may retire while this server is still running.
  AsyncServer(const SwappableModel* models, const AsyncServeConfig& config,
              Clock* clock = nullptr);
  /// Drains outstanding work, then joins the flusher threads.
  ~AsyncServer();

  AsyncServer(const AsyncServer&) = delete;
  AsyncServer& operator=(const AsyncServer&) = delete;

  /// Submits one prediction request. The returned future becomes ready when
  /// the request's micro-batch flushes (or immediately, with
  /// kUnavailable, when admission control rejects or the server is shut
  /// down). The plan must outlive the future's completion.
  std::future<Result<double>> Submit(const PlanNode& plan, int env_id);

  enum class ShutdownMode {
    kDrain,   ///< serve everything already queued, then stop
    kCancel,  ///< fail queued requests with kUnavailable, then stop
  };

  /// Stops the server and joins its flusher threads. Idempotent; the first
  /// call's mode wins. Submit after shutdown rejects with kUnavailable.
  void Shutdown(ShutdownMode mode = ShutdownMode::kDrain);

  /// Snapshot of the serving counters (consistent: taken under the queue
  /// lock, and flush counters are published before the batch's futures).
  AsyncServeStats stats() const;

  /// Swap accounting, called by LoadAndSwap (serve/model_swap.h). Publishes
  /// bump swaps_published and advance model_version; rejections only bump
  /// swaps_rejected — the old version keeps serving.
  void RecordSwapPublished(uint64_t version);
  void RecordSwapRejected();

  /// Attaches (or detaches, with null) the observation listener that
  /// ReportObserved forwards to. The listener is not owned and must outlive
  /// the server or be detached first.
  void set_observation_listener(ObservationListener* listener);

  /// Reports one observed execution: the caller predicted `predicted_ms`
  /// for (plan, env_id) and later measured `actual_ms`. Forwards to the
  /// attached listener *outside* the queue lock (listeners may do real
  /// work) and bumps `observations`; with no listener attached the tuple is
  /// counted in `observations_dropped` and discarded. Thread-safe.
  void ReportObserved(const PlanNode& plan, int env_id, double predicted_ms,
                      double actual_ms);

  const AsyncServeConfig& config() const { return config_; }

 private:
  enum class FlushReason { kFull, kDeadline, kDrain };

  struct Pending {
    PlanSample sample;
    int64_t enqueued_micros = 0;
    std::promise<Result<double>> promise;
  };

  void WorkerLoop();
  /// Saturating deadline of the queue head: head enqueue time plus the
  /// configured max delay, or kNoDeadline when that addition would
  /// overflow (a huge max_delay_micros is a caller's way of asking for
  /// batch-full-only flushing).
  int64_t HeadFlushDeadlineLocked() const QCFE_REQUIRES(mu_);
  /// Cuts up to max_batch requests off the queue head and hands leftover
  /// work to a sibling flusher. The queue must be non-empty.
  std::vector<Pending> CutBatchLocked() QCFE_REQUIRES(mu_);
  /// Serves one cut batch outside the queue lock and fulfils its promises.
  void FlushBatch(std::vector<Pending>* batch, FlushReason reason)
      QCFE_EXCLUDES(mu_);

  void StartWorkers();

  /// Exactly one of model_/swappable_ is set: a fixed model for classic
  /// servers, a publication point for hot-swappable ones.
  const CostModel* model_;
  const SwappableModel* swappable_;
  const AsyncServeConfig config_;
  Clock* clock_;
  ThreadPool* pool_;

  /// Ranked below the clock's waiter registry: WorkerLoop holds mu_ while
  /// WaitUntil registers with a FakeClock.
  mutable Mutex mu_{lock_rank::kAsyncServerQueue};
  CondVar cv_;
  std::deque<Pending> queue_ QCFE_GUARDED_BY(mu_);
  bool shutdown_ QCFE_GUARDED_BY(mu_) = false;
  AsyncServeStats stats_ QCFE_GUARDED_BY(mu_);
  ObservationListener* listener_ QCFE_GUARDED_BY(mu_) = nullptr;

  std::once_flag join_once_;
  std::vector<std::thread> workers_;
};

}  // namespace qcfe

#endif  // QCFE_SERVE_ASYNC_SERVER_H_
