#ifndef QCFE_SERVE_MODEL_SWAP_H_
#define QCFE_SERVE_MODEL_SWAP_H_

/// \file model_swap.h
/// Zero-downtime model replacement for a live serving process.
///
/// A SwappableModel is an RCU-style publication point: readers resolve the
/// current pipeline into a shared_ptr (a cheap reader-locked pointer copy),
/// then use it entirely lock-free; a writer publishes a replacement with one
/// pointer swap under the exclusive side of the same lock. In-flight
/// requests keep the version they resolved — a swap never tears a batch,
/// and the displaced pipeline is destroyed only after its last borrower
/// drops out (shared_ptr refcount, no quiescence protocol needed).
///
/// LoadAndSwap is the operational entry point: load an artifact
/// (Pipeline::Load, with all its fingerprint/corruption validation), warm
/// it with a parity probe, and only then publish. Any failure — unreadable
/// file, corrupt bytes, fingerprint mismatch, probe error, probe outputs
/// diverging from expectations — leaves the previously published model
/// serving untouched and bumps the server's rejected-swap counter. A swap
/// is all-or-nothing from the caller's point of view.
///
/// Locking: the publish lock ranks at lock_rank::kModelSwap, above the
/// AsyncServer queue (stats() reads the version while holding the queue
/// lock) and below nothing it calls — both sides are leaf acquisitions.
///
/// Callers: operators swap by hand (examples/hot_swap.cpp), and the online
/// adaptation loop (src/adapt/adaptation_controller.h) publishes through
/// LoadAndSwap automatically after each drift-triggered background retrain.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "models/cost_model.h"
#include "util/status.h"
#include "util/sync.h"

namespace qcfe {

class AsyncServer;
class Database;
struct Environment;
class Fs;
class Pipeline;
struct QueryTemplate;

/// Atomically swappable reference to the currently serving pipeline.
/// Thread-safe: any number of readers may resolve while a writer publishes.
class SwappableModel {
 public:
  /// Starts empty (version 0, no model). Requests served off an empty
  /// SwappableModel fail with kFailedPrecondition until the first Publish.
  SwappableModel() = default;
  /// Starts with an initial pipeline at version 1.
  explicit SwappableModel(std::shared_ptr<const Pipeline> initial);

  SwappableModel(const SwappableModel&) = delete;
  SwappableModel& operator=(const SwappableModel&) = delete;

  /// The currently published pipeline (null before the first Publish) and,
  /// optionally, its version number. The returned shared_ptr pins the
  /// pipeline: it stays alive for this borrower even if a newer version is
  /// published immediately after.
  std::shared_ptr<const Pipeline> Current(uint64_t* version = nullptr) const
      QCFE_EXCLUDES(mu_);

  /// The current pipeline's model as an aliasing shared_ptr (the model is
  /// owned by its pipeline; the handle keeps the whole pipeline alive).
  /// Null before the first Publish.
  std::shared_ptr<const CostModel> CurrentModel(
      uint64_t* version = nullptr) const QCFE_EXCLUDES(mu_);

  /// Atomically replaces the published pipeline; returns the new version
  /// number (1 for the first publish). Readers that already resolved keep
  /// the old version until they drop their handle.
  uint64_t Publish(std::shared_ptr<const Pipeline> next) QCFE_EXCLUDES(mu_);

  /// Version of the currently published pipeline (0 = none yet).
  uint64_t version() const QCFE_EXCLUDES(mu_);

 private:
  /// Readers resolve under the shared side; Publish takes the exclusive
  /// side for one pointer+counter store. Leaf on the write side: Publish
  /// never calls out while holding it.
  mutable SharedMutex mu_{lock_rank::kModelSwap};
  std::shared_ptr<const Pipeline> pipeline_ QCFE_GUARDED_BY(mu_);
  uint64_t version_ QCFE_GUARDED_BY(mu_) = 0;
};

/// Validation knobs for LoadAndSwap's pre-publish warm-up.
struct SwapOptions {
  /// Probe requests predicted through the candidate before it is published
  /// (exercises the full featurize+forward path, so the first real request
  /// never pays first-touch costs). Empty = no probe.
  std::vector<PlanSample> probe;
  /// Optional expected probe outputs, compared bit-exactly (positionally
  /// aligned with `probe`). Use predictions from the process that saved the
  /// artifact to prove the loaded model is the model that was saved.
  std::vector<double> expected;
};

/// Loads the artifact at `path` against db/envs/templates, warms it with
/// `options.probe`, and publishes it into `target`. On success returns the
/// newly published pipeline (also reachable via target->Current()) and, when
/// `server` is given, records the publish in its stats. On any failure the
/// previously published model keeps serving, the failure is recorded as a
/// rejected swap on `server`, and the typed load/validation error is
/// returned. `fs` is forwarded to Pipeline::Load (null = real file system).
Result<std::shared_ptr<const Pipeline>> LoadAndSwap(
    Database* db, const std::vector<Environment>* envs,
    const std::vector<QueryTemplate>* templates, const std::string& path,
    const SwapOptions& options, SwappableModel* target,
    AsyncServer* server = nullptr, Fs* fs = nullptr);

}  // namespace qcfe

#endif  // QCFE_SERVE_MODEL_SWAP_H_
