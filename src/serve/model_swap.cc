#include "serve/model_swap.h"

#include <cstring>
#include <utility>

#include "core/pipeline.h"
#include "serve/async_server.h"

namespace qcfe {

SwappableModel::SwappableModel(std::shared_ptr<const Pipeline> initial) {
  Publish(std::move(initial));
}

std::shared_ptr<const Pipeline> SwappableModel::Current(
    uint64_t* version) const {
  ReaderMutexLock lock(&mu_);
  if (version != nullptr) *version = version_;
  return pipeline_;
}

std::shared_ptr<const CostModel> SwappableModel::CurrentModel(
    uint64_t* version) const {
  std::shared_ptr<const Pipeline> pipeline = Current(version);
  if (pipeline == nullptr) return nullptr;
  // Aliasing handle: points at the pipeline's model, owns the pipeline.
  return std::shared_ptr<const CostModel>(pipeline, &pipeline->model());
}

uint64_t SwappableModel::Publish(std::shared_ptr<const Pipeline> next) {
  std::shared_ptr<const Pipeline> displaced;
  uint64_t version = 0;
  {
    WriterMutexLock lock(&mu_);
    // The displaced pipeline must not be destroyed under the publish lock:
    // its teardown (model, thread pool) is arbitrarily heavy and would
    // stall every reader. Move it out and let it die after unlock — or
    // later still, when the last in-flight borrower drops its handle.
    displaced = std::move(pipeline_);
    pipeline_ = std::move(next);
    version = ++version_;
  }
  return version;
}

uint64_t SwappableModel::version() const {
  ReaderMutexLock lock(&mu_);
  return version_;
}

Result<std::shared_ptr<const Pipeline>> LoadAndSwap(
    Database* db, const std::vector<Environment>* envs,
    const std::vector<QueryTemplate>* templates, const std::string& path,
    const SwapOptions& options, SwappableModel* target, AsyncServer* server,
    Fs* fs) {
  if (target == nullptr) {
    return Status::InvalidArgument("LoadAndSwap requires a swap target");
  }
  auto reject = [server](Status status) {
    if (server != nullptr) server->RecordSwapRejected();
    return status;
  };

  Result<std::unique_ptr<Pipeline>> loaded =
      Pipeline::Load(db, envs, templates, path, fs);
  if (!loaded.ok()) {
    return reject(loaded.status().WithContext("hot swap"));
  }
  std::shared_ptr<const Pipeline> candidate(std::move(loaded.value()));

  if (!options.probe.empty()) {
    Result<std::vector<double>> probe = candidate->PredictBatch(options.probe);
    if (!probe.ok()) {
      return reject(probe.status().WithContext("hot-swap warm-up probe"));
    }
    if (!options.expected.empty()) {
      if (options.expected.size() != probe->size()) {
        return reject(Status::InvalidArgument(
            "hot-swap parity probe: " + std::to_string(options.expected.size()) +
            " expected values for " + std::to_string(probe->size()) +
            " probe requests"));
      }
      for (size_t i = 0; i < probe->size(); ++i) {
        // Bit-pattern comparison: the parity contract is bit-identity, and
        // it must hold for NaN too (NaN != NaN would pass a == check).
        if (std::memcmp(&(*probe)[i], &options.expected[i], sizeof(double)) !=
            0) {
          return reject(Status::FailedPrecondition(
              "hot-swap parity probe mismatch at request " +
              std::to_string(i) + ": loaded model predicts " +
              std::to_string((*probe)[i]) + ", expected " +
              std::to_string(options.expected[i])));
        }
      }
    }
  }

  const uint64_t version = target->Publish(candidate);
  if (server != nullptr) server->RecordSwapPublished(version);
  return candidate;
}

}  // namespace qcfe
