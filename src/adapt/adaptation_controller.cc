#include "adapt/adaptation_controller.h"

#include <algorithm>
#include <utility>

#include "util/check.h"
#include "util/fs.h"

namespace qcfe {
namespace adapt {

namespace {

AdaptationConfig Normalize(const AdaptationConfig& config) {
  AdaptationConfig c = config;
  if (c.evaluate_every == 0) c.evaluate_every = 1;
  if (c.min_retrain_samples == 0) c.min_retrain_samples = 1;
  return c;
}

}  // namespace

AdaptationController::AdaptationController(Pipeline* trainer,
                                           SwappableModel* target,
                                           const AdaptationConfig& config,
                                           AsyncServer* server, Fs* fs)
    : trainer_(trainer),
      target_(target),
      server_(server),
      fs_(fs),
      config_(Normalize(config)),
      sink_(config.window),
      detector_(config.drift) {
  QCFE_CHECK(trainer_ != nullptr && target_ != nullptr,
             "AdaptationController requires a trainer pipeline and a "
             "publication target");
  detector_.SetBaselines(trainer_->env_baseline_qerror());
  worker_ = std::thread([this] { WorkerLoop(); });
}

AdaptationController::~AdaptationController() { Stop(); }

void AdaptationController::OnObservation(const PlanNode& plan, int env_id,
                                         double predicted_ms,
                                         double actual_ms) {
  sink_.OnObservation(plan, env_id, predicted_ms, actual_ms);
  // Sample-count epochs: evaluate this environment's window every Nth of
  // its observations. The cumulative count is stable across window clears,
  // so the cadence never resets.
  const uint64_t seen = sink_.EnvObservations(env_id);
  const bool evaluate = seen % config_.evaluate_every == 0;
  DriftVerdict verdict;
  if (evaluate) {
    verdict = detector_.Evaluate(env_id, sink_.WindowQErrors(env_id));
  }
  MutexLock lock(&mu_);
  ++stats_.observations;
  if (!evaluate) return;
  ++stats_.windows_evaluated;
  if (!verdict.drifted) return;
  ++stats_.drift_trips;
  // Coalesce: any number of trips fold into one pending cycle (a trip
  // during a running cycle queues exactly one follow-up — the running
  // cycle's windows predate the trip's evidence). After Stop, trips are
  // counted but start nothing.
  if (!stop_ && !cycle_pending_) {
    cycle_pending_ = true;
    cv_.NotifyAll();
  }
}

void AdaptationController::WorkerLoop() {
  for (;;) {
    {
      MutexLock lock(&mu_);
      cv_.Wait(&mu_, [this] {
        QCFE_ASSERT_HELD(mu_);
        return cycle_pending_ || stop_;
      });
      if (stop_) return;  // pending trips after Stop are dropped
      cycle_pending_ = false;
      cycle_running_ = true;
    }
    Status status = RunCycle();
    MutexLock lock(&mu_);
    last_cycle_status_ = std::move(status);
    cycle_running_ = false;
    cv_.NotifyAll();
  }
}

Status AdaptationController::RunCycleNow() {
  {
    MutexLock lock(&mu_);
    // Wait out any background cycle, then claim the running slot so the
    // worker cannot start one underneath us.
    cv_.Wait(&mu_, [this] {
      QCFE_ASSERT_HELD(mu_);
      return !cycle_pending_ && !cycle_running_;
    });
    cycle_running_ = true;
  }
  Status status = RunCycle();
  MutexLock lock(&mu_);
  last_cycle_status_ = status;
  cycle_running_ = false;
  cv_.NotifyAll();
  return status;
}

void AdaptationController::WaitForIdle() {
  MutexLock lock(&mu_);
  cv_.Wait(&mu_, [this] {
    QCFE_ASSERT_HELD(mu_);
    return !cycle_pending_ && !cycle_running_;
  });
}

Status AdaptationController::RunCycle() {
  {
    MutexLock lock(&mu_);
    ++stats_.cycles_started;
  }
  if (config_.artifact_path.empty()) {
    MutexLock lock(&mu_);
    ++stats_.cycles_skipped;
    return Status::InvalidArgument(
        "AdaptationConfig::artifact_path is empty; nowhere to publish from");
  }
  // The snapshot owns its rescaled plan clones (LabeledCorpus::owners), so
  // the corpus stays valid through retrain+probe even as new observations
  // evict ring entries underneath it.
  const LabeledCorpus corpus = sink_.LabeledSamples();
  const std::vector<PlanSample>& samples = corpus.samples;
  if (samples.size() < config_.min_retrain_samples) {
    MutexLock lock(&mu_);
    ++stats_.cycles_skipped;
    return Status::FailedPrecondition(
        "only " + std::to_string(samples.size()) +
        " buffered labeled samples; retrain needs " +
        std::to_string(config_.min_retrain_samples));
  }

  // 1. Warm-start retrain on the observed-execution corpus. On failure the
  // trainer's weights may have moved, but nothing was published — the
  // serving model is untouched.
  Status trained = trainer_->Retrain(samples, config_.retrain, nullptr);
  if (!trained.ok()) {
    MutexLock lock(&mu_);
    ++stats_.retrain_failures;
    return trained.WithContext("adaptation retrain");
  }

  // 2. Persist through the Fs seam. Atomic rename: a failed save leaves
  // the previously published artifact intact.
  Status saved = trainer_->Save(config_.artifact_path, fs_);
  if (!saved.ok()) {
    MutexLock lock(&mu_);
    ++stats_.save_failures;
    return saved.WithContext("adaptation save");
  }

  // 3. Publish via LoadAndSwap with a bit-parity probe: the loaded
  // candidate must reproduce the trainer's predictions exactly, proving
  // the artifact on disk is the model that was just retrained. Any
  // load/validation/probe failure keeps the old version serving.
  SwapOptions options;
  const size_t probe_n = std::min(config_.probe_size, samples.size());
  options.probe.assign(samples.begin(), samples.begin() + probe_n);
  if (!options.probe.empty()) {
    Result<std::vector<double>> expected = trainer_->PredictBatch(options.probe);
    if (expected.ok()) {
      options.expected = std::move(expected.value());
    } else {
      // Can't form expectations; probe for warm-up only.
      options.expected.clear();
    }
  }
  Result<std::shared_ptr<const Pipeline>> published = LoadAndSwap(
      trainer_->database(), trainer_->environments(),
      trainer_->query_templates(), config_.artifact_path, options, target_,
      server_, fs_);
  if (!published.ok()) {
    MutexLock lock(&mu_);
    ++stats_.swaps_rejected;
    return published.status().WithContext("adaptation swap");
  }

  // 4. New generation is live: drop q-error history observed against the
  // old model and re-reference the detector on the retrained fit.
  sink_.ClearWindows();
  detector_.SetBaselines(trainer_->env_baseline_qerror());
  const uint64_t version = target_->version();
  {
    MutexLock lock(&mu_);
    ++stats_.swaps_published;
    stats_.model_version = version;
  }
  if (config_.on_publish) config_.on_publish(*published, version);
  return Status::OK();
}

void AdaptationController::Stop() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
    cv_.NotifyAll();
  }
  if (worker_.joinable()) worker_.join();
}

AdaptationStats AdaptationController::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

Status AdaptationController::last_cycle_status() const {
  MutexLock lock(&mu_);
  return last_cycle_status_;
}

}  // namespace adapt
}  // namespace qcfe
