#ifndef QCFE_ADAPT_DRIFT_DETECTOR_H_
#define QCFE_ADAPT_DRIFT_DETECTOR_H_

/// \file drift_detector.h
/// The "detect" stage of the online adaptation loop.
///
/// A fitted cost model goes stale when the world changes under it — data
/// grows, knobs move, hardware is swapped — and staleness shows up as the
/// serving q-error drifting away from what the model achieved on its own
/// training corpus. Detection here is two complementary tests over an
/// environment's recent q-error window (ObservationSink::WindowQErrors):
///
///  * Mean-ratio: the window's mean q-error versus the fit-time baseline
///    (Pipeline::env_baseline_qerror, persisted in the artifact). Catches
///    sustained level shifts; robust and easy to reason about.
///  * Page–Hinkley: a cumulative one-sided test on log q-error that tracks
///    how far the running sum has risen above its historical minimum.
///    Catches a fresh upward drift inside a window whose overall mean is
///    still diluted by the pre-drift prefix.
///
/// Both tests are pure functions of (window, baseline, config) — no clock,
/// no hidden state — so a verdict is exactly reproducible from its inputs.
/// DetectDrift is that pure function; DriftDetector adds the per-env
/// baseline/threshold table for serving use.

#include <cstddef>
#include <map>
#include <vector>

#include "util/sync.h"

namespace qcfe {
namespace adapt {

/// Thresholds for one drift evaluation. Defaults are deliberately
/// conservative: a healthy window (q-errors rattling around the baseline)
/// must not trip, while a sustained 2x degradation must.
struct DriftConfig {
  /// No verdict before this many samples are in the window: early windows
  /// are all variance. Also the Page–Hinkley warm-up length.
  size_t min_samples = 32;
  /// Mean-ratio trip: window mean q-error > threshold * baseline.
  double mean_ratio_threshold = 1.5;
  /// Page–Hinkley allowance: drift in mean log q-error smaller than this
  /// per sample is tolerated (absorbs jitter).
  double ph_delta = 0.05;
  /// Page–Hinkley trip threshold on the cumulative statistic.
  double ph_lambda = 4.0;
  /// Baseline used when the caller has none for an environment (a freshly
  /// observed env, or an artifact from before baselines were persisted).
  /// 1.0 is the q-error of a perfect prediction — the strictest sensible
  /// reference.
  double fallback_baseline = 1.0;
};

/// One evaluation's full result — the trip bit plus every intermediate the
/// decision was made from, so callers can log *why*.
struct DriftVerdict {
  bool drifted = false;            ///< mean_trip || page_hinkley_trip
  bool mean_trip = false;
  bool page_hinkley_trip = false;
  size_t samples = 0;              ///< window size the verdict was made on
  double window_mean_qerror = 0.0;
  double baseline_mean_qerror = 0.0;
  double page_hinkley_stat = 0.0;  ///< final cumulative statistic
};

/// Pure drift test over one q-error window (oldest sample first); see the
/// file comment for the two criteria. Never trips on fewer than
/// config.min_samples samples. `baseline_mean_qerror` values below 1.0
/// (impossible for a real q-error mean) are clamped to 1.0 so a corrupt or
/// zero baseline cannot make the mean-ratio test hair-triggered.
DriftVerdict DetectDrift(const std::vector<double>& window_qerrors,
                         double baseline_mean_qerror,
                         const DriftConfig& config);

/// Per-environment baseline/threshold table around DetectDrift.
/// Thread-safe: serving threads Evaluate while the adaptation controller
/// refreshes baselines after a retrain. Lock rank:
/// lock_rank::kDriftDetector, a leaf (the evaluation itself runs on
/// copied-out values).
class DriftDetector {
 public:
  explicit DriftDetector(const DriftConfig& defaults = {});

  /// Sets (or replaces) an environment's baseline mean q-error.
  void SetBaseline(int env_id, double mean_qerror);
  /// Replaces all baselines with `baselines` (typically
  /// Pipeline::env_baseline_qerror after a fit or retrain).
  void SetBaselines(const std::map<int, double>& baselines);
  /// The environment's baseline, or the configured fallback.
  double Baseline(int env_id) const;

  /// Per-environment threshold override (unset envs use the defaults).
  void SetEnvConfig(int env_id, const DriftConfig& config);

  /// DetectDrift with this environment's baseline and thresholds.
  DriftVerdict Evaluate(int env_id,
                        const std::vector<double>& window_qerrors) const;

 private:
  mutable Mutex mu_{lock_rank::kDriftDetector};
  DriftConfig defaults_ QCFE_GUARDED_BY(mu_);
  std::map<int, double> baselines_ QCFE_GUARDED_BY(mu_);
  std::map<int, DriftConfig> env_configs_ QCFE_GUARDED_BY(mu_);
};

}  // namespace adapt
}  // namespace qcfe

#endif  // QCFE_ADAPT_DRIFT_DETECTOR_H_
