#include "adapt/drift_detector.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace qcfe {
namespace adapt {

DriftVerdict DetectDrift(const std::vector<double>& window_qerrors,
                         double baseline_mean_qerror,
                         const DriftConfig& config) {
  DriftVerdict v;
  v.samples = window_qerrors.size();
  v.baseline_mean_qerror = std::max(baseline_mean_qerror, 1.0);
  v.window_mean_qerror = Mean(window_qerrors);

  // Page–Hinkley on x_i = log(q_i): cumulative deviation of the sequence
  // above its running mean (minus the per-sample allowance), tracked
  // against the historical minimum. Log space makes the statistic scale-
  // free: a 2x q-error degradation contributes log(2) per sample whether
  // the baseline q-error was 1.1 or 11. Single forward pass in sample
  // order — bit-deterministic for a given window.
  double running_sum = 0.0;
  double m = 0.0;
  double m_min = 0.0;
  for (size_t i = 0; i < window_qerrors.size(); ++i) {
    const double x = std::log(std::max(window_qerrors[i], 1.0));
    running_sum += x;
    const double running_mean = running_sum / static_cast<double>(i + 1);
    m += x - running_mean - config.ph_delta;
    m_min = std::min(m_min, m);
    v.page_hinkley_stat = m - m_min;
  }

  if (v.samples < config.min_samples) return v;  // all fields, no trip
  v.mean_trip =
      v.window_mean_qerror > config.mean_ratio_threshold * v.baseline_mean_qerror;
  v.page_hinkley_trip = v.page_hinkley_stat > config.ph_lambda;
  v.drifted = v.mean_trip || v.page_hinkley_trip;
  return v;
}

DriftDetector::DriftDetector(const DriftConfig& defaults)
    : defaults_(defaults) {}

void DriftDetector::SetBaseline(int env_id, double mean_qerror) {
  MutexLock lock(&mu_);
  baselines_[env_id] = mean_qerror;
}

void DriftDetector::SetBaselines(const std::map<int, double>& baselines) {
  MutexLock lock(&mu_);
  baselines_ = baselines;
}

double DriftDetector::Baseline(int env_id) const {
  MutexLock lock(&mu_);
  auto it = baselines_.find(env_id);
  return it == baselines_.end() ? defaults_.fallback_baseline : it->second;
}

void DriftDetector::SetEnvConfig(int env_id, const DriftConfig& config) {
  MutexLock lock(&mu_);
  env_configs_[env_id] = config;
}

DriftVerdict DriftDetector::Evaluate(
    int env_id, const std::vector<double>& window_qerrors) const {
  DriftConfig config;
  double baseline = 0.0;
  {
    MutexLock lock(&mu_);
    auto cfg_it = env_configs_.find(env_id);
    config = cfg_it == env_configs_.end() ? defaults_ : cfg_it->second;
    auto base_it = baselines_.find(env_id);
    baseline = base_it == baselines_.end() ? config.fallback_baseline
                                           : base_it->second;
  }
  // Pure computation outside the lock: Evaluate never blocks SetBaseline.
  return DetectDrift(window_qerrors, baseline, config);
}

}  // namespace adapt
}  // namespace qcfe
