#include "adapt/observation_sink.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/stats.h"

namespace qcfe {
namespace adapt {

namespace {

ObservationWindowConfig Normalize(const ObservationWindowConfig& config) {
  ObservationWindowConfig c = config;
  if (c.window_capacity == 0) c.window_capacity = 1;
  if (c.label_capacity == 0) c.label_capacity = 1;
  return c;
}

}  // namespace

ObservationSink::ObservationSink(const ObservationWindowConfig& config)
    : config_(Normalize(config)) {}

void ObservationSink::OnObservation(const PlanNode& plan, int env_id,
                                    double predicted_ms, double actual_ms) {
  const double q = QError(actual_ms, predicted_ms);
  // Materialize the training view of this observation before taking the
  // lock: a deep clone with every node latency rescaled so the subtree
  // targets sum to the *observed* time. Only the end-to-end latency is
  // observed, so the slowdown is attributed proportionally across nodes —
  // the cost models train on per-node subtree targets, and without the
  // rescale a retrain keeps fitting the fit-time world regardless of what
  // was measured. A plan with no recorded latency cannot be attributed and
  // is buffered as-is.
  std::unique_ptr<PlanNode> clone = plan.Clone();
  const double recorded_ms = SubtreeLatencyMs(plan);
  if (recorded_ms > 0.0 && actual_ms > 0.0) {
    const double scale = actual_ms / recorded_ms;
    clone->Visit([scale](PlanNode* node) { node->actual_ms *= scale; });
  }
  LabeledEntry entry{std::shared_ptr<const PlanNode>(std::move(clone)),
                     env_id, actual_ms};

  MutexLock lock(&mu_);
  EnvWindow& window = windows_[env_id];
  if (window.qerrors.size() < config_.window_capacity) {
    window.qerrors.push_back(q);
  } else {
    window.qerrors[window.next] = q;
  }
  window.next = (window.next + 1) % config_.window_capacity;
  ++window.total;

  if (labels_.size() < config_.label_capacity) {
    labels_.push_back(std::move(entry));
  } else {
    labels_[label_next_] = std::move(entry);
  }
  label_next_ = (label_next_ + 1) % config_.label_capacity;
  ++label_total_;
}

std::vector<double> ObservationSink::WindowQErrors(int env_id) const {
  MutexLock lock(&mu_);
  auto it = windows_.find(env_id);
  if (it == windows_.end()) return {};
  const EnvWindow& window = it->second;
  // Unroll the ring into arrival order: once the ring has wrapped, `next`
  // points at the oldest entry.
  std::vector<double> out;
  out.reserve(window.qerrors.size());
  const size_t n = window.qerrors.size();
  const size_t start = n < config_.window_capacity ? 0 : window.next;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(window.qerrors[(start + i) % n]);
  }
  return out;
}

void ObservationSink::ClearWindows() {
  MutexLock lock(&mu_);
  for (auto& [env_id, window] : windows_) {
    window.qerrors.clear();
    window.next = 0;
  }
}

LabeledCorpus ObservationSink::LabeledSamples() const {
  MutexLock lock(&mu_);
  LabeledCorpus out;
  out.samples.reserve(labels_.size());
  out.owners.reserve(labels_.size());
  const size_t n = labels_.size();
  const size_t start = n < config_.label_capacity ? 0 : label_next_;
  for (size_t i = 0; i < n; ++i) {
    const LabeledEntry& entry = labels_[(start + i) % n];
    out.samples.push_back({entry.plan.get(), entry.env_id, entry.label_ms});
    out.owners.push_back(entry.plan);
  }
  return out;
}

uint64_t ObservationSink::TotalObservations() const {
  MutexLock lock(&mu_);
  return label_total_;
}

uint64_t ObservationSink::EnvObservations(int env_id) const {
  MutexLock lock(&mu_);
  auto it = windows_.find(env_id);
  return it == windows_.end() ? 0 : it->second.total;
}

std::vector<int> ObservationSink::EnvIds() const {
  MutexLock lock(&mu_);
  std::vector<int> ids;
  ids.reserve(windows_.size());
  for (const auto& [env_id, window] : windows_) ids.push_back(env_id);
  return ids;
}

}  // namespace adapt
}  // namespace qcfe
