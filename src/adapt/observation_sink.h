#ifndef QCFE_ADAPT_OBSERVATION_SINK_H_
#define QCFE_ADAPT_OBSERVATION_SINK_H_

/// \file observation_sink.h
/// The "observe" stage of the online adaptation loop.
///
/// Serving callers that later learn a request's true latency report
/// (plan, env, predicted, actual) tuples — typically through
/// AsyncServer::ReportObserved. The sink condenses that stream into two
/// deterministic, fixed-capacity structures:
///
///  * a per-environment ring of recent q-errors (the drift detector's
///    window: what the serving model's accuracy looks like *now*), and
///  * one shared ring of labeled samples (the retraining corpus: what the
///    next warm-start Retrain will consume).
///
/// The labeled ring stores *training-ready* samples, not bare pointers into
/// caller-owned plans: each observation is a deep clone of the served plan
/// with every node's recorded latency rescaled so the subtree targets sum
/// to the observed execution time. Only the end-to-end latency is observed
/// online, but the cost models train on per-node subtree targets
/// (SubtreeLatencyMs) — without the proportional attribution a retrain
/// would keep fitting the fit-time world no matter what was measured, and
/// the adaptation loop would never actually adapt.
///
/// Everything is sized up front and indexed by sample count — no wall
/// clock, no growth. Given the same observation sequence the sink's state
/// is bit-identical on every run, which is what makes the whole adaptation
/// loop replayable in tests.

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "models/cost_model.h"
#include "serve/async_server.h"
#include "util/sync.h"

namespace qcfe {
namespace adapt {

/// Capacity knobs for ObservationSink. All rings drop-oldest when full.
struct ObservationWindowConfig {
  /// Per-environment q-error ring size: how much recent history the drift
  /// detector sees.
  size_t window_capacity = 256;
  /// Labeled-sample ring size (shared across environments): the maximum
  /// retraining corpus one adaptation cycle can use.
  size_t label_capacity = 1024;
};

/// A snapshot of the labeled retraining ring. `samples` feeds
/// Pipeline::Retrain directly (oldest observation first); `owners` holds
/// the rescaled plan clones the samples point into, so the corpus stays
/// valid for as long as the caller trains on it — even if the ring evicts
/// or the sink itself is destroyed in the meantime.
struct LabeledCorpus {
  std::vector<PlanSample> samples;
  std::vector<std::shared_ptr<const PlanNode>> owners;
};

/// Thread-safe observation accumulator; see the file comment. Implements
/// ObservationListener so it can be attached directly to an AsyncServer,
/// or fed through a forwarding listener (AdaptationController does the
/// latter). Lock rank: lock_rank::kObservationSink, a leaf.
class ObservationSink : public ObservationListener {
 public:
  explicit ObservationSink(const ObservationWindowConfig& config = {});

  /// Records one observation: pushes QError(actual, predicted) into the
  /// environment's q-error ring, and a deep clone of `plan` — node
  /// latencies rescaled by actual_ms / SubtreeLatencyMs(plan) — into the
  /// labeled ring. The plan is not retained past this call; the clone is
  /// owned by the sink (and by any outstanding LabeledSamples snapshot).
  void OnObservation(const PlanNode& plan, int env_id, double predicted_ms,
                     double actual_ms) override;

  /// The environment's current q-error window, oldest observation first.
  /// At most window_capacity entries; empty for an unseen environment.
  std::vector<double> WindowQErrors(int env_id) const;

  /// Clears every environment's q-error window (cumulative counters and
  /// the labeled ring are untouched). The adaptation controller calls this
  /// after publishing a retrained model: accuracy observed against the old
  /// model must not count for or against the new one.
  void ClearWindows();

  /// The buffered retraining corpus in arrival order (oldest first), at
  /// most label_capacity samples. PlanSample::label_ms carries the
  /// *observed* latency and the plans are the rescaled clones, so the
  /// snapshot feeds Pipeline::Retrain directly and the per-node training
  /// targets reflect what was measured, not what was collected at fit time.
  LabeledCorpus LabeledSamples() const;

  /// Cumulative observations, total and per environment (not reset by
  /// ring wrap-around or ClearWindows).
  uint64_t TotalObservations() const;
  uint64_t EnvObservations(int env_id) const;

  /// Environment ids ever observed, ascending.
  std::vector<int> EnvIds() const;

  const ObservationWindowConfig& config() const { return config_; }

 private:
  struct EnvWindow {
    std::vector<double> qerrors;  ///< ring storage, capacity-bounded
    size_t next = 0;              ///< ring write cursor
    uint64_t total = 0;           ///< cumulative observations for this env
  };

  /// One labeled-ring slot: the rescaled clone plus what PlanSample needs.
  struct LabeledEntry {
    std::shared_ptr<const PlanNode> plan;
    int env_id = 0;
    double label_ms = 0.0;
  };

  const ObservationWindowConfig config_;
  mutable Mutex mu_{lock_rank::kObservationSink};
  /// Ordered map so every iteration (EnvIds, debugging dumps) is
  /// deterministic in env id.
  std::map<int, EnvWindow> windows_ QCFE_GUARDED_BY(mu_);
  std::vector<LabeledEntry> labels_ QCFE_GUARDED_BY(mu_);
  size_t label_next_ QCFE_GUARDED_BY(mu_) = 0;
  uint64_t label_total_ QCFE_GUARDED_BY(mu_) = 0;
};

}  // namespace adapt
}  // namespace qcfe

#endif  // QCFE_ADAPT_OBSERVATION_SINK_H_
