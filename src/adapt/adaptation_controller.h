#ifndef QCFE_ADAPT_ADAPTATION_CONTROLLER_H_
#define QCFE_ADAPT_ADAPTATION_CONTROLLER_H_

/// \file adaptation_controller.h
/// The "react" stage of the online adaptation loop: observe -> drift-detect
/// -> retrain -> swap, closed into one background controller.
///
/// Wiring (see examples/online_adaptation.cpp for the full picture):
///
///   AsyncServer::ReportObserved --> AdaptationController (listener)
///       -> ObservationSink (q-error windows + labeled retrain buffer)
///       -> DriftDetector (every evaluate_every observations per env)
///       -> on trip: background worker runs one adaptation cycle:
///            Pipeline::Retrain (warm-start, chunk-parallel, deterministic)
///            Pipeline::Save    (atomic, through the Fs seam)
///            LoadAndSwap       (bit-parity probe, then RCU publish)
///
/// Failure containment: a cycle that fails at any stage — too few buffered
/// samples, retrain error, save error, load/validation/probe rejection —
/// bumps exactly one typed counter and leaves the published serving model
/// untouched (LoadAndSwap is all-or-nothing; Save is atomic-rename). The
/// loop simply tries again on the next trip.
///
/// Threading: the trainer pipeline is mutated only by the controller's
/// single worker thread (or RunCycleNow), so it must be a dedicated,
/// never-published pipeline — the serving side only ever sees the fresh
/// generations LoadAndSwap loads from the artifact. Everything the
/// controller waits on is a plain condition variable, and all scheduling is
/// sample-count based, so tests drive the whole loop with zero sleeps and
/// no clock at all.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "adapt/drift_detector.h"
#include "adapt/observation_sink.h"
#include "core/pipeline.h"
#include "serve/async_server.h"
#include "serve/model_swap.h"
#include "util/status.h"
#include "util/sync.h"

namespace qcfe {

class Fs;

namespace adapt {

/// Knobs for one adaptation loop.
struct AdaptationConfig {
  /// Observation window/buffer capacities (ObservationSink).
  ObservationWindowConfig window;
  /// Default drift thresholds; per-env overrides go through detector().
  DriftConfig drift;
  /// Warm-start retraining budget for each adaptation cycle
  /// (TrainConfig::chunk_size keeps it bit-deterministic at any thread
  /// count).
  TrainConfig retrain;
  /// Evaluate drift every Nth observation of an environment (sample-count
  /// epochs — no wall clock).
  size_t evaluate_every = 16;
  /// A cycle refuses to retrain on fewer buffered labeled samples.
  size_t min_retrain_samples = 32;
  /// Where each cycle Save()s the retrained pipeline and LoadAndSwap loads
  /// it from. Required.
  std::string artifact_path;
  /// Bit-parity probe size for LoadAndSwap: the first N buffered samples
  /// are predicted by the trainer and must match the loaded candidate
  /// bit-exactly before it is published.
  size_t probe_size = 8;
  /// Optional hook invoked after each successful publish with the newly
  /// published pipeline and its version — runs on the cycle's thread with
  /// no controller lock held.
  std::function<void(const std::shared_ptr<const Pipeline>&, uint64_t)>
      on_publish;
};

/// Typed counters for the loop; every cycle outcome bumps exactly one of
/// the cycles_skipped/retrain_failures/save_failures/swaps_rejected/
/// swaps_published family.
struct AdaptationStats {
  uint64_t observations = 0;       ///< tuples fed through OnObservation
  uint64_t windows_evaluated = 0;  ///< drift evaluations run
  uint64_t drift_trips = 0;        ///< evaluations that said "drifted"
  uint64_t cycles_started = 0;     ///< adaptation cycles entered
  uint64_t cycles_skipped = 0;     ///< refused: too few samples / bad config
  uint64_t retrain_failures = 0;   ///< Pipeline::Retrain failed
  uint64_t save_failures = 0;      ///< Pipeline::Save failed (old artifact kept)
  uint64_t swaps_rejected = 0;     ///< LoadAndSwap rejected (old model serving)
  uint64_t swaps_published = 0;    ///< new model versions published
  uint64_t model_version = 0;      ///< version of the last publish
};

/// Closes the adaptation loop around a trainer pipeline and a publication
/// point; see the file comment. Implements ObservationListener so it plugs
/// straight into AsyncServer::set_observation_listener. Thread-safe; lock
/// rank lock_rank::kAdaptController (never held across retrain/save/swap).
class AdaptationController : public ObservationListener {
 public:
  /// `trainer` is the mutable pipeline cycles retrain — dedicated to this
  /// controller, never published. `target` is the serving publication
  /// point. `server` (optional) receives swap accounting in its
  /// AsyncServeStats; `fs` (optional) is the I/O seam for Save/Load (null =
  /// real file system). All pointers are borrowed and must outlive the
  /// controller. The detector's baselines start from
  /// trainer->env_baseline_qerror().
  AdaptationController(Pipeline* trainer, SwappableModel* target,
                       const AdaptationConfig& config,
                       AsyncServer* server = nullptr, Fs* fs = nullptr);
  /// Stops the worker (pending trips are dropped).
  ~AdaptationController() override;

  AdaptationController(const AdaptationController&) = delete;
  AdaptationController& operator=(const AdaptationController&) = delete;

  /// Feeds the sink; every evaluate_every-th observation of an environment
  /// also runs drift detection and, on a trip, wakes the background worker
  /// (trips during a pending cycle coalesce into it).
  void OnObservation(const PlanNode& plan, int env_id, double predicted_ms,
                     double actual_ms) override;

  /// Runs one full adaptation cycle synchronously on the calling thread
  /// (waits for any background cycle first). The deterministic entry point
  /// for tests and for operators forcing a retrain.
  Status RunCycleNow();

  /// Blocks until no cycle is pending or running. Pure condition-variable
  /// wait — no sleeps, no clock.
  void WaitForIdle();

  /// Stops the background worker and joins it; idempotent, but must not be
  /// called concurrently with itself. OnObservation keeps accumulating
  /// afterwards; trips no longer start cycles (RunCycleNow still works).
  void Stop();

  AdaptationStats stats() const;
  /// Status of the most recently finished cycle (OK before any cycle ran).
  Status last_cycle_status() const;

  ObservationSink* sink() { return &sink_; }
  DriftDetector* detector() { return &detector_; }
  const AdaptationConfig& config() const { return config_; }

 private:
  void WorkerLoop();
  /// One retrain -> save -> swap cycle. Runs with no controller lock held;
  /// records its outcome in the typed counters.
  Status RunCycle();

  Pipeline* const trainer_;
  SwappableModel* const target_;
  AsyncServer* const server_;
  Fs* const fs_;
  const AdaptationConfig config_;
  ObservationSink sink_;
  DriftDetector detector_;

  mutable Mutex mu_{lock_rank::kAdaptController};
  CondVar cv_;
  bool stop_ QCFE_GUARDED_BY(mu_) = false;
  bool cycle_pending_ QCFE_GUARDED_BY(mu_) = false;
  bool cycle_running_ QCFE_GUARDED_BY(mu_) = false;
  AdaptationStats stats_ QCFE_GUARDED_BY(mu_);
  Status last_cycle_status_ QCFE_GUARDED_BY(mu_);

  std::thread worker_;
};

}  // namespace adapt
}  // namespace qcfe

#endif  // QCFE_ADAPT_ADAPTATION_CONTROLLER_H_
