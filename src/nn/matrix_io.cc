#include "nn/matrix_io.h"

#include <string>

namespace qcfe {

void WriteMatrix(const Matrix& m, ByteWriter* w) {
  w->PutU32(static_cast<uint32_t>(m.rows()));
  w->PutU32(static_cast<uint32_t>(m.cols()));
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.RowPtr(r);
    for (size_t c = 0; c < m.cols(); ++c) w->PutF64(row[c]);
  }
}

Status ReadMatrixInto(ByteReader* r, Matrix* m) {
  uint32_t rows = 0;
  uint32_t cols = 0;
  QCFE_RETURN_IF_ERROR(r->ReadU32(&rows));
  QCFE_RETURN_IF_ERROR(r->ReadU32(&cols));
  if (rows != m->rows() || cols != m->cols()) {
    return Status::FailedPrecondition(
        "matrix shape mismatch: saved " + std::to_string(rows) + "x" +
        std::to_string(cols) + ", expected " + std::to_string(m->rows()) +
        "x" + std::to_string(m->cols()));
  }
  // Bulk bounds check up front so a truncated payload fails before any
  // element is overwritten (loads are all-or-nothing per matrix).
  const uint64_t need = static_cast<uint64_t>(rows) * cols * sizeof(double);
  if (need > r->remaining()) {
    return Status::DataLoss("matrix payload needs " + std::to_string(need) +
                            " bytes, have " + std::to_string(r->remaining()) +
                            " at offset " + std::to_string(r->offset()));
  }
  for (size_t row = 0; row < m->rows(); ++row) {
    double* dst = m->RowPtr(row);
    for (size_t c = 0; c < m->cols(); ++c) {
      QCFE_RETURN_IF_ERROR(r->ReadF64(&dst[c]));
    }
  }
  return Status::OK();
}

void WriteDoubles(const std::vector<double>& v, ByteWriter* w) {
  w->PutU64(v.size());
  for (double x : v) w->PutF64(x);
}

Status ReadDoubles(ByteReader* r, std::vector<double>* v) {
  uint64_t count = 0;
  QCFE_RETURN_IF_ERROR(r->ReadCount(&count, sizeof(double)));
  v->resize(static_cast<size_t>(count));
  for (double& x : *v) QCFE_RETURN_IF_ERROR(r->ReadF64(&x));
  return Status::OK();
}

}  // namespace qcfe
