#include "nn/mlp.h"

#include <iomanip>
#include <istream>
#include <ostream>

#include "nn/kernels.h"
#include "nn/matrix_io.h"
#include "nn/optimizer.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace qcfe {

namespace {
std::unique_ptr<Layer> MakeActivation(Activation act) {
  switch (act) {
    case Activation::kRelu:
      return std::make_unique<ReluLayer>();
    case Activation::kSigmoid:
      return std::make_unique<SigmoidLayer>();
    case Activation::kTanh:
      return std::make_unique<TanhLayer>();
  }
  return std::make_unique<ReluLayer>();
}
}  // namespace

Mlp::Mlp(const std::vector<size_t>& layer_dims, Activation act, Rng* rng)
    : act_(act) {
  if (layer_dims.size() < 2) return;
  in_dim_ = layer_dims.front();
  out_dim_ = layer_dims.back();
  for (size_t i = 0; i + 1 < layer_dims.size(); ++i) {
    layers_.push_back(
        std::make_unique<LinearLayer>(layer_dims[i], layer_dims[i + 1], rng));
    bool is_last = (i + 2 == layer_dims.size());
    if (!is_last) layers_.push_back(MakeActivation(act));
  }
}

const Matrix& Mlp::Forward(const Matrix& input, Tape* tape) const {
  QCFE_CHECK(tape != nullptr, "Mlp::Forward requires a caller-owned tape");
  QCFE_CHECK(layers_.empty() || in_dim_ == 0 || input.cols() == in_dim_,
             "Mlp::Forward input width does not match the network's in_dim");
  if (kernels::GetKernelMode() == kernels::KernelMode::kReference) {
    // Historical replay for before/after benchmarks: fresh activation
    // matrices every call (same values, allocator included).
    tape->activations.clear();
    tape->activations.reserve(layers_.size() + 1);
    Matrix x = input;
    for (const auto& layer : layers_) {
      tape->activations.push_back(std::move(x));
      x = layer->Forward(tape->activations.back());
    }
    tape->activations.push_back(std::move(x));
    return tape->activations.back();
  }
  // Reuse the tape's activation matrices across calls (reshaped in place),
  // so a steady-shape training loop never allocates on the forward pass.
  auto& acts = tape->activations;
  if (acts.size() != layers_.size() + 1) acts.resize(layers_.size() + 1);
  acts[0] = input;
  for (size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->ForwardInto(acts[i], &acts[i + 1]);
  }
  return acts.back();
}

Matrix Mlp::Predict(const Matrix& input) const {
  Matrix x = input;
  for (const auto& layer : layers_) x = layer->Forward(x);
  return x;
}

const Matrix& Mlp::Predict(const Matrix& input, Scratch* scratch) const {
  if (layers_.empty()) {
    scratch->ping = input;
    return scratch->ping;
  }
  const Matrix* src = &input;
  Matrix* dst = &scratch->ping;
  const bool fuse =
      kernels::GetKernelMode() != kernels::KernelMode::kReference;
  size_t i = 0;
  while (i < layers_.size()) {
    const Layer& layer = *layers_[i];
    // Serving never needs the pre-activation, so a Linear feeding a ReLU
    // collapses into one fused kernel: the ReLU applies while the output
    // panel is still in registers and one whole intermediate write+read
    // pass disappears.
    if (fuse && layer.kind() == LayerKind::kLinear &&
        i + 1 < layers_.size() &&
        layers_[i + 1]->kind() == LayerKind::kRelu) {
      static_cast<const LinearLayer&>(layer).ForwardReluInto(*src, dst);
      i += 2;
    } else {
      layer.ForwardInto(*src, dst);
      ++i;
    }
    src = dst;
    dst = (dst == &scratch->ping) ? &scratch->pong : &scratch->ping;
  }
  return *src;
}

const Matrix& Mlp::Backward(const Matrix& grad_output, Tape* tape,
                            GradSink* sink) const {
  // Tape-reuse contract: Backward consumes the activation record of a
  // Forward() on this same network. A stale or foreign tape would read
  // mismatched activations and silently corrupt every gradient.
  QCFE_CHECK(tape != nullptr &&
                 tape->activations.size() == layers_.size() + 1,
             "Mlp::Backward tape does not match a Forward() on this network");
  QCFE_DCHECK(grad_output.rows() == tape->activations.back().rows() &&
                  grad_output.cols() == tape->activations.back().cols(),
              "Mlp::Backward gradient shape does not match the taped output");
  // Sink slots are laid out in Grads() order (layer by layer); walk layers
  // in reverse while keeping the running offset past the current layer.
  size_t offset = sink == nullptr ? 0 : sink->size();
  Matrix* const* slots = sink == nullptr ? nullptr : sink->slots();
  if (kernels::GetKernelMode() == kernels::KernelMode::kReference) {
    // Historical replay: one freshly allocated gradient matrix per layer.
    Matrix g = grad_output;
    for (size_t i = layers_.size(); i > 0; --i) {
      const Layer& layer = *layers_[i - 1];
      Matrix* const* param_grads = nullptr;
      if (sink != nullptr) {
        offset -= layer.num_param_grads();
        if (layer.num_param_grads() > 0) param_grads = slots + offset;
      }
      g = layer.Backward(g, tape->activations[i - 1], tape->activations[i],
                         param_grads);
    }
    tape->grad_ping = std::move(g);
    return tape->grad_ping;
  }
  // The running gradient lives in the tape's ping-pong scratch: elementwise
  // layers mask it in place, linear layers write the opposite buffer.
  // Values are identical to the allocating walk — only the storage moved.
  Matrix* cur = nullptr;  // null: still reading the caller's grad_output
  for (size_t i = layers_.size(); i > 0; --i) {
    const Layer& layer = *layers_[i - 1];
    Matrix* const* param_grads = nullptr;
    if (sink != nullptr) {
      offset -= layer.num_param_grads();
      if (layer.num_param_grads() > 0) param_grads = slots + offset;
    }
    const Matrix& src = cur == nullptr ? grad_output : *cur;
    if (layer.kind() == LayerKind::kLinear) {
      Matrix* dst =
          (cur == &tape->grad_ping) ? &tape->grad_pong : &tape->grad_ping;
      layer.BackwardInto(src, tape->activations[i - 1], tape->activations[i],
                         param_grads, dst);
      cur = dst;
    } else if (cur == nullptr) {
      layer.BackwardInto(src, tape->activations[i - 1], tape->activations[i],
                         param_grads, &tape->grad_ping);
      cur = &tape->grad_ping;
    } else {
      layer.BackwardInto(src, tape->activations[i - 1], tape->activations[i],
                         param_grads, cur);
    }
  }
  if (cur == nullptr) {
    tape->grad_ping = grad_output;
    cur = &tape->grad_ping;
  }
  return *cur;
}

Matrix Mlp::InputGradient(const Matrix& input) const {
  Tape tape;
  return InputGradient(input, &tape);
}

Matrix Mlp::InputGradient(const Matrix& input, Tape* tape) const {
  const Matrix& out = Forward(input, tape);
  tape->seed.ResetShape(out.rows(), out.cols());
  for (size_t r = 0; r < tape->seed.rows(); ++r) tape->seed.At(r, 0) = 1.0;
  return Backward(tape->seed, tape, /*sink=*/nullptr);
}

void Mlp::ZeroGrad() {
  for (auto& layer : layers_) layer->ZeroGrad();
}

std::vector<Matrix*> Mlp::Params() {
  std::vector<Matrix*> out;
  for (auto& layer : layers_) {
    for (Matrix* p : layer->Params()) out.push_back(p);
  }
  return out;
}

std::vector<Matrix*> Mlp::Grads() {
  std::vector<Matrix*> out;
  for (auto& layer : layers_) {
    for (Matrix* g : layer->Grads()) out.push_back(g);
  }
  return out;
}

Status Mlp::Save(std::ostream& os) const {
  os << std::setprecision(17);
  os << "mlp " << in_dim_ << " " << out_dim_ << " "
     << static_cast<int>(act_) << " " << layers_.size() << "\n";
  for (const auto& layer : layers_) {
    os << static_cast<int>(layer->kind());
    if (layer->kind() == LayerKind::kLinear) {
      const auto* lin = static_cast<const LinearLayer*>(layer.get());
      os << " " << lin->in_dim() << " " << lin->out_dim() << "\n";
      // Logical elements only, row by row: the serialized format is exactly
      // rows*cols values, independent of the padded storage layout.
      const Matrix& w = lin->weights();
      for (size_t r = 0; r < w.rows(); ++r) {
        const double* row = w.RowPtr(r);
        for (size_t c = 0; c < w.cols(); ++c) os << row[c] << " ";
      }
      os << "\n";
      const Matrix& b = lin->bias();
      for (size_t r = 0; r < b.rows(); ++r) {
        const double* row = b.RowPtr(r);
        for (size_t c = 0; c < b.cols(); ++c) os << row[c] << " ";
      }
    }
    os << "\n";
  }
  if (!os.good()) return Status::Internal("stream write failed");
  return Status::OK();
}

Status Mlp::Load(std::istream& is) {
  std::string magic;
  size_t n_layers = 0;
  int act = 0;
  is >> magic >> in_dim_ >> out_dim_ >> act >> n_layers;
  if (magic != "mlp" || !is.good()) {
    return Status::ParseError("bad mlp header");
  }
  act_ = static_cast<Activation>(act);
  layers_.clear();
  Rng dummy(0);
  for (size_t i = 0; i < n_layers; ++i) {
    int kind = 0;
    is >> kind;
    switch (static_cast<LayerKind>(kind)) {
      case LayerKind::kLinear: {
        size_t in = 0, out = 0;
        is >> in >> out;
        auto lin = std::make_unique<LinearLayer>(in, out, &dummy);
        // Mirror of Save: read exactly rows*cols logical values per matrix,
        // leaving the storage pad columns untouched (zero).
        Matrix& w = lin->weights();
        for (size_t r = 0; r < w.rows(); ++r) {
          double* row = w.RowPtr(r);
          for (size_t c = 0; c < w.cols(); ++c) is >> row[c];
        }
        Matrix& b = lin->bias();
        for (size_t r = 0; r < b.rows(); ++r) {
          double* row = b.RowPtr(r);
          for (size_t c = 0; c < b.cols(); ++c) is >> row[c];
        }
        layers_.push_back(std::move(lin));
        break;
      }
      case LayerKind::kRelu:
        layers_.push_back(std::make_unique<ReluLayer>());
        break;
      case LayerKind::kSigmoid:
        layers_.push_back(std::make_unique<SigmoidLayer>());
        break;
      case LayerKind::kTanh:
        layers_.push_back(std::make_unique<TanhLayer>());
        break;
      default:
        return Status::ParseError("unknown layer kind");
    }
    if (!is.good() && !is.eof()) return Status::ParseError("truncated mlp");
  }
  return Status::OK();
}

void Mlp::SaveBinary(ByteWriter* w) const {
  w->PutU32(static_cast<uint32_t>(in_dim_));
  w->PutU32(static_cast<uint32_t>(out_dim_));
  w->PutU8(static_cast<uint8_t>(act_));
  w->PutU32(static_cast<uint32_t>(layers_.size()));
  for (const auto& layer : layers_) {
    w->PutU8(static_cast<uint8_t>(layer->kind()));
    if (layer->kind() == LayerKind::kLinear) {
      const auto* lin = static_cast<const LinearLayer*>(layer.get());
      WriteMatrix(lin->weights(), w);
      WriteMatrix(lin->bias(), w);
    }
  }
}

Status Mlp::LoadBinary(ByteReader* r) {
  uint32_t in = 0, out = 0, n_layers = 0;
  uint8_t act = 0;
  QCFE_RETURN_IF_ERROR(r->ReadU32(&in));
  QCFE_RETURN_IF_ERROR(r->ReadU32(&out));
  QCFE_RETURN_IF_ERROR(r->ReadU8(&act));
  QCFE_RETURN_IF_ERROR(r->ReadU32(&n_layers));
  if (in != in_dim_ || out != out_dim_ ||
      act != static_cast<uint8_t>(act_) || n_layers != layers_.size()) {
    return Status::FailedPrecondition(
        "mlp architecture mismatch: saved " + std::to_string(in) + "->" +
        std::to_string(out) + " (" + std::to_string(n_layers) +
        " layers), this network is " + std::to_string(in_dim_) + "->" +
        std::to_string(out_dim_) + " (" + std::to_string(layers_.size()) +
        " layers)");
  }
  for (size_t i = 0; i < layers_.size(); ++i) {
    uint8_t kind = 0;
    QCFE_RETURN_IF_ERROR(r->ReadU8(&kind));
    if (kind != static_cast<uint8_t>(layers_[i]->kind())) {
      return Status::FailedPrecondition(
          "mlp layer " + std::to_string(i) + " kind mismatch: saved kind " +
          std::to_string(kind) + ", this network has kind " +
          std::to_string(static_cast<int>(layers_[i]->kind())));
    }
    if (layers_[i]->kind() == LayerKind::kLinear) {
      auto* lin = static_cast<LinearLayer*>(layers_[i].get());
      QCFE_RETURN_IF_ERROR(
          ReadMatrixInto(r, &lin->weights())
              .WithContext("layer " + std::to_string(i) + " weights"));
      QCFE_RETURN_IF_ERROR(
          ReadMatrixInto(r, &lin->bias())
              .WithContext("layer " + std::to_string(i) + " bias"));
    }
  }
  return Status::OK();
}

std::unique_ptr<Layer> Mlp::CloneLayer(const Layer& layer) {
  Rng dummy(0);
  switch (layer.kind()) {
    case LayerKind::kLinear: {
      const auto& lin = static_cast<const LinearLayer&>(layer);
      auto nl =
          std::make_unique<LinearLayer>(lin.in_dim(), lin.out_dim(), &dummy);
      nl->weights() = lin.weights();
      nl->bias() = lin.bias();
      return nl;
    }
    case LayerKind::kRelu:
      return std::make_unique<ReluLayer>();
    case LayerKind::kSigmoid:
      return std::make_unique<SigmoidLayer>();
    case LayerKind::kTanh:
      return std::make_unique<TanhLayer>();
  }
  return std::make_unique<ReluLayer>();
}

std::unique_ptr<LinearLayer> Mlp::MakeZeroLinear(size_t in, size_t out) {
  Rng dummy(0);
  auto layer = std::make_unique<LinearLayer>(in, out, &dummy);
  layer->weights().Fill(0.0);
  layer->bias().Fill(0.0);
  return layer;
}

void Mlp::AppendLayer(std::unique_ptr<Layer> layer) {
  if (layer->kind() == LayerKind::kLinear) {
    const auto* lin = static_cast<const LinearLayer*>(layer.get());
    if (layers_.empty()) in_dim_ = lin->in_dim();
    out_dim_ = lin->out_dim();
  } else if (layers_.empty()) {
    in_dim_ = 0;
  }
  layers_.push_back(std::move(layer));
}

Mlp Mlp::Clone() const {
  Mlp copy;
  copy.in_dim_ = in_dim_;
  copy.out_dim_ = out_dim_;
  copy.act_ = act_;
  for (const auto& layer : layers_) {
    copy.layers_.push_back(CloneLayer(*layer));
  }
  return copy;
}

Status Mlp::ShrinkInputs(const std::vector<size_t>& kept_columns) {
  if (layers_.empty() || layers_[0]->kind() != LayerKind::kLinear) {
    return Status::FailedPrecondition("first layer is not linear");
  }
  auto* lin = static_cast<LinearLayer*>(layers_[0].get());
  for (size_t c : kept_columns) {
    if (c >= lin->in_dim()) return Status::OutOfRange("kept column out of range");
  }
  Rng dummy(0);
  auto shrunk = std::make_unique<LinearLayer>(kept_columns.size(),
                                              lin->out_dim(), &dummy);
  // Keep the trained rows of W for surviving inputs (W is in_dim x out_dim).
  for (size_t i = 0; i < kept_columns.size(); ++i) {
    for (size_t j = 0; j < lin->out_dim(); ++j) {
      shrunk->weights().At(i, j) = lin->weights().At(kept_columns[i], j);
    }
  }
  shrunk->bias() = lin->bias();
  layers_[0] = std::move(shrunk);
  in_dim_ = kept_columns.size();
  return Status::OK();
}

}  // namespace qcfe
