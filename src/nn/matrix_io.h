#ifndef QCFE_NN_MATRIX_IO_H_
#define QCFE_NN_MATRIX_IO_H_

/// \file matrix_io.h
/// Binary (de)serialization of Matrix for the artifact layer
/// (core/artifact.h). The wire format is logical: u32 rows, u32 cols, then
/// rows*cols doubles in row-major order as raw bit patterns — the padded
/// leading dimension (matrix.h) is a memory-layout detail and never hits
/// disk, so artifacts are stable even if the SIMD padding contract changes.

#include "nn/matrix.h"
#include "util/serialize.h"
#include "util/status.h"

namespace qcfe {

/// Appends `m` to `w` (u32 rows, u32 cols, rows*cols F64 values).
void WriteMatrix(const Matrix& m, ByteWriter* w);

/// Reads a matrix written by WriteMatrix into `m`, which must already have
/// the expected shape — weights are restored *in place* so pointers bound at
/// construction (optimizer slots, tape views) stay valid. A shape mismatch
/// is kFailedPrecondition (well-formed bytes for a different architecture);
/// truncation is kDataLoss from the underlying reader.
Status ReadMatrixInto(ByteReader* r, Matrix* m);

/// Writes a vector<double> as u64 count + F64 values.
void WriteDoubles(const std::vector<double>& v, ByteWriter* w);

/// Reads a vector written by WriteDoubles (count validated against the
/// remaining bytes before allocation).
Status ReadDoubles(ByteReader* r, std::vector<double>* v);

}  // namespace qcfe

#endif  // QCFE_NN_MATRIX_IO_H_
