#ifndef QCFE_NN_KERNELS_H_
#define QCFE_NN_KERNELS_H_

/// \file kernels.h
/// The dedicated NN kernel layer: every forward/backward matrix product in
/// the training and serving hot paths routes through these entry points.
///
/// Two implementations back each product:
///
///  * a register-blocked dense kernel (kMr x kNr output panel held in
///    registers, streaming over the contraction dimension), and
///  * the historical sparse row-skip loop (i-k-j order, skipping zero
///    left-operand entries), which wins when inputs are mostly zeros —
///    plan feature rows are ~90% zeros while hidden activations are dense.
///
/// Dispatch between them is density-adaptive (a deterministic strided
/// sample of the left operand) and never changes results:
///
/// Determinism contract. Every kernel accumulates each output element's
/// contraction terms in ascending-k order into a single accumulator seeded
/// with +0.0. Skipping an exactly-zero product term cannot change the
/// accumulator bits (x + ±0.0 == x for every x a zero-seeded ascending sum
/// can reach), so the dense path (which includes zero terms) and the sparse
/// path (which skips them) are bit-identical for finite inputs, at any
/// shape, batch size and dispatch decision. The `*Accumulate` forms compute
/// the full contraction in registers first and add it to the destination
/// with one store, reproducing the historical "materialise a temporary,
/// then Add()" arithmetic without the temporary. Fused epilogues (bias add,
/// ReLU, ReLU masking) apply exactly the per-element operations the
/// historical separate passes applied, in the same order.
///
/// KernelMode exists for parity tests and before/after benchmarking:
/// kReference replays the exact pre-kernel-layer code paths (including
/// their temporary allocations), so "reference vs auto" measures this
/// layer's end-to-end win while tests assert the results stay bit-equal.

#include <cstddef>

#include "nn/matrix.h"

namespace qcfe {
namespace kernels {

/// Process-wide dispatch override. kAuto is the production setting;
/// kReference replays the historical unblocked loops (and temporary
/// allocations) for parity tests and before/after benchmarks; kDense and
/// kSparse pin one dispatch path so tests can cover both on any input.
enum class KernelMode {
  kAuto,
  kReference,
  kDense,
  kSparse,
};

/// Sets/reads the process-wide kernel mode (atomic; safe to flip between
/// parallel regions, not during one).
void SetKernelMode(KernelMode mode);
KernelMode GetKernelMode();

/// RAII mode pin for tests and benchmarks.
class ScopedKernelMode {
 public:
  explicit ScopedKernelMode(KernelMode mode) : saved_(GetKernelMode()) {
    SetKernelMode(mode);
  }
  ~ScopedKernelMode() { SetKernelMode(saved_); }
  ScopedKernelMode(const ScopedKernelMode&) = delete;
  ScopedKernelMode& operator=(const ScopedKernelMode&) = delete;

 private:
  KernelMode saved_;
};

/// Fraction of exactly-zero entries in a deterministic strided sample of
/// `m` (a few hundred probes — see kMaxProbes in kernels.cc). Exposed for
/// tests; the dispatch heuristic.
double ZeroFraction(const Matrix& m);

/// Zero-fraction threshold above which dispatch prefers the sparse
/// row-skip path. The row-skip's saving scales linearly with the zero
/// fraction while the blocked panel's register-reuse win on fully dense
/// inputs is bounded (~1.5x measured), so the crossover sits well below
/// half: plan-feature and one-hot set inputs (>=50% zeros) go sparse,
/// standardized activations (exactly 0% zeros) go dense, and mildly padded
/// inputs like wave-batched unit rows (~25% zeros) still favour the skip.
constexpr double kSparseDispatchThreshold = 0.2;

// ------------------------------------------------------------- products
// All Into-forms reshape `out` reusing its allocation; `out` must not alias
// an input. Accumulate-forms require `acc` pre-shaped to the result shape.

/// out = a * b. (m x k) * (k x n) -> (m x n).
void GemmNN(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a * b + bias (1 x n row broadcast): the fused linear-layer
/// forward epilogue.
void GemmNNBias(const Matrix& a, const Matrix& b, const Matrix& bias,
                Matrix* out);

/// out = relu(a * b + bias): fused linear+ReLU forward for serving, where
/// the pre-activation never needs to be materialised.
void GemmNNBiasRelu(const Matrix& a, const Matrix& b, const Matrix& bias,
                    Matrix* out);

/// out = a * b^T. (m x k) * (n x k) -> (m x n). The dX = dY * W^T backward
/// product, without materialising the transpose.
void GemmBT(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a^T * b. (k x m) * (k x n) -> (m x n).
void GemmAT(const Matrix& a, const Matrix& b, Matrix* out);

/// acc += a^T * b with each output element's contraction summed in a
/// register before the single add: the dW += X^T * dY backward product,
/// bit-identical to `acc->Add(MatMulAT(a, b))` without the temporary.
void GemmATAccumulate(const Matrix& a, const Matrix& b, Matrix* acc);

/// acc (1 x n) += column sums of a: the db += colsum(dY) backward product,
/// bit-identical to `acc->Add(a.ColSum())` without the temporary.
void ColSumAccumulate(const Matrix& a, Matrix* acc);

// ------------------------------------------------------------ epilogues

/// out = relu(in), elementwise; `out` may alias `in`.
void ReluForward(const Matrix& in, Matrix* out);

/// grad_in = grad_out with entries zeroed where pre_activation <= 0: the
/// fused ReLU-mask backward. `grad_in` may alias `grad_out` (the in-place
/// form the tape-scratch backward uses).
void ReluMaskBackward(const Matrix& grad_out, const Matrix& pre_activation,
                      Matrix* grad_in);

// ------------------------------------------------------------- reference
// The historical unblocked loops, self-contained (no dispatch). Parity
// tests compare every blocked/sparse kernel against these bit for bit.
namespace reference {
void GemmNN(const Matrix& a, const Matrix& b, Matrix* out);
void GemmNNBias(const Matrix& a, const Matrix& b, const Matrix& bias,
                Matrix* out);
void GemmNNBiasRelu(const Matrix& a, const Matrix& b, const Matrix& bias,
                    Matrix* out);
void GemmBT(const Matrix& a, const Matrix& b, Matrix* out);
void GemmAT(const Matrix& a, const Matrix& b, Matrix* out);
void GemmATAccumulate(const Matrix& a, const Matrix& b, Matrix* acc);
void ColSumAccumulate(const Matrix& a, Matrix* acc);
}  // namespace reference

}  // namespace kernels
}  // namespace qcfe

#endif  // QCFE_NN_KERNELS_H_
