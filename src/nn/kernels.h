#ifndef QCFE_NN_KERNELS_H_
#define QCFE_NN_KERNELS_H_

/// \file kernels.h
/// The dedicated NN kernel layer: every forward/backward matrix product in
/// the training and serving hot paths routes through these entry points.
///
/// Two axes select an implementation:
///
///  * **KernelMode** (dispatch path): register-blocked dense panels vs the
///    historical sparse row-skip loops, chosen density-adaptively under
///    kAuto; kReference replays the exact pre-kernel-layer code paths.
///  * **KernelIsa** (instruction tier): the bit-exact scalar tier, the
///    AVX2+FMA tier, or the AArch64 NEON tier, selected once per process by
///    runtime CPU detection (overridable via QCFE_KERNEL_ISA).
///
/// Determinism contract. Within one ISA tier, every kernel accumulates each
/// output element's contraction terms in ascending-k order into a single
/// accumulator seeded with +0.0 (a fused-multiply-add chain on the SIMD
/// tiers, a plain multiply-add chain on the scalar tier). Skipping an
/// exactly-zero product term cannot change the accumulator bits, so the
/// dense path (which includes zero terms) and the sparse path (which skips
/// them) are bit-identical for finite inputs, at any shape, batch size and
/// dispatch decision — *within a tier*. The `*Accumulate` forms compute the
/// full contraction first and add it to the destination with one unfused
/// store. Across tiers, FMA's single rounding makes contraction results
/// differ from the scalar tier by a bounded relative error (gated at
/// kSimdRelTolerance by the parity machinery in tests/kernels_test.cc and
/// `bench_micro --smoke`); ColSumAccumulate, AdamStep and SgdStep use no
/// FMA and no reductions, so they are bit-identical across every tier.
///
/// Autotuning. The dispatch thresholds (dense-vs-streaming row crossover,
/// sparse-vs-dense zero-fraction crossover) are measured once per process
/// by a lazy startup micro-probe over real layer shapes (see Autotune()),
/// falling back to compiled defaults when QCFE_KERNEL_AUTOTUNE=0. Because
/// dispatch is bit-safe within a tier, a different tuning never changes
/// results — only speed.
///
/// KernelMode::kReference exists for parity tests and before/after
/// benchmarking: it replays the exact pre-kernel-layer code paths
/// (including their temporary allocations), so "reference vs auto"
/// measures this layer's end-to-end win while tests assert the results
/// stay bit-equal (under the scalar tier) or within tolerance (SIMD).

#include <cstddef>
#include <vector>

#include "nn/matrix.h"

namespace qcfe {
namespace kernels {

/// Process-wide dispatch override. kAuto is the production setting;
/// kReference replays the historical unblocked loops (and temporary
/// allocations) for parity tests and before/after benchmarks; kDense and
/// kSparse pin one dispatch path so tests can cover both on any input.
enum class KernelMode {
  kAuto,
  kReference,
  kDense,
  kSparse,
};

/// Sets/reads the process-wide kernel mode (atomic; safe to flip between
/// parallel regions, not during one).
void SetKernelMode(KernelMode mode);
KernelMode GetKernelMode();

/// RAII mode pin for tests and benchmarks.
class ScopedKernelMode {
 public:
  explicit ScopedKernelMode(KernelMode mode) : saved_(GetKernelMode()) {
    SetKernelMode(mode);
  }
  ~ScopedKernelMode() { SetKernelMode(saved_); }
  ScopedKernelMode(const ScopedKernelMode&) = delete;
  ScopedKernelMode& operator=(const ScopedKernelMode&) = delete;

 private:
  KernelMode saved_;
};

// ------------------------------------------------------------- ISA tiers

/// Instruction-set tier backing the kernel implementations. kScalar is the
/// bit-exact reference arithmetic, always available; the SIMD tiers are
/// available when both compiled in and supported by the running CPU.
enum class KernelIsa {
  kScalar,
  kAvx2,
  kNeon,
};

/// True when `isa` is both compiled into this binary and supported by the
/// running CPU (runtime detection: CPUID on x86, baseline on AArch64).
bool KernelIsaAvailable(KernelIsa isa);

/// The best available tier on this machine (kAvx2 > kNeon > kScalar).
KernelIsa DetectKernelIsa();

/// Sets/reads the process-wide kernel ISA tier (atomic; safe to flip
/// between parallel regions, not during one). Setting an unavailable tier
/// clamps to kScalar. The initial value honours QCFE_KERNEL_ISA
/// (scalar|avx2|neon|auto; unavailable pins clamp, auto = detection).
void SetKernelIsa(KernelIsa isa);
KernelIsa GetKernelIsa();

/// Lower-case tier name ("scalar", "avx2", "neon") for logs and JSON.
const char* KernelIsaName(KernelIsa isa);

/// RAII ISA pin for tests and benchmarks.
class ScopedKernelIsa {
 public:
  explicit ScopedKernelIsa(KernelIsa isa) : saved_(GetKernelIsa()) {
    SetKernelIsa(isa);
  }
  ~ScopedKernelIsa() { SetKernelIsa(saved_); }
  ScopedKernelIsa(const ScopedKernelIsa&) = delete;
  ScopedKernelIsa& operator=(const ScopedKernelIsa&) = delete;

 private:
  KernelIsa saved_;
};

/// Documented cross-tier tolerance: SIMD contraction kernels (FMA chains,
/// and GemmBT's lane-split reduction) may differ from the scalar tier by
/// this relative error per element. The parity gates in
/// tests/kernels_test.cc and `bench_micro --smoke` enforce it.
constexpr double kSimdRelTolerance = 1e-12;

// ------------------------------------------------------------ autotuning

/// The dispatch thresholds one ISA tier runs with. Published into
/// BENCH_parallel.json by bench_micro so tuned values are visible.
struct KernelTuning {
  KernelIsa isa = KernelIsa::kScalar;
  /// Minimum a.rows() before the kAuto NN dispatch considers the blocked
  /// dense kernel; below it the streaming row-skip loop wins. SIZE_MAX
  /// means the probe never saw the panel win (always stream by row count).
  size_t dense_min_rows = 0;
  /// Zero-fraction threshold at/above which kAuto dispatch prefers the
  /// sparse row-skip path. 0.0 = always sparse; > 1.0 = never sparse.
  double sparse_dispatch_threshold = 0.0;
  /// Probe-measured dense GemmNN speedup of this tier over the scalar tier
  /// on a real layer shape (scalar_ns / tier_ns); 1.0 for the scalar tier.
  double simd_gemm_speedup = 1.0;
  /// True when the thresholds came from the startup micro-probe; false for
  /// the compiled defaults (QCFE_KERNEL_AUTOTUNE=0, unavailable tier, or
  /// malformed probe data).
  bool autotuned = false;
};

/// Raw micro-probe timings feeding SelectTuning(). Exposed (and
/// injectable) so tests can assert threshold selection deterministically
/// without depending on wall-clock behaviour.
struct ProbeMeasurements {
  /// Row-count grid for the dense-vs-streaming NN crossover (ascending),
  /// with per-point best-of timings for each path on fully dense input.
  std::vector<size_t> rows;
  std::vector<double> sparse_ns;
  std::vector<double> dense_ns;
  /// Zero-fraction grid for the sparse-vs-dense crossover (ascending),
  /// with per-point timings at a fixed plan-feature-like shape.
  std::vector<double> zero_fractions;
  std::vector<double> sparse_zf_ns;
  std::vector<double> dense_zf_ns;
  /// Dense GemmNN on a real layer shape: scalar tier vs the probed tier.
  double scalar_gemm_ns = 0.0;
  double simd_gemm_ns = 0.0;
};

/// Runs the startup micro-probe for `isa` (which must be available):
/// times the tier's kernels directly over real layer shapes with
/// deterministic inputs. Timing noise only moves thresholds — dispatch is
/// bit-safe within a tier, so results never change.
ProbeMeasurements MeasureProbes(KernelIsa isa);

/// Pure threshold selection from probe data — deterministic and monotone
/// in the timings (unit-tested with injected measurements):
///  * dense_min_rows = the smallest grid row count from which the dense
///    panel wins for the entire remaining suffix (SIZE_MAX when none);
///  * sparse_dispatch_threshold = the midpoint between the last
///    dense-winning and first suffix-wide sparse-winning zero fraction
///    (0.0 when sparse wins everywhere, > 1.0 when nowhere);
///  * simd_gemm_speedup = scalar_gemm_ns / simd_gemm_ns.
/// Malformed measurements (empty/mismatched grids, non-positive timings)
/// yield the compiled defaults with autotuned=false.
KernelTuning SelectTuning(KernelIsa isa, const ProbeMeasurements& probes);

/// The active tier's tuning. Lazily runs the micro-probe for every
/// available tier on first use (honouring QCFE_KERNEL_AUTOTUNE=0, which
/// pins the compiled defaults); the result is fixed for the process.
const KernelTuning& Tuning();

/// Forces the lazy micro-probe to run now (e.g. before entering a timed
/// region). Idempotent.
void Autotune();

/// Fraction of exactly-zero entries in a deterministic strided sample of
/// `m`'s logical elements (a few hundred probes; the row padding is never
/// sampled). Exposed for tests; the dispatch heuristic.
double ZeroFraction(const Matrix& m);

/// Compiled-default zero-fraction threshold above which dispatch prefers
/// the sparse row-skip path (used verbatim when autotuning is disabled).
/// The row-skip's saving scales linearly with the zero fraction while the
/// blocked panel's register-reuse win on fully dense inputs is bounded, so
/// the crossover sits well below half: plan-feature and one-hot set inputs
/// (>=50% zeros) go sparse, standardized activations (exactly 0% zeros) go
/// dense, and mildly padded inputs like wave-batched unit rows (~25%
/// zeros) still favour the skip.
constexpr double kSparseDispatchThreshold = 0.2;

// ------------------------------------------------------------- products
// All Into-forms reshape `out` reusing its allocation; `out` must not alias
// an input. Accumulate-forms require `acc` pre-shaped to the result shape.

/// out = a * b. (m x k) * (k x n) -> (m x n).
void GemmNN(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a * b + bias (1 x n row broadcast): the fused linear-layer
/// forward epilogue.
void GemmNNBias(const Matrix& a, const Matrix& b, const Matrix& bias,
                Matrix* out);

/// out = relu(a * b + bias): fused linear+ReLU forward for serving, where
/// the pre-activation never needs to be materialised.
void GemmNNBiasRelu(const Matrix& a, const Matrix& b, const Matrix& bias,
                    Matrix* out);

/// out = a * b^T. (m x k) * (n x k) -> (m x n). The dX = dY * W^T backward
/// product, without materialising the transpose.
void GemmBT(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a^T * b. (k x m) * (k x n) -> (m x n).
void GemmAT(const Matrix& a, const Matrix& b, Matrix* out);

/// acc += a^T * b with each output element's contraction summed in a
/// register before the single add: the dW += X^T * dY backward product,
/// matching `acc->Add(MatMulAT(a, b))` without the temporary.
void GemmATAccumulate(const Matrix& a, const Matrix& b, Matrix* acc);

/// acc (1 x n) += column sums of a: the db += colsum(dY) backward product,
/// bit-identical to `acc->Add(a.ColSum())` without the temporary (in every
/// tier — column sums are vertical and never reduce across lanes).
void ColSumAccumulate(const Matrix& a, Matrix* acc);

// ------------------------------------------------------------ epilogues

/// out = relu(in), elementwise; `out` may alias `in`.
void ReluForward(const Matrix& in, Matrix* out);

/// grad_in = grad_out with entries zeroed where pre_activation <= 0: the
/// fused ReLU-mask backward. `grad_in` may alias `grad_out` (the in-place
/// form the tape-scratch backward uses).
void ReluMaskBackward(const Matrix& grad_out, const Matrix& pre_activation,
                      Matrix* grad_in);

// ------------------------------------------------------- optimizer steps

/// One Adam update of `p` (with first/second-moment state `m`/`v`) from
/// gradient `g`; bc1/bc2 are the precomputed bias corrections 1 - beta^t.
/// All four matrices must share one shape. Vectorized on the SIMD tiers
/// with single-rounding lane ops only, so the update is bit-identical
/// across every tier.
void AdamStep(Matrix* p, const Matrix& g, Matrix* m, Matrix* v, double lr,
              double beta1, double beta2, double eps, double bc1, double bc2);

/// One SGD+momentum update of `p` (velocity `v`) from gradient `g`.
/// Bit-identical across tiers for the same reason.
void SgdStep(Matrix* p, const Matrix& g, Matrix* v, double lr,
             double momentum);

// ------------------------------------------------------------------ simd
// Direct entry points into the active ISA tier's dense register-panel
// kernels: no KernelMode consultation, no density dispatch. Benchmarks and
// the per-tier parity gates use these to measure/validate one tier's
// vectorized path in isolation; production code should call the dispatched
// forms above.
namespace simd {
void GemmNN(const Matrix& a, const Matrix& b, Matrix* out);
void GemmNNBias(const Matrix& a, const Matrix& b, const Matrix& bias,
                Matrix* out);
void GemmNNBiasRelu(const Matrix& a, const Matrix& b, const Matrix& bias,
                    Matrix* out);
void GemmBT(const Matrix& a, const Matrix& b, Matrix* out);
void GemmAT(const Matrix& a, const Matrix& b, Matrix* out);
void GemmATAccumulate(const Matrix& a, const Matrix& b, Matrix* acc);
void ColSumAccumulate(const Matrix& a, Matrix* acc);
}  // namespace simd

// ------------------------------------------------------------- reference
// The historical unblocked loops, self-contained (no dispatch, scalar
// arithmetic). Parity tests compare every blocked/sparse kernel against
// these bit for bit under the scalar tier, and within kSimdRelTolerance
// under the SIMD tiers.
namespace reference {
void GemmNN(const Matrix& a, const Matrix& b, Matrix* out);
void GemmNNBias(const Matrix& a, const Matrix& b, const Matrix& bias,
                Matrix* out);
void GemmNNBiasRelu(const Matrix& a, const Matrix& b, const Matrix& bias,
                    Matrix* out);
void GemmBT(const Matrix& a, const Matrix& b, Matrix* out);
void GemmAT(const Matrix& a, const Matrix& b, Matrix* out);
void GemmATAccumulate(const Matrix& a, const Matrix& b, Matrix* acc);
void ColSumAccumulate(const Matrix& a, Matrix* acc);
}  // namespace reference

}  // namespace kernels
}  // namespace qcfe

#endif  // QCFE_NN_KERNELS_H_
