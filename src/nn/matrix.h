#ifndef QCFE_NN_MATRIX_H_
#define QCFE_NN_MATRIX_H_

/// \file matrix.h
/// Dense row-major double matrix. This is the numeric workhorse of the
/// from-scratch neural-network library (the PyTorch substitute): batches are
/// rows, features are columns.

#include <cstddef>
#include <vector>

#include "util/check.h"

namespace qcfe {

class Rng;

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  /// Zero-initialised rows x cols matrix.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}
  /// Takes ownership of a flat row-major buffer (size must be rows*cols).
  Matrix(size_t rows, size_t cols, std::vector<double> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    QCFE_CHECK(data_.size() == rows_ * cols_,
               "flat buffer size must equal rows*cols");
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& At(size_t r, size_t c) {
    QCFE_DCHECK(r < rows_ && c < cols_, "Matrix::At index out of range");
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    QCFE_DCHECK(r < rows_ && c < cols_, "Matrix::At index out of range");
    return data_[r * cols_ + c];
  }

  double* RowPtr(size_t r) {
    QCFE_DCHECK(r < rows_ || size() == 0, "Matrix::RowPtr row out of range");
    return data_.data() + r * cols_;
  }
  const double* RowPtr(size_t r) const {
    QCFE_DCHECK(r < rows_ || size() == 0, "Matrix::RowPtr row out of range");
    return data_.data() + r * cols_;
  }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// Sets every entry to v.
  void Fill(double v);

  /// Copies one row out as a vector.
  std::vector<double> Row(size_t r) const;

  /// Overwrites one row from a vector (size must equal cols()).
  void SetRow(size_t r, const std::vector<double>& values);

  /// Returns a new matrix restricted to the given rows (in the given order).
  Matrix SelectRows(const std::vector<size_t>& indices) const;

  /// Returns a new matrix restricted to the given columns (in order).
  Matrix SelectCols(const std::vector<size_t>& indices) const;

  /// Reshapes to rows x cols and zeroes every entry (contents are not
  /// preserved). Capacity-preserving: when the new size fits the existing
  /// allocation the buffer is reused, so repeated same-shape calls (e.g.
  /// ForwardInto on steady batch sizes) never touch the allocator.
  void ResetShape(size_t rows, size_t cols);

  /// Like ResetShape but leaves the contents unspecified — for kernels that
  /// overwrite every entry, this skips the zeroing pass entirely on the
  /// same-shape fast path. (Growing still zero-fills the new storage, a
  /// vector guarantee; the contract is "unspecified", not "garbage".)
  void ResetShapeUninitialized(size_t rows, size_t cols);

  /// Matrix product: (m x k) * (k x n) -> (m x n).
  static Matrix MatMul(const Matrix& a, const Matrix& b);

  /// out = a * b without allocating when `out` already has capacity; the
  /// arithmetic is element-for-element identical to MatMul. `out` must not
  /// alias `a` or `b`.
  static void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out);

  /// a * b^T without materialising the transpose: (m x k) * (n x k) -> (m x n).
  static Matrix MatMulBT(const Matrix& a, const Matrix& b);

  /// a^T * b without materialising the transpose: (k x m) * (k x n) -> (m x n).
  static Matrix MatMulAT(const Matrix& a, const Matrix& b);

  Matrix Transposed() const;

  /// this += other (same shape).
  void Add(const Matrix& other);
  /// this -= other (same shape).
  void Sub(const Matrix& other);
  /// this *= scalar.
  void Scale(double s);
  /// this = this (elementwise *) other (same shape).
  void Hadamard(const Matrix& other);

  /// Adds a row vector (1 x cols) to every row; used for biases.
  void AddRowBroadcast(const Matrix& row);

  /// Column-wise sum producing a 1 x cols row vector.
  Matrix ColSum() const;

  /// Column-wise mean producing a 1 x cols row vector.
  Matrix ColMean() const;

  /// Gaussian init: N(0, stddev). Used for weight initialisation.
  void RandomizeGaussian(Rng* rng, double stddev);

  /// Frobenius norm.
  double Norm() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace qcfe

#endif  // QCFE_NN_MATRIX_H_
