#ifndef QCFE_NN_MATRIX_H_
#define QCFE_NN_MATRIX_H_

/// \file matrix.h
/// Dense row-major double matrix. This is the numeric workhorse of the
/// from-scratch neural-network library (the PyTorch substitute): batches are
/// rows, features are columns.
///
/// Storage layout (SIMD contract). Rows are stored with a padded leading
/// dimension: ld() is cols() rounded up to a multiple of 8 doubles (64
/// bytes), and the buffer itself is 64-byte aligned, so every RowPtr() is
/// cache-line aligned and vector loads in the kernel tiers never straddle
/// lines. The pad columns (ld() - cols() trailing doubles of each row) are
/// **always exactly zero**; every Matrix mutator maintains this invariant.
/// Flat iteration over data() is therefore safe for zero-preserving
/// elementwise operations (x+0, x*0, relu(0), ...) but must never write a
/// non-zero into the pad region. size() returns the physical buffer length
/// (rows() * ld()), which equals rows() * cols() only when cols() is a
/// multiple of 8.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/aligned.h"
#include "util/check.h"

namespace qcfe {

class Rng;

/// Row-major dense matrix of doubles with 64-byte-aligned, pad-to-8 rows.
class Matrix {
 public:
  /// The aligned backing store type; data() exposes it directly.
  using Buffer = std::vector<double, AlignedAllocator<double, kMatrixAlignBytes>>;

  Matrix() : rows_(0), cols_(0), ld_(0) {}
  /// Zero-initialised rows x cols matrix.
  Matrix(size_t rows, size_t cols)
      : rows_(rows),
        cols_(cols),
        ld_(LeadingDim(cols)),
        data_(rows * LeadingDim(cols), 0.0) {}
  /// Copies a flat row-major buffer (size must be rows*cols) into the
  /// padded layout.
  Matrix(size_t rows, size_t cols, const std::vector<double>& flat)
      : Matrix(rows, cols) {
    QCFE_CHECK(flat.size() == rows * cols,
               "flat buffer size must equal rows*cols");
    for (size_t r = 0; r < rows_; ++r) {
      const double* src = flat.data() + r * cols_;
      double* dst = RowPtr(r);
      for (size_t c = 0; c < cols_; ++c) dst[c] = src[c];
    }
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  /// Leading dimension: the physical distance (in doubles) between row
  /// starts. cols() rounded up to a multiple of 8; 0 for empty matrices.
  size_t ld() const { return ld_; }
  /// Physical buffer length, rows() * ld() — NOT the logical element count
  /// unless cols() is a multiple of 8.
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& At(size_t r, size_t c) {
    QCFE_DCHECK(r < rows_ && c < cols_, "Matrix::At index out of range");
    return data_[r * ld_ + c];
  }
  double At(size_t r, size_t c) const {
    QCFE_DCHECK(r < rows_ && c < cols_, "Matrix::At index out of range");
    return data_[r * ld_ + c];
  }

  double* RowPtr(size_t r) {
    QCFE_DCHECK(r < rows_ || size() == 0, "Matrix::RowPtr row out of range");
    QCFE_DCHECK(
        (reinterpret_cast<uintptr_t>(data_.data() + r * ld_) &
         (kMatrixAlignBytes - 1)) == 0,
        "Matrix::RowPtr row storage is not 64-byte aligned");
    return data_.data() + r * ld_;
  }
  const double* RowPtr(size_t r) const {
    QCFE_DCHECK(r < rows_ || size() == 0, "Matrix::RowPtr row out of range");
    QCFE_DCHECK(
        (reinterpret_cast<uintptr_t>(data_.data() + r * ld_) &
         (kMatrixAlignBytes - 1)) == 0,
        "Matrix::RowPtr row storage is not 64-byte aligned");
    return data_.data() + r * ld_;
  }

  Buffer& data() { return data_; }
  const Buffer& data() const { return data_; }

  /// Sets every entry to v.
  void Fill(double v);

  /// Copies one row out as a vector.
  std::vector<double> Row(size_t r) const;

  /// Overwrites one row from a vector (size must equal cols()).
  void SetRow(size_t r, const std::vector<double>& values);

  /// Returns a new matrix restricted to the given rows (in the given order).
  Matrix SelectRows(const std::vector<size_t>& indices) const;

  /// Returns a new matrix restricted to the given columns (in order).
  Matrix SelectCols(const std::vector<size_t>& indices) const;

  /// Reshapes to rows x cols and zeroes every entry (contents are not
  /// preserved). Capacity-preserving: when the new size fits the existing
  /// allocation the buffer is reused, so repeated same-shape calls (e.g.
  /// ForwardInto on steady batch sizes) never touch the allocator.
  void ResetShape(size_t rows, size_t cols);

  /// Like ResetShape but leaves the logical contents unspecified — for
  /// kernels that overwrite every entry, this skips the zeroing pass
  /// entirely on the same-shape fast path. The pad columns are still
  /// guaranteed zero afterwards (the layout invariant).
  void ResetShapeUninitialized(size_t rows, size_t cols);

  /// Matrix product: (m x k) * (k x n) -> (m x n).
  static Matrix MatMul(const Matrix& a, const Matrix& b);

  /// out = a * b without allocating when `out` already has capacity; the
  /// arithmetic is element-for-element identical to MatMul. `out` must not
  /// alias `a` or `b`.
  static void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out);

  /// a * b^T without materialising the transpose: (m x k) * (n x k) -> (m x n).
  static Matrix MatMulBT(const Matrix& a, const Matrix& b);

  /// a^T * b without materialising the transpose: (k x m) * (k x n) -> (m x n).
  static Matrix MatMulAT(const Matrix& a, const Matrix& b);

  Matrix Transposed() const;

  /// this += other (same shape).
  void Add(const Matrix& other);
  /// this -= other (same shape).
  void Sub(const Matrix& other);
  /// this *= scalar.
  void Scale(double s);
  /// this = this (elementwise *) other (same shape).
  void Hadamard(const Matrix& other);

  /// Adds a row vector (1 x cols) to every row; used for biases.
  void AddRowBroadcast(const Matrix& row);

  /// Column-wise sum producing a 1 x cols row vector.
  Matrix ColSum() const;

  /// Column-wise mean producing a 1 x cols row vector.
  Matrix ColMean() const;

  /// Gaussian init: N(0, stddev). Used for weight initialisation.
  void RandomizeGaussian(Rng* rng, double stddev);

  /// Frobenius norm.
  double Norm() const;

 private:
  /// Rows are padded to a multiple of 8 doubles so each row starts on a
  /// 64-byte boundary of the (64-byte-aligned) buffer.
  static size_t LeadingDim(size_t cols) {
    constexpr size_t kPad = kMatrixAlignBytes / sizeof(double);
    return (cols + kPad - 1) / kPad * kPad;
  }

  /// Re-establishes the zeros in the pad columns (used after layout
  /// changes that may expose stale buffer contents there).
  void ZeroPadColumns();

  size_t rows_;
  size_t cols_;
  size_t ld_;
  Buffer data_;
};

}  // namespace qcfe

#endif  // QCFE_NN_MATRIX_H_
