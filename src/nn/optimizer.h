#ifndef QCFE_NN_OPTIMIZER_H_
#define QCFE_NN_OPTIMIZER_H_

/// \file optimizer.h
/// First-order optimizers over (param, grad) pairs, plus the caller-owned
/// gradient accumulator (GradSink) that tape-based backprop writes into.
/// Adam is the default for both estimators, matching the reference
/// QPPNet/MSCN implementations.

#include <memory>
#include <vector>

#include "nn/matrix.h"
#include "util/status.h"

namespace qcfe {

class ByteReader;
class ByteWriter;

/// A caller-owned set of parameter-gradient accumulators, shaped like some
/// network's Grads() list. Tape-based Mlp::Backward adds into a sink
/// instead of mutating shared state, so each training chunk can own one:
/// chunks backprop concurrently into private sinks, and the reduction adds
/// the sinks into the optimizer-bound gradients in fixed chunk order —
/// which is what makes chunk-parallel training bit-identical at any thread
/// count.
class GradSink {
 public:
  /// Shapes one zeroed accumulator per entry of `grads` (typically
  /// Mlp::Grads()). Reuses existing allocations whenever the shapes fit,
  /// so per-batch reinitialisation of a warm sink is a pure zeroing pass —
  /// the sink-backed half of the allocation-free backward (the register-
  /// resident accumulate kernels in nn/kernels.h add straight into these
  /// slots).
  void InitLike(const std::vector<Matrix*>& grads);

  /// Adds the accumulators into `grads` (same layout as InitLike). This is
  /// the chunk-order reduction into the optimizer-bound gradients.
  void AddTo(const std::vector<Matrix*>& grads) const;

  size_t size() const { return grads_.size(); }
  Matrix& slot(size_t i) { return grads_[i]; }
  const Matrix& slot(size_t i) const { return grads_[i]; }
  /// Contiguous accumulator pointers (size() entries), rebuilt by
  /// InitLike; lets backprop slice per-layer views without allocating.
  Matrix* const* slots() { return slot_ptrs_.data(); }

 private:
  std::vector<Matrix> grads_;
  std::vector<Matrix*> slot_ptrs_;
};

/// Base optimizer bound to a fixed set of parameter/gradient pairs.
class Optimizer {
 public:
  Optimizer(std::vector<Matrix*> params, std::vector<Matrix*> grads)
      : params_(std::move(params)), grads_(std::move(grads)) {}
  virtual ~Optimizer() = default;

  /// Applies one update using the currently accumulated gradients.
  virtual void Step() = 0;

  /// Zeroes all bound gradients.
  void ZeroGrad() {
    for (Matrix* g : grads_) g->Fill(0.0);
  }

 protected:
  std::vector<Matrix*> params_;
  std::vector<Matrix*> grads_;
};

/// Stochastic gradient descent with classical momentum.
class SgdOptimizer : public Optimizer {
 public:
  SgdOptimizer(std::vector<Matrix*> params, std::vector<Matrix*> grads,
               double lr, double momentum = 0.0);
  void Step() override;

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 private:
  double lr_;
  double momentum_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class AdamOptimizer : public Optimizer {
 public:
  AdamOptimizer(std::vector<Matrix*> params, std::vector<Matrix*> grads,
                double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);
  void Step() override;

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

  /// Global-norm gradient clipping (0 disables). Stabilises the
  /// plan-structured training where rare deep plans can spike gradients.
  void set_clip_norm(double clip) { clip_norm_ = clip; }

  /// Serializes hyperparameters, step count and first/second-moment slots
  /// for model artifacts (core/artifact.h), so a loaded model's next Step()
  /// is bit-identical to the never-persisted original's (warm-start
  /// retraining resumes mid-schedule, not from scratch).
  void SaveState(ByteWriter* w) const;
  /// Restores state saved by SaveState into an optimizer bound to the same
  /// parameter shapes. Slot-count or shape mismatch is kFailedPrecondition;
  /// truncated bytes are kDataLoss.
  Status LoadState(ByteReader* r);

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  double clip_norm_ = 0.0;
  int64_t t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace qcfe

#endif  // QCFE_NN_OPTIMIZER_H_
