#ifndef QCFE_NN_OPTIMIZER_H_
#define QCFE_NN_OPTIMIZER_H_

/// \file optimizer.h
/// First-order optimizers over (param, grad) pairs. Adam is the default for
/// both estimators, matching the reference QPPNet/MSCN implementations.

#include <memory>
#include <vector>

#include "nn/matrix.h"

namespace qcfe {

/// Base optimizer bound to a fixed set of parameter/gradient pairs.
class Optimizer {
 public:
  Optimizer(std::vector<Matrix*> params, std::vector<Matrix*> grads)
      : params_(std::move(params)), grads_(std::move(grads)) {}
  virtual ~Optimizer() = default;

  /// Applies one update using the currently accumulated gradients.
  virtual void Step() = 0;

  /// Zeroes all bound gradients.
  void ZeroGrad() {
    for (Matrix* g : grads_) g->Fill(0.0);
  }

 protected:
  std::vector<Matrix*> params_;
  std::vector<Matrix*> grads_;
};

/// Stochastic gradient descent with classical momentum.
class SgdOptimizer : public Optimizer {
 public:
  SgdOptimizer(std::vector<Matrix*> params, std::vector<Matrix*> grads,
               double lr, double momentum = 0.0);
  void Step() override;

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 private:
  double lr_;
  double momentum_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class AdamOptimizer : public Optimizer {
 public:
  AdamOptimizer(std::vector<Matrix*> params, std::vector<Matrix*> grads,
                double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);
  void Step() override;

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

  /// Global-norm gradient clipping (0 disables). Stabilises the
  /// plan-structured training where rare deep plans can spike gradients.
  void set_clip_norm(double clip) { clip_norm_ = clip; }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  double clip_norm_ = 0.0;
  int64_t t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace qcfe

#endif  // QCFE_NN_OPTIMIZER_H_
