#include "nn/layers.h"

#include <cmath>

#include "nn/kernels.h"
#include "util/rng.h"

namespace qcfe {

LinearLayer::LinearLayer(size_t in_dim, size_t out_dim, Rng* rng)
    : w_(in_dim, out_dim),
      b_(1, out_dim),
      dw_(in_dim, out_dim),
      db_(1, out_dim) {
  double stddev = std::sqrt(2.0 / static_cast<double>(in_dim == 0 ? 1 : in_dim));
  w_.RandomizeGaussian(rng, stddev);
}

Matrix LinearLayer::Forward(const Matrix& input) const {
  Matrix out;
  ForwardInto(input, &out);
  return out;
}

void LinearLayer::ForwardInto(const Matrix& input, Matrix* output) const {
  // Fused bias epilogue: the blocked kernel adds b while the output panel
  // is still in registers instead of a second AddRowBroadcast pass.
  kernels::GemmNNBias(input, w_, b_, output);
}

void LinearLayer::ForwardReluInto(const Matrix& input, Matrix* output) const {
  kernels::GemmNNBiasRelu(input, w_, b_, output);
}

void LinearLayer::BackwardInto(const Matrix& grad_output, const Matrix& input,
                               const Matrix& /*output*/,
                               Matrix* const* param_grads,
                               Matrix* grad_input) const {
  // dW += X^T * dY ; db += colsum(dY) ; dX = dY * W^T — all allocation-free:
  // the accumulate kernels build each contraction in registers and add it
  // to the sink slot once, and dX lands in the caller's scratch buffer.
  if (param_grads != nullptr) {
    kernels::GemmATAccumulate(input, grad_output, param_grads[0]);
    kernels::ColSumAccumulate(grad_output, param_grads[1]);
  }
  kernels::GemmBT(grad_output, w_, grad_input);
}

void LinearLayer::ZeroGrad() {
  dw_.Fill(0.0);
  db_.Fill(0.0);
}

Matrix ReluLayer::Forward(const Matrix& input) const {
  Matrix out = input;
  for (double& x : out.data()) x = x > 0.0 ? x : 0.0;
  return out;
}

void ReluLayer::ForwardInto(const Matrix& input, Matrix* output) const {
  kernels::ReluForward(input, output);
}

void ReluLayer::BackwardInto(const Matrix& grad_output, const Matrix& input,
                             const Matrix& /*output*/,
                             Matrix* const* /*param_grads*/,
                             Matrix* grad_input) const {
  // Fused ReLU-mask backward: one pass that copies and masks (or masks in
  // place when grad_input aliases grad_output) instead of the historical
  // copy-then-mask pair.
  kernels::ReluMaskBackward(grad_output, input, grad_input);
}

Matrix SigmoidLayer::Forward(const Matrix& input) const {
  Matrix out;
  ForwardInto(input, &out);
  return out;
}

void SigmoidLayer::ForwardInto(const Matrix& input, Matrix* output) const {
  if (output != &input) {
    output->ResetShapeUninitialized(input.rows(), input.cols());
  }
  // Row-wise, not flat: sigmoid(0) == 0.5, so a flat pass would write into
  // the always-zero pad columns (see matrix.h storage contract).
  for (size_t r = 0; r < input.rows(); ++r) {
    const double* src = input.RowPtr(r);
    double* dst = output->RowPtr(r);
    for (size_t c = 0; c < input.cols(); ++c) {
      dst[c] = 1.0 / (1.0 + std::exp(-src[c]));
    }
  }
}

void SigmoidLayer::BackwardInto(const Matrix& grad_output,
                                const Matrix& /*input*/, const Matrix& output,
                                Matrix* const* /*param_grads*/,
                                Matrix* grad_input) const {
  if (grad_input != &grad_output) {
    grad_input->ResetShapeUninitialized(grad_output.rows(),
                                        grad_output.cols());
  }
  const double* src = grad_output.data().data();
  const double* out = output.data().data();
  double* dst = grad_input->data().data();
  for (size_t i = 0; i < grad_output.size(); ++i) {
    double y = out[i];
    dst[i] = src[i] * (y * (1.0 - y));
  }
}

Matrix TanhLayer::Forward(const Matrix& input) const {
  Matrix out = input;
  for (double& x : out.data()) x = std::tanh(x);
  return out;
}

void TanhLayer::ForwardInto(const Matrix& input, Matrix* output) const {
  if (output != &input) {
    output->ResetShapeUninitialized(input.rows(), input.cols());
  }
  const double* src = input.data().data();
  double* dst = output->data().data();
  for (size_t i = 0; i < input.size(); ++i) dst[i] = std::tanh(src[i]);
}

void TanhLayer::BackwardInto(const Matrix& grad_output,
                             const Matrix& /*input*/, const Matrix& output,
                             Matrix* const* /*param_grads*/,
                             Matrix* grad_input) const {
  if (grad_input != &grad_output) {
    grad_input->ResetShapeUninitialized(grad_output.rows(),
                                        grad_output.cols());
  }
  const double* src = grad_output.data().data();
  const double* out = output.data().data();
  double* dst = grad_input->data().data();
  for (size_t i = 0; i < grad_output.size(); ++i) {
    double y = out[i];
    dst[i] = src[i] * (1.0 - y * y);
  }
}

}  // namespace qcfe
