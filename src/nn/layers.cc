#include "nn/layers.h"

#include <cmath>

#include "util/rng.h"

namespace qcfe {

LinearLayer::LinearLayer(size_t in_dim, size_t out_dim, Rng* rng)
    : w_(in_dim, out_dim),
      b_(1, out_dim),
      dw_(in_dim, out_dim),
      db_(1, out_dim) {
  double stddev = std::sqrt(2.0 / static_cast<double>(in_dim == 0 ? 1 : in_dim));
  w_.RandomizeGaussian(rng, stddev);
}

Matrix LinearLayer::Forward(const Matrix& input) const {
  Matrix out = Matrix::MatMul(input, w_);
  out.AddRowBroadcast(b_);
  return out;
}

void LinearLayer::ForwardInto(const Matrix& input, Matrix* output) const {
  Matrix::MatMulInto(input, w_, output);
  output->AddRowBroadcast(b_);
}

Matrix LinearLayer::Backward(const Matrix& grad_output, const Matrix& input,
                             const Matrix& /*output*/,
                             Matrix* const* param_grads) const {
  // dW += X^T * dY ; db += colsum(dY) ; dX = dY * W^T
  if (param_grads != nullptr) {
    param_grads[0]->Add(Matrix::MatMulAT(input, grad_output));
    param_grads[1]->Add(grad_output.ColSum());
  }
  return Matrix::MatMulBT(grad_output, w_);
}

void LinearLayer::ZeroGrad() {
  dw_.Fill(0.0);
  db_.Fill(0.0);
}

Matrix ReluLayer::Forward(const Matrix& input) const {
  Matrix out = input;
  for (double& x : out.data()) x = x > 0.0 ? x : 0.0;
  return out;
}

void ReluLayer::ForwardInto(const Matrix& input, Matrix* output) const {
  output->ResetShape(input.rows(), input.cols());
  const double* src = input.data().data();
  double* dst = output->data().data();
  for (size_t i = 0; i < input.size(); ++i) {
    dst[i] = src[i] > 0.0 ? src[i] : 0.0;
  }
}

Matrix ReluLayer::Backward(const Matrix& grad_output, const Matrix& input,
                           const Matrix& /*output*/,
                           Matrix* const* /*param_grads*/) const {
  Matrix grad = grad_output;
  for (size_t i = 0; i < grad.data().size(); ++i) {
    if (input.data()[i] <= 0.0) grad.data()[i] = 0.0;
  }
  return grad;
}

Matrix SigmoidLayer::Forward(const Matrix& input) const {
  Matrix out = input;
  for (double& x : out.data()) x = 1.0 / (1.0 + std::exp(-x));
  return out;
}

Matrix SigmoidLayer::Backward(const Matrix& grad_output,
                              const Matrix& /*input*/, const Matrix& output,
                              Matrix* const* /*param_grads*/) const {
  Matrix grad = grad_output;
  for (size_t i = 0; i < grad.data().size(); ++i) {
    double y = output.data()[i];
    grad.data()[i] *= y * (1.0 - y);
  }
  return grad;
}

Matrix TanhLayer::Forward(const Matrix& input) const {
  Matrix out = input;
  for (double& x : out.data()) x = std::tanh(x);
  return out;
}

Matrix TanhLayer::Backward(const Matrix& grad_output, const Matrix& /*input*/,
                           const Matrix& output,
                           Matrix* const* /*param_grads*/) const {
  Matrix grad = grad_output;
  for (size_t i = 0; i < grad.data().size(); ++i) {
    double y = output.data()[i];
    grad.data()[i] *= 1.0 - y * y;
  }
  return grad;
}

}  // namespace qcfe
