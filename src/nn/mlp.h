#ifndef QCFE_NN_MLP_H_
#define QCFE_NN_MLP_H_

/// \file mlp.h
/// Multi-layer perceptron built from the layers in layers.h. This is the
/// building block for both estimators: QPPNet instantiates one Mlp "neural
/// unit" per physical operator type; MSCN uses Mlps as set modules and as the
/// final regressor.

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/matrix.h"
#include "util/status.h"

namespace qcfe {

class ByteReader;
class ByteWriter;
class GradSink;
class Rng;

/// Activation used between hidden layers.
enum class Activation {
  kRelu,
  kSigmoid,
  kTanh,
};

/// Feed-forward network: Linear(+act) x hidden, final Linear (no activation).
class Mlp {
 public:
  /// Builds [in, h1, h2, ..., out] with the given hidden activation. The
  /// paper's models use ReLU; Sigmoid/Tanh exist for ablation tests.
  Mlp(const std::vector<size_t>& layer_dims, Activation act, Rng* rng);

  /// Deserialization constructor (empty net; use Load()).
  Mlp() = default;

  /// Caller-owned activation record of one forward pass: activations[0] is
  /// the network input, activations[i] the input of layer i, and
  /// activations[num_layers] the output. A tape is what Backward() reads
  /// instead of per-layer caches, so forward/backward is reentrant: any
  /// number of threads may run Forward/Backward through the same Mlp
  /// concurrently as long as each owns its tape (and gradient sink). The
  /// difference-propagation walker in src/core consumes the same record.
  ///
  /// A tape doubles as the backward scratch arena: the activation matrices
  /// and the gradient ping-pong buffers are reused across Forward/Backward
  /// calls (reshaped in place), so steady-state training steps on a reused
  /// tape never touch the allocator.
  struct Tape {
    std::vector<Matrix> activations;
    /// Backward/seed scratch (not part of the activation record).
    Matrix grad_ping, grad_pong, seed;
  };

  /// Forward pass recording every layer input plus the final output on
  /// `tape` for a subsequent Backward(); returns the output (a reference
  /// into the tape, invalidated by the next Forward on it). Tape matrices
  /// are reused across calls. Thread-safe: the network is read-only, all
  /// state lands on the caller's tape.
  const Matrix& Forward(const Matrix& input, Tape* tape) const;

  /// Inference-only forward (no tape recorded).
  Matrix Predict(const Matrix& input) const;

  /// Reusable ping-pong buffers for allocation-free batched inference. One
  /// scratch may be shared across any number of Predict calls (and across
  /// different Mlps), as long as the previous result has been consumed.
  struct Scratch {
    Matrix ping, pong;
  };

  /// Matrix-batched inference forward for the serving hot path: rows are
  /// samples, layer outputs are written through the caller-owned scratch so
  /// steady-state prediction does not allocate, and Linear+ReLU pairs run
  /// as one fused kernel (the pre-activation is never materialised). The
  /// returned reference points into `scratch` and is invalidated by the
  /// next call. Numerically identical to Predict() row for row.
  const Matrix& Predict(const Matrix& input, Scratch* scratch) const;

  /// Backprop from dL/d(output) through the activations recorded on `tape`
  /// (which must come from a Forward() on this network with the matching
  /// input). Parameter gradients are added into `sink` (layout = Grads();
  /// shape it with GradSink::InitLike); a null sink skips parameter
  /// accumulation entirely, which is how gradient probes stay side-effect
  /// free. Returns dL/d(input) as a reference into the tape's scratch
  /// buffers (invalidated by the next Backward on it). The running
  /// gradient ping-pongs between two tape-owned buffers — activation masks
  /// apply in place, linear layers write the opposite buffer — so a reused
  /// tape makes the whole backward pass allocation-free.
  const Matrix& Backward(const Matrix& grad_output, Tape* tape,
                         GradSink* sink) const;

  /// d(output_0)/d(input) for each sample: runs Forward+Backward with a
  /// one-hot output gradient on a private tape and a null sink, so
  /// optimizer-bound parameter grads are untouched (byte-for-byte).
  /// Returns a (batch x in_dim) matrix.
  Matrix InputGradient(const Matrix& input) const;

  /// InputGradient through a caller-owned tape, so repeated probes (e.g.
  /// the gradient-importance sweep in feature reduction) reuse one scratch
  /// arena instead of allocating per call.
  Matrix InputGradient(const Matrix& input, Tape* tape) const;

  void ZeroGrad();

  std::vector<Matrix*> Params();
  std::vector<Matrix*> Grads();

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }
  size_t num_layers() const { return layers_.size(); }
  const std::vector<std::unique_ptr<Layer>>& layers() const { return layers_; }

  /// Serializes architecture + weights to a text stream.
  Status Save(std::ostream& os) const;
  /// Restores a network saved with Save().
  Status Load(std::istream& is);

  /// Appends architecture + weights to `w` in the exact little-endian binary
  /// form used by model artifacts (core/artifact.h) — doubles as bit
  /// patterns, so a round trip is bit-identical.
  void SaveBinary(ByteWriter* w) const;
  /// Restores weights saved with SaveBinary **in place**: the saved
  /// architecture (layer count, kinds, dims, activation) must match this
  /// already-constructed network exactly — weights are overwritten but no
  /// layer is reallocated, so parameter pointers handed to an optimizer at
  /// construction stay bound. Architecture mismatch is kFailedPrecondition;
  /// truncated bytes are kDataLoss.
  Status LoadBinary(ByteReader* r);

  /// Deep copy (fresh caches, same weights).
  Mlp Clone() const;

  /// Appends a layer (composite-view construction: feature reduction builds
  /// "embed -> unit -> select" stacks from trained layers). Updates
  /// in_dim/out_dim bookkeeping for Linear layers.
  void AppendLayer(std::unique_ptr<Layer> layer);

  /// Deep-copies a single layer.
  static std::unique_ptr<Layer> CloneLayer(const Layer& layer);

  /// A zero-initialised Linear layer (weights and bias all 0) for callers
  /// that assemble affine embeddings by hand.
  static std::unique_ptr<LinearLayer> MakeZeroLinear(size_t in, size_t out);

  /// Rebuilds the first linear layer keeping only the given input columns.
  /// This is how feature reduction physically shrinks a trained model.
  Status ShrinkInputs(const std::vector<size_t>& kept_columns);

 private:
  size_t in_dim_ = 0;
  size_t out_dim_ = 0;
  Activation act_ = Activation::kRelu;
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace qcfe

#endif  // QCFE_NN_MLP_H_
