#ifndef QCFE_NN_MLP_H_
#define QCFE_NN_MLP_H_

/// \file mlp.h
/// Multi-layer perceptron built from the layers in layers.h. This is the
/// building block for both estimators: QPPNet instantiates one Mlp "neural
/// unit" per physical operator type; MSCN uses Mlps as set modules and as the
/// final regressor.

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/matrix.h"
#include "util/status.h"

namespace qcfe {

class Rng;

/// Activation used between hidden layers.
enum class Activation {
  kRelu,
  kSigmoid,
  kTanh,
};

/// Feed-forward network: Linear(+act) x hidden, final Linear (no activation).
class Mlp {
 public:
  /// Builds [in, h1, h2, ..., out] with the given hidden activation. The
  /// paper's models use ReLU; Sigmoid/Tanh exist for ablation tests.
  Mlp(const std::vector<size_t>& layer_dims, Activation act, Rng* rng);

  /// Deserialization constructor (empty net; use Load()).
  Mlp() = default;

  /// Forward pass caching intermediates for a subsequent Backward().
  Matrix Forward(const Matrix& input);

  /// Inference-only forward (no caches touched).
  Matrix Predict(const Matrix& input) const;

  /// Reusable ping-pong buffers for allocation-free batched inference. One
  /// scratch may be shared across any number of Predict calls (and across
  /// different Mlps), as long as the previous result has been consumed.
  struct Scratch {
    Matrix ping, pong;
  };

  /// Matrix-batched inference forward for the serving hot path: rows are
  /// samples, layer outputs are written through the caller-owned scratch so
  /// steady-state prediction does not allocate. The returned reference
  /// points into `scratch` and is invalidated by the next call. Numerically
  /// identical to Predict() row for row.
  const Matrix& Predict(const Matrix& input, Scratch* scratch) const;

  /// Forward pass that records the input to every layer plus the final
  /// output: activations[0] = input, activations[i] = input of layer i,
  /// activations[num_layers] = output. Used by difference propagation.
  Matrix ForwardCollect(const Matrix& input,
                        std::vector<Matrix>* activations) const;

  /// Backprop from dL/d(output); accumulates parameter grads and returns
  /// dL/d(input).
  Matrix Backward(const Matrix& grad_output);

  /// d(output_0)/d(input) for each sample: runs Forward+Backward with a
  /// one-hot output gradient; does not disturb accumulated parameter grads.
  /// Returns a (batch x in_dim) matrix.
  Matrix InputGradient(const Matrix& input);

  void ZeroGrad();

  std::vector<Matrix*> Params();
  std::vector<Matrix*> Grads();

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }
  size_t num_layers() const { return layers_.size(); }
  const std::vector<std::unique_ptr<Layer>>& layers() const { return layers_; }

  /// Serializes architecture + weights to a text stream.
  Status Save(std::ostream& os) const;
  /// Restores a network saved with Save().
  Status Load(std::istream& is);

  /// Deep copy (fresh caches, same weights).
  Mlp Clone() const;

  /// Appends a layer (composite-view construction: feature reduction builds
  /// "embed -> unit -> select" stacks from trained layers). Updates
  /// in_dim/out_dim bookkeeping for Linear layers.
  void AppendLayer(std::unique_ptr<Layer> layer);

  /// Deep-copies a single layer.
  static std::unique_ptr<Layer> CloneLayer(const Layer& layer);

  /// A zero-initialised Linear layer (weights and bias all 0) for callers
  /// that assemble affine embeddings by hand.
  static std::unique_ptr<LinearLayer> MakeZeroLinear(size_t in, size_t out);

  /// Rebuilds the first linear layer keeping only the given input columns.
  /// This is how feature reduction physically shrinks a trained model.
  Status ShrinkInputs(const std::vector<size_t>& kept_columns);

 private:
  size_t in_dim_ = 0;
  size_t out_dim_ = 0;
  Activation act_ = Activation::kRelu;
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace qcfe

#endif  // QCFE_NN_MLP_H_
