#include "nn/linalg.h"

#include <cmath>

namespace qcfe {

Status CholeskySolve(const Matrix& a, const std::vector<double>& b,
                     std::vector<double>* x) {
  size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    return Status::InvalidArgument("CholeskySolve: shape mismatch");
  }
  // Factor A = L L^T.
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a.At(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l.At(i, k) * l.At(j, k);
      if (i == j) {
        if (sum <= 0.0) return Status::NumericError("matrix not SPD");
        l.At(i, i) = std::sqrt(sum);
      } else {
        l.At(i, j) = sum / l.At(j, j);
      }
    }
  }
  // Solve L z = b, then L^T x = z.
  std::vector<double> z(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l.At(i, k) * z[k];
    z[i] = sum / l.At(i, i);
  }
  x->assign(n, 0.0);
  for (size_t ii = n; ii > 0; --ii) {
    size_t i = ii - 1;
    double sum = z[i];
    for (size_t k = i + 1; k < n; ++k) sum -= l.At(k, i) * (*x)[k];
    (*x)[i] = sum / l.At(i, i);
  }
  return Status::OK();
}

Result<std::vector<double>> LeastSquares(const Matrix& a,
                                         const std::vector<double>& y,
                                         double ridge) {
  if (a.rows() == 0 || a.cols() == 0 || a.rows() != y.size()) {
    return Status::InvalidArgument("LeastSquares: empty or mismatched input");
  }
  size_t n = a.cols();
  // Normal equations: (A^T A + ridge I) x = A^T y.
  Matrix ym(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) ym.At(r, 0) = y[r];
  Matrix ata = Matrix::MatMulAT(a, a);
  Matrix aty = Matrix::MatMulAT(a, ym);
  std::vector<double> rhs(n);
  for (size_t i = 0; i < n; ++i) rhs[i] = aty.At(i, 0);

  double lambda = ridge;
  for (int attempt = 0; attempt < 8; ++attempt) {
    Matrix reg = ata;
    // Scale the ridge by the diagonal magnitude so it is unit-free.
    double diag_scale = 0.0;
    for (size_t i = 0; i < n; ++i) diag_scale += ata.At(i, i);
    diag_scale = diag_scale / static_cast<double>(n) + 1e-12;
    for (size_t i = 0; i < n; ++i) reg.At(i, i) += lambda * diag_scale + 1e-12;
    std::vector<double> x;
    Status st = CholeskySolve(reg, rhs, &x);
    if (st.ok()) return x;
    lambda = lambda == 0.0 ? 1e-8 : lambda * 100.0;
  }
  return Status::NumericError("LeastSquares: could not regularize system");
}

Result<std::vector<double>> NonNegativeLeastSquares(
    const Matrix& a, const std::vector<double>& y, int max_iters,
    double ridge) {
  if (a.rows() == 0 || a.cols() == 0 || a.rows() != y.size()) {
    return Status::InvalidArgument("NNLS: empty or mismatched input");
  }
  size_t n = a.cols();
  Matrix ym(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) ym.At(r, 0) = y[r];
  Matrix ata = Matrix::MatMulAT(a, a);
  Matrix aty = Matrix::MatMulAT(a, ym);
  double diag_scale = 0.0;
  for (size_t i = 0; i < n; ++i) diag_scale += ata.At(i, i);
  diag_scale = diag_scale / static_cast<double>(n) + 1e-12;
  for (size_t i = 0; i < n; ++i) ata.At(i, i) += ridge * diag_scale + 1e-12;

  // Warm start from the unconstrained solution clipped at zero.
  std::vector<double> x(n, 0.0);
  Result<std::vector<double>> warm = LeastSquares(a, y, ridge);
  if (warm.ok()) {
    x = warm.value();
    for (double& v : x) v = v < 0.0 ? 0.0 : v;
  }
  // Projected coordinate descent on 1/2 x^T (A^T A) x - (A^T y)^T x.
  for (int it = 0; it < max_iters; ++it) {
    double max_delta = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double denom = ata.At(i, i);
      if (denom <= 0.0) continue;
      double grad_i = -aty.At(i, 0);
      for (size_t j = 0; j < n; ++j) grad_i += ata.At(i, j) * x[j];
      double next = x[i] - grad_i / denom;
      if (next < 0.0) next = 0.0;
      max_delta = std::max(max_delta, std::fabs(next - x[i]));
      x[i] = next;
    }
    if (max_delta < 1e-12) break;
  }
  return x;
}

}  // namespace qcfe
