/// \file kernels_simd_avx2.cc
/// The AVX2+FMA kernel tier. Compiled with -mavx2 -mfma -ffp-contract=off
/// (see CMakeLists.txt): only the explicit intrinsics and std::fma below
/// ever fuse, so the arithmetic is exactly what this file spells out.
///
/// Within-tier determinism contract. Every contraction element is built as
/// one zero-seeded fused-multiply-add chain in ascending contraction order:
///   acc = fma(a_k, b_k, acc)   for k = 0, 1, ...
/// whether the chain runs in a vector lane (broadcast-a x vector-b), in a
/// scalar std::fma tail, or in the sparse row-skip path (skipping a zero
/// term leaves the accumulator bits unchanged: fma(0, b, acc) == acc for
/// finite acc). An element's bits therefore depend only on its own inputs —
/// never on batch size, panel position, or dispatch path — which is what
/// keeps batched-vs-single, sharded-vs-serial and async-vs-direct serving
/// bit-identical under a pinned ISA. The *Accumulate kernels finish the
/// full chain first and then apply exactly one *unfused* add to the
/// destination (fma(a, b, 0) rounds identically to a*b, so the rank-1 path
/// composes with the panel path). GemmBT reduces its chain across four
/// lanes with a fixed-shape horizontal sum — reordered relative to the
/// scalar tier (hence the cross-tier tolerance gate) but per-element
/// deterministic. ColSumAccumulate and the optimizer steps use no FMA and
/// no cross-lane reductions at all, so they are bit-identical to the
/// scalar tier.

#include "nn/kernels_internal.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

#include "nn/kernels.h"
#include "util/check.h"

namespace qcfe {
namespace kernels {
namespace internal {
namespace {

/// out = relu(v) with scalar semantics: NaN and -0.0 map to +0.0 (vmaxpd
/// returns the second operand on unordered/equal compares).
inline __m256d Relu(__m256d v) { return _mm256_max_pd(v, _mm256_setzero_pd()); }

// ------------------------------------------------------------- GemmNN

template <Epilogue kEpilogue>
void DenseNN(const Matrix& a, const Matrix& b, const Matrix* bias,
             Matrix* out) {
  QCFE_CHECK(a.cols() == b.rows(), "GemmNN: a.cols() must equal b.rows()");
  QCFE_CHECK(out != &a && out != &b, "GemmNN: out must not alias an input");
  QCFE_DCHECK(kEpilogue == Epilogue::kNone ||
                  (bias != nullptr && bias->rows() == 1 &&
                   bias->cols() == b.cols()),
              "fused epilogue requires a 1 x n bias row");
  out->ResetShapeUninitialized(a.rows(), b.cols());
  const size_t m = a.rows();
  const size_t kk = a.cols();
  const size_t n = b.cols();
  const size_t lda = a.ld();
  const size_t ldb = b.ld();
  const double* __restrict ap = a.data().data();
  const double* __restrict bp = b.data().data();
  const double* biasp =
      kEpilogue == Epilogue::kNone ? nullptr : bias->RowPtr(0);
  for (size_t i0 = 0; i0 < m; i0 += kMr) {
    const size_t mr = std::min(kMr, m - i0);
    size_t j0 = 0;
    // Full 8-column panels: kMr x 2 vector accumulators held in registers.
    for (; j0 + kNr <= n; j0 += kNr) {
      __m256d acc0[kMr];
      __m256d acc1[kMr];
      for (size_t ii = 0; ii < kMr; ++ii) {
        acc0[ii] = _mm256_setzero_pd();
        acc1[ii] = _mm256_setzero_pd();
      }
      if (mr == kMr) {
        for (size_t k = 0; k < kk; ++k) {
          const double* __restrict brow = bp + k * ldb + j0;
          const __m256d bv0 = _mm256_loadu_pd(brow);
          const __m256d bv1 = _mm256_loadu_pd(brow + 4);
          for (size_t ii = 0; ii < kMr; ++ii) {
            const __m256d av = _mm256_set1_pd(ap[(i0 + ii) * lda + k]);
            acc0[ii] = _mm256_fmadd_pd(av, bv0, acc0[ii]);
            acc1[ii] = _mm256_fmadd_pd(av, bv1, acc1[ii]);
          }
        }
      } else {
        for (size_t k = 0; k < kk; ++k) {
          const double* __restrict brow = bp + k * ldb + j0;
          const __m256d bv0 = _mm256_loadu_pd(brow);
          const __m256d bv1 = _mm256_loadu_pd(brow + 4);
          for (size_t ii = 0; ii < mr; ++ii) {
            const __m256d av = _mm256_set1_pd(ap[(i0 + ii) * lda + k]);
            acc0[ii] = _mm256_fmadd_pd(av, bv0, acc0[ii]);
            acc1[ii] = _mm256_fmadd_pd(av, bv1, acc1[ii]);
          }
        }
      }
      for (size_t ii = 0; ii < mr; ++ii) {
        __m256d v0 = acc0[ii];
        __m256d v1 = acc1[ii];
        if (kEpilogue != Epilogue::kNone) {
          v0 = _mm256_add_pd(v0, _mm256_loadu_pd(biasp + j0));
          v1 = _mm256_add_pd(v1, _mm256_loadu_pd(biasp + j0 + 4));
        }
        if (kEpilogue == Epilogue::kBiasRelu) {
          v0 = Relu(v0);
          v1 = Relu(v1);
        }
        double* dst = out->RowPtr(i0 + ii) + j0;
        _mm256_storeu_pd(dst, v0);
        _mm256_storeu_pd(dst + 4, v1);
      }
    }
    // 4-column panel.
    for (; j0 + 4 <= n; j0 += 4) {
      __m256d acc[kMr];
      for (size_t ii = 0; ii < kMr; ++ii) acc[ii] = _mm256_setzero_pd();
      for (size_t k = 0; k < kk; ++k) {
        const __m256d bv = _mm256_loadu_pd(bp + k * ldb + j0);
        for (size_t ii = 0; ii < mr; ++ii) {
          const __m256d av = _mm256_set1_pd(ap[(i0 + ii) * lda + k]);
          acc[ii] = _mm256_fmadd_pd(av, bv, acc[ii]);
        }
      }
      for (size_t ii = 0; ii < mr; ++ii) {
        __m256d v = acc[ii];
        if (kEpilogue != Epilogue::kNone) {
          v = _mm256_add_pd(v, _mm256_loadu_pd(biasp + j0));
        }
        if (kEpilogue == Epilogue::kBiasRelu) v = Relu(v);
        _mm256_storeu_pd(out->RowPtr(i0 + ii) + j0, v);
      }
    }
    // Scalar tail columns: the same per-element fma chain, one lane wide.
    for (; j0 < n; ++j0) {
      for (size_t ii = 0; ii < mr; ++ii) {
        const double* __restrict arow = ap + (i0 + ii) * lda;
        double acc = 0.0;
        for (size_t k = 0; k < kk; ++k) {
          acc = std::fma(arow[k], bp[k * ldb + j0], acc);
        }
        if (kEpilogue != Epilogue::kNone) acc += biasp[j0];
        if (kEpilogue == Epilogue::kBiasRelu) acc = acc > 0.0 ? acc : 0.0;
        out->RowPtr(i0 + ii)[j0] = acc;
      }
    }
  }
}

void DenseNNDispatch(const Matrix& a, const Matrix& b, const Matrix* bias,
                     Matrix* out, Epilogue e) {
  switch (e) {
    case Epilogue::kNone:
      DenseNN<Epilogue::kNone>(a, b, bias, out);
      return;
    case Epilogue::kBias:
      DenseNN<Epilogue::kBias>(a, b, bias, out);
      return;
    case Epilogue::kBiasRelu:
      DenseNN<Epilogue::kBiasRelu>(a, b, bias, out);
      return;
  }
}

/// Sparse row-skip a*b: the same ascending-k fma chains as the dense panel
/// (accumulated in the output memory instead of registers), skipping
/// exactly-zero a entries — so the sparse/dense dispatch flip never
/// changes bits within this tier either.
void SparseNN(const Matrix& a, const Matrix& b, Matrix* out) {
  QCFE_CHECK(a.cols() == b.rows(), "GemmNN: a.cols() must equal b.rows()");
  QCFE_CHECK(out != &a && out != &b, "GemmNN: out must not alias an input");
  out->ResetShape(a.rows(), b.cols());
  const size_t m = a.rows();
  const size_t kk = a.cols();
  const size_t n = b.cols();
  for (size_t i = 0; i < m; ++i) {
    const double* arow = a.RowPtr(i);
    double* __restrict orow = out->RowPtr(i);
    for (size_t k = 0; k < kk; ++k) {
      const double av = arow[k];
      if (av == 0.0) continue;
      const double* __restrict brow = b.RowPtr(k);
      const __m256d avv = _mm256_set1_pd(av);
      size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        const __m256d ov = _mm256_loadu_pd(orow + j);
        _mm256_storeu_pd(orow + j,
                         _mm256_fmadd_pd(avv, _mm256_loadu_pd(brow + j), ov));
      }
      for (; j < n; ++j) orow[j] = std::fma(av, brow[j], orow[j]);
    }
  }
}

// ------------------------------------------------------------- GemmBT

/// Finishes one BT dot product: fixed-shape horizontal sum of the 4-lane
/// chain, then the scalar k-tail appended with std::fma. Every BT element
/// uses exactly this algorithm regardless of panel position, so its bits
/// depend only on (a-row, b-row, k).
inline double HsumTail(__m256d acc, const double* __restrict x,
                       const double* __restrict y, size_t k0, size_t kk) {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (size_t k = k0; k < kk; ++k) s = std::fma(x[k], y[k], s);
  return s;
}

void DenseBT(const Matrix& a, const Matrix& b, Matrix* out) {
  QCFE_CHECK(a.cols() == b.cols(), "GemmBT: a.cols() must equal b.cols()");
  QCFE_CHECK(out != &a && out != &b, "GemmBT: out must not alias an input");
  out->ResetShapeUninitialized(a.rows(), b.rows());
  const size_t m = a.rows();
  const size_t n = b.rows();
  const size_t kk = a.cols();
  const size_t kv = kk - kk % 4;
  for (size_t i = 0; i < m; ++i) {
    const double* __restrict arow = a.RowPtr(i);
    double* __restrict orow = out->RowPtr(i);
    size_t j0 = 0;
    // Four dot products at a time share each streamed a-row load.
    for (; j0 + 4 <= n; j0 += 4) {
      const double* __restrict b0 = b.RowPtr(j0);
      const double* __restrict b1 = b.RowPtr(j0 + 1);
      const double* __restrict b2 = b.RowPtr(j0 + 2);
      const double* __restrict b3 = b.RowPtr(j0 + 3);
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      __m256d acc2 = _mm256_setzero_pd();
      __m256d acc3 = _mm256_setzero_pd();
      for (size_t k = 0; k < kv; k += 4) {
        const __m256d xv = _mm256_loadu_pd(arow + k);
        acc0 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(b0 + k), acc0);
        acc1 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(b1 + k), acc1);
        acc2 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(b2 + k), acc2);
        acc3 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(b3 + k), acc3);
      }
      orow[j0] = HsumTail(acc0, arow, b0, kv, kk);
      orow[j0 + 1] = HsumTail(acc1, arow, b1, kv, kk);
      orow[j0 + 2] = HsumTail(acc2, arow, b2, kv, kk);
      orow[j0 + 3] = HsumTail(acc3, arow, b3, kv, kk);
    }
    for (; j0 < n; ++j0) {
      const double* __restrict brow = b.RowPtr(j0);
      __m256d acc = _mm256_setzero_pd();
      for (size_t k = 0; k < kv; k += 4) {
        acc = _mm256_fmadd_pd(_mm256_loadu_pd(arow + k),
                              _mm256_loadu_pd(brow + k), acc);
      }
      orow[j0] = HsumTail(acc, arow, brow, kv, kk);
    }
  }
}

// ------------------------------------------------------------- GemmAT

template <bool kAccumulate>
void DenseAT(const Matrix& a, const Matrix& b, Matrix* out) {
  QCFE_CHECK(a.rows() == b.rows(), "GemmAT: a.rows() must equal b.rows()");
  QCFE_CHECK(out != &a && out != &b, "GemmAT: out must not alias an input");
  if (!kAccumulate) {
    out->ResetShapeUninitialized(a.cols(), b.cols());
  } else {
    QCFE_CHECK(out->rows() == a.cols() && out->cols() == b.cols(),
               "GemmATAccumulate: acc must be pre-shaped to a.cols x b.cols");
  }
  const size_t rows = a.rows();
  const size_t m = a.cols();
  const size_t n = b.cols();
  for (size_t i0 = 0; i0 < m; i0 += kMr) {
    const size_t mr = std::min(kMr, m - i0);
    size_t j0 = 0;
    for (; j0 + kNr <= n; j0 += kNr) {
      __m256d acc0[kMr];
      __m256d acc1[kMr];
      for (size_t ii = 0; ii < kMr; ++ii) {
        acc0[ii] = _mm256_setzero_pd();
        acc1[ii] = _mm256_setzero_pd();
      }
      for (size_t r = 0; r < rows; ++r) {
        const double* __restrict arow = a.RowPtr(r) + i0;
        const double* __restrict brow = b.RowPtr(r) + j0;
        bool any = false;
        for (size_t ii = 0; ii < mr; ++ii) any = any || arow[ii] != 0.0;
        if (!any) continue;  // fma(0, b, acc) == acc: skipping is bit-safe
        const __m256d bv0 = _mm256_loadu_pd(brow);
        const __m256d bv1 = _mm256_loadu_pd(brow + 4);
        for (size_t ii = 0; ii < mr; ++ii) {
          const __m256d av = _mm256_set1_pd(arow[ii]);
          acc0[ii] = _mm256_fmadd_pd(av, bv0, acc0[ii]);
          acc1[ii] = _mm256_fmadd_pd(av, bv1, acc1[ii]);
        }
      }
      for (size_t ii = 0; ii < mr; ++ii) {
        double* dst = out->RowPtr(i0 + ii) + j0;
        if (kAccumulate) {
          // One unfused add onto the destination after the full chain.
          _mm256_storeu_pd(dst,
                           _mm256_add_pd(_mm256_loadu_pd(dst), acc0[ii]));
          _mm256_storeu_pd(
              dst + 4, _mm256_add_pd(_mm256_loadu_pd(dst + 4), acc1[ii]));
        } else {
          _mm256_storeu_pd(dst, acc0[ii]);
          _mm256_storeu_pd(dst + 4, acc1[ii]);
        }
      }
    }
    for (; j0 + 4 <= n; j0 += 4) {
      __m256d acc[kMr];
      for (size_t ii = 0; ii < kMr; ++ii) acc[ii] = _mm256_setzero_pd();
      for (size_t r = 0; r < rows; ++r) {
        const double* __restrict arow = a.RowPtr(r) + i0;
        bool any = false;
        for (size_t ii = 0; ii < mr; ++ii) any = any || arow[ii] != 0.0;
        if (!any) continue;
        const __m256d bv = _mm256_loadu_pd(b.RowPtr(r) + j0);
        for (size_t ii = 0; ii < mr; ++ii) {
          acc[ii] = _mm256_fmadd_pd(_mm256_set1_pd(arow[ii]), bv, acc[ii]);
        }
      }
      for (size_t ii = 0; ii < mr; ++ii) {
        double* dst = out->RowPtr(i0 + ii) + j0;
        if (kAccumulate) {
          _mm256_storeu_pd(dst, _mm256_add_pd(_mm256_loadu_pd(dst), acc[ii]));
        } else {
          _mm256_storeu_pd(dst, acc[ii]);
        }
      }
    }
    for (; j0 < n; ++j0) {
      for (size_t ii = 0; ii < mr; ++ii) {
        double acc = 0.0;
        for (size_t r = 0; r < rows; ++r) {
          acc = std::fma(a.At(r, i0 + ii), b.At(r, j0), acc);
        }
        double* dst = &out->RowPtr(i0 + ii)[j0];
        if (kAccumulate) {
          *dst += acc;
        } else {
          *dst = acc;
        }
      }
    }
  }
}

void DenseATOverwrite(const Matrix& a, const Matrix& b, Matrix* out) {
  DenseAT<false>(a, b, out);
}

void DenseATAccumulate(const Matrix& a, const Matrix& b, Matrix* acc) {
  DenseAT<true>(a, b, acc);
}

/// Streaming zero-skip a^T * b (overwrite): identical per-element fma
/// chains to the panel form, accumulated in the output memory.
void StreamAT(const Matrix& a, const Matrix& b, Matrix* out) {
  QCFE_CHECK(a.rows() == b.rows(), "GemmAT: a.rows() must equal b.rows()");
  QCFE_CHECK(out != &a && out != &b, "GemmAT: out must not alias an input");
  out->ResetShape(a.cols(), b.cols());
  const size_t n = b.cols();
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* arow = a.RowPtr(r);
    const double* __restrict brow = b.RowPtr(r);
    for (size_t i = 0; i < a.cols(); ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* __restrict orow = out->RowPtr(i);
      const __m256d avv = _mm256_set1_pd(av);
      size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        const __m256d ov = _mm256_loadu_pd(orow + j);
        _mm256_storeu_pd(orow + j,
                         _mm256_fmadd_pd(avv, _mm256_loadu_pd(brow + j), ov));
      }
      for (; j < n; ++j) orow[j] = std::fma(av, brow[j], orow[j]);
    }
  }
}

void SparseTempATAccumulate(const Matrix& a, const Matrix& b, Matrix* acc) {
  thread_local Matrix tmp;
  StreamAT(a, b, &tmp);
  acc->Add(tmp);
}

void Rank1ATAccumulate(const Matrix& a, const Matrix& b, Matrix* acc) {
  const double* arow = a.RowPtr(0);
  const double* __restrict brow = b.RowPtr(0);
  const size_t m = a.cols();
  const size_t n = b.cols();
  for (size_t i = 0; i < m; ++i) {
    const double av = arow[i];
    if (av == 0.0) continue;
    double* __restrict dst = acc->RowPtr(i);
    const __m256d avv = _mm256_set1_pd(av);
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      // mul then unfused add: a single-term chain rounds like fma(a, b, 0),
      // and the destination add stays a separate rounding — exactly the
      // panel-accumulate semantics.
      const __m256d t = _mm256_mul_pd(avv, _mm256_loadu_pd(brow + j));
      _mm256_storeu_pd(dst + j, _mm256_add_pd(_mm256_loadu_pd(dst + j), t));
    }
    for (; j < n; ++j) dst[j] += av * brow[j];
  }
}

// --------------------------------------------------------- reductions

void ColSumAccumulateImpl(const Matrix& a, Matrix* acc) {
  const size_t n = a.cols();
  double* dst = acc->RowPtr(0);
  size_t c0 = 0;
  // Vertical (per-column) chains only — no cross-lane reduction, so this
  // is bit-identical to the scalar tier.
  for (; c0 + 4 <= n; c0 += 4) {
    __m256d sum = _mm256_setzero_pd();
    for (size_t r = 0; r < a.rows(); ++r) {
      sum = _mm256_add_pd(sum, _mm256_loadu_pd(a.RowPtr(r) + c0));
    }
    _mm256_storeu_pd(dst + c0, _mm256_add_pd(_mm256_loadu_pd(dst + c0), sum));
  }
  for (; c0 < n; ++c0) {
    double sum = 0.0;
    for (size_t r = 0; r < a.rows(); ++r) sum += a.RowPtr(r)[c0];
    dst[c0] += sum;
  }
}

// ---------------------------------------------------- optimizer steps

/// Elementwise Adam with explicit mul/add (never fma) and IEEE sqrt/div:
/// every lane operation is a single rounding, so the update is
/// bit-identical to the scalar tier's loop.
void AdamStepImpl(double* __restrict p, const double* __restrict g,
                  double* __restrict m, double* __restrict v, size_t n,
                  double lr, double beta1, double beta2, double eps,
                  double bc1, double bc2) {
  const __m256d b1 = _mm256_set1_pd(beta1);
  const __m256d omb1 = _mm256_set1_pd(1.0 - beta1);
  const __m256d b2 = _mm256_set1_pd(beta2);
  const __m256d omb2 = _mm256_set1_pd(1.0 - beta2);
  const __m256d vbc1 = _mm256_set1_pd(bc1);
  const __m256d vbc2 = _mm256_set1_pd(bc2);
  const __m256d vlr = _mm256_set1_pd(lr);
  const __m256d veps = _mm256_set1_pd(eps);
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256d gv = _mm256_loadu_pd(g + k);
    const __m256d mv =
        _mm256_add_pd(_mm256_mul_pd(b1, _mm256_loadu_pd(m + k)),
                      _mm256_mul_pd(omb1, gv));
    // Match the scalar association: ((1-beta2)*g)*g, not (1-beta2)*(g*g).
    const __m256d vv =
        _mm256_add_pd(_mm256_mul_pd(b2, _mm256_loadu_pd(v + k)),
                      _mm256_mul_pd(_mm256_mul_pd(omb2, gv), gv));
    _mm256_storeu_pd(m + k, mv);
    _mm256_storeu_pd(v + k, vv);
    const __m256d mhat = _mm256_div_pd(mv, vbc1);
    const __m256d vhat = _mm256_div_pd(vv, vbc2);
    const __m256d den = _mm256_add_pd(_mm256_sqrt_pd(vhat), veps);
    const __m256d q = _mm256_div_pd(_mm256_mul_pd(vlr, mhat), den);
    _mm256_storeu_pd(p + k, _mm256_sub_pd(_mm256_loadu_pd(p + k), q));
  }
  for (; k < n; ++k) {
    double gk = g[k];
    m[k] = beta1 * m[k] + (1.0 - beta1) * gk;
    v[k] = beta2 * v[k] + (1.0 - beta2) * gk * gk;
    double mhat = m[k] / bc1;
    double vhat = v[k] / bc2;
    p[k] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

void SgdStepImpl(double* __restrict p, const double* __restrict g,
                 double* __restrict v, size_t n, double lr, double momentum) {
  const __m256d vmo = _mm256_set1_pd(momentum);
  const __m256d vlr = _mm256_set1_pd(lr);
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256d vv =
        _mm256_sub_pd(_mm256_mul_pd(vmo, _mm256_loadu_pd(v + k)),
                      _mm256_mul_pd(vlr, _mm256_loadu_pd(g + k)));
    _mm256_storeu_pd(v + k, vv);
    _mm256_storeu_pd(p + k, _mm256_add_pd(_mm256_loadu_pd(p + k), vv));
  }
  for (; k < n; ++k) {
    v[k] = momentum * v[k] - lr * g[k];
    p[k] += v[k];
  }
}

}  // namespace

const KernelTable* Avx2Table() {
  static const KernelTable table = {
      DenseNNDispatch,       // dense_nn
      SparseNN,              // sparse_nn
      DenseBT,               // bt
      DenseATOverwrite,      // at_panel
      StreamAT,              // at_stream
      DenseATAccumulate,     // at_acc_panel
      SparseTempATAccumulate,  // at_acc_sparse
      Rank1ATAccumulate,     // at_acc_rank1
      ColSumAccumulateImpl,  // colsum_acc
      AdamStepImpl,          // adam_step
      SgdStepImpl,           // sgd_step
  };
  return &table;
}

}  // namespace internal
}  // namespace kernels
}  // namespace qcfe

#else  // !(__AVX2__ && __FMA__)

namespace qcfe {
namespace kernels {
namespace internal {

const KernelTable* Avx2Table() { return nullptr; }

}  // namespace internal
}  // namespace kernels
}  // namespace qcfe

#endif  // __AVX2__ && __FMA__
