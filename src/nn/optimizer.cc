#include "nn/optimizer.h"

#include <cassert>
#include <cmath>

#include "nn/kernels.h"

namespace qcfe {

void GradSink::InitLike(const std::vector<Matrix*>& grads) {
  if (grads_.size() != grads.size()) grads_.resize(grads.size());
  // ResetShape reuses each slot's allocation whenever the new shape fits,
  // so re-initialising a warm sink (every batch) is a pure zeroing pass.
  for (size_t i = 0; i < grads.size(); ++i) {
    grads_[i].ResetShape(grads[i]->rows(), grads[i]->cols());
  }
  slot_ptrs_.clear();
  slot_ptrs_.reserve(grads_.size());
  for (Matrix& g : grads_) slot_ptrs_.push_back(&g);
}

void GradSink::AddTo(const std::vector<Matrix*>& grads) const {
  assert(grads.size() == grads_.size());
  for (size_t i = 0; i < grads_.size(); ++i) grads[i]->Add(grads_[i]);
}

SgdOptimizer::SgdOptimizer(std::vector<Matrix*> params,
                           std::vector<Matrix*> grads, double lr,
                           double momentum)
    : Optimizer(std::move(params), std::move(grads)),
      lr_(lr),
      momentum_(momentum) {
  assert(params_.size() == grads_.size());
  for (Matrix* p : params_) velocity_.emplace_back(p->rows(), p->cols());
}

void SgdOptimizer::Step() {
  // The update runs in the active kernel ISA tier; lane arithmetic is
  // single-rounding only, so every tier produces bit-identical parameters.
  for (size_t i = 0; i < params_.size(); ++i) {
    kernels::SgdStep(params_[i], *grads_[i], &velocity_[i], lr_, momentum_);
  }
}

AdamOptimizer::AdamOptimizer(std::vector<Matrix*> params,
                             std::vector<Matrix*> grads, double lr,
                             double beta1, double beta2, double eps)
    : Optimizer(std::move(params), std::move(grads)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  assert(params_.size() == grads_.size());
  for (Matrix* p : params_) {
    m_.emplace_back(p->rows(), p->cols());
    v_.emplace_back(p->rows(), p->cols());
  }
}

void AdamOptimizer::Step() {
  if (clip_norm_ > 0.0) {
    double norm_sq = 0.0;
    for (const Matrix* g : grads_) {
      for (double v : g->data()) norm_sq += v * v;
    }
    double norm = std::sqrt(norm_sq);
    if (norm > clip_norm_) {
      double scale = clip_norm_ / norm;
      for (Matrix* g : grads_) {
        for (double& v : g->data()) v *= scale;
      }
    }
  }
  ++t_;
  double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  // The update runs in the active kernel ISA tier (sqrt and divide
  // included — lane arithmetic is IEEE-exact, so every tier produces
  // bit-identical parameters). The Step share of small-model training is
  // large enough that the vectorized tiers matter.
  for (size_t i = 0; i < params_.size(); ++i) {
    kernels::AdamStep(params_[i], *grads_[i], &m_[i], &v_[i], lr_, beta1_,
                      beta2_, eps_, bc1, bc2);
  }
}

}  // namespace qcfe
