#include "nn/optimizer.h"

#include <cassert>
#include <cmath>
#include <string>

#include "nn/kernels.h"
#include "nn/matrix_io.h"
#include "util/serialize.h"

namespace qcfe {

void GradSink::InitLike(const std::vector<Matrix*>& grads) {
  if (grads_.size() != grads.size()) grads_.resize(grads.size());
  // ResetShape reuses each slot's allocation whenever the new shape fits,
  // so re-initialising a warm sink (every batch) is a pure zeroing pass.
  for (size_t i = 0; i < grads.size(); ++i) {
    grads_[i].ResetShape(grads[i]->rows(), grads[i]->cols());
  }
  slot_ptrs_.clear();
  slot_ptrs_.reserve(grads_.size());
  for (Matrix& g : grads_) slot_ptrs_.push_back(&g);
}

void GradSink::AddTo(const std::vector<Matrix*>& grads) const {
  assert(grads.size() == grads_.size());
  for (size_t i = 0; i < grads_.size(); ++i) grads[i]->Add(grads_[i]);
}

SgdOptimizer::SgdOptimizer(std::vector<Matrix*> params,
                           std::vector<Matrix*> grads, double lr,
                           double momentum)
    : Optimizer(std::move(params), std::move(grads)),
      lr_(lr),
      momentum_(momentum) {
  assert(params_.size() == grads_.size());
  for (Matrix* p : params_) velocity_.emplace_back(p->rows(), p->cols());
}

void SgdOptimizer::Step() {
  // The update runs in the active kernel ISA tier; lane arithmetic is
  // single-rounding only, so every tier produces bit-identical parameters.
  for (size_t i = 0; i < params_.size(); ++i) {
    kernels::SgdStep(params_[i], *grads_[i], &velocity_[i], lr_, momentum_);
  }
}

AdamOptimizer::AdamOptimizer(std::vector<Matrix*> params,
                             std::vector<Matrix*> grads, double lr,
                             double beta1, double beta2, double eps)
    : Optimizer(std::move(params), std::move(grads)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  assert(params_.size() == grads_.size());
  for (Matrix* p : params_) {
    m_.emplace_back(p->rows(), p->cols());
    v_.emplace_back(p->rows(), p->cols());
  }
}

void AdamOptimizer::Step() {
  if (clip_norm_ > 0.0) {
    double norm_sq = 0.0;
    for (const Matrix* g : grads_) {
      for (double v : g->data()) norm_sq += v * v;
    }
    double norm = std::sqrt(norm_sq);
    if (norm > clip_norm_) {
      double scale = clip_norm_ / norm;
      for (Matrix* g : grads_) {
        for (double& v : g->data()) v *= scale;
      }
    }
  }
  ++t_;
  double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  // The update runs in the active kernel ISA tier (sqrt and divide
  // included — lane arithmetic is IEEE-exact, so every tier produces
  // bit-identical parameters). The Step share of small-model training is
  // large enough that the vectorized tiers matter.
  for (size_t i = 0; i < params_.size(); ++i) {
    kernels::AdamStep(params_[i], *grads_[i], &m_[i], &v_[i], lr_, beta1_,
                      beta2_, eps_, bc1, bc2);
  }
}

void AdamOptimizer::SaveState(ByteWriter* w) const {
  w->PutF64(lr_);
  w->PutF64(beta1_);
  w->PutF64(beta2_);
  w->PutF64(eps_);
  w->PutF64(clip_norm_);
  w->PutI64(t_);
  w->PutU64(m_.size());
  for (const Matrix& m : m_) WriteMatrix(m, w);
  for (const Matrix& v : v_) WriteMatrix(v, w);
}

Status AdamOptimizer::LoadState(ByteReader* r) {
  QCFE_RETURN_IF_ERROR(r->ReadF64(&lr_));
  QCFE_RETURN_IF_ERROR(r->ReadF64(&beta1_));
  QCFE_RETURN_IF_ERROR(r->ReadF64(&beta2_));
  QCFE_RETURN_IF_ERROR(r->ReadF64(&eps_));
  QCFE_RETURN_IF_ERROR(r->ReadF64(&clip_norm_));
  QCFE_RETURN_IF_ERROR(r->ReadI64(&t_));
  uint64_t slots = 0;
  QCFE_RETURN_IF_ERROR(r->ReadU64(&slots));
  if (slots != m_.size()) {
    return Status::FailedPrecondition(
        "adam state has " + std::to_string(slots) +
        " moment slots, this optimizer is bound to " +
        std::to_string(m_.size()) + " parameters");
  }
  for (size_t i = 0; i < m_.size(); ++i) {
    QCFE_RETURN_IF_ERROR(ReadMatrixInto(r, &m_[i]).WithContext(
        "adam first-moment slot " + std::to_string(i)));
  }
  for (size_t i = 0; i < v_.size(); ++i) {
    QCFE_RETURN_IF_ERROR(ReadMatrixInto(r, &v_[i]).WithContext(
        "adam second-moment slot " + std::to_string(i)));
  }
  return Status::OK();
}

}  // namespace qcfe
