#include "nn/optimizer.h"

#include <cassert>
#include <cmath>

namespace qcfe {

void GradSink::InitLike(const std::vector<Matrix*>& grads) {
  if (grads_.size() != grads.size()) {
    grads_.clear();
    grads_.reserve(grads.size());
    for (const Matrix* g : grads) grads_.emplace_back(g->rows(), g->cols());
  } else {
    for (size_t i = 0; i < grads.size(); ++i) {
      if (grads_[i].rows() == grads[i]->rows() &&
          grads_[i].cols() == grads[i]->cols()) {
        grads_[i].Fill(0.0);
      } else {
        grads_[i] = Matrix(grads[i]->rows(), grads[i]->cols());
      }
    }
  }
  slot_ptrs_.clear();
  slot_ptrs_.reserve(grads_.size());
  for (Matrix& g : grads_) slot_ptrs_.push_back(&g);
}

void GradSink::AddTo(const std::vector<Matrix*>& grads) const {
  assert(grads.size() == grads_.size());
  for (size_t i = 0; i < grads_.size(); ++i) grads[i]->Add(grads_[i]);
}

SgdOptimizer::SgdOptimizer(std::vector<Matrix*> params,
                           std::vector<Matrix*> grads, double lr,
                           double momentum)
    : Optimizer(std::move(params), std::move(grads)),
      lr_(lr),
      momentum_(momentum) {
  assert(params_.size() == grads_.size());
  for (Matrix* p : params_) velocity_.emplace_back(p->rows(), p->cols());
}

void SgdOptimizer::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Matrix& p = *params_[i];
    const Matrix& g = *grads_[i];
    Matrix& v = velocity_[i];
    for (size_t k = 0; k < p.data().size(); ++k) {
      v.data()[k] = momentum_ * v.data()[k] - lr_ * g.data()[k];
      p.data()[k] += v.data()[k];
    }
  }
}

AdamOptimizer::AdamOptimizer(std::vector<Matrix*> params,
                             std::vector<Matrix*> grads, double lr,
                             double beta1, double beta2, double eps)
    : Optimizer(std::move(params), std::move(grads)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  assert(params_.size() == grads_.size());
  for (Matrix* p : params_) {
    m_.emplace_back(p->rows(), p->cols());
    v_.emplace_back(p->rows(), p->cols());
  }
}

void AdamOptimizer::Step() {
  if (clip_norm_ > 0.0) {
    double norm_sq = 0.0;
    for (const Matrix* g : grads_) {
      for (double v : g->data()) norm_sq += v * v;
    }
    double norm = std::sqrt(norm_sq);
    if (norm > clip_norm_) {
      double scale = clip_norm_ / norm;
      for (Matrix* g : grads_) {
        for (double& v : g->data()) v *= scale;
      }
    }
  }
  ++t_;
  double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Matrix& p = *params_[i];
    const Matrix& g = *grads_[i];
    for (size_t k = 0; k < p.data().size(); ++k) {
      double gk = g.data()[k];
      m_[i].data()[k] = beta1_ * m_[i].data()[k] + (1.0 - beta1_) * gk;
      v_[i].data()[k] = beta2_ * v_[i].data()[k] + (1.0 - beta2_) * gk * gk;
      double mhat = m_[i].data()[k] / bc1;
      double vhat = v_[i].data()[k] / bc2;
      p.data()[k] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace qcfe
