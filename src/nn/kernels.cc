#include "nn/kernels.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "nn/kernels_internal.h"
#include "util/check.h"
#include "util/env_config.h"
#include "util/rng.h"

namespace qcfe {
namespace kernels {

namespace {

using internal::Epilogue;
using internal::KernelTable;

/// Initial mode honours QCFE_KERNEL_MODE (auto|reference|dense|sparse) so
/// deployments and benchmarks can pin a path without a rebuild.
int InitialMode() {
  const char* env = std::getenv("QCFE_KERNEL_MODE");
  if (env == nullptr) return static_cast<int>(KernelMode::kAuto);
  if (std::strcmp(env, "reference") == 0) {
    return static_cast<int>(KernelMode::kReference);
  }
  if (std::strcmp(env, "dense") == 0) {
    return static_cast<int>(KernelMode::kDense);
  }
  if (std::strcmp(env, "sparse") == 0) {
    return static_cast<int>(KernelMode::kSparse);
  }
  return static_cast<int>(KernelMode::kAuto);
}

std::atomic<int> g_mode{InitialMode()};

/// True when the running CPU executes `isa` (compile-in is checked
/// separately via the tier table pointers).
bool CpuSupportsIsa(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return true;
    case KernelIsa::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case KernelIsa::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

/// Initial ISA honours QCFE_KERNEL_ISA (scalar|avx2|neon|auto), clamping
/// unavailable pins to the scalar tier; unset/auto takes the best detected.
int InitialIsa() {
  const char* env = std::getenv("QCFE_KERNEL_ISA");
  KernelIsa isa;
  if (env == nullptr || std::strcmp(env, "auto") == 0) {
    isa = DetectKernelIsa();
  } else if (std::strcmp(env, "scalar") == 0) {
    isa = KernelIsa::kScalar;
  } else if (std::strcmp(env, "avx2") == 0) {
    isa = KernelIsa::kAvx2;
  } else if (std::strcmp(env, "neon") == 0) {
    isa = KernelIsa::kNeon;
  } else {
    isa = DetectKernelIsa();
  }
  if (!KernelIsaAvailable(isa)) isa = KernelIsa::kScalar;
  return static_cast<int>(isa);
}

std::atomic<int> g_isa{InitialIsa()};

/// The dispatch table for a tier (the tier must be available).
const KernelTable& TableFor(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kAvx2: {
      const KernelTable* t = internal::Avx2Table();
      QCFE_DCHECK(t != nullptr, "AVX2 tier selected but not compiled in");
      return *t;
    }
    case KernelIsa::kNeon: {
      const KernelTable* t = internal::NeonTable();
      QCFE_DCHECK(t != nullptr, "NEON tier selected but not compiled in");
      return *t;
    }
    case KernelIsa::kScalar:
      break;
  }
  return internal::ScalarTable();
}

const KernelTable& ActiveTable() { return TableFor(GetKernelIsa()); }

/// Compiled-default minimum row count before the kAuto NN dispatch
/// considers the blocked kernel (the pre-autotuner measured value).
constexpr size_t kDefaultDenseMinRows = 32;

KernelTuning DefaultTuning(KernelIsa isa) {
  KernelTuning t;
  t.isa = isa;
  t.dense_min_rows = kDefaultDenseMinRows;
  t.sparse_dispatch_threshold = kSparseDispatchThreshold;
  t.simd_gemm_speedup = 1.0;
  t.autotuned = false;
  return t;
}

bool AutotuneEnabled() {
  const char* env = std::getenv("QCFE_KERNEL_AUTOTUNE");
  return env == nullptr || std::strcmp(env, "0") != 0;
}

/// Deterministic probe input: Gaussian entries with an (approximately)
/// fixed fraction zeroed. Timing inputs only steer thresholds — dispatch
/// is bit-safe within a tier — so the Bernoulli approximation is fine.
Matrix ProbeMatrix(Rng* rng, size_t rows, size_t cols, double zero_fraction) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    double* dst = m.RowPtr(r);
    for (size_t c = 0; c < cols; ++c) {
      const double v = rng->Gaussian(0.0, 1.0);
      dst[c] = rng->Bernoulli(zero_fraction) ? 0.0 : v;
    }
  }
  return m;
}

/// Best-of-three nanoseconds per call (min filters scheduler noise).
template <typename Fn>
double BestNsPerCall(size_t iters, Fn&& fn) {
  double best_ns = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    WallTimer timer;
    for (size_t i = 0; i < iters; ++i) fn();
    const double ns = timer.Seconds() * 1e9 / static_cast<double>(iters);
    if (rep == 0 || ns < best_ns) best_ns = ns;
  }
  // Probe timings must stay strictly positive for SelectTuning's validity
  // checks; clamp pathological zero readings (coarse clocks).
  return best_ns > 0.0 ? best_ns : 1e-3;
}

/// Per-tier tunings, computed once per process on first use. Probing calls
/// the tier tables directly (never the dispatched entry points), so the
/// lazy initialisation cannot recurse into itself.
const std::array<KernelTuning, 3>& AllTunings() {
  static const std::array<KernelTuning, 3> tunings = [] {
    std::array<KernelTuning, 3> out{};
    const bool enabled = AutotuneEnabled();
    const KernelIsa all[] = {KernelIsa::kScalar, KernelIsa::kAvx2,
                             KernelIsa::kNeon};
    for (KernelIsa isa : all) {
      KernelTuning t = DefaultTuning(isa);
      if (enabled && KernelIsaAvailable(isa)) {
        t = SelectTuning(isa, MeasureProbes(isa));
      }
      out[static_cast<size_t>(isa)] = t;
    }
    return out;
  }();
  return tunings;
}

/// Picks the sparse row-skip path for the NN family: explicit mode pins
/// win; kAuto routes skinny batches to the streaming loop and samples the
/// left operand's density for real batches, against the autotuned
/// thresholds.
bool DispatchSparseNN(const Matrix& a) {
  switch (GetKernelMode()) {
    case KernelMode::kSparse:
      return true;
    case KernelMode::kDense:
      return false;
    default: {
      const KernelTuning& t = Tuning();
      return a.rows() < t.dense_min_rows ||
             ZeroFraction(a) >= t.sparse_dispatch_threshold;
    }
  }
}

/// Blocked vs streaming dispatch for the transposed-operand kernels: the
/// panel only pays once it amortises operand loads across >= kMr rows.
bool DispatchBlocked(size_t rows) {
  switch (GetKernelMode()) {
    case KernelMode::kSparse:
      return false;
    case KernelMode::kDense:
      return true;
    default:
      return rows >= internal::kMr;
  }
}

}  // namespace

void SetKernelMode(KernelMode mode) {
  g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

KernelMode GetKernelMode() {
  return static_cast<KernelMode>(g_mode.load(std::memory_order_relaxed));
}

bool KernelIsaAvailable(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return true;
    case KernelIsa::kAvx2:
      return internal::Avx2Table() != nullptr && CpuSupportsIsa(isa);
    case KernelIsa::kNeon:
      return internal::NeonTable() != nullptr && CpuSupportsIsa(isa);
  }
  return false;
}

KernelIsa DetectKernelIsa() {
  if (KernelIsaAvailable(KernelIsa::kAvx2)) return KernelIsa::kAvx2;
  if (KernelIsaAvailable(KernelIsa::kNeon)) return KernelIsa::kNeon;
  return KernelIsa::kScalar;
}

void SetKernelIsa(KernelIsa isa) {
  if (!KernelIsaAvailable(isa)) isa = KernelIsa::kScalar;
  g_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
}

KernelIsa GetKernelIsa() {
  return static_cast<KernelIsa>(g_isa.load(std::memory_order_relaxed));
}

const char* KernelIsaName(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return "scalar";
    case KernelIsa::kAvx2:
      return "avx2";
    case KernelIsa::kNeon:
      return "neon";
  }
  return "unknown";
}

double ZeroFraction(const Matrix& m) {
  const size_t cols = m.cols();
  const size_t n = m.rows() * cols;
  if (n == 0) return 0.0;
  // A small strided sample keeps the dispatch decision far cheaper than
  // the product it steers while staying deterministic for a given matrix.
  // Sampling walks logical indices (row, col), never the row padding —
  // the always-zero pad columns would otherwise inflate the fraction.
  constexpr size_t kMaxProbes = 256;
  const size_t stride = n > kMaxProbes ? n / kMaxProbes : 1;
  size_t zeros = 0;
  size_t probes = 0;
  for (size_t i = 0; i < n; i += stride) {
    zeros += m.At(i / cols, i % cols) == 0.0 ? 1 : 0;
    ++probes;
  }
  return static_cast<double>(zeros) / static_cast<double>(probes);
}

// ------------------------------------------------------------ autotuning

ProbeMeasurements MeasureProbes(KernelIsa isa) {
  QCFE_CHECK(KernelIsaAvailable(isa),
             "MeasureProbes: ISA tier is not available on this machine");
  const KernelTable& table = TableFor(isa);
  const KernelTable& scalar = internal::ScalarTable();
  ProbeMeasurements pm;
  Rng rng(0x9CFE5EEDULL);
  // Shapes mirror the deployed layer geometry: 48-wide hidden layers and
  // 66-wide plan-feature inputs (the bench_micro kernel shapes).
  constexpr size_t kHidden = 48;
  constexpr size_t kFeat = 66;
  Matrix out;

  // Dense-vs-streaming NN crossover over batch row counts, fully dense
  // input (the activation case the row threshold exists for).
  const Matrix bh = ProbeMatrix(&rng, kHidden, kHidden, 0.0);
  for (size_t rows : {1u, 2u, 4u, 8u, 16u, 24u, 32u, 48u, 64u}) {
    const Matrix a = ProbeMatrix(&rng, rows, kHidden, 0.0);
    const size_t iters = std::max<size_t>(2, 512 / rows);
    pm.rows.push_back(rows);
    pm.sparse_ns.push_back(
        BestNsPerCall(iters, [&] { table.sparse_nn(a, bh, &out); }));
    pm.dense_ns.push_back(BestNsPerCall(
        iters, [&] { table.dense_nn(a, bh, nullptr, &out, Epilogue::kNone); }));
  }

  // Sparse-vs-dense crossover over zero fractions at the plan-feature
  // shape (batched feature rows entering the first layer).
  const Matrix bf = ProbeMatrix(&rng, kFeat, kHidden, 0.0);
  for (double zf : {0.0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9}) {
    const Matrix a = ProbeMatrix(&rng, 64, kFeat, zf);
    pm.zero_fractions.push_back(zf);
    pm.sparse_zf_ns.push_back(
        BestNsPerCall(8, [&] { table.sparse_nn(a, bf, &out); }));
    pm.dense_zf_ns.push_back(BestNsPerCall(
        8, [&] { table.dense_nn(a, bf, nullptr, &out, Epilogue::kNone); }));
  }

  // Scalar-vs-tier dense GEMM on a real training batch shape. The scalar
  // tier's "speedup" over itself is 1.0 by definition, not something to
  // measure (two timings of the same loop only report noise).
  if (isa != KernelIsa::kScalar) {
    const Matrix ag = ProbeMatrix(&rng, 64, kHidden, 0.0);
    pm.scalar_gemm_ns = BestNsPerCall(
        8, [&] { scalar.dense_nn(ag, bh, nullptr, &out, Epilogue::kNone); });
    pm.simd_gemm_ns = BestNsPerCall(
        8, [&] { table.dense_nn(ag, bh, nullptr, &out, Epilogue::kNone); });
  }
  return pm;
}

KernelTuning SelectTuning(KernelIsa isa, const ProbeMeasurements& probes) {
  KernelTuning t = DefaultTuning(isa);
  const size_t nr = probes.rows.size();
  const size_t nz = probes.zero_fractions.size();
  const auto all_positive = [](const std::vector<double>& v) {
    for (double x : v) {
      if (!(x > 0.0)) return false;
    }
    return true;
  };
  bool ok = nr > 0 && probes.sparse_ns.size() == nr &&
            probes.dense_ns.size() == nr && nz > 0 &&
            probes.sparse_zf_ns.size() == nz && probes.dense_zf_ns.size() == nz;
  ok = ok && all_positive(probes.sparse_ns) && all_positive(probes.dense_ns) &&
       all_positive(probes.sparse_zf_ns) && all_positive(probes.dense_zf_ns);
  for (size_t i = 1; ok && i < nr; ++i) ok = probes.rows[i - 1] < probes.rows[i];
  for (size_t i = 1; ok && i < nz; ++i) {
    ok = probes.zero_fractions[i - 1] < probes.zero_fractions[i];
  }
  if (!ok) return t;  // compiled defaults, autotuned stays false

  // dense_min_rows: the smallest grid row count from which the dense panel
  // wins for the entire remaining suffix (suffix-wide so one noisy interior
  // point cannot open a dense window the neighbouring sizes contradict).
  size_t start = nr;
  while (start > 0 && probes.dense_ns[start - 1] <= probes.sparse_ns[start - 1]) {
    --start;
  }
  t.dense_min_rows = start == nr ? SIZE_MAX : probes.rows[start];

  // sparse_dispatch_threshold: midpoint between the last dense-winning and
  // the first suffix-wide sparse-winning zero fraction.
  size_t zstart = nz;
  while (zstart > 0 &&
         probes.sparse_zf_ns[zstart - 1] <= probes.dense_zf_ns[zstart - 1]) {
    --zstart;
  }
  if (zstart == nz) {
    t.sparse_dispatch_threshold = 1.5;  // sparse never won: disable
  } else if (zstart == 0) {
    t.sparse_dispatch_threshold = 0.0;  // sparse always won
  } else {
    t.sparse_dispatch_threshold = 0.5 * (probes.zero_fractions[zstart - 1] +
                                         probes.zero_fractions[zstart]);
  }

  if (probes.scalar_gemm_ns > 0.0 && probes.simd_gemm_ns > 0.0) {
    t.simd_gemm_speedup = probes.scalar_gemm_ns / probes.simd_gemm_ns;
  }
  t.autotuned = true;
  return t;
}

const KernelTuning& Tuning() {
  return AllTunings()[static_cast<size_t>(GetKernelIsa())];
}

void Autotune() {
  // Not a discarded status: AllTunings() returns the tuning array, and the
  // cast only forces its lazy magic-static micro-probe to run now.
  (void)AllTunings();
}

// ------------------------------------------------------------- products

void GemmNN(const Matrix& a, const Matrix& b, Matrix* out) {
  if (GetKernelMode() == KernelMode::kReference) {
    reference::GemmNN(a, b, out);
    return;
  }
  const KernelTable& t = ActiveTable();
  if (DispatchSparseNN(a)) {
    t.sparse_nn(a, b, out);
    return;
  }
  t.dense_nn(a, b, nullptr, out, Epilogue::kNone);
}

void GemmNNBias(const Matrix& a, const Matrix& b, const Matrix& bias,
                Matrix* out) {
  if (GetKernelMode() == KernelMode::kReference) {
    reference::GemmNNBias(a, b, bias, out);
    return;
  }
  const KernelTable& t = ActiveTable();
  if (DispatchSparseNN(a)) {
    t.sparse_nn(a, b, out);
    internal::BiasPass(bias, out);
    return;
  }
  t.dense_nn(a, b, &bias, out, Epilogue::kBias);
}

void GemmNNBiasRelu(const Matrix& a, const Matrix& b, const Matrix& bias,
                    Matrix* out) {
  if (GetKernelMode() == KernelMode::kReference) {
    reference::GemmNNBiasRelu(a, b, bias, out);
    return;
  }
  const KernelTable& t = ActiveTable();
  if (DispatchSparseNN(a)) {
    t.sparse_nn(a, b, out);
    internal::BiasPass(bias, out);
    internal::ReluPass(out);
    return;
  }
  t.dense_nn(a, b, &bias, out, Epilogue::kBiasRelu);
}

void GemmBT(const Matrix& a, const Matrix& b, Matrix* out) {
  // The streamed multi-chain kernel beats the one-dot-at-a-time reference
  // at every row count (the chains hide FMA latency even for a single
  // a-row), so BT never dispatches by shape — only the reference pin
  // replays the historical loop.
  if (GetKernelMode() == KernelMode::kReference) {
    reference::GemmBT(a, b, out);
    return;
  }
  ActiveTable().bt(a, b, out);
}

void GemmAT(const Matrix& a, const Matrix& b, Matrix* out) {
  if (GetKernelMode() == KernelMode::kReference) {
    reference::GemmAT(a, b, out);
    return;
  }
  const KernelTable& t = ActiveTable();
  if (!DispatchBlocked(a.rows())) {
    t.at_stream(a, b, out);
    return;
  }
  t.at_panel(a, b, out);
}

void GemmATAccumulate(const Matrix& a, const Matrix& b, Matrix* acc) {
  QCFE_CHECK(a.rows() == b.rows(), "GemmATAccumulate: row-count mismatch");
  QCFE_CHECK(acc->rows() == a.cols() && acc->cols() == b.cols(),
             "GemmATAccumulate: acc must be pre-shaped to a.cols x b.cols");
  const KernelTable& t = ActiveTable();
  switch (GetKernelMode()) {
    case KernelMode::kReference:
      reference::GemmATAccumulate(a, b, acc);
      return;
    case KernelMode::kDense:
      t.at_acc_panel(a, b, acc);
      return;
    case KernelMode::kSparse:
      if (a.rows() == 1) {
        t.at_acc_rank1(a, b, acc);
      } else {
        t.at_acc_sparse(a, b, acc);
      }
      return;
    case KernelMode::kAuto:
      break;
  }
  // Rank-1 contractions (per-node training rows) have a single term per
  // output element, so they accumulate straight into the sink row-sparsely.
  // Wider contractions keep the full-sum-then-add chains either through the
  // register panel (dense inputs) or through a thread-local temporary whose
  // zero-skip walk wins on one-hot feature inputs.
  if (a.rows() == 1) {
    t.at_acc_rank1(a, b, acc);
    return;
  }
  if (ZeroFraction(a) >= Tuning().sparse_dispatch_threshold) {
    t.at_acc_sparse(a, b, acc);
    return;
  }
  t.at_acc_panel(a, b, acc);
}

void ColSumAccumulate(const Matrix& a, Matrix* acc) {
  QCFE_CHECK(acc->rows() == 1 && acc->cols() == a.cols(),
             "ColSumAccumulate: acc must be a pre-shaped 1 x a.cols row");
  if (GetKernelMode() == KernelMode::kReference) {
    reference::ColSumAccumulate(a, acc);
    return;
  }
  ActiveTable().colsum_acc(a, acc);
}

// ------------------------------------------------------------ epilogues

void ReluForward(const Matrix& in, Matrix* out) {
  if (out != &in) out->ResetShapeUninitialized(in.rows(), in.cols());
  // Flat over the physical buffer: relu(0) == 0 preserves the pad zeros.
  const double* src = in.data().data();
  double* dst = out->data().data();
  for (size_t i = 0; i < in.size(); ++i) dst[i] = src[i] > 0.0 ? src[i] : 0.0;
}

void ReluMaskBackward(const Matrix& grad_out, const Matrix& pre_activation,
                      Matrix* grad_in) {
  QCFE_CHECK(grad_out.rows() == pre_activation.rows() &&
                 grad_out.cols() == pre_activation.cols(),
             "ReluMaskBackward: gradient and pre-activation shapes differ");
  if (grad_in != &grad_out) {
    grad_in->ResetShapeUninitialized(grad_out.rows(), grad_out.cols());
  }
  // Flat: pad pre-activations are 0 (<= 0), so pad gradients stay 0.
  const double* src = grad_out.data().data();
  const double* pre = pre_activation.data().data();
  double* dst = grad_in->data().data();
  for (size_t i = 0; i < grad_out.size(); ++i) {
    dst[i] = pre[i] <= 0.0 ? 0.0 : src[i];
  }
}

// ------------------------------------------------------- optimizer steps

void AdamStep(Matrix* p, const Matrix& g, Matrix* m, Matrix* v, double lr,
              double beta1, double beta2, double eps, double bc1, double bc2) {
  QCFE_CHECK(p->rows() == g.rows() && p->cols() == g.cols() &&
                 m->rows() == g.rows() && m->cols() == g.cols() &&
                 v->rows() == g.rows() && v->cols() == g.cols(),
             "AdamStep: parameter/gradient/state shapes must match");
  // Flat over the physical buffer: every operand's pad columns are zero
  // and an Adam update of all-zero state/gradient is exactly zero, so the
  // layout invariant survives.
  ActiveTable().adam_step(p->data().data(), g.data().data(), m->data().data(),
                          v->data().data(), p->size(), lr, beta1, beta2, eps,
                          bc1, bc2);
}

void SgdStep(Matrix* p, const Matrix& g, Matrix* v, double lr,
             double momentum) {
  QCFE_CHECK(p->rows() == g.rows() && p->cols() == g.cols() &&
                 v->rows() == g.rows() && v->cols() == g.cols(),
             "SgdStep: parameter/gradient/velocity shapes must match");
  ActiveTable().sgd_step(p->data().data(), g.data().data(), v->data().data(),
                         p->size(), lr, momentum);
}

// ------------------------------------------------------------------ simd

namespace simd {

void GemmNN(const Matrix& a, const Matrix& b, Matrix* out) {
  ActiveTable().dense_nn(a, b, nullptr, out, Epilogue::kNone);
}

void GemmNNBias(const Matrix& a, const Matrix& b, const Matrix& bias,
                Matrix* out) {
  ActiveTable().dense_nn(a, b, &bias, out, Epilogue::kBias);
}

void GemmNNBiasRelu(const Matrix& a, const Matrix& b, const Matrix& bias,
                    Matrix* out) {
  ActiveTable().dense_nn(a, b, &bias, out, Epilogue::kBiasRelu);
}

void GemmBT(const Matrix& a, const Matrix& b, Matrix* out) {
  ActiveTable().bt(a, b, out);
}

void GemmAT(const Matrix& a, const Matrix& b, Matrix* out) {
  ActiveTable().at_panel(a, b, out);
}

void GemmATAccumulate(const Matrix& a, const Matrix& b, Matrix* acc) {
  QCFE_CHECK(a.rows() == b.rows(), "GemmATAccumulate: row-count mismatch");
  QCFE_CHECK(acc->rows() == a.cols() && acc->cols() == b.cols(),
             "GemmATAccumulate: acc must be pre-shaped to a.cols x b.cols");
  ActiveTable().at_acc_panel(a, b, acc);
}

void ColSumAccumulate(const Matrix& a, Matrix* acc) {
  QCFE_CHECK(acc->rows() == 1 && acc->cols() == a.cols(),
             "ColSumAccumulate: acc must be a pre-shaped 1 x a.cols row");
  ActiveTable().colsum_acc(a, acc);
}

}  // namespace simd

}  // namespace kernels
}  // namespace qcfe
