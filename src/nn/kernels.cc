#include "nn/kernels.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/check.h"

namespace qcfe {
namespace kernels {

namespace {

/// Initial mode honours QCFE_KERNEL_MODE (auto|reference|dense|sparse) so
/// deployments and benchmarks can pin a path without a rebuild.
int InitialMode() {
  const char* env = std::getenv("QCFE_KERNEL_MODE");
  if (env == nullptr) return static_cast<int>(KernelMode::kAuto);
  if (std::strcmp(env, "reference") == 0) {
    return static_cast<int>(KernelMode::kReference);
  }
  if (std::strcmp(env, "dense") == 0) {
    return static_cast<int>(KernelMode::kDense);
  }
  if (std::strcmp(env, "sparse") == 0) {
    return static_cast<int>(KernelMode::kSparse);
  }
  return static_cast<int>(KernelMode::kAuto);
}

std::atomic<int> g_mode{InitialMode()};

/// Register-panel sizes: a kMr x kNr output tile is held in registers while
/// the contraction dimension streams past. 4x8 doubles fills the vector
/// register budget on AVX2-class hardware without spilling and still fits
/// comfortably on anything narrower.
constexpr size_t kMr = 4;
constexpr size_t kNr = 8;

/// Epilogue selector for the NN-family kernels.
enum class Epilogue { kNone, kBias, kBiasRelu };

/// The historical sparse row-skip product: i-k-j order, streaming over
/// contiguous rows of b, skipping zero entries of a. Accumulates in the
/// output memory (zero-seeded, ascending k per element). Cost is
/// proportional to the non-zeros of a, which wins on plan feature rows.
void SparseNN(const Matrix& a, const Matrix& b, Matrix* out) {
  QCFE_CHECK(a.cols() == b.rows(), "GemmNN: a.cols() must equal b.rows()");
  QCFE_CHECK(out != &a && out != &b, "GemmNN: out must not alias an input");
  out->ResetShape(a.rows(), b.cols());
  const size_t m = a.rows();
  const size_t kk = a.cols();
  const size_t n = b.cols();
  for (size_t i = 0; i < m; ++i) {
    const double* arow = a.RowPtr(i);
    double* __restrict orow = out->RowPtr(i);
    for (size_t k = 0; k < kk; ++k) {
      double av = arow[k];
      if (av == 0.0) continue;
      const double* __restrict brow = b.RowPtr(k);
      for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

/// Separate bias / ReLU passes for paths that accumulate in memory (the
/// sparse product and the reference replay): identical per-element
/// arithmetic to the fused epilogues.
void BiasPass(const Matrix& bias, Matrix* out) {
  QCFE_CHECK(bias.rows() == 1 && bias.cols() == out->cols(),
             "bias must be a 1 x out-cols row vector");
  const double* src = bias.RowPtr(0);
  for (size_t r = 0; r < out->rows(); ++r) {
    double* dst = out->RowPtr(r);
    for (size_t c = 0; c < out->cols(); ++c) dst[c] += src[c];
  }
}

void ReluPass(Matrix* out) {
  for (double& x : out->data()) x = x > 0.0 ? x : 0.0;
}

/// Register-blocked dense product with optional fused bias / bias+ReLU
/// epilogue. Every output element owns one accumulator, zero-seeded,
/// streaming k in ascending order — the same addition chain as the sparse
/// path (zero products cannot change the accumulator bits), so dispatch
/// never changes results. The fixed-trip full-panel inner loop is what the
/// compiler vectorises; ragged edges take the bounded generic loop.
template <Epilogue kEpilogue>
void DenseNN(const Matrix& a, const Matrix& b, const Matrix* bias,
             Matrix* out) {
  QCFE_CHECK(a.cols() == b.rows(), "GemmNN: a.cols() must equal b.rows()");
  QCFE_CHECK(out != &a && out != &b, "GemmNN: out must not alias an input");
  QCFE_DCHECK(kEpilogue == Epilogue::kNone ||
                  (bias != nullptr && bias->rows() == 1 &&
                   bias->cols() == b.cols()),
              "fused epilogue requires a 1 x n bias row");
  out->ResetShapeUninitialized(a.rows(), b.cols());
  const size_t m = a.rows();
  const size_t kk = a.cols();
  const size_t n = b.cols();
  const double* __restrict ap = a.data().data();
  const double* __restrict bp = b.data().data();
  const double* biasp =
      kEpilogue == Epilogue::kNone ? nullptr : bias->RowPtr(0);
  for (size_t i0 = 0; i0 < m; i0 += kMr) {
    const size_t mr = std::min(kMr, m - i0);
    for (size_t j0 = 0; j0 < n; j0 += kNr) {
      const size_t nr = std::min(kNr, n - j0);
      double acc[kMr][kNr] = {{0.0}};
      if (mr == kMr && nr == kNr) {
        for (size_t k = 0; k < kk; ++k) {
          const double* __restrict brow = bp + k * n + j0;
          for (size_t ii = 0; ii < kMr; ++ii) {
            const double av = ap[(i0 + ii) * kk + k];
            for (size_t jj = 0; jj < kNr; ++jj) acc[ii][jj] += av * brow[jj];
          }
        }
      } else {
        for (size_t k = 0; k < kk; ++k) {
          const double* __restrict brow = bp + k * n + j0;
          for (size_t ii = 0; ii < mr; ++ii) {
            const double av = ap[(i0 + ii) * kk + k];
            for (size_t jj = 0; jj < nr; ++jj) acc[ii][jj] += av * brow[jj];
          }
        }
      }
      for (size_t ii = 0; ii < mr; ++ii) {
        double* dst = out->RowPtr(i0 + ii) + j0;
        for (size_t jj = 0; jj < nr; ++jj) {
          double v = acc[ii][jj];
          if (kEpilogue != Epilogue::kNone) v += biasp[j0 + jj];
          if (kEpilogue == Epilogue::kBiasRelu) v = v > 0.0 ? v : 0.0;
          dst[jj] = v;
        }
      }
    }
  }
}

/// Register-blocked a^T * b: an (a.cols x b.cols) output panel accumulates
/// while the shared row dimension streams past; rows whose a-panel entries
/// are all exactly zero are skipped (their products are ±0.0 and cannot
/// change the accumulators). With accumulate=true the finished panel is
/// added onto the destination in one pass — the register-resident
/// replacement for "materialise a^T * b, then Add()".
template <bool kAccumulate>
void DenseAT(const Matrix& a, const Matrix& b, Matrix* out) {
  QCFE_CHECK(a.rows() == b.rows(), "GemmAT: a.rows() must equal b.rows()");
  QCFE_CHECK(out != &a && out != &b, "GemmAT: out must not alias an input");
  if (!kAccumulate) {
    out->ResetShapeUninitialized(a.cols(), b.cols());
  } else {
    QCFE_CHECK(out->rows() == a.cols() && out->cols() == b.cols(),
               "GemmATAccumulate: acc must be pre-shaped to a.cols x b.cols");
  }
  const size_t rows = a.rows();
  const size_t m = a.cols();
  const size_t n = b.cols();
  for (size_t i0 = 0; i0 < m; i0 += kMr) {
    const size_t mr = std::min(kMr, m - i0);
    for (size_t j0 = 0; j0 < n; j0 += kNr) {
      const size_t nr = std::min(kNr, n - j0);
      double acc[kMr][kNr] = {{0.0}};
      if (mr == kMr && nr == kNr) {
        // Fixed trip counts keep the accumulator panel in registers.
        for (size_t r = 0; r < rows; ++r) {
          const double* __restrict arow = a.RowPtr(r) + i0;
          const double* __restrict brow = b.RowPtr(r) + j0;
          double av[kMr];
          bool any = false;
          for (size_t ii = 0; ii < kMr; ++ii) {
            av[ii] = arow[ii];
            any = any || av[ii] != 0.0;
          }
          if (!any) continue;
          for (size_t ii = 0; ii < kMr; ++ii) {
            for (size_t jj = 0; jj < kNr; ++jj) {
              acc[ii][jj] += av[ii] * brow[jj];
            }
          }
        }
      } else {
        for (size_t r = 0; r < rows; ++r) {
          const double* __restrict arow = a.RowPtr(r) + i0;
          const double* __restrict brow = b.RowPtr(r) + j0;
          for (size_t ii = 0; ii < mr; ++ii) {
            const double av = arow[ii];
            if (av == 0.0) continue;
            for (size_t jj = 0; jj < nr; ++jj) acc[ii][jj] += av * brow[jj];
          }
        }
      }
      for (size_t ii = 0; ii < mr; ++ii) {
        double* dst = out->RowPtr(i0 + ii) + j0;
        for (size_t jj = 0; jj < nr; ++jj) {
          if (kAccumulate) {
            dst[jj] += acc[ii][jj];
          } else {
            dst[jj] = acc[ii][jj];
          }
        }
      }
    }
  }
}

/// Sparse-aware a^T * b accumulate for multi-row contractions: replays the
/// historical "zero-skip product into a temporary, then Add()" chains with
/// a thread-local temporary, so warm steady-state calls never allocate.
/// The zero-skip makes cost proportional to a's non-zeros — the winning
/// shape for one-hot feature inputs — while the full-sum-then-add order
/// keeps results bit-identical to the reference.
void SparseTempATAccumulate(const Matrix& a, const Matrix& b, Matrix* acc) {
  thread_local Matrix tmp;
  tmp.ResetShape(a.cols(), b.cols());
  const size_t rows = a.rows();
  const size_t n = b.cols();
  for (size_t r = 0; r < rows; ++r) {
    const double* arow = a.RowPtr(r);
    const double* __restrict brow = b.RowPtr(r);
    for (size_t i = 0; i < a.cols(); ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* __restrict trow = tmp.RowPtr(i);
      for (size_t j = 0; j < n; ++j) trow[j] += av * brow[j];
    }
  }
  acc->Add(tmp);
}

/// Register-blocked a * b^T: for each row of a, kNr dot products build
/// concurrently — kNr independent ascending-k accumulator chains (the
/// reference loop's exact chains, but with the FMA-latency serialisation of
/// a lone dot product hidden behind kNr-way ILP, and each a-row's streamed
/// read amortised over kNr b-rows).
void DenseBT(const Matrix& a, const Matrix& b, Matrix* out) {
  QCFE_CHECK(a.cols() == b.cols(), "GemmBT: a.cols() must equal b.cols()");
  QCFE_CHECK(out != &a && out != &b, "GemmBT: out must not alias an input");
  out->ResetShapeUninitialized(a.rows(), b.rows());
  const size_t m = a.rows();
  const size_t n = b.rows();
  const size_t kk = a.cols();
  for (size_t i = 0; i < m; ++i) {
    const double* __restrict arow = a.RowPtr(i);
    double* __restrict orow = out->RowPtr(i);
    size_t j0 = 0;
    for (; j0 + kNr <= n; j0 += kNr) {
      const double* __restrict bp[kNr];
      for (size_t jj = 0; jj < kNr; ++jj) bp[jj] = b.RowPtr(j0 + jj);
      double acc[kNr] = {0.0};
      for (size_t k = 0; k < kk; ++k) {
        const double av = arow[k];
        for (size_t jj = 0; jj < kNr; ++jj) acc[jj] += av * bp[jj][k];
      }
      for (size_t jj = 0; jj < kNr; ++jj) orow[j0 + jj] = acc[jj];
    }
    for (; j0 < n; ++j0) {
      const double* __restrict brow = b.RowPtr(j0);
      double acc = 0.0;
      for (size_t k = 0; k < kk; ++k) acc += arow[k] * brow[k];
      orow[j0] = acc;
    }
  }
}

/// Rank-1 a^T * b accumulate (a and b both single rows): dst(i, :) +=
/// a(0, i) * b(0, :), skipping zero a entries. With one contraction term
/// per element, "sum in a register, then add" and "add the product" are
/// the same single addition, so this stays bit-identical to the reference
/// temporary+Add — while touching only the rows a actually activates
/// (plan-structured training backprops one node row at a time, so this is
/// the dW kernel QPPNet runs almost exclusively).
void Rank1ATAccumulate(const Matrix& a, const Matrix& b, Matrix* acc) {
  const double* arow = a.RowPtr(0);
  const double* __restrict brow = b.RowPtr(0);
  const size_t m = a.cols();
  const size_t n = b.cols();
  for (size_t i = 0; i < m; ++i) {
    const double av = arow[i];
    if (av == 0.0) continue;
    double* __restrict dst = acc->RowPtr(i);
    for (size_t j = 0; j < n; ++j) dst[j] += av * brow[j];
  }
}

/// Minimum row count before the kAuto NN dispatch considers the blocked
/// kernel: below this the panel's per-tile b re-reads and ragged tails eat
/// the register-reuse win on real layer shapes (measured on QPPNet wave
/// buckets), so skinny batches keep the streaming loop.
constexpr size_t kDenseMinRows = 32;

/// Picks the sparse row-skip path for the NN family: explicit mode pins
/// win; kAuto routes skinny batches to the streaming loop and samples the
/// left operand's density for real batches.
bool DispatchSparseNN(const Matrix& a) {
  switch (GetKernelMode()) {
    case KernelMode::kSparse:
      return true;
    case KernelMode::kDense:
      return false;
    default:
      return a.rows() < kDenseMinRows ||
             ZeroFraction(a) >= kSparseDispatchThreshold;
  }
}

/// Blocked vs streaming dispatch for the transposed-operand kernels: the
/// panel only pays once it amortises operand loads across >= kMr rows.
bool DispatchBlocked(size_t rows) {
  switch (GetKernelMode()) {
    case KernelMode::kSparse:
      return false;
    case KernelMode::kDense:
      return true;
    default:
      return rows >= kMr;
  }
}

}  // namespace

void SetKernelMode(KernelMode mode) {
  g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

KernelMode GetKernelMode() {
  return static_cast<KernelMode>(g_mode.load(std::memory_order_relaxed));
}

double ZeroFraction(const Matrix& m) {
  const std::vector<double>& d = m.data();
  const size_t n = d.size();
  if (n == 0) return 0.0;
  // A small strided sample keeps the dispatch decision far cheaper than
  // the product it steers while staying deterministic for a given matrix.
  constexpr size_t kMaxProbes = 256;
  const size_t stride = n > kMaxProbes ? n / kMaxProbes : 1;
  size_t zeros = 0;
  size_t probes = 0;
  for (size_t i = 0; i < n; i += stride) {
    zeros += d[i] == 0.0 ? 1 : 0;
    ++probes;
  }
  return static_cast<double>(zeros) / static_cast<double>(probes);
}

void GemmNN(const Matrix& a, const Matrix& b, Matrix* out) {
  if (GetKernelMode() == KernelMode::kReference || DispatchSparseNN(a)) {
    SparseNN(a, b, out);
    return;
  }
  DenseNN<Epilogue::kNone>(a, b, nullptr, out);
}

void GemmNNBias(const Matrix& a, const Matrix& b, const Matrix& bias,
                Matrix* out) {
  if (GetKernelMode() == KernelMode::kReference || DispatchSparseNN(a)) {
    SparseNN(a, b, out);
    BiasPass(bias, out);
    return;
  }
  DenseNN<Epilogue::kBias>(a, b, &bias, out);
}

void GemmNNBiasRelu(const Matrix& a, const Matrix& b, const Matrix& bias,
                    Matrix* out) {
  if (GetKernelMode() == KernelMode::kReference || DispatchSparseNN(a)) {
    SparseNN(a, b, out);
    BiasPass(bias, out);
    ReluPass(out);
    return;
  }
  DenseNN<Epilogue::kBiasRelu>(a, b, &bias, out);
}

void GemmBT(const Matrix& a, const Matrix& b, Matrix* out) {
  // The streamed kNr-chain kernel beats the one-dot-at-a-time reference at
  // every row count (the chains hide FMA latency even for a single a-row),
  // so BT never dispatches by shape — only the reference pin replays the
  // historical loop.
  if (GetKernelMode() == KernelMode::kReference) {
    reference::GemmBT(a, b, out);
    return;
  }
  DenseBT(a, b, out);
}

void GemmAT(const Matrix& a, const Matrix& b, Matrix* out) {
  if (GetKernelMode() == KernelMode::kReference || !DispatchBlocked(a.rows())) {
    reference::GemmAT(a, b, out);
    return;
  }
  DenseAT<false>(a, b, out);
}

void GemmATAccumulate(const Matrix& a, const Matrix& b, Matrix* acc) {
  QCFE_CHECK(a.rows() == b.rows(), "GemmATAccumulate: row-count mismatch");
  QCFE_CHECK(acc->rows() == a.cols() && acc->cols() == b.cols(),
             "GemmATAccumulate: acc must be pre-shaped to a.cols x b.cols");
  switch (GetKernelMode()) {
    case KernelMode::kReference:
      reference::GemmATAccumulate(a, b, acc);
      return;
    case KernelMode::kDense:
      DenseAT<true>(a, b, acc);
      return;
    case KernelMode::kSparse:
      if (a.rows() == 1) {
        Rank1ATAccumulate(a, b, acc);
      } else {
        SparseTempATAccumulate(a, b, acc);
      }
      return;
    case KernelMode::kAuto:
      break;
  }
  // Rank-1 contractions (per-node training rows) have a single term per
  // output element, so they accumulate straight into the sink row-sparsely.
  // Wider contractions keep the full-sum-then-add chains either through the
  // register panel (dense inputs) or through a thread-local temporary whose
  // zero-skip walk wins on one-hot feature inputs.
  if (a.rows() == 1) {
    Rank1ATAccumulate(a, b, acc);
    return;
  }
  if (ZeroFraction(a) >= kSparseDispatchThreshold) {
    SparseTempATAccumulate(a, b, acc);
    return;
  }
  DenseAT<true>(a, b, acc);
}

void ColSumAccumulate(const Matrix& a, Matrix* acc) {
  QCFE_CHECK(acc->rows() == 1 && acc->cols() == a.cols(),
             "ColSumAccumulate: acc must be a pre-shaped 1 x a.cols row");
  if (GetKernelMode() == KernelMode::kReference) {
    reference::ColSumAccumulate(a, acc);
    return;
  }
  // Column-blocked stack buffer: each column's sum is built zero-seeded in
  // ascending row order, then added to the destination once — the exact
  // "ColSum() then Add()" chains without the temporary matrix.
  constexpr size_t kCb = 256;
  const size_t n = a.cols();
  double buf[kCb];
  for (size_t c0 = 0; c0 < n; c0 += kCb) {
    const size_t cb = std::min(kCb, n - c0);
    std::fill(buf, buf + cb, 0.0);
    for (size_t r = 0; r < a.rows(); ++r) {
      const double* __restrict src = a.RowPtr(r) + c0;
      for (size_t c = 0; c < cb; ++c) buf[c] += src[c];
    }
    double* dst = acc->RowPtr(0) + c0;
    for (size_t c = 0; c < cb; ++c) dst[c] += buf[c];
  }
}

void ReluForward(const Matrix& in, Matrix* out) {
  if (out != &in) out->ResetShapeUninitialized(in.rows(), in.cols());
  const double* src = in.data().data();
  double* dst = out->data().data();
  for (size_t i = 0; i < in.size(); ++i) dst[i] = src[i] > 0.0 ? src[i] : 0.0;
}

void ReluMaskBackward(const Matrix& grad_out, const Matrix& pre_activation,
                      Matrix* grad_in) {
  QCFE_CHECK(grad_out.rows() == pre_activation.rows() &&
                 grad_out.cols() == pre_activation.cols(),
             "ReluMaskBackward: gradient and pre-activation shapes differ");
  if (grad_in != &grad_out) {
    grad_in->ResetShapeUninitialized(grad_out.rows(), grad_out.cols());
  }
  const double* src = grad_out.data().data();
  const double* pre = pre_activation.data().data();
  double* dst = grad_in->data().data();
  for (size_t i = 0; i < grad_out.size(); ++i) {
    dst[i] = pre[i] <= 0.0 ? 0.0 : src[i];
  }
}

namespace reference {

void GemmNN(const Matrix& a, const Matrix& b, Matrix* out) {
  SparseNN(a, b, out);
}

void GemmNNBias(const Matrix& a, const Matrix& b, const Matrix& bias,
                Matrix* out) {
  SparseNN(a, b, out);
  BiasPass(bias, out);
}

void GemmNNBiasRelu(const Matrix& a, const Matrix& b, const Matrix& bias,
                    Matrix* out) {
  SparseNN(a, b, out);
  BiasPass(bias, out);
  ReluPass(out);
}

void GemmBT(const Matrix& a, const Matrix& b, Matrix* out) {
  QCFE_CHECK(a.cols() == b.cols(), "GemmBT: a.cols() must equal b.cols()");
  out->ResetShape(a.rows(), b.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.RowPtr(i);
    double* orow = out->RowPtr(i);
    for (size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.RowPtr(j);
      double acc = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      orow[j] = acc;
    }
  }
}

void GemmAT(const Matrix& a, const Matrix& b, Matrix* out) {
  QCFE_CHECK(a.rows() == b.rows(), "GemmAT: a.rows() must equal b.rows()");
  out->ResetShape(a.cols(), b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* arow = a.RowPtr(r);
    const double* brow = b.RowPtr(r);
    for (size_t i = 0; i < a.cols(); ++i) {
      double av = arow[i];
      if (av == 0.0) continue;
      double* orow = out->RowPtr(i);
      for (size_t j = 0; j < b.cols(); ++j) orow[j] += av * brow[j];
    }
  }
}

void GemmATAccumulate(const Matrix& a, const Matrix& b, Matrix* acc) {
  // The historical path, temporary included: parity tests and the
  // before/after benchmark both rely on replaying it exactly.
  Matrix tmp;
  GemmAT(a, b, &tmp);
  acc->Add(tmp);
}

void ColSumAccumulate(const Matrix& a, Matrix* acc) {
  acc->Add(a.ColSum());
}

}  // namespace reference

}  // namespace kernels
}  // namespace qcfe
