/// \file kernels_scalar.cc
/// The bit-exact scalar kernel tier, plus the historical reference loops.
/// Every accumulation here is a plain mul-then-add chain in ascending
/// contraction order (the determinism contract in kernels.h); this
/// translation unit is compiled with -ffp-contract=off so the compiler can
/// never fuse those chains into FMAs behind the contract's back. The SIMD
/// tiers (kernels_simd_*.cc) are gated against this tier at a documented
/// tolerance; the scalar tier itself is gated against `reference` bit for
/// bit.

#include <algorithm>
#include <cmath>

#include "nn/kernels.h"
#include "nn/kernels_internal.h"
#include "util/check.h"

namespace qcfe {
namespace kernels {
namespace internal {

namespace {

/// The historical sparse row-skip product: i-k-j order, streaming over
/// contiguous rows of b, skipping zero entries of a. Accumulates in the
/// output memory (zero-seeded, ascending k per element). Cost is
/// proportional to the non-zeros of a, which wins on plan feature rows.
void SparseNN(const Matrix& a, const Matrix& b, Matrix* out) {
  QCFE_CHECK(a.cols() == b.rows(), "GemmNN: a.cols() must equal b.rows()");
  QCFE_CHECK(out != &a && out != &b, "GemmNN: out must not alias an input");
  out->ResetShape(a.rows(), b.cols());
  const size_t m = a.rows();
  const size_t kk = a.cols();
  const size_t n = b.cols();
  for (size_t i = 0; i < m; ++i) {
    const double* arow = a.RowPtr(i);
    double* __restrict orow = out->RowPtr(i);
    for (size_t k = 0; k < kk; ++k) {
      double av = arow[k];
      if (av == 0.0) continue;
      const double* __restrict brow = b.RowPtr(k);
      for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

/// Register-blocked dense product with optional fused bias / bias+ReLU
/// epilogue. Every output element owns one accumulator, zero-seeded,
/// streaming k in ascending order — the same addition chain as the sparse
/// path (zero products cannot change the accumulator bits), so dispatch
/// never changes results. The fixed-trip full-panel inner loop is what the
/// compiler vectorises; ragged edges take the bounded generic loop.
template <Epilogue kEpilogue>
void DenseNN(const Matrix& a, const Matrix& b, const Matrix* bias,
             Matrix* out) {
  QCFE_CHECK(a.cols() == b.rows(), "GemmNN: a.cols() must equal b.rows()");
  QCFE_CHECK(out != &a && out != &b, "GemmNN: out must not alias an input");
  QCFE_DCHECK(kEpilogue == Epilogue::kNone ||
                  (bias != nullptr && bias->rows() == 1 &&
                   bias->cols() == b.cols()),
              "fused epilogue requires a 1 x n bias row");
  out->ResetShapeUninitialized(a.rows(), b.cols());
  const size_t m = a.rows();
  const size_t kk = a.cols();
  const size_t n = b.cols();
  const size_t lda = a.ld();
  const size_t ldb = b.ld();
  const double* __restrict ap = a.data().data();
  const double* __restrict bp = b.data().data();
  const double* biasp =
      kEpilogue == Epilogue::kNone ? nullptr : bias->RowPtr(0);
  for (size_t i0 = 0; i0 < m; i0 += kMr) {
    const size_t mr = std::min(kMr, m - i0);
    for (size_t j0 = 0; j0 < n; j0 += kNr) {
      const size_t nr = std::min(kNr, n - j0);
      double acc[kMr][kNr] = {{0.0}};
      if (mr == kMr && nr == kNr) {
        for (size_t k = 0; k < kk; ++k) {
          const double* __restrict brow = bp + k * ldb + j0;
          for (size_t ii = 0; ii < kMr; ++ii) {
            const double av = ap[(i0 + ii) * lda + k];
            for (size_t jj = 0; jj < kNr; ++jj) acc[ii][jj] += av * brow[jj];
          }
        }
      } else {
        for (size_t k = 0; k < kk; ++k) {
          const double* __restrict brow = bp + k * ldb + j0;
          for (size_t ii = 0; ii < mr; ++ii) {
            const double av = ap[(i0 + ii) * lda + k];
            for (size_t jj = 0; jj < nr; ++jj) acc[ii][jj] += av * brow[jj];
          }
        }
      }
      for (size_t ii = 0; ii < mr; ++ii) {
        double* dst = out->RowPtr(i0 + ii) + j0;
        for (size_t jj = 0; jj < nr; ++jj) {
          double v = acc[ii][jj];
          if (kEpilogue != Epilogue::kNone) v += biasp[j0 + jj];
          if (kEpilogue == Epilogue::kBiasRelu) v = v > 0.0 ? v : 0.0;
          dst[jj] = v;
        }
      }
    }
  }
}

void DenseNNDispatch(const Matrix& a, const Matrix& b, const Matrix* bias,
                     Matrix* out, Epilogue e) {
  switch (e) {
    case Epilogue::kNone:
      DenseNN<Epilogue::kNone>(a, b, bias, out);
      return;
    case Epilogue::kBias:
      DenseNN<Epilogue::kBias>(a, b, bias, out);
      return;
    case Epilogue::kBiasRelu:
      DenseNN<Epilogue::kBiasRelu>(a, b, bias, out);
      return;
  }
}

/// Register-blocked a^T * b: an (a.cols x b.cols) output panel accumulates
/// while the shared row dimension streams past; rows whose a-panel entries
/// are all exactly zero are skipped (their products are ±0.0 and cannot
/// change the accumulators). With accumulate=true the finished panel is
/// added onto the destination in one pass — the register-resident
/// replacement for "materialise a^T * b, then Add()".
template <bool kAccumulate>
void DenseAT(const Matrix& a, const Matrix& b, Matrix* out) {
  QCFE_CHECK(a.rows() == b.rows(), "GemmAT: a.rows() must equal b.rows()");
  QCFE_CHECK(out != &a && out != &b, "GemmAT: out must not alias an input");
  if (!kAccumulate) {
    out->ResetShapeUninitialized(a.cols(), b.cols());
  } else {
    QCFE_CHECK(out->rows() == a.cols() && out->cols() == b.cols(),
               "GemmATAccumulate: acc must be pre-shaped to a.cols x b.cols");
  }
  const size_t rows = a.rows();
  const size_t m = a.cols();
  const size_t n = b.cols();
  for (size_t i0 = 0; i0 < m; i0 += kMr) {
    const size_t mr = std::min(kMr, m - i0);
    for (size_t j0 = 0; j0 < n; j0 += kNr) {
      const size_t nr = std::min(kNr, n - j0);
      double acc[kMr][kNr] = {{0.0}};
      if (mr == kMr && nr == kNr) {
        // Fixed trip counts keep the accumulator panel in registers.
        for (size_t r = 0; r < rows; ++r) {
          const double* __restrict arow = a.RowPtr(r) + i0;
          const double* __restrict brow = b.RowPtr(r) + j0;
          double av[kMr];
          bool any = false;
          for (size_t ii = 0; ii < kMr; ++ii) {
            av[ii] = arow[ii];
            any = any || av[ii] != 0.0;
          }
          if (!any) continue;
          for (size_t ii = 0; ii < kMr; ++ii) {
            for (size_t jj = 0; jj < kNr; ++jj) {
              acc[ii][jj] += av[ii] * brow[jj];
            }
          }
        }
      } else {
        for (size_t r = 0; r < rows; ++r) {
          const double* __restrict arow = a.RowPtr(r) + i0;
          const double* __restrict brow = b.RowPtr(r) + j0;
          for (size_t ii = 0; ii < mr; ++ii) {
            const double av = arow[ii];
            if (av == 0.0) continue;
            for (size_t jj = 0; jj < nr; ++jj) acc[ii][jj] += av * brow[jj];
          }
        }
      }
      for (size_t ii = 0; ii < mr; ++ii) {
        double* dst = out->RowPtr(i0 + ii) + j0;
        for (size_t jj = 0; jj < nr; ++jj) {
          if (kAccumulate) {
            dst[jj] += acc[ii][jj];
          } else {
            dst[jj] = acc[ii][jj];
          }
        }
      }
    }
  }
}

void DenseATOverwrite(const Matrix& a, const Matrix& b, Matrix* out) {
  DenseAT<false>(a, b, out);
}

void DenseATAccumulate(const Matrix& a, const Matrix& b, Matrix* acc) {
  DenseAT<true>(a, b, acc);
}

/// Streaming zero-skip a^T * b (overwrite): the historical i-k-j loop,
/// accumulating in the output memory. Per-element chains are identical to
/// the register panel's (ascending row order, zero terms skipped), so the
/// small-row dispatch between them never changes bits.
void StreamAT(const Matrix& a, const Matrix& b, Matrix* out) {
  QCFE_CHECK(a.rows() == b.rows(), "GemmAT: a.rows() must equal b.rows()");
  QCFE_CHECK(out != &a && out != &b, "GemmAT: out must not alias an input");
  out->ResetShape(a.cols(), b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* arow = a.RowPtr(r);
    const double* brow = b.RowPtr(r);
    for (size_t i = 0; i < a.cols(); ++i) {
      double av = arow[i];
      if (av == 0.0) continue;
      double* orow = out->RowPtr(i);
      for (size_t j = 0; j < b.cols(); ++j) orow[j] += av * brow[j];
    }
  }
}

/// Sparse-aware a^T * b accumulate for multi-row contractions: replays the
/// historical "zero-skip product into a temporary, then Add()" chains with
/// a thread-local temporary, so warm steady-state calls never allocate.
/// The zero-skip makes cost proportional to a's non-zeros — the winning
/// shape for one-hot feature inputs — while the full-sum-then-add order
/// keeps results bit-identical to the reference.
void SparseTempATAccumulate(const Matrix& a, const Matrix& b, Matrix* acc) {
  thread_local Matrix tmp;
  tmp.ResetShape(a.cols(), b.cols());
  const size_t rows = a.rows();
  const size_t n = b.cols();
  for (size_t r = 0; r < rows; ++r) {
    const double* arow = a.RowPtr(r);
    const double* __restrict brow = b.RowPtr(r);
    for (size_t i = 0; i < a.cols(); ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* __restrict trow = tmp.RowPtr(i);
      for (size_t j = 0; j < n; ++j) trow[j] += av * brow[j];
    }
  }
  acc->Add(tmp);
}

/// Register-blocked a * b^T: for each row of a, kNr dot products build
/// concurrently — kNr independent ascending-k accumulator chains (the
/// reference loop's exact chains, but with the FMA-latency serialisation of
/// a lone dot product hidden behind kNr-way ILP, and each a-row's streamed
/// read amortised over kNr b-rows).
void DenseBT(const Matrix& a, const Matrix& b, Matrix* out) {
  QCFE_CHECK(a.cols() == b.cols(), "GemmBT: a.cols() must equal b.cols()");
  QCFE_CHECK(out != &a && out != &b, "GemmBT: out must not alias an input");
  out->ResetShapeUninitialized(a.rows(), b.rows());
  const size_t m = a.rows();
  const size_t n = b.rows();
  const size_t kk = a.cols();
  for (size_t i = 0; i < m; ++i) {
    const double* __restrict arow = a.RowPtr(i);
    double* __restrict orow = out->RowPtr(i);
    size_t j0 = 0;
    for (; j0 + kNr <= n; j0 += kNr) {
      const double* __restrict bp[kNr];
      for (size_t jj = 0; jj < kNr; ++jj) bp[jj] = b.RowPtr(j0 + jj);
      double acc[kNr] = {0.0};
      for (size_t k = 0; k < kk; ++k) {
        const double av = arow[k];
        for (size_t jj = 0; jj < kNr; ++jj) acc[jj] += av * bp[jj][k];
      }
      for (size_t jj = 0; jj < kNr; ++jj) orow[j0 + jj] = acc[jj];
    }
    for (; j0 < n; ++j0) {
      const double* __restrict brow = b.RowPtr(j0);
      double acc = 0.0;
      for (size_t k = 0; k < kk; ++k) acc += arow[k] * brow[k];
      orow[j0] = acc;
    }
  }
}

/// Rank-1 a^T * b accumulate (a and b both single rows): dst(i, :) +=
/// a(0, i) * b(0, :), skipping zero a entries. With one contraction term
/// per element, "sum in a register, then add" and "add the product" are
/// the same single addition, so this stays bit-identical to the reference
/// temporary+Add — while touching only the rows a actually activates
/// (plan-structured training backprops one node row at a time, so this is
/// the dW kernel QPPNet runs almost exclusively).
void Rank1ATAccumulate(const Matrix& a, const Matrix& b, Matrix* acc) {
  const double* arow = a.RowPtr(0);
  const double* __restrict brow = b.RowPtr(0);
  const size_t m = a.cols();
  const size_t n = b.cols();
  for (size_t i = 0; i < m; ++i) {
    const double av = arow[i];
    if (av == 0.0) continue;
    double* __restrict dst = acc->RowPtr(i);
    for (size_t j = 0; j < n; ++j) dst[j] += av * brow[j];
  }
}

/// Column-blocked stack buffer: each column's sum is built zero-seeded in
/// ascending row order, then added to the destination once — the exact
/// "ColSum() then Add()" chains without the temporary matrix. The vertical
/// (no cross-lane) reductions make this op bit-identical in every tier.
void ColSumAccumulateImpl(const Matrix& a, Matrix* acc) {
  constexpr size_t kCb = 256;
  const size_t n = a.cols();
  double buf[kCb];
  for (size_t c0 = 0; c0 < n; c0 += kCb) {
    const size_t cb = std::min(kCb, n - c0);
    std::fill(buf, buf + cb, 0.0);
    for (size_t r = 0; r < a.rows(); ++r) {
      const double* __restrict src = a.RowPtr(r) + c0;
      for (size_t c = 0; c < cb; ++c) buf[c] += src[c];
    }
    double* dst = acc->RowPtr(0) + c0;
    for (size_t c = 0; c < cb; ++c) dst[c] += buf[c];
  }
}

/// Scalar Adam update: two muls + one add per moment, IEEE sqrt/div. The
/// SIMD tiers replay exactly these operations lane-wise (each a single
/// rounding), so the optimizer step is bit-identical across tiers.
void AdamStepImpl(double* __restrict p, const double* __restrict g,
                  double* __restrict m, double* __restrict v, size_t n,
                  double lr, double beta1, double beta2, double eps,
                  double bc1, double bc2) {
  for (size_t k = 0; k < n; ++k) {
    double gk = g[k];
    m[k] = beta1 * m[k] + (1.0 - beta1) * gk;
    v[k] = beta2 * v[k] + (1.0 - beta2) * gk * gk;
    double mhat = m[k] / bc1;
    double vhat = v[k] / bc2;
    p[k] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

void SgdStepImpl(double* __restrict p, const double* __restrict g,
                 double* __restrict v, size_t n, double lr, double momentum) {
  for (size_t k = 0; k < n; ++k) {
    v[k] = momentum * v[k] - lr * g[k];
    p[k] += v[k];
  }
}

}  // namespace

void BiasPass(const Matrix& bias, Matrix* out) {
  QCFE_CHECK(bias.rows() == 1 && bias.cols() == out->cols(),
             "bias must be a 1 x out-cols row vector");
  const double* src = bias.RowPtr(0);
  for (size_t r = 0; r < out->rows(); ++r) {
    double* dst = out->RowPtr(r);
    for (size_t c = 0; c < out->cols(); ++c) dst[c] += src[c];
  }
}

void ReluPass(Matrix* out) {
  // Flat walk is pad-safe: relu(0) == 0.
  for (double& x : out->data()) x = x > 0.0 ? x : 0.0;
}

const KernelTable& ScalarTable() {
  static const KernelTable table = {
      DenseNNDispatch,       // dense_nn
      SparseNN,              // sparse_nn
      DenseBT,               // bt
      DenseATOverwrite,      // at_panel
      StreamAT,              // at_stream
      DenseATAccumulate,     // at_acc_panel
      SparseTempATAccumulate,  // at_acc_sparse
      Rank1ATAccumulate,     // at_acc_rank1
      ColSumAccumulateImpl,  // colsum_acc
      AdamStepImpl,          // adam_step
      SgdStepImpl,           // sgd_step
  };
  return table;
}

}  // namespace internal

// ------------------------------------------------------------- reference
// The historical unblocked loops, self-contained (no dispatch, no tiers).
// Parity tests compare the whole scalar tier against these bit for bit.

namespace reference {

namespace {

void RefSparseNN(const Matrix& a, const Matrix& b, Matrix* out) {
  QCFE_CHECK(a.cols() == b.rows(), "GemmNN: a.cols() must equal b.rows()");
  out->ResetShape(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.RowPtr(i);
    double* orow = out->RowPtr(i);
    for (size_t k = 0; k < a.cols(); ++k) {
      double av = arow[k];
      if (av == 0.0) continue;
      const double* brow = b.RowPtr(k);
      for (size_t j = 0; j < b.cols(); ++j) orow[j] += av * brow[j];
    }
  }
}

}  // namespace

void GemmNN(const Matrix& a, const Matrix& b, Matrix* out) {
  RefSparseNN(a, b, out);
}

void GemmNNBias(const Matrix& a, const Matrix& b, const Matrix& bias,
                Matrix* out) {
  RefSparseNN(a, b, out);
  internal::BiasPass(bias, out);
}

void GemmNNBiasRelu(const Matrix& a, const Matrix& b, const Matrix& bias,
                    Matrix* out) {
  RefSparseNN(a, b, out);
  internal::BiasPass(bias, out);
  internal::ReluPass(out);
}

void GemmBT(const Matrix& a, const Matrix& b, Matrix* out) {
  QCFE_CHECK(a.cols() == b.cols(), "GemmBT: a.cols() must equal b.cols()");
  out->ResetShape(a.rows(), b.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.RowPtr(i);
    double* orow = out->RowPtr(i);
    for (size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.RowPtr(j);
      double acc = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      orow[j] = acc;
    }
  }
}

void GemmAT(const Matrix& a, const Matrix& b, Matrix* out) {
  QCFE_CHECK(a.rows() == b.rows(), "GemmAT: a.rows() must equal b.rows()");
  out->ResetShape(a.cols(), b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* arow = a.RowPtr(r);
    const double* brow = b.RowPtr(r);
    for (size_t i = 0; i < a.cols(); ++i) {
      double av = arow[i];
      if (av == 0.0) continue;
      double* orow = out->RowPtr(i);
      for (size_t j = 0; j < b.cols(); ++j) orow[j] += av * brow[j];
    }
  }
}

void GemmATAccumulate(const Matrix& a, const Matrix& b, Matrix* acc) {
  // The historical path, temporary included: parity tests and the
  // before/after benchmark both rely on replaying it exactly.
  Matrix tmp;
  GemmAT(a, b, &tmp);
  acc->Add(tmp);
}

void ColSumAccumulate(const Matrix& a, Matrix* acc) {
  acc->Add(a.ColSum());
}

}  // namespace reference

}  // namespace kernels
}  // namespace qcfe
