/// \file kernels_simd_neon.cc
/// The AArch64 NEON kernel tier: the same per-element fused-multiply-add
/// chain design as the AVX2 tier (see kernels_simd_avx2.cc for the full
/// within-tier determinism contract), expressed in 2-lane float64x2_t
/// vectors. Compiled with -ffp-contract=off so only the explicit vfmaq /
/// std::fma calls below ever fuse.

#include "nn/kernels_internal.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>
#include <cmath>

#include "nn/kernels.h"
#include "util/check.h"

namespace qcfe {
namespace kernels {
namespace internal {
namespace {

/// relu(v) with scalar semantics: -0.0 maps to +0.0. (NaN inputs do not
/// occur on the kernel paths; vmaxnmq would be needed for NaN parity.)
inline float64x2_t Relu(float64x2_t v) {
  return vmaxq_f64(v, vdupq_n_f64(0.0));
}

// ------------------------------------------------------------- GemmNN

template <Epilogue kEpilogue>
void DenseNN(const Matrix& a, const Matrix& b, const Matrix* bias,
             Matrix* out) {
  QCFE_CHECK(a.cols() == b.rows(), "GemmNN: a.cols() must equal b.rows()");
  QCFE_CHECK(out != &a && out != &b, "GemmNN: out must not alias an input");
  QCFE_DCHECK(kEpilogue == Epilogue::kNone ||
                  (bias != nullptr && bias->rows() == 1 &&
                   bias->cols() == b.cols()),
              "fused epilogue requires a 1 x n bias row");
  out->ResetShapeUninitialized(a.rows(), b.cols());
  const size_t m = a.rows();
  const size_t kk = a.cols();
  const size_t n = b.cols();
  const size_t lda = a.ld();
  const size_t ldb = b.ld();
  const double* __restrict ap = a.data().data();
  const double* __restrict bp = b.data().data();
  const double* biasp =
      kEpilogue == Epilogue::kNone ? nullptr : bias->RowPtr(0);
  for (size_t i0 = 0; i0 < m; i0 += kMr) {
    const size_t mr = std::min(kMr, m - i0);
    size_t j0 = 0;
    // Full 4-column panels: kMr x 2 vector accumulators in registers.
    for (; j0 + 4 <= n; j0 += 4) {
      float64x2_t acc0[kMr];
      float64x2_t acc1[kMr];
      for (size_t ii = 0; ii < kMr; ++ii) {
        acc0[ii] = vdupq_n_f64(0.0);
        acc1[ii] = vdupq_n_f64(0.0);
      }
      for (size_t k = 0; k < kk; ++k) {
        const double* __restrict brow = bp + k * ldb + j0;
        const float64x2_t bv0 = vld1q_f64(brow);
        const float64x2_t bv1 = vld1q_f64(brow + 2);
        for (size_t ii = 0; ii < mr; ++ii) {
          const double av = ap[(i0 + ii) * lda + k];
          acc0[ii] = vfmaq_n_f64(acc0[ii], bv0, av);
          acc1[ii] = vfmaq_n_f64(acc1[ii], bv1, av);
        }
      }
      for (size_t ii = 0; ii < mr; ++ii) {
        float64x2_t v0 = acc0[ii];
        float64x2_t v1 = acc1[ii];
        if (kEpilogue != Epilogue::kNone) {
          v0 = vaddq_f64(v0, vld1q_f64(biasp + j0));
          v1 = vaddq_f64(v1, vld1q_f64(biasp + j0 + 2));
        }
        if (kEpilogue == Epilogue::kBiasRelu) {
          v0 = Relu(v0);
          v1 = Relu(v1);
        }
        double* dst = out->RowPtr(i0 + ii) + j0;
        vst1q_f64(dst, v0);
        vst1q_f64(dst + 2, v1);
      }
    }
    // Scalar tail columns: the same per-element fma chain, one lane wide.
    for (; j0 < n; ++j0) {
      for (size_t ii = 0; ii < mr; ++ii) {
        const double* __restrict arow = ap + (i0 + ii) * lda;
        double acc = 0.0;
        for (size_t k = 0; k < kk; ++k) {
          acc = std::fma(arow[k], bp[k * ldb + j0], acc);
        }
        if (kEpilogue != Epilogue::kNone) acc += biasp[j0];
        if (kEpilogue == Epilogue::kBiasRelu) acc = acc > 0.0 ? acc : 0.0;
        out->RowPtr(i0 + ii)[j0] = acc;
      }
    }
  }
}

void DenseNNDispatch(const Matrix& a, const Matrix& b, const Matrix* bias,
                     Matrix* out, Epilogue e) {
  switch (e) {
    case Epilogue::kNone:
      DenseNN<Epilogue::kNone>(a, b, bias, out);
      return;
    case Epilogue::kBias:
      DenseNN<Epilogue::kBias>(a, b, bias, out);
      return;
    case Epilogue::kBiasRelu:
      DenseNN<Epilogue::kBiasRelu>(a, b, bias, out);
      return;
  }
}

void SparseNN(const Matrix& a, const Matrix& b, Matrix* out) {
  QCFE_CHECK(a.cols() == b.rows(), "GemmNN: a.cols() must equal b.rows()");
  QCFE_CHECK(out != &a && out != &b, "GemmNN: out must not alias an input");
  out->ResetShape(a.rows(), b.cols());
  const size_t m = a.rows();
  const size_t kk = a.cols();
  const size_t n = b.cols();
  for (size_t i = 0; i < m; ++i) {
    const double* arow = a.RowPtr(i);
    double* __restrict orow = out->RowPtr(i);
    for (size_t k = 0; k < kk; ++k) {
      const double av = arow[k];
      if (av == 0.0) continue;
      const double* __restrict brow = b.RowPtr(k);
      size_t j = 0;
      for (; j + 2 <= n; j += 2) {
        vst1q_f64(orow + j,
                  vfmaq_n_f64(vld1q_f64(orow + j), vld1q_f64(brow + j), av));
      }
      for (; j < n; ++j) orow[j] = std::fma(av, brow[j], orow[j]);
    }
  }
}

// ------------------------------------------------------------- GemmBT

/// Fixed-shape lane sum of the 2-lane chain, then the scalar k-tail.
inline double HsumTail(float64x2_t acc, const double* __restrict x,
                       const double* __restrict y, size_t k0, size_t kk) {
  double s = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
  for (size_t k = k0; k < kk; ++k) s = std::fma(x[k], y[k], s);
  return s;
}

void DenseBT(const Matrix& a, const Matrix& b, Matrix* out) {
  QCFE_CHECK(a.cols() == b.cols(), "GemmBT: a.cols() must equal b.cols()");
  QCFE_CHECK(out != &a && out != &b, "GemmBT: out must not alias an input");
  out->ResetShapeUninitialized(a.rows(), b.rows());
  const size_t m = a.rows();
  const size_t n = b.rows();
  const size_t kk = a.cols();
  const size_t kv = kk - kk % 2;
  for (size_t i = 0; i < m; ++i) {
    const double* __restrict arow = a.RowPtr(i);
    double* __restrict orow = out->RowPtr(i);
    size_t j0 = 0;
    for (; j0 + 4 <= n; j0 += 4) {
      const double* __restrict b0 = b.RowPtr(j0);
      const double* __restrict b1 = b.RowPtr(j0 + 1);
      const double* __restrict b2 = b.RowPtr(j0 + 2);
      const double* __restrict b3 = b.RowPtr(j0 + 3);
      float64x2_t acc0 = vdupq_n_f64(0.0);
      float64x2_t acc1 = vdupq_n_f64(0.0);
      float64x2_t acc2 = vdupq_n_f64(0.0);
      float64x2_t acc3 = vdupq_n_f64(0.0);
      for (size_t k = 0; k < kv; k += 2) {
        const float64x2_t xv = vld1q_f64(arow + k);
        acc0 = vfmaq_f64(acc0, xv, vld1q_f64(b0 + k));
        acc1 = vfmaq_f64(acc1, xv, vld1q_f64(b1 + k));
        acc2 = vfmaq_f64(acc2, xv, vld1q_f64(b2 + k));
        acc3 = vfmaq_f64(acc3, xv, vld1q_f64(b3 + k));
      }
      orow[j0] = HsumTail(acc0, arow, b0, kv, kk);
      orow[j0 + 1] = HsumTail(acc1, arow, b1, kv, kk);
      orow[j0 + 2] = HsumTail(acc2, arow, b2, kv, kk);
      orow[j0 + 3] = HsumTail(acc3, arow, b3, kv, kk);
    }
    for (; j0 < n; ++j0) {
      const double* __restrict brow = b.RowPtr(j0);
      float64x2_t acc = vdupq_n_f64(0.0);
      for (size_t k = 0; k < kv; k += 2) {
        acc = vfmaq_f64(acc, vld1q_f64(arow + k), vld1q_f64(brow + k));
      }
      orow[j0] = HsumTail(acc, arow, brow, kv, kk);
    }
  }
}

// ------------------------------------------------------------- GemmAT

template <bool kAccumulate>
void DenseAT(const Matrix& a, const Matrix& b, Matrix* out) {
  QCFE_CHECK(a.rows() == b.rows(), "GemmAT: a.rows() must equal b.rows()");
  QCFE_CHECK(out != &a && out != &b, "GemmAT: out must not alias an input");
  if (!kAccumulate) {
    out->ResetShapeUninitialized(a.cols(), b.cols());
  } else {
    QCFE_CHECK(out->rows() == a.cols() && out->cols() == b.cols(),
               "GemmATAccumulate: acc must be pre-shaped to a.cols x b.cols");
  }
  const size_t rows = a.rows();
  const size_t m = a.cols();
  const size_t n = b.cols();
  for (size_t i0 = 0; i0 < m; i0 += kMr) {
    const size_t mr = std::min(kMr, m - i0);
    size_t j0 = 0;
    for (; j0 + 4 <= n; j0 += 4) {
      float64x2_t acc0[kMr];
      float64x2_t acc1[kMr];
      for (size_t ii = 0; ii < kMr; ++ii) {
        acc0[ii] = vdupq_n_f64(0.0);
        acc1[ii] = vdupq_n_f64(0.0);
      }
      for (size_t r = 0; r < rows; ++r) {
        const double* __restrict arow = a.RowPtr(r) + i0;
        const double* __restrict brow = b.RowPtr(r) + j0;
        bool any = false;
        for (size_t ii = 0; ii < mr; ++ii) any = any || arow[ii] != 0.0;
        if (!any) continue;  // fma(0, b, acc) == acc: skipping is bit-safe
        const float64x2_t bv0 = vld1q_f64(brow);
        const float64x2_t bv1 = vld1q_f64(brow + 2);
        for (size_t ii = 0; ii < mr; ++ii) {
          const double av = arow[ii];
          acc0[ii] = vfmaq_n_f64(acc0[ii], bv0, av);
          acc1[ii] = vfmaq_n_f64(acc1[ii], bv1, av);
        }
      }
      for (size_t ii = 0; ii < mr; ++ii) {
        double* dst = out->RowPtr(i0 + ii) + j0;
        if (kAccumulate) {
          // One unfused add onto the destination after the full chain.
          vst1q_f64(dst, vaddq_f64(vld1q_f64(dst), acc0[ii]));
          vst1q_f64(dst + 2, vaddq_f64(vld1q_f64(dst + 2), acc1[ii]));
        } else {
          vst1q_f64(dst, acc0[ii]);
          vst1q_f64(dst + 2, acc1[ii]);
        }
      }
    }
    for (; j0 < n; ++j0) {
      for (size_t ii = 0; ii < mr; ++ii) {
        double acc = 0.0;
        for (size_t r = 0; r < rows; ++r) {
          acc = std::fma(a.At(r, i0 + ii), b.At(r, j0), acc);
        }
        double* dst = &out->RowPtr(i0 + ii)[j0];
        if (kAccumulate) {
          *dst += acc;
        } else {
          *dst = acc;
        }
      }
    }
  }
}

void DenseATOverwrite(const Matrix& a, const Matrix& b, Matrix* out) {
  DenseAT<false>(a, b, out);
}

void DenseATAccumulate(const Matrix& a, const Matrix& b, Matrix* acc) {
  DenseAT<true>(a, b, acc);
}

void StreamAT(const Matrix& a, const Matrix& b, Matrix* out) {
  QCFE_CHECK(a.rows() == b.rows(), "GemmAT: a.rows() must equal b.rows()");
  QCFE_CHECK(out != &a && out != &b, "GemmAT: out must not alias an input");
  out->ResetShape(a.cols(), b.cols());
  const size_t n = b.cols();
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* arow = a.RowPtr(r);
    const double* __restrict brow = b.RowPtr(r);
    for (size_t i = 0; i < a.cols(); ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* __restrict orow = out->RowPtr(i);
      size_t j = 0;
      for (; j + 2 <= n; j += 2) {
        vst1q_f64(orow + j,
                  vfmaq_n_f64(vld1q_f64(orow + j), vld1q_f64(brow + j), av));
      }
      for (; j < n; ++j) orow[j] = std::fma(av, brow[j], orow[j]);
    }
  }
}

void SparseTempATAccumulate(const Matrix& a, const Matrix& b, Matrix* acc) {
  thread_local Matrix tmp;
  StreamAT(a, b, &tmp);
  acc->Add(tmp);
}

void Rank1ATAccumulate(const Matrix& a, const Matrix& b, Matrix* acc) {
  const double* arow = a.RowPtr(0);
  const double* __restrict brow = b.RowPtr(0);
  const size_t m = a.cols();
  const size_t n = b.cols();
  for (size_t i = 0; i < m; ++i) {
    const double av = arow[i];
    if (av == 0.0) continue;
    double* __restrict dst = acc->RowPtr(i);
    const float64x2_t avv = vdupq_n_f64(av);
    size_t j = 0;
    for (; j + 2 <= n; j += 2) {
      // mul then unfused add — the panel-accumulate semantics.
      const float64x2_t t = vmulq_f64(avv, vld1q_f64(brow + j));
      vst1q_f64(dst + j, vaddq_f64(vld1q_f64(dst + j), t));
    }
    for (; j < n; ++j) dst[j] += av * brow[j];
  }
}

// --------------------------------------------------------- reductions

void ColSumAccumulateImpl(const Matrix& a, Matrix* acc) {
  const size_t n = a.cols();
  double* dst = acc->RowPtr(0);
  size_t c0 = 0;
  // Vertical chains only: bit-identical to the scalar tier.
  for (; c0 + 2 <= n; c0 += 2) {
    float64x2_t sum = vdupq_n_f64(0.0);
    for (size_t r = 0; r < a.rows(); ++r) {
      sum = vaddq_f64(sum, vld1q_f64(a.RowPtr(r) + c0));
    }
    vst1q_f64(dst + c0, vaddq_f64(vld1q_f64(dst + c0), sum));
  }
  for (; c0 < n; ++c0) {
    double sum = 0.0;
    for (size_t r = 0; r < a.rows(); ++r) sum += a.RowPtr(r)[c0];
    dst[c0] += sum;
  }
}

// ---------------------------------------------------- optimizer steps

void AdamStepImpl(double* __restrict p, const double* __restrict g,
                  double* __restrict m, double* __restrict v, size_t n,
                  double lr, double beta1, double beta2, double eps,
                  double bc1, double bc2) {
  const float64x2_t b1 = vdupq_n_f64(beta1);
  const float64x2_t omb1 = vdupq_n_f64(1.0 - beta1);
  const float64x2_t b2 = vdupq_n_f64(beta2);
  const float64x2_t omb2 = vdupq_n_f64(1.0 - beta2);
  const float64x2_t vbc1 = vdupq_n_f64(bc1);
  const float64x2_t vbc2 = vdupq_n_f64(bc2);
  const float64x2_t vlr = vdupq_n_f64(lr);
  const float64x2_t veps = vdupq_n_f64(eps);
  size_t k = 0;
  for (; k + 2 <= n; k += 2) {
    const float64x2_t gv = vld1q_f64(g + k);
    const float64x2_t mv = vaddq_f64(vmulq_f64(b1, vld1q_f64(m + k)),
                                     vmulq_f64(omb1, gv));
    // Match the scalar association: ((1-beta2)*g)*g.
    const float64x2_t vv = vaddq_f64(vmulq_f64(b2, vld1q_f64(v + k)),
                                     vmulq_f64(vmulq_f64(omb2, gv), gv));
    vst1q_f64(m + k, mv);
    vst1q_f64(v + k, vv);
    const float64x2_t mhat = vdivq_f64(mv, vbc1);
    const float64x2_t vhat = vdivq_f64(vv, vbc2);
    const float64x2_t den = vaddq_f64(vsqrtq_f64(vhat), veps);
    const float64x2_t q = vdivq_f64(vmulq_f64(vlr, mhat), den);
    vst1q_f64(p + k, vsubq_f64(vld1q_f64(p + k), q));
  }
  for (; k < n; ++k) {
    double gk = g[k];
    m[k] = beta1 * m[k] + (1.0 - beta1) * gk;
    v[k] = beta2 * v[k] + (1.0 - beta2) * gk * gk;
    double mhat = m[k] / bc1;
    double vhat = v[k] / bc2;
    p[k] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

void SgdStepImpl(double* __restrict p, const double* __restrict g,
                 double* __restrict v, size_t n, double lr, double momentum) {
  const float64x2_t vmo = vdupq_n_f64(momentum);
  const float64x2_t vlr = vdupq_n_f64(lr);
  size_t k = 0;
  for (; k + 2 <= n; k += 2) {
    const float64x2_t vv = vsubq_f64(vmulq_f64(vmo, vld1q_f64(v + k)),
                                     vmulq_f64(vlr, vld1q_f64(g + k)));
    vst1q_f64(v + k, vv);
    vst1q_f64(p + k, vaddq_f64(vld1q_f64(p + k), vv));
  }
  for (; k < n; ++k) {
    v[k] = momentum * v[k] - lr * g[k];
    p[k] += v[k];
  }
}

}  // namespace

const KernelTable* NeonTable() {
  static const KernelTable table = {
      DenseNNDispatch,       // dense_nn
      SparseNN,              // sparse_nn
      DenseBT,               // bt
      DenseATOverwrite,      // at_panel
      StreamAT,              // at_stream
      DenseATAccumulate,     // at_acc_panel
      SparseTempATAccumulate,  // at_acc_sparse
      Rank1ATAccumulate,     // at_acc_rank1
      ColSumAccumulateImpl,  // colsum_acc
      AdamStepImpl,          // adam_step
      SgdStepImpl,           // sgd_step
  };
  return &table;
}

}  // namespace internal
}  // namespace kernels
}  // namespace qcfe

#else  // !__aarch64__

namespace qcfe {
namespace kernels {
namespace internal {

const KernelTable* NeonTable() { return nullptr; }

}  // namespace internal
}  // namespace kernels
}  // namespace qcfe

#endif  // __aarch64__
