#ifndef QCFE_NN_LAYERS_H_
#define QCFE_NN_LAYERS_H_

/// \file layers.h
/// Minimal layer zoo with hand-derived backprop. Layers are stateless with
/// respect to activations: Forward() is const and side-effect free, and
/// Backward() consumes the forward input/output the caller recorded on an
/// Mlp::Tape instead of per-layer caches. That makes backprop reentrant —
/// any number of threads can run forward/backward through the same layer
/// concurrently, each with its own tape and gradient sink — which is what
/// chunk-parallel training relies on.

#include <memory>
#include <vector>

#include "nn/matrix.h"

namespace qcfe {

class Rng;

/// Discriminates layer types for serialization and for the difference-
/// propagation walker in src/core (which re-derives per-layer multipliers).
enum class LayerKind {
  kLinear,
  kRelu,
  kSigmoid,
  kTanh,
};

/// Base layer: batch-in, batch-out, differentiable, activation-stateless.
class Layer {
 public:
  virtual ~Layer() = default;

  virtual LayerKind kind() const = 0;

  /// Forward pass for a batch (rows = samples). No caching and no side
  /// effects: safe to call from any number of threads concurrently.
  virtual Matrix Forward(const Matrix& input) const = 0;

  /// Allocation-free variant of Forward for the batched serving path:
  /// writes the result into `output` (reshaped as needed, reusing its
  /// buffer). Numerically identical to Forward. `output` must not alias
  /// `input`.
  virtual void ForwardInto(const Matrix& input, Matrix* output) const {
    *output = Forward(input);
  }

  /// Given dL/d(output) plus this layer's forward input and output (both
  /// recorded on the caller's tape), writes dL/d(input) into `grad_input`
  /// (reshaped reusing its buffer — allocation-free on steady shapes).
  /// When `param_grads` is non-null it points at num_param_grads()
  /// accumulator matrices (Grads() order) into which the parameter
  /// gradients are added; null skips parameter accumulation entirely
  /// (input-gradient probes). For elementwise layers (everything but
  /// Linear) `grad_input` may alias `grad_output`, which is how the tape-
  /// scratch backward applies activation masks in place; for Linear it
  /// must not alias any operand.
  virtual void BackwardInto(const Matrix& grad_output, const Matrix& input,
                            const Matrix& output, Matrix* const* param_grads,
                            Matrix* grad_input) const = 0;

  /// Allocating convenience form of BackwardInto (tests, one-off probes).
  Matrix Backward(const Matrix& grad_output, const Matrix& input,
                  const Matrix& output, Matrix* const* param_grads) const {
    Matrix grad_input;
    BackwardInto(grad_output, input, output, param_grads, &grad_input);
    return grad_input;
  }

  /// Parameter/gradient pairs for the optimizer (empty for activations).
  /// The gradient matrices are plain optimizer-bound accumulators; Backward
  /// never touches them implicitly.
  virtual std::vector<Matrix*> Params() { return {}; }
  virtual std::vector<Matrix*> Grads() { return {}; }

  /// Number of entries Grads() returns (0 for activations), without
  /// materialising the vector.
  virtual size_t num_param_grads() const { return 0; }

  /// Zeroes accumulated parameter gradients.
  virtual void ZeroGrad() {}
};

/// Fully connected layer: out = in * W + b, W is (in_dim x out_dim).
class LinearLayer : public Layer {
 public:
  /// He-style initialisation scaled for the fan-in.
  LinearLayer(size_t in_dim, size_t out_dim, Rng* rng);

  LayerKind kind() const override { return LayerKind::kLinear; }
  Matrix Forward(const Matrix& input) const override;
  void ForwardInto(const Matrix& input, Matrix* output) const override;
  /// Fused linear+ReLU forward (out = relu(in * W + b)) for serving paths
  /// that never need the pre-activation; bit-identical to ForwardInto
  /// followed by a ReLU pass.
  void ForwardReluInto(const Matrix& input, Matrix* output) const;
  void BackwardInto(const Matrix& grad_output, const Matrix& input,
                    const Matrix& output, Matrix* const* param_grads,
                    Matrix* grad_input) const override;
  std::vector<Matrix*> Params() override { return {&w_, &b_}; }
  std::vector<Matrix*> Grads() override { return {&dw_, &db_}; }
  size_t num_param_grads() const override { return 2; }
  void ZeroGrad() override;

  size_t in_dim() const { return w_.rows(); }
  size_t out_dim() const { return w_.cols(); }
  const Matrix& weights() const { return w_; }
  Matrix& weights() { return w_; }
  const Matrix& bias() const { return b_; }
  Matrix& bias() { return b_; }

 private:
  Matrix w_;
  Matrix b_;   // 1 x out_dim
  Matrix dw_;
  Matrix db_;
};

/// Rectified linear unit. The dead-zero gradient of this layer is exactly the
/// failure mode the paper's difference-propagation method works around.
class ReluLayer : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::kRelu; }
  Matrix Forward(const Matrix& input) const override;
  void ForwardInto(const Matrix& input, Matrix* output) const override;
  void BackwardInto(const Matrix& grad_output, const Matrix& input,
                    const Matrix& output, Matrix* const* param_grads,
                    Matrix* grad_input) const override;
};

/// Logistic sigmoid.
class SigmoidLayer : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::kSigmoid; }
  Matrix Forward(const Matrix& input) const override;
  void ForwardInto(const Matrix& input, Matrix* output) const override;
  void BackwardInto(const Matrix& grad_output, const Matrix& input,
                    const Matrix& output, Matrix* const* param_grads,
                    Matrix* grad_input) const override;
};

/// Hyperbolic tangent.
class TanhLayer : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::kTanh; }
  Matrix Forward(const Matrix& input) const override;
  void ForwardInto(const Matrix& input, Matrix* output) const override;
  void BackwardInto(const Matrix& grad_output, const Matrix& input,
                    const Matrix& output, Matrix* const* param_grads,
                    Matrix* grad_input) const override;
};

}  // namespace qcfe

#endif  // QCFE_NN_LAYERS_H_
