#ifndef QCFE_NN_LAYERS_H_
#define QCFE_NN_LAYERS_H_

/// \file layers.h
/// Minimal layer zoo with hand-derived backprop. Each layer caches what its
/// backward pass needs during Forward(); Backward() returns the gradient with
/// respect to the layer input, which is what both weight training and
/// input-importance methods (gradient reduction, difference propagation)
/// consume.

#include <memory>
#include <vector>

#include "nn/matrix.h"

namespace qcfe {

class Rng;

/// Discriminates layer types for serialization and for the difference-
/// propagation walker in src/core (which re-derives per-layer multipliers).
enum class LayerKind {
  kLinear,
  kRelu,
  kSigmoid,
  kTanh,
};

/// Base layer: batch-in, batch-out, differentiable.
class Layer {
 public:
  virtual ~Layer() = default;

  virtual LayerKind kind() const = 0;

  /// Forward pass for a batch (rows = samples). Caches activations needed by
  /// Backward().
  virtual Matrix Forward(const Matrix& input) = 0;

  /// Forward pass with no caching and no side effects (thread-safe w.r.t.
  /// other Forward calls); used for inference and diff-prop replays.
  virtual Matrix ForwardConst(const Matrix& input) const = 0;

  /// Allocation-free variant of ForwardConst for the batched serving path:
  /// writes the result into `output` (reshaped as needed, reusing its
  /// buffer). Numerically identical to ForwardConst. `output` must not alias
  /// `input`.
  virtual void ForwardConstInto(const Matrix& input, Matrix* output) const {
    *output = ForwardConst(input);
  }

  /// Given dL/d(output), accumulates parameter gradients (if any) and returns
  /// dL/d(input). Must be called after Forward() on the same batch.
  virtual Matrix Backward(const Matrix& grad_output) = 0;

  /// Parameter/gradient pairs for the optimizer (empty for activations).
  virtual std::vector<Matrix*> Params() { return {}; }
  virtual std::vector<Matrix*> Grads() { return {}; }

  /// Zeroes accumulated parameter gradients.
  virtual void ZeroGrad() {}
};

/// Fully connected layer: out = in * W + b, W is (in_dim x out_dim).
class LinearLayer : public Layer {
 public:
  /// He-style initialisation scaled for the fan-in.
  LinearLayer(size_t in_dim, size_t out_dim, Rng* rng);

  LayerKind kind() const override { return LayerKind::kLinear; }
  Matrix Forward(const Matrix& input) override;
  Matrix ForwardConst(const Matrix& input) const override;
  void ForwardConstInto(const Matrix& input, Matrix* output) const override;
  Matrix Backward(const Matrix& grad_output) override;
  std::vector<Matrix*> Params() override { return {&w_, &b_}; }
  std::vector<Matrix*> Grads() override { return {&dw_, &db_}; }
  void ZeroGrad() override;

  size_t in_dim() const { return w_.rows(); }
  size_t out_dim() const { return w_.cols(); }
  const Matrix& weights() const { return w_; }
  Matrix& weights() { return w_; }
  const Matrix& bias() const { return b_; }
  Matrix& bias() { return b_; }

 private:
  Matrix w_;
  Matrix b_;   // 1 x out_dim
  Matrix dw_;
  Matrix db_;
  Matrix cached_input_;
};

/// Rectified linear unit. The dead-zero gradient of this layer is exactly the
/// failure mode the paper's difference-propagation method works around.
class ReluLayer : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::kRelu; }
  Matrix Forward(const Matrix& input) override;
  Matrix ForwardConst(const Matrix& input) const override;
  void ForwardConstInto(const Matrix& input, Matrix* output) const override;
  Matrix Backward(const Matrix& grad_output) override;

 private:
  Matrix cached_input_;
};

/// Logistic sigmoid.
class SigmoidLayer : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::kSigmoid; }
  Matrix Forward(const Matrix& input) override;
  Matrix ForwardConst(const Matrix& input) const override;
  Matrix Backward(const Matrix& grad_output) override;

 private:
  Matrix cached_output_;
};

/// Hyperbolic tangent.
class TanhLayer : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::kTanh; }
  Matrix Forward(const Matrix& input) override;
  Matrix ForwardConst(const Matrix& input) const override;
  Matrix Backward(const Matrix& grad_output) override;

 private:
  Matrix cached_output_;
};

}  // namespace qcfe

#endif  // QCFE_NN_LAYERS_H_
