#ifndef QCFE_NN_KERNELS_INTERNAL_H_
#define QCFE_NN_KERNELS_INTERNAL_H_

/// \file kernels_internal.h
/// The tier dispatch table shared between the public kernel front end
/// (kernels.cc) and the per-ISA implementation translation units
/// (kernels_scalar.cc, kernels_simd_avx2.cc, kernels_simd_neon.cc). Not a
/// public header: include kernels.h instead.
///
/// Every tier fills one KernelTable with the same set of operations; the
/// front end picks a table once per call from the process-wide active ISA.
/// The within-tier determinism contract (kernels.h "Determinism contract")
/// binds every implementation slot: each output element's value may depend
/// only on its own mathematical inputs and the tier — never on batch size,
/// panel position, dispatch path, or which table slot computed it.

#include <cstddef>

#include "nn/matrix.h"

namespace qcfe {
namespace kernels {
namespace internal {

/// Epilogue selector for the NN-family kernels.
enum class Epilogue { kNone, kBias, kBiasRelu };

/// Register-panel geometry shared by every tier: a kMr x kNr output tile is
/// held in registers while the contraction dimension streams past. These
/// are structural constants (the register budget), not tuned thresholds.
constexpr size_t kMr = 4;
constexpr size_t kNr = 8;

/// One ISA tier's implementation of every kernel operation.
struct KernelTable {
  /// Register-blocked dense a*b with optional fused bias / bias+ReLU.
  /// bias may be null iff e == Epilogue::kNone.
  void (*dense_nn)(const Matrix& a, const Matrix& b, const Matrix* bias,
                   Matrix* out, Epilogue e);
  /// Sparse row-skip a*b (product only; callers add bias/ReLU passes).
  void (*sparse_nn)(const Matrix& a, const Matrix& b, Matrix* out);
  /// a * b^T.
  void (*bt)(const Matrix& a, const Matrix& b, Matrix* out);
  /// a^T * b, register-panel form (overwrite).
  void (*at_panel)(const Matrix& a, const Matrix& b, Matrix* out);
  /// a^T * b, streaming zero-skip form (overwrite; wins on few rows).
  void (*at_stream)(const Matrix& a, const Matrix& b, Matrix* out);
  /// acc += a^T * b, register-panel contraction then one add.
  void (*at_acc_panel)(const Matrix& a, const Matrix& b, Matrix* acc);
  /// acc += a^T * b via a thread-local zero-skip temporary then one Add.
  void (*at_acc_sparse)(const Matrix& a, const Matrix& b, Matrix* acc);
  /// acc += a^T * b for single-row a/b (rank-1, row-sparse).
  void (*at_acc_rank1)(const Matrix& a, const Matrix& b, Matrix* acc);
  /// acc (1 x n) += column sums of a.
  void (*colsum_acc)(const Matrix& a, Matrix* acc);
  /// One Adam update over flat arrays of length n (bc1/bc2 are the
  /// precomputed bias corrections 1-beta^t). Bit-identical across tiers:
  /// every lane operation (mul/add/div/sqrt) is a single IEEE rounding.
  void (*adam_step)(double* p, const double* g, double* m, double* v,
                    size_t n, double lr, double beta1, double beta2,
                    double eps, double bc1, double bc2);
  /// One SGD+momentum update over flat arrays of length n. Bit-identical
  /// across tiers for the same reason.
  void (*sgd_step)(double* p, const double* g, double* v, size_t n,
                   double lr, double momentum);
};

/// The bit-exact scalar tier (always available; also the reference tier's
/// arithmetic).
const KernelTable& ScalarTable();

/// The AVX2+FMA tier; null when the build does not compile it in
/// (QCFE_ENABLE_AVX2=OFF or a non-x86 target).
const KernelTable* Avx2Table();

/// The NEON tier; null when the build does not compile it in.
const KernelTable* NeonTable();

/// Separate bias / ReLU passes for paths that accumulate in memory (the
/// sparse product and the reference replay): identical per-element
/// arithmetic to the fused epilogues in every tier (one IEEE add / one
/// compare-select per element).
void BiasPass(const Matrix& bias, Matrix* out);
void ReluPass(Matrix* out);

}  // namespace internal
}  // namespace kernels
}  // namespace qcfe

#endif  // QCFE_NN_KERNELS_INTERNAL_H_
