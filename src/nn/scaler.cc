#include "nn/scaler.h"

#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>

#include "nn/matrix_io.h"
#include "util/serialize.h"

namespace qcfe {

namespace {
constexpr double kMinStd = 1e-9;
}  // namespace

void StandardScaler::Fit(const Matrix& x) {
  size_t n = x.rows(), d = x.cols();
  mean_.assign(d, 0.0);
  std_.assign(d, 1.0);
  if (n == 0) return;
  for (size_t r = 0; r < n; ++r) {
    const double* row = x.RowPtr(r);
    for (size_t c = 0; c < d; ++c) mean_[c] += row[c];
  }
  for (size_t c = 0; c < d; ++c) mean_[c] /= static_cast<double>(n);
  std::vector<double> var(d, 0.0);
  for (size_t r = 0; r < n; ++r) {
    const double* row = x.RowPtr(r);
    for (size_t c = 0; c < d; ++c) {
      double dv = row[c] - mean_[c];
      var[c] += dv * dv;
    }
  }
  for (size_t c = 0; c < d; ++c) {
    std_[c] = std::sqrt(var[c] / static_cast<double>(n));
    if (std_[c] < kMinStd) std_[c] = 1.0;  // constant column -> exact zero out
  }
}

Matrix StandardScaler::Transform(const Matrix& x) const {
  Matrix out = x;
  for (size_t r = 0; r < out.rows(); ++r) {
    double* row = out.RowPtr(r);
    for (size_t c = 0; c < out.cols(); ++c) {
      row[c] = (row[c] - mean_[c]) / std_[c];
    }
  }
  return out;
}

Matrix StandardScaler::FitTransform(const Matrix& x) {
  Fit(x);
  return Transform(x);
}

Status StandardScaler::ShrinkTo(const std::vector<size_t>& kept_columns) {
  std::vector<double> nm, ns;
  for (size_t c : kept_columns) {
    if (c >= mean_.size()) return Status::OutOfRange("scaler column");
    nm.push_back(mean_[c]);
    ns.push_back(std_[c]);
  }
  mean_ = std::move(nm);
  std_ = std::move(ns);
  return Status::OK();
}

Status StandardScaler::Save(std::ostream& os) const {
  os << std::setprecision(17);
  os << "scaler " << mean_.size() << "\n";
  for (double v : mean_) os << v << " ";
  os << "\n";
  for (double v : std_) os << v << " ";
  os << "\n";
  if (!os.good()) return Status::Internal("stream write failed");
  return Status::OK();
}

Status StandardScaler::Load(std::istream& is) {
  std::string magic;
  size_t d = 0;
  is >> magic >> d;
  if (magic != "scaler") return Status::ParseError("bad scaler header");
  mean_.assign(d, 0.0);
  std_.assign(d, 1.0);
  for (double& v : mean_) is >> v;
  for (double& v : std_) is >> v;
  if (is.fail()) return Status::ParseError("truncated scaler");
  return Status::OK();
}

void LogTargetScaler::Fit(const std::vector<double>& y) {
  fitted_ = true;
  if (y.empty()) {
    mean_ = 0.0;
    std_ = 1.0;
    return;
  }
  double sum = 0.0;
  for (double v : y) sum += std::log1p(std::max(v, 0.0));
  mean_ = sum / static_cast<double>(y.size());
  double var = 0.0;
  for (double v : y) {
    double d = std::log1p(std::max(v, 0.0)) - mean_;
    var += d * d;
  }
  std_ = std::sqrt(var / static_cast<double>(y.size()));
  if (std_ < kMinStd) std_ = 1.0;
  t_min_ = HUGE_VAL;
  t_max_ = -HUGE_VAL;
  for (double v : y) {
    double t = TransformOne(v);
    t_min_ = std::min(t_min_, t);
    t_max_ = std::max(t_max_, t);
  }
}

double LogTargetScaler::ClampTransformed(double yt, double margin) const {
  if (!fitted_) return yt;
  if (yt < t_min_) return t_min_;
  if (yt > t_max_ + margin) return t_max_ + margin;
  return yt;
}

std::vector<double> LogTargetScaler::Transform(
    const std::vector<double>& y) const {
  std::vector<double> out(y.size());
  for (size_t i = 0; i < y.size(); ++i) out[i] = TransformOne(y[i]);
  return out;
}

double LogTargetScaler::TransformOne(double y) const {
  return (std::log1p(std::max(y, 0.0)) - mean_) / std_;
}

std::vector<double> LogTargetScaler::InverseTransform(
    const std::vector<double>& yt) const {
  std::vector<double> out(yt.size());
  for (size_t i = 0; i < yt.size(); ++i) out[i] = InverseTransformOne(yt[i]);
  return out;
}

double LogTargetScaler::InverseTransformOne(double yt) const {
  return std::expm1(yt * std_ + mean_);
}

Status LogTargetScaler::Save(std::ostream& os) const {
  os << std::setprecision(17);
  os << "logscaler " << mean_ << " " << std_ << " " << t_min_ << " " << t_max_
     << "\n";
  if (!os.good()) return Status::Internal("stream write failed");
  return Status::OK();
}

Status LogTargetScaler::Load(std::istream& is) {
  std::string magic;
  is >> magic >> mean_ >> std_ >> t_min_ >> t_max_;
  if (magic != "logscaler" || is.fail()) {
    return Status::ParseError("bad logscaler");
  }
  fitted_ = true;
  return Status::OK();
}

void StandardScaler::SaveBinary(ByteWriter* w) const {
  WriteDoubles(mean_, w);
  WriteDoubles(std_, w);
}

Status StandardScaler::LoadBinary(ByteReader* r) {
  QCFE_RETURN_IF_ERROR(ReadDoubles(r, &mean_));
  QCFE_RETURN_IF_ERROR(ReadDoubles(r, &std_));
  if (mean_.size() != std_.size()) {
    return Status::DataLoss("standard scaler mean/std dimension mismatch (" +
                            std::to_string(mean_.size()) + " vs " +
                            std::to_string(std_.size()) + ")");
  }
  return Status::OK();
}

void LogTargetScaler::SaveBinary(ByteWriter* w) const {
  w->PutBool(fitted_);
  w->PutF64(mean_);
  w->PutF64(std_);
  w->PutF64(t_min_);
  w->PutF64(t_max_);
}

Status LogTargetScaler::LoadBinary(ByteReader* r) {
  QCFE_RETURN_IF_ERROR(r->ReadBool(&fitted_));
  QCFE_RETURN_IF_ERROR(r->ReadF64(&mean_));
  QCFE_RETURN_IF_ERROR(r->ReadF64(&std_));
  QCFE_RETURN_IF_ERROR(r->ReadF64(&t_min_));
  QCFE_RETURN_IF_ERROR(r->ReadF64(&t_max_));
  return Status::OK();
}

}  // namespace qcfe
