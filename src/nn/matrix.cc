#include "nn/matrix.h"

#include <algorithm>
#include <cmath>

#include "nn/kernels.h"
#include "util/rng.h"

namespace qcfe {

void Matrix::Fill(double v) {
  // Row-wise, not flat: a flat fill would write v into the pad columns and
  // break the padding-is-zero layout invariant for any v != 0.
  for (size_t r = 0; r < rows_; ++r) {
    double* dst = RowPtr(r);
    for (size_t c = 0; c < cols_; ++c) dst[c] = v;
  }
}

void Matrix::ZeroPadColumns() {
  if (ld_ == cols_) return;
  for (size_t r = 0; r < rows_; ++r) {
    double* row = data_.data() + r * ld_;
    std::fill(row + cols_, row + ld_, 0.0);
  }
}

std::vector<double> Matrix::Row(size_t r) const {
  QCFE_CHECK(r < rows_, "Matrix::Row index out of range");
  return std::vector<double>(RowPtr(r), RowPtr(r) + cols_);
}

void Matrix::SetRow(size_t r, const std::vector<double>& values) {
  QCFE_CHECK(r < rows_ && values.size() == cols_,
             "Matrix::SetRow requires an in-range row and a cols()-sized "
             "vector");
  double* dst = RowPtr(r);
  for (size_t c = 0; c < cols_; ++c) dst[c] = values[c];
}

Matrix Matrix::SelectRows(const std::vector<size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    QCFE_DCHECK(indices[i] < rows_, "SelectRows index out of range");
    const double* src = RowPtr(indices[i]);
    double* dst = out.RowPtr(i);
    for (size_t c = 0; c < cols_; ++c) dst[c] = src[c];
  }
  return out;
}

Matrix Matrix::SelectCols(const std::vector<size_t>& indices) const {
  Matrix out(rows_, indices.size());
  for (size_t r = 0; r < rows_; ++r) {
    const double* src = RowPtr(r);
    double* dst = out.RowPtr(r);
    for (size_t i = 0; i < indices.size(); ++i) {
      QCFE_DCHECK(indices[i] < cols_, "SelectCols index out of range");
      dst[i] = src[indices[i]];
    }
  }
  return out;
}

void Matrix::ResetShape(size_t rows, size_t cols) {
  ResetShapeUninitialized(rows, cols);
  std::fill(data_.begin(), data_.end(), 0.0);
}

void Matrix::ResetShapeUninitialized(size_t rows, size_t cols) {
  const size_t ld = LeadingDim(cols);
  // Steady-layout fast path: same physical shape means the pad columns are
  // already zero (the invariant every mutator maintains), so nothing at all
  // needs touching.
  if (ld == ld_ && cols == cols_ && rows * ld == data_.size()) {
    rows_ = rows;
    return;
  }
  rows_ = rows;
  cols_ = cols;
  ld_ = ld;
  // resize (not assign) keeps existing elements on the same-size path and
  // never reallocates while the new size fits the current capacity. A
  // layout change can expose stale buffer contents in the new pad region,
  // so re-establish the zeros there.
  data_.resize(rows * ld);
  ZeroPadColumns();
}

Matrix Matrix::MatMul(const Matrix& a, const Matrix& b) {
  Matrix out;
  MatMulInto(a, b, &out);
  return out;
}

void Matrix::MatMulInto(const Matrix& a, const Matrix& b, Matrix* out) {
  // Density-adaptive dispatch (see kernels.h): the sparse row-skip loop for
  // mostly-zero inputs (plan feature rows), the register-blocked dense
  // kernel otherwise — bit-identical either way.
  kernels::GemmNN(a, b, out);
}

Matrix Matrix::MatMulBT(const Matrix& a, const Matrix& b) {
  Matrix out;
  kernels::GemmBT(a, b, &out);
  return out;
}

Matrix Matrix::MatMulAT(const Matrix& a, const Matrix& b) {
  Matrix out;
  kernels::GemmAT(a, b, &out);
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out.At(c, r) = At(r, c);
  }
  return out;
}

void Matrix::Add(const Matrix& other) {
  QCFE_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
             "Matrix::Add shape mismatch");
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::Sub(const Matrix& other) {
  QCFE_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
             "Matrix::Sub shape mismatch");
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Matrix::Scale(double s) {
  for (double& x : data_) x *= s;
}

void Matrix::Hadamard(const Matrix& other) {
  QCFE_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
             "Matrix::Hadamard shape mismatch");
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

void Matrix::AddRowBroadcast(const Matrix& row) {
  QCFE_CHECK(row.rows() == 1 && row.cols() == cols_,
             "AddRowBroadcast requires a 1 x cols() row vector");
  for (size_t r = 0; r < rows_; ++r) {
    double* dst = RowPtr(r);
    const double* src = row.RowPtr(0);
    for (size_t c = 0; c < cols_; ++c) dst[c] += src[c];
  }
}

Matrix Matrix::ColSum() const {
  Matrix out(1, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* src = RowPtr(r);
    double* dst = out.RowPtr(0);
    for (size_t c = 0; c < cols_; ++c) dst[c] += src[c];
  }
  return out;
}

Matrix Matrix::ColMean() const {
  // Sum and scale in one output matrix — same chains as ColSum() followed
  // by Scale(), without the intermediate allocation.
  Matrix out(1, cols_);
  double* dst = out.RowPtr(0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* src = RowPtr(r);
    for (size_t c = 0; c < cols_; ++c) dst[c] += src[c];
  }
  if (rows_ > 0) {
    const double inv = 1.0 / static_cast<double>(rows_);
    for (size_t c = 0; c < cols_; ++c) dst[c] *= inv;
  }
  return out;
}

void Matrix::RandomizeGaussian(Rng* rng, double stddev) {
  // Row-wise: the pad columns must stay zero (and the draw sequence must
  // cover exactly the logical elements, independent of the padded layout).
  for (size_t r = 0; r < rows_; ++r) {
    double* dst = RowPtr(r);
    for (size_t c = 0; c < cols_; ++c) dst[c] = rng->Gaussian(0.0, stddev);
  }
}

double Matrix::Norm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

}  // namespace qcfe
