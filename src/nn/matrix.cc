#include "nn/matrix.h"

#include <cmath>

#include "util/rng.h"

namespace qcfe {

void Matrix::Fill(double v) {
  for (double& x : data_) x = v;
}

std::vector<double> Matrix::Row(size_t r) const {
  assert(r < rows_);
  return std::vector<double>(RowPtr(r), RowPtr(r) + cols_);
}

void Matrix::SetRow(size_t r, const std::vector<double>& values) {
  assert(r < rows_ && values.size() == cols_);
  double* dst = RowPtr(r);
  for (size_t c = 0; c < cols_; ++c) dst[c] = values[c];
}

Matrix Matrix::SelectRows(const std::vector<size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    assert(indices[i] < rows_);
    const double* src = RowPtr(indices[i]);
    double* dst = out.RowPtr(i);
    for (size_t c = 0; c < cols_; ++c) dst[c] = src[c];
  }
  return out;
}

Matrix Matrix::SelectCols(const std::vector<size_t>& indices) const {
  Matrix out(rows_, indices.size());
  for (size_t r = 0; r < rows_; ++r) {
    const double* src = RowPtr(r);
    double* dst = out.RowPtr(r);
    for (size_t i = 0; i < indices.size(); ++i) {
      assert(indices[i] < cols_);
      dst[i] = src[indices[i]];
    }
  }
  return out;
}

void Matrix::ResetShape(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

Matrix Matrix::MatMul(const Matrix& a, const Matrix& b) {
  Matrix out;
  MatMulInto(a, b, &out);
  return out;
}

void Matrix::MatMulInto(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.cols() == b.rows());
  assert(out != &a && out != &b);
  out->ResetShape(a.rows(), b.cols());
  const size_t m = a.rows();
  const size_t kk = a.cols();
  const size_t n = b.cols();
  // i-k-j loop order keeps the inner loop streaming over contiguous rows of
  // b, and the zero-skip makes the cost proportional to the non-zeros of
  // each input row — plan feature vectors are ~90% zeros, so this beats
  // dense register-tiled kernels on real workloads. Each output element
  // accumulates its k-terms in ascending k order, so results are identical
  // at any batch size.
  for (size_t i = 0; i < m; ++i) {
    const double* arow = a.RowPtr(i);
    double* __restrict orow = out->RowPtr(i);
    for (size_t k = 0; k < kk; ++k) {
      double av = arow[k];
      if (av == 0.0) continue;
      const double* __restrict brow = b.RowPtr(k);
      for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

Matrix Matrix::MatMulBT(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix out(a.rows(), b.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.RowPtr(i);
    double* orow = out.RowPtr(i);
    for (size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.RowPtr(j);
      double acc = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      orow[j] = acc;
    }
  }
  return out;
}

Matrix Matrix::MatMulAT(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix out(a.cols(), b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* arow = a.RowPtr(r);
    const double* brow = b.RowPtr(r);
    for (size_t i = 0; i < a.cols(); ++i) {
      double av = arow[i];
      if (av == 0.0) continue;
      double* orow = out.RowPtr(i);
      for (size_t j = 0; j < b.cols(); ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out.At(c, r) = At(r, c);
  }
  return out;
}

void Matrix::Add(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::Sub(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Matrix::Scale(double s) {
  for (double& x : data_) x *= s;
}

void Matrix::Hadamard(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

void Matrix::AddRowBroadcast(const Matrix& row) {
  assert(row.rows() == 1 && row.cols() == cols_);
  for (size_t r = 0; r < rows_; ++r) {
    double* dst = RowPtr(r);
    const double* src = row.RowPtr(0);
    for (size_t c = 0; c < cols_; ++c) dst[c] += src[c];
  }
}

Matrix Matrix::ColSum() const {
  Matrix out(1, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* src = RowPtr(r);
    double* dst = out.RowPtr(0);
    for (size_t c = 0; c < cols_; ++c) dst[c] += src[c];
  }
  return out;
}

Matrix Matrix::ColMean() const {
  Matrix out = ColSum();
  if (rows_ > 0) out.Scale(1.0 / static_cast<double>(rows_));
  return out;
}

void Matrix::RandomizeGaussian(Rng* rng, double stddev) {
  for (double& x : data_) x = rng->Gaussian(0.0, stddev);
}

double Matrix::Norm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

}  // namespace qcfe
