#ifndef QCFE_NN_LINALG_H_
#define QCFE_NN_LINALG_H_

/// \file linalg.h
/// Small dense linear-algebra routines. The feature snapshot (paper
/// Section III-A) fits per-operator cost coefficients with ordinary least
/// squares; we solve the normal equations with a Cholesky factorisation and
/// a ridge fallback for rank-deficient designs (e.g. an operator observed at
/// a single cardinality).

#include <vector>

#include "nn/matrix.h"
#include "util/status.h"

namespace qcfe {

/// Solves the symmetric positive definite system A x = b in place via
/// Cholesky (A is n x n, b is n x 1). Fails on non-SPD input.
Status CholeskySolve(const Matrix& a, const std::vector<double>& b,
                     std::vector<double>* x);

/// Least squares: minimises ||A x - y||^2 (+ ridge * ||x||^2).
/// A is (m x n) with m >= 1; returns coefficient vector of length n.
/// If the normal equations are singular, retries with increasing ridge so a
/// finite answer is always produced for non-empty input.
Result<std::vector<double>> LeastSquares(const Matrix& a,
                                         const std::vector<double>& y,
                                         double ridge = 0.0);

/// Non-negative least squares via projected coordinate descent. Cost
/// coefficients are physically non-negative (time per page / per tuple), so
/// the snapshot uses this to keep estimates interpretable.
Result<std::vector<double>> NonNegativeLeastSquares(
    const Matrix& a, const std::vector<double>& y, int max_iters = 200,
    double ridge = 1e-9);

}  // namespace qcfe

#endif  // QCFE_NN_LINALG_H_
