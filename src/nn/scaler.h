#ifndef QCFE_NN_SCALER_H_
#define QCFE_NN_SCALER_H_

/// \file scaler.h
/// Feature/target normalisation. Learned cost models train on standardised
/// features and log-transformed standardised targets; both transforms must be
/// invertible at inference time and serializable with the model.

#include <iosfwd>
#include <vector>

#include "nn/matrix.h"
#include "util/status.h"

namespace qcfe {

class ByteReader;
class ByteWriter;

/// Per-column z-score standardiser: x' = (x - mean) / std, with std floored
/// so constant columns map to exactly zero rather than NaN.
class StandardScaler {
 public:
  /// Learns column means/stds from the batch.
  void Fit(const Matrix& x);

  /// Applies the learned transform (columns must match Fit input).
  Matrix Transform(const Matrix& x) const;

  /// Fit + Transform in one step.
  Matrix FitTransform(const Matrix& x);

  /// Keeps only the listed columns of the fitted statistics; mirrors
  /// Mlp::ShrinkInputs after feature reduction.
  Status ShrinkTo(const std::vector<size_t>& kept_columns);

  bool fitted() const { return !mean_.empty(); }
  size_t dims() const { return mean_.size(); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return std_; }

  Status Save(std::ostream& os) const;
  Status Load(std::istream& is);

  /// Binary form for model artifacts (core/artifact.h): bit-exact doubles.
  void SaveBinary(ByteWriter* w) const;
  Status LoadBinary(ByteReader* r);

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

/// Target transform y' = (log1p(y) - mean) / std. Latencies are heavy-tailed;
/// the log keeps MSE from being dominated by the slowest queries (the
/// standard choice in QPPNet/MSCN-style estimators).
class LogTargetScaler {
 public:
  void Fit(const std::vector<double>& y);

  std::vector<double> Transform(const std::vector<double>& y) const;

  /// Inverse transform back to original units (expm1 of de-standardised).
  std::vector<double> InverseTransform(const std::vector<double>& yt) const;
  double InverseTransformOne(double yt) const;
  double TransformOne(double y) const;

  /// Clamps a transformed prediction to the label range observed at Fit()
  /// time (+ margin above only). Predictions outside the observed range are
  /// never justified and unbounded extrapolation in log space produces
  /// astronomical q-errors. Upward the margin is a benign log-space ratio;
  /// downward it is not applied at all: for sub-millisecond labels
  /// log1p(y) ~ y, so even a small downward margin crosses zero and expm1
  /// would return a *negative* latency — predictions stop at the smallest
  /// observed label instead.
  double ClampTransformed(double yt, double margin = 0.5) const;

  bool fitted() const { return fitted_; }
  double mean() const { return mean_; }
  double stddev() const { return std_; }

  Status Save(std::ostream& os) const;
  Status Load(std::istream& is);

  /// Binary form for model artifacts (core/artifact.h): bit-exact doubles.
  void SaveBinary(ByteWriter* w) const;
  Status LoadBinary(ByteReader* r);

 private:
  bool fitted_ = false;
  double mean_ = 0.0;
  double std_ = 1.0;
  double t_min_ = -10.0;
  double t_max_ = 10.0;
};

}  // namespace qcfe

#endif  // QCFE_NN_SCALER_H_
