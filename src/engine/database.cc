#include "engine/database.h"

#include <cmath>

#include "util/rng.h"

namespace qcfe {

Result<std::unique_ptr<PlanNode>> Database::Plan(const QuerySpec& query,
                                                 const Knobs& knobs) const {
  Planner planner(&catalog_, knobs);
  return planner.Plan(query);
}

std::string Database::CacheKey(const PlanNode& plan, const Knobs& knobs) {
  // Bucket work_mem by powers of two: spill decisions flip at thresholds, so
  // nearby values almost always behave identically.
  int bucket = static_cast<int>(std::log2(std::max(knobs.work_mem_kb, 1.0)));
  return plan.Fingerprint() + "|wm" + std::to_string(bucket);
}

Result<QueryRunResult> Database::Run(const QuerySpec& query,
                                     const Environment& env, Rng* noise_rng) {
  Result<std::unique_ptr<PlanNode>> planned = Plan(query, env.knobs);
  if (!planned.ok()) return planned.status();
  std::unique_ptr<PlanNode> plan = std::move(planned.value());

  QueryRunResult result;
  std::string key = CacheKey(*plan, env.knobs);
  size_t result_rows = 0;
  std::shared_ptr<const std::vector<NodeExecRecord>> cached;
  {
    ReaderMutexLock lock(&cache_mu_);
    auto it = exec_cache_.find(key);
    // Copying the shared_ptr under the lock keeps the records alive through
    // the replay even if another thread clears the cache meanwhile.
    if (it != exec_cache_.end()) cached = it->second;
  }
  if (cached != nullptr) {
    // Replay counts into the plan (pre-order alignment).
    size_t i = 0;
    plan->Visit([&](PlanNode* node) {
      const NodeExecRecord& rec = (*cached)[i++];
      node->actual_rows = rec.actual_rows;
      node->input_card = rec.input_card;
      node->input_card2 = rec.input_card2;
      node->work = rec.work;
    });
    result_rows = static_cast<size_t>(plan->actual_rows);
  } else {
    // Execute outside the lock. Two threads racing on the same miss both
    // execute and compute identical records (execution is deterministic);
    // the first insert wins and the duplicate is discarded.
    Executor executor(&catalog_, env.knobs);
    Result<Relation> rel = executor.Execute(plan.get());
    if (!rel.ok()) return rel.status();
    result_rows = rel.value().NumRows();
    auto records = std::make_shared<std::vector<NodeExecRecord>>();
    plan->Visit([&](PlanNode* node) {
      records->push_back(NodeExecRecord{node->actual_rows, node->input_card,
                                        node->input_card2, node->work});
    });
    WriterMutexLock lock(&cache_mu_);
    exec_cache_.emplace(key, std::move(records));
  }

  if (query.limit.has_value()) {
    result_rows = std::min(result_rows, *query.limit);
  }

  CostSimulator sim(env, catalog_.TotalSizeMb());
  result.total_ms = sim.PricePlan(plan.get(), noise_rng);
  result.result_rows = result_rows;
  result.plan = std::move(plan);
  return result;
}

Result<Relation> Database::ExecuteForResult(const QuerySpec& query,
                                            const Environment& env,
                                            Rng* noise_rng,
                                            QueryRunResult* run) {
  Result<std::unique_ptr<PlanNode>> planned = Plan(query, env.knobs);
  if (!planned.ok()) return planned.status();
  std::unique_ptr<PlanNode> plan = std::move(planned.value());

  Executor executor(&catalog_, env.knobs);
  Result<Relation> rel = executor.Execute(plan.get());
  if (!rel.ok()) return rel.status();

  Relation out = std::move(rel.value());
  if (query.limit.has_value() && out.rows.size() > *query.limit) {
    out.rows.resize(*query.limit);
  }

  CostSimulator sim(env, catalog_.TotalSizeMb());
  double total = sim.PricePlan(plan.get(), noise_rng);
  if (run != nullptr) {
    run->total_ms = total;
    run->result_rows = out.rows.size();
    run->plan = std::move(plan);
  }
  return out;
}

}  // namespace qcfe
