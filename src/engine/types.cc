#include "engine/types.h"

#include <cmath>

#include "util/string_util.h"

namespace qcfe {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "int64";
    case DataType::kFloat64:
      return "float64";
    case DataType::kString:
      return "string";
  }
  return "?";
}

size_t DataTypeWidth(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return 8;
    case DataType::kFloat64:
      return 8;
    case DataType::kString:
      return 24;  // PostgreSQL-style average attribute width assumption
  }
  return 8;
}

namespace {
bool IsNumeric(const Value& v) { return v.index() != 2; }
}  // namespace

int CompareValues(const Value& a, const Value& b) {
  if (IsNumeric(a) && IsNumeric(b)) {
    double x = ValueToDouble(a), y = ValueToDouble(b);
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (IsNumeric(a) != IsNumeric(b)) {
    // Mixed comparison: numbers order before strings, deterministically.
    return IsNumeric(a) ? -1 : 1;
  }
  const std::string& x = std::get<std::string>(a);
  const std::string& y = std::get<std::string>(b);
  if (x < y) return -1;
  if (x > y) return 1;
  return 0;
}

double ValueToDouble(const Value& v) {
  switch (v.index()) {
    case 0:
      return static_cast<double>(std::get<int64_t>(v));
    case 1:
      return std::get<double>(v);
    default:
      return static_cast<double>(HashValue(v) % (1ULL << 52));
  }
}

std::string ValueToString(const Value& v) {
  switch (v.index()) {
    case 0:
      return std::to_string(std::get<int64_t>(v));
    case 1:
      return FormatDouble(std::get<double>(v), 4);
    default:
      return "'" + std::get<std::string>(v) + "'";
  }
}

uint64_t HashValue(const Value& v) {
  auto fnv = [](const unsigned char* data, size_t n, uint64_t seed) {
    uint64_t h = 1469598103934665603ULL ^ seed;
    for (size_t i = 0; i < n; ++i) {
      h ^= data[i];
      h *= 1099511628211ULL;
    }
    return h;
  };
  switch (v.index()) {
    case 0: {
      int64_t x = std::get<int64_t>(v);
      return fnv(reinterpret_cast<const unsigned char*>(&x), sizeof(x), 1);
    }
    case 1: {
      double d = std::get<double>(v);
      // Hash integral doubles identically to the int64 of the same value so
      // cross-type equi-joins hash consistently.
      if (std::floor(d) == d && std::fabs(d) < 9e15) {
        int64_t x = static_cast<int64_t>(d);
        return fnv(reinterpret_cast<const unsigned char*>(&x), sizeof(x), 1);
      }
      return fnv(reinterpret_cast<const unsigned char*>(&d), sizeof(d), 2);
    }
    default: {
      const std::string& s = std::get<std::string>(v);
      return fnv(reinterpret_cast<const unsigned char*>(s.data()), s.size(), 3);
    }
  }
}

DataType ValueType(const Value& v) {
  switch (v.index()) {
    case 0:
      return DataType::kInt64;
    case 1:
      return DataType::kFloat64;
    default:
      return DataType::kString;
  }
}

}  // namespace qcfe
