#include "engine/plan.h"

#include "util/string_util.h"

namespace qcfe {

const char* OpTypeName(OpType op) {
  switch (op) {
    case OpType::kSeqScan:
      return "Seq Scan";
    case OpType::kIndexScan:
      return "Index Scan";
    case OpType::kSort:
      return "Sort";
    case OpType::kAggregate:
      return "Aggregate";
    case OpType::kMaterialize:
      return "Materialize";
    case OpType::kHashJoin:
      return "Hash Join";
    case OpType::kMergeJoin:
      return "Merge Join";
    case OpType::kNestedLoop:
      return "Nested Loop";
  }
  return "?";
}

const std::vector<OpType>& AllOpTypes() {
  static const std::vector<OpType> kAll = {
      OpType::kSeqScan,     OpType::kIndexScan, OpType::kSort,
      OpType::kAggregate,   OpType::kMaterialize, OpType::kHashJoin,
      OpType::kMergeJoin,   OpType::kNestedLoop};
  return kAll;
}

WorkCounts& WorkCounts::operator+=(const WorkCounts& other) {
  seq_pages += other.seq_pages;
  rand_pages += other.rand_pages;
  tuples += other.tuples;
  index_tuples += other.index_tuples;
  op_units += other.op_units;
  return *this;
}

void PlanNode::Visit(const std::function<void(PlanNode*)>& fn) {
  fn(this);
  for (auto& c : children) c->Visit(fn);
}

void PlanNode::VisitConst(const std::function<void(const PlanNode*)>& fn) const {
  fn(this);
  for (const auto& c : children) c->VisitConst(fn);
}

size_t PlanNode::CountNodes() const {
  size_t n = 1;
  for (const auto& c : children) n += c->CountNodes();
  return n;
}

double PlanNode::TotalActualMs() const {
  double total = actual_ms;
  for (const auto& c : children) total += c->TotalActualMs();
  return total;
}

std::string PlanNode::Fingerprint() const {
  std::string fp = OpTypeName(op);
  if (!table.empty()) fp += "(" + table + ")";
  if (!index_column.empty()) fp += "[idx:" + index_column + "]";
  if (!projection.empty()) fp += "[proj:" + Join(projection, ",") + "]";
  for (const auto& f : filters) fp += "{" + f.ToString() + "}";
  if (join.has_value()) fp += "{" + join->ToString() + "}";
  for (const auto& k : sort_keys) {
    fp += "<" + k.column.ToString() + (k.descending ? " desc" : "") + ">";
  }
  for (const auto& g : group_by) fp += "<g:" + g.ToString() + ">";
  for (const auto& a : aggregates) fp += "<a:" + a.ToString() + ">";
  if (distinct) fp += "<distinct>";
  fp += "[";
  for (const auto& c : children) fp += c->Fingerprint() + ";";
  fp += "]";
  return fp;
}

std::string PlanNode::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + OpTypeName(op);
  if (!table.empty()) out += " on " + table;
  if (!index_column.empty()) out += " using " + index_column;
  if (join.has_value()) out += " (" + join->ToString() + ")";
  if (!filters.empty()) {
    std::vector<std::string> fs;
    for (const auto& f : filters) fs.push_back(f.ToString());
    out += " filter(" + Join(fs, " and ") + ")";
  }
  out += "  (est_rows=" + FormatDouble(est_rows, 0) +
         " cost=" + FormatDouble(est_cost, 1) +
         " actual_rows=" + FormatDouble(actual_rows, 0) +
         " ms=" + FormatDouble(actual_ms, 3) + ")";
  for (const auto& c : children) out += "\n" + c->ToString(indent + 1);
  return out;
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto copy = std::make_unique<PlanNode>();
  copy->op = op;
  copy->table = table;
  copy->index_column = index_column;
  copy->projection = projection;
  copy->filters = filters;
  copy->join = join;
  copy->sort_keys = sort_keys;
  copy->group_by = group_by;
  copy->aggregates = aggregates;
  copy->distinct = distinct;
  copy->est_rows = est_rows;
  copy->est_width = est_width;
  copy->est_cost = est_cost;
  copy->est_self_cost = est_self_cost;
  copy->actual_rows = actual_rows;
  copy->input_card = input_card;
  copy->input_card2 = input_card2;
  copy->work = work;
  copy->actual_ms = actual_ms;
  for (const auto& c : children) copy->children.push_back(c->Clone());
  return copy;
}

}  // namespace qcfe
