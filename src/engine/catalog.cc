#include "engine/catalog.h"

namespace qcfe {

Status Catalog::AddTable(std::unique_ptr<Table> table) {
  const std::string& name = table->name();
  if (tables_.count(name) > 0) {
    return Status::InvalidArgument("duplicate table " + name);
  }
  tables_[name] = std::move(table);
  return Status::OK();
}

Table* Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

void Catalog::AnalyzeAll() {
  stats_.clear();
  for (const auto& [name, table] : tables_) {
    stats_[name] = AnalyzeTable(*table);
  }
}

const TableStats* Catalog::GetStats(const std::string& table) const {
  auto it = stats_.find(table);
  return it == stats_.end() ? nullptr : &it->second;
}

const ColumnStats* Catalog::GetColumnStats(const std::string& table,
                                           const std::string& column) const {
  const TableStats* ts = GetStats(table);
  if (ts == nullptr) return nullptr;
  auto it = ts->columns.find(column);
  return it == ts->columns.end() ? nullptr : &it->second;
}

double Catalog::TotalSizeMb() const {
  double pages = 0.0;
  for (const auto& [name, table] : tables_) {
    pages += static_cast<double>(table->num_pages());
  }
  return pages * static_cast<double>(kPageSizeBytes) / (1024.0 * 1024.0);
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace qcfe
