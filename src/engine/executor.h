#ifndef QCFE_ENGINE_EXECUTOR_H_
#define QCFE_ENGINE_EXECUTOR_H_

/// \file executor.h
/// Materializing executor. Runs a physical plan over real data, producing
/// correct results *and* the per-operator work counts (pages, tuples,
/// comparisons) that the cost simulator prices into ground-truth latencies.
/// Work counts reflect what the operator logically does (e.g. a Nested Loop
/// is charged n1*n2 units even though equi-joins are evaluated via hashing
/// internally for speed).

#include <string>
#include <vector>

#include "engine/catalog.h"
#include "engine/knobs.h"
#include "engine/plan.h"
#include "util/status.h"

namespace qcfe {

/// A materialized intermediate result with a qualified-name schema.
struct Relation {
  Schema schema;
  std::vector<std::vector<Value>> rows;

  size_t NumRows() const { return rows.size(); }
  /// Bytes under the width accounting used for spill decisions.
  double SizeBytes() const {
    return static_cast<double>(rows.size()) *
           static_cast<double>(schema.RowWidth());
  }
};

/// Executes plans against a catalog under a knob configuration (work_mem
/// controls spill behaviour, which feeds back into work counts).
///
/// Thread-safety: an Executor holds no mutable state — `catalog_` is read
/// through const paths only and `knobs_` is an immutable by-value copy — so
/// one instance may execute distinct plans from several threads, and the
/// parallel collection layer cheaply builds one Executor per worker/call.
/// The catalog must outlive the executor and must not be mutated (no
/// AddTable/AnalyzeAll) while executions are in flight.
class Executor {
 public:
  /// `catalog` must be non-null (checked: construction aborts on nullptr,
  /// since a null catalog is a caller lifetime bug, not a runtime error).
  Executor(const Catalog* catalog, const Knobs& knobs);

  /// Executes the subtree rooted at `node`, filling actual_rows, input_card
  /// and work on every node. Returns the materialized output.
  Result<Relation> Execute(PlanNode* node) const;

 private:
  Result<Relation> ExecSeqScan(PlanNode* node) const;
  Result<Relation> ExecIndexScan(PlanNode* node) const;
  Result<Relation> ExecSort(PlanNode* node) const;
  Result<Relation> ExecAggregate(PlanNode* node) const;
  Result<Relation> ExecMaterialize(PlanNode* node) const;
  Result<Relation> ExecHashJoin(PlanNode* node) const;
  Result<Relation> ExecMergeJoin(PlanNode* node) const;
  Result<Relation> ExecNestedLoop(PlanNode* node) const;

  /// Shared by hash/merge/NL joins: locates key columns, joins, concatenates.
  Result<Relation> EquiJoin(PlanNode* node, const Relation& left,
                            const Relation& right) const;

  /// Builds the (qualified) output schema of a scan of `table` restricted to
  /// `projection` (empty = all columns); fills `col_indices` with the indices
  /// of emitted columns in the base table.
  Status ScanSchema(const Table& table, const std::vector<std::string>& proj,
                    Schema* schema, std::vector<size_t>* col_indices) const;

  const Catalog* catalog_;
  Knobs knobs_;
};

}  // namespace qcfe

#endif  // QCFE_ENGINE_EXECUTOR_H_
