#ifndef QCFE_ENGINE_BTREE_H_
#define QCFE_ENGINE_BTREE_H_

/// \file btree.h
/// In-memory B+-tree over (double key -> row id) used by index scans. Keys
/// are the numeric view of the indexed column (all indexed columns in the
/// three benchmarks are numeric). Duplicates are allowed; range scans return
/// row ids in key order, which gives index scans their "sorted output"
/// property for merge joins.

#include <cstdint>
#include <memory>
#include <vector>

namespace qcfe {

/// Bulk-loadable B+-tree with insert and range scan.
class BPlusTree {
 public:
  /// Maximum keys per node before a split.
  static constexpr size_t kFanout = 64;

  BPlusTree();

  /// Bulk load from (key, row_id) pairs; sorts internally. Faster and more
  /// compact than repeated Insert; used when an index is first built.
  void BulkLoad(std::vector<std::pair<double, uint32_t>> entries);

  /// Single insertion (splits on overflow).
  void Insert(double key, uint32_t row_id);

  /// Appends row ids with key in [lo, hi] (inclusive on both ends as
  /// requested) to `out`, in key order. Infinite bounds express one-sided
  /// ranges.
  void RangeScan(double lo, bool lo_inclusive, double hi, bool hi_inclusive,
                 std::vector<uint32_t>* out) const;

  /// Appends row ids whose key equals `key`.
  void PointLookup(double key, std::vector<uint32_t>* out) const;

  size_t size() const { return size_; }
  /// Height of the tree (1 = just a leaf). Exposed for tests and for the
  /// cost simulator's index-descent accounting.
  size_t height() const { return height_; }
  /// Number of leaf nodes (proxy for index pages touched by a full scan).
  size_t leaf_count() const;

 private:
  struct Node {
    bool is_leaf = true;
    std::vector<double> keys;
    // Internal: children.size() == keys.size() + 1.
    std::vector<std::unique_ptr<Node>> children;
    // Leaf payloads parallel to keys.
    std::vector<uint32_t> values;
    Node* next_leaf = nullptr;  // leaf chain for range scans
  };

  /// Returns the new right sibling if the child split, plus the separator.
  struct SplitResult {
    std::unique_ptr<Node> right;
    double separator = 0.0;
  };

  SplitResult InsertInto(Node* node, double key, uint32_t row_id);
  const Node* FindLeaf(double key) const;
  void RelinkLeaves();

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  size_t height_ = 1;
};

}  // namespace qcfe

#endif  // QCFE_ENGINE_BTREE_H_
