#ifndef QCFE_ENGINE_COST_SIMULATOR_H_
#define QCFE_ENGINE_COST_SIMULATOR_H_

/// \file cost_simulator.h
/// Ground-truth latency model (the hardware substitute). Implements the
/// paper's Section III-A decomposition explicitly:
///
///   latency(op) = cs*n_seq + cr*n_rand + ct*n_tuple + ci*n_index + co*n_op
///
/// where the coefficient vector C = {cs, cr, ct, ci, co} is a deterministic
/// function of the *environment* (hardware profile + knobs) and the count
/// vector N comes from real execution. Multiplicative log-normal noise makes
/// label collection realistically stochastic. Because the generative model
/// matches the paper's assumption ("ignored variables only influence C"),
/// the feature snapshot has a real signal to estimate — and residual effects
/// (spill-induced count changes, JIT setup costs) keep the problem honest.

#include "engine/knobs.h"
#include "engine/plan.h"

namespace qcfe {

class Rng;

/// The paper's C vector for one operator type.
struct CostCoefficients {
  double cs = 0.0;  ///< ms per sequential page
  double cr = 0.0;  ///< ms per random page
  double ct = 0.0;  ///< ms per tuple
  double ci = 0.0;  ///< ms per index tuple
  double co = 0.0;  ///< ms per operator-specific unit
};

/// Prices work counts under one environment.
class CostSimulator {
 public:
  /// `db_size_mb` drives the buffer-cache hit fraction (shared_buffers
  /// relative to the working set).
  CostSimulator(const Environment& env, double db_size_mb);

  /// Environment-determined coefficients for an operator type (noise-free).
  CostCoefficients CoefficientsFor(OpType op) const;

  /// Noise-free expected latency of one operator given its work counts.
  double ExpectedOperatorMs(OpType op, const WorkCounts& work) const;

  /// Noisy sampled latency of one operator (`rng` may be null for
  /// deterministic pricing).
  double SampleOperatorMs(OpType op, const WorkCounts& work, Rng* rng) const;

  /// Per-query constant overhead: planning/startup plus JIT compilation
  /// when the jit knob is on (scales mildly with plan size).
  double QueryOverheadMs(size_t plan_nodes, Rng* rng) const;

  /// Prices a whole executed plan in place (fills actual_ms on every node)
  /// and returns the total query latency including overhead.
  double PricePlan(PlanNode* root, Rng* rng) const;

  /// Buffer-cache hit fraction implied by the environment.
  double cache_hit_fraction() const { return cache_hit_; }

  /// Noise level (log-normal sigma) applied per operator.
  static constexpr double kNoiseSigma = 0.06;

 private:
  Environment env_;
  double cache_hit_ = 0.5;
  double mem_page_ms_ = 0.0;
  double disk_seq_ms_ = 0.0;
  double disk_rand_ms_ = 0.0;
  double jit_factor_ = 1.0;
  double parallel_factor_ = 1.0;
};

}  // namespace qcfe

#endif  // QCFE_ENGINE_COST_SIMULATOR_H_
