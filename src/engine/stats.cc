#include "engine/stats.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace qcfe {

double ColumnStats::FractionBelow(double x) const {
  if (num_rows == 0 || histogram.empty()) return 0.5;
  if (x <= min) return 0.0;
  if (x >= max) return 1.0;
  double width = (max - min) / static_cast<double>(histogram.size());
  if (width <= 0.0) return 0.5;
  double pos = (x - min) / width;
  size_t full = static_cast<size_t>(pos);
  double frac_in_bucket = pos - static_cast<double>(full);
  size_t below = 0;
  for (size_t i = 0; i < full && i < histogram.size(); ++i) {
    below += histogram[i];
  }
  double partial = full < histogram.size()
                       ? frac_in_bucket * static_cast<double>(histogram[full])
                       : 0.0;
  return (static_cast<double>(below) + partial) / static_cast<double>(num_rows);
}

double ColumnStats::EstimateSelectivity(int compare_op_class,
                                        double literal) const {
  // compare_op_class: 0 = equality, -1 = less-than family, +1 = greater-than
  // family, 2 = not-equal.
  if (num_rows == 0) return 0.1;
  switch (compare_op_class) {
    case 0:
      return n_distinct > 0 ? 1.0 / static_cast<double>(n_distinct) : 0.01;
    case 2: {
      double eq = n_distinct > 0 ? 1.0 / static_cast<double>(n_distinct) : 0.01;
      return 1.0 - eq;
    }
    case -1:
      return std::clamp(FractionBelow(literal), 0.0005, 1.0);
    case 1:
      return std::clamp(1.0 - FractionBelow(literal), 0.0005, 1.0);
    default:
      return 0.1;
  }
}

TableStats AnalyzeTable(const Table& table) {
  TableStats stats;
  stats.num_rows = table.num_rows();
  stats.num_pages = table.num_pages();
  size_t n = table.num_rows();
  for (size_t c = 0; c < table.schema().num_columns(); ++c) {
    ColumnStats cs;
    cs.num_rows = n;
    if (n > 0) {
      cs.min = table.GetDouble(0, c);
      cs.max = cs.min;
      for (size_t r = 1; r < n; ++r) {
        double v = table.GetDouble(r, c);
        cs.min = std::min(cs.min, v);
        cs.max = std::max(cs.max, v);
      }
      // Order correlation: Pearson between value and physical row position.
      {
        double mean_pos = static_cast<double>(n - 1) / 2.0;
        double mean_val = 0.0;
        for (size_t r = 0; r < n; ++r) mean_val += table.GetDouble(r, c);
        mean_val /= static_cast<double>(n);
        double cov = 0.0, var_v = 0.0, var_p = 0.0;
        for (size_t r = 0; r < n; ++r) {
          double dv = table.GetDouble(r, c) - mean_val;
          double dp = static_cast<double>(r) - mean_pos;
          cov += dv * dp;
          var_v += dv * dv;
          var_p += dp * dp;
        }
        cs.correlation = (var_v > 0.0 && var_p > 0.0)
                             ? cov / std::sqrt(var_v * var_p)
                             : 0.0;
      }
      // Distinct count: exact via hashing (tables are small enough).
      std::unordered_set<uint64_t> distinct;
      distinct.reserve(n);
      for (size_t r = 0; r < n; ++r) {
        distinct.insert(HashValue(table.GetValue(r, c)));
      }
      cs.n_distinct = distinct.size();
      // Equi-width histogram over the numeric view.
      cs.histogram.assign(ColumnStats::kHistogramBuckets, 0);
      double width = (cs.max - cs.min) /
                     static_cast<double>(ColumnStats::kHistogramBuckets);
      for (size_t r = 0; r < n; ++r) {
        size_t bucket = 0;
        if (width > 0.0) {
          bucket = static_cast<size_t>((table.GetDouble(r, c) - cs.min) / width);
          if (bucket >= cs.histogram.size()) bucket = cs.histogram.size() - 1;
        }
        cs.histogram[bucket]++;
      }
      // Deterministic stratified sample: every n/k-th row.
      size_t stride = std::max<size_t>(1, n / ColumnStats::kSampleSize);
      for (size_t r = 0; r < n && cs.sample.size() < ColumnStats::kSampleSize;
           r += stride) {
        cs.sample.push_back(table.GetValue(r, c));
      }
    }
    stats.columns[table.schema().column(c).name] = std::move(cs);
  }
  return stats;
}

}  // namespace qcfe
