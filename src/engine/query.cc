#include "engine/query.h"

#include "util/string_util.h"

namespace qcfe {

std::string Aggregate::ToString() const {
  const char* name = "count";
  switch (kind) {
    case Kind::kCount:
      name = "count";
      break;
    case Kind::kSum:
      name = "sum";
      break;
    case Kind::kAvg:
      name = "avg";
      break;
    case Kind::kMin:
      name = "min";
      break;
    case Kind::kMax:
      name = "max";
      break;
  }
  std::string arg = column.column.empty() ? "*" : column.ToString();
  return std::string(name) + "(" + arg + ")";
}

std::string QuerySpec::ToString() const {
  std::vector<std::string> sel;
  for (const auto& a : aggregates) sel.push_back(a.ToString());
  for (const auto& c : select_columns) sel.push_back(c.ToString());
  if (sel.empty()) sel.push_back("*");

  std::string out = "select ";
  if (distinct) out += "distinct ";
  out += Join(sel, ", ");
  out += " from " + Join(tables, ", ");
  std::vector<std::string> conds;
  for (const auto& j : joins) conds.push_back(j.ToString());
  for (const auto& f : filters) conds.push_back(f.ToString());
  if (!conds.empty()) out += " where " + Join(conds, " and ");
  if (!group_by.empty()) {
    std::vector<std::string> g;
    for (const auto& c : group_by) g.push_back(c.ToString());
    out += " group by " + Join(g, ", ");
  }
  if (!order_by.empty()) {
    std::vector<std::string> o;
    for (const auto& k : order_by) {
      o.push_back(k.column.ToString() + (k.descending ? " desc" : ""));
    }
    out += " order by " + Join(o, ", ");
  }
  if (limit.has_value()) out += " limit " + std::to_string(*limit);
  return out;
}

}  // namespace qcfe
