#ifndef QCFE_ENGINE_PLANNER_H_
#define QCFE_ENGINE_PLANNER_H_

/// \file planner.h
/// System-R-style physical planner: selectivity estimation from ANALYZE
/// statistics, greedy smallest-first left-deep join ordering, and cost-based
/// access-path / join-algorithm choice driven by the knob cost constants.
/// Knob enable_* flags veto operators exactly like PostgreSQL's.

#include <memory>

#include "engine/catalog.h"
#include "engine/knobs.h"
#include "engine/plan.h"
#include "engine/query.h"
#include "util/status.h"

namespace qcfe {

/// Plans one query under a knob configuration.
class Planner {
 public:
  Planner(const Catalog* catalog, const Knobs& knobs)
      : catalog_(catalog), knobs_(knobs) {}

  /// Builds the physical plan. Fails on unknown tables/columns or a query
  /// whose join graph is disconnected (cross products are not supported).
  Result<std::unique_ptr<PlanNode>> Plan(const QuerySpec& query) const;

  /// Estimated selectivity of a conjunction of predicates on one table
  /// (independence assumption, histogram-backed per conjunct).
  double EstimateFilterSelectivity(const std::string& table,
                                   const std::vector<Predicate>& preds) const;

 private:
  struct SubPlan {
    std::unique_ptr<PlanNode> node;
    std::vector<std::string> tables;   ///< base tables covered
    std::string sorted_on;             ///< qualified column, "" if unsorted
  };

  /// Chooses Seq Scan vs Index Scan for one table.
  SubPlan PlanScan(const QuerySpec& query, const std::string& table) const;

  /// Joins `left` with the scan of `right_table` using the best enabled
  /// algorithm for `cond`.
  SubPlan PlanJoin(SubPlan left, SubPlan right, const JoinCondition& cond) const;

  /// Distinct-value estimate for a join key column in a subplan.
  double EstimateDistinct(const ColumnRef& col, double subplan_rows) const;

  double TableRows(const std::string& table) const;
  double TablePages(const std::string& table) const;

  const Catalog* catalog_;
  Knobs knobs_;
};

}  // namespace qcfe

#endif  // QCFE_ENGINE_PLANNER_H_
