#include "engine/schema.h"

namespace qcfe {

std::optional<size_t> Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (cols_[i].name == name) return i;
  }
  // Suffix match: allow "c" to find "t.c" when unambiguous.
  std::optional<size_t> found;
  for (size_t i = 0; i < cols_.size(); ++i) {
    const std::string& stored = cols_[i].name;
    size_t dot = stored.rfind('.');
    if (dot != std::string::npos && stored.compare(dot + 1, std::string::npos,
                                                   name) == 0) {
      if (found.has_value()) return std::nullopt;  // ambiguous
      found = i;
    }
  }
  return found;
}

size_t Schema::RowWidth() const {
  size_t w = 0;
  for (const auto& c : cols_) w += DataTypeWidth(c.type);
  return w;
}

Schema Schema::Concat(const Schema& a, const Schema& b) {
  std::vector<ColumnDef> cols = a.columns();
  for (const auto& c : b.columns()) cols.push_back(c);
  return Schema(std::move(cols));
}

}  // namespace qcfe
