#include "engine/cost_simulator.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace qcfe {

namespace {

/// Per-operator-unit CPU base costs in ms (before hardware/knob scaling).
double BaseOpUnitMs(OpType op) {
  switch (op) {
    case OpType::kSeqScan:
      return 0.0;       // priced via pages + tuples
    case OpType::kIndexScan:
      return 0.0;       // priced via pages + index tuples
    case OpType::kSort:
      return 0.00025;   // per comparison
    case OpType::kAggregate:
      return 0.0006;    // per hash-table update
    case OpType::kMaterialize:
      return 0.0002;    // per tuple copied
    case OpType::kHashJoin:
      return 0.0007;    // per build/probe
    case OpType::kMergeJoin:
      return 0.0004;    // per merge step
    case OpType::kNestedLoop:
      return 0.00015;   // per inner iteration
  }
  return 0.0003;
}

/// Operators whose CPU work parallelises across workers.
bool Parallelizable(OpType op) {
  switch (op) {
    case OpType::kSeqScan:
    case OpType::kIndexScan:
    case OpType::kHashJoin:
    case OpType::kAggregate:
      return true;
    default:
      return false;
  }
}

constexpr double kBaseTupleMs = 0.0005;       // 0.5 us per tuple
constexpr double kBaseIndexTupleMs = 0.0010;  // index tuples are pricier
constexpr double kMemPageMs = 0.0015;         // buffered page access
constexpr double kOpStartupMs = 0.002;        // per-operator startup
constexpr double kPlanStartupMs = 0.03;       // parse/plan/execute startup
// JIT compiles expressions per plan node, so its setup cost lands on the
// operators (visible in per-operator timings, hence capturable by the
// feature snapshot's intercept) rather than as an untraceable per-query
// constant.
constexpr double kJitPerOpMs = 0.45;
constexpr double kMinParallelTuples = 20000;  // gate for worker speedup

}  // namespace

CostSimulator::CostSimulator(const Environment& env, double db_size_mb)
    : env_(env) {
  const HardwareProfile& hw = env_.hardware;
  const Knobs& k = env_.knobs;

  // Cache hit fraction: how much of the working set the buffer pool covers.
  // The working set (heap + indexes + temp files) is larger than the raw
  // heap, so even buffers ~= heap size still miss; the curve saturates
  // smoothly instead of flipping to all-cached.
  double working_set = 2.0 * std::max(db_size_mb, 1.0);
  cache_hit_ = std::clamp(
      0.10 + 0.88 * k.shared_buffers_mb / (k.shared_buffers_mb + working_set),
      0.10, 0.98);

  mem_page_ms_ = kMemPageMs / hw.cpu_scale;
  disk_seq_ms_ = 8.192 / hw.seq_mb_per_s;    // 8 KiB page / bandwidth
  disk_rand_ms_ = 1000.0 / hw.rand_iops;
  jit_factor_ = k.jit ? 0.65 : 1.0;

  int workers = std::clamp(k.max_parallel_workers, 0, 8);
  parallel_factor_ =
      workers > 0 ? 1.0 / (1.0 + 0.55 * static_cast<double>(workers)) : 1.0;
}

CostCoefficients CostSimulator::CoefficientsFor(OpType op) const {
  const HardwareProfile& hw = env_.hardware;
  CostCoefficients c;
  c.cs = cache_hit_ * mem_page_ms_ + (1.0 - cache_hit_) * disk_seq_ms_;
  c.cr = cache_hit_ * mem_page_ms_ + (1.0 - cache_hit_) * disk_rand_ms_;
  c.ct = kBaseTupleMs * jit_factor_ / hw.cpu_scale;
  c.ci = kBaseIndexTupleMs * jit_factor_ / hw.cpu_scale;
  c.co = BaseOpUnitMs(op) * jit_factor_ / hw.cpu_scale;
  return c;
}

double CostSimulator::ExpectedOperatorMs(OpType op,
                                         const WorkCounts& work) const {
  CostCoefficients c = CoefficientsFor(op);
  double io = c.cs * work.seq_pages + c.cr * work.rand_pages;
  double cpu = c.ct * work.tuples + c.ci * work.index_tuples +
               c.co * work.op_units;
  if (Parallelizable(op) && work.tuples + work.op_units > kMinParallelTuples) {
    cpu *= parallel_factor_;
  }
  double jit_setup =
      env_.knobs.jit ? kJitPerOpMs / env_.hardware.cpu_scale : 0.0;
  return kOpStartupMs + jit_setup + io + cpu;
}

double CostSimulator::SampleOperatorMs(OpType op, const WorkCounts& work,
                                       Rng* rng) const {
  double expected = ExpectedOperatorMs(op, work);
  if (rng == nullptr) return expected;
  return expected * rng->LognormalNoise(kNoiseSigma);
}

double CostSimulator::QueryOverheadMs(size_t plan_nodes, Rng* rng) const {
  // Parse/plan/executor-startup cost only; JIT setup is per-operator (see
  // kJitPerOpMs) so snapshots can observe it.
  double overhead =
      kPlanStartupMs * (1.0 + 0.1 * static_cast<double>(plan_nodes));
  if (rng != nullptr) overhead *= rng->LognormalNoise(kNoiseSigma);
  return overhead;
}

double CostSimulator::PricePlan(PlanNode* root, Rng* rng) const {
  double total = 0.0;
  root->Visit([&](PlanNode* node) {
    node->actual_ms = SampleOperatorMs(node->op, node->work, rng);
    total += node->actual_ms;
  });
  total += QueryOverheadMs(root->CountNodes(), rng);
  return total;
}

}  // namespace qcfe
