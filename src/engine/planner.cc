#include "engine/planner.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace qcfe {

namespace {

/// Sargable = usable to drive a B+-tree range/point probe.
bool IsSargable(const Predicate& p) {
  switch (p.op) {
    case CompareOp::kEq:
    case CompareOp::kLt:
    case CompareOp::kLe:
    case CompareOp::kGt:
    case CompareOp::kGe:
    case CompareOp::kBetween:
      return true;
    default:
      return false;
  }
}

double Log2Safe(double n) { return std::log2(std::max(n, 2.0)); }

}  // namespace

double Planner::TableRows(const std::string& table) const {
  const TableStats* ts = catalog_->GetStats(table);
  return ts == nullptr ? 1000.0 : static_cast<double>(ts->num_rows);
}

double Planner::TablePages(const std::string& table) const {
  const TableStats* ts = catalog_->GetStats(table);
  return ts == nullptr ? 100.0 : static_cast<double>(ts->num_pages);
}

double Planner::EstimateFilterSelectivity(
    const std::string& table, const std::vector<Predicate>& preds) const {
  double sel = 1.0;
  for (const auto& p : preds) {
    if (p.column.table != table) continue;
    const ColumnStats* cs = catalog_->GetColumnStats(table, p.column.column);
    sel *= cs == nullptr ? 0.1 : p.EstimateSelectivity(*cs);
  }
  return std::clamp(sel, 1e-7, 1.0);
}

double Planner::EstimateDistinct(const ColumnRef& col,
                                 double subplan_rows) const {
  const ColumnStats* cs = catalog_->GetColumnStats(col.table, col.column);
  double nd = cs == nullptr ? 100.0 : static_cast<double>(cs->n_distinct);
  return std::max(1.0, std::min(nd, subplan_rows));
}

Planner::SubPlan Planner::PlanScan(const QuerySpec& query,
                                   const std::string& table) const {
  std::vector<Predicate> table_filters;
  for (const auto& p : query.filters) {
    if (p.column.table == table) table_filters.push_back(p);
  }

  // Projection pushdown: emit only the columns the query touches.
  std::set<std::string> needed;
  bool select_star = query.select_columns.empty() && !query.HasAggregation();
  if (!select_star) {
    auto need = [&](const ColumnRef& c) {
      if (c.table == table && !c.column.empty()) needed.insert(c.column);
    };
    for (const auto& c : query.select_columns) need(c);
    for (const auto& a : query.aggregates) need(a.column);
    for (const auto& g : query.group_by) need(g);
    for (const auto& k : query.order_by) need(k.column);
    for (const auto& j : query.joins) {
      need(j.left);
      need(j.right);
    }
    for (const auto& p : table_filters) need(p.column);
  }

  double rows = TableRows(table);
  double pages = TablePages(table);
  double sel = EstimateFilterSelectivity(table, table_filters);
  double out_rows = std::max(1.0, rows * sel);

  // Seq Scan cost: pages * seq_page_cost + rows * cpu_tuple_cost.
  double seq_cost = pages * knobs_.seq_page_cost + rows * knobs_.cpu_tuple_cost;

  // Best index option among sargable filtered columns with an index.
  const Table* t = catalog_->GetTable(table);
  std::string best_index;
  double best_index_cost = seq_cost;
  double best_index_sel = 1.0;
  if (knobs_.enable_indexscan && t != nullptr) {
    for (const auto& p : table_filters) {
      if (!IsSargable(p)) continue;
      const TableIndex* idx = t->FindIndex(p.column.column);
      if (idx == nullptr) continue;
      const ColumnStats* cs = catalog_->GetColumnStats(table, p.column.column);
      double psel = cs == nullptr ? 0.1 : p.EstimateSelectivity(*cs);
      double matched = std::max(1.0, rows * psel);
      // Heap fetch cost interpolates between random (uncorrelated column)
      // and near-sequential (clustered column), like PostgreSQL's use of
      // pg_stats.correlation.
      double corr = cs == nullptr ? 0.0 : std::fabs(cs->correlation);
      double width = t->schema().RowWidth() == 0
                         ? 64.0
                         : static_cast<double>(t->schema().RowWidth());
      double seq_fetch_pages = matched * width / kPageSizeBytes;
      double height = Log2Safe(rows) / Log2Safe(BPlusTree::kFanout);
      double heap_cost =
          (1.0 - corr) * matched * knobs_.random_page_cost +
          corr * seq_fetch_pages * knobs_.seq_page_cost;
      double cost = height * knobs_.random_page_cost + heap_cost +
                    matched * knobs_.cpu_index_tuple_cost +
                    matched * knobs_.cpu_tuple_cost;
      if (cost < best_index_cost) {
        best_index_cost = cost;
        best_index = p.column.column;
        best_index_sel = psel;
      }
    }
  }

  SubPlan sp;
  sp.tables = {table};
  sp.node = std::make_unique<PlanNode>();
  sp.node->table = table;
  sp.node->filters = table_filters;
  sp.node->projection.assign(needed.begin(), needed.end());
  sp.node->est_rows = out_rows;
  const Table* tbl = catalog_->GetTable(table);
  sp.node->est_width =
      tbl == nullptr ? 64.0 : static_cast<double>(tbl->schema().RowWidth());
  if (!best_index.empty()) {
    sp.node->op = OpType::kIndexScan;
    sp.node->index_column = best_index;
    sp.node->est_self_cost = best_index_cost;
    // Index scans emit rows in key order.
    sp.sorted_on = table + "." + best_index;
    (void)best_index_sel;
  } else {
    sp.node->op = OpType::kSeqScan;
    sp.node->est_self_cost = seq_cost;
  }
  sp.node->est_cost = sp.node->est_self_cost;
  return sp;
}

Planner::SubPlan Planner::PlanJoin(SubPlan left, SubPlan right,
                                   const JoinCondition& cond) const {
  double n1 = left.node->est_rows;
  double n2 = right.node->est_rows;

  // Orient the condition: `left` field must reference the left subtree.
  JoinCondition oriented = cond;
  bool left_has = std::find(left.tables.begin(), left.tables.end(),
                            cond.left.table) != left.tables.end();
  if (!left_has) std::swap(oriented.left, oriented.right);

  double nd_left = EstimateDistinct(oriented.left, n1);
  double nd_right = EstimateDistinct(oriented.right, n2);
  double out_rows = std::max(1.0, n1 * n2 / std::max(nd_left, nd_right));

  // Candidate costs with the knob cost constants (PG-flavoured formulas).
  double hash_cost = 1.5 * n2 * knobs_.cpu_operator_cost +
                     n1 * knobs_.cpu_operator_cost +
                     (n1 + n2) * knobs_.cpu_tuple_cost;
  double build_bytes = n2 * right.node->est_width;
  if (build_bytes > knobs_.work_mem_kb * 1024.0) {
    hash_cost += 2.0 * (build_bytes / kPageSizeBytes) * knobs_.seq_page_cost;
  }

  bool left_sorted = left.sorted_on == oriented.left.ToString();
  bool right_sorted = right.sorted_on == oriented.right.ToString();
  double merge_cost = (n1 + n2) * knobs_.cpu_operator_cost +
                      (n1 + n2) * knobs_.cpu_tuple_cost;
  if (!left_sorted) merge_cost += n1 * Log2Safe(n1) * knobs_.cpu_operator_cost;
  if (!right_sorted) merge_cost += n2 * Log2Safe(n2) * knobs_.cpu_operator_cost;

  double nl_cost = n1 * n2 * knobs_.cpu_operator_cost +
                   (n1 + n2) * knobs_.cpu_tuple_cost;

  // Pick the cheapest enabled algorithm; fall back to hash join.
  OpType algo = OpType::kHashJoin;
  double best = HUGE_VAL;
  if (knobs_.enable_hashjoin) {
    algo = OpType::kHashJoin;
    best = hash_cost;
  }
  if (knobs_.enable_mergejoin && merge_cost < best) {
    algo = OpType::kMergeJoin;
    best = merge_cost;
  }
  if (knobs_.enable_nestloop && nl_cost < best) {
    algo = OpType::kNestedLoop;
    best = nl_cost;
  }
  if (best == HUGE_VAL) {
    algo = OpType::kHashJoin;
    best = hash_cost;
  }

  SubPlan sp;
  sp.tables = left.tables;
  for (const auto& t : right.tables) sp.tables.push_back(t);

  auto node = std::make_unique<PlanNode>();
  node->join = oriented;
  node->est_rows = out_rows;
  node->est_width = left.node->est_width + right.node->est_width;
  node->est_self_cost = best;
  node->est_cost = best + left.node->est_cost + right.node->est_cost;
  node->op = algo;

  if (algo == OpType::kMergeJoin) {
    // Insert Sort children where inputs are not already sorted on the key.
    auto ensure_sorted = [&](SubPlan& side, const ColumnRef& key,
                             bool is_sorted) -> std::unique_ptr<PlanNode> {
      if (is_sorted) return std::move(side.node);
      auto sort = std::make_unique<PlanNode>();
      sort->op = OpType::kSort;
      sort->sort_keys = {OrderKey{key, false}};
      sort->est_rows = side.node->est_rows;
      sort->est_width = side.node->est_width;
      sort->est_self_cost = side.node->est_rows *
                            Log2Safe(side.node->est_rows) *
                            knobs_.cpu_operator_cost;
      sort->est_cost = sort->est_self_cost + side.node->est_cost;
      sort->children.push_back(std::move(side.node));
      return sort;
    };
    node->children.push_back(
        ensure_sorted(left, oriented.left, left_sorted));
    node->children.push_back(
        ensure_sorted(right, oriented.right, right_sorted));
    sp.sorted_on = oriented.left.ToString();
  } else if (algo == OpType::kNestedLoop) {
    // Materialize the inner side (it is logically rescanned per outer row).
    auto mat = std::make_unique<PlanNode>();
    mat->op = OpType::kMaterialize;
    mat->est_rows = right.node->est_rows;
    mat->est_width = right.node->est_width;
    mat->est_self_cost = right.node->est_rows * knobs_.cpu_operator_cost;
    mat->est_cost = mat->est_self_cost + right.node->est_cost;
    mat->children.push_back(std::move(right.node));
    node->children.push_back(std::move(left.node));
    node->children.push_back(std::move(mat));
    // Recompute cumulative cost including the materialize node.
    node->est_cost = node->est_self_cost + node->child(0)->est_cost +
                     node->child(1)->est_cost;
  } else {
    node->children.push_back(std::move(left.node));
    node->children.push_back(std::move(right.node));
  }

  sp.node = std::move(node);
  return sp;
}

Result<std::unique_ptr<PlanNode>> Planner::Plan(const QuerySpec& query) const {
  if (query.tables.empty()) {
    return Status::InvalidArgument("query references no tables");
  }
  for (const auto& t : query.tables) {
    if (catalog_->GetTable(t) == nullptr) {
      return Status::NotFound("unknown table " + t);
    }
  }

  // Scan each table.
  std::vector<SubPlan> scans;
  for (const auto& t : query.tables) scans.push_back(PlanScan(query, t));

  // Greedy left-deep join order: start from the smallest scan, repeatedly
  // attach the connected table that minimises estimated output rows.
  size_t start = 0;
  for (size_t i = 1; i < scans.size(); ++i) {
    if (scans[i].node->est_rows < scans[start].node->est_rows) start = i;
  }
  SubPlan current = std::move(scans[start]);
  scans.erase(scans.begin() + static_cast<ptrdiff_t>(start));

  auto find_condition = [&](const std::vector<std::string>& covered,
                            const std::string& cand)
      -> std::optional<JoinCondition> {
    for (const auto& j : query.joins) {
      bool lc = std::find(covered.begin(), covered.end(), j.left.table) !=
                covered.end();
      bool rc = std::find(covered.begin(), covered.end(), j.right.table) !=
                covered.end();
      if ((lc && j.right.table == cand) || (rc && j.left.table == cand)) {
        return j;
      }
    }
    return std::nullopt;
  };

  while (!scans.empty()) {
    ptrdiff_t best_idx = -1;
    double best_rows = HUGE_VAL;
    std::optional<JoinCondition> best_cond;
    for (size_t i = 0; i < scans.size(); ++i) {
      auto cond = find_condition(current.tables, scans[i].tables.front());
      if (!cond.has_value()) continue;
      // Cheap preview of the join output size.
      double n1 = current.node->est_rows, n2 = scans[i].node->est_rows;
      ColumnRef lk = cond->left, rk = cond->right;
      double nd = std::max(EstimateDistinct(lk, n1), EstimateDistinct(rk, n2));
      double out = n1 * n2 / std::max(1.0, nd);
      if (out < best_rows) {
        best_rows = out;
        best_idx = static_cast<ptrdiff_t>(i);
        best_cond = cond;
      }
    }
    if (best_idx < 0) {
      return Status::InvalidArgument(
          "join graph is disconnected (cross products unsupported): " +
          query.ToString());
    }
    SubPlan right = std::move(scans[static_cast<size_t>(best_idx)]);
    scans.erase(scans.begin() + best_idx);
    current = PlanJoin(std::move(current), std::move(right), *best_cond);
  }

  // Aggregation / DISTINCT.
  if (query.HasAggregation()) {
    auto agg = std::make_unique<PlanNode>();
    agg->op = OpType::kAggregate;
    agg->group_by = query.group_by;
    agg->aggregates = query.aggregates;
    agg->distinct = query.distinct && query.aggregates.empty();
    if (agg->distinct && agg->group_by.empty()) {
      agg->group_by = query.select_columns;
    }
    double in_rows = current.node->est_rows;
    double groups = 1.0;
    for (const auto& g : agg->group_by) {
      groups *= EstimateDistinct(g, in_rows);
    }
    agg->est_rows = std::max(1.0, std::min(groups, in_rows));
    agg->est_width = 8.0 * static_cast<double>(std::max<size_t>(
                               1, agg->group_by.size() + query.aggregates.size()));
    agg->est_self_cost = in_rows * knobs_.cpu_operator_cost +
                         in_rows * knobs_.cpu_tuple_cost;
    agg->est_cost = agg->est_self_cost + current.node->est_cost;
    agg->children.push_back(std::move(current.node));
    current.node = std::move(agg);
    current.sorted_on.clear();
  }

  // ORDER BY.
  if (!query.order_by.empty()) {
    bool already_sorted = query.order_by.size() == 1 &&
                          !query.order_by[0].descending &&
                          current.sorted_on ==
                              query.order_by[0].column.ToString();
    if (!already_sorted) {
      auto sort = std::make_unique<PlanNode>();
      sort->op = OpType::kSort;
      sort->sort_keys = query.order_by;
      sort->est_rows = current.node->est_rows;
      sort->est_width = current.node->est_width;
      sort->est_self_cost = current.node->est_rows *
                            Log2Safe(current.node->est_rows) *
                            knobs_.cpu_operator_cost;
      sort->est_cost = sort->est_self_cost + current.node->est_cost;
      sort->children.push_back(std::move(current.node));
      current.node = std::move(sort);
    }
  }

  return std::move(current.node);
}

}  // namespace qcfe
