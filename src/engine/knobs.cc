#include "engine/knobs.h"

#include <cmath>

#include "util/rng.h"
#include "util/string_util.h"

namespace qcfe {

std::string Knobs::ToString() const {
  std::string out;
  out += "indexscan=" + std::string(enable_indexscan ? "on" : "off");
  out += " hashjoin=" + std::string(enable_hashjoin ? "on" : "off");
  out += " mergejoin=" + std::string(enable_mergejoin ? "on" : "off");
  out += " nestloop=" + std::string(enable_nestloop ? "on" : "off");
  out += " work_mem=" + FormatDouble(work_mem_kb, 0) + "kB";
  out += " shared_buffers=" + FormatDouble(shared_buffers_mb, 0) + "MB";
  out += " random_page_cost=" + FormatDouble(random_page_cost, 1);
  out += " jit=" + std::string(jit ? "on" : "off");
  out += " parallel=" + std::to_string(max_parallel_workers);
  return out;
}

HardwareProfile HardwareProfile::H1() {
  HardwareProfile hw;
  hw.name = "h1";
  hw.cpu_scale = 1.0;
  hw.seq_mb_per_s = 1800.0;
  hw.rand_iops = 90000.0;
  hw.mem_gb = 16.0;
  return hw;
}

HardwareProfile HardwareProfile::H2() {
  HardwareProfile hw;
  hw.name = "h2";
  hw.cpu_scale = 1.35;        // newer core, higher boost
  hw.seq_mb_per_s = 2600.0;   // larger/faster drive
  hw.rand_iops = 150000.0;
  hw.mem_gb = 42.0;
  return hw;
}

HardwareProfile HardwareProfile::Hdd() {
  HardwareProfile hw;
  hw.name = "hdd";
  hw.cpu_scale = 0.7;
  hw.seq_mb_per_s = 160.0;
  hw.rand_iops = 180.0;
  hw.mem_gb = 8.0;
  return hw;
}

Knobs EnvironmentSampler::SampleKnobs(Rng* rng) {
  Knobs k;
  // Log-uniform memory knobs across realistic admin choices.
  k.work_mem_kb = std::exp(rng->Uniform(std::log(256.0), std::log(65536.0)));
  k.shared_buffers_mb =
      std::exp(rng->Uniform(std::log(16.0), std::log(2048.0)));
  // Planner constants: admins commonly tune random_page_cost for SSDs.
  const double rpc_choices[] = {1.1, 1.5, 2.0, 4.0};
  k.random_page_cost = rpc_choices[rng->UniformInt(0, 3)];
  k.cpu_tuple_cost = rng->Bernoulli(0.2) ? 0.02 : 0.01;
  // Execution toggles.
  k.jit = rng->Bernoulli(0.5);
  const int workers_choices[] = {0, 0, 2, 4};
  k.max_parallel_workers = workers_choices[rng->UniformInt(0, 3)];
  // Occasionally disabled access paths (knob-tuning experiments do this).
  k.enable_indexscan = rng->Bernoulli(0.85);
  k.enable_hashjoin = rng->Bernoulli(0.85);
  k.enable_mergejoin = rng->Bernoulli(0.85);
  k.enable_nestloop = rng->Bernoulli(0.9);
  // Never disable all join methods at once.
  if (!k.enable_hashjoin && !k.enable_mergejoin && !k.enable_nestloop) {
    k.enable_hashjoin = true;
  }
  return k;
}

std::vector<Environment> EnvironmentSampler::Sample(
    int count, const HardwareProfile& hardware, uint64_t seed) {
  Rng rng(seed);
  std::vector<Environment> envs;
  envs.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    Environment env;
    env.id = i;
    env.hardware = hardware;
    env.knobs = (i == 0) ? Knobs{} : SampleKnobs(&rng);
    envs.push_back(std::move(env));
  }
  return envs;
}

}  // namespace qcfe
