#ifndef QCFE_ENGINE_TABLE_H_
#define QCFE_ENGINE_TABLE_H_

/// \file table.h
/// Columnar in-memory base tables plus secondary indexes (B+-trees on the
/// numeric view of a column). Tables are append-only: the workload layer
/// generates them once, then queries only read.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/btree.h"
#include "engine/schema.h"
#include "engine/types.h"
#include "util/status.h"

namespace qcfe {

/// Page size used for I/O accounting (PostgreSQL default).
constexpr size_t kPageSizeBytes = 8192;

/// One typed column of a base table.
class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const;

  void Append(const Value& v);
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);

  Value Get(size_t row) const;
  /// Numeric view (strings hash; see ValueToDouble).
  double GetDouble(size_t row) const;

  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }

 private:
  DataType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

/// Secondary index metadata + structure.
struct TableIndex {
  std::string name;
  std::string column;
  std::unique_ptr<BPlusTree> tree;
};

/// A named base table: schema + columns + indexes.
class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }

  /// Heap pages occupied by the row data (ceil of bytes / page size).
  size_t num_pages() const;

  /// Appends one row; value count and types must match the schema
  /// (numeric values are coerced between int64 and float64).
  Status AppendRow(const std::vector<Value>& values);

  Value GetValue(size_t row, size_t col) const;
  double GetDouble(size_t row, size_t col) const;
  const Column& column(size_t col) const { return *columns_[col]; }

  /// Builds (or rebuilds) a B+-tree index on the numeric view of a column.
  Status BuildIndex(const std::string& column_name);

  /// Index on the column, or nullptr.
  const TableIndex* FindIndex(const std::string& column_name) const;
  const std::vector<std::unique_ptr<TableIndex>>& indexes() const {
    return indexes_;
  }

 private:
  std::string name_;
  Schema schema_;
  std::vector<std::unique_ptr<Column>> columns_;
  std::vector<std::unique_ptr<TableIndex>> indexes_;
  size_t num_rows_ = 0;
};

}  // namespace qcfe

#endif  // QCFE_ENGINE_TABLE_H_
