#ifndef QCFE_ENGINE_TYPES_H_
#define QCFE_ENGINE_TYPES_H_

/// \file types.h
/// Value model of the mini relational engine (the PostgreSQL substitute).
/// Three physical types are enough for all three benchmark schemas: 64-bit
/// integers, doubles and strings.

#include <cstdint>
#include <string>
#include <variant>

namespace qcfe {

/// Physical column type.
enum class DataType {
  kInt64,
  kFloat64,
  kString,
};

/// Runtime value; the variant order must match DataType.
using Value = std::variant<int64_t, double, std::string>;

/// Human-readable type name ("int64", "float64", "string").
const char* DataTypeName(DataType t);

/// Width in bytes used for page accounting (strings use a fixed average
/// payload like PostgreSQL's attribute width estimate).
size_t DataTypeWidth(DataType t);

/// Three-way comparison: <0, 0, >0. Numeric types compare cross-type
/// (int vs double); strings compare lexicographically. Comparing a string
/// with a number orders the number first (deterministic, never throws).
int CompareValues(const Value& a, const Value& b);

/// Numeric view of a value: ints/doubles convert, strings hash to a stable
/// pseudo-numeric (used only for histogram bucketing of string columns).
double ValueToDouble(const Value& v);

/// Renders a value for plan/debug output; strings are single-quoted.
std::string ValueToString(const Value& v);

/// Stable 64-bit hash (FNV-1a over the canonical byte form). Used by hash
/// join/aggregation and by plan fingerprinting.
uint64_t HashValue(const Value& v);

/// Type of a runtime value.
DataType ValueType(const Value& v);

}  // namespace qcfe

#endif  // QCFE_ENGINE_TYPES_H_
