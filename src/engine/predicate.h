#ifndef QCFE_ENGINE_PREDICATE_H_
#define QCFE_ENGINE_PREDICATE_H_

/// \file predicate.h
/// Filter predicates of the query IR: `table.column OP literal(s)`, the
/// conjunctive-predicate language used by all three benchmark workloads
/// (and by the simplified templates of paper Algorithm 1, whose random
/// keyword set {<, >, =, in, like, ...} maps onto CompareOp).

#include <string>
#include <vector>

#include "engine/stats.h"
#include "engine/types.h"

namespace qcfe {

/// Comparison keyword.
enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kIn,       ///< value in literal list
  kLike,     ///< string pattern with '%' wildcards
  kBetween,  ///< two literals, inclusive
};

/// Name as it appears in SQL text ("=", "<", "in", ...).
const char* CompareOpName(CompareOp op);

/// A qualified column reference.
struct ColumnRef {
  std::string table;
  std::string column;

  std::string ToString() const { return table + "." + column; }
  bool operator==(const ColumnRef& other) const {
    return table == other.table && column == other.column;
  }
};

/// One conjunct: `column op literals`.
struct Predicate {
  ColumnRef column;
  CompareOp op = CompareOp::kEq;
  /// kEq..kGe and kLike use literals[0]; kBetween uses [0], [1]; kIn uses all.
  std::vector<Value> literals;

  /// Evaluates against a concrete value.
  bool Matches(const Value& v) const;

  /// Estimated fraction of rows passing, given column statistics.
  double EstimateSelectivity(const ColumnStats& stats) const;

  /// SQL-ish rendering, e.g. "lineitem.l_quantity between 5 and 25".
  std::string ToString() const;
};

/// '%'-wildcard match (case-sensitive), supporting leading/trailing/inner
/// wildcards; no escape syntax.
bool LikeMatch(const std::string& text, const std::string& pattern);

}  // namespace qcfe

#endif  // QCFE_ENGINE_PREDICATE_H_
