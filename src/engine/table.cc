#include "engine/table.h"

namespace qcfe {

size_t Column::size() const {
  switch (type_) {
    case DataType::kInt64:
      return ints_.size();
    case DataType::kFloat64:
      return doubles_.size();
    case DataType::kString:
      return strings_.size();
  }
  return 0;
}

void Column::Append(const Value& v) {
  switch (type_) {
    case DataType::kInt64:
      if (v.index() == 1) {
        ints_.push_back(static_cast<int64_t>(std::get<double>(v)));
      } else {
        ints_.push_back(std::get<int64_t>(v));
      }
      break;
    case DataType::kFloat64:
      if (v.index() == 0) {
        doubles_.push_back(static_cast<double>(std::get<int64_t>(v)));
      } else {
        doubles_.push_back(std::get<double>(v));
      }
      break;
    case DataType::kString:
      strings_.push_back(std::get<std::string>(v));
      break;
  }
}

void Column::AppendInt(int64_t v) { Append(Value(v)); }
void Column::AppendDouble(double v) { Append(Value(v)); }
void Column::AppendString(std::string v) { Append(Value(std::move(v))); }

Value Column::Get(size_t row) const {
  switch (type_) {
    case DataType::kInt64:
      return Value(ints_[row]);
    case DataType::kFloat64:
      return Value(doubles_[row]);
    case DataType::kString:
      return Value(strings_[row]);
  }
  return Value(int64_t{0});
}

double Column::GetDouble(size_t row) const {
  switch (type_) {
    case DataType::kInt64:
      return static_cast<double>(ints_[row]);
    case DataType::kFloat64:
      return doubles_[row];
    case DataType::kString:
      return ValueToDouble(Value(strings_[row]));
  }
  return 0.0;
}

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  for (const auto& col : schema_.columns()) {
    columns_.push_back(std::make_unique<Column>(col.type));
  }
}

size_t Table::num_pages() const {
  size_t bytes = num_rows_ * schema_.RowWidth();
  return (bytes + kPageSizeBytes - 1) / kPageSizeBytes;
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity mismatch for table " + name_);
  }
  for (size_t i = 0; i < values.size(); ++i) {
    DataType want = schema_.column(i).type;
    DataType got = ValueType(values[i]);
    bool numeric_coercion =
        (want != DataType::kString) && (got != DataType::kString);
    if (want != got && !numeric_coercion) {
      return Status::InvalidArgument("type mismatch in column " +
                                     schema_.column(i).name);
    }
  }
  for (size_t i = 0; i < values.size(); ++i) columns_[i]->Append(values[i]);
  ++num_rows_;
  return Status::OK();
}

Value Table::GetValue(size_t row, size_t col) const {
  return columns_[col]->Get(row);
}

double Table::GetDouble(size_t row, size_t col) const {
  return columns_[col]->GetDouble(row);
}

Status Table::BuildIndex(const std::string& column_name) {
  auto col_idx = schema_.FindColumn(column_name);
  if (!col_idx.has_value()) {
    return Status::NotFound("no column " + column_name + " in " + name_);
  }
  // Replace an existing index on the same column.
  for (auto& idx : indexes_) {
    if (idx->column == column_name) {
      idx->tree = std::make_unique<BPlusTree>();
      std::vector<std::pair<double, uint32_t>> entries;
      entries.reserve(num_rows_);
      for (size_t r = 0; r < num_rows_; ++r) {
        entries.emplace_back(GetDouble(r, *col_idx), static_cast<uint32_t>(r));
      }
      idx->tree->BulkLoad(std::move(entries));
      return Status::OK();
    }
  }
  auto index = std::make_unique<TableIndex>();
  index->name = name_ + "_" + column_name + "_idx";
  index->column = column_name;
  index->tree = std::make_unique<BPlusTree>();
  std::vector<std::pair<double, uint32_t>> entries;
  entries.reserve(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) {
    entries.emplace_back(GetDouble(r, *col_idx), static_cast<uint32_t>(r));
  }
  index->tree->BulkLoad(std::move(entries));
  indexes_.push_back(std::move(index));
  return Status::OK();
}

const TableIndex* Table::FindIndex(const std::string& column_name) const {
  for (const auto& idx : indexes_) {
    if (idx->column == column_name) return idx.get();
  }
  return nullptr;
}

}  // namespace qcfe
