#ifndef QCFE_ENGINE_DATABASE_H_
#define QCFE_ENGINE_DATABASE_H_

/// \file database.h
/// Facade tying catalog, planner, executor and cost simulator together:
/// the "PostgreSQL instance" of this project. Also owns the execution cache
/// that makes collecting labels across 20 environments affordable — plans
/// with identical fingerprints (and the same spill-relevant work_mem bucket)
/// perform identical work, so counts are executed once and re-priced per
/// environment.

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/catalog.h"
#include "engine/cost_simulator.h"
#include "engine/executor.h"
#include "engine/knobs.h"
#include "engine/plan.h"
#include "engine/planner.h"
#include "engine/query.h"
#include "util/status.h"
#include "util/sync.h"

namespace qcfe {

class Rng;

/// The result of running one query under one environment.
struct QueryRunResult {
  std::unique_ptr<PlanNode> plan;  ///< actuals + per-operator latencies filled
  double total_ms = 0.0;           ///< ground-truth query latency
  size_t result_rows = 0;          ///< rows returned (after LIMIT)
};

/// An in-memory database instance.
class Database {
 public:
  explicit Database(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  Catalog* catalog() { return &catalog_; }
  const Catalog* catalog() const { return &catalog_; }

  /// ANALYZE all tables (must run after loading, before planning).
  void Analyze() { catalog_.AnalyzeAll(); }

  /// Plans a query under the given knob configuration.
  Result<std::unique_ptr<PlanNode>> Plan(const QuerySpec& query,
                                         const Knobs& knobs) const;

  /// Plans, executes (with caching) and prices a query under an environment.
  /// `noise_rng` drives the latency noise; pass nullptr for expectations.
  ///
  /// Thread-safe: concurrent Run() calls may share one Database. The
  /// execution cache is mutex-guarded; execution itself runs outside the
  /// lock (two threads that race on the same miss both execute and produce
  /// identical records, so results never depend on interleaving). Each call
  /// builds its own Executor/CostSimulator, so the only requirement on
  /// callers is that `noise_rng` is not shared across threads.
  Result<QueryRunResult> Run(const QuerySpec& query, const Environment& env,
                             Rng* noise_rng);

  /// Executes a plan and also returns the materialized result relation
  /// (used by examples and result-correctness tests; no caching).
  Result<Relation> ExecuteForResult(const QuerySpec& query,
                                    const Environment& env, Rng* noise_rng,
                                    QueryRunResult* run);

  size_t execution_cache_size() const {
    ReaderMutexLock lock(&cache_mu_);
    return exec_cache_.size();
  }
  void ClearExecutionCache() {
    WriterMutexLock lock(&cache_mu_);
    exec_cache_.clear();
  }

 private:
  /// Execution artifacts of one plan node, cached in pre-order.
  struct NodeExecRecord {
    double actual_rows = 0.0;
    double input_card = 0.0;
    double input_card2 = 0.0;
    WorkCounts work;
  };

  /// Cache key: plan fingerprint + work_mem bucket (spills depend on it).
  static std::string CacheKey(const PlanNode& plan, const Knobs& knobs);

  std::string name_;
  Catalog catalog_;
  /// Guards the cache map structure only (read-mostly once warm, hence the
  /// reader/writer lock). Entries are shared_ptrs to immutable record
  /// vectors: readers copy the pointer under a shared hold and replay
  /// outside it — now a machine-checked fact (exec_cache_ is guarded, the
  /// replay loop touches only the copied shared_ptr) — so a concurrent
  /// ClearExecutionCache() merely drops the map's reference while
  /// in-flight replays keep theirs alive.
  mutable SharedMutex cache_mu_{lock_rank::kDatabaseCache};
  std::unordered_map<std::string,
                     std::shared_ptr<const std::vector<NodeExecRecord>>>
      exec_cache_ QCFE_GUARDED_BY(cache_mu_);
};

}  // namespace qcfe

#endif  // QCFE_ENGINE_DATABASE_H_
