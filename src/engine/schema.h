#ifndef QCFE_ENGINE_SCHEMA_H_
#define QCFE_ENGINE_SCHEMA_H_

/// \file schema.h
/// Column/schema metadata shared by base tables and intermediate relations.

#include <optional>
#include <string>
#include <vector>

#include "engine/types.h"

namespace qcfe {

/// One column: unqualified name + type. Intermediate relations qualify names
/// as "table.column" to keep join outputs unambiguous.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kInt64;
};

/// Ordered list of columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> cols) : cols_(std::move(cols)) {}

  size_t num_columns() const { return cols_.size(); }
  const ColumnDef& column(size_t i) const { return cols_[i]; }
  const std::vector<ColumnDef>& columns() const { return cols_; }

  void AddColumn(ColumnDef col) { cols_.push_back(std::move(col)); }

  /// Index of the column with this exact name, or nullopt. Also accepts a
  /// qualified lookup "t.c" matching a stored qualified name, and falls back
  /// to suffix matching ("c" matches stored "t.c" if unambiguous).
  std::optional<size_t> FindColumn(const std::string& name) const;

  /// Sum of column widths in bytes (row width for page accounting).
  size_t RowWidth() const;

  /// Concatenation used when building join output schemas.
  static Schema Concat(const Schema& a, const Schema& b);

 private:
  std::vector<ColumnDef> cols_;
};

}  // namespace qcfe

#endif  // QCFE_ENGINE_SCHEMA_H_
