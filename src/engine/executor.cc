#include "engine/executor.h"

#include <cstdio>
#include <cstdlib>

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace qcfe {

namespace {

double Log2Safe(double n) { return std::log2(std::max(n, 2.0)); }

/// Serialized multi-column key for hash aggregation / grouping.
std::string GroupKey(const std::vector<Value>& row,
                     const std::vector<size_t>& cols) {
  std::string key;
  for (size_t c : cols) {
    key += std::to_string(HashValue(row[c]));
    key += '|';
  }
  return key;
}

}  // namespace

Executor::Executor(const Catalog* catalog, const Knobs& knobs)
    : catalog_(catalog), knobs_(knobs) {
  if (catalog_ == nullptr) {
    // A null catalog is a lifetime bug in the caller; fail loudly instead of
    // dereferencing it on some later execution path.
    std::fprintf(stderr, "Executor constructed with a null catalog\n");
    std::abort();
  }
}

Status Executor::ScanSchema(const Table& table,
                            const std::vector<std::string>& proj,
                            Schema* schema,
                            std::vector<size_t>* col_indices) const {
  col_indices->clear();
  *schema = Schema();
  if (proj.empty()) {
    for (size_t c = 0; c < table.schema().num_columns(); ++c) {
      const ColumnDef& def = table.schema().column(c);
      schema->AddColumn({table.name() + "." + def.name, def.type});
      col_indices->push_back(c);
    }
    return Status::OK();
  }
  for (const auto& name : proj) {
    auto idx = table.schema().FindColumn(name);
    if (!idx.has_value()) {
      return Status::NotFound("column " + name + " in " + table.name());
    }
    const ColumnDef& def = table.schema().column(*idx);
    schema->AddColumn({table.name() + "." + def.name, def.type});
    col_indices->push_back(*idx);
  }
  return Status::OK();
}

Result<Relation> Executor::Execute(PlanNode* node) const {
  switch (node->op) {
    case OpType::kSeqScan:
      return ExecSeqScan(node);
    case OpType::kIndexScan:
      return ExecIndexScan(node);
    case OpType::kSort:
      return ExecSort(node);
    case OpType::kAggregate:
      return ExecAggregate(node);
    case OpType::kMaterialize:
      return ExecMaterialize(node);
    case OpType::kHashJoin:
      return ExecHashJoin(node);
    case OpType::kMergeJoin:
      return ExecMergeJoin(node);
    case OpType::kNestedLoop:
      return ExecNestedLoop(node);
  }
  return Status::Internal("unknown operator");
}

Result<Relation> Executor::ExecSeqScan(PlanNode* node) const {
  const Table* table = catalog_->GetTable(node->table);
  if (table == nullptr) return Status::NotFound("table " + node->table);

  Relation out;
  std::vector<size_t> cols;
  QCFE_RETURN_IF_ERROR(ScanSchema(*table, node->projection, &out.schema, &cols));

  // Pre-resolve filter column indices in the base table.
  std::vector<std::pair<size_t, const Predicate*>> filter_cols;
  for (const auto& f : node->filters) {
    auto idx = table->schema().FindColumn(f.column.column);
    if (!idx.has_value()) {
      return Status::NotFound("filter column " + f.column.ToString());
    }
    filter_cols.emplace_back(*idx, &f);
  }

  size_t n = table->num_rows();
  for (size_t r = 0; r < n; ++r) {
    bool pass = true;
    for (const auto& [ci, pred] : filter_cols) {
      if (!pred->Matches(table->GetValue(r, ci))) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    std::vector<Value> row;
    row.reserve(cols.size());
    for (size_t c : cols) row.push_back(table->GetValue(r, c));
    out.rows.push_back(std::move(row));
  }

  node->actual_rows = static_cast<double>(out.NumRows());
  node->input_card = static_cast<double>(n);
  node->work = WorkCounts{};
  node->work.seq_pages = static_cast<double>(table->num_pages());
  node->work.tuples = static_cast<double>(n);
  return out;
}

Result<Relation> Executor::ExecIndexScan(PlanNode* node) const {
  const Table* table = catalog_->GetTable(node->table);
  if (table == nullptr) return Status::NotFound("table " + node->table);
  const TableIndex* index = table->FindIndex(node->index_column);
  if (index == nullptr) {
    return Status::NotFound("index on " + node->table + "." +
                            node->index_column);
  }

  // Derive the probe range from the sargable predicates on the index column.
  double lo = -HUGE_VAL, hi = HUGE_VAL;
  bool lo_inc = true, hi_inc = true;
  for (const auto& f : node->filters) {
    if (f.column.column != node->index_column) continue;
    switch (f.op) {
      case CompareOp::kEq: {
        double v = ValueToDouble(f.literals[0]);
        lo = std::max(lo, v);
        hi = std::min(hi, v);
        break;
      }
      case CompareOp::kLt:
        if (ValueToDouble(f.literals[0]) <= hi) {
          hi = ValueToDouble(f.literals[0]);
          hi_inc = false;
        }
        break;
      case CompareOp::kLe:
        hi = std::min(hi, ValueToDouble(f.literals[0]));
        break;
      case CompareOp::kGt:
        if (ValueToDouble(f.literals[0]) >= lo) {
          lo = ValueToDouble(f.literals[0]);
          lo_inc = false;
        }
        break;
      case CompareOp::kGe:
        lo = std::max(lo, ValueToDouble(f.literals[0]));
        break;
      case CompareOp::kBetween:
        lo = std::max(lo, ValueToDouble(f.literals[0]));
        hi = std::min(hi, ValueToDouble(f.literals[1]));
        break;
      default:
        break;
    }
  }

  std::vector<uint32_t> matches;
  index->tree->RangeScan(lo, lo_inc, hi, hi_inc, &matches);

  Relation out;
  std::vector<size_t> cols;
  QCFE_RETURN_IF_ERROR(ScanSchema(*table, node->projection, &out.schema, &cols));

  std::vector<std::pair<size_t, const Predicate*>> filter_cols;
  for (const auto& f : node->filters) {
    auto idx = table->schema().FindColumn(f.column.column);
    if (!idx.has_value()) {
      return Status::NotFound("filter column " + f.column.ToString());
    }
    filter_cols.emplace_back(*idx, &f);
  }

  for (uint32_t r : matches) {
    bool pass = true;
    for (const auto& [ci, pred] : filter_cols) {
      if (!pred->Matches(table->GetValue(r, ci))) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    std::vector<Value> row;
    row.reserve(cols.size());
    for (size_t c : cols) row.push_back(table->GetValue(r, c));
    out.rows.push_back(std::move(row));
  }

  double matched = static_cast<double>(matches.size());
  node->actual_rows = static_cast<double>(out.NumRows());
  node->input_card = matched;
  node->work = WorkCounts{};
  node->work.index_tuples = matched;
  node->work.tuples = matched;  // residual filter evaluation
  // Heap fetches: random for uncorrelated columns, near-sequential for
  // clustered ones (mirrors the planner's correlation-based costing).
  const ColumnStats* cs =
      catalog_->GetColumnStats(node->table, node->index_column);
  double corr = cs == nullptr ? 0.0 : std::fabs(cs->correlation);
  double width = static_cast<double>(table->schema().RowWidth());
  node->work.rand_pages = 0.6 * matched * (1.0 - corr) +
                          static_cast<double>(index->tree->height());
  node->work.seq_pages += corr * matched * width /
                          static_cast<double>(kPageSizeBytes);
  return out;
}

Result<Relation> Executor::ExecSort(PlanNode* node) const {
  Result<Relation> child = Execute(node->child(0));
  if (!child.ok()) return child.status();
  Relation rel = std::move(child.value());

  std::vector<std::pair<size_t, bool>> keys;  // column index, descending
  for (const auto& k : node->sort_keys) {
    auto idx = rel.schema.FindColumn(k.column.ToString());
    if (!idx.has_value()) idx = rel.schema.FindColumn(k.column.column);
    if (!idx.has_value()) {
      return Status::NotFound("sort column " + k.column.ToString());
    }
    keys.emplace_back(*idx, k.descending);
  }

  std::stable_sort(rel.rows.begin(), rel.rows.end(),
                   [&](const std::vector<Value>& a,
                       const std::vector<Value>& b) {
                     for (const auto& [c, desc] : keys) {
                       int cmp = CompareValues(a[c], b[c]);
                       if (cmp != 0) return desc ? cmp > 0 : cmp < 0;
                     }
                     return false;
                   });

  double n = static_cast<double>(rel.NumRows());
  node->actual_rows = n;
  node->input_card = n;
  node->work = WorkCounts{};
  node->work.tuples = n;
  node->work.op_units = n * Log2Safe(n);
  // External sort: spill runs when the input exceeds work_mem.
  double bytes = rel.SizeBytes();
  if (bytes > knobs_.work_mem_kb * 1024.0) {
    node->work.seq_pages += 2.0 * bytes / static_cast<double>(kPageSizeBytes);
  }
  return rel;
}

Result<Relation> Executor::ExecAggregate(PlanNode* node) const {
  Result<Relation> child = Execute(node->child(0));
  if (!child.ok()) return child.status();
  Relation in = std::move(child.value());

  // Resolve group columns.
  std::vector<size_t> group_cols;
  for (const auto& g : node->group_by) {
    auto idx = in.schema.FindColumn(g.ToString());
    if (!idx.has_value()) idx = in.schema.FindColumn(g.column);
    if (!idx.has_value()) {
      return Status::NotFound("group column " + g.ToString());
    }
    group_cols.push_back(*idx);
  }
  // Resolve aggregate argument columns (COUNT(*) has none).
  std::vector<ptrdiff_t> agg_cols;
  for (const auto& a : node->aggregates) {
    if (a.kind == Aggregate::Kind::kCount && a.column.column.empty()) {
      agg_cols.push_back(-1);
      continue;
    }
    auto idx = in.schema.FindColumn(a.column.ToString());
    if (!idx.has_value()) idx = in.schema.FindColumn(a.column.column);
    if (!idx.has_value()) {
      return Status::NotFound("aggregate column " + a.column.ToString());
    }
    agg_cols.push_back(static_cast<ptrdiff_t>(*idx));
  }

  struct GroupState {
    std::vector<Value> key_values;
    std::vector<double> sums;
    std::vector<double> mins;
    std::vector<double> maxs;
    std::vector<double> counts;
  };
  std::unordered_map<std::string, GroupState> groups;
  size_t n_aggs = node->aggregates.size();

  for (const auto& row : in.rows) {
    std::string key = GroupKey(row, group_cols);
    auto [it, inserted] = groups.try_emplace(key);
    GroupState& g = it->second;
    if (inserted) {
      for (size_t c : group_cols) g.key_values.push_back(row[c]);
      g.sums.assign(n_aggs, 0.0);
      g.mins.assign(n_aggs, HUGE_VAL);
      g.maxs.assign(n_aggs, -HUGE_VAL);
      g.counts.assign(n_aggs, 0.0);
    }
    for (size_t a = 0; a < n_aggs; ++a) {
      double v = agg_cols[a] < 0
                     ? 1.0
                     : ValueToDouble(row[static_cast<size_t>(agg_cols[a])]);
      g.sums[a] += v;
      g.mins[a] = std::min(g.mins[a], v);
      g.maxs[a] = std::max(g.maxs[a], v);
      g.counts[a] += 1.0;
    }
  }

  Relation out;
  for (size_t i = 0; i < group_cols.size(); ++i) {
    out.schema.AddColumn(in.schema.column(group_cols[i]));
  }
  for (const auto& a : node->aggregates) {
    out.schema.AddColumn({a.ToString(), DataType::kFloat64});
  }

  // Global aggregate over zero rows still emits one row (COUNT(*) = 0).
  if (groups.empty() && group_cols.empty() && n_aggs > 0) {
    std::vector<Value> row;
    for (size_t a = 0; a < n_aggs; ++a) {
      row.emplace_back(0.0);  // COUNT/SUM/... over zero rows are all 0
    }
    out.rows.push_back(std::move(row));
  } else {
    for (auto& [key, g] : groups) {
      std::vector<Value> row = g.key_values;
      for (size_t a = 0; a < n_aggs; ++a) {
        double v = 0.0;
        switch (node->aggregates[a].kind) {
          case Aggregate::Kind::kCount:
            v = g.counts[a];
            break;
          case Aggregate::Kind::kSum:
            v = g.sums[a];
            break;
          case Aggregate::Kind::kAvg:
            v = g.counts[a] > 0 ? g.sums[a] / g.counts[a] : 0.0;
            break;
          case Aggregate::Kind::kMin:
            v = g.mins[a];
            break;
          case Aggregate::Kind::kMax:
            v = g.maxs[a];
            break;
        }
        row.emplace_back(v);
      }
      out.rows.push_back(std::move(row));
    }
  }

  double n = static_cast<double>(in.NumRows());
  node->actual_rows = static_cast<double>(out.NumRows());
  node->input_card = n;
  node->work = WorkCounts{};
  node->work.tuples = n;
  node->work.op_units = n;
  return out;
}

Result<Relation> Executor::ExecMaterialize(PlanNode* node) const {
  Result<Relation> child = Execute(node->child(0));
  if (!child.ok()) return child.status();
  Relation rel = std::move(child.value());
  double n = static_cast<double>(rel.NumRows());
  node->actual_rows = n;
  node->input_card = n;
  node->work = WorkCounts{};
  node->work.tuples = n;
  node->work.op_units = n;
  double bytes = rel.SizeBytes();
  if (bytes > knobs_.work_mem_kb * 1024.0) {
    node->work.seq_pages += 2.0 * bytes / static_cast<double>(kPageSizeBytes);
  }
  return rel;
}

Result<Relation> Executor::EquiJoin(PlanNode* node, const Relation& left,
                                    const Relation& right) const {
  if (!node->join.has_value()) {
    return Status::InvalidArgument("join node without condition");
  }
  auto lidx = left.schema.FindColumn(node->join->left.ToString());
  auto ridx = right.schema.FindColumn(node->join->right.ToString());
  if (!lidx.has_value() || !ridx.has_value()) {
    return Status::NotFound("join key " + node->join->ToString());
  }

  Relation out;
  out.schema = Schema::Concat(left.schema, right.schema);

  // Hash the right side on the key, probe with the left.
  std::unordered_map<uint64_t, std::vector<size_t>> build;
  build.reserve(right.rows.size());
  for (size_t r = 0; r < right.rows.size(); ++r) {
    build[HashValue(right.rows[r][*ridx])].push_back(r);
  }
  for (const auto& lrow : left.rows) {
    auto it = build.find(HashValue(lrow[*lidx]));
    if (it == build.end()) continue;
    for (size_t r : it->second) {
      // Guard against hash collisions with a real comparison.
      if (CompareValues(lrow[*lidx], right.rows[r][*ridx]) != 0) continue;
      std::vector<Value> row = lrow;
      row.insert(row.end(), right.rows[r].begin(), right.rows[r].end());
      out.rows.push_back(std::move(row));
    }
  }
  return out;
}

Result<Relation> Executor::ExecHashJoin(PlanNode* node) const {
  Result<Relation> l = Execute(node->child(0));
  if (!l.ok()) return l.status();
  Result<Relation> r = Execute(node->child(1));
  if (!r.ok()) return r.status();

  Result<Relation> joined = EquiJoin(node, l.value(), r.value());
  if (!joined.ok()) return joined.status();

  double n1 = static_cast<double>(l.value().NumRows());
  double n2 = static_cast<double>(r.value().NumRows());
  node->actual_rows = static_cast<double>(joined.value().NumRows());
  node->input_card = n1 + n2;
  node->work = WorkCounts{};
  node->work.tuples = n1 + n2;
  node->work.op_units = 1.5 * n2 + n1;  // build then probe
  double build_bytes = r.value().SizeBytes();
  if (build_bytes > knobs_.work_mem_kb * 1024.0) {
    // Grace hash join: both sides written out and re-read once.
    node->work.seq_pages += 2.0 * (build_bytes + l.value().SizeBytes()) /
                            static_cast<double>(kPageSizeBytes);
  }
  return joined;
}

Result<Relation> Executor::ExecMergeJoin(PlanNode* node) const {
  Result<Relation> l = Execute(node->child(0));
  if (!l.ok()) return l.status();
  Result<Relation> r = Execute(node->child(1));
  if (!r.ok()) return r.status();

  // Children are sorted on the keys by plan construction; the hash-based
  // equi-join produces the same multiset of rows.
  Result<Relation> joined = EquiJoin(node, l.value(), r.value());
  if (!joined.ok()) return joined.status();

  double n1 = static_cast<double>(l.value().NumRows());
  double n2 = static_cast<double>(r.value().NumRows());
  node->actual_rows = static_cast<double>(joined.value().NumRows());
  node->input_card = n1 + n2;
  node->work = WorkCounts{};
  node->work.tuples = n1 + n2;
  node->work.op_units = n1 + n2;
  return joined;
}

Result<Relation> Executor::ExecNestedLoop(PlanNode* node) const {
  Result<Relation> l = Execute(node->child(0));
  if (!l.ok()) return l.status();
  Result<Relation> r = Execute(node->child(1));
  if (!r.ok()) return r.status();

  // Result computed hash-based (identical output for equi-joins); the work
  // counts charge the quadratic inner rescans a real nested loop performs.
  Result<Relation> joined = EquiJoin(node, l.value(), r.value());
  if (!joined.ok()) return joined.status();

  double n1 = static_cast<double>(l.value().NumRows());
  double n2 = static_cast<double>(r.value().NumRows());
  node->actual_rows = static_cast<double>(joined.value().NumRows());
  node->input_card = n1;
  node->input_card2 = n2;
  node->work = WorkCounts{};
  node->work.tuples = n1 + n2;
  node->work.op_units = n1 * n2;
  return joined;
}

}  // namespace qcfe
