#ifndef QCFE_ENGINE_KNOBS_H_
#define QCFE_ENGINE_KNOBS_H_

/// \file knobs.h
/// The "ignored variables" of the paper: database knob configuration and
/// hardware profile. Together they form an Environment; the paper's central
/// premise is that an environment shifts per-operator cost *coefficients*
/// while the plan and data shift per-operator *counts*.

#include <string>
#include <vector>

namespace qcfe {

class Rng;

/// PostgreSQL-style configuration knobs. The enable_* flags and the planner
/// cost constants steer the planner; work_mem / shared_buffers / jit /
/// parallelism change true execution behaviour.
struct Knobs {
  // Planner enable flags.
  bool enable_indexscan = true;
  bool enable_hashjoin = true;
  bool enable_mergejoin = true;
  bool enable_nestloop = true;

  // Memory configuration.
  double work_mem_kb = 4096.0;
  double shared_buffers_mb = 128.0;

  // Planner cost constants (plan choice only, like PostgreSQL's).
  double seq_page_cost = 1.0;
  double random_page_cost = 4.0;
  double cpu_tuple_cost = 0.01;
  double cpu_index_tuple_cost = 0.005;
  double cpu_operator_cost = 0.0025;

  // Execution-affecting toggles.
  bool jit = false;
  int max_parallel_workers = 0;

  /// Compact key=value rendering for logs.
  std::string ToString() const;
};

/// Physical machine profile. H1/H2 mirror the paper's two servers
/// (collection server and the transfer-learning target "h2").
struct HardwareProfile {
  std::string name = "h1";
  double cpu_scale = 1.0;        ///< relative single-thread throughput
  double seq_mb_per_s = 1800.0;  ///< sequential read bandwidth
  double rand_iops = 90000.0;    ///< random 8K reads per second
  double mem_gb = 16.0;

  /// Paper collection server: Ryzen 7 7735HS, 16 GB, 512 GB SSD.
  static HardwareProfile H1();
  /// Paper training/transfer server: i7-12700H, 42 GB, 2.5 TB disk.
  static HardwareProfile H2();
  /// A slow spinning-disk box used in robustness tests.
  static HardwareProfile Hdd();
};

/// One database environment = hardware + knob configuration.
struct Environment {
  int id = 0;
  HardwareProfile hardware;
  Knobs knobs;
};

/// Draws random knob configurations, mirroring the paper's "randomly
/// generate 20 database configurations of Postgres 14.4".
class EnvironmentSampler {
 public:
  /// One random knob vector.
  static Knobs SampleKnobs(Rng* rng);

  /// `count` environments with ids 0..count-1 on the given hardware.
  /// Environment 0 keeps default knobs so there is always a baseline config.
  static std::vector<Environment> Sample(int count,
                                         const HardwareProfile& hardware,
                                         uint64_t seed);
};

}  // namespace qcfe

#endif  // QCFE_ENGINE_KNOBS_H_
