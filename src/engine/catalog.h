#ifndef QCFE_ENGINE_CATALOG_H_
#define QCFE_ENGINE_CATALOG_H_

/// \file catalog.h
/// Table registry + statistics store. One Catalog per benchmark database.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/stats.h"
#include "engine/table.h"

namespace qcfe {

/// Owns all base tables and their ANALYZE statistics.
class Catalog {
 public:
  /// Registers a table; fails on duplicate names.
  Status AddTable(std::unique_ptr<Table> table);

  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  /// Recomputes statistics for every table (run after data loading).
  void AnalyzeAll();

  /// Statistics for a table, or nullptr if not analyzed / unknown.
  const TableStats* GetStats(const std::string& table) const;

  /// Statistics for one column, or nullptr.
  const ColumnStats* GetColumnStats(const std::string& table,
                                    const std::string& column) const;

  /// Total heap size across tables in MB (drives the buffer-cache hit model).
  double TotalSizeMb() const;

  std::vector<std::string> TableNames() const;
  size_t num_tables() const { return tables_.size(); }

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, TableStats> stats_;
};

}  // namespace qcfe

#endif  // QCFE_ENGINE_CATALOG_H_
