#ifndef QCFE_ENGINE_STATS_H_
#define QCFE_ENGINE_STATS_H_

/// \file stats.h
/// Optimizer statistics (the ANALYZE substitute): per-column min/max,
/// distinct counts and equi-width histograms over the numeric view. Consumed
/// by the planner's selectivity estimation and by the data abstract that
/// fills simplified query templates (paper Algorithm 1, input R).

#include <map>
#include <string>
#include <vector>

#include "engine/table.h"
#include "util/status.h"

namespace qcfe {

/// Statistics of one column.
struct ColumnStats {
  double min = 0.0;
  double max = 0.0;
  size_t n_distinct = 0;
  size_t num_rows = 0;
  /// Physical/logical order correlation in [-1, 1] (PostgreSQL's
  /// pg_stats.correlation): |1| means the column is laid out in key order,
  /// so index range scans touch nearly sequential heap pages.
  double correlation = 0.0;
  /// Equi-width bucket counts over [min, max] of the numeric view.
  std::vector<size_t> histogram;
  /// A deterministic value sample (up to kSampleSize) used by the data
  /// abstract to produce realistic constants for generated predicates.
  std::vector<Value> sample;

  static constexpr size_t kHistogramBuckets = 32;
  static constexpr size_t kSampleSize = 64;

  /// Estimated selectivity of `col op literal` against this column.
  /// Equality uses 1/n_distinct; ranges integrate the histogram.
  double EstimateSelectivity(int compare_op_class, double literal) const;

  /// Fraction of values strictly below x (histogram interpolation).
  double FractionBelow(double x) const;
};

/// Statistics of one table.
struct TableStats {
  size_t num_rows = 0;
  size_t num_pages = 0;
  std::map<std::string, ColumnStats> columns;
};

/// Scans a table and computes full statistics.
TableStats AnalyzeTable(const Table& table);

}  // namespace qcfe

#endif  // QCFE_ENGINE_STATS_H_
