#ifndef QCFE_ENGINE_PLAN_H_
#define QCFE_ENGINE_PLAN_H_

/// \file plan.h
/// Physical plan trees. The eight operator types match the paper's operator
/// vocabulary (Table I / Figure 7). Each node carries both planner estimates
/// and, after execution, actual cardinalities, work counts, and the simulated
/// operator latency that serves as ground truth.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/predicate.h"
#include "engine/query.h"

namespace qcfe {

/// Physical operator type.
enum class OpType {
  kSeqScan = 0,
  kIndexScan,
  kSort,
  kAggregate,
  kMaterialize,
  kHashJoin,
  kMergeJoin,
  kNestedLoop,
};

/// Number of physical operator types.
constexpr size_t kNumOpTypes = 8;

/// Display name, e.g. "Seq Scan".
const char* OpTypeName(OpType op);

/// All operator types in enum order (for iteration in featurizers/benches).
const std::vector<OpType>& AllOpTypes();

/// Per-operator work performed during execution; the ground-truth cost
/// simulator prices these counts with environment-dependent coefficients
/// (the paper's N vector; coefficients are the C vector).
struct WorkCounts {
  double seq_pages = 0.0;     ///< sequential page reads/writes
  double rand_pages = 0.0;    ///< random page reads
  double tuples = 0.0;        ///< tuples processed by the operator
  double index_tuples = 0.0;  ///< tuples located via an index
  double op_units = 0.0;      ///< operator-specific units (comparisons, probes)

  WorkCounts& operator+=(const WorkCounts& other);
};

/// A node of a physical plan tree.
struct PlanNode {
  OpType op = OpType::kSeqScan;

  // Scan parameters.
  std::string table;
  std::string index_column;          ///< index scans: indexed column
  std::vector<Predicate> filters;    ///< applied during the scan
  /// Columns (unqualified) the scan must emit; empty = all columns.
  /// Projection pushdown keeps intermediate relations narrow.
  std::vector<std::string> projection;

  // Join parameters.
  std::optional<JoinCondition> join;

  // Sort / aggregate parameters.
  std::vector<OrderKey> sort_keys;
  std::vector<ColumnRef> group_by;
  std::vector<Aggregate> aggregates;
  bool distinct = false;

  std::vector<std::unique_ptr<PlanNode>> children;

  // ---- Planner estimates ----
  double est_rows = 0.0;
  double est_width = 0.0;        ///< output row width (bytes)
  double est_cost = 0.0;         ///< cumulative planner cost (PG-style units)
  double est_self_cost = 0.0;    ///< this operator's share of est_cost

  // ---- Execution artifacts (filled by the executor + cost simulator) ----
  double actual_rows = 0.0;
  double input_card = 0.0;   ///< n of the snapshot formulas (first input)
  double input_card2 = 0.0;  ///< n2 for nested loop (second input)
  WorkCounts work;
  double actual_ms = 0.0;    ///< simulated operator latency (ground truth)

  PlanNode() = default;

  size_t num_children() const { return children.size(); }
  PlanNode* child(size_t i) { return children[i].get(); }
  const PlanNode* child(size_t i) const { return children[i].get(); }

  /// Pre-order traversal.
  void Visit(const std::function<void(PlanNode*)>& fn);
  void VisitConst(const std::function<void(const PlanNode*)>& fn) const;

  size_t CountNodes() const;

  /// Sum of actual_ms over the subtree.
  double TotalActualMs() const;

  /// Structural identity (operator, parameters, child fingerprints) used as
  /// the execution-cache key: plans with equal fingerprints perform exactly
  /// the same work regardless of environment coefficients.
  std::string Fingerprint() const;

  /// EXPLAIN-style indented rendering.
  std::string ToString(int indent = 0) const;

  /// Deep copy, including estimates and execution artifacts.
  std::unique_ptr<PlanNode> Clone() const;
};

}  // namespace qcfe

#endif  // QCFE_ENGINE_PLAN_H_
