#include "engine/btree.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace qcfe {

BPlusTree::BPlusTree() : root_(std::make_unique<Node>()) {}

void BPlusTree::BulkLoad(std::vector<std::pair<double, uint32_t>> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_ = entries.size();

  // Build the leaf level: chunks of at most kFanout entries.
  std::vector<std::unique_ptr<Node>> level;
  for (size_t i = 0; i < entries.size(); i += kFanout) {
    auto leaf = std::make_unique<Node>();
    leaf->is_leaf = true;
    size_t end = std::min(i + kFanout, entries.size());
    for (size_t j = i; j < end; ++j) {
      leaf->keys.push_back(entries[j].first);
      leaf->values.push_back(entries[j].second);
    }
    level.push_back(std::move(leaf));
  }
  if (level.empty()) level.push_back(std::make_unique<Node>());

  height_ = 1;
  // Build internal levels until a single root remains.
  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> parents;
    for (size_t i = 0; i < level.size(); i += kFanout) {
      auto parent = std::make_unique<Node>();
      parent->is_leaf = false;
      size_t end = std::min(i + kFanout, level.size());
      for (size_t j = i; j < end; ++j) {
        if (j > i) {
          // Separator = smallest key reachable from child j.
          const Node* n = level[j].get();
          while (!n->is_leaf) n = n->children.front().get();
          parent->keys.push_back(n->keys.empty() ? 0.0 : n->keys.front());
        }
        parent->children.push_back(std::move(level[j]));
      }
      parents.push_back(std::move(parent));
    }
    level = std::move(parents);
    ++height_;
  }
  root_ = std::move(level.front());
  RelinkLeaves();
}

void BPlusTree::RelinkLeaves() {
  // Walk the tree left-to-right chaining leaves.
  std::vector<Node*> stack{root_.get()};
  Node* prev = nullptr;
  // Depth-first, children in order, collect leaves.
  std::vector<Node*> order;
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    if (n->is_leaf) {
      order.push_back(n);
    } else {
      for (size_t i = n->children.size(); i > 0; --i) {
        stack.push_back(n->children[i - 1].get());
      }
    }
  }
  for (Node* leaf : order) {
    if (prev != nullptr) prev->next_leaf = leaf;
    prev = leaf;
  }
  if (prev != nullptr) prev->next_leaf = nullptr;
}

BPlusTree::SplitResult BPlusTree::InsertInto(Node* node, double key,
                                             uint32_t row_id) {
  SplitResult result;
  if (node->is_leaf) {
    auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
    size_t pos = static_cast<size_t>(it - node->keys.begin());
    node->keys.insert(it, key);
    node->values.insert(node->values.begin() + static_cast<ptrdiff_t>(pos),
                        row_id);
    if (node->keys.size() > kFanout) {
      auto right = std::make_unique<Node>();
      right->is_leaf = true;
      size_t mid = node->keys.size() / 2;
      right->keys.assign(node->keys.begin() + static_cast<ptrdiff_t>(mid),
                         node->keys.end());
      right->values.assign(node->values.begin() + static_cast<ptrdiff_t>(mid),
                           node->values.end());
      node->keys.resize(mid);
      node->values.resize(mid);
      right->next_leaf = node->next_leaf;
      node->next_leaf = right.get();
      result.separator = right->keys.front();
      result.right = std::move(right);
    }
    return result;
  }

  // Internal: find child.
  size_t idx = static_cast<size_t>(
      std::upper_bound(node->keys.begin(), node->keys.end(), key) -
      node->keys.begin());
  SplitResult child_split = InsertInto(node->children[idx].get(), key, row_id);
  if (child_split.right != nullptr) {
    node->keys.insert(node->keys.begin() + static_cast<ptrdiff_t>(idx),
                      child_split.separator);
    node->children.insert(
        node->children.begin() + static_cast<ptrdiff_t>(idx) + 1,
        std::move(child_split.right));
    if (node->keys.size() > kFanout) {
      auto right = std::make_unique<Node>();
      right->is_leaf = false;
      size_t mid = node->keys.size() / 2;
      result.separator = node->keys[mid];
      right->keys.assign(node->keys.begin() + static_cast<ptrdiff_t>(mid) + 1,
                         node->keys.end());
      for (size_t i = mid + 1; i < node->children.size(); ++i) {
        right->children.push_back(std::move(node->children[i]));
      }
      node->keys.resize(mid);
      node->children.resize(mid + 1);
      result.right = std::move(right);
    }
  }
  return result;
}

void BPlusTree::Insert(double key, uint32_t row_id) {
  SplitResult split = InsertInto(root_.get(), key, row_id);
  if (split.right != nullptr) {
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    new_root->keys.push_back(split.separator);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split.right));
    root_ = std::move(new_root);
    ++height_;
  }
  ++size_;
}

const BPlusTree::Node* BPlusTree::FindLeaf(double key) const {
  // Descend with lower_bound so a run of duplicate keys that spans node
  // boundaries is entered at its leftmost leaf (separators equal to `key`
  // may have equal keys in the child to their left).
  const Node* n = root_.get();
  while (!n->is_leaf) {
    size_t idx = static_cast<size_t>(
        std::lower_bound(n->keys.begin(), n->keys.end(), key) -
        n->keys.begin());
    n = n->children[idx].get();
  }
  return n;
}

void BPlusTree::RangeScan(double lo, bool lo_inclusive, double hi,
                          bool hi_inclusive,
                          std::vector<uint32_t>* out) const {
  if (size_ == 0) return;
  const Node* leaf =
      std::isinf(lo) && lo < 0 ? FindLeaf(-HUGE_VAL) : FindLeaf(lo);
  while (leaf != nullptr) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      double k = leaf->keys[i];
      bool above_lo = lo_inclusive ? k >= lo : k > lo;
      bool below_hi = hi_inclusive ? k <= hi : k < hi;
      if (!above_lo) continue;
      if (!below_hi) return;  // keys ascend; nothing further matches
      out->push_back(leaf->values[i]);
    }
    leaf = leaf->next_leaf;
  }
}

void BPlusTree::PointLookup(double key, std::vector<uint32_t>* out) const {
  RangeScan(key, true, key, true, out);
}

size_t BPlusTree::leaf_count() const {
  const Node* n = root_.get();
  while (!n->is_leaf) n = n->children.front().get();
  size_t count = 0;
  for (; n != nullptr; n = n->next_leaf) ++count;
  return count;
}

}  // namespace qcfe
