#include "engine/predicate.h"

#include <algorithm>

#include "util/string_util.h"

namespace qcfe {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kIn:
      return "in";
    case CompareOp::kLike:
      return "like";
    case CompareOp::kBetween:
      return "between";
  }
  return "?";
}

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Split the pattern on '%' and greedily match the fragments in order.
  std::vector<std::string> parts = Split(pattern, '%');
  bool anchored_start = !pattern.empty() && pattern.front() != '%';
  bool anchored_end = !pattern.empty() && pattern.back() != '%';
  size_t pos = 0;
  for (size_t i = 0; i < parts.size(); ++i) {
    const std::string& frag = parts[i];
    if (frag.empty()) continue;
    size_t found = text.find(frag, pos);
    if (found == std::string::npos) return false;
    if (i == 0 && anchored_start && found != 0) return false;
    pos = found + frag.size();
  }
  if (anchored_end) {
    // The last non-empty fragment must reach the end of the text.
    const std::string& last = parts.back();
    if (text.size() < last.size()) return false;
    if (text.compare(text.size() - last.size(), last.size(), last) != 0) {
      return false;
    }
  }
  return true;
}

bool Predicate::Matches(const Value& v) const {
  switch (op) {
    case CompareOp::kEq:
      return CompareValues(v, literals[0]) == 0;
    case CompareOp::kNe:
      return CompareValues(v, literals[0]) != 0;
    case CompareOp::kLt:
      return CompareValues(v, literals[0]) < 0;
    case CompareOp::kLe:
      return CompareValues(v, literals[0]) <= 0;
    case CompareOp::kGt:
      return CompareValues(v, literals[0]) > 0;
    case CompareOp::kGe:
      return CompareValues(v, literals[0]) >= 0;
    case CompareOp::kIn:
      return std::any_of(literals.begin(), literals.end(), [&](const Value& l) {
        return CompareValues(v, l) == 0;
      });
    case CompareOp::kLike: {
      if (v.index() != 2 || literals[0].index() != 2) return false;
      return LikeMatch(std::get<std::string>(v),
                       std::get<std::string>(literals[0]));
    }
    case CompareOp::kBetween:
      return CompareValues(v, literals[0]) >= 0 &&
             CompareValues(v, literals[1]) <= 0;
  }
  return false;
}

double Predicate::EstimateSelectivity(const ColumnStats& stats) const {
  switch (op) {
    case CompareOp::kEq:
      return stats.EstimateSelectivity(0, ValueToDouble(literals[0]));
    case CompareOp::kNe:
      return stats.EstimateSelectivity(2, ValueToDouble(literals[0]));
    case CompareOp::kLt:
    case CompareOp::kLe:
      return stats.EstimateSelectivity(-1, ValueToDouble(literals[0]));
    case CompareOp::kGt:
    case CompareOp::kGe:
      return stats.EstimateSelectivity(1, ValueToDouble(literals[0]));
    case CompareOp::kIn: {
      double eq = stats.EstimateSelectivity(0, 0.0);
      return std::min(1.0, eq * static_cast<double>(literals.size()));
    }
    case CompareOp::kLike:
      return 0.05;  // PostgreSQL-style DEFAULT_MATCH_SEL
    case CompareOp::kBetween: {
      double lo = ValueToDouble(literals[0]);
      double hi = ValueToDouble(literals[1]);
      double f = stats.FractionBelow(hi) - stats.FractionBelow(lo);
      return std::clamp(f, 0.0005, 1.0);
    }
  }
  return 0.1;
}

std::string Predicate::ToString() const {
  std::string out = column.ToString() + " " + CompareOpName(op) + " ";
  if (op == CompareOp::kBetween) {
    out += ValueToString(literals[0]) + " and " + ValueToString(literals[1]);
  } else if (op == CompareOp::kIn) {
    std::vector<std::string> parts;
    for (const auto& l : literals) parts.push_back(ValueToString(l));
    out += "(" + Join(parts, ", ") + ")";
  } else {
    out += ValueToString(literals[0]);
  }
  return out;
}

}  // namespace qcfe
