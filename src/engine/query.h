#ifndef QCFE_ENGINE_QUERY_H_
#define QCFE_ENGINE_QUERY_H_

/// \file query.h
/// Logical query IR produced by the SQL parser and consumed by the planner:
/// conjunctive select-project-join-aggregate queries with ORDER BY / LIMIT /
/// DISTINCT. This covers the full query language of the three benchmarks.

#include <optional>
#include <string>
#include <vector>

#include "engine/predicate.h"

namespace qcfe {

/// Equi-join condition `left.lcol = right.rcol`.
struct JoinCondition {
  ColumnRef left;
  ColumnRef right;

  std::string ToString() const {
    return left.ToString() + " = " + right.ToString();
  }
};

/// Aggregate function over a column (or * for COUNT).
struct Aggregate {
  enum class Kind { kCount, kSum, kAvg, kMin, kMax };
  Kind kind = Kind::kCount;
  /// Empty column means COUNT(*).
  ColumnRef column;

  std::string ToString() const;
};

/// ORDER BY key.
struct OrderKey {
  ColumnRef column;
  bool descending = false;
};

/// A logical query. `select_columns` empty means SELECT * (all columns of
/// all referenced tables) unless aggregates are present.
struct QuerySpec {
  std::vector<std::string> tables;
  std::vector<JoinCondition> joins;
  std::vector<Predicate> filters;
  std::vector<ColumnRef> select_columns;
  std::vector<Aggregate> aggregates;
  std::vector<ColumnRef> group_by;
  std::vector<OrderKey> order_by;
  std::optional<size_t> limit;
  bool distinct = false;

  bool HasAggregation() const {
    return !aggregates.empty() || !group_by.empty() || distinct;
  }

  /// Round-trippable SQL-ish rendering (for logs and plan fingerprints).
  std::string ToString() const;
};

}  // namespace qcfe

#endif  // QCFE_ENGINE_QUERY_H_
