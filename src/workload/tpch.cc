#include "workload/tpch.h"

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace qcfe {

namespace {

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD",
                           "MACHINERY"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP",
                            "TRUCK"};
const char* kStatuses[] = {"F", "O", "P"};
const char* kReturnFlags[] = {"A", "N", "R"};
const char* kLineStatuses[] = {"F", "O"};
const char* kContainers[] = {"SM CASE", "SM BOX",  "MED BAG", "MED BOX",
                             "LG CASE", "LG BOX",  "JUMBO PKG", "WRAP CASE"};
const char* kBrandRoots[] = {"Brand#1", "Brand#2", "Brand#3", "Brand#4",
                             "Brand#5"};
const char* kTypes[] = {"STANDARD ANODIZED", "SMALL PLATED", "MEDIUM BURNISHED",
                        "ECONOMY BRUSHED", "PROMO POLISHED", "LARGE TIN"};
const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};

/// Dates are integers: days since 1992-01-01; the TPC-H date span is ~2556
/// days (7 years).
constexpr int64_t kDateLo = 0;
constexpr int64_t kDateHi = 2555;

}  // namespace

std::unique_ptr<Database> TpchBenchmark::BuildDatabase(double scale_factor,
                                                       uint64_t seed) const {
  auto db = std::make_unique<Database>("tpch");
  Rng rng(seed);
  auto count = [&](double base) {
    return static_cast<int64_t>(std::max(1.0, base * scale_factor));
  };

  // region / nation (fixed size).
  auto region = std::make_unique<Table>(
      "region",
      Schema({{"r_regionkey", DataType::kInt64}, {"r_name", DataType::kString}}));
  for (int64_t i = 0; i < 5; ++i) {
    QCFE_CHECK_OK(region->AppendRow({Value(i), Value(std::string(kRegions[i]))}));
  }
  QCFE_CHECK_OK(region->BuildIndex("r_regionkey"));
  QCFE_CHECK_OK(db->catalog()->AddTable(std::move(region)));

  auto nation = std::make_unique<Table>(
      "nation", Schema({{"n_nationkey", DataType::kInt64},
                        {"n_regionkey", DataType::kInt64},
                        {"n_name", DataType::kString}}));
  for (int64_t i = 0; i < 25; ++i) {
    QCFE_CHECK_OK(nation->AppendRow(
        {Value(i), Value(i % 5), Value("NATION_" + std::to_string(i))}));
  }
  QCFE_CHECK_OK(nation->BuildIndex("n_nationkey"));
  QCFE_CHECK_OK(db->catalog()->AddTable(std::move(nation)));

  // supplier.
  int64_t n_supplier = count(100);
  auto supplier = std::make_unique<Table>(
      "supplier", Schema({{"s_suppkey", DataType::kInt64},
                          {"s_nationkey", DataType::kInt64},
                          {"s_acctbal", DataType::kFloat64},
                          {"s_name", DataType::kString}}));
  for (int64_t i = 0; i < n_supplier; ++i) {
    QCFE_CHECK_OK(supplier->AppendRow({Value(i), Value(rng.UniformInt(0, 24)),
                               Value(rng.Uniform(-999.0, 9999.0)),
                               Value("Supplier#" + std::to_string(i))}));
  }
  QCFE_CHECK_OK(supplier->BuildIndex("s_suppkey"));
  QCFE_CHECK_OK(db->catalog()->AddTable(std::move(supplier)));

  // customer.
  int64_t n_customer = count(1500);
  auto customer = std::make_unique<Table>(
      "customer", Schema({{"c_custkey", DataType::kInt64},
                          {"c_nationkey", DataType::kInt64},
                          {"c_acctbal", DataType::kFloat64},
                          {"c_mktsegment", DataType::kString},
                          {"c_name", DataType::kString}}));
  for (int64_t i = 0; i < n_customer; ++i) {
    QCFE_CHECK_OK(customer->AppendRow(
        {Value(i), Value(rng.UniformInt(0, 24)),
         Value(rng.Uniform(-999.0, 9999.0)),
         Value(std::string(kSegments[rng.UniformInt(0, 4)])),
         Value("Customer#" + std::to_string(i))}));
  }
  QCFE_CHECK_OK(customer->BuildIndex("c_custkey"));
  QCFE_CHECK_OK(db->catalog()->AddTable(std::move(customer)));

  // part.
  int64_t n_part = count(2000);
  auto part = std::make_unique<Table>(
      "part", Schema({{"p_partkey", DataType::kInt64},
                      {"p_size", DataType::kInt64},
                      {"p_retailprice", DataType::kFloat64},
                      {"p_brand", DataType::kString},
                      {"p_type", DataType::kString},
                      {"p_container", DataType::kString},
                      {"p_name", DataType::kString}}));
  for (int64_t i = 0; i < n_part; ++i) {
    std::string brand = std::string(kBrandRoots[rng.UniformInt(0, 4)]) +
                        std::to_string(rng.UniformInt(1, 5));
    QCFE_CHECK_OK(part->AppendRow(
        {Value(i), Value(rng.UniformInt(1, 50)),
         Value(rng.Uniform(900.0, 2100.0)), Value(brand),
         Value(std::string(kTypes[rng.UniformInt(0, 5)])),
         Value(std::string(kContainers[rng.UniformInt(0, 7)])),
         Value("part_" + rng.RandomString(8))}));
  }
  QCFE_CHECK_OK(part->BuildIndex("p_partkey"));
  QCFE_CHECK_OK(db->catalog()->AddTable(std::move(part)));

  // partsupp: 4 suppliers per part.
  auto partsupp = std::make_unique<Table>(
      "partsupp", Schema({{"ps_partkey", DataType::kInt64},
                          {"ps_suppkey", DataType::kInt64},
                          {"ps_availqty", DataType::kInt64},
                          {"ps_supplycost", DataType::kFloat64}}));
  for (int64_t p = 0; p < n_part; ++p) {
    for (int64_t s = 0; s < 4; ++s) {
      QCFE_CHECK_OK(partsupp->AppendRow(
          {Value(p), Value(rng.UniformInt(0, n_supplier - 1)),
           Value(rng.UniformInt(1, 9999)), Value(rng.Uniform(1.0, 1000.0))}));
    }
  }
  QCFE_CHECK_OK(partsupp->BuildIndex("ps_partkey"));
  QCFE_CHECK_OK(db->catalog()->AddTable(std::move(partsupp)));

  // orders + lineitem with correlated dates.
  int64_t n_orders = count(15000);
  auto orders = std::make_unique<Table>(
      "orders", Schema({{"o_orderkey", DataType::kInt64},
                        {"o_custkey", DataType::kInt64},
                        {"o_totalprice", DataType::kFloat64},
                        {"o_orderdate", DataType::kInt64},
                        {"o_shippriority", DataType::kInt64},
                        {"o_orderstatus", DataType::kString},
                        {"o_orderpriority", DataType::kString}}));
  auto lineitem = std::make_unique<Table>(
      "lineitem", Schema({{"l_orderkey", DataType::kInt64},
                          {"l_partkey", DataType::kInt64},
                          {"l_suppkey", DataType::kInt64},
                          {"l_linenumber", DataType::kInt64},
                          {"l_quantity", DataType::kInt64},
                          {"l_extendedprice", DataType::kFloat64},
                          {"l_discount", DataType::kFloat64},
                          {"l_tax", DataType::kFloat64},
                          {"l_shipdate", DataType::kInt64},
                          {"l_commitdate", DataType::kInt64},
                          {"l_receiptdate", DataType::kInt64},
                          {"l_returnflag", DataType::kString},
                          {"l_linestatus", DataType::kString},
                          {"l_shipmode", DataType::kString}}));
  for (int64_t o = 0; o < n_orders; ++o) {
    int64_t orderdate = rng.UniformInt(kDateLo, kDateHi - 150);
    double total = 0.0;
    int64_t n_lines = rng.UniformInt(1, 7);
    for (int64_t l = 0; l < n_lines; ++l) {
      int64_t quantity = rng.UniformInt(1, 50);
      double price = rng.Uniform(900.0, 105000.0);
      total += price;
      int64_t shipdate = orderdate + rng.UniformInt(1, 121);
      int64_t commitdate = orderdate + rng.UniformInt(30, 90);
      int64_t receiptdate = shipdate + rng.UniformInt(1, 30);
      bool shipped_past = shipdate <= kDateHi - 400;
      QCFE_CHECK_OK(lineitem->AppendRow(
          {Value(o), Value(rng.UniformInt(0, n_part - 1)),
           Value(rng.UniformInt(0, n_supplier - 1)), Value(l + 1),
           Value(quantity), Value(price), Value(rng.Uniform(0.0, 0.1)),
           Value(rng.Uniform(0.0, 0.08)), Value(shipdate), Value(commitdate),
           Value(receiptdate),
           Value(std::string(shipped_past ? kReturnFlags[rng.UniformInt(0, 2)]
                                          : "N")),
           Value(std::string(kLineStatuses[shipped_past ? 0 : 1])),
           Value(std::string(kShipModes[rng.UniformInt(0, 6)]))}));
    }
    QCFE_CHECK_OK(orders->AppendRow(
        {Value(o), Value(rng.UniformInt(0, n_customer - 1)), Value(total),
         Value(orderdate), Value(rng.UniformInt(0, 1)),
         Value(std::string(kStatuses[rng.UniformInt(0, 2)])),
         Value(std::string(kPriorities[rng.UniformInt(0, 4)]))}));
  }
  QCFE_CHECK_OK(orders->BuildIndex("o_orderkey"));
  QCFE_CHECK_OK(orders->BuildIndex("o_custkey"));
  QCFE_CHECK_OK(lineitem->BuildIndex("l_orderkey"));
  QCFE_CHECK_OK(lineitem->BuildIndex("l_partkey"));
  QCFE_CHECK_OK(db->catalog()->AddTable(std::move(orders)));
  QCFE_CHECK_OK(db->catalog()->AddTable(std::move(lineitem)));

  db->Analyze();
  return db;
}

std::vector<QueryTemplate> TpchBenchmark::Templates() const {
  // Operator-footprint approximations of TPC-H Q1..Q22 in the single-block
  // SPJA dialect (no subqueries/CTEs; see DESIGN.md).
  std::vector<QueryTemplate> t;
  t.push_back({"q1",
               "select count(*), sum(lineitem.l_quantity), "
               "sum(lineitem.l_extendedprice), avg(lineitem.l_discount) "
               "from lineitem where lineitem.l_shipdate <= "
               "{lineitem.l_shipdate} group by lineitem.l_returnflag, "
               "lineitem.l_linestatus order by lineitem.l_returnflag"});
  t.push_back({"q2",
               "select min(partsupp.ps_supplycost) from partsupp "
               "join part on partsupp.ps_partkey = part.p_partkey "
               "join supplier on partsupp.ps_suppkey = supplier.s_suppkey "
               "where part.p_size = {part.p_size}"});
  t.push_back({"q3",
               "select orders.o_orderkey, orders.o_orderdate, "
               "orders.o_shippriority from customer "
               "join orders on customer.c_custkey = orders.o_custkey "
               "join lineitem on orders.o_orderkey = lineitem.l_orderkey "
               "where customer.c_mktsegment = {customer.c_mktsegment} "
               "and orders.o_orderdate < {orders.o_orderdate} "
               "and lineitem.l_shipdate > {lineitem.l_shipdate} "
               "order by orders.o_orderdate limit 10"});
  t.push_back({"q4",
               "select count(*) from orders where orders.o_orderdate between "
               "{orders.o_orderdate} and {orders.o_orderdate+90} "
               "group by orders.o_orderpriority "
               "order by orders.o_orderpriority"});
  t.push_back({"q5",
               "select sum(lineitem.l_extendedprice) from customer "
               "join orders on customer.c_custkey = orders.o_custkey "
               "join lineitem on orders.o_orderkey = lineitem.l_orderkey "
               "join supplier on lineitem.l_suppkey = supplier.s_suppkey "
               "join nation on supplier.s_nationkey = nation.n_nationkey "
               "where orders.o_orderdate >= {orders.o_orderdate} "
               "group by nation.n_name order by nation.n_name"});
  t.push_back({"q6",
               "select sum(lineitem.l_extendedprice) from lineitem where "
               "lineitem.l_shipdate >= {lineitem.l_shipdate} and "
               "lineitem.l_shipdate < {lineitem.l_shipdate+365} and "
               "lineitem.l_discount between {lineitem.l_discount} and "
               "{lineitem.l_discount+0.02} and lineitem.l_quantity < "
               "{lineitem.l_quantity}"});
  t.push_back({"q7",
               "select sum(lineitem.l_extendedprice) from supplier "
               "join lineitem on supplier.s_suppkey = lineitem.l_suppkey "
               "join orders on lineitem.l_orderkey = orders.o_orderkey "
               "join nation on supplier.s_nationkey = nation.n_nationkey "
               "where lineitem.l_shipdate between {lineitem.l_shipdate} and "
               "{lineitem.l_shipdate+365} group by nation.n_name"});
  t.push_back({"q8",
               "select avg(lineitem.l_discount) from part "
               "join lineitem on part.p_partkey = lineitem.l_partkey "
               "join orders on lineitem.l_orderkey = orders.o_orderkey "
               "join customer on orders.o_custkey = customer.c_custkey "
               "where orders.o_orderdate between {orders.o_orderdate} and "
               "{orders.o_orderdate+730} and part.p_type = {part.p_type}"});
  t.push_back({"q9",
               "select sum(lineitem.l_extendedprice), "
               "sum(partsupp.ps_supplycost) from part "
               "join lineitem on part.p_partkey = lineitem.l_partkey "
               "join partsupp on lineitem.l_partkey = partsupp.ps_partkey "
               "where part.p_name like '{part.p_name:prefix}%' "
               "group by lineitem.l_returnflag"});
  t.push_back({"q10",
               "select sum(lineitem.l_extendedprice) from customer "
               "join orders on customer.c_custkey = orders.o_custkey "
               "join lineitem on orders.o_orderkey = lineitem.l_orderkey "
               "where orders.o_orderdate >= {orders.o_orderdate} and "
               "lineitem.l_returnflag = 'R' group by customer.c_name "
               "order by customer.c_name limit 20"});
  t.push_back({"q11",
               "select sum(partsupp.ps_supplycost) from partsupp "
               "join supplier on partsupp.ps_suppkey = supplier.s_suppkey "
               "join nation on supplier.s_nationkey = nation.n_nationkey "
               "where nation.n_nationkey = {nation.n_nationkey} "
               "group by partsupp.ps_partkey order by partsupp.ps_partkey "
               "limit 50"});
  t.push_back({"q12",
               "select count(*) from orders "
               "join lineitem on orders.o_orderkey = lineitem.l_orderkey "
               "where lineitem.l_orderkey between {lineitem.l_orderkey} and "
               "{lineitem.l_orderkey+150} and lineitem.l_shipmode in "
               "({lineitem.l_shipmode}, {lineitem.l_shipmode}) "
               "group by lineitem.l_shipmode"});
  t.push_back({"q13",
               "select count(*) from customer "
               "join orders on customer.c_custkey = orders.o_custkey "
               "where orders.o_orderpriority <> {orders.o_orderpriority} "
               "group by customer.c_custkey limit 100"});
  t.push_back({"q14",
               "select sum(lineitem.l_extendedprice) from lineitem "
               "join part on lineitem.l_partkey = part.p_partkey "
               "where lineitem.l_shipdate between {lineitem.l_shipdate} and "
               "{lineitem.l_shipdate+30}"});
  t.push_back({"q15",
               "select sum(lineitem.l_extendedprice) from lineitem "
               "join supplier on lineitem.l_suppkey = supplier.s_suppkey "
               "where lineitem.l_shipdate >= {lineitem.l_shipdate} "
               "group by supplier.s_name order by supplier.s_name"});
  t.push_back({"q16",
               "select count(*) from partsupp "
               "join part on partsupp.ps_partkey = part.p_partkey "
               "where part.p_brand <> {part.p_brand} and part.p_size in "
               "({part.p_size}, {part.p_size}, {part.p_size}) "
               "group by part.p_brand order by part.p_brand"});
  t.push_back({"q17",
               "select avg(lineitem.l_quantity) from lineitem "
               "join part on lineitem.l_partkey = part.p_partkey "
               "where part.p_brand = {part.p_brand} and part.p_container = "
               "{part.p_container}"});
  t.push_back({"q18",
               "select sum(lineitem.l_quantity) from customer "
               "join orders on customer.c_custkey = orders.o_custkey "
               "join lineitem on orders.o_orderkey = lineitem.l_orderkey "
               "where lineitem.l_quantity > {lineitem.l_quantity} "
               "group by customer.c_name order by customer.c_name limit 100"});
  t.push_back({"q19",
               "select sum(lineitem.l_extendedprice) from lineitem "
               "join part on lineitem.l_partkey = part.p_partkey "
               "where part.p_brand = {part.p_brand} and "
               "lineitem.l_quantity between {lineitem.l_quantity} and "
               "{lineitem.l_quantity+10} and part.p_size between "
               "{part.p_size} and {part.p_size+5}"});
  t.push_back({"q20",
               "select count(*) from partsupp "
               "join part on partsupp.ps_partkey = part.p_partkey "
               "join supplier on partsupp.ps_suppkey = supplier.s_suppkey "
               "where part.p_name like '{part.p_name:prefix}%' and "
               "partsupp.ps_availqty > {partsupp.ps_availqty}"});
  t.push_back({"q21",
               "select count(*) from supplier "
               "join lineitem on supplier.s_suppkey = lineitem.l_suppkey "
               "join orders on lineitem.l_orderkey = orders.o_orderkey "
               "join nation on supplier.s_nationkey = nation.n_nationkey "
               "where orders.o_orderstatus = 'F' and "
               "lineitem.l_receiptdate > {lineitem.l_receiptdate} "
               "group by supplier.s_name order by supplier.s_name limit 100"});
  t.push_back({"q22",
               "select count(*), sum(customer.c_acctbal) from customer "
               "where customer.c_acctbal > {customer.c_acctbal} "
               "group by customer.c_nationkey order by customer.c_nationkey"});
  return t;
}

}  // namespace qcfe
