#ifndef QCFE_WORKLOAD_SYSBENCH_H_
#define QCFE_WORKLOAD_SYSBENCH_H_

/// \file sysbench.h
/// Sysbench oltp_read_only workload: the single sbtest1 table and the five
/// read statements of oltp_read_only.lua (point select, covered range,
/// SUM range, ORDER BY range, DISTINCT range).

#include "workload/benchmark.h"

namespace qcfe {

/// Sysbench benchmark. scale_factor 1.0 ~ 100k sbtest1 rows (the paper uses
/// 5M on real hardware; see DESIGN.md for the scaling substitution).
class SysbenchBenchmark : public BenchmarkWorkload {
 public:
  std::string name() const override { return "sysbench"; }
  std::unique_ptr<Database> BuildDatabase(double scale_factor,
                                          uint64_t seed) const override;
  std::vector<QueryTemplate> Templates() const override;
};

}  // namespace qcfe

#endif  // QCFE_WORKLOAD_SYSBENCH_H_
