#include "workload/benchmark.h"

#include "workload/joblight.h"
#include "workload/sysbench.h"
#include "workload/tpch.h"

namespace qcfe {

Result<std::unique_ptr<BenchmarkWorkload>> MakeBenchmark(
    const std::string& name) {
  if (name == "tpch") {
    return std::unique_ptr<BenchmarkWorkload>(new TpchBenchmark());
  }
  if (name == "joblight") {
    return std::unique_ptr<BenchmarkWorkload>(new JobLightBenchmark());
  }
  if (name == "sysbench") {
    return std::unique_ptr<BenchmarkWorkload>(new SysbenchBenchmark());
  }
  return Status::NotFound("unknown benchmark " + name);
}

const std::vector<std::string>& AllBenchmarkNames() {
  static const std::vector<std::string> kNames = {"tpch", "sysbench",
                                                  "joblight"};
  return kNames;
}

}  // namespace qcfe
