#include "workload/collector.h"

#include "sql/data_abstract.h"
#include "util/rng.h"

namespace qcfe {

namespace {

/// One collection task's outcome; slotted into the result set in task order.
struct CollectedQuery {
  Status status;
  LabeledQuery query;
};

}  // namespace

Result<LabeledQuerySet> QueryCollector::Collect(
    const std::vector<QueryTemplate>& templates, size_t count, uint64_t seed,
    ThreadPool* pool) {
  if (templates.empty()) {
    return Status::InvalidArgument("no templates to collect from");
  }
  if (envs_->empty()) {
    return Status::InvalidArgument("no environments configured");
  }
  Rng rng(seed);
  DataAbstract abstract(db_->catalog());

  // Query i draws from its own instantiation and noise streams, so tasks
  // are independent and the schedule cannot change any label.
  std::vector<CollectedQuery> collected =
      ParallelMap<CollectedQuery>(pool, count, [&](size_t i) {
        size_t ti = i % templates.size();
        const Environment& env =
            (*envs_)[(i / templates.size()) % envs_->size()];
        Rng inst_rng = rng.Split(2 * i);
        Rng noise_rng = rng.Split(2 * i + 1);
        CollectedQuery out;
        Result<QuerySpec> spec = templates[ti].Instantiate(abstract, &inst_rng);
        if (!spec.ok()) {
          out.status = spec.status();
          return out;
        }
        Result<QueryRunResult> run = db_->Run(*spec, env, &noise_rng);
        if (!run.ok()) {
          out.status = run.status();
          return out;
        }
        out.query.template_index = ti;
        out.query.env_id = env.id;
        out.query.total_ms = run->total_ms;
        out.query.plan = std::move(run->plan);
        return out;
      });

  LabeledQuerySet set;
  set.queries.reserve(count);
  for (auto& c : collected) {
    if (!c.status.ok()) return c.status;
    set.collection_ms += c.query.total_ms;
    set.queries.push_back(std::move(c.query));
  }
  return set;
}

Result<LabeledQuerySet> QueryCollector::RunSpecsUnderEnv(
    const std::vector<QuerySpec>& specs, const Environment& env,
    uint64_t seed, ThreadPool* pool) {
  Rng rng(seed);
  std::vector<CollectedQuery> collected =
      ParallelMap<CollectedQuery>(pool, specs.size(), [&](size_t i) {
        Rng noise_rng = rng.Split(i);
        CollectedQuery out;
        Result<QueryRunResult> run = db_->Run(specs[i], env, &noise_rng);
        if (!run.ok()) {
          out.status = run.status();
          return out;
        }
        out.query.template_index = i;
        out.query.env_id = env.id;
        out.query.total_ms = run->total_ms;
        out.query.plan = std::move(run->plan);
        return out;
      });

  LabeledQuerySet set;
  set.queries.reserve(specs.size());
  for (auto& c : collected) {
    if (!c.status.ok()) return c.status;
    set.collection_ms += c.query.total_ms;
    set.queries.push_back(std::move(c.query));
  }
  return set;
}

Result<std::vector<LabeledQuerySet>> QueryCollector::RunSpecsGrid(
    const std::vector<QuerySpec>& specs,
    const std::vector<Environment>& envs, uint64_t seed, ThreadPool* pool) {
  size_t per_env = specs.size();
  std::vector<CollectedQuery> collected =
      ParallelMap<CollectedQuery>(pool, per_env * envs.size(), [&](size_t j) {
        size_t e = j / per_env;
        size_t i = j % per_env;
        const Environment& env = envs[e];
        // Same derivation as the historical per-environment loop, so each
        // grid slice equals RunSpecsUnderEnv(specs, env, derived_seed).
        uint64_t env_seed =
            seed ^ (0x9E37ULL * (static_cast<uint64_t>(env.id) + 1));
        Rng noise_rng = Rng(env_seed).Split(i);
        CollectedQuery out;
        Result<QueryRunResult> run = db_->Run(specs[i], env, &noise_rng);
        if (!run.ok()) {
          out.status = run.status();
          return out;
        }
        out.query.template_index = i;
        out.query.env_id = env.id;
        out.query.total_ms = run->total_ms;
        out.query.plan = std::move(run->plan);
        return out;
      });

  std::vector<LabeledQuerySet> sets(envs.size());
  for (size_t e = 0; e < envs.size(); ++e) {
    sets[e].queries.reserve(per_env);
    for (size_t i = 0; i < per_env; ++i) {
      CollectedQuery& c = collected[e * per_env + i];
      if (!c.status.ok()) return c.status;
      sets[e].collection_ms += c.query.total_ms;
      sets[e].queries.push_back(std::move(c.query));
    }
  }
  return sets;
}

TrainTestSplit SplitIndices(size_t n, double train_fraction, uint64_t seed) {
  Rng rng(seed);
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  rng.Shuffle(&idx);
  TrainTestSplit split;
  size_t n_train = static_cast<size_t>(static_cast<double>(n) * train_fraction);
  split.train.assign(idx.begin(), idx.begin() + static_cast<ptrdiff_t>(n_train));
  split.test.assign(idx.begin() + static_cast<ptrdiff_t>(n_train), idx.end());
  return split;
}

}  // namespace qcfe
