#include "workload/collector.h"

#include "sql/data_abstract.h"
#include "util/rng.h"

namespace qcfe {

Result<LabeledQuerySet> QueryCollector::Collect(
    const std::vector<QueryTemplate>& templates, size_t count, uint64_t seed) {
  if (templates.empty()) {
    return Status::InvalidArgument("no templates to collect from");
  }
  if (envs_->empty()) {
    return Status::InvalidArgument("no environments configured");
  }
  Rng rng(seed);
  Rng noise = rng.Fork(1);
  DataAbstract abstract(db_->catalog());

  LabeledQuerySet set;
  set.queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    size_t ti = i % templates.size();
    const Environment& env = (*envs_)[(i / templates.size()) % envs_->size()];
    Result<QuerySpec> spec = templates[ti].Instantiate(abstract, &rng);
    if (!spec.ok()) return spec.status();
    Result<QueryRunResult> run = db_->Run(*spec, env, &noise);
    if (!run.ok()) return run.status();
    LabeledQuery lq;
    lq.template_index = ti;
    lq.env_id = env.id;
    lq.total_ms = run->total_ms;
    lq.plan = std::move(run->plan);
    set.collection_ms += lq.total_ms;
    set.queries.push_back(std::move(lq));
  }
  return set;
}

Result<LabeledQuerySet> QueryCollector::RunSpecsUnderEnv(
    const std::vector<QuerySpec>& specs, const Environment& env,
    uint64_t seed) {
  Rng noise(seed);
  LabeledQuerySet set;
  set.queries.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    Result<QueryRunResult> run = db_->Run(specs[i], env, &noise);
    if (!run.ok()) return run.status();
    LabeledQuery lq;
    lq.template_index = i;
    lq.env_id = env.id;
    lq.total_ms = run->total_ms;
    lq.plan = std::move(run->plan);
    set.collection_ms += lq.total_ms;
    set.queries.push_back(std::move(lq));
  }
  return set;
}

TrainTestSplit SplitIndices(size_t n, double train_fraction, uint64_t seed) {
  Rng rng(seed);
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  rng.Shuffle(&idx);
  TrainTestSplit split;
  size_t n_train = static_cast<size_t>(static_cast<double>(n) * train_fraction);
  split.train.assign(idx.begin(), idx.begin() + static_cast<ptrdiff_t>(n_train));
  split.test.assign(idx.begin() + static_cast<ptrdiff_t>(n_train), idx.end());
  return split;
}

}  // namespace qcfe
