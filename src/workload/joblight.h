#ifndef QCFE_WORKLOAD_JOBLIGHT_H_
#define QCFE_WORKLOAD_JOBLIGHT_H_

/// \file joblight.h
/// job-light workload: an IMDB-like six-table star schema (title plus five
/// satellite tables joined on movie_id) with skewed synthetic data, and the
/// 70 job-light-shaped COUNT(*) join templates (1-4 way joins with 0-3
/// numeric predicates), generated deterministically.

#include "workload/benchmark.h"

namespace qcfe {

/// job-light (IMDB) benchmark. scale_factor 1.0 ~ 140k cast_info rows.
class JobLightBenchmark : public BenchmarkWorkload {
 public:
  std::string name() const override { return "joblight"; }
  std::unique_ptr<Database> BuildDatabase(double scale_factor,
                                          uint64_t seed) const override;
  std::vector<QueryTemplate> Templates() const override;
};

}  // namespace qcfe

#endif  // QCFE_WORKLOAD_JOBLIGHT_H_
