#include "workload/joblight.h"

#include <cmath>

#include "util/check.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace qcfe {

namespace {

struct Satellite {
  const char* table;
  const char* extra_col;   // the filterable attribute
  int64_t extra_max;       // attribute domain [1, extra_max]
  double base_rows;        // rows at scale_factor 1
};

const Satellite kSatellites[] = {
    {"cast_info", "role_id", 11, 140000},
    {"movie_info", "info_type_id", 110, 100000},
    {"movie_keyword", "keyword_id", 1000, 80000},
    {"movie_companies", "company_type_id", 4, 50000},
    {"movie_info_idx", "info_type_id", 110, 30000},
};

constexpr double kTitleBaseRows = 40000;

}  // namespace

std::unique_ptr<Database> JobLightBenchmark::BuildDatabase(
    double scale_factor, uint64_t seed) const {
  auto db = std::make_unique<Database>("joblight");
  Rng rng(seed);

  int64_t n_title = static_cast<int64_t>(
      std::max(100.0, kTitleBaseRows * scale_factor));
  auto title = std::make_unique<Table>(
      "title", Schema({{"id", DataType::kInt64},
                       {"kind_id", DataType::kInt64},
                       {"production_year", DataType::kInt64}}));
  for (int64_t i = 0; i < n_title; ++i) {
    // Production years skew recent, like IMDB.
    int64_t year = 2019 - static_cast<int64_t>(
                              std::floor(std::pow(rng.Uniform(), 2.2) * 110));
    QCFE_CHECK_OK(title->AppendRow({Value(i), Value(rng.Zipf(7, 1.0)), Value(year)}));
  }
  QCFE_CHECK_OK(title->BuildIndex("id"));
  QCFE_CHECK_OK(db->catalog()->AddTable(std::move(title)));

  for (const Satellite& sat : kSatellites) {
    int64_t n = static_cast<int64_t>(
        std::max(200.0, sat.base_rows * scale_factor));
    auto table = std::make_unique<Table>(
        sat.table, Schema({{"id", DataType::kInt64},
                           {"movie_id", DataType::kInt64},
                           {sat.extra_col, DataType::kInt64}}));
    for (int64_t i = 0; i < n; ++i) {
      // Popular movies accumulate more facts: Zipf over title ids.
      int64_t movie = rng.Zipf(n_title, 0.6) - 1;
      QCFE_CHECK_OK(table->AppendRow(
          {Value(i), Value(movie), Value(rng.Zipf(sat.extra_max, 0.9))}));
    }
    QCFE_CHECK_OK(table->BuildIndex("movie_id"));
    QCFE_CHECK_OK(db->catalog()->AddTable(std::move(table)));
  }

  db->Analyze();
  return db;
}

std::vector<QueryTemplate> JobLightBenchmark::Templates() const {
  // 70 deterministic templates of the job-light shape:
  //   SELECT COUNT(*) FROM title t, sat1, ... WHERE joins AND preds.
  std::vector<QueryTemplate> out;
  Rng rng(20240601);  // fixed: the template set is part of the workload
  const size_t kNumTemplates = 70;
  for (size_t qi = 0; qi < kNumTemplates; ++qi) {
    int n_sats = static_cast<int>(rng.UniformInt(1, 4));
    // Choose distinct satellites.
    std::vector<int> sel;
    while (static_cast<int>(sel.size()) < n_sats) {
      int cand = static_cast<int>(rng.UniformInt(0, 4));
      bool dup = false;
      for (int s : sel) dup |= (s == cand);
      if (!dup) sel.push_back(cand);
    }

    std::vector<std::string> from = {"title"};
    std::vector<std::string> conds;
    for (int s : sel) {
      from.push_back(kSatellites[s].table);
      conds.push_back(std::string(kSatellites[s].table) +
                      ".movie_id = title.id");
    }
    // Predicates: always at least one on title; optionally on satellites.
    int title_pred = static_cast<int>(rng.UniformInt(0, 2));
    if (title_pred == 0) {
      conds.push_back("title.production_year > {title.production_year}");
    } else if (title_pred == 1) {
      conds.push_back("title.kind_id = {title.kind_id}");
    } else {
      conds.push_back(
          "title.production_year between {title.production_year} and "
          "{title.production_year+15}");
    }
    for (int s : sel) {
      if (rng.Bernoulli(0.55)) {
        conds.push_back(std::string(kSatellites[s].table) + "." +
                        kSatellites[s].extra_col + " = {" +
                        kSatellites[s].table + "." + kSatellites[s].extra_col +
                        "}");
      }
    }

    QueryTemplate t;
    t.name = "jl" + std::to_string(qi + 1);
    t.text = "select count(*) from " + Join(from, ", ") + " where " +
             Join(conds, " and ");
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace qcfe
