#ifndef QCFE_WORKLOAD_TPCH_H_
#define QCFE_WORKLOAD_TPCH_H_

/// \file tpch.h
/// TPC-H-like workload: the full eight-table schema with synthetic data and
/// 22 query templates approximating the operator footprint (joins, filters,
/// aggregation, sorting) of the official TPC-H queries within this engine's
/// single-block SPJA dialect. See DESIGN.md for the substitution note.

#include "workload/benchmark.h"

namespace qcfe {

/// TPC-H-like benchmark. scale_factor 1.0 ~ 60k lineitem rows.
class TpchBenchmark : public BenchmarkWorkload {
 public:
  std::string name() const override { return "tpch"; }
  std::unique_ptr<Database> BuildDatabase(double scale_factor,
                                          uint64_t seed) const override;
  std::vector<QueryTemplate> Templates() const override;
};

}  // namespace qcfe

#endif  // QCFE_WORKLOAD_TPCH_H_
