#ifndef QCFE_WORKLOAD_COLLECTOR_H_
#define QCFE_WORKLOAD_COLLECTOR_H_

/// \file collector.h
/// Labeled-query collection: runs template instantiations across database
/// environments and keeps, per query, the executed plan (with per-operator
/// actuals and latencies) plus the total ground-truth latency. This is the
/// training/test corpus for every estimator and the operator observation
/// source for feature snapshots.
///
/// Collection is embarrassingly parallel by construction: every query i
/// derives its own RNG streams with Rng::Split(i) (instantiation and latency
/// noise), so queries are independent tasks and every entry point below is
/// bit-identical at any thread count — a ThreadPool only changes wall-clock,
/// never labels.

#include <memory>
#include <vector>

#include "engine/database.h"
#include "engine/knobs.h"
#include "sql/template.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace qcfe {

/// One labeled query.
struct LabeledQuery {
  size_t template_index = 0;  ///< which template produced it
  int env_id = 0;             ///< environment it ran under
  std::unique_ptr<PlanNode> plan;
  double total_ms = 0.0;
};

/// A labeled corpus plus bookkeeping about how expensive collection was.
struct LabeledQuerySet {
  std::vector<LabeledQuery> queries;
  /// Sum of simulated query latencies: what label collection would have cost
  /// in wall-clock on the real system (paper Table V compares this).
  double collection_ms = 0.0;
};

/// Collects labeled queries from a database + template set + environments.
class QueryCollector {
 public:
  /// The database and environments must outlive the collector.
  QueryCollector(Database* db, const std::vector<Environment>* envs)
      : db_(db), envs_(envs) {}

  /// Generates `count` labeled queries: templates round-robin, environments
  /// round-robin, placeholders sampled from the data abstract. Queries are
  /// executed across `pool` when given (null = serial, same results).
  Result<LabeledQuerySet> Collect(const std::vector<QueryTemplate>& templates,
                                  size_t count, uint64_t seed,
                                  ThreadPool* pool = nullptr);

  /// Runs every spec once under one specific environment (snapshot
  /// collection path: FSO uses original-template instantiations, FST the
  /// simplified queries).
  Result<LabeledQuerySet> RunSpecsUnderEnv(const std::vector<QuerySpec>& specs,
                                           const Environment& env,
                                           uint64_t seed,
                                           ThreadPool* pool = nullptr);

  /// The snapshot-collection grid: every spec under every environment, one
  /// LabeledQuerySet per environment (aligned with `envs`). Environment e
  /// uses the derived seed `seed ^ (0x9E37 * (env.id + 1))`, making each
  /// slice bit-identical to RunSpecsUnderEnv with that seed; flattening the
  /// (environment, spec) grid into one task list keeps all workers busy even
  /// when environments are fewer than threads.
  Result<std::vector<LabeledQuerySet>> RunSpecsGrid(
      const std::vector<QuerySpec>& specs,
      const std::vector<Environment>& envs, uint64_t seed,
      ThreadPool* pool = nullptr);

 private:
  Database* db_;
  const std::vector<Environment>* envs_;
};

/// Deterministic 80/20-style split of query indices.
struct TrainTestSplit {
  std::vector<size_t> train;
  std::vector<size_t> test;
};
TrainTestSplit SplitIndices(size_t n, double train_fraction, uint64_t seed);

}  // namespace qcfe

#endif  // QCFE_WORKLOAD_COLLECTOR_H_
