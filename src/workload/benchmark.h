#ifndef QCFE_WORKLOAD_BENCHMARK_H_
#define QCFE_WORKLOAD_BENCHMARK_H_

/// \file benchmark.h
/// Interface of the three evaluation workloads (paper Section V-A): TPC-H,
/// job-light (IMDB) and Sysbench oltp_read_only. Each workload builds its
/// database (schema + synthetic data + indexes + ANALYZE) and supplies its
/// query templates.

#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "sql/template.h"

namespace qcfe {

/// One benchmark workload.
class BenchmarkWorkload {
 public:
  virtual ~BenchmarkWorkload() = default;

  /// "tpch", "joblight" or "sysbench".
  virtual std::string name() const = 0;

  /// Builds and analyzes the database. `scale_factor` scales table
  /// cardinalities (1.0 = this repo's reference size, see DESIGN.md for the
  /// substitution of the paper's full-size datasets).
  virtual std::unique_ptr<Database> BuildDatabase(double scale_factor,
                                                  uint64_t seed) const = 0;

  /// The workload's query templates (22 for TPC-H, 70 for job-light, 5 for
  /// Sysbench oltp_read_only).
  virtual std::vector<QueryTemplate> Templates() const = 0;
};

/// Factory by benchmark name; unknown names return an error.
Result<std::unique_ptr<BenchmarkWorkload>> MakeBenchmark(
    const std::string& name);

/// The three benchmark names in paper order.
const std::vector<std::string>& AllBenchmarkNames();

}  // namespace qcfe

#endif  // QCFE_WORKLOAD_BENCHMARK_H_
