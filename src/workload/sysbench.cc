#include "workload/sysbench.h"

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace qcfe {

std::unique_ptr<Database> SysbenchBenchmark::BuildDatabase(
    double scale_factor, uint64_t seed) const {
  auto db = std::make_unique<Database>("sysbench");
  Rng rng(seed);
  int64_t n = static_cast<int64_t>(std::max(1000.0, 100000.0 * scale_factor));

  auto sbtest = std::make_unique<Table>(
      "sbtest1", Schema({{"id", DataType::kInt64},
                         {"k", DataType::kInt64},
                         {"c", DataType::kString},
                         {"pad", DataType::kString}}));
  for (int64_t i = 1; i <= n; ++i) {
    QCFE_CHECK_OK(sbtest->AppendRow({Value(i), Value(rng.Zipf(n, 0.5)),
                             Value(rng.RandomString(16)),
                             Value(rng.RandomString(12))}));
  }
  QCFE_CHECK_OK(sbtest->BuildIndex("id"));
  QCFE_CHECK_OK(sbtest->BuildIndex("k"));
  QCFE_CHECK_OK(db->catalog()->AddTable(std::move(sbtest)));
  db->Analyze();
  return db;
}

std::vector<QueryTemplate> SysbenchBenchmark::Templates() const {
  // The five read statements of oltp_read_only.lua.
  std::vector<QueryTemplate> t;
  t.push_back({"point_select",
               "select sbtest1.c from sbtest1 where sbtest1.id = {sbtest1.id}"});
  t.push_back({"simple_range",
               "select sbtest1.c from sbtest1 where sbtest1.id between "
               "{sbtest1.id} and {sbtest1.id+99}"});
  t.push_back({"sum_range",
               "select sum(sbtest1.k) from sbtest1 where sbtest1.id between "
               "{sbtest1.id} and {sbtest1.id+99}"});
  t.push_back({"order_range",
               "select sbtest1.c from sbtest1 where sbtest1.id between "
               "{sbtest1.id} and {sbtest1.id+99} order by sbtest1.c"});
  t.push_back({"distinct_range",
               "select distinct sbtest1.c from sbtest1 where sbtest1.id "
               "between {sbtest1.id} and {sbtest1.id+99} order by sbtest1.c"});
  return t;
}

}  // namespace qcfe
