#ifndef QCFE_CORE_FEATURE_REDUCTION_H_
#define QCFE_CORE_FEATURE_REDUCTION_H_

/// \file feature_reduction.h
/// Feature reduction for query cost estimators (paper Section IV). Three
/// algorithms over labeled operator sets D = {(x_i, y_i)} and a trained
/// model M (accessed through CostModel::OperatorView):
///
///  * Greedy (paper Algorithm 2): iteratively drop the single feature whose
///    removal (mean-masking) minimises q-error, until no drop helps.
///    O(n^2) model evaluations; blind to feature co-relationships.
///  * Gradient (GD): importance_k = E|dM/dx_k| via backprop input gradients.
///    Suffers from discrete one-hot inputs and dead-ReLU zero gradients.
///  * Difference propagation (paper Algorithm 3 / Equation 1): importance_k
///    = E_{x_i in D, x_j in R} |ΔM / Δx_k| computed from finite activation
///    differences against a sampled reference set R — defined on discrete
///    dims and immune to gradient vanishing. Never-varying dims score
///    exactly zero.

#include <array>
#include <map>
#include <vector>

#include "featurize/featurizer.h"
#include "models/cost_model.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace qcfe {

class Rng;

/// Which reduction algorithm to run.
enum class ReductionAlgorithm {
  kGreedy,
  kGradient,
  kDiffProp,
};

const char* ReductionAlgorithmName(ReductionAlgorithm algo);

/// Tuning knobs of the reduction pass.
struct ReductionConfig {
  ReductionAlgorithm algorithm = ReductionAlgorithm::kDiffProp;
  /// Size of the reference sample R (paper Table VI sweeps this).
  size_t num_references = 64;
  /// Difference propagation keeps dims with score > eps_abs (the paper's
  /// "score > 0" with a float-noise guard): never-varying dims score exactly
  /// zero and are dropped.
  double eps_abs = 1e-9;
  /// Gradient scores are never exactly zero (dead dims still carry random
  /// initial weights), so GD keeps dims with
  /// score > max(eps_abs, gd_rel_threshold * median_score) — and therefore
  /// draws the keep/drop line in the wrong place, which is the paper's
  /// criticism of gradient-based reduction.
  double gd_rel_threshold = 2.0;
  /// Row cap for the expensive greedy evaluations.
  size_t greedy_max_rows = 400;
  /// Maximum operator rows gathered per type (subsampled beyond this).
  size_t max_rows_per_op = 2000;
  uint64_t seed = 17;
};

/// Outcome for one operator type.
struct OpReductionResult {
  std::vector<size_t> kept;     ///< surviving feature indices
  std::vector<double> scores;   ///< per-dim importance (empty for greedy)
  size_t original_dim = 0;
  size_t dropped = 0;
};

/// Outcome of a whole reduction pass.
struct ReductionResult {
  std::map<OpType, OpReductionResult> per_op;
  double runtime_seconds = 0.0;

  /// Fraction of feature dims dropped across all operator types that had
  /// observations.
  double ReductionRatio() const;

  /// Kept-column map consumable by MaskedFeaturizer. When `uniform` is true
  /// (MSCN's single operator module), the per-type kept sets are unioned
  /// into one shared mask.
  std::map<OpType, std::vector<size_t>> KeptMap(bool uniform) const;
};

/// Runs feature reduction against a trained model.
///
/// `samples` supplies the labeled operator set D (every plan node becomes an
/// observation, encoded with the model's featurizer); the model supplies
/// per-operator views. Operator types with no observations are left intact.
///
/// With a `pool`, the expensive inner loops — operator-row gathering, the
/// greedy candidate sweep and the difference-propagation reference sweep —
/// run across workers. Every parallel loop reduces its partial results in a
/// fixed index order and each operator type draws from its own Rng::Split
/// stream, so scores, kept sets and runtimes-excluded outputs are
/// bit-identical at any thread count.
Result<ReductionResult> ReduceFeatures(const CostModel& model,
                                       const std::vector<PlanSample>& samples,
                                       const ReductionConfig& config,
                                       ThreadPool* pool = nullptr);

/// Dynamic-workload recall (the paper's Section IV discussion and future
/// work): a feature that was useless under the old workload may have
/// "inherent value" that re-emerges when the workload drifts — e.g. index
/// one-hots are dead under a write-only load but become informative once
/// reads appear. RecallFeatures re-admits previously dropped dimensions that
/// have started varying in a fresh workload sample.
struct RecallResult {
  /// Dims re-admitted per operator type.
  std::map<OpType, std::vector<size_t>> recalled;
  /// Updated kept map (old kept ∪ recalled), consumable by MaskedFeaturizer.
  std::map<OpType, std::vector<size_t>> new_kept;
  size_t total_recalled = 0;
};

/// `full_featurizer` must be the unmasked featurizer the original reduction
/// ran on; `previous` is that reduction's outcome; `new_samples` is a
/// labeled sample of the drifted workload.
Result<RecallResult> RecallFeatures(const OperatorFeaturizer& full_featurizer,
                                    const ReductionResult& previous,
                                    const std::vector<PlanSample>& new_samples,
                                    double variation_eps = 1e-12);

}  // namespace qcfe

#endif  // QCFE_CORE_FEATURE_REDUCTION_H_
