#include "core/feature_snapshot.h"

#include <cmath>
#include <string>
#include <utility>

#include "nn/linalg.h"
#include "util/serialize.h"

namespace qcfe {

size_t FeatureSnapshot::DesignRow(OpType op, double n, double n2,
                                  std::array<double, kSnapshotWidth>* row) {
  row->fill(0.0);
  switch (op) {
    case OpType::kSort:
      (*row)[0] = n * std::log2(std::max(n, 2.0));
      (*row)[1] = 1.0;
      return 2;
    case OpType::kNestedLoop:
      (*row)[0] = n * n2;
      (*row)[1] = n;
      (*row)[2] = n2;
      (*row)[3] = 1.0;
      return 4;
    default:
      // Seq/Index Scan, Materialize, Aggregation, Merge/Hash Join.
      (*row)[0] = n;
      (*row)[1] = 1.0;
      return 2;
  }
}

namespace {

/// NNLS fit of one operator type's observations against its Table I formula.
Result<OperatorSnapshot> FitOne(
    OpType op, const std::vector<const OperatorObservation*>& obs) {
  std::array<double, kSnapshotWidth> probe;
  size_t width = FeatureSnapshot::DesignRow(op, 1.0, 1.0, &probe);
  Matrix a(obs.size(), width);
  std::vector<double> y(obs.size());
  for (size_t i = 0; i < obs.size(); ++i) {
    std::array<double, kSnapshotWidth> row;
    FeatureSnapshot::DesignRow(op, obs[i]->n, obs[i]->n2, &row);
    for (size_t c = 0; c < width; ++c) a.At(i, c) = row[c];
    y[i] = obs[i]->ms;
  }
  Result<std::vector<double>> coeffs = NonNegativeLeastSquares(a, y);
  if (!coeffs.ok()) return coeffs.status();
  OperatorSnapshot os;
  for (size_t c = 0; c < width; ++c) os.coeffs[c] = (*coeffs)[c];
  os.num_observations = obs.size();
  return os;
}

/// Minimum observations before a dedicated per-table fit is trustworthy.
constexpr size_t kMinFineObservations = 8;

}  // namespace

Result<FeatureSnapshot> FeatureSnapshot::Fit(
    const std::vector<OperatorObservation>& observations,
    SnapshotGranularity granularity) {
  FeatureSnapshot snapshot;
  snapshot.granularity_ = granularity;
  // Partition observations by operator type (and optionally table).
  std::array<std::vector<const OperatorObservation*>, kNumOpTypes> by_op;
  std::map<std::string, std::vector<const OperatorObservation*>> by_op_table;
  for (const auto& obs : observations) {
    by_op[static_cast<size_t>(obs.op)].push_back(&obs);
    if (granularity == SnapshotGranularity::kOperatorTable &&
        !obs.table.empty()) {
      by_op_table[std::to_string(static_cast<size_t>(obs.op)) + "|" +
                  obs.table]
          .push_back(&obs);
    }
  }
  for (OpType op : AllOpTypes()) {
    size_t oi = static_cast<size_t>(op);
    if (by_op[oi].empty()) continue;
    Result<OperatorSnapshot> fitted = FitOne(op, by_op[oi]);
    if (!fitted.ok()) return fitted.status();
    snapshot.per_op_[oi] = std::move(fitted.value());
  }
  for (const auto& [key, obs] : by_op_table) {
    if (obs.size() < kMinFineObservations) continue;
    Result<OperatorSnapshot> fitted = FitOne(obs[0]->op, obs);
    if (!fitted.ok()) return fitted.status();
    snapshot.fine_[key] = std::move(fitted.value());
  }
  return snapshot;
}

const OperatorSnapshot& FeatureSnapshot::GetFine(
    OpType op, const std::string& table) const {
  auto it =
      fine_.find(std::to_string(static_cast<size_t>(op)) + "|" + table);
  if (it != fine_.end()) return it->second;
  return per_op_[static_cast<size_t>(op)];
}

bool FeatureSnapshot::HasFine(OpType op, const std::string& table) const {
  return fine_.count(std::to_string(static_cast<size_t>(op)) + "|" + table) >
         0;
}

std::vector<OperatorObservation> FeatureSnapshot::ObservationsFrom(
    const LabeledQuerySet& set) {
  std::vector<OperatorObservation> out;
  for (const auto& q : set.queries) {
    q.plan->VisitConst([&](const PlanNode* node) {
      OperatorObservation obs;
      obs.op = node->op;
      obs.n = node->input_card;
      obs.n2 = node->input_card2;
      obs.ms = node->actual_ms;
      obs.table = node->table;
      out.push_back(obs);
    });
  }
  return out;
}

double FeatureSnapshot::PredictMs(OpType op, double n, double n2) const {
  std::array<double, kSnapshotWidth> row;
  size_t width = DesignRow(op, n, n2, &row);
  const OperatorSnapshot& os = per_op_[static_cast<size_t>(op)];
  double out = 0.0;
  for (size_t c = 0; c < width; ++c) out += os.coeffs[c] * row[c];
  return out;
}

namespace {

void WriteOperatorSnapshot(const OperatorSnapshot& os, ByteWriter* w) {
  for (double c : os.coeffs) w->PutF64(c);
  w->PutU64(os.num_observations);
}

Status ReadOperatorSnapshot(ByteReader* r, OperatorSnapshot* os) {
  for (double& c : os->coeffs) QCFE_RETURN_IF_ERROR(r->ReadF64(&c));
  uint64_t n = 0;
  QCFE_RETURN_IF_ERROR(r->ReadU64(&n));
  os->num_observations = static_cast<size_t>(n);
  return Status::OK();
}

}  // namespace

void FeatureSnapshot::SaveBinary(ByteWriter* w) const {
  w->PutU8(static_cast<uint8_t>(granularity_));
  for (const OperatorSnapshot& os : per_op_) WriteOperatorSnapshot(os, w);
  w->PutU64(fine_.size());
  for (const auto& [key, os] : fine_) {
    w->PutString(key);
    WriteOperatorSnapshot(os, w);
  }
}

Status FeatureSnapshot::LoadBinary(ByteReader* r, FeatureSnapshot* out) {
  uint8_t granularity = 0;
  QCFE_RETURN_IF_ERROR(r->ReadU8(&granularity));
  if (granularity > static_cast<uint8_t>(SnapshotGranularity::kOperatorTable)) {
    return Status::DataLoss("invalid snapshot granularity byte " +
                            std::to_string(granularity));
  }
  out->granularity_ = static_cast<SnapshotGranularity>(granularity);
  for (OperatorSnapshot& os : out->per_op_) {
    QCFE_RETURN_IF_ERROR(ReadOperatorSnapshot(r, &os));
  }
  uint64_t fine_count = 0;
  // A fine entry is at least key length (8) + 4 coeffs + count.
  QCFE_RETURN_IF_ERROR(r->ReadCount(&fine_count, 8 + kSnapshotWidth * 8 + 8));
  out->fine_.clear();
  for (uint64_t i = 0; i < fine_count; ++i) {
    std::string key;
    OperatorSnapshot os;
    QCFE_RETURN_IF_ERROR(r->ReadString(&key));
    QCFE_RETURN_IF_ERROR(ReadOperatorSnapshot(r, &os));
    if (!out->fine_.emplace(std::move(key), os).second) {
      return Status::DataLoss("duplicate fine snapshot key");
    }
  }
  return Status::OK();
}

std::vector<int> SnapshotStore::EnvIds() const {
  std::vector<int> ids;
  ids.reserve(snapshots_.size());
  for (const auto& [env_id, snapshot] : snapshots_) ids.push_back(env_id);
  return ids;
}

void SnapshotStore::SaveBinary(ByteWriter* w) const {
  w->PutU64(snapshots_.size());
  for (const auto& [env_id, snapshot] : snapshots_) {
    w->PutI64(env_id);
    snapshot.SaveBinary(w);
  }
}

Status SnapshotStore::LoadBinary(ByteReader* r, SnapshotStore* out) {
  uint64_t count = 0;
  // A store entry is at least env id (8) + granularity (1) + per-op block.
  QCFE_RETURN_IF_ERROR(
      r->ReadCount(&count, 8 + 1 + kNumOpTypes * (kSnapshotWidth * 8 + 8)));
  std::map<int, FeatureSnapshot> loaded;
  for (uint64_t i = 0; i < count; ++i) {
    int64_t env_id = 0;
    QCFE_RETURN_IF_ERROR(r->ReadI64(&env_id));
    FeatureSnapshot snapshot;
    QCFE_RETURN_IF_ERROR(
        FeatureSnapshot::LoadBinary(r, &snapshot)
            .WithContext("snapshot for env " + std::to_string(env_id)));
    // Uniformity validated here with a typed error, not in Put: corrupted
    // bytes must never reach the fitting contract's QCFE_CHECK abort.
    if (!loaded.empty() &&
        snapshot.granularity() != loaded.begin()->second.granularity()) {
      return Status::DataLoss("snapshot store mixes granularities");
    }
    if (!loaded.emplace(static_cast<int>(env_id), std::move(snapshot))
             .second) {
      return Status::DataLoss("duplicate snapshot env id " +
                              std::to_string(env_id));
    }
  }
  out->snapshots_ = std::move(loaded);
  return Status::OK();
}

}  // namespace qcfe
