#include "core/qcfe.h"

#include "sql/data_abstract.h"
#include "sql/simplified_templates.h"
#include "util/rng.h"

namespace qcfe {

const OperatorFeaturizer* QcfeModel::active_featurizer() const {
  if (masked_featurizer != nullptr) return masked_featurizer.get();
  if (snapshot_featurizer != nullptr) return snapshot_featurizer.get();
  return base_featurizer.get();
}

std::string QcfeModel::name() const {
  bool qcfe = config.use_snapshot || config.use_reduction;
  if (config.kind == EstimatorKind::kQppNet) {
    return qcfe ? "QCFE(qpp)" : "QPPNet";
  }
  return qcfe ? "QCFE(mscn)" : "MSCN";
}

std::unique_ptr<CostModel> QcfeBuilder::MakeModel(
    EstimatorKind kind, const OperatorFeaturizer* featurizer,
    uint64_t seed) const {
  if (kind == EstimatorKind::kQppNet) {
    return std::make_unique<QppNet>(featurizer, QppNetConfig{}, seed);
  }
  return std::make_unique<Mscn>(db_->catalog(), featurizer, MscnConfig{},
                                seed);
}

Status QcfeBuilder::ComputeSnapshots(const std::vector<Environment>& envs,
                                     bool from_templates, int scale,
                                     uint64_t seed, SnapshotStore* store,
                                     double* collection_ms,
                                     size_t* num_queries,
                                     size_t* num_templates,
                                     SnapshotGranularity granularity) {
  DataAbstract abstract(db_->catalog());
  Rng rng(seed);
  std::vector<QuerySpec> specs;
  if (from_templates) {
    // FST: Algorithm 1 — parse originals, emit simplified templates, fill.
    SimplifiedTemplateGenerator gen(db_->catalog());
    Result<std::vector<SimplifiedTemplate>> simplified =
        gen.Generate(*templates_);
    if (!simplified.ok()) return simplified.status();
    if (num_templates != nullptr) *num_templates = simplified->size();
    Result<std::vector<QuerySpec>> filled =
        gen.Fill(*simplified, abstract, scale, &rng);
    if (!filled.ok()) return filled.status();
    specs = std::move(filled.value());
  } else {
    // FSO: instantiate the original workload templates `scale` times.
    if (num_templates != nullptr) *num_templates = templates_->size();
    for (int round = 0; round < scale; ++round) {
      for (const auto& tmpl : *templates_) {
        Result<QuerySpec> spec = tmpl.Instantiate(abstract, &rng);
        if (!spec.ok()) return spec.status();
        specs.push_back(std::move(spec.value()));
      }
    }
  }
  if (num_queries != nullptr) *num_queries = specs.size() * envs.size();

  QueryCollector collector(db_, envs_);
  for (const auto& env : envs) {
    Result<LabeledQuerySet> set = collector.RunSpecsUnderEnv(
        specs, env, seed ^ (0x9E37ULL * (static_cast<uint64_t>(env.id) + 1)));
    if (!set.ok()) return set.status();
    if (collection_ms != nullptr) *collection_ms += set->collection_ms;
    Result<FeatureSnapshot> snapshot = FeatureSnapshot::Fit(
        FeatureSnapshot::ObservationsFrom(*set), granularity);
    if (!snapshot.ok()) return snapshot.status();
    store->Put(env.id, std::move(snapshot.value()));
  }
  return Status::OK();
}

Result<std::unique_ptr<QcfeModel>> QcfeBuilder::Build(
    const QcfeConfig& config, const std::vector<PlanSample>& train) {
  auto built = std::make_unique<QcfeModel>();
  built->config = config;
  built->base_featurizer = std::make_unique<BaseFeaturizer>(db_->catalog());
  const OperatorFeaturizer* active = built->base_featurizer.get();

  if (config.use_snapshot) {
    built->snapshot_store = std::make_unique<SnapshotStore>();
    QCFE_RETURN_IF_ERROR(ComputeSnapshots(
        *envs_, config.snapshot_from_templates, config.snapshot_scale,
        config.seed, built->snapshot_store.get(),
        &built->snapshot_collection_ms, &built->snapshot_num_queries,
        &built->snapshot_num_templates, config.snapshot_granularity));
    built->snapshot_featurizer = std::make_unique<SnapshotFeaturizer>(
        active, built->snapshot_store.get(),
        config.snapshot_granularity == SnapshotGranularity::kOperatorTable);
    active = built->snapshot_featurizer.get();
  }

  if (config.use_reduction) {
    // Provisional model: enough training for meaningful importance scores.
    std::unique_ptr<CostModel> provisional =
        MakeModel(config.kind, active, config.seed + 1);
    TrainConfig pre_cfg = config.train;
    pre_cfg.epochs = config.pre_reduction_epochs;
    pre_cfg.eval_every = 0;
    QCFE_RETURN_IF_ERROR(
        provisional->Train(train, pre_cfg, &built->pre_train_stats));

    Result<ReductionResult> reduction =
        ReduceFeatures(*provisional, train, config.reduction);
    if (!reduction.ok()) return reduction.status();
    built->reduction = std::move(reduction.value());

    bool uniform = config.kind == EstimatorKind::kMscn;
    built->masked_featurizer = std::make_unique<MaskedFeaturizer>(
        active, built->reduction.KeptMap(uniform));
    active = built->masked_featurizer.get();
  }

  built->model = MakeModel(config.kind, active, config.seed + 2);
  QCFE_RETURN_IF_ERROR(
      built->model->Train(train, config.train, &built->train_stats));
  return built;
}

}  // namespace qcfe
