#include "core/qcfe.h"

#include "sql/data_abstract.h"
#include "sql/simplified_templates.h"
#include "util/rng.h"
#include "workload/collector.h"

namespace qcfe {

Status SnapshotBuilder::ComputeSnapshots(const std::vector<Environment>& envs,
                                         bool from_templates, int scale,
                                         uint64_t seed, SnapshotStore* store,
                                         double* collection_ms,
                                         size_t* num_queries,
                                         size_t* num_templates,
                                         SnapshotGranularity granularity,
                                         ThreadPool* pool) {
  DataAbstract abstract(db_->catalog());
  Rng rng(seed);
  std::vector<QuerySpec> specs;
  if (from_templates) {
    // FST: Algorithm 1 — parse originals, emit simplified templates, fill.
    SimplifiedTemplateGenerator gen(db_->catalog());
    Result<std::vector<SimplifiedTemplate>> simplified =
        gen.Generate(*templates_);
    if (!simplified.ok()) return simplified.status();
    if (num_templates != nullptr) *num_templates = simplified->size();
    Result<std::vector<QuerySpec>> filled =
        gen.Fill(*simplified, abstract, scale, &rng);
    if (!filled.ok()) return filled.status();
    specs = std::move(filled.value());
  } else {
    // FSO: instantiate the original workload templates `scale` times.
    if (num_templates != nullptr) *num_templates = templates_->size();
    for (int round = 0; round < scale; ++round) {
      for (const auto& tmpl : *templates_) {
        Result<QuerySpec> spec = tmpl.Instantiate(abstract, &rng);
        if (!spec.ok()) return spec.status();
        specs.push_back(std::move(spec.value()));
      }
    }
  }
  if (num_queries != nullptr) *num_queries = specs.size() * envs.size();

  // Execute the whole (environment, query) grid, then fit one snapshot per
  // environment — both across the pool, reduced in environment order.
  QueryCollector collector(db_, &envs);
  Result<std::vector<LabeledQuerySet>> sets =
      collector.RunSpecsGrid(specs, envs, seed, pool);
  if (!sets.ok()) return sets.status();

  struct FittedSnapshot {
    Status status;
    FeatureSnapshot snapshot;
  };
  std::vector<FittedSnapshot> fitted =
      ParallelMap<FittedSnapshot>(pool, envs.size(), [&](size_t e) {
        FittedSnapshot out;
        Result<FeatureSnapshot> snapshot = FeatureSnapshot::Fit(
            FeatureSnapshot::ObservationsFrom((*sets)[e]), granularity);
        if (snapshot.ok()) {
          out.snapshot = std::move(snapshot.value());
        } else {
          out.status = snapshot.status();
        }
        return out;
      });
  // Validate every fit before committing any: a failure must leave the
  // store exactly as it was (ExtendSnapshots relies on this so a failed
  // re-collection never replaces a snapshot that is serving predictions).
  for (size_t e = 0; e < envs.size(); ++e) {
    if (!fitted[e].status.ok()) return fitted[e].status;
  }
  for (size_t e = 0; e < envs.size(); ++e) {
    if (collection_ms != nullptr) *collection_ms += (*sets)[e].collection_ms;
    store->Put(envs[e].id, std::move(fitted[e].snapshot));
  }
  return Status::OK();
}

}  // namespace qcfe
