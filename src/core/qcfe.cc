#include "core/qcfe.h"

#include "sql/data_abstract.h"
#include "sql/simplified_templates.h"
#include "util/rng.h"
#include "workload/collector.h"

namespace qcfe {

Status SnapshotBuilder::ComputeSnapshots(const std::vector<Environment>& envs,
                                         bool from_templates, int scale,
                                         uint64_t seed, SnapshotStore* store,
                                         double* collection_ms,
                                         size_t* num_queries,
                                         size_t* num_templates,
                                         SnapshotGranularity granularity) {
  DataAbstract abstract(db_->catalog());
  Rng rng(seed);
  std::vector<QuerySpec> specs;
  if (from_templates) {
    // FST: Algorithm 1 — parse originals, emit simplified templates, fill.
    SimplifiedTemplateGenerator gen(db_->catalog());
    Result<std::vector<SimplifiedTemplate>> simplified =
        gen.Generate(*templates_);
    if (!simplified.ok()) return simplified.status();
    if (num_templates != nullptr) *num_templates = simplified->size();
    Result<std::vector<QuerySpec>> filled =
        gen.Fill(*simplified, abstract, scale, &rng);
    if (!filled.ok()) return filled.status();
    specs = std::move(filled.value());
  } else {
    // FSO: instantiate the original workload templates `scale` times.
    if (num_templates != nullptr) *num_templates = templates_->size();
    for (int round = 0; round < scale; ++round) {
      for (const auto& tmpl : *templates_) {
        Result<QuerySpec> spec = tmpl.Instantiate(abstract, &rng);
        if (!spec.ok()) return spec.status();
        specs.push_back(std::move(spec.value()));
      }
    }
  }
  if (num_queries != nullptr) *num_queries = specs.size() * envs.size();

  QueryCollector collector(db_, &envs);
  for (const auto& env : envs) {
    Result<LabeledQuerySet> set = collector.RunSpecsUnderEnv(
        specs, env, seed ^ (0x9E37ULL * (static_cast<uint64_t>(env.id) + 1)));
    if (!set.ok()) return set.status();
    if (collection_ms != nullptr) *collection_ms += set->collection_ms;
    Result<FeatureSnapshot> snapshot = FeatureSnapshot::Fit(
        FeatureSnapshot::ObservationsFrom(*set), granularity);
    if (!snapshot.ok()) return snapshot.status();
    store->Put(env.id, std::move(snapshot.value()));
  }
  return Status::OK();
}

}  // namespace qcfe
