#include "core/feature_reduction.h"

#include <cmath>
#include <functional>

#include "nn/mlp.h"
#include "util/env_config.h"
#include "util/rng.h"
#include "util/stats.h"

namespace qcfe {

const char* ReductionAlgorithmName(ReductionAlgorithm algo) {
  switch (algo) {
    case ReductionAlgorithm::kGreedy:
      return "Greedy";
    case ReductionAlgorithm::kGradient:
      return "GD";
    case ReductionAlgorithm::kDiffProp:
      return "FR";
  }
  return "?";
}

double ReductionResult::ReductionRatio() const {
  size_t total = 0, dropped = 0;
  for (const auto& [op, r] : per_op) {
    if (r.original_dim == 0) continue;
    total += r.original_dim;
    dropped += r.dropped;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(dropped) / static_cast<double>(total);
}

std::map<OpType, std::vector<size_t>> ReductionResult::KeptMap(
    bool uniform) const {
  std::map<OpType, std::vector<size_t>> out;
  if (!uniform) {
    for (const auto& [op, r] : per_op) out[op] = r.kept;
    return out;
  }
  // Union of kept dims across types (single shared operator module).
  std::vector<bool> keep_any;
  for (const auto& [op, r] : per_op) {
    if (keep_any.size() < r.original_dim) keep_any.resize(r.original_dim);
    for (size_t k : r.kept) keep_any[k] = true;
  }
  std::vector<size_t> kept;
  for (size_t i = 0; i < keep_any.size(); ++i) {
    if (keep_any[i]) kept.push_back(i);
  }
  for (OpType op : AllOpTypes()) out[op] = kept;
  return out;
}

namespace {

/// Labeled operator set of one operator type.
struct OpDataset {
  Matrix x;                 // rows x dim, raw featurizer output
  std::vector<double> y_ms;  // subtree latencies (ms)
};

/// Gathers D per operator type from the plan samples. Encoding runs across
/// the pool (one task per plan, concatenated in sample order) and each
/// operator type subsamples from its own Split stream, so the gathered
/// datasets are identical at any thread count.
std::array<OpDataset, kNumOpTypes> GatherOperatorData(
    const OperatorFeaturizer& featurizer,
    const std::vector<PlanSample>& samples, size_t max_rows_per_op,
    const Rng& rng, ThreadPool* pool) {
  struct SampleRows {
    std::array<std::vector<std::vector<double>>, kNumOpTypes> rows;
    std::array<std::vector<double>, kNumOpTypes> labels;
  };
  std::vector<SampleRows> per_sample =
      ParallelMap<SampleRows>(pool, samples.size(), [&](size_t si) {
        const PlanSample& s = samples[si];
        SampleRows out;
        std::function<void(const PlanNode&, size_t)> walk =
            [&](const PlanNode& n, size_t depth) {
              size_t oi = static_cast<size_t>(n.op);
              out.rows[oi].push_back(featurizer.Encode(n, depth, s.env_id));
              out.labels[oi].push_back(SubtreeLatencyMs(n));
              for (const auto& c : n.children) walk(*c, depth + 1);
            };
        walk(*s.plan, 0);
        return out;
      });
  std::array<std::vector<std::vector<double>>, kNumOpTypes> rows;
  std::array<std::vector<double>, kNumOpTypes> labels;
  for (auto& sample : per_sample) {
    for (size_t oi = 0; oi < kNumOpTypes; ++oi) {
      for (auto& r : sample.rows[oi]) rows[oi].push_back(std::move(r));
      for (double l : sample.labels[oi]) labels[oi].push_back(l);
    }
  }
  std::array<OpDataset, kNumOpTypes> out;
  for (size_t oi = 0; oi < kNumOpTypes; ++oi) {
    size_t n = rows[oi].size();
    if (n == 0) continue;
    std::vector<size_t> pick;
    if (n > max_rows_per_op) {
      Rng op_rng = rng.Split(oi);
      pick = op_rng.SampleIndices(n, max_rows_per_op);
    } else {
      pick.resize(n);
      for (size_t i = 0; i < n; ++i) pick[i] = i;
    }
    out[oi].x = Matrix(pick.size(), rows[oi][0].size());
    out[oi].y_ms.resize(pick.size());
    for (size_t i = 0; i < pick.size(); ++i) {
      out[oi].x.SetRow(i, rows[oi][pick[i]]);
      out[oi].y_ms[i] = labels[oi][pick[i]];
    }
  }
  return out;
}

/// Difference-propagation importance (Equation 1): per dim k the expectation
/// over (x_i in D, x_j in R) of |ΔM / Δx_k|, with zero contribution when the
/// dim does not differ. Division by |D||R| (not by the count of non-zero
/// pairs) means never-varying dims score exactly 0.
std::vector<double> DiffPropScores(const Mlp& view, const OpDataset& data,
                                   size_t num_references, Rng* rng,
                                   ThreadPool* pool) {
  size_t dim = data.x.cols();
  size_t n = data.x.rows();
  std::vector<double> scores(dim, 0.0);
  size_t n_refs = std::min(num_references, n);
  std::vector<size_t> ref_idx = rng->SampleIndices(n, n_refs);

  // Scratch-based forward: the view's GEMMs run through the blocked
  // kernels without per-layer allocations.
  Mlp::Scratch y_scratch;
  const Matrix& y_all = view.Predict(data.x, &y_scratch);  // n x 1
  double total_pairs = static_cast<double>(n) * static_cast<double>(n_refs);
  // One partial score vector per reference, summed in reference order: a
  // fixed-shape reduction whose result is independent of how references are
  // assigned to workers. Never-varying dims stay exactly zero (all partials
  // zero), preserving the paper's "score > 0" keep rule.
  std::vector<std::vector<double>> partial =
      ParallelMap<std::vector<double>>(pool, n_refs, [&](size_t jj) {
        size_t j = ref_idx[jj];
        std::vector<double> p(dim, 0.0);
        const double* xj = data.x.RowPtr(j);
        double yj = y_all.At(j, 0);
        for (size_t i = 0; i < n; ++i) {
          const double* xi = data.x.RowPtr(i);
          double dy = y_all.At(i, 0) - yj;
          for (size_t k = 0; k < dim; ++k) {
            double dx = xi[k] - xj[k];
            if (std::fabs(dx) < 1e-12) continue;
            p[k] += std::fabs(dy / dx);
          }
        }
        return p;
      });
  for (const auto& p : partial) {
    for (size_t k = 0; k < dim; ++k) scores[k] += p[k];
  }
  for (double& s : scores) s /= total_pairs;
  return scores;
}

/// Gradient importance: E |dM/dx_k| via the view's tape-based input
/// gradients. Rows fan out across the pool in fixed-width chunks (the
/// partition depends only on the row count, never on the worker count) and
/// the per-chunk partial sums combine in chunk order, so scores are
/// bit-identical at any thread count. InputGradient runs on a private tape
/// with a null gradient sink, so the view's parameter grads stay untouched.
std::vector<double> GradientScores(const Mlp& view, const OpDataset& data,
                                   ThreadPool* pool) {
  constexpr size_t kRowChunk = 64;
  size_t n = data.x.rows();
  size_t dim = data.x.cols();
  size_t num_chunks = (n + kRowChunk - 1) / kRowChunk;
  std::vector<std::vector<double>> partial =
      ParallelMap<std::vector<double>>(pool, num_chunks, [&](size_t c) {
        size_t cs = c * kRowChunk;
        size_t ce = std::min(cs + kRowChunk, n);
        Matrix rows(ce - cs, dim);
        for (size_t r = cs; r < ce; ++r) {
          for (size_t k = 0; k < dim; ++k) rows.At(r - cs, k) = data.x.At(r, k);
        }
        // Tape-backed probe: the forward/backward sweep reuses one scratch
        // arena instead of allocating per layer, and the null sink keeps
        // the view's parameter grads byte-identical.
        Mlp::Tape tape;
        Matrix grads = view.InputGradient(rows, &tape);
        std::vector<double> p(dim, 0.0);
        for (size_t r = 0; r < grads.rows(); ++r) {
          for (size_t k = 0; k < dim; ++k) p[k] += std::fabs(grads.At(r, k));
        }
        return p;
      });
  std::vector<double> scores(dim, 0.0);
  for (const auto& p : partial) {
    for (size_t k = 0; k < dim; ++k) scores[k] += p[k];
  }
  for (double& s : scores) s /= static_cast<double>(n);
  return scores;
}

/// Mean q-error of the view on (x, y_ms) with columns in `masked` — plus
/// the optional `extra` candidate column — replaced by their column means.
/// `masked` is read-only, so concurrent candidate evaluations can share it.
double MaskedQError(Mlp* view, const LogTargetScaler& scaler,
                    const OpDataset& data, const std::vector<double>& col_mean,
                    const std::vector<bool>& masked, ptrdiff_t extra = -1) {
  Matrix x = data.x;
  for (size_t c = 0; c < x.cols(); ++c) {
    if (!masked[c] && static_cast<ptrdiff_t>(c) != extra) continue;
    for (size_t r = 0; r < x.rows(); ++r) x.At(r, c) = col_mean[c];
  }
  Mlp::Scratch scratch;
  const Matrix& y = view->Predict(x, &scratch);
  std::vector<double> qe(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    double pred_ms = scaler.InverseTransformOne(y.At(r, 0));
    qe[r] = QError(data.y_ms[r], pred_ms);
  }
  return Mean(qe);
}

/// Paper Algorithm 2: greedy mean-mask dropping. Each round's candidate
/// evaluations are independent (masked is shared read-only; the candidate
/// column is passed separately), so they fan out across the pool; the
/// argmin scans candidate order, reproducing the serial first-minimum
/// tie-break exactly.
std::vector<size_t> GreedyKept(Mlp* view, const LogTargetScaler& scaler,
                               const OpDataset& full, size_t max_rows,
                               Rng* rng, ThreadPool* pool) {
  OpDataset data;
  if (full.x.rows() > max_rows) {
    std::vector<size_t> pick = rng->SampleIndices(full.x.rows(), max_rows);
    data.x = full.x.SelectRows(pick);
    data.y_ms.reserve(pick.size());
    for (size_t i : pick) data.y_ms.push_back(full.y_ms[i]);
  } else {
    data.x = full.x;
    data.y_ms = full.y_ms;
  }
  size_t dim = data.x.cols();
  std::vector<double> col_mean(dim, 0.0);
  for (size_t c = 0; c < dim; ++c) {
    for (size_t r = 0; r < data.x.rows(); ++r) col_mean[c] += data.x.At(r, c);
    col_mean[c] /= static_cast<double>(data.x.rows());
  }

  std::vector<bool> masked(dim, false);
  double current = MaskedQError(view, scaler, data, col_mean, masked);
  while (true) {
    std::vector<double> qs = ParallelMap<double>(pool, dim, [&](size_t f) {
      if (masked[f]) return HUGE_VAL;
      return MaskedQError(view, scaler, data, col_mean, masked,
                          static_cast<ptrdiff_t>(f));
    });
    ptrdiff_t best = -1;
    double best_q = current;
    for (size_t f = 0; f < dim; ++f) {
      if (masked[f]) continue;
      if (qs[f] < best_q) {
        best_q = qs[f];
        best = static_cast<ptrdiff_t>(f);
      }
    }
    if (best < 0) break;
    masked[static_cast<size_t>(best)] = true;
    current = best_q;
  }
  std::vector<size_t> kept;
  for (size_t f = 0; f < dim; ++f) {
    if (!masked[f]) kept.push_back(f);
  }
  return kept;
}

}  // namespace

Result<ReductionResult> ReduceFeatures(const CostModel& model,
                                       const std::vector<PlanSample>& samples,
                                       const ReductionConfig& config,
                                       ThreadPool* pool) {
  const OperatorFeaturizer* featurizer = model.featurizer();
  const LogTargetScaler* scaler = model.label_scaler();
  if (featurizer == nullptr || scaler == nullptr) {
    return Status::FailedPrecondition("model exposes no featurizer/scaler");
  }
  if (samples.empty()) {
    return Status::InvalidArgument("no samples for reduction");
  }
  WallTimer timer;
  Rng rng(config.seed);
  auto data = GatherOperatorData(*featurizer, samples,
                                 config.max_rows_per_op, rng, pool);

  // Context for operator views: a modest subsample of plans.
  std::vector<PlanSample> context(
      samples.begin(),
      samples.begin() + std::min<size_t>(samples.size(), 64));

  ReductionResult result;
  for (OpType op : AllOpTypes()) {
    size_t oi = static_cast<size_t>(op);
    OpReductionResult r;
    r.original_dim = featurizer->dim(op);
    if (data[oi].x.rows() == 0) {
      // Never observed: keep everything (no evidence to drop).
      r.kept.resize(r.original_dim);
      for (size_t i = 0; i < r.original_dim; ++i) r.kept[i] = i;
      result.per_op[op] = std::move(r);
      continue;
    }
    Result<Mlp> view = model.OperatorView(op, context);
    if (!view.ok()) return view.status();

    // Per-operator Split stream (offset past the GatherOperatorData
    // streams): each type's sampling is independent of which other types
    // exist or run, the precondition for parallelizing across types later.
    Rng op_rng = rng.Split(kNumOpTypes + oi);
    if (config.algorithm == ReductionAlgorithm::kGreedy) {
      r.kept = GreedyKept(&view.value(), *scaler, data[oi],
                          config.greedy_max_rows, &op_rng, pool);
    } else {
      bool is_gd = config.algorithm == ReductionAlgorithm::kGradient;
      r.scores = is_gd ? GradientScores(view.value(), data[oi], pool)
                       : DiffPropScores(view.value(), data[oi],
                                        config.num_references, &op_rng, pool);
      double threshold = config.eps_abs;
      if (is_gd) {
        // Gradient scores are never exactly zero (dead dims still flow
        // through their random initial weights) and are not scale-free, so
        // GD must draw an arbitrary line — here a fraction of the median
        // score. This keeps some dead dims and drops some informative ones:
        // the paper's "wrong importance scores" failure mode, reproduced
        // mechanically rather than hard-coded.
        threshold = std::max(config.eps_abs,
                             config.gd_rel_threshold *
                                 Quantile(r.scores, 0.5));
      }
      for (size_t k = 0; k < r.scores.size(); ++k) {
        if (r.scores[k] > threshold) r.kept.push_back(k);
      }
      // Degenerate guard: never drop everything.
      if (r.kept.empty()) {
        for (size_t i = 0; i < r.original_dim; ++i) r.kept.push_back(i);
      }
    }
    r.dropped = r.original_dim - r.kept.size();
    result.per_op[op] = std::move(r);
  }
  result.runtime_seconds = timer.Seconds();
  return result;
}

Result<RecallResult> RecallFeatures(const OperatorFeaturizer& full_featurizer,
                                    const ReductionResult& previous,
                                    const std::vector<PlanSample>& new_samples,
                                    double variation_eps) {
  if (new_samples.empty()) {
    return Status::InvalidArgument("no samples for recall");
  }
  Rng rng(31);
  auto data = GatherOperatorData(full_featurizer, new_samples,
                                 /*max_rows_per_op=*/2000, rng,
                                 /*pool=*/nullptr);
  RecallResult result;
  for (const auto& [op, prev] : previous.per_op) {
    size_t oi = static_cast<size_t>(op);
    std::vector<bool> kept_before(prev.original_dim, false);
    for (size_t k : prev.kept) kept_before[k] = true;

    std::vector<size_t> recalled;
    const Matrix& x = data[oi].x;
    if (x.rows() > 0) {
      for (size_t k = 0; k < prev.original_dim && k < x.cols(); ++k) {
        if (kept_before[k]) continue;
        // Inherent value: the dim varies in the new workload.
        double mean = 0.0, var = 0.0;
        for (size_t r = 0; r < x.rows(); ++r) mean += x.At(r, k);
        mean /= static_cast<double>(x.rows());
        for (size_t r = 0; r < x.rows(); ++r) {
          double d = x.At(r, k) - mean;
          var += d * d;
        }
        if (var / static_cast<double>(x.rows()) > variation_eps) {
          recalled.push_back(k);
        }
      }
    }
    std::vector<size_t> merged = prev.kept;
    merged.insert(merged.end(), recalled.begin(), recalled.end());
    std::sort(merged.begin(), merged.end());
    result.total_recalled += recalled.size();
    result.recalled[op] = std::move(recalled);
    result.new_kept[op] = std::move(merged);
  }
  return result;
}

}  // namespace qcfe
