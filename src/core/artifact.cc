#include "core/artifact.h"

#include <utility>

#include "util/crc32.h"

namespace qcfe {

const char kDeterminismNote[] =
    "scalar kernel tier is bit-exact across runs and thread counts; SIMD "
    "tiers are per-tier deterministic (see nn/kernels.h)";

uint64_t FeatureSchemaHash(const OperatorFeaturizer& featurizer) {
  // FNV-1a, 64-bit. Separators between operators, dimensions and name
  // characters keep e.g. {"ab","c"} distinct from {"a","bc"}.
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t byte) {
    h ^= byte;
    h *= 1099511628211ULL;
  };
  for (OpType op : AllOpTypes()) {
    mix(0xF0u);
    mix(static_cast<uint64_t>(op));
    const FeatureSchema& schema = featurizer.schema(op);
    mix(0xF1u);
    mix(schema.size());
    for (const std::string& name : schema.names()) {
      mix(0xF2u);
      for (char c : name) mix(static_cast<unsigned char>(c));
    }
  }
  return h;
}

namespace artifact {

std::string Encode(const std::vector<Section>& sections) {
  ByteWriter w;
  w.PutU32(kMagic);
  w.PutU32(kFormatVersion);
  w.PutU32(static_cast<uint32_t>(sections.size()));
  for (const Section& section : sections) {
    w.PutU32(section.id);
    w.PutU64(section.payload.size());
    w.PutBytes(section.payload.data(), section.payload.size());
    w.PutU32(Crc32(section.payload));
  }
  return w.TakeBytes();
}

Status Decode(const std::string& bytes, std::vector<Section>* out) {
  ByteReader r(bytes);
  uint32_t magic = 0;
  if (!r.ReadU32(&magic).ok() || magic != kMagic) {
    return Status::DataLoss("bad magic: not a QCFE model artifact");
  }
  uint32_t version = 0;
  QCFE_RETURN_IF_ERROR(r.ReadU32(&version));
  if (version != kFormatVersion) {
    return Status::FailedPrecondition(
        "unsupported artifact format version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kFormatVersion) + ")");
  }
  uint32_t count = 0;
  QCFE_RETURN_IF_ERROR(r.ReadU32(&count));
  std::vector<Section> sections;
  for (uint32_t i = 0; i < count; ++i) {
    Section section;
    QCFE_RETURN_IF_ERROR(
        r.ReadU32(&section.id)
            .WithContext("section " + std::to_string(i) + " header"));
    uint64_t len = 0;
    QCFE_RETURN_IF_ERROR(
        r.ReadU64(&len).WithContext("section " + std::to_string(i) +
                                    " length"));
    if (len > r.remaining()) {
      return Status::DataLoss(
          "section " + std::to_string(i) + " (id " +
          std::to_string(section.id) + ") claims " + std::to_string(len) +
          " payload bytes but only " + std::to_string(r.remaining()) +
          " remain at offset " + std::to_string(r.offset()));
    }
    section.payload.resize(static_cast<size_t>(len));
    QCFE_RETURN_IF_ERROR(r.ReadBytes(&section.payload[0], section.payload.size()));
    uint32_t stored_crc = 0;
    QCFE_RETURN_IF_ERROR(
        r.ReadU32(&stored_crc)
            .WithContext("section " + std::to_string(i) + " checksum"));
    const uint32_t actual_crc = Crc32(section.payload);
    if (stored_crc != actual_crc) {
      return Status::DataLoss("section " + std::to_string(i) + " (id " +
                              std::to_string(section.id) +
                              ") CRC mismatch: stored " +
                              std::to_string(stored_crc) + ", computed " +
                              std::to_string(actual_crc));
    }
    for (const Section& seen : sections) {
      if (seen.id == section.id) {
        return Status::DataLoss("duplicate section id " +
                                std::to_string(section.id));
      }
    }
    sections.push_back(std::move(section));
  }
  if (r.remaining() != 0) {
    return Status::DataLoss(std::to_string(r.remaining()) +
                            " trailing bytes after the last section");
  }
  *out = std::move(sections);
  return Status::OK();
}

const Section* Find(const std::vector<Section>& sections, uint32_t id) {
  for (const Section& section : sections) {
    if (section.id == id) return &section;
  }
  return nullptr;
}

void EncodeFingerprint(const FitFingerprint& fp, ByteWriter* w) {
  w->PutString(fp.estimator);
  w->PutU64(fp.schema_hash);
  w->PutBool(fp.has_snapshot);
  w->PutU8(static_cast<uint8_t>(fp.granularity));
  w->PutBool(fp.has_reduction);
  w->PutU64(fp.env_ids.size());
  for (int id : fp.env_ids) w->PutI64(id);
  w->PutString(fp.kernel_isa);
  w->PutString(fp.determinism_note);
}

Status DecodeFingerprint(ByteReader* r, FitFingerprint* fp) {
  QCFE_RETURN_IF_ERROR(r->ReadString(&fp->estimator));
  QCFE_RETURN_IF_ERROR(r->ReadU64(&fp->schema_hash));
  QCFE_RETURN_IF_ERROR(r->ReadBool(&fp->has_snapshot));
  uint8_t granularity = 0;
  QCFE_RETURN_IF_ERROR(r->ReadU8(&granularity));
  if (granularity > static_cast<uint8_t>(SnapshotGranularity::kOperatorTable)) {
    return Status::DataLoss("invalid fingerprint granularity byte " +
                            std::to_string(granularity));
  }
  fp->granularity = static_cast<SnapshotGranularity>(granularity);
  QCFE_RETURN_IF_ERROR(r->ReadBool(&fp->has_reduction));
  uint64_t env_count = 0;
  QCFE_RETURN_IF_ERROR(r->ReadCount(&env_count, sizeof(int64_t)));
  fp->env_ids.clear();
  fp->env_ids.reserve(static_cast<size_t>(env_count));
  for (uint64_t i = 0; i < env_count; ++i) {
    int64_t id = 0;
    QCFE_RETURN_IF_ERROR(r->ReadI64(&id));
    fp->env_ids.push_back(static_cast<int>(id));
  }
  QCFE_RETURN_IF_ERROR(r->ReadString(&fp->kernel_isa));
  QCFE_RETURN_IF_ERROR(r->ReadString(&fp->determinism_note));
  return Status::OK();
}

}  // namespace artifact

}  // namespace qcfe
