#include "core/pipeline.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "core/artifact.h"
#include "nn/kernels.h"
#include "util/fs.h"
#include "util/serialize.h"
#include "util/stats.h"
#include "util/string_util.h"

namespace qcfe {

namespace {

/// Per-environment mean q-error of `model` over `samples`, through the
/// batched serving path. This is the fit-time reference the online
/// DriftDetector (src/adapt) compares live q-error against. Deterministic:
/// accumulation follows sample order and std::map iterates env ids
/// ascending. Baselines are advisory, so a failed batch predict yields an
/// empty map instead of failing the fit.
std::map<int, double> ComputeEnvBaselines(const CostModel& model,
                                          const std::vector<PlanSample>& samples,
                                          ThreadPool* pool) {
  Result<std::vector<double>> preds = model.PredictBatchMs(samples, pool);
  if (!preds.ok()) return {};
  std::map<int, std::pair<double, size_t>> acc;
  for (size_t i = 0; i < samples.size(); ++i) {
    std::pair<double, size_t>& slot = acc[samples[i].env_id];
    slot.first += QError(samples[i].label_ms, (*preds)[i]);
    slot.second += 1;
  }
  std::map<int, double> out;
  for (const auto& [env_id, sum_count] : acc) {
    out[env_id] = sum_count.first / static_cast<double>(sum_count.second);
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<Pipeline>> Pipeline::Fit(
    Database* db, const std::vector<Environment>* envs,
    const std::vector<QueryTemplate>* templates, const PipelineConfig& config,
    const std::vector<PlanSample>& train) {
  if (db == nullptr || envs == nullptr || templates == nullptr) {
    return Status::InvalidArgument(
        "Pipeline::Fit requires a database, environments and templates");
  }
  EstimatorRegistry& registry = EstimatorRegistry::Global();
  Result<EstimatorInfo> info = registry.Info(config.estimator);
  if (!info.ok()) return info.status();

  auto pipeline = std::unique_ptr<Pipeline>(new Pipeline());
  pipeline->db_ = db;
  pipeline->envs_ = envs;
  pipeline->templates_ = templates;
  pipeline->config_ = config;
  pipeline->info_ = *info;
  // Analytical estimators have no learned features to snapshot or reduce.
  pipeline->config_.use_snapshot = config.use_snapshot && info->learned;
  pipeline->config_.use_reduction = config.use_reduction && info->learned;

  // One worker pool for the whole pipeline lifetime: collection, reduction,
  // training eval, then batched serving all share it.
  int requested = config.parallelism.num_threads.value_or(1);
  if (ResolveNumThreads(requested) > 1) {
    pipeline->pool_ = std::make_unique<ThreadPool>(requested);
  }
  ThreadPool* pool = pipeline->pool_.get();

  pipeline->base_featurizer_ = std::make_unique<BaseFeaturizer>(db->catalog());
  const OperatorFeaturizer* active = pipeline->base_featurizer_.get();

  if (pipeline->config_.use_snapshot) {
    pipeline->snapshot_store_ = std::make_unique<SnapshotStore>();
    SnapshotBuilder snapshots(db, templates);
    QCFE_RETURN_IF_ERROR(snapshots.ComputeSnapshots(
        *envs, config.snapshot_from_templates, config.snapshot_scale,
        config.seed, pipeline->snapshot_store_.get(),
        &pipeline->snapshot_collection_ms_, &pipeline->snapshot_num_queries_,
        &pipeline->snapshot_num_templates_, config.snapshot_granularity,
        pool));
    pipeline->snapshot_featurizer_ = std::make_unique<SnapshotFeaturizer>(
        active, pipeline->snapshot_store_.get(),
        config.snapshot_granularity == SnapshotGranularity::kOperatorTable);
    active = pipeline->snapshot_featurizer_.get();
  }

  if (pipeline->config_.use_reduction) {
    // Provisional model: enough training for meaningful importance scores.
    Result<std::unique_ptr<CostModel>> provisional = registry.Create(
        config.estimator, {db->catalog(), active, config.seed + 1});
    if (!provisional.ok()) return provisional.status();
    (*provisional)->set_thread_pool(pool);
    TrainConfig pre_cfg = config.train;
    pre_cfg.epochs = config.pre_reduction_epochs;
    pre_cfg.eval_every = 0;
    QCFE_RETURN_IF_ERROR(
        (*provisional)->Train(train, pre_cfg, &pipeline->pre_train_stats_));

    Result<ReductionResult> reduction =
        ReduceFeatures(**provisional, train, config.reduction, pool);
    if (!reduction.ok()) return reduction.status();
    pipeline->reduction_ = std::move(reduction.value());

    pipeline->masked_featurizer_ = std::make_unique<MaskedFeaturizer>(
        active, pipeline->reduction_.KeptMap(info->uniform_feature_width));
    active = pipeline->masked_featurizer_.get();
  }

  Result<std::unique_ptr<CostModel>> model = registry.Create(
      config.estimator, {db->catalog(), active, config.seed + 2});
  if (!model.ok()) return model.status();
  pipeline->model_ = std::move(model.value());
  pipeline->model_->set_thread_pool(pool);
  QCFE_RETURN_IF_ERROR(
      pipeline->model_->Train(train, config.train, &pipeline->train_stats_));
  pipeline->env_baseline_qerror_ =
      ComputeEnvBaselines(*pipeline->model_, train, pool);
  return pipeline;
}

Result<double> Pipeline::PredictMs(const PlanNode& plan, int env_id) const {
  return model_->PredictMs(plan, env_id);
}

Result<std::vector<double>> Pipeline::PredictBatch(
    const std::vector<PlanSample>& samples) const {
  return model_->PredictBatchMs(samples);
}

std::unique_ptr<AsyncServer> Pipeline::ServeAsync(Clock* clock) const {
  return std::make_unique<AsyncServer>(model_.get(), config_.async_serve,
                                       clock, pool_.get());
}

std::unique_ptr<AsyncServer> Pipeline::ServeAsync(const SwappableModel* models,
                                                  const AsyncServeConfig& config,
                                                  Clock* clock) {
  return std::make_unique<AsyncServer>(models, config, clock);
}

std::string Pipeline::name() const {
  bool qcfe = config_.use_snapshot || config_.use_reduction;
  return qcfe ? "QCFE(" + info_.qcfe_label + ")" : info_.display_name;
}

const OperatorFeaturizer* Pipeline::active_featurizer() const {
  if (masked_featurizer_ != nullptr) return masked_featurizer_.get();
  if (snapshot_featurizer_ != nullptr) return snapshot_featurizer_.get();
  return base_featurizer_.get();
}

std::string Pipeline::Explain() const {
  std::ostringstream os;
  os << "pipeline " << name() << " (estimator \"" << config_.estimator
     << "\")\n";
  os << "  chain: base featurizer";
  if (snapshot_featurizer_ != nullptr) {
    os << " -> snapshot("
       << (config_.snapshot_from_templates ? "FST" : "FSO") << ", scale "
       << config_.snapshot_scale << ", "
       << (config_.snapshot_granularity == SnapshotGranularity::kOperatorTable
               ? "per-operator-table"
               : "per-operator")
       << ")";
  }
  if (masked_featurizer_ != nullptr) {
    os << " -> reduction mask";
  }
  os << "\n";
  if (snapshot_store_ != nullptr) {
    os << "  snapshot: " << snapshot_store_->size() << " environments from "
       << snapshot_num_queries_ << " queries (" << snapshot_num_templates_
       << " templates, " << FormatDouble(snapshot_collection_ms_, 1)
       << " simulated collection ms)\n";
  }
  if (config_.use_reduction) {
    os << "  reduction: removed "
       << FormatDouble(100.0 * reduction_.ReductionRatio(), 1)
       << "% of feature dims\n";
  }
  // The loss curve counts every epoch the current weights went through
  // (Fit plus retrains); the config only records the Fit-time budget.
  const size_t trained_epochs = train_stats_.loss_curve.empty()
                                    ? static_cast<size_t>(config_.train.epochs)
                                    : train_stats_.loss_curve.size();
  os << "  training: " << trained_epochs << " epochs in "
     << FormatDouble(train_stats_.train_seconds, 2) << " s";
  if (!train_stats_.loss_curve.empty()) {
    os << ", final loss " << FormatDouble(train_stats_.loss_curve.back(), 5);
  }
  os << "\n";
  os << "  threads: "
     << (pool_ == nullptr ? size_t{1} : pool_->num_workers())
     << " (deterministic: parallel and serial fits are bit-identical)\n";
  return os.str();
}

Status Pipeline::ExtendSnapshots(const std::vector<Environment>& envs,
                                 bool from_templates, int scale, uint64_t seed,
                                 double* collection_ms) {
  if (snapshot_store_ == nullptr) {
    return Status::FailedPrecondition(
        "pipeline was fitted without a snapshot store");
  }
  // Detect snapshot-cache collisions before computing anything: an env id
  // that is already cached (or repeated within this request) used to be
  // silently overwritten by whichever collection ran last. The refit below
  // replaces each colliding entry with a snapshot that depends only on this
  // call's (envs, scale, seed) — never on what was cached — and the
  // returned status names the colliding ids. The stale entries are left in
  // place until the collection succeeds, so a failed re-collection cannot
  // punch holes in a store that was serving predictions.
  std::vector<int> collided;
  std::set<int> requested;
  for (const Environment& env : envs) {
    bool duplicate_in_request = !requested.insert(env.id).second;
    if ((snapshot_store_->Contains(env.id) || duplicate_in_request) &&
        std::find(collided.begin(), collided.end(), env.id) ==
            collided.end()) {
      collided.push_back(env.id);
    }
  }
  SnapshotBuilder snapshots(db_, templates_);
  double extra_ms = 0.0;
  size_t extra_queries = 0;
  QCFE_RETURN_IF_ERROR(snapshots.ComputeSnapshots(
      envs, from_templates, scale, seed, snapshot_store_.get(), &extra_ms,
      &extra_queries, nullptr, config_.snapshot_granularity, pool_.get()));
  // Keep the pipeline's cost accounting (Explain, Table V style stats)
  // covering the extended store, not just the original Fit.
  snapshot_collection_ms_ += extra_ms;
  snapshot_num_queries_ += extra_queries;
  // Assign, never accumulate: the out-param reports this call's cost only,
  // like every other out-param in the API (the lifetime total is the
  // member above). Accumulating additionally produced garbage when callers
  // passed an uninitialized double.
  if (collection_ms != nullptr) *collection_ms = extra_ms;
  if (!collided.empty()) {
    std::ostringstream os;
    os << "snapshot cache collision: environment id(s)";
    for (int id : collided) os << " " << id;
    os << " invalidated and refit";
    return Status::AlreadyExists(os.str());
  }
  return Status::OK();
}

Status Pipeline::Retrain(const std::vector<PlanSample>& train,
                         const TrainConfig& config, TrainStats* stats) {
  TrainStats retrain_stats;
  QCFE_RETURN_IF_ERROR(model_->Train(train, config, &retrain_stats));
  // Merge with history rather than leaving train_stats_ stale: the merged
  // stats describe the full training the current weights went through (Fit
  // plus every successful retrain), so a post-retrain Explain() or Save()
  // reflects the model that is actually serving. Epochs in the retrain's
  // eval curve are offset past the existing loss curve so the combined
  // curve stays monotone in epoch.
  const int epoch_offset = static_cast<int>(train_stats_.loss_curve.size());
  train_stats_.train_seconds += retrain_stats.train_seconds;
  train_stats_.loss_curve.insert(train_stats_.loss_curve.end(),
                                 retrain_stats.loss_curve.begin(),
                                 retrain_stats.loss_curve.end());
  for (const auto& [epoch, q] : retrain_stats.eval_curve) {
    train_stats_.eval_curve.emplace_back(epoch + epoch_offset, q);
  }
  // Refresh the drift baselines for the environments this retrain covered;
  // environments absent from `train` keep their previous baselines.
  for (const auto& [env_id, q] :
       ComputeEnvBaselines(*model_, train, pool_.get())) {
    env_baseline_qerror_[env_id] = q;
  }
  if (stats != nullptr) *stats = retrain_stats;
  return Status::OK();
}

namespace {

/// Serving env-id set, ascending and deduplicated: the load-time identity of
/// "which environments this pipeline knows about".
std::vector<int> SortedEnvIds(const std::vector<Environment>& envs) {
  std::vector<int> ids;
  ids.reserve(envs.size());
  for (const Environment& env : envs) ids.push_back(env.id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

void EncodeTrainStats(const TrainStats& stats, ByteWriter* w) {
  w->PutF64(stats.train_seconds);
  w->PutU64(stats.loss_curve.size());
  for (double loss : stats.loss_curve) w->PutF64(loss);
  w->PutU64(stats.eval_curve.size());
  for (const auto& [epoch, q] : stats.eval_curve) {
    w->PutI64(epoch);
    w->PutF64(q);
  }
}

Status DecodeTrainStats(ByteReader* r, TrainStats* stats) {
  QCFE_RETURN_IF_ERROR(r->ReadF64(&stats->train_seconds));
  uint64_t losses = 0;
  QCFE_RETURN_IF_ERROR(r->ReadCount(&losses, sizeof(double)));
  stats->loss_curve.assign(static_cast<size_t>(losses), 0.0);
  for (double& loss : stats->loss_curve) QCFE_RETURN_IF_ERROR(r->ReadF64(&loss));
  uint64_t evals = 0;
  QCFE_RETURN_IF_ERROR(r->ReadCount(&evals, sizeof(int64_t) + sizeof(double)));
  stats->eval_curve.clear();
  stats->eval_curve.reserve(static_cast<size_t>(evals));
  for (uint64_t i = 0; i < evals; ++i) {
    int64_t epoch = 0;
    double q = 0.0;
    QCFE_RETURN_IF_ERROR(r->ReadI64(&epoch));
    QCFE_RETURN_IF_ERROR(r->ReadF64(&q));
    stats->eval_curve.emplace_back(static_cast<int>(epoch), q);
  }
  return Status::OK();
}

/// Fit-structure subset of PipelineConfig that Load restores so Explain and
/// ExtendSnapshots describe the artifact's fit, not the defaults. Runtime
/// knobs (parallelism, async_serve, reduction tuning) intentionally stay at
/// their defaults: they do not change what the fitted model computes.
void EncodeConfig(const PipelineConfig& config, ByteWriter* w) {
  w->PutString(config.estimator);
  w->PutBool(config.use_snapshot);
  w->PutBool(config.snapshot_from_templates);
  w->PutI64(config.snapshot_scale);
  w->PutU8(static_cast<uint8_t>(config.snapshot_granularity));
  w->PutBool(config.use_reduction);
  w->PutI64(config.pre_reduction_epochs);
  w->PutI64(config.train.epochs);
  w->PutU64(config.seed);
}

Status DecodeConfig(ByteReader* r, PipelineConfig* config) {
  QCFE_RETURN_IF_ERROR(r->ReadString(&config->estimator));
  QCFE_RETURN_IF_ERROR(r->ReadBool(&config->use_snapshot));
  QCFE_RETURN_IF_ERROR(r->ReadBool(&config->snapshot_from_templates));
  int64_t scale = 0;
  QCFE_RETURN_IF_ERROR(r->ReadI64(&scale));
  config->snapshot_scale = static_cast<int>(scale);
  uint8_t granularity = 0;
  QCFE_RETURN_IF_ERROR(r->ReadU8(&granularity));
  if (granularity > static_cast<uint8_t>(SnapshotGranularity::kOperatorTable)) {
    return Status::DataLoss("invalid config granularity byte " +
                            std::to_string(granularity));
  }
  config->snapshot_granularity = static_cast<SnapshotGranularity>(granularity);
  QCFE_RETURN_IF_ERROR(r->ReadBool(&config->use_reduction));
  int64_t pre_epochs = 0;
  QCFE_RETURN_IF_ERROR(r->ReadI64(&pre_epochs));
  config->pre_reduction_epochs = static_cast<int>(pre_epochs);
  int64_t epochs = 0;
  QCFE_RETURN_IF_ERROR(r->ReadI64(&epochs));
  config->train.epochs = static_cast<int>(epochs);
  QCFE_RETURN_IF_ERROR(r->ReadU64(&config->seed));
  return Status::OK();
}

void EncodeReduction(const ReductionResult& reduction, ByteWriter* w) {
  w->PutF64(reduction.runtime_seconds);
  w->PutU64(reduction.per_op.size());
  for (const auto& [op, result] : reduction.per_op) {
    w->PutU32(static_cast<uint32_t>(op));
    w->PutU64(result.original_dim);
    w->PutU64(result.dropped);
    w->PutU64(result.scores.size());
    for (double score : result.scores) w->PutF64(score);
    w->PutU64(result.kept.size());
    for (size_t index : result.kept) w->PutU64(index);
  }
}

/// `active` is the featurizer the kept indices select from (post-snapshot,
/// pre-mask). Every index is range-checked against the live dimensionality
/// *before* any MaskedFeaturizer is built over them — hostile kept sets must
/// fail typed, not index out of bounds.
Status DecodeReduction(ByteReader* r, const OperatorFeaturizer& active,
                       ReductionResult* reduction) {
  QCFE_RETURN_IF_ERROR(r->ReadF64(&reduction->runtime_seconds));
  uint64_t op_count = 0;
  QCFE_RETURN_IF_ERROR(r->ReadCount(&op_count, 4 + 8 + 8 + 8 + 8));
  reduction->per_op.clear();
  for (uint64_t i = 0; i < op_count; ++i) {
    uint32_t op_raw = 0;
    QCFE_RETURN_IF_ERROR(r->ReadU32(&op_raw));
    if (op_raw >= kNumOpTypes) {
      return Status::DataLoss("invalid reduction operator index " +
                              std::to_string(op_raw));
    }
    OpType op = static_cast<OpType>(op_raw);
    OpReductionResult result;
    uint64_t original_dim = 0;
    uint64_t dropped = 0;
    QCFE_RETURN_IF_ERROR(r->ReadU64(&original_dim));
    QCFE_RETURN_IF_ERROR(r->ReadU64(&dropped));
    result.original_dim = static_cast<size_t>(original_dim);
    result.dropped = static_cast<size_t>(dropped);
    if (result.original_dim != active.dim(op)) {
      return Status::FailedPrecondition(
          "reduction for operator " + std::to_string(op_raw) +
          " was computed over " + std::to_string(result.original_dim) +
          " feature dims but the live featurizer has " +
          std::to_string(active.dim(op)));
    }
    uint64_t score_count = 0;
    QCFE_RETURN_IF_ERROR(r->ReadCount(&score_count, sizeof(double)));
    result.scores.assign(static_cast<size_t>(score_count), 0.0);
    for (double& score : result.scores) QCFE_RETURN_IF_ERROR(r->ReadF64(&score));
    uint64_t kept_count = 0;
    QCFE_RETURN_IF_ERROR(r->ReadCount(&kept_count, sizeof(uint64_t)));
    result.kept.reserve(static_cast<size_t>(kept_count));
    for (uint64_t k = 0; k < kept_count; ++k) {
      uint64_t index = 0;
      QCFE_RETURN_IF_ERROR(r->ReadU64(&index));
      if (index >= active.dim(op)) {
        return Status::DataLoss(
            "reduction kept index " + std::to_string(index) +
            " out of range for operator " + std::to_string(op_raw) + " (dim " +
            std::to_string(active.dim(op)) + ")");
      }
      result.kept.push_back(static_cast<size_t>(index));
    }
    if (!reduction->per_op.emplace(op, std::move(result)).second) {
      return Status::DataLoss("duplicate reduction operator " +
                              std::to_string(op_raw));
    }
  }
  return Status::OK();
}

/// A section's payload must be consumed exactly: leftover bytes mean the
/// writer and reader disagree about the layout, which is corruption, not
/// forward evolution (evolution adds new *sections*, never trailing bytes).
Status RequireFullyConsumed(const ByteReader& r, const char* what) {
  if (r.remaining() != 0) {
    return Status::DataLoss(std::to_string(r.remaining()) +
                            " unconsumed bytes in " + what + " section");
  }
  return Status::OK();
}

}  // namespace

Status Pipeline::Save(const std::string& path, Fs* fs) const {
  if (fs == nullptr) fs = Fs::Default();

  FitFingerprint fp;
  fp.estimator = config_.estimator;
  fp.schema_hash = FeatureSchemaHash(*base_featurizer_);
  fp.has_snapshot = snapshot_store_ != nullptr;
  fp.granularity = config_.snapshot_granularity;
  fp.has_reduction = masked_featurizer_ != nullptr;
  fp.env_ids = SortedEnvIds(*envs_);
  fp.kernel_isa = kernels::KernelIsaName(kernels::GetKernelIsa());
  fp.determinism_note = kDeterminismNote;

  std::vector<artifact::Section> sections;
  {
    ByteWriter w;
    artifact::EncodeFingerprint(fp, &w);
    sections.push_back({artifact::kFingerprint, w.TakeBytes()});
  }
  {
    ByteWriter w;
    EncodeConfig(config_, &w);
    sections.push_back({artifact::kConfig, w.TakeBytes()});
  }
  if (snapshot_store_ != nullptr) {
    ByteWriter w;
    snapshot_store_->SaveBinary(&w);
    sections.push_back({artifact::kSnapshots, w.TakeBytes()});
  }
  if (masked_featurizer_ != nullptr) {
    ByteWriter w;
    EncodeReduction(reduction_, &w);
    sections.push_back({artifact::kReduction, w.TakeBytes()});
  }
  {
    ByteWriter w;
    QCFE_RETURN_IF_ERROR(
        model_->SaveState(&w).WithContext("serializing model state"));
    sections.push_back({artifact::kModel, w.TakeBytes()});
  }
  {
    ByteWriter w;
    w.PutF64(snapshot_collection_ms_);
    w.PutU64(snapshot_num_queries_);
    w.PutU64(snapshot_num_templates_);
    EncodeTrainStats(pre_train_stats_, &w);
    EncodeTrainStats(train_stats_, &w);
    sections.push_back({artifact::kStats, w.TakeBytes()});
  }
  // Optional section: omitted entirely when there are no baselines, so
  // artifacts written before online adaptation existed re-save
  // byte-identically after a Load (the golden backward-compat gate).
  if (!env_baseline_qerror_.empty()) {
    ByteWriter w;
    w.PutU64(env_baseline_qerror_.size());
    for (const auto& [env_id, q] : env_baseline_qerror_) {
      w.PutI64(env_id);
      w.PutF64(q);
    }
    sections.push_back({artifact::kAdaptBaseline, w.TakeBytes()});
  }

  return AtomicWriteFile(fs, path, artifact::Encode(sections))
      .WithContext("saving pipeline to " + path);
}

Result<std::unique_ptr<Pipeline>> Pipeline::Load(
    Database* db, const std::vector<Environment>* envs,
    const std::vector<QueryTemplate>* templates, const std::string& path,
    Fs* fs) {
  if (db == nullptr || envs == nullptr || templates == nullptr) {
    return Status::InvalidArgument(
        "Pipeline::Load requires a database, environments and templates");
  }
  if (fs == nullptr) fs = Fs::Default();

  Result<std::string> bytes = fs->ReadFile(path);
  if (!bytes.ok()) {
    return bytes.status().WithContext("loading pipeline from " + path);
  }
  std::vector<artifact::Section> sections;
  QCFE_RETURN_IF_ERROR(artifact::Decode(*bytes, &sections)
                           .WithContext("loading pipeline from " + path));

  // Fingerprint first: nothing else is interpreted until the artifact is
  // known to belong to this world.
  const artifact::Section* fp_section =
      artifact::Find(sections, artifact::kFingerprint);
  if (fp_section == nullptr) {
    return Status::DataLoss("artifact has no fingerprint section");
  }
  FitFingerprint fp;
  {
    ByteReader r(fp_section->payload);
    QCFE_RETURN_IF_ERROR(
        artifact::DecodeFingerprint(&r, &fp).WithContext("fingerprint"));
    QCFE_RETURN_IF_ERROR(RequireFullyConsumed(r, "fingerprint"));
  }

  EstimatorRegistry& registry = EstimatorRegistry::Global();
  Result<EstimatorInfo> info = registry.Info(fp.estimator);
  if (!info.ok()) {
    return info.status().WithContext("artifact estimator \"" + fp.estimator +
                                     "\"");
  }

  auto pipeline = std::unique_ptr<Pipeline>(new Pipeline());
  pipeline->db_ = db;
  pipeline->envs_ = envs;
  pipeline->templates_ = templates;
  pipeline->info_ = *info;

  const artifact::Section* config_section =
      artifact::Find(sections, artifact::kConfig);
  if (config_section == nullptr) {
    return Status::DataLoss("artifact has no config section");
  }
  {
    ByteReader r(config_section->payload);
    QCFE_RETURN_IF_ERROR(
        DecodeConfig(&r, &pipeline->config_).WithContext("config"));
    QCFE_RETURN_IF_ERROR(RequireFullyConsumed(r, "config"));
  }
  // The config section must agree with the fingerprint — both are written by
  // the same Save, so disagreement means tampering or corruption.
  if (pipeline->config_.estimator != fp.estimator ||
      pipeline->config_.use_snapshot != fp.has_snapshot ||
      pipeline->config_.use_reduction != fp.has_reduction ||
      pipeline->config_.snapshot_granularity != fp.granularity) {
    return Status::DataLoss("config section disagrees with the fingerprint");
  }

  // Validate against the live world. The schema hash is recomputed from a
  // freshly built base featurizer over the caller's catalog, so any drift in
  // tables, columns or featurizer layout rejects the artifact here.
  pipeline->base_featurizer_ = std::make_unique<BaseFeaturizer>(db->catalog());
  const uint64_t live_hash = FeatureSchemaHash(*pipeline->base_featurizer_);
  if (live_hash != fp.schema_hash) {
    return Status::FailedPrecondition(
        "feature-schema hash mismatch: artifact was fit against hash " +
        std::to_string(fp.schema_hash) + " but this catalog/featurizer hashes " +
        std::to_string(live_hash));
  }
  const std::vector<int> live_envs = SortedEnvIds(*envs);
  if (live_envs != fp.env_ids) {
    std::ostringstream os;
    os << "environment set mismatch: artifact was fit for env ids [";
    for (size_t i = 0; i < fp.env_ids.size(); ++i) {
      os << (i == 0 ? "" : " ") << fp.env_ids[i];
    }
    os << "] but the caller serves [";
    for (size_t i = 0; i < live_envs.size(); ++i) {
      os << (i == 0 ? "" : " ") << live_envs[i];
    }
    os << "]";
    return Status::FailedPrecondition(os.str());
  }

  const OperatorFeaturizer* active = pipeline->base_featurizer_.get();

  if (fp.has_snapshot) {
    const artifact::Section* snap_section =
        artifact::Find(sections, artifact::kSnapshots);
    if (snap_section == nullptr) {
      return Status::DataLoss(
          "fingerprint promises a snapshot store but the section is missing");
    }
    pipeline->snapshot_store_ = std::make_unique<SnapshotStore>();
    ByteReader r(snap_section->payload);
    QCFE_RETURN_IF_ERROR(
        SnapshotStore::LoadBinary(&r, pipeline->snapshot_store_.get())
            .WithContext("snapshot store"));
    QCFE_RETURN_IF_ERROR(RequireFullyConsumed(r, "snapshot"));
    if (pipeline->snapshot_store_->EnvIds() != fp.env_ids) {
      return Status::DataLoss(
          "snapshot store covers a different env set than the fingerprint");
    }
    for (int env_id : fp.env_ids) {
      const FeatureSnapshot* snapshot = pipeline->snapshot_store_->Get(env_id);
      if (snapshot != nullptr && snapshot->granularity() != fp.granularity) {
        return Status::DataLoss(
            "snapshot granularity disagrees with the fingerprint");
      }
    }
    pipeline->snapshot_featurizer_ = std::make_unique<SnapshotFeaturizer>(
        active, pipeline->snapshot_store_.get(),
        fp.granularity == SnapshotGranularity::kOperatorTable);
    active = pipeline->snapshot_featurizer_.get();
  }

  if (fp.has_reduction) {
    const artifact::Section* red_section =
        artifact::Find(sections, artifact::kReduction);
    if (red_section == nullptr) {
      return Status::DataLoss(
          "fingerprint promises a reduction but the section is missing");
    }
    ByteReader r(red_section->payload);
    QCFE_RETURN_IF_ERROR(
        DecodeReduction(&r, *active, &pipeline->reduction_)
            .WithContext("reduction"));
    QCFE_RETURN_IF_ERROR(RequireFullyConsumed(r, "reduction"));
    pipeline->masked_featurizer_ = std::make_unique<MaskedFeaturizer>(
        active, pipeline->reduction_.KeptMap(info->uniform_feature_width));
    active = pipeline->masked_featurizer_.get();
  }

  const artifact::Section* model_section =
      artifact::Find(sections, artifact::kModel);
  if (model_section == nullptr) {
    return Status::DataLoss("artifact has no model section");
  }
  // Same construction call as Fit (same seed offset), so the net layout the
  // weights load into is exactly the layout they were trained in.
  Result<std::unique_ptr<CostModel>> model = registry.Create(
      fp.estimator, {db->catalog(), active, pipeline->config_.seed + 2});
  if (!model.ok()) return model.status();
  pipeline->model_ = std::move(model.value());
  {
    ByteReader r(model_section->payload);
    QCFE_RETURN_IF_ERROR(
        pipeline->model_->LoadState(&r).WithContext("model state"));
    QCFE_RETURN_IF_ERROR(RequireFullyConsumed(r, "model"));
  }

  const artifact::Section* stats_section =
      artifact::Find(sections, artifact::kStats);
  if (stats_section == nullptr) {
    return Status::DataLoss("artifact has no stats section");
  }
  {
    ByteReader r(stats_section->payload);
    QCFE_RETURN_IF_ERROR(r.ReadF64(&pipeline->snapshot_collection_ms_));
    uint64_t queries = 0;
    uint64_t num_templates = 0;
    QCFE_RETURN_IF_ERROR(r.ReadU64(&queries));
    QCFE_RETURN_IF_ERROR(r.ReadU64(&num_templates));
    pipeline->snapshot_num_queries_ = static_cast<size_t>(queries);
    pipeline->snapshot_num_templates_ = static_cast<size_t>(num_templates);
    QCFE_RETURN_IF_ERROR(DecodeTrainStats(&r, &pipeline->pre_train_stats_)
                             .WithContext("pre-train stats"));
    QCFE_RETURN_IF_ERROR(DecodeTrainStats(&r, &pipeline->train_stats_)
                             .WithContext("train stats"));
    QCFE_RETURN_IF_ERROR(RequireFullyConsumed(r, "stats"));
  }

  // Drift baselines are optional: pre-adaptation artifacts have no such
  // section, which decodes as "no baselines" (the DriftDetector then falls
  // back to its configured default).
  const artifact::Section* baseline_section =
      artifact::Find(sections, artifact::kAdaptBaseline);
  if (baseline_section != nullptr) {
    ByteReader r(baseline_section->payload);
    uint64_t count = 0;
    QCFE_RETURN_IF_ERROR(
        r.ReadCount(&count, sizeof(int64_t) + sizeof(double)));
    for (uint64_t i = 0; i < count; ++i) {
      int64_t env_id = 0;
      double q = 0.0;
      QCFE_RETURN_IF_ERROR(r.ReadI64(&env_id));
      QCFE_RETURN_IF_ERROR(r.ReadF64(&q));
      pipeline->env_baseline_qerror_[static_cast<int>(env_id)] = q;
    }
    QCFE_RETURN_IF_ERROR(RequireFullyConsumed(r, "adapt baseline"));
  }

  return pipeline;
}

}  // namespace qcfe
