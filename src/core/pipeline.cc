#include "core/pipeline.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/string_util.h"

namespace qcfe {

Result<std::unique_ptr<Pipeline>> Pipeline::Fit(
    Database* db, const std::vector<Environment>* envs,
    const std::vector<QueryTemplate>* templates, const PipelineConfig& config,
    const std::vector<PlanSample>& train) {
  if (db == nullptr || envs == nullptr || templates == nullptr) {
    return Status::InvalidArgument(
        "Pipeline::Fit requires a database, environments and templates");
  }
  EstimatorRegistry& registry = EstimatorRegistry::Global();
  Result<EstimatorInfo> info = registry.Info(config.estimator);
  if (!info.ok()) return info.status();

  auto pipeline = std::unique_ptr<Pipeline>(new Pipeline());
  pipeline->db_ = db;
  pipeline->envs_ = envs;
  pipeline->templates_ = templates;
  pipeline->config_ = config;
  pipeline->info_ = *info;
  // Analytical estimators have no learned features to snapshot or reduce.
  pipeline->config_.use_snapshot = config.use_snapshot && info->learned;
  pipeline->config_.use_reduction = config.use_reduction && info->learned;

  // One worker pool for the whole pipeline lifetime: collection, reduction,
  // training eval, then batched serving all share it.
  int requested = config.parallelism.num_threads.value_or(1);
  if (ResolveNumThreads(requested) > 1) {
    pipeline->pool_ = std::make_unique<ThreadPool>(requested);
  }
  ThreadPool* pool = pipeline->pool_.get();

  pipeline->base_featurizer_ = std::make_unique<BaseFeaturizer>(db->catalog());
  const OperatorFeaturizer* active = pipeline->base_featurizer_.get();

  if (pipeline->config_.use_snapshot) {
    pipeline->snapshot_store_ = std::make_unique<SnapshotStore>();
    SnapshotBuilder snapshots(db, templates);
    QCFE_RETURN_IF_ERROR(snapshots.ComputeSnapshots(
        *envs, config.snapshot_from_templates, config.snapshot_scale,
        config.seed, pipeline->snapshot_store_.get(),
        &pipeline->snapshot_collection_ms_, &pipeline->snapshot_num_queries_,
        &pipeline->snapshot_num_templates_, config.snapshot_granularity,
        pool));
    pipeline->snapshot_featurizer_ = std::make_unique<SnapshotFeaturizer>(
        active, pipeline->snapshot_store_.get(),
        config.snapshot_granularity == SnapshotGranularity::kOperatorTable);
    active = pipeline->snapshot_featurizer_.get();
  }

  if (pipeline->config_.use_reduction) {
    // Provisional model: enough training for meaningful importance scores.
    Result<std::unique_ptr<CostModel>> provisional = registry.Create(
        config.estimator, {db->catalog(), active, config.seed + 1});
    if (!provisional.ok()) return provisional.status();
    (*provisional)->set_thread_pool(pool);
    TrainConfig pre_cfg = config.train;
    pre_cfg.epochs = config.pre_reduction_epochs;
    pre_cfg.eval_every = 0;
    QCFE_RETURN_IF_ERROR(
        (*provisional)->Train(train, pre_cfg, &pipeline->pre_train_stats_));

    Result<ReductionResult> reduction =
        ReduceFeatures(**provisional, train, config.reduction, pool);
    if (!reduction.ok()) return reduction.status();
    pipeline->reduction_ = std::move(reduction.value());

    pipeline->masked_featurizer_ = std::make_unique<MaskedFeaturizer>(
        active, pipeline->reduction_.KeptMap(info->uniform_feature_width));
    active = pipeline->masked_featurizer_.get();
  }

  Result<std::unique_ptr<CostModel>> model = registry.Create(
      config.estimator, {db->catalog(), active, config.seed + 2});
  if (!model.ok()) return model.status();
  pipeline->model_ = std::move(model.value());
  pipeline->model_->set_thread_pool(pool);
  QCFE_RETURN_IF_ERROR(
      pipeline->model_->Train(train, config.train, &pipeline->train_stats_));
  return pipeline;
}

Result<double> Pipeline::PredictMs(const PlanNode& plan, int env_id) const {
  return model_->PredictMs(plan, env_id);
}

Result<std::vector<double>> Pipeline::PredictBatch(
    const std::vector<PlanSample>& samples) const {
  return model_->PredictBatchMs(samples);
}

std::unique_ptr<AsyncServer> Pipeline::ServeAsync(Clock* clock) const {
  return std::make_unique<AsyncServer>(model_.get(), config_.async_serve,
                                       clock, pool_.get());
}

std::string Pipeline::name() const {
  bool qcfe = config_.use_snapshot || config_.use_reduction;
  return qcfe ? "QCFE(" + info_.qcfe_label + ")" : info_.display_name;
}

const OperatorFeaturizer* Pipeline::active_featurizer() const {
  if (masked_featurizer_ != nullptr) return masked_featurizer_.get();
  if (snapshot_featurizer_ != nullptr) return snapshot_featurizer_.get();
  return base_featurizer_.get();
}

std::string Pipeline::Explain() const {
  std::ostringstream os;
  os << "pipeline " << name() << " (estimator \"" << config_.estimator
     << "\")\n";
  os << "  chain: base featurizer";
  if (snapshot_featurizer_ != nullptr) {
    os << " -> snapshot("
       << (config_.snapshot_from_templates ? "FST" : "FSO") << ", scale "
       << config_.snapshot_scale << ", "
       << (config_.snapshot_granularity == SnapshotGranularity::kOperatorTable
               ? "per-operator-table"
               : "per-operator")
       << ")";
  }
  if (masked_featurizer_ != nullptr) {
    os << " -> reduction mask";
  }
  os << "\n";
  if (snapshot_store_ != nullptr) {
    os << "  snapshot: " << snapshot_store_->size() << " environments from "
       << snapshot_num_queries_ << " queries (" << snapshot_num_templates_
       << " templates, " << FormatDouble(snapshot_collection_ms_, 1)
       << " simulated collection ms)\n";
  }
  if (config_.use_reduction) {
    os << "  reduction: removed "
       << FormatDouble(100.0 * reduction_.ReductionRatio(), 1)
       << "% of feature dims\n";
  }
  os << "  training: " << config_.train.epochs << " epochs in "
     << FormatDouble(train_stats_.train_seconds, 2) << " s";
  if (!train_stats_.loss_curve.empty()) {
    os << ", final loss " << FormatDouble(train_stats_.loss_curve.back(), 5);
  }
  os << "\n";
  os << "  threads: "
     << (pool_ == nullptr ? size_t{1} : pool_->num_workers())
     << " (deterministic: parallel and serial fits are bit-identical)\n";
  return os.str();
}

Status Pipeline::ExtendSnapshots(const std::vector<Environment>& envs,
                                 bool from_templates, int scale, uint64_t seed,
                                 double* collection_ms) {
  if (snapshot_store_ == nullptr) {
    return Status::FailedPrecondition(
        "pipeline was fitted without a snapshot store");
  }
  // Detect snapshot-cache collisions before computing anything: an env id
  // that is already cached (or repeated within this request) used to be
  // silently overwritten by whichever collection ran last. The refit below
  // replaces each colliding entry with a snapshot that depends only on this
  // call's (envs, scale, seed) — never on what was cached — and the
  // returned status names the colliding ids. The stale entries are left in
  // place until the collection succeeds, so a failed re-collection cannot
  // punch holes in a store that was serving predictions.
  std::vector<int> collided;
  std::set<int> requested;
  for (const Environment& env : envs) {
    bool duplicate_in_request = !requested.insert(env.id).second;
    if ((snapshot_store_->Contains(env.id) || duplicate_in_request) &&
        std::find(collided.begin(), collided.end(), env.id) ==
            collided.end()) {
      collided.push_back(env.id);
    }
  }
  SnapshotBuilder snapshots(db_, templates_);
  double extra_ms = 0.0;
  size_t extra_queries = 0;
  QCFE_RETURN_IF_ERROR(snapshots.ComputeSnapshots(
      envs, from_templates, scale, seed, snapshot_store_.get(), &extra_ms,
      &extra_queries, nullptr, config_.snapshot_granularity, pool_.get()));
  // Keep the pipeline's cost accounting (Explain, Table V style stats)
  // covering the extended store, not just the original Fit.
  snapshot_collection_ms_ += extra_ms;
  snapshot_num_queries_ += extra_queries;
  if (collection_ms != nullptr) *collection_ms += extra_ms;
  if (!collided.empty()) {
    std::ostringstream os;
    os << "snapshot cache collision: environment id(s)";
    for (int id : collided) os << " " << id;
    os << " invalidated and refit";
    return Status::AlreadyExists(os.str());
  }
  return Status::OK();
}

Status Pipeline::Retrain(const std::vector<PlanSample>& train,
                         const TrainConfig& config, TrainStats* stats) {
  return model_->Train(train, config, stats);
}

}  // namespace qcfe
