#ifndef QCFE_CORE_ARTIFACT_H_
#define QCFE_CORE_ARTIFACT_H_

/// \file artifact.h
/// The on-disk model artifact format behind Pipeline::Save/Load.
///
/// An artifact is a chunked, versioned, little-endian container:
///
///   u32 magic "QCFA"        (0x41464351 little-endian)
///   u32 format version      (currently 1)
///   u32 section count
///   repeated section:
///     u32 section id        (SectionId below; unknown ids are skipped)
///     u64 payload length
///     bytes payload
///     u32 CRC-32 of payload
///
/// Every failure mode maps to a typed Status: a wrong magic, truncation,
/// or CRC mismatch is kDataLoss (the bytes are damaged); an unsupported
/// format version or a fingerprint mismatch is kFailedPrecondition (the
/// bytes are intact but belong to a different world). Decoding never
/// aborts or reads out of bounds on hostile input — all payload parsing
/// goes through the bounds-checked ByteReader.
///
/// The fit fingerprint section pins what the model was fit against:
/// estimator name, a hash of the feature schema (catalog-derived), the
/// snapshot granularity, the environment-id set, and informational notes
/// about the kernel tier and determinism contract. Pipeline::Load
/// recomputes the schema hash and env set from its own arguments and
/// rejects the artifact on any mismatch — a stale artifact fails loudly
/// at load, never silently serving garbage (getml's FittedPipeline
/// fingerprints are the model for this).

#include <cstdint>
#include <string>
#include <vector>

#include "core/feature_snapshot.h"
#include "featurize/featurizer.h"
#include "util/serialize.h"
#include "util/status.h"

namespace qcfe {

/// What a pipeline was fit against. Everything here is either validated at
/// load (estimator, schema_hash, granularity, env_ids) or recorded for
/// humans (kernel_isa at save time; the determinism contract note).
struct FitFingerprint {
  std::string estimator;
  uint64_t schema_hash = 0;
  bool has_snapshot = false;
  SnapshotGranularity granularity = SnapshotGranularity::kOperator;
  bool has_reduction = false;
  std::vector<int> env_ids;  ///< ascending
  std::string kernel_isa;    ///< informational, not validated
  std::string determinism_note;
};

/// FNV-1a over every operator's feature-schema names (with operator index
/// and dimension separators), so any catalog or featurizer drift — renamed
/// column, added table, reordered dimensions — changes the hash. Always
/// computed over the *base* featurizer: the downstream snapshot/mask stages
/// are reconstructed from the artifact itself.
uint64_t FeatureSchemaHash(const OperatorFeaturizer& featurizer);

/// The note stored in every fingerprint. A fixed string (not a runtime
/// probe) so that re-saving a loaded artifact is byte-identical on any
/// machine.
extern const char kDeterminismNote[];

namespace artifact {

inline constexpr uint32_t kMagic = 0x41464351u;  // "QCFA" little-endian
inline constexpr uint32_t kFormatVersion = 1;

/// Section ids. New sections get new ids; readers skip unknown ids, so
/// additive evolution does not need a format-version bump.
enum SectionId : uint32_t {
  kFingerprint = 1,
  kConfig = 2,
  kSnapshots = 3,
  kReduction = 4,
  kModel = 5,
  kStats = 6,
  /// Per-environment fit-time mean q-error baselines for online drift
  /// detection (src/adapt). Optional: writers omit it when no baselines
  /// were computed, and pre-adaptation artifacts simply lack it — readers
  /// treat a missing section as "no baselines" so old artifacts still load
  /// and re-save byte-identically.
  kAdaptBaseline = 7,
};

struct Section {
  uint32_t id = 0;
  std::string payload;
};

/// Encodes sections into the framed container (header + per-section CRCs).
std::string Encode(const std::vector<Section>& sections);

/// Decodes a container into sections, verifying magic, version, framing
/// and every CRC. kDataLoss for damage, kFailedPrecondition for an
/// unsupported version.
Status Decode(const std::string& bytes, std::vector<Section>* out);

/// First section with the given id, or nullptr.
const Section* Find(const std::vector<Section>& sections, uint32_t id);

void EncodeFingerprint(const FitFingerprint& fp, ByteWriter* w);
Status DecodeFingerprint(ByteReader* r, FitFingerprint* fp);

}  // namespace artifact

}  // namespace qcfe

#endif  // QCFE_CORE_ARTIFACT_H_
