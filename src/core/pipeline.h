#ifndef QCFE_CORE_PIPELINE_H_
#define QCFE_CORE_PIPELINE_H_

/// \file pipeline.h
/// The public serving facade of QCFE. A Pipeline owns the whole feature-
/// engineering chain (base featurizer -> optional per-environment snapshot
/// -> optional reduction mask), the estimator behind it (any name in the
/// EstimatorRegistry: "qppnet", "mscn", "pgsql", ...), and the snapshot
/// store, so callers train, serve, inspect and transfer a cost model
/// through one object:
///
///   auto pipeline = Pipeline::Fit(db, &envs, &templates, config, train);
///   double ms   = *(*pipeline)->PredictMs(plan, env_id);       // one-off
///   auto  batch = (*pipeline)->PredictBatch(samples);          // serving
///   std::cout << (*pipeline)->Explain();                       // introspect
///
/// PredictBatch is the hot path: it forwards to the estimator's matrix-
/// batched implementation, which amortises featurization and runs batched
/// GEMMs instead of per-plan scalar loops.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/feature_reduction.h"
#include "core/feature_snapshot.h"
#include "core/qcfe.h"
#include "core/snapshot_featurizer.h"
#include "engine/database.h"
#include "models/cost_model.h"
#include "models/registry.h"
#include "serve/async_server.h"
#include "sql/template.h"
#include "util/clock.h"
#include "util/thread_pool.h"

namespace qcfe {

class Fs;
class SwappableModel;

/// Pipeline configuration. The default is the paper's full QCFE recipe
/// (FST snapshot + difference-propagation reduction) around QPPNet; setting
/// use_snapshot/use_reduction to false yields the plain baselines.
struct PipelineConfig {
  /// EstimatorRegistry name: "qppnet", "mscn", "pgsql", or any plugin.
  std::string estimator = "qppnet";

  /// Feature snapshot (Section III). `snapshot_from_templates` selects FST
  /// (simplified templates) over FSO (original queries); `snapshot_scale` is
  /// the paper's template fill scale N; kOperatorTable granularity fits
  /// extra per-(operator, table) coefficients (the paper's fine-grained
  /// extension).
  bool use_snapshot = true;
  bool snapshot_from_templates = true;
  int snapshot_scale = 2;
  SnapshotGranularity snapshot_granularity = SnapshotGranularity::kOperator;

  /// Feature reduction (Section IV).
  bool use_reduction = true;
  ReductionConfig reduction;
  int pre_reduction_epochs = 12;  ///< provisional model training budget

  /// Final model training.
  TrainConfig train;

  /// Worker threads for snapshot collection, feature reduction, per-epoch
  /// eval and batched serving (unset/1 = serial; see util/thread_pool.h).
  /// Every parallel path partitions work statically and reduces in index
  /// order, so the fitted pipeline and its predictions are bit-identical
  /// for any setting — threads buy wall-clock, never different models.
  Parallelism parallelism;

  /// Micro-batching knobs for servers built via ServeAsync(): batch-full
  /// size, deadline-flush delay, flusher threads and the admission-control
  /// queue bound (see serve/async_server.h).
  AsyncServeConfig async_serve;

  uint64_t seed = 2024;
};

/// A fitted estimation pipeline. Construct with Fit(); every owned piece
/// (featurizers, snapshot store, model) lives exactly as long as the
/// pipeline, so there is no lifetime choreography for callers.
class Pipeline {
 public:
  /// Runs the full pipeline on a training corpus: compute snapshots, train
  /// a provisional model, reduce features, train the final estimator. The
  /// db/envs/templates pointers must outlive the pipeline. Analytical
  /// estimators ("pgsql") skip snapshot and reduction.
  static Result<std::unique_ptr<Pipeline>> Fit(
      Database* db, const std::vector<Environment>* envs,
      const std::vector<QueryTemplate>* templates, const PipelineConfig& config,
      const std::vector<PlanSample>& train);

  /// Predicted latency (ms) of one plan under one environment.
  Result<double> PredictMs(const PlanNode& plan, int env_id) const;

  /// Batched prediction, positionally aligned with `samples` and
  /// bit-identical to per-plan PredictMs. This is the serving hot path.
  Result<std::vector<double>> PredictBatch(
      const std::vector<PlanSample>& samples) const;

  /// Builds an async micro-batching front end over this pipeline's fitted
  /// estimator (config knobs: PipelineConfig::async_serve). Many caller
  /// threads Submit() single plans; the server coalesces them into
  /// micro-batches and flushes through the batched serving path on
  /// batch-full or deadline, with results bit-identical to PredictBatch.
  /// The server borrows the pipeline's model and worker pool, so it must
  /// be destroyed (or shut down) before the pipeline. `clock` is for tests
  /// (null = real time).
  std::unique_ptr<AsyncServer> ServeAsync(Clock* clock = nullptr) const;

  /// Hot-swappable variant: the returned server resolves the current model
  /// from `models` once per micro-batch, so LoadAndSwap
  /// (serve/model_swap.h) can replace the pipeline behind it with zero
  /// downtime. Static because the server deliberately outlives any single
  /// pipeline generation; `models` must outlive the server.
  static std::unique_ptr<AsyncServer> ServeAsync(const SwappableModel* models,
                                                 const AsyncServeConfig& config,
                                                 Clock* clock = nullptr);

  /// Serializes the fitted pipeline — fit fingerprint, config, snapshot
  /// store, reduction kept-set, model weights/optimizer state, stats — as a
  /// versioned binary artifact (core/artifact.h) published via temp-file →
  /// fsync → atomic rename, so a crash mid-save never corrupts a
  /// previously published artifact at `path`. `fs` is the I/O seam (null =
  /// the real file system; tests inject FaultInjectingFs).
  Status Save(const std::string& path, Fs* fs = nullptr) const;

  /// Restores a pipeline saved with Save() against live db/envs/templates.
  /// The artifact's fit fingerprint is validated first: the feature-schema
  /// hash recomputed from `db`'s catalog, the environment-id set, and the
  /// estimator name must all match (kFailedPrecondition otherwise), and
  /// damaged bytes fail with kDataLoss — hostile input never aborts.
  /// Model weights are rebuilt in place against a freshly constructed
  /// estimator, so Load → PredictBatch is bit-identical to the original
  /// in-memory pipeline. Loaded pipelines serve serially (no worker pool);
  /// runtime knobs like async_serve keep their defaults.
  static Result<std::unique_ptr<Pipeline>> Load(
      Database* db, const std::vector<Environment>* envs,
      const std::vector<QueryTemplate>* templates, const std::string& path,
      Fs* fs = nullptr);

  /// Human-readable description of the fitted chain: estimator, snapshot
  /// provenance and cost, reduction ratio, training stats.
  std::string Explain() const;

  /// "QCFE(qpp)", "QPPNet", "QCFE(mscn)", "MSCN", "PGSQL", ... depending on
  /// the estimator and which QCFE stages are enabled.
  std::string name() const;

  /// Computes snapshots for additional environments (new hardware) into the
  /// existing store: the transfer-learning entry point. Follow with
  /// Retrain() on labels from the new environments.
  ///
  /// Re-collecting an env id that is already cached is a snapshot-cache
  /// collision: the stale snapshot is invalidated by the refit (the new fit
  /// depends only on this call's arguments, never on cache history; a
  /// failed collection leaves the old snapshot intact) and the call returns
  /// kAlreadyExists naming the colliding id(s). The store is still
  /// extended/refit in that case — callers that re-collect deliberately
  /// should treat kAlreadyExists as success, as the in-repo transfer
  /// drivers do.
  /// `collection_ms` (optional) is *assigned* this call's simulated
  /// collection cost — assign semantics like every other out-param in this
  /// API; the pipeline-lifetime total lives in snapshot_collection_ms().
  Status ExtendSnapshots(const std::vector<Environment>& envs,
                         bool from_templates, int scale, uint64_t seed,
                         double* collection_ms = nullptr);

  /// Continues training the fitted estimator (learned models warm-start;
  /// this is how transfer reaches basis accuracy in a fraction of the
  /// epochs). On success the pipeline's own train_stats() merge with
  /// history — train_seconds accumulates and the retrain's loss/eval curves
  /// are appended with their epochs offset past the existing curve — so
  /// Explain() and Save() always describe the training the current weights
  /// actually went through. The fit-time drift baselines
  /// (env_baseline_qerror()) are refreshed for the environments present in
  /// `train`. `stats` (optional) receives just this retrain's stats.
  Status Retrain(const std::vector<PlanSample>& train,
                 const TrainConfig& config, TrainStats* stats = nullptr);

  // Introspection.
  const CostModel& model() const { return *model_; }
  const PipelineConfig& config() const { return config_; }
  const EstimatorInfo& estimator_info() const { return info_; }
  /// Featurizer the final model consumes (end of the chain).
  const OperatorFeaturizer* active_featurizer() const;
  const SnapshotFeaturizer* snapshot_featurizer() const {
    return snapshot_featurizer_.get();
  }
  const SnapshotStore* snapshot_store() const { return snapshot_store_.get(); }
  const ReductionResult& reduction() const { return reduction_; }
  const TrainStats& train_stats() const { return train_stats_; }
  const TrainStats& pre_train_stats() const { return pre_train_stats_; }
  double snapshot_collection_ms() const { return snapshot_collection_ms_; }
  size_t snapshot_num_queries() const { return snapshot_num_queries_; }
  size_t snapshot_num_templates() const { return snapshot_num_templates_; }
  /// The pipeline's worker pool (null when fitted with num_threads = 1).
  ThreadPool* thread_pool() const { return pool_.get(); }
  /// Per-environment mean q-error of the model on its own training corpus,
  /// computed at Fit time and refreshed by successful Retrain calls. This
  /// is the reference the online DriftDetector (src/adapt) compares live
  /// serving q-error against; it round-trips through Save/Load (artifact
  /// section kAdaptBaseline). Empty for corpora the batched predictor
  /// cannot score.
  const std::map<int, double>& env_baseline_qerror() const {
    return env_baseline_qerror_;
  }
  /// The world this pipeline was fitted against (same pointers handed to
  /// Fit/Load). Exposed so the adaptation loop can re-load artifacts via
  /// LoadAndSwap without the caller re-threading them.
  Database* database() const { return db_; }
  const std::vector<Environment>* environments() const { return envs_; }
  const std::vector<QueryTemplate>* query_templates() const {
    return templates_;
  }

 private:
  Pipeline() = default;

  Database* db_ = nullptr;
  const std::vector<Environment>* envs_ = nullptr;
  const std::vector<QueryTemplate>* templates_ = nullptr;
  PipelineConfig config_;
  EstimatorInfo info_;

  /// Declared before the model so destruction (reverse order) tears the
  /// model down while its non-owning pool pointer is still valid.
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<BaseFeaturizer> base_featurizer_;
  std::unique_ptr<SnapshotStore> snapshot_store_;
  std::unique_ptr<SnapshotFeaturizer> snapshot_featurizer_;
  std::unique_ptr<MaskedFeaturizer> masked_featurizer_;
  std::unique_ptr<CostModel> model_;

  double snapshot_collection_ms_ = 0.0;  ///< simulated label cost (Table V)
  size_t snapshot_num_queries_ = 0;
  size_t snapshot_num_templates_ = 0;
  ReductionResult reduction_;
  TrainStats pre_train_stats_;
  TrainStats train_stats_;
  std::map<int, double> env_baseline_qerror_;
};

}  // namespace qcfe

#endif  // QCFE_CORE_PIPELINE_H_
