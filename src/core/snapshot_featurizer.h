#ifndef QCFE_CORE_SNAPSHOT_FEATURIZER_H_
#define QCFE_CORE_SNAPSHOT_FEATURIZER_H_

/// \file snapshot_featurizer.h
/// Wraps a base featurizer and appends the feature snapshot of the query's
/// environment to every operator encoding — the paper's "QCFE" input side.
/// The snapshot dims are the only environment-dependent features, which is
/// exactly the gap they fill in the general feature engineering.

#include <array>

#include "core/feature_snapshot.h"
#include "featurize/featurizer.h"

namespace qcfe {

/// Featurizer = inner features ++ snapshot coefficients of (env, op type).
class SnapshotFeaturizer : public OperatorFeaturizer {
 public:
  /// `inner` and `store` must outlive this featurizer. Unknown environments
  /// contribute zero snapshot dims. With `fine_grained` set, scan operators
  /// use (op, table)-level coefficients when the snapshot fitted them
  /// (paper Section III discussion).
  SnapshotFeaturizer(const OperatorFeaturizer* inner,
                     const SnapshotStore* store, bool fine_grained = false);

  size_t dim(OpType op) const override;
  const FeatureSchema& schema(OpType op) const override;
  std::vector<double> Encode(const PlanNode& node, size_t depth,
                             int env_id) const override;

 private:
  const OperatorFeaturizer* inner_;
  const SnapshotStore* store_;
  bool fine_grained_;
  std::array<FeatureSchema, kNumOpTypes> schemas_;
};

}  // namespace qcfe

#endif  // QCFE_CORE_SNAPSHOT_FEATURIZER_H_
