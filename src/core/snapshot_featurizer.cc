#include "core/snapshot_featurizer.h"

namespace qcfe {

SnapshotFeaturizer::SnapshotFeaturizer(const OperatorFeaturizer* inner,
                                       const SnapshotStore* store,
                                       bool fine_grained)
    : inner_(inner), store_(store), fine_grained_(fine_grained) {
  for (OpType op : AllOpTypes()) {
    size_t oi = static_cast<size_t>(op);
    const FeatureSchema& base = inner_->schema(op);
    for (const auto& name : base.names()) schemas_[oi].Add(name);
    for (size_t c = 0; c < kSnapshotWidth; ++c) {
      schemas_[oi].Add("snapshot.c" + std::to_string(c));
    }
  }
}

size_t SnapshotFeaturizer::dim(OpType op) const {
  return inner_->dim(op) + kSnapshotWidth;
}

const FeatureSchema& SnapshotFeaturizer::schema(OpType op) const {
  return schemas_[static_cast<size_t>(op)];
}

std::vector<double> SnapshotFeaturizer::Encode(const PlanNode& node,
                                               size_t depth,
                                               int env_id) const {
  std::vector<double> x = inner_->Encode(node, depth, env_id);
  const FeatureSnapshot* snapshot = store_->Get(env_id);
  if (snapshot == nullptr) {
    x.insert(x.end(), kSnapshotWidth, 0.0);
    return x;
  }
  const OperatorSnapshot& os = fine_grained_
                                   ? snapshot->GetFine(node.op, node.table)
                                   : snapshot->Get(node.op);
  for (size_t c = 0; c < kSnapshotWidth; ++c) x.push_back(os.coeffs[c]);
  return x;
}

}  // namespace qcfe
