#ifndef QCFE_CORE_QCFE_H_
#define QCFE_CORE_QCFE_H_

/// \file qcfe.h
/// The QCFE pipeline (the paper's contribution, Figure 2a): build a feature
/// snapshot per environment (from original queries, FSO, or from simplified
/// templates, FST — Section III), append it to the operator features, run
/// difference-propagation feature reduction against a provisionally trained
/// model (Section IV), and train the final estimator on the reduced feature
/// set. The same builder with snapshot and reduction disabled produces the
/// plain QPPNet / MSCN baselines, so every Table IV column flows through one
/// code path.

#include <memory>
#include <string>

#include "core/feature_reduction.h"
#include "core/feature_snapshot.h"
#include "core/snapshot_featurizer.h"
#include "engine/database.h"
#include "models/cost_model.h"
#include "models/mscn.h"
#include "models/qppnet.h"
#include "sql/template.h"
#include "workload/collector.h"

namespace qcfe {

/// Which learned estimator QCFE wraps.
enum class EstimatorKind {
  kQppNet,
  kMscn,
};

/// Pipeline configuration.
struct QcfeConfig {
  EstimatorKind kind = EstimatorKind::kQppNet;

  /// Feature snapshot (Section III). `snapshot_from_templates` selects FST
  /// (simplified templates) over FSO (original queries); `snapshot_scale` is
  /// the paper's template fill scale N; kOperatorTable granularity fits
  /// extra per-(operator, table) coefficients (the paper's fine-grained
  /// extension).
  bool use_snapshot = true;
  bool snapshot_from_templates = true;
  int snapshot_scale = 2;
  SnapshotGranularity snapshot_granularity = SnapshotGranularity::kOperator;

  /// Feature reduction (Section IV).
  bool use_reduction = true;
  ReductionConfig reduction;
  int pre_reduction_epochs = 12;  ///< provisional model training budget

  /// Final model training.
  TrainConfig train;

  uint64_t seed = 2024;
};

/// A built estimator with its full feature-engineering chain (owning every
/// piece so lifetimes are safe) plus cost accounting for the experiments.
struct QcfeModel {
  std::unique_ptr<BaseFeaturizer> base_featurizer;
  std::unique_ptr<SnapshotStore> snapshot_store;
  std::unique_ptr<SnapshotFeaturizer> snapshot_featurizer;
  std::unique_ptr<MaskedFeaturizer> masked_featurizer;
  std::unique_ptr<CostModel> model;

  QcfeConfig config;
  double snapshot_collection_ms = 0.0;  ///< simulated label cost (Table V)
  size_t snapshot_num_queries = 0;
  size_t snapshot_num_templates = 0;
  ReductionResult reduction;
  TrainStats pre_train_stats;
  TrainStats train_stats;

  /// Featurizer the final model consumes.
  const OperatorFeaturizer* active_featurizer() const;

  /// "QCFE(qpp)", "QPPNet", "QCFE(mscn)" or "MSCN" depending on config.
  std::string name() const;

  Result<double> PredictMs(const PlanNode& plan, int env_id) const {
    return model->PredictMs(plan, env_id);
  }
};

/// Builds QCFE (or baseline) estimators against one database + environment
/// set + workload template set.
class QcfeBuilder {
 public:
  /// All pointers must outlive the builder and the built models.
  QcfeBuilder(Database* db, const std::vector<Environment>* envs,
              const std::vector<QueryTemplate>* templates)
      : db_(db), envs_(envs), templates_(templates) {}

  /// Runs the full pipeline on the training corpus.
  Result<std::unique_ptr<QcfeModel>> Build(
      const QcfeConfig& config, const std::vector<PlanSample>& train);

  /// Computes per-environment snapshots into `store` for `envs` (used both
  /// by Build and by the transfer experiment, which extends an existing
  /// model's store with snapshots for new-hardware environments).
  Status ComputeSnapshots(const std::vector<Environment>& envs,
                          bool from_templates, int scale, uint64_t seed,
                          SnapshotStore* store, double* collection_ms,
                          size_t* num_queries, size_t* num_templates,
                          SnapshotGranularity granularity =
                              SnapshotGranularity::kOperator);

 private:
  std::unique_ptr<CostModel> MakeModel(EstimatorKind kind,
                                       const OperatorFeaturizer* featurizer,
                                       uint64_t seed) const;

  Database* db_;
  const std::vector<Environment>* envs_;
  const std::vector<QueryTemplate>* templates_;
};

}  // namespace qcfe

#endif  // QCFE_CORE_QCFE_H_
