#ifndef QCFE_CORE_QCFE_H_
#define QCFE_CORE_QCFE_H_

/// \file qcfe.h
/// Snapshot construction for the QCFE pipeline (the paper's Section III):
/// build a feature snapshot per environment, either from original queries
/// (FSO) or from simplified templates (FST, Algorithm 1). The Pipeline
/// facade (core/pipeline.h) drives this during Fit() and when extending a
/// trained pipeline to new hardware; tests and the transfer experiments use
/// it directly.

#include <vector>

#include "core/feature_snapshot.h"
#include "engine/database.h"
#include "sql/template.h"
#include "util/env_config.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace qcfe {

/// Computes per-environment feature snapshots for one database + workload
/// template set.
class SnapshotBuilder {
 public:
  /// All pointers must outlive the builder.
  SnapshotBuilder(Database* db, const std::vector<QueryTemplate>* templates)
      : db_(db), templates_(templates) {}

  /// Computes per-environment snapshots into `store` for `envs`. FST
  /// (`from_templates`) parses the workload templates, emits simplified
  /// templates and fills them `scale` times; FSO instantiates the original
  /// templates `scale` times. The out-params report the simulated label
  /// cost and corpus size (Table V compares them).
  ///
  /// With a `pool`, the (environment, query) execution grid and the
  /// per-environment least-squares fits run across workers; results are
  /// reduced in environment order and bit-identical to the serial path.
  Status ComputeSnapshots(const std::vector<Environment>& envs,
                          bool from_templates, int scale, uint64_t seed,
                          SnapshotStore* store, double* collection_ms,
                          size_t* num_queries, size_t* num_templates,
                          SnapshotGranularity granularity =
                              SnapshotGranularity::kOperator,
                          ThreadPool* pool = nullptr);

 private:
  Database* db_;
  const std::vector<QueryTemplate>* templates_;
};

}  // namespace qcfe

#endif  // QCFE_CORE_QCFE_H_
