#ifndef QCFE_CORE_FEATURE_SNAPSHOT_H_
#define QCFE_CORE_FEATURE_SNAPSHOT_H_

/// \file feature_snapshot.h
/// The feature snapshot SF (paper Section III): per-operator cost
/// coefficients that summarise the influence of the "ignored variables"
/// (knobs, hardware, storage, OS) on query cost. Coefficients are estimated
/// by least squares against the logical cost formulas of paper Table I:
///
///   Seq Scan / Materialize / Aggregation /
///   Index Scan / Merge Join / Hash Join :  F = c0*n + c1
///   Sort                                :  F = c0*n*log(n) + c1
///   Nested Loop                         :  F = c0*n1*n2 + c1*n1 + c2*n2 + c3
///
/// One snapshot is fitted per database environment from labeled operator
/// observations (per-operator latencies of executed queries).

#include <array>
#include <map>
#include <vector>

#include "engine/plan.h"
#include "util/check.h"
#include "util/status.h"
#include "workload/collector.h"

namespace qcfe {

class ByteReader;
class ByteWriter;

/// Width of the padded per-operator coefficient vector (Nested Loop needs 4;
/// other operators zero-pad).
constexpr size_t kSnapshotWidth = 4;

/// Fitted coefficients of one operator type.
struct OperatorSnapshot {
  std::array<double, kSnapshotWidth> coeffs = {0.0, 0.0, 0.0, 0.0};
  size_t num_observations = 0;
};

/// One labeled operator observation (a node of an executed plan).
struct OperatorObservation {
  OpType op = OpType::kSeqScan;
  double n = 0.0;    ///< input cardinality (the formula's n / n1)
  double n2 = 0.0;   ///< second input (nested loop only)
  double ms = 0.0;   ///< observed operator latency
  std::string table; ///< scanned table (empty for non-scan operators)
};

/// Snapshot granularity (the paper's Section III discussion: operator-level
/// snapshots can be refined to operator-table level at higher collection
/// cost).
enum class SnapshotGranularity {
  kOperator,
  kOperatorTable,
};

/// A per-environment feature snapshot.
class FeatureSnapshot {
 public:
  /// Design-matrix row of the Table I formula for an operator type.
  /// Returns the number of active columns (2 or 4); inactive columns are 0.
  static size_t DesignRow(OpType op, double n, double n2,
                          std::array<double, kSnapshotWidth>* row);

  /// Fits one snapshot from operator observations via non-negative least
  /// squares (coefficients are physical times per unit of work).
  /// Operator types without observations keep zero coefficients.
  /// kOperatorTable additionally fits per-(operator, table) coefficients for
  /// scan operators with enough observations; lookups fall back to the
  /// operator level.
  static Result<FeatureSnapshot> Fit(
      const std::vector<OperatorObservation>& observations,
      SnapshotGranularity granularity = SnapshotGranularity::kOperator);

  /// Extracts observations from a labeled query set (every plan node).
  static std::vector<OperatorObservation> ObservationsFrom(
      const LabeledQuerySet& set);

  const OperatorSnapshot& Get(OpType op) const {
    return per_op_[static_cast<size_t>(op)];
  }

  /// Fine-grained lookup: the (op, table) coefficients when fitted, else the
  /// operator-level coefficients.
  const OperatorSnapshot& GetFine(OpType op, const std::string& table) const;

  /// True if a dedicated (op, table) fit exists.
  bool HasFine(OpType op, const std::string& table) const;

  /// Predicted latency of one operator under this snapshot (for tests and
  /// snapshot-quality diagnostics).
  double PredictMs(OpType op, double n, double n2) const;

  /// The granularity this snapshot was fitted at (its fit fingerprint; the
  /// SnapshotStore enforces that one store never mixes granularities).
  SnapshotGranularity granularity() const { return granularity_; }

  /// Binary form for model artifacts (core/artifact.h): granularity,
  /// per-operator coefficients, and the fine (op, table) map.
  void SaveBinary(ByteWriter* w) const;
  /// Decodes a snapshot written by SaveBinary. Hostile bytes fail with
  /// kDataLoss (including an out-of-range granularity byte) — never the
  /// QCFE_CHECK abort paths of the fitting API.
  static Status LoadBinary(ByteReader* r, FeatureSnapshot* out);

 private:
  std::array<OperatorSnapshot, kNumOpTypes> per_op_;
  /// Keyed "op_index|table"; populated only at kOperatorTable granularity.
  std::map<std::string, OperatorSnapshot> fine_;
  SnapshotGranularity granularity_ = SnapshotGranularity::kOperator;
};

/// Snapshots for all environments, keyed by environment id.
class SnapshotStore {
 public:
  /// Fingerprint/id consistency contract: every snapshot in one store must
  /// be fitted at the same granularity. The snapshot featurizer assumes a
  /// uniform store — a kOperator snapshot answering a kOperatorTable lookup
  /// would silently fall back to coarse coefficients for some environments
  /// and not others, which is exactly the kind of quiet degradation this
  /// layer exists to make loud.
  void Put(int env_id, FeatureSnapshot snapshot) {
    QCFE_CHECK(snapshots_.empty() ||
                   snapshot.granularity() ==
                       snapshots_.begin()->second.granularity(),
               "SnapshotStore must not mix snapshot granularities");
    snapshots_[env_id] = std::move(snapshot);
  }
  /// nullptr when the environment is unknown.
  const FeatureSnapshot* Get(int env_id) const {
    auto it = snapshots_.find(env_id);
    return it == snapshots_.end() ? nullptr : &it->second;
  }
  bool Contains(int env_id) const {
    return snapshots_.find(env_id) != snapshots_.end();
  }
  size_t size() const { return snapshots_.size(); }

  /// Environment ids present, in ascending order (fingerprint material for
  /// artifacts: a loaded store must cover exactly the serving env set).
  std::vector<int> EnvIds() const;

  /// Binary form for model artifacts (core/artifact.h).
  void SaveBinary(ByteWriter* w) const;
  /// Decodes a store written by SaveBinary. Mixed granularities — which a
  /// legitimate save can never produce — fail with kDataLoss *before* any
  /// Put, so corrupted bytes can not trip the uniformity QCFE_CHECK.
  static Status LoadBinary(ByteReader* r, SnapshotStore* out);

 private:
  std::map<int, FeatureSnapshot> snapshots_;
};

}  // namespace qcfe

#endif  // QCFE_CORE_FEATURE_SNAPSHOT_H_
