#ifndef QCFE_HARNESS_CONTEXT_H_
#define QCFE_HARNESS_CONTEXT_H_

/// \file context.h
/// Shared experiment setup: builds a benchmark database, samples the
/// environment grid, and collects the labeled query corpus that all
/// table/figure reproductions slice. Parameters follow the paper at
/// QCFE_SCALE=full and a CI-friendly reduction by default.

#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "engine/database.h"
#include "models/cost_model.h"
#include "util/env_config.h"
#include "workload/benchmark.h"
#include "workload/collector.h"

namespace qcfe {

/// Experiment-grid parameters for one benchmark.
struct HarnessOptions {
  std::string benchmark;     ///< "tpch" | "sysbench" | "joblight"
  double scale_factor = 0.1; ///< data scale
  int num_envs = 5;          ///< knob configurations (paper: 20)
  size_t corpus_size = 1000; ///< labeled queries at the largest scale
  std::vector<size_t> scales;  ///< Table IV corpus sizes
  int qpp_epochs = 15;       ///< QPPNet training epochs (paper: 100-800)
  int mscn_epochs = 30;      ///< MSCN training epochs
  uint64_t seed = 7;
  /// Worker threads for corpus collection and every pipeline fitted from
  /// this context (1 = serial, 0 = hardware concurrency). Results are
  /// bit-identical across settings; see util/thread_pool.h.
  int num_threads = 1;
};

/// Paper-faithful (full) or reduced (quick) options for a benchmark.
HarnessOptions OptionsFor(const std::string& benchmark, RunScale run_scale);

/// A fully prepared benchmark: database, environments, templates, corpus.
struct BenchmarkContext {
  HarnessOptions options;
  std::unique_ptr<BenchmarkWorkload> workload;
  std::unique_ptr<Database> db;
  std::vector<Environment> envs;
  std::vector<QueryTemplate> templates;
  LabeledQuerySet corpus;
  /// Shared worker pool (null when options.num_threads resolves to 1).
  std::unique_ptr<ThreadPool> pool;

  /// Builds everything (database, ANALYZE, environments, corpus).
  static Result<std::unique_ptr<BenchmarkContext>> Create(
      const HarnessOptions& options);

  /// First `n` corpus entries as PlanSamples, split 80/20.
  void Split(size_t n, std::vector<PlanSample>* train,
             std::vector<PlanSample>* test) const;

  /// Fits a Pipeline against this context's database/environments/templates.
  Result<std::unique_ptr<Pipeline>> FitPipeline(
      const PipelineConfig& config,
      const std::vector<PlanSample>& train) const;
};

}  // namespace qcfe

#endif  // QCFE_HARNESS_CONTEXT_H_
