#include "harness/context.h"

namespace qcfe {

HarnessOptions OptionsFor(const std::string& benchmark, RunScale run_scale) {
  HarnessOptions opt;
  opt.benchmark = benchmark;
  bool full = run_scale == RunScale::kFull;
  opt.num_envs = full ? 20 : 5;
  if (full) {
    opt.scales = {2000, 4000, 6000, 8000, 10000};  // paper Table IV
    opt.corpus_size = 10000;
  } else {
    opt.scales = {200, 400, 600, 800, 1000};
    opt.corpus_size = 1000;
  }
  if (benchmark == "tpch") {
    opt.scale_factor = full ? 0.5 : 0.08;
    opt.qpp_epochs = full ? 60 : 15;   // paper: 400 iterations
    opt.mscn_epochs = full ? 80 : 30;
    opt.seed = 1001;
  } else if (benchmark == "sysbench") {
    opt.scale_factor = full ? 0.5 : 0.06;
    opt.qpp_epochs = full ? 40 : 12;   // paper: 100 iterations
    opt.mscn_epochs = full ? 60 : 25;
    opt.seed = 2002;
  } else {  // joblight
    opt.scale_factor = full ? 0.4 : 0.05;
    opt.qpp_epochs = full ? 80 : 24;   // paper: 800 iterations
    opt.mscn_epochs = full ? 100 : 40;
    opt.seed = 3003;
  }
  return opt;
}

Result<std::unique_ptr<BenchmarkContext>> BenchmarkContext::Create(
    const HarnessOptions& options) {
  auto ctx = std::make_unique<BenchmarkContext>();
  ctx->options = options;
  Result<std::unique_ptr<BenchmarkWorkload>> workload =
      MakeBenchmark(options.benchmark);
  if (!workload.ok()) return workload.status();
  ctx->workload = std::move(workload.value());
  ctx->db = ctx->workload->BuildDatabase(options.scale_factor, options.seed);
  ctx->envs = EnvironmentSampler::Sample(options.num_envs,
                                         HardwareProfile::H1(),
                                         options.seed * 31 + 5);
  ctx->templates = ctx->workload->Templates();

  if (ResolveNumThreads(options.num_threads) > 1) {
    ctx->pool = std::make_unique<ThreadPool>(options.num_threads);
  }
  QueryCollector collector(ctx->db.get(), &ctx->envs);
  Result<LabeledQuerySet> corpus = collector.Collect(
      ctx->templates, options.corpus_size, options.seed * 13 + 3,
      ctx->pool.get());
  if (!corpus.ok()) return corpus.status();
  ctx->corpus = std::move(corpus.value());
  return ctx;
}

Result<std::unique_ptr<Pipeline>> BenchmarkContext::FitPipeline(
    const PipelineConfig& config, const std::vector<PlanSample>& train) const {
  // Thread the context's --threads setting into the pipeline unless the
  // caller configured parallelism explicitly (an explicit 1 stays serial).
  PipelineConfig cfg = config;
  if (!cfg.parallelism.num_threads.has_value()) {
    cfg.parallelism.num_threads = options.num_threads;
  }
  return Pipeline::Fit(db.get(), &envs, &templates, cfg, train);
}

void BenchmarkContext::Split(size_t n, std::vector<PlanSample>* train,
                             std::vector<PlanSample>* test) const {
  n = std::min(n, corpus.queries.size());
  TrainTestSplit split = SplitIndices(n, 0.8, options.seed * 7 + 1);
  train->clear();
  test->clear();
  for (size_t i : split.train) {
    const LabeledQuery& q = corpus.queries[i];
    train->push_back({q.plan.get(), q.env_id, q.total_ms});
  }
  for (size_t i : split.test) {
    const LabeledQuery& q = corpus.queries[i];
    test->push_back({q.plan.get(), q.env_id, q.total_ms});
  }
}

}  // namespace qcfe
