#ifndef QCFE_HARNESS_EVALUATE_H_
#define QCFE_HARNESS_EVALUATE_H_

/// \file evaluate.h
/// Model evaluation + the Table IV "cell" runner shared by several benches:
/// one (benchmark, model, scale) cell = fit a Pipeline for the named
/// estimator, evaluate pearson / mean q-error / quantiles, and time
/// training and (batched) inference.

#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "harness/context.h"
#include "util/stats.h"

namespace qcfe {

/// Evaluation outcome on a test set.
struct EvalResult {
  MetricSummary summary;
  double inference_seconds = 0.0;
};

/// Predicts every sample through the batched serving path and summarises;
/// times the prediction call. Falls back to the per-plan loop (scoring
/// failed samples as 0) if the batch as a whole fails. Uses the model's
/// attached thread pool, if any.
EvalResult EvaluateModel(const CostModel& model,
                         const std::vector<PlanSample>& test);

/// Same, serving across a dedicated pool sized by `parallelism` (created
/// for the call; metrics are bit-identical to the serial overload, only
/// inference_seconds changes).
EvalResult EvaluateModel(const CostModel& model,
                         const std::vector<PlanSample>& test,
                         const Parallelism& parallelism);

/// Same, through a pipeline facade (serves across the pipeline's pool).
EvalResult EvaluateModel(const Pipeline& pipeline,
                         const std::vector<PlanSample>& test);

/// Which estimator variant a Table IV row uses. `estimator` is an
/// EstimatorRegistry name; rows for estimators that are not registered fail
/// at RunCell time with NotFound.
struct CellConfig {
  std::string display_name;  ///< "PGSQL", "MSCN", "QCFE(qpp)", ...
  std::string estimator;     ///< registry name: "pgsql", "mscn", "qppnet"
  bool qcfe = false;         ///< snapshot + reduction on
  int epochs = 15;
  int eval_every = 0;  ///< forward to TrainConfig for convergence traces
};

/// One trained+evaluated cell.
struct CellResult {
  std::string model_name;
  EvalResult eval;
  double train_seconds = 0.0;
  /// The fitted pipeline; kept alive so benches can inspect reduction
  /// results and reuse models.
  std::unique_ptr<Pipeline> pipeline;
  TrainStats train_stats;
};

/// The five Table IV rows for a benchmark.
std::vector<CellConfig> TableIvModels(const HarnessOptions& options);

/// Trains and evaluates one cell on the given split.
Result<CellResult> RunCell(BenchmarkContext* ctx, const CellConfig& cell,
                           const std::vector<PlanSample>& train,
                           const std::vector<PlanSample>& test);

}  // namespace qcfe

#endif  // QCFE_HARNESS_EVALUATE_H_
