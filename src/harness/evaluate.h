#ifndef QCFE_HARNESS_EVALUATE_H_
#define QCFE_HARNESS_EVALUATE_H_

/// \file evaluate.h
/// Model evaluation + the Table IV "cell" runner shared by several benches:
/// one (benchmark, model, scale) cell = train the estimator, evaluate
/// pearson / mean q-error / quantiles, and time training and inference.

#include <string>
#include <vector>

#include "harness/context.h"
#include "models/pg_cost_model.h"
#include "util/stats.h"

namespace qcfe {

/// Evaluation outcome on a test set.
struct EvalResult {
  MetricSummary summary;
  double inference_seconds = 0.0;
};

/// Predicts every sample and summarises; times the prediction loop.
EvalResult EvaluateModel(const CostModel& model,
                         const std::vector<PlanSample>& test);

/// Which estimator variant a Table IV row uses.
struct CellConfig {
  std::string display_name;  ///< "PGSQL", "MSCN", "QCFE(qpp)", ...
  bool is_pg = false;
  EstimatorKind kind = EstimatorKind::kQppNet;
  bool qcfe = false;  ///< snapshot + reduction on
  int epochs = 15;
  int eval_every = 0;  ///< forward to TrainConfig for convergence traces
};

/// One trained+evaluated cell.
struct CellResult {
  std::string model_name;
  EvalResult eval;
  double train_seconds = 0.0;
  /// The built pipeline (null for PGSQL); kept alive so benches can inspect
  /// reduction results and reuse models.
  std::unique_ptr<QcfeModel> built;
  TrainStats train_stats;
};

/// The five Table IV rows for a benchmark.
std::vector<CellConfig> TableIvModels(const HarnessOptions& options);

/// Trains and evaluates one cell on the given split.
Result<CellResult> RunCell(BenchmarkContext* ctx, const CellConfig& cell,
                           const std::vector<PlanSample>& train,
                           const std::vector<PlanSample>& test);

}  // namespace qcfe

#endif  // QCFE_HARNESS_EVALUATE_H_
