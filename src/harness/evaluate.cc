#include "harness/evaluate.h"

namespace qcfe {

EvalResult EvaluateModel(const CostModel& model,
                         const std::vector<PlanSample>& test) {
  EvalResult result;
  std::vector<double> actual, predicted;
  actual.reserve(test.size());
  predicted.reserve(test.size());
  WallTimer timer;
  for (const auto& s : test) {
    Result<double> p = model.PredictMs(*s.plan, s.env_id);
    actual.push_back(s.label_ms);
    predicted.push_back(p.ok() ? *p : 0.0);
  }
  result.inference_seconds = timer.Seconds();
  result.summary = Summarize(actual, predicted);
  return result;
}

std::vector<CellConfig> TableIvModels(const HarnessOptions& options) {
  std::vector<CellConfig> cells;
  cells.push_back({"PGSQL", true, EstimatorKind::kQppNet, false, 0, 0});
  cells.push_back({"QCFE(mscn)", false, EstimatorKind::kMscn, true,
                   options.mscn_epochs, 0});
  cells.push_back({"QCFE(qpp)", false, EstimatorKind::kQppNet, true,
                   options.qpp_epochs, 0});
  cells.push_back({"MSCN", false, EstimatorKind::kMscn, false,
                   options.mscn_epochs, 0});
  cells.push_back({"QPPNet", false, EstimatorKind::kQppNet, false,
                   options.qpp_epochs, 0});
  return cells;
}

Result<CellResult> RunCell(BenchmarkContext* ctx, const CellConfig& cell,
                           const std::vector<PlanSample>& train,
                           const std::vector<PlanSample>& test) {
  CellResult result;
  result.model_name = cell.display_name;
  if (cell.is_pg) {
    PgCostModel pg;
    TrainStats stats;
    QCFE_RETURN_IF_ERROR(pg.Train(train, TrainConfig{}, &stats));
    result.eval = EvaluateModel(pg, test);
    result.train_seconds = stats.train_seconds;
    return result;
  }

  QcfeBuilder builder(ctx->db.get(), &ctx->envs, &ctx->templates);
  QcfeConfig cfg;
  cfg.kind = cell.kind;
  cfg.use_snapshot = cell.qcfe;
  cfg.use_reduction = cell.qcfe;
  cfg.snapshot_from_templates = true;  // FST: the paper's efficient default
  cfg.snapshot_scale = 2;
  cfg.pre_reduction_epochs = std::max(8, cell.epochs / 2);
  cfg.train.epochs = cell.epochs;
  cfg.train.eval_every = cell.eval_every;
  if (cell.eval_every > 0) cfg.train.eval_set = test;
  cfg.seed = ctx->options.seed * 97 + static_cast<uint64_t>(cell.kind) * 7 +
             (cell.qcfe ? 3 : 0);

  Result<std::unique_ptr<QcfeModel>> built = builder.Build(cfg, train);
  if (!built.ok()) return built.status();
  result.built = std::move(built.value());
  result.eval = EvaluateModel(*result.built->model, test);
  result.train_seconds = result.built->train_stats.train_seconds;
  result.train_stats = result.built->train_stats;
  return result;
}

}  // namespace qcfe
