#include "harness/evaluate.h"

namespace qcfe {

namespace {

EvalResult EvaluateWithPool(const CostModel& model,
                            const std::vector<PlanSample>& test,
                            ThreadPool* pool) {
  EvalResult result;
  std::vector<double> actual;
  actual.reserve(test.size());
  for (const auto& s : test) actual.push_back(s.label_ms);

  std::vector<double> predicted;
  WallTimer timer;
  Result<std::vector<double>> batch = model.PredictBatchMs(test, pool);
  if (batch.ok()) {
    predicted = std::move(batch.value());
  } else {
    // Whole-batch failure (e.g. an untrained model): fall back to the
    // per-plan loop and score unpredictable samples as 0.
    predicted.reserve(test.size());
    for (const auto& s : test) {
      Result<double> p = model.PredictMs(*s.plan, s.env_id);
      predicted.push_back(p.ok() ? *p : 0.0);
    }
  }
  result.inference_seconds = timer.Seconds();
  result.summary = Summarize(actual, predicted);
  return result;
}

}  // namespace

EvalResult EvaluateModel(const CostModel& model,
                         const std::vector<PlanSample>& test) {
  return EvaluateWithPool(model, test, model.thread_pool());
}

EvalResult EvaluateModel(const CostModel& model,
                         const std::vector<PlanSample>& test,
                         const Parallelism& parallelism) {
  int requested = parallelism.num_threads.value_or(1);
  if (ResolveNumThreads(requested) <= 1) {
    return EvaluateWithPool(model, test, nullptr);
  }
  ThreadPool pool(requested);
  return EvaluateWithPool(model, test, &pool);
}

EvalResult EvaluateModel(const Pipeline& pipeline,
                         const std::vector<PlanSample>& test) {
  return EvaluateWithPool(pipeline.model(), test, pipeline.thread_pool());
}

std::vector<CellConfig> TableIvModels(const HarnessOptions& options) {
  std::vector<CellConfig> cells;
  cells.push_back({"PGSQL", "pgsql", false, 0, 0});
  cells.push_back({"QCFE(mscn)", "mscn", true, options.mscn_epochs, 0});
  cells.push_back({"QCFE(qpp)", "qppnet", true, options.qpp_epochs, 0});
  cells.push_back({"MSCN", "mscn", false, options.mscn_epochs, 0});
  cells.push_back({"QPPNet", "qppnet", false, options.qpp_epochs, 0});
  return cells;
}

Result<CellResult> RunCell(BenchmarkContext* ctx, const CellConfig& cell,
                           const std::vector<PlanSample>& train,
                           const std::vector<PlanSample>& test) {
  CellResult result;
  result.model_name = cell.display_name;

  PipelineConfig cfg;
  cfg.estimator = cell.estimator;
  cfg.use_snapshot = cell.qcfe;
  cfg.use_reduction = cell.qcfe;
  cfg.snapshot_from_templates = true;  // FST: the paper's efficient default
  cfg.snapshot_scale = 2;
  cfg.pre_reduction_epochs = std::max(8, cell.epochs / 2);
  cfg.train.epochs = cell.epochs;
  cfg.train.eval_every = cell.eval_every;
  if (cell.eval_every > 0) cfg.train.eval_set = test;
  // Seed layout matches the pre-registry enum encoding (qppnet 0, mscn 1)
  // so cells reproduce the same models as earlier revisions.
  uint64_t kind_offset = cell.estimator == "mscn" ? 7 : 0;
  cfg.seed = ctx->options.seed * 97 + kind_offset + (cell.qcfe ? 3 : 0);

  Result<std::unique_ptr<Pipeline>> pipeline = ctx->FitPipeline(cfg, train);
  if (!pipeline.ok()) return pipeline.status();
  result.pipeline = std::move(pipeline.value());
  result.eval = EvaluateModel(*result.pipeline, test);
  result.train_seconds = result.pipeline->train_stats().train_seconds;
  result.train_stats = result.pipeline->train_stats();
  return result;
}

}  // namespace qcfe
