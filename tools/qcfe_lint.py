#!/usr/bin/env python3
"""qcfe_lint: QCFE's determinism and contract lint.

A fast, dependency-free source scanner that enforces the project's
determinism invariants as named, suppressible rules. The repo's
bit-identical-parallelism guarantee (see README "Threading model" and
"Kernel design") only holds if all randomness flows through util/rng.h
(Rng::Split sub-streams), all time flows through util/clock.h (injectable
Clock), and no reduction iterates a hash container in implementation-
defined order. Runtime parity tests catch violations after the fact; this
lint catches them at review time, in milliseconds.

Usage:
    tools/qcfe_lint.py                  # lint the default tree roots
    tools/qcfe_lint.py src/foo.cc ...   # lint specific files or dirs
    tools/qcfe_lint.py --self-test      # corpus expectations + clean tree
    tools/qcfe_lint.py --list-rules     # print the rules table

Exit status: 0 = clean, 1 = findings (or self-test mismatch), 2 = usage.

Suppression: append `// qcfe-lint: allow(<rule>)` to the offending line,
or put it alone on the line directly above. Several rules may be listed:
`allow(no-naked-new, no-raw-thread)`. Suppressions are deliberate and
greppable; every one should carry a nearby comment saying why.

Self-test corpus: tools/lint_testdata/*.cc files declare their expected
findings in-line with `// expect-lint: <rule>` markers; --self-test
verifies each marked line is flagged with exactly that rule, that no
unmarked line is flagged, and that the real tree is clean.
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_ROOTS = ("src", "tests", "bench", "examples")
SOURCE_EXTENSIONS = (".cc", ".h", ".cpp", ".hpp")

ALLOW_RE = re.compile(r"qcfe-lint:\s*allow\(([^)]*)\)")
EXPECT_RE = re.compile(r"//\s*expect-lint:\s*([\w-]+)")


def _strip_code(text):
    """Strips comments and string/char literals, preserving line structure.

    Determinism tokens inside comments ("a new queue head", "steady_clock
    semantics") must not trip rules, so rules match on stripped lines while
    suppression/annotation logic reads the raw ones.
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            if c == "\n":
                out.append(c)
        elif state == "string":
            if c == "\\":
                i += 2
                continue
            if c == '"':
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated (macro line continuation etc.)
                state = "code"
                out.append(c)
        elif state == "char":
            if c == "\\":
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append(c)
            elif c == "\n":
                state = "code"
                out.append(c)
        i += 1
    return "".join(out)


class Rule:
    """One named lint rule over (stripped line, raw line) pairs."""

    def __init__(self, name, summary, patterns, dirs=None, exempt_files=(),
                 fix_hint=""):
        self.name = name
        self.summary = summary
        self.patterns = [re.compile(p) for p in patterns]
        self.dirs = dirs  # None = whole tree; else path-prefix allowlist
        self.exempt_files = exempt_files
        self.fix_hint = fix_hint

    def applies_to(self, rel_path):
        rel = rel_path.replace(os.sep, "/")
        if any(rel.startswith(e) for e in self.exempt_files):
            return False
        if self.dirs is None:
            return True
        return any(rel.startswith(d) for d in self.dirs)

    def check_line(self, stripped, raw):
        """Returns True when the line violates this rule."""
        return any(p.search(stripped) for p in self.patterns)


class SleepRule(Rule):
    """Sleeps in tests/ are allowed only with an explicit NOLINT.

    The PR-5 concurrency suite is sleep-free by construction (FakeClock
    drives every deadline); a sleep reintroduced into tests/ is either a
    flake waiting to happen or a disguised ordering assumption.
    """

    def check_line(self, stripped, raw):
        if not super().check_line(stripped, raw):
            return False
        return "NOLINT" not in raw


class NakedNewRule(Rule):
    """new/delete outside placement-controlled code.

    `unique_ptr<T>(new T)` is tolerated: ownership is captured in the same
    expression, and it is the only way to heap-construct a class whose
    constructor is private to a factory (Pipeline, the workload builders).
    """

    SMART_NEW_RE = re.compile(r"(unique_ptr|shared_ptr)\s*<[^;]*>\s*\(\s*new\b")

    def check_line(self, stripped, raw):
        if not super().check_line(stripped, raw):
            return False
        if self.SMART_NEW_RE.search(stripped) and "delete" not in stripped:
            return False
        return True


class StatusDiscardRule(Rule):
    """`(void)` on a call expression must carry a reason comment.

    [[nodiscard]] Status makes silent drops a compiler warning; the
    `(void)` escape hatch stays honest only if each use says *why* the
    failure is ignorable — same line or the line above.
    """

    CALL_RE = re.compile(r"\(void\)\s*[\w:.\->]*\w\s*\(")

    def check_line(self, stripped, raw, prev_raw=""):
        if not self.CALL_RE.search(stripped):
            return False
        for text in (raw, prev_raw):
            pos = text.find("//")
            if pos < 0:
                continue
            comment = text[pos + 2:].strip()
            # expect-lint markers are corpus bookkeeping, not reasons.
            if comment and not comment.startswith("expect-lint:"):
                return False
        return True


RULES = [
    Rule(
        "no-raw-rand",
        "std::rand/srand/random_device are nondeterministic or "
        "implementation-defined; all randomness flows through Rng "
        "(util/rng.h) and per-task Rng::Split sub-streams",
        [r"\bstd::s?rand\s*\(", r"(?<![\w:.])s?rand\s*\(",
         r"\bstd::random_device\b", r"\bstd::mt19937(_64)?\b"],
        exempt_files=("src/util/rng.",),
        fix_hint="seed an Rng and pass it (or Split a sub-stream)",
    ),
    Rule(
        "no-wall-clock",
        "direct chrono/system clocks bypass the injectable Clock, making "
        "timing behaviour untestable and results machine-dependent; all "
        "time flows through Clock (util/clock.h)",
        [r"\bstd::chrono::(system_clock|steady_clock|high_resolution_clock)\b",
         r"(?<!_)\b(system_clock|steady_clock|high_resolution_clock)::",
         r"(?<![\w.:])time\s*\(\s*(nullptr|NULL|0)\s*\)",
         r"\bgettimeofday\s*\(", r"\bclock_gettime\s*\("],
        exempt_files=("src/util/clock.", "src/util/rng."),
        fix_hint="take a Clock* (Clock::Real() in production, FakeClock in "
                 "tests)",
    ),
    Rule(
        "no-unordered-containers",
        "iteration order of unordered_map/unordered_set is implementation-"
        "defined, so any reduction over one breaks bit-parity; the "
        "determinism-critical layers use std::map / sorted vectors "
        "(over-approximated: the containers are banned outright in "
        "src/core, src/models, src/nn)",
        [r"\bunordered_(map|set|multimap|multiset)\b"],
        dirs=("src/core/", "src/models/", "src/nn/"),
        fix_hint="use std::map, std::set, or a sorted vector",
    ),
    NakedNewRule(
        "no-naked-new",
        "naked new/delete outside placement-controlled code leaks on every "
        "early return; ownership is expressed with unique_ptr/make_unique "
        "(sole exception: `unique_ptr<T>(new T)` for private constructors, "
        "where ownership is captured in the same expression)",
        [r"(?<!_)\bnew\b(?!\s*\()", r"\bdelete\b(\s*\[\s*\])?\s*[\w(*]"],
        dirs=("src/",),
        fix_hint="use std::make_unique / std::make_shared",
    ),
    Rule(
        "no-raw-thread",
        "raw std::thread/std::async outside the concurrency layer escapes "
        "the deterministic partitioning and exception propagation of "
        "util/thread_pool (and the clock-injected flushers of "
        "serve/async_server)",
        [r"\bstd::thread\b", r"\bstd::jthread\b", r"\bstd::async\b",
         r"\bpthread_create\s*\("],
        dirs=("src/",),
        # thread_pool.h is pimpl-clean, so only its .cc owns raw threads;
        # sync.* reads std::thread::id for debug owner tracking; the
        # adaptation controller owns its single background retrain worker
        # (woken by CondVar, joined in Stop) like async_server owns its
        # flushers.
        exempt_files=("src/util/thread_pool.cc", "src/serve/async_server.",
                      "src/util/sync.", "src/adapt/adaptation_controller."),
        fix_hint="use ThreadPool / ParallelFor, or route through AsyncServer",
    ),
    Rule(
        "no-raw-mutex",
        "raw standard-library locking primitives bypass the annotated "
        "sync layer (util/sync.h): qcfe::Mutex/SharedMutex/CondVar carry "
        "the clang thread-safety capability annotations and the debug "
        "lock-rank checker, so a raw std::mutex is invisible to both "
        "-Werror=thread-safety and the rank discipline",
        [r"\bstd::(recursive_|timed_|recursive_timed_|shared_|"
         r"shared_timed_)?mutex\b",
         r"\bstd::condition_variable(_any)?\b",
         r"\bstd::(lock_guard|unique_lock|scoped_lock|shared_lock)\b"],
        exempt_files=("src/util/sync.",),
        fix_hint="use qcfe::Mutex/SharedMutex + MutexLock/ReaderMutexLock/"
                 "WriterMutexLock and CondVar from util/sync.h",
    ),
    Rule(
        "no-raw-file-io",
        "direct fstream/fopen bypasses the Fs seam (util/fs.h): artifact "
        "I/O must be fault-injectable (FaultInjectingFs) and crash-safe "
        "(AtomicWriteFile's temp-file -> fsync -> rename publish), which "
        "only holds if every byte goes through Fs",
        [r"#\s*include\s*<\s*fstream\s*>",
         r"\bstd::(basic_)?[io]?fstream\b",
         r"(?<![\w:])[io]fstream\b",
         r"\bf(re|d)?open\s*\("],
        exempt_files=("src/util/fs.",),
        fix_hint="route bytes through Fs (util/fs.h): ReadFile, "
                 "NewWritableFile, or AtomicWriteFile",
    ),
    SleepRule(
        "no-sleep-in-tests",
        "the test suite is sleep-free by construction (FakeClock drives "
        "every deadline); a sleep is either a flake or a disguised "
        "ordering assumption — NOLINT it only with a justification",
        [r"\bsleep_(for|until)\s*\(", r"(?<![\w:])u?sleep\s*\("],
        dirs=("tests/",),
        fix_hint="drive time with FakeClock::Advance",
    ),
    Rule(
        "no-raw-intrinsics",
        "vendor SIMD intrinsics outside the kernel tier TUs fragment the "
        "ISA dispatch seam: every vector instruction belongs in "
        "src/nn/kernels_simd_*.cc behind the KernelIsa runtime-detection "
        "tables, where the per-element determinism contract and the "
        "parity gates (kernels_test, bench_micro --smoke) cover it",
        [r"#\s*include\s*<\s*(immintrin|x86intrin|emmintrin|xmmintrin|"
         r"avxintrin|arm_neon|arm_sve)\.h\s*>",
         r"\b_mm\d*_\w+\s*\(", r"\b__m(64|128|256|512)[dih]*\b",
         r"\bv(ld|st|fma|mla|add|sub|mul|div|sqrt|abs|neg|max|min|get|set|"
         r"dup|mov|cvt|rnd|ext|zip|pad)\w*q?_[fsu](8|16|32|64)\b",
         r"\b(float|int|uint|poly)(8|16|32|64)x\d+(x\d+)?_t\b"],
        exempt_files=("src/nn/kernels_simd_",),
        fix_hint="add the vector path to the matching kernels_simd_*.cc "
                 "tier (or extend the KernelTable with a new slot)",
    ),
    StatusDiscardRule(
        "unannotated-status-discard",
        "a `(void)` cast on a call silently swallows its Status/Result; "
        "each one needs a same-line or preceding-line comment saying why "
        "the failure is ignorable (or QCFE_CHECK_OK to make it loud)",
        [],  # custom matcher
        fix_hint="propagate the Status, QCFE_CHECK_OK it, or comment the "
                 "(void)",
    ),
]


class Finding:
    def __init__(self, path, line_no, rule, line_text):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.line_text = line_text

    def __str__(self):
        return (f"{self.path}:{self.line_no}: [{self.rule.name}] "
                f"{self.line_text.strip()}\n"
                f"    rule: {self.rule.summary}\n"
                f"    fix:  {self.rule.fix_hint}; or append "
                f"`// qcfe-lint: allow({self.rule.name})` with a reason")


def _allowed_rules(raw_line):
    m = ALLOW_RE.search(raw_line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",") if r.strip()}


def lint_file(path, rel_path):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        print(f"qcfe_lint: cannot read {path}: {e}", file=sys.stderr)
        return []
    raw_lines = text.splitlines()
    stripped_lines = _strip_code(text).splitlines()
    # The stripper preserves newlines, so the two views stay line-aligned.
    findings = []
    active = [r for r in RULES if r.applies_to(rel_path)]
    if not active:
        return findings
    for i, raw in enumerate(raw_lines):
        stripped = stripped_lines[i] if i < len(stripped_lines) else ""
        prev_raw = raw_lines[i - 1] if i > 0 else ""
        allowed = _allowed_rules(raw) | _allowed_rules(prev_raw)
        for rule in active:
            if isinstance(rule, StatusDiscardRule):
                hit = rule.check_line(stripped, raw, prev_raw)
            else:
                hit = rule.check_line(stripped, raw)
            if hit and rule.name not in allowed:
                findings.append(Finding(rel_path, i + 1, rule, raw))
    return findings


def collect_files(paths):
    files = []
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(REPO_ROOT, p)
        if os.path.isfile(ap):
            files.append(ap)
        elif os.path.isdir(ap):
            for dirpath, dirnames, filenames in os.walk(ap):
                dirnames[:] = sorted(d for d in dirnames
                                     if d not in ("build", "lint_testdata"))
                for name in sorted(filenames):
                    if name.endswith(SOURCE_EXTENSIONS):
                        files.append(os.path.join(dirpath, name))
        else:
            print(f"qcfe_lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def lint_paths(paths):
    findings = []
    for f in collect_files(paths):
        rel = os.path.relpath(f, REPO_ROOT)
        findings.extend(lint_file(f, rel))
    return findings


def self_test():
    """Corpus check (exact line-level expectations) + clean-tree check."""
    corpus_dir = os.path.join(REPO_ROOT, "tools", "lint_testdata")
    failures = 0
    corpus_files = sorted(
        f for f in os.listdir(corpus_dir) if f.endswith(SOURCE_EXTENSIONS))
    if not corpus_files:
        print("self-test: empty corpus", file=sys.stderr)
        return 1
    total_expected = 0
    for name in corpus_files:
        path = os.path.join(corpus_dir, name)
        with open(path, encoding="utf-8") as f:
            raw_lines = f.read().splitlines()
        # Line 1 declares the tree path the corpus file simulates, e.g.
        # `// lint-as: src/core/foo.cc` (scoped rules key off the path).
        m = re.match(r"//\s*lint-as:\s*(\S+)", raw_lines[0] if raw_lines else "")
        pseudo_path = m.group(1) if m else f"src/{name}"
        expected = {}
        for i, line in enumerate(raw_lines):
            em = EXPECT_RE.search(line)
            if em:
                expected.setdefault(i + 1, set()).add(em.group(1))
                total_expected += 1
        actual = {}
        for finding in lint_file(path, pseudo_path):
            actual.setdefault(finding.line_no, set()).add(finding.rule.name)
        for line_no in sorted(set(expected) | set(actual)):
            exp = expected.get(line_no, set())
            act = actual.get(line_no, set())
            if exp != act:
                failures += 1
                print(f"self-test MISMATCH {name}:{line_no}: expected "
                      f"{sorted(exp) or 'clean'}, got {sorted(act) or 'clean'}",
                      file=sys.stderr)
    print(f"self-test: {len(corpus_files)} corpus files, "
          f"{total_expected} expected findings, {failures} mismatches")
    if failures:
        return 1
    tree_findings = lint_paths(DEFAULT_ROOTS)
    for f in tree_findings:
        print(f, file=sys.stderr)
    print(f"self-test: real tree {'CLEAN' if not tree_findings else 'DIRTY'} "
          f"({len(collect_files(DEFAULT_ROOTS))} files scanned)")
    return 1 if tree_findings else 0


def list_rules():
    print(f"{'rule':<28} scope")
    for r in RULES:
        scope = "tree" if r.dirs is None else ", ".join(r.dirs)
        if r.exempt_files:
            scope += f" (exempt: {', '.join(r.exempt_files)})"
        print(f"{r.name:<28} {scope}")
        print(f"{'':<28} {r.summary}")
    return 0


def main(argv):
    args = argv[1:]
    if "--list-rules" in args:
        return list_rules()
    if "--self-test" in args:
        return self_test()
    if any(a.startswith("-") for a in args):
        print(__doc__, file=sys.stderr)
        return 2
    findings = lint_paths(args or DEFAULT_ROOTS)
    for f in findings:
        print(f)
    if findings:
        print(f"qcfe_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
