# Wiring for tools/qcfe_lint.py, the project's determinism/contract lint.
#
#   cmake --build build --target lint    # scan the real tree, fail on findings
#   ctest -R lint_test                   # corpus self-test + real-tree scan
#
# The scanner is dependency-free Python; if no interpreter exists the target
# degrades to a no-op with a warning instead of breaking the build.

find_package(Python3 COMPONENTS Interpreter QUIET)

if(Python3_Interpreter_FOUND)
  set(QCFE_LINT_COMMAND
      ${Python3_EXECUTABLE} ${CMAKE_CURRENT_SOURCE_DIR}/tools/qcfe_lint.py)

  add_custom_target(lint
    COMMAND ${QCFE_LINT_COMMAND}
    WORKING_DIRECTORY ${CMAKE_CURRENT_SOURCE_DIR}
    COMMENT "qcfe_lint: scanning src/ tests/ bench/ examples/"
    VERBATIM)
else()
  add_custom_target(lint
    COMMAND ${CMAKE_COMMAND} -E echo
            "qcfe_lint skipped: no python3 interpreter found"
    COMMENT "qcfe_lint: skipped (python3 not found)"
    VERBATIM)
  message(WARNING "python3 not found; the `lint` target is a no-op")
endif()

# Registers the ctest entry once testing is enabled. Called from the top-level
# CMakeLists after enable_testing() so the test is not silently dropped.
function(qcfe_register_lint_test)
  if(Python3_Interpreter_FOUND)
    add_test(NAME lint_test
             COMMAND ${QCFE_LINT_COMMAND} --self-test
             WORKING_DIRECTORY ${CMAKE_CURRENT_SOURCE_DIR})
  endif()
endfunction()
