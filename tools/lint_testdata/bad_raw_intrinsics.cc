// lint-as: src/nn/mlp.cc
// Positive corpus for no-raw-intrinsics (tree-wide, exempting only the
// kernel tier TUs src/nn/kernels_simd_*). This file is lint-test data
// only — it is never compiled.
#include <immintrin.h>  // expect-lint: no-raw-intrinsics
#include <arm_neon.h>   // expect-lint: no-raw-intrinsics

void VectorizedInPlace(double* x, const double* y) {
  __m256d a = _mm256_loadu_pd(x);             // expect-lint: no-raw-intrinsics
  __m256d b = _mm256_loadu_pd(y);             // expect-lint: no-raw-intrinsics
  _mm256_storeu_pd(x, _mm256_add_pd(a, b));   // expect-lint: no-raw-intrinsics
}

void NeonInPlace(double* x, const double* y) {
  float64x2_t a = vld1q_f64(x);  // expect-lint: no-raw-intrinsics
  // The type alone trips the rule even without a call on the line.
  float64x2_t b = a;        // expect-lint: no-raw-intrinsics
  vst1q_f64(x, vfmaq_f64(a, b, vld1q_f64(y)));  // expect-lint: no-raw-intrinsics
}

// Negative cases: ordinary identifiers that merely resemble vector names.
int vget_count = 0;
double min_f64(double a, double b) { return a < b ? a : b; }

// Suppression must work like every other rule (with a reason).
// A hypothetical one-off prefetch kept outside the tier on purpose:
// qcfe-lint: allow(no-raw-intrinsics)
void Prefetch(const double* p) { _mm_prefetch(p, 0); }
