// lint-as: src/util/fs.cc
// Negative corpus: the Fs seam itself implements RealFs over the raw
// OS facilities — nothing here may be flagged.
#include <cstdio>
#include <fstream>

void RealFsInternals(const char* path) {
  std::ifstream in(path);
  std::ofstream out(path);
  FILE* f = fopen(path, "rb");
  (void)f;  // corpus scaffolding, not a dropped status
}
