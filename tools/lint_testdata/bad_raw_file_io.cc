// lint-as: src/core/seeded_file_io_violations.cc
// Positive corpus for no-raw-file-io (whole tree, exempting the Fs seam
// itself — src/util/fs.*). Artifact bytes must flow through Fs so the
// fault-injection and atomic-publish guarantees of util/fs.h actually
// cover them.
#include <cstdio>
#include <fstream>  // expect-lint: no-raw-file-io

void Streams(const char* path) {
  std::ifstream in(path);                    // expect-lint: no-raw-file-io
  std::ofstream out(path);                   // expect-lint: no-raw-file-io
  std::fstream both(path);                   // expect-lint: no-raw-file-io
  std::basic_ifstream<char> wide(path);      // expect-lint: no-raw-file-io
}

void CStdio(const char* path) {
  FILE* f = fopen(path, "rb");               // expect-lint: no-raw-file-io
  f = freopen(path, "wb", f);                // expect-lint: no-raw-file-io
  FILE* g = fdopen(3, "r");                  // expect-lint: no-raw-file-io
  (void)g;  // corpus scaffolding, not a dropped status
}

// Suppressed with a reason.
void Suppressed(const char* path) {
  // qcfe-lint: allow(no-raw-file-io) — corpus: proves the escape hatch
  std::ifstream in(path);
}

// Comments and strings must not trip: "write it with std::ofstream" is
// prose, and a literal naming fopen is data, not code.
const char* kDoc = "never call fopen directly";
