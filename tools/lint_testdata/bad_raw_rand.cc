// lint-as: src/models/seeded_violations.cc
// Positive corpus for no-raw-rand: every marked line must be flagged.
// This file is lint-test data only — it is never compiled.
#include <cstdlib>
#include <random>

int RawRand() {
  std::srand(42);                       // expect-lint: no-raw-rand
  int a = std::rand();                  // expect-lint: no-raw-rand
  int b = rand();                       // expect-lint: no-raw-rand
  std::random_device rd;                // expect-lint: no-raw-rand
  std::mt19937 gen(rd());               // expect-lint: no-raw-rand
  std::mt19937_64 gen64(7);             // expect-lint: no-raw-rand
  return a + b + static_cast<int>(gen()) + static_cast<int>(gen64());
}

// Suppressed: carries an allow with a reason, so it must NOT be flagged.
// qcfe-lint: allow(no-raw-rand) — corpus: proves the escape hatch works
int Suppressed() { return rand(); }

// Words containing "rand" and comments must not trip the rule:
int operand_count = 0;  // "std::rand" in a comment is fine
int MyRandHelper();     // identifier containing rand
