// lint-as: src/core/seeded_mutex_violations.cc
// Positive corpus for no-raw-mutex (whole tree, exempting the annotated
// sync layer itself — src/util/sync.*). Every raw standard-library locking
// primitive must route through qcfe::Mutex/SharedMutex/CondVar so the
// clang thread-safety analysis and the debug lock-rank checker see it.
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

std::mutex g_mu;                          // expect-lint: no-raw-mutex
std::shared_mutex g_rw_mu;                // expect-lint: no-raw-mutex
std::recursive_mutex g_rec_mu;            // expect-lint: no-raw-mutex
std::timed_mutex g_timed_mu;              // expect-lint: no-raw-mutex
std::condition_variable g_cv;             // expect-lint: no-raw-mutex
std::condition_variable_any g_cv_any;     // expect-lint: no-raw-mutex

void Lockers() {
  std::lock_guard<std::mutex> a(g_mu);    // expect-lint: no-raw-mutex
  std::unique_lock<std::mutex> b(g_mu);   // expect-lint: no-raw-mutex
  std::shared_lock<std::shared_mutex> c(g_rw_mu);  // expect-lint: no-raw-mutex
}

void ScopedLocker() {
  std::scoped_lock lock(g_mu);            // expect-lint: no-raw-mutex
}

// Suppressed with a reason.
void Suppressed() {
  // qcfe-lint: allow(no-raw-mutex) — corpus: proves the escape hatch
  std::mutex local_mu;
  (void)local_mu;  // silences unused-variable, not a status discard
}

// Comments must not trip: "guard it with a std::mutex" is prose, and a
// string literal mentioning "std::condition_variable" is data, not code.
const char* kDoc = "do not use std::condition_variable here";

// std::once_flag / std::call_once stay allowed: one-time init carries no
// lock-ordering or guarded-member story for the analysis to check.
std::once_flag g_once;
