// lint-as: src/core/seeded_violations.cc
// Positive corpus for no-raw-thread (scoped to src/, exempting the
// concurrency layer itself — util/thread_pool, serve/async_server).
#include <future>
#include <thread>

void SpawnRaw() {
  std::thread t([] {});  // expect-lint: no-raw-thread
  t.join();
}

void AsyncRaw() {
  auto f = std::async([] { return 1; });  // expect-lint: no-raw-thread
  f.get();
}

// Suppressed with a reason.
void Suppressed() {
  // qcfe-lint: allow(no-raw-thread) — corpus: proves the escape hatch
  std::thread t([] {});
  t.join();
}

// Comments must not trip: "std::thread is banned here" is prose.
