// lint-as: tests/seeded_violations_test.cc
// Positive corpus for no-sleep-in-tests (scoped to tests/). The PR-5
// concurrency suite is sleep-free by construction; sleeps need a NOLINT.
#include <chrono>
#include <thread>
#include <unistd.h>

void FlakyWait() {
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // expect-lint: no-sleep-in-tests
}

void FlakyWaitUntil(std::chrono::milliseconds deadline) {
  std::this_thread::sleep_until(deadline);  // expect-lint: no-sleep-in-tests
}

void PosixSleeps() {
  sleep(1);       // expect-lint: no-sleep-in-tests
  usleep(1000);   // expect-lint: no-sleep-in-tests
}

// NOLINT-ed sleep: allowed, the marker is the justification hook.
void Tolerated() {
  std::this_thread::sleep_for(  // NOLINT — stress scaffolding, not an assertion
      std::chrono::milliseconds(1));
}

// The allow() escape hatch works here too.
void AlsoTolerated() {
  usleep(10);  // qcfe-lint: allow(no-sleep-in-tests) — corpus escape hatch
}

// Identifiers containing "sleep" must not trip: no flag on the next line.
void sleep_free_suite() {}
