// lint-as: src/core/seeded_violations.cc
// Positive corpus for unannotated-status-discard: a `(void)` cast on a
// call needs a same-line or preceding-line reason comment.
struct Status {
  bool ok() const { return true; }
};

Status DoThing();
Status helper(int x);

void Swallows() {
  (void)DoThing();  // expect-lint: unannotated-status-discard
}

void SwallowsMember() {
  (void)helper(3);  // expect-lint: unannotated-status-discard
}

void Annotated() {
  (void)DoThing();  // best-effort cache warm-up; a miss only costs latency
}

void AnnotatedAbove() {
  // Registration failure means the name is taken, which the caller probes.
  (void)helper(7);
}

void NotACall() {
  int unused = 3;
  (void)unused;  // plain variable silences -Wunused, not a Status
}
