// lint-as: src/engine/seeded_violations.cc
// Positive corpus for no-naked-new (scoped to src/).
#include <memory>

struct Widget {
  int x = 0;
};

Widget* Leaky() {
  Widget* w = new Widget();  // expect-lint: no-naked-new
  return w;
}

void Free(Widget* w) {
  delete w;  // expect-lint: no-naked-new
}

void FreeArray(int* xs) {
  delete[] xs;  // expect-lint: no-naked-new
}

int* LeakyArray() {
  return new int[16];  // expect-lint: no-naked-new
}

// Tolerated: ownership captured in the same expression (the only way to
// heap-construct a class with a factory-private constructor).
std::unique_ptr<Widget> Factory() {
  return std::unique_ptr<Widget>(new Widget());
}

// Suppressed: pimpl pattern where the destructor is the delete site.
struct Holder {
  Widget* impl_;
  // qcfe-lint: allow(no-naked-new) — pimpl, deleted in ~Holder
  Holder() : impl_(new Widget()) {}
  // qcfe-lint: allow(no-naked-new) — pimpl owner
  ~Holder() { delete impl_; }
};

// Not violations: deleted functions, placement new, comments, identifiers.
struct NoCopy {
  NoCopy(const NoCopy&) = delete;
  NoCopy& operator=(const NoCopy&) = delete;
};
void Placement(void* buf) { new (buf) Widget(); }  // placement-controlled
int new_count = 0;       // identifier containing "new"
// a new queue head starts the flush timer (prose "new" in a comment)
