// lint-as: src/util/thread_pool.cc
// Negative corpus: the concurrency layer itself may own raw threads —
// nothing here may be flagged.
#include <thread>
#include <vector>

std::vector<std::thread> workers;

void Spawn() { workers.emplace_back([] {}); }
