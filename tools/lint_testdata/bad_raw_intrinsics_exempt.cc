// lint-as: src/nn/kernels_simd_avx2.cc
// Negative corpus for no-raw-intrinsics: the kernel tier TUs are the one
// place vendor intrinsics are allowed — no line here may be flagged.
#include <immintrin.h>

void TierKernel(double* x, const double* y) {
  __m256d a = _mm256_loadu_pd(x);
  __m256d b = _mm256_loadu_pd(y);
  _mm256_storeu_pd(x, _mm256_fmadd_pd(a, b, _mm256_setzero_pd()));
}
