// lint-as: src/util/sync.h
// Negative corpus: the annotated sync layer itself wraps the raw
// primitives — nothing here may be flagged.
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

class Wrapper {
 public:
  void Lock() { mu_.lock(); }
  void Unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
  std::shared_mutex rw_mu_;
  std::condition_variable cv_;
};

void AdoptPattern(Wrapper* w) {
  // The CondVar implementation re-wraps the raw handle with adopt_lock.
  std::mutex raw;
  std::unique_lock<std::mutex> lock(raw, std::adopt_lock);
  lock.release();
}
