// lint-as: src/engine/hash_ok_here.cc
// Negative corpus: no-unordered-containers is scoped to the determinism-
// critical layers (src/core, src/models, src/nn). The engine simulates a
// database and may hash freely — nothing here may be flagged.
#include <unordered_map>
#include <unordered_set>

std::unordered_map<int, double> exec_cache;
std::unordered_set<int> seen_ids;
