// lint-as: src/core/seeded_violations.cc
// Positive corpus for no-unordered-containers (scoped to src/core,
// src/models, src/nn — see bad_unordered_out_of_scope.cc for the
// complement).
#include <string>
#include <unordered_map>  // expect-lint: no-unordered-containers
#include <unordered_set>  // expect-lint: no-unordered-containers

std::unordered_map<int, double> scores;  // expect-lint: no-unordered-containers
std::unordered_set<std::string> names;   // expect-lint: no-unordered-containers

double SumScores() {
  double total = 0.0;
  // Iteration over a hash map: order is implementation-defined, so this
  // reduction is not bit-reproducible across standard libraries.
  for (const auto& [k, v] : scores) total += v;
  return total;
}

// Suppressed: build-time-only lookup structure, never reduced over.
// qcfe-lint: allow(no-unordered-containers) — lookup only, no iteration
std::unordered_map<int, int> build_cache;
