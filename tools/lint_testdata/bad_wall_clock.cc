// lint-as: src/serve/seeded_violations.cc
// Positive corpus for no-wall-clock.
#include <chrono>
#include <ctime>

long Now1() {
  auto t = std::chrono::steady_clock::now();  // expect-lint: no-wall-clock
  return t.time_since_epoch().count();
}

long Now2() {
  auto t = std::chrono::system_clock::now();  // expect-lint: no-wall-clock
  return t.time_since_epoch().count();
}

long Now3() {
  using namespace std::chrono;
  return high_resolution_clock::now().time_since_epoch().count();  // expect-lint: no-wall-clock
}

long Now4() { return time(nullptr); }  // expect-lint: no-wall-clock
long Now5() { return time(NULL); }     // expect-lint: no-wall-clock

long Now6() {
  struct timespec ts;
  clock_gettime(0, &ts);  // expect-lint: no-wall-clock
  return ts.tv_sec;
}

// Suppressed with a reason: one-shot startup banner, never in results.
long Banner() {
  return time(nullptr);  // qcfe-lint: allow(no-wall-clock) — startup log only
}

// Comments mentioning steady_clock must not trip the rule, nor must
// identifiers like `my_time(nullptr_tag)` or `runtime(x)`.
long runtime(long x) { return x; }  // "system_clock semantics" in prose
