/// Tests for src/sql: tokenizer, parser grammar coverage, data abstract
/// sampling, template instantiation (including correlated `{col+K}` and
/// `:prefix` placeholders) and the Algorithm 1 simplified-template pipeline.

#include <gtest/gtest.h>

#include <set>

#include "engine/database.h"
#include "util/check.h"
#include "sql/data_abstract.h"
#include "sql/parser.h"
#include "sql/simplified_templates.h"
#include "sql/template.h"
#include "sql/tokenizer.h"
#include "util/rng.h"

namespace qcfe {
namespace {

std::unique_ptr<Database> MakeDb() {
  auto db = std::make_unique<Database>("sqltest");
  Rng rng(4);
  auto t = std::make_unique<Table>(
      "orders", Schema({{"o_id", DataType::kInt64},
                        {"o_ckey", DataType::kInt64},
                        {"o_total", DataType::kFloat64},
                        {"o_status", DataType::kString}}));
  const char* statuses[] = {"open", "done", "hold"};
  for (int64_t i = 0; i < 500; ++i) {
    QCFE_CHECK_OK(t->AppendRow({Value(i), Value(i % 50), Value(rng.Uniform(1.0, 900.0)),
                        Value(std::string(statuses[i % 3]))}));
  }
  QCFE_CHECK_OK(t->BuildIndex("o_id"));
  QCFE_CHECK_OK(db->catalog()->AddTable(std::move(t)));

  auto c = std::make_unique<Table>(
      "cust", Schema({{"c_id", DataType::kInt64},
                      {"c_name", DataType::kString}}));
  for (int64_t i = 0; i < 50; ++i) {
    QCFE_CHECK_OK(c->AppendRow({Value(i), Value("name" + std::to_string(i))}));
  }
  QCFE_CHECK_OK(c->BuildIndex("c_id"));
  QCFE_CHECK_OK(db->catalog()->AddTable(std::move(c)));
  db->Analyze();
  return db;
}

// --------------------------------------------------------------- tokenizer

TEST(TokenizerTest, BasicTokens) {
  auto r = Tokenize("SELECT a.b, 42, 3.14 FROM t WHERE x >= 'hi'");
  ASSERT_TRUE(r.ok());
  const auto& toks = r.value();
  EXPECT_EQ(toks[0].type, TokenType::kIdentifier);
  EXPECT_EQ(toks[0].text, "select");  // lower-cased
  bool saw_number = false, saw_decimal = false, saw_string = false,
       saw_ge = false;
  for (const auto& t : toks) {
    if (t.type == TokenType::kNumber && t.text == "42") saw_number = true;
    if (t.type == TokenType::kNumber && t.text == "3.14") saw_decimal = true;
    if (t.type == TokenType::kString && t.text == "hi") saw_string = true;
    if (t.type == TokenType::kOperator && t.text == ">=") saw_ge = true;
  }
  EXPECT_TRUE(saw_number && saw_decimal && saw_string && saw_ge);
  EXPECT_EQ(toks.back().type, TokenType::kEnd);
}

TEST(TokenizerTest, PlaceholdersAndNegativeNumbers) {
  auto r = Tokenize("x = {t.col+99} and y = -5");
  ASSERT_TRUE(r.ok());
  bool saw_ph = false, saw_neg = false;
  for (const auto& t : r.value()) {
    if (t.type == TokenType::kPlaceholder && t.text == "t.col+99") saw_ph = true;
    if (t.type == TokenType::kNumber && t.text == "-5") saw_neg = true;
  }
  EXPECT_TRUE(saw_ph);
  EXPECT_TRUE(saw_neg);
}

TEST(TokenizerTest, Errors) {
  EXPECT_FALSE(Tokenize("select 'unterminated").ok());
  EXPECT_FALSE(Tokenize("select {unterminated").ok());
  EXPECT_FALSE(Tokenize("select #").ok());
}

// ------------------------------------------------------------------ parser

TEST(ParserTest, SimpleSelectStar) {
  auto q = ParseQuery("select * from orders");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->tables, std::vector<std::string>{"orders"});
  EXPECT_TRUE(q->filters.empty());
  EXPECT_FALSE(q->HasAggregation());
}

TEST(ParserTest, FiltersAllOperators) {
  auto q = ParseQuery(
      "select * from t where t.a = 1 and t.b <> 2 and t.c < 3 and t.d <= 4 "
      "and t.e > 5 and t.f >= 6 and t.g between 1 and 9 and "
      "t.h in (1, 2, 3) and t.s like 'ab%'");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->filters.size(), 9u);
  EXPECT_EQ(q->filters[0].op, CompareOp::kEq);
  EXPECT_EQ(q->filters[1].op, CompareOp::kNe);
  EXPECT_EQ(q->filters[2].op, CompareOp::kLt);
  EXPECT_EQ(q->filters[3].op, CompareOp::kLe);
  EXPECT_EQ(q->filters[4].op, CompareOp::kGt);
  EXPECT_EQ(q->filters[5].op, CompareOp::kGe);
  EXPECT_EQ(q->filters[6].op, CompareOp::kBetween);
  EXPECT_EQ(q->filters[7].op, CompareOp::kIn);
  EXPECT_EQ(q->filters[7].literals.size(), 3u);
  EXPECT_EQ(q->filters[8].op, CompareOp::kLike);
}

TEST(ParserTest, JoinSyntaxExplicit) {
  auto q = ParseQuery(
      "select * from orders join cust on orders.o_ckey = cust.c_id");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->tables.size(), 2u);
  ASSERT_EQ(q->joins.size(), 1u);
  EXPECT_EQ(q->joins[0].left.ToString(), "orders.o_ckey");
  EXPECT_EQ(q->joins[0].right.ToString(), "cust.c_id");
}

TEST(ParserTest, JoinSyntaxImplicitCommaWhere) {
  auto q = ParseQuery(
      "select count(*) from orders, cust where orders.o_ckey = cust.c_id "
      "and orders.o_total > 10");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->tables.size(), 2u);
  ASSERT_EQ(q->joins.size(), 1u);
  ASSERT_EQ(q->filters.size(), 1u);
  ASSERT_EQ(q->aggregates.size(), 1u);
  EXPECT_EQ(q->aggregates[0].kind, Aggregate::Kind::kCount);
}

TEST(ParserTest, Aggregates) {
  auto q = ParseQuery(
      "select count(*), sum(t.a), avg(t.b), min(t.c), max(t.d) from t");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->aggregates.size(), 5u);
  EXPECT_EQ(q->aggregates[1].kind, Aggregate::Kind::kSum);
  EXPECT_EQ(q->aggregates[1].column.ToString(), "t.a");
  EXPECT_TRUE(q->aggregates[0].column.column.empty());
}

TEST(ParserTest, GroupOrderLimitDistinct) {
  auto q = ParseQuery(
      "select distinct t.a from t where t.b > 0 group by t.a "
      "order by t.a desc limit 10");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->distinct);
  ASSERT_EQ(q->group_by.size(), 1u);
  ASSERT_EQ(q->order_by.size(), 1u);
  EXPECT_TRUE(q->order_by[0].descending);
  EXPECT_EQ(q->limit, 10u);
}

TEST(ParserTest, UnqualifiedColumnsResolveWithSingleTable) {
  auto q = ParseQuery("select c from sbtest1 where id = 5 order by c");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->select_columns[0].ToString(), "sbtest1.c");
  EXPECT_EQ(q->filters[0].column.ToString(), "sbtest1.id");
  EXPECT_EQ(q->order_by[0].column.ToString(), "sbtest1.c");
}

TEST(ParserTest, UnqualifiedAmbiguousWithTwoTablesFails) {
  EXPECT_FALSE(
      ParseQuery("select x from a, b where a.i = b.j and y = 3").ok());
}

TEST(ParserTest, ErrorCases) {
  EXPECT_FALSE(ParseQuery("insert into t values (1)").ok());
  EXPECT_FALSE(ParseQuery("select * from").ok());
  EXPECT_FALSE(ParseQuery("select * from t where").ok());
  EXPECT_FALSE(ParseQuery("select * from t where t.a between 1").ok());
  EXPECT_FALSE(ParseQuery("select * from t extra garbage !").ok());
  EXPECT_FALSE(ParseQuery("select * from a join b").ok());
}

TEST(ParserTest, PlaceholderLeftUnboundFails) {
  EXPECT_FALSE(ParseQuery("select * from t where t.a = {t.a}").ok());
}

TEST(ParserTest, RoundTripThroughToString) {
  auto q = ParseQuery(
      "select count(*) from orders join cust on orders.o_ckey = cust.c_id "
      "where orders.o_total > 5 group by cust.c_name order by cust.c_name "
      "limit 3");
  ASSERT_TRUE(q.ok());
  auto q2 = ParseQuery(q->ToString());
  ASSERT_TRUE(q2.ok()) << q->ToString() << " -> " << q2.status().ToString();
  EXPECT_EQ(q->ToString(), q2->ToString());
}

// ----------------------------------------------------------- data abstract

TEST(DataAbstractTest, SamplesComeFromColumnDomain) {
  auto db = MakeDb();
  DataAbstract abstract(db->catalog());
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    auto v = abstract.SampleValue("orders", "o_id", &rng);
    ASSERT_TRUE(v.ok());
    int64_t x = std::get<int64_t>(v.value());
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 500);
  }
}

TEST(DataAbstractTest, UnknownColumnFails) {
  auto db = MakeDb();
  DataAbstract abstract(db->catalog());
  Rng rng(8);
  EXPECT_FALSE(abstract.SampleValue("orders", "nope", &rng).ok());
  EXPECT_FALSE(abstract.SampleValue("nope", "o_id", &rng).ok());
}

TEST(DataAbstractTest, PrefixSampling) {
  auto db = MakeDb();
  DataAbstract abstract(db->catalog());
  Rng rng(8);
  auto p = abstract.SamplePrefix("orders", "o_status", &rng);
  ASSERT_TRUE(p.ok());
  EXPECT_LE(p->size(), 3u);
  EXPECT_FALSE(abstract.SamplePrefix("orders", "o_id", &rng).ok());
  EXPECT_TRUE(abstract.IsStringColumn("orders", "o_status"));
  EXPECT_FALSE(abstract.IsStringColumn("orders", "o_id"));
}

// ---------------------------------------------------------------- template

TEST(TemplateTest, InstantiateSimplePlaceholder) {
  auto db = MakeDb();
  DataAbstract abstract(db->catalog());
  Rng rng(9);
  QueryTemplate t{"t1", "select * from orders where orders.o_id = {orders.o_id}"};
  auto spec = t.Instantiate(abstract, &rng);
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec->filters.size(), 1u);
  EXPECT_EQ(spec->filters[0].op, CompareOp::kEq);
}

TEST(TemplateTest, CorrelatedOffsetPlaceholder) {
  auto db = MakeDb();
  DataAbstract abstract(db->catalog());
  Rng rng(9);
  QueryTemplate t{"t2",
                  "select * from orders where orders.o_id between "
                  "{orders.o_id} and {orders.o_id+99}"};
  auto spec = t.Instantiate(abstract, &rng);
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec->filters.size(), 1u);
  double lo = ValueToDouble(spec->filters[0].literals[0]);
  double hi = ValueToDouble(spec->filters[0].literals[1]);
  EXPECT_DOUBLE_EQ(hi - lo, 99.0);
}

TEST(TemplateTest, PrefixPlaceholderInsideLike) {
  auto db = MakeDb();
  DataAbstract abstract(db->catalog());
  Rng rng(9);
  QueryTemplate t{"t3",
                  "select * from cust where cust.c_name like "
                  "'{cust.c_name:prefix}%'"};
  auto spec = t.Instantiate(abstract, &rng);
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec->filters.size(), 1u);
  EXPECT_EQ(spec->filters[0].op, CompareOp::kLike);
  const std::string& pat = std::get<std::string>(spec->filters[0].literals[0]);
  EXPECT_EQ(pat.back(), '%');
  EXPECT_GE(pat.size(), 2u);
}

TEST(TemplateTest, StringPlaceholderQuoted) {
  auto db = MakeDb();
  DataAbstract abstract(db->catalog());
  Rng rng(9);
  QueryTemplate t{"t4",
                  "select * from orders where orders.o_status = "
                  "{orders.o_status}"};
  auto text = t.InstantiateText(abstract, &rng);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("'"), std::string::npos);
  auto spec = t.Instantiate(abstract, &rng);
  ASSERT_TRUE(spec.ok());
}

TEST(TemplateTest, ParseStructureNeutralizesPlaceholders) {
  QueryTemplate t{"t5",
                  "select count(*) from orders where orders.o_total > "
                  "{orders.o_total} group by orders.o_status"};
  auto spec = t.ParseStructure();
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->filters.size(), 1u);
  EXPECT_EQ(spec->group_by.size(), 1u);
}

TEST(TemplateTest, BadPlaceholderErrors) {
  auto db = MakeDb();
  DataAbstract abstract(db->catalog());
  Rng rng(9);
  QueryTemplate bad1{"b1", "select * from orders where orders.o_id = {noDot}"};
  EXPECT_FALSE(bad1.Instantiate(abstract, &rng).ok());
  QueryTemplate bad2{"b2",
                     "select * from orders where orders.o_id = {orders.o_id"};
  EXPECT_FALSE(bad2.Instantiate(abstract, &rng).ok());
  QueryTemplate bad3{"b3",
                     "select * from orders where orders.o_id = "
                     "{orders.o_id:weird}"};
  EXPECT_FALSE(bad3.Instantiate(abstract, &rng).ok());
}

// ---------------------------------------------- simplified templates (Alg 1)

TEST(SimplifiedTemplatesTest, GenerateCoversOperatorClasses) {
  auto db = MakeDb();
  SimplifiedTemplateGenerator gen(db->catalog());
  std::vector<QueryTemplate> original = {
      {"orig1",
       "select count(*) from orders join cust on orders.o_ckey = cust.c_id "
       "where orders.o_total > {orders.o_total} group by orders.o_status "
       "order by orders.o_status"}};
  auto templates = gen.Generate(original);
  ASSERT_TRUE(templates.ok());
  std::set<SimplifiedOpClass> classes;
  for (const auto& t : templates.value()) classes.insert(t.op_class);
  EXPECT_TRUE(classes.count(SimplifiedOpClass::kScan));
  EXPECT_TRUE(classes.count(SimplifiedOpClass::kSort));
  EXPECT_TRUE(classes.count(SimplifiedOpClass::kAggregate));
  EXPECT_TRUE(classes.count(SimplifiedOpClass::kJoin));
  // The join row yields two parent templates (with and without ORDER BY).
  int joins = 0;
  for (const auto& t : templates.value()) {
    joins += (t.op_class == SimplifiedOpClass::kJoin);
  }
  EXPECT_EQ(joins, 2);
}

TEST(SimplifiedTemplatesTest, GenerateDeduplicates) {
  auto db = MakeDb();
  SimplifiedTemplateGenerator gen(db->catalog());
  // Same filter column twice across two templates -> one scan template.
  std::vector<QueryTemplate> original = {
      {"a", "select * from orders where orders.o_total > {orders.o_total}"},
      {"b", "select * from orders where orders.o_total < {orders.o_total}"}};
  auto templates = gen.Generate(original);
  ASSERT_TRUE(templates.ok());
  EXPECT_EQ(templates->size(), 1u);
  EXPECT_EQ(templates->at(0).op_class, SimplifiedOpClass::kScan);
  EXPECT_EQ(templates->at(0).table, "orders");
  EXPECT_EQ(templates->at(0).column, "o_total");
}

TEST(SimplifiedTemplatesTest, FillProducesExecutableQueries) {
  auto db = MakeDb();
  SimplifiedTemplateGenerator gen(db->catalog());
  std::vector<QueryTemplate> original = {
      {"orig",
       "select count(*) from orders join cust on orders.o_ckey = cust.c_id "
       "where orders.o_total > {orders.o_total} and cust.c_name like "
       "'{cust.c_name:prefix}%' group by orders.o_status "
       "order by orders.o_status"}};
  auto templates = gen.Generate(original);
  ASSERT_TRUE(templates.ok());
  DataAbstract abstract(db->catalog());
  Rng rng(10);
  int scale = 3;
  auto specs = gen.Fill(*templates, abstract, scale, &rng);
  ASSERT_TRUE(specs.ok());
  EXPECT_EQ(specs->size(), templates->size() * 3);

  // Every generated query must plan and execute.
  Environment env;
  env.hardware = HardwareProfile::H1();
  Rng noise(11);
  for (const auto& spec : *specs) {
    auto run = db->Run(spec, env, &noise);
    ASSERT_TRUE(run.ok()) << spec.ToString() << ": "
                          << run.status().ToString();
    EXPECT_GT(run->total_ms, 0.0);
  }
}

TEST(SimplifiedTemplatesTest, FillUsesVariedKeywords) {
  auto db = MakeDb();
  SimplifiedTemplateGenerator gen(db->catalog());
  std::vector<QueryTemplate> original = {
      {"o", "select * from orders where orders.o_total > {orders.o_total}"}};
  auto templates = gen.Generate(original);
  ASSERT_TRUE(templates.ok());
  DataAbstract abstract(db->catalog());
  Rng rng(12);
  auto specs = gen.Fill(*templates, abstract, 40, &rng);
  ASSERT_TRUE(specs.ok());
  std::set<CompareOp> ops;
  for (const auto& s : *specs) ops.insert(s.filters[0].op);
  // Random keyword selection covers several operators (paper: {<, >, =, ...}).
  EXPECT_GE(ops.size(), 3u);
}

TEST(SimplifiedTemplatesTest, PatternRendering) {
  SimplifiedTemplate s;
  s.op_class = SimplifiedOpClass::kScan;
  s.table = "partsupp";
  s.column = "ps_partkey";
  EXPECT_EQ(s.ToPattern(),
            "SELECT * FROM partsupp WHERE ps_partkey [OP] [VALUE]");
}

}  // namespace
}  // namespace qcfe
