/// Tests for the serving API: the EstimatorRegistry (round-trip, traits,
/// error paths), the Pipeline facade (fit / predict / explain / transfer),
/// and the batched inference path — whose results must be bit-identical to
/// the per-plan scalar path at every level (Mlp, estimator, facade).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/pipeline.h"
#include "harness/context.h"
#include "models/registry.h"
#include "nn/mlp.h"
#include "util/rng.h"

namespace qcfe {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    HarnessOptions opt = OptionsFor("sysbench", RunScale::kQuick);
    opt.corpus_size = 240;
    opt.num_envs = 3;
    auto ctx = BenchmarkContext::Create(opt);
    ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
    ctx_ = ctx.value().release();
    ctx_->Split(240, &train_, &test_);
  }

  static void TearDownTestSuite() {
    delete ctx_;
    ctx_ = nullptr;
  }

  static BenchmarkContext* ctx_;
  static std::vector<PlanSample> train_, test_;
};

BenchmarkContext* PipelineTest::ctx_ = nullptr;
std::vector<PlanSample> PipelineTest::train_;
std::vector<PlanSample> PipelineTest::test_;

// ---------------------------------------------------------------- registry

TEST_F(PipelineTest, RegistryContainsBuiltinEstimators) {
  EstimatorRegistry& registry = EstimatorRegistry::Global();
  for (const char* name : {"qppnet", "mscn", "pgsql"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
  }
  std::vector<std::string> names = registry.Names();
  EXPECT_GE(names.size(), 3u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST_F(PipelineTest, RegistryRoundTrip) {
  EstimatorRegistry& registry = EstimatorRegistry::Global();
  BaseFeaturizer featurizer(ctx_->db->catalog());
  EstimatorContext context{ctx_->db->catalog(), &featurizer, 1};
  for (const char* name : {"qppnet", "mscn", "pgsql"}) {
    auto model = registry.Create(name, context);
    ASSERT_TRUE(model.ok()) << name << ": " << model.status().ToString();
    auto info = registry.Info(name);
    ASSERT_TRUE(info.ok());
    EXPECT_EQ((*model)->name(), info->display_name) << name;
  }
  // Traits drive pipeline behaviour: MSCN needs uniform masks, PGSQL is
  // analytical.
  EXPECT_FALSE(registry.Info("qppnet")->uniform_feature_width);
  EXPECT_TRUE(registry.Info("mscn")->uniform_feature_width);
  EXPECT_TRUE(registry.Info("qppnet")->learned);
  EXPECT_FALSE(registry.Info("pgsql")->learned);
}

TEST_F(PipelineTest, RegistryUnknownNameFails) {
  EstimatorRegistry& registry = EstimatorRegistry::Global();
  auto model = registry.Create("no_such_estimator", {});
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kNotFound);
  // The error names the registered estimators so typos are debuggable.
  EXPECT_NE(model.status().message().find("qppnet"), std::string::npos);
  EXPECT_FALSE(registry.Info("no_such_estimator").ok());

  PipelineConfig cfg;
  cfg.estimator = "no_such_estimator";
  EXPECT_FALSE(ctx_->FitPipeline(cfg, train_).ok());
}

TEST_F(PipelineTest, RegistryRejectsBadRegistrations) {
  EstimatorRegistry& registry = EstimatorRegistry::Global();
  auto factory =
      [](const EstimatorContext&) -> Result<std::unique_ptr<CostModel>> {
    return Status::Internal("unused");
  };
  EXPECT_FALSE(registry.Register({"", "X", "x", true, false}, factory).ok());
  EXPECT_FALSE(
      registry.Register({"qppnet", "Dup", "dup", true, false}, factory)
          .ok());  // first registration wins
  EXPECT_FALSE(
      registry.Register({"null_factory", "N", "n", true, false}, nullptr)
          .ok());
}

TEST_F(PipelineTest, RegistryFactoriesValidateContext) {
  EstimatorRegistry& registry = EstimatorRegistry::Global();
  // Learned estimators need a featurizer (and MSCN a catalog); pgsql doesn't.
  EXPECT_FALSE(registry.Create("qppnet", {}).ok());
  EXPECT_FALSE(
      registry.Create("mscn", {ctx_->db->catalog(), nullptr, 1}).ok());
  EXPECT_TRUE(registry.Create("pgsql", {}).ok());
}

// ------------------------------------------------------------ batch parity

TEST_F(PipelineTest, QppNetBatchMatchesScalarBitForBit) {
  BaseFeaturizer featurizer(ctx_->db->catalog());
  auto model = EstimatorRegistry::Global().Create(
      "qppnet", {ctx_->db->catalog(), &featurizer, 11});
  ASSERT_TRUE(model.ok());
  TrainConfig tc;
  tc.epochs = 6;
  ASSERT_TRUE((*model)->Train(train_, tc, nullptr).ok());

  auto batch = (*model)->PredictBatchMs(test_);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), test_.size());
  for (size_t i = 0; i < test_.size(); ++i) {
    auto scalar = (*model)->PredictMs(*test_[i].plan, test_[i].env_id);
    ASSERT_TRUE(scalar.ok());
    EXPECT_EQ((*batch)[i], *scalar) << "sample " << i;  // bit-identical
  }
}

TEST_F(PipelineTest, MscnBatchMatchesScalarBitForBit) {
  BaseFeaturizer featurizer(ctx_->db->catalog());
  auto model = EstimatorRegistry::Global().Create(
      "mscn", {ctx_->db->catalog(), &featurizer, 13});
  ASSERT_TRUE(model.ok());
  TrainConfig tc;
  tc.epochs = 6;
  ASSERT_TRUE((*model)->Train(train_, tc, nullptr).ok());

  auto batch = (*model)->PredictBatchMs(test_);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), test_.size());
  for (size_t i = 0; i < test_.size(); ++i) {
    auto scalar = (*model)->PredictMs(*test_[i].plan, test_[i].env_id);
    ASSERT_TRUE(scalar.ok());
    EXPECT_EQ((*batch)[i], *scalar) << "sample " << i;  // bit-identical
  }
}

TEST_F(PipelineTest, BatchEdgeCases) {
  BaseFeaturizer featurizer(ctx_->db->catalog());
  auto model = EstimatorRegistry::Global().Create(
      "qppnet", {ctx_->db->catalog(), &featurizer, 17});
  ASSERT_TRUE(model.ok());
  // Untrained models refuse batches like they refuse single plans.
  EXPECT_FALSE((*model)->PredictBatchMs(test_).ok());
  TrainConfig tc;
  tc.epochs = 2;
  ASSERT_TRUE((*model)->Train(train_, tc, nullptr).ok());
  // Empty batches are fine.
  auto empty = (*model)->PredictBatchMs({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  // Null plans are rejected, not dereferenced.
  std::vector<PlanSample> bad = {{nullptr, 0, 0.0}};
  EXPECT_FALSE((*model)->PredictBatchMs(bad).ok());
}

TEST_F(PipelineTest, MlpScratchPredictMatchesAllocatingPredict) {
  Rng rng(3);
  Mlp mlp({6, 16, 16, 1}, Activation::kRelu, &rng);
  Matrix x(32, 6);
  x.RandomizeGaussian(&rng, 1.0);
  Matrix expected = mlp.Predict(x);
  Mlp::Scratch scratch;
  const Matrix& got = mlp.Predict(x, &scratch);
  ASSERT_EQ(got.rows(), expected.rows());
  ASSERT_EQ(got.cols(), expected.cols());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got.data()[i], expected.data()[i]);
  }
  // Scratch is reusable across calls.
  const Matrix& again = mlp.Predict(x, &scratch);
  EXPECT_EQ(again.At(0, 0), expected.At(0, 0));
}

// ------------------------------------------------------------------ facade

TEST_F(PipelineTest, FitPredictExplainEndToEnd) {
  PipelineConfig cfg;
  cfg.estimator = "qppnet";
  cfg.snapshot_scale = 1;
  cfg.pre_reduction_epochs = 6;
  cfg.train.epochs = 10;
  cfg.seed = 29;
  auto pipeline = ctx_->FitPipeline(cfg, train_);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  EXPECT_EQ((*pipeline)->name(), "QCFE(qpp)");

  // Scalar and batched serving agree bit for bit through the facade.
  auto batch = (*pipeline)->PredictBatch(test_);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), test_.size());
  for (size_t i = 0; i < test_.size(); ++i) {
    auto scalar = (*pipeline)->PredictMs(*test_[i].plan, test_[i].env_id);
    ASSERT_TRUE(scalar.ok());
    EXPECT_EQ((*batch)[i], *scalar);
  }

  std::string explain = (*pipeline)->Explain();
  EXPECT_NE(explain.find("QCFE(qpp)"), std::string::npos);
  EXPECT_NE(explain.find("snapshot"), std::string::npos);
  EXPECT_NE(explain.find("reduction"), std::string::npos);
}

TEST_F(PipelineTest, AnalyticalEstimatorSkipsQcfeStages) {
  PipelineConfig cfg;
  cfg.estimator = "pgsql";
  cfg.use_snapshot = true;   // ignored: nothing to snapshot
  cfg.use_reduction = true;  // ignored: no operator view
  auto pipeline = ctx_->FitPipeline(cfg, train_);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  EXPECT_EQ((*pipeline)->name(), "PGSQL");
  EXPECT_EQ((*pipeline)->snapshot_store(), nullptr);
  auto p = (*pipeline)->PredictMs(*test_[0].plan, test_[0].env_id);
  EXPECT_TRUE(p.ok());
}

TEST_F(PipelineTest, ExtendSnapshotsAndRetrain) {
  PipelineConfig cfg;
  cfg.estimator = "qppnet";
  cfg.snapshot_scale = 1;
  cfg.use_reduction = false;
  cfg.train.epochs = 4;
  auto pipeline = ctx_->FitPipeline(cfg, train_);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  size_t before = (*pipeline)->snapshot_store()->size();

  std::vector<Environment> h2 =
      EnvironmentSampler::Sample(2, HardwareProfile::H2(), 31);
  for (auto& e : h2) e.id += 100;
  double collect_ms = 0.0;
  ASSERT_TRUE((*pipeline)
                  ->ExtendSnapshots(h2, /*from_templates=*/true, 1, 37,
                                    &collect_ms)
                  .ok());
  EXPECT_EQ((*pipeline)->snapshot_store()->size(), before + 2);
  EXPECT_GT(collect_ms, 0.0);

  TrainConfig retrain;
  retrain.epochs = 2;
  TrainStats stats;
  ASSERT_TRUE((*pipeline)->Retrain(train_, retrain, &stats).ok());
  EXPECT_EQ(stats.loss_curve.size(), 2u);
}

TEST_F(PipelineTest, ExtendSnapshotsAssignsCollectionCost) {
  PipelineConfig cfg;
  cfg.estimator = "qppnet";
  cfg.snapshot_scale = 1;
  cfg.use_reduction = false;
  cfg.train.epochs = 2;
  auto pipeline = ctx_->FitPipeline(cfg, train_);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  const double total_before = (*pipeline)->snapshot_collection_ms();

  // `collect_ms` is an out-parameter with assign semantics: deliberately
  // garbage-initialize it and verify the garbage cannot leak through (the
  // old `+=` accumulate semantics would report ~1.2e8 ms here).
  std::vector<Environment> extra =
      EnvironmentSampler::Sample(2, HardwareProfile::H2(), 51);
  for (auto& e : extra) e.id += 200;
  double collect_ms = 123456789.0;
  ASSERT_TRUE((*pipeline)
                  ->ExtendSnapshots(extra, /*from_templates=*/true, 1, 53,
                                    &collect_ms)
                  .ok());
  EXPECT_GT(collect_ms, 0.0);
  EXPECT_LT(collect_ms, 1e8);

  // The pipeline-lifetime total still accumulates across extensions, and
  // the per-call output is exactly this call's contribution.
  std::vector<Environment> more =
      EnvironmentSampler::Sample(1, HardwareProfile::H2(), 57);
  for (auto& e : more) e.id += 300;
  const double total_mid = (*pipeline)->snapshot_collection_ms();
  EXPECT_EQ(total_mid, total_before + collect_ms);
  double second = -1.0;
  ASSERT_TRUE((*pipeline)
                  ->ExtendSnapshots(more, /*from_templates=*/true, 1, 59,
                                    &second)
                  .ok());
  EXPECT_GT(second, 0.0);
  EXPECT_EQ((*pipeline)->snapshot_collection_ms(), total_mid + second);
}

TEST_F(PipelineTest, ExtendSnapshotsNamesAndRefitsCacheCollisions) {
  PipelineConfig cfg;
  cfg.estimator = "qppnet";
  cfg.snapshot_scale = 1;
  cfg.use_reduction = false;
  cfg.train.epochs = 2;
  auto pipeline = ctx_->FitPipeline(cfg, train_);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  const SnapshotStore* store = (*pipeline)->snapshot_store();
  size_t before = store->size();

  // Re-collect an environment that Fit already snapshotted: the collision
  // must be detected and named, not silently last-write-wins.
  std::vector<Environment> overlap = {ctx_->envs.front()};
  Status st = (*pipeline)->ExtendSnapshots(overlap, /*from_templates=*/true,
                                           /*scale=*/1, /*seed=*/91);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
  EXPECT_NE(st.message().find(std::to_string(ctx_->envs.front().id)),
            std::string::npos)
      << st.ToString();

  // The environment was refit (invalidate + recompute), not dropped.
  EXPECT_EQ(store->size(), before);
  const FeatureSnapshot* first = store->Get(ctx_->envs.front().id);
  ASSERT_NE(first, nullptr);
  std::vector<double> coeffs;
  for (OpType op : AllOpTypes()) {
    for (double c : first->Get(op).coeffs) coeffs.push_back(c);
  }

  // Deterministic refit: a second collision with the same arguments lands
  // on bit-identical coefficients, regardless of what was cached before.
  Status again = (*pipeline)->ExtendSnapshots(overlap, /*from_templates=*/true,
                                              /*scale=*/1, /*seed=*/91);
  EXPECT_EQ(again.code(), StatusCode::kAlreadyExists);
  const FeatureSnapshot* second = store->Get(ctx_->envs.front().id);
  ASSERT_NE(second, nullptr);
  size_t i = 0;
  for (OpType op : AllOpTypes()) {
    for (double c : second->Get(op).coeffs) EXPECT_EQ(c, coeffs[i++]);
  }
}

TEST_F(PipelineTest, PipelineWithoutSnapshotRefusesExtension) {
  PipelineConfig cfg;
  cfg.estimator = "qppnet";
  cfg.use_snapshot = false;
  cfg.use_reduction = false;
  cfg.train.epochs = 2;
  auto pipeline = ctx_->FitPipeline(cfg, train_);
  ASSERT_TRUE(pipeline.ok());
  std::vector<Environment> h2 =
      EnvironmentSampler::Sample(1, HardwareProfile::H2(), 41);
  EXPECT_FALSE((*pipeline)->ExtendSnapshots(h2, true, 1, 43).ok());
}

}  // namespace
}  // namespace qcfe
