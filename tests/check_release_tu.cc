// Contract-macro semantics (util/check.h), release half.
//
// This TU forces QCFE_ENABLE_DCHECKS off before including check.h —
// regardless of build type — and proves the release guarantee: a disabled
// QCFE_DCHECK evaluates nothing (so it is free in kernel inner loops),
// while QCFE_CHECK stays live everywhere.
#undef QCFE_ENABLE_DCHECKS

#include "util/check.h"

#include <gtest/gtest.h>

namespace qcfe {
namespace {

TEST(CheckReleaseTest, DisabledDcheckEvaluatesNothing) {
  EXPECT_EQ(QCFE_DCHECKS_ENABLED, 0);
  int evals = 0;
  QCFE_DCHECK(++evals > 0, "must not run");
  QCFE_DCHECK(false, "must not abort");
  EXPECT_EQ(evals, 0);
}

TEST(CheckReleaseTest, DisabledDcheckStillTypeChecks) {
  // Compile-time proof: the dead branch still parses its operands, so a
  // dcheck referencing a renamed symbol breaks the build instead of
  // silently rotting. (Nothing to assert at runtime.)
  const bool flag = true;
  QCFE_DCHECK(flag, "type-checked, not evaluated");
}

TEST(CheckReleaseDeathTest, CheckStaysLiveWithoutDchecks) {
  EXPECT_DEATH(QCFE_CHECK(false, "always on"), "always on");
}

}  // namespace
}  // namespace qcfe
