// Annotated sync layer (util/sync.h), release half.
//
// Unlike check_release_tu.cc this TU must NOT force QCFE_ENABLE_DCHECKS
// off before including the header: Mutex::Lock/Unlock are *inline
// functions*, and two TUs compiling different bodies for them is an ODR
// violation (the linker would pick one arbitrarily, making the death
// tests in sync_test.cc flaky at best). The dcheck flag for sync.h is
// build-global; release behaviour is therefore asserted behind the
// runtime LockRankCheckingEnabled() query, and these tests skip
// themselves in a -DQCFE_ENABLE_DCHECKS=ON build where sync_test.cc's
// death tests take over.

#include "util/sync.h"

#include <gtest/gtest.h>

namespace qcfe {
namespace {

// Same deliberately-forbidden acquisition order as sync_test.cc; here it
// must run to completion. (Separate copy in this TU's anonymous
// namespace; the analysis is off because the order is the test.)
void AcquireOutOfOrderRelease(Mutex* hi,
                              Mutex* lo) QCFE_NO_THREAD_SAFETY_ANALYSIS {
  hi->Lock();
  lo->Lock();
  lo->Unlock();
  hi->Unlock();
}

TEST(SyncReleaseTest, RankCheckingFlagMatchesBuildLevelDchecks) {
  // sync.cc and this TU must agree on the one build-global flag; a
  // mismatch would mean someone reintroduced per-TU toggling.
  EXPECT_EQ(LockRankCheckingEnabled(), QCFE_DCHECKS_ENABLED == 1);
}

TEST(SyncReleaseTest, ReleaseBuildSkipsRankBookkeepingEntirely) {
  if (LockRankCheckingEnabled()) {
    GTEST_SKIP() << "dchecks build: the enabled half lives in sync_test.cc";
  }
  // A ranked Lock must not reach the checker core: the held-rank stack
  // stays empty, an inversion does not abort, and AssertHeld is silent
  // without an owner record — the "ranked mutex costs exactly a
  // std::mutex" guarantee from the sync.h header comment.
  Mutex server(lock_rank::kAsyncServerQueue);
  Mutex pool(lock_rank::kThreadPoolQueue);
  server.Lock();
  EXPECT_EQ(sync_internal::TopHeldRank(), kNoLockRank);
  server.Unlock();
  AcquireOutOfOrderRelease(&server, &pool);

  Mutex unheld;
  unheld.AssertHeld();  // no owner tracking: must not abort
}

}  // namespace
}  // namespace qcfe
