/// Unit tests for src/nn: matrix algebra, layer forward/backward consistency
/// against numerical gradients, MLP training convergence, optimizers, least
/// squares, scalers, serialization and input shrinking.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>

#include "nn/layers.h"
#include "nn/linalg.h"
#include "nn/matrix.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "nn/scaler.h"
#include "util/rng.h"
#include "util/stats.h"

namespace qcfe {
namespace {

TEST(MatrixTest, MatMulKnownValues) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix c = Matrix::MatMul(a, b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 154.0);
}

TEST(MatrixTest, MatMulBTMatchesExplicitTranspose) {
  Rng rng(5);
  Matrix a(4, 3), b(5, 3);
  a.RandomizeGaussian(&rng, 1.0);
  b.RandomizeGaussian(&rng, 1.0);
  Matrix direct = Matrix::MatMulBT(a, b);
  Matrix expect = Matrix::MatMul(a, b.Transposed());
  ASSERT_EQ(direct.rows(), expect.rows());
  for (size_t i = 0; i < direct.data().size(); ++i) {
    EXPECT_NEAR(direct.data()[i], expect.data()[i], 1e-12);
  }
}

TEST(MatrixTest, MatMulATMatchesExplicitTranspose) {
  Rng rng(6);
  Matrix a(4, 3), b(4, 5);
  a.RandomizeGaussian(&rng, 1.0);
  b.RandomizeGaussian(&rng, 1.0);
  Matrix direct = Matrix::MatMulAT(a, b);
  Matrix expect = Matrix::MatMul(a.Transposed(), b);
  for (size_t i = 0; i < direct.data().size(); ++i) {
    EXPECT_NEAR(direct.data()[i], expect.data()[i], 1e-12);
  }
}

TEST(MatrixTest, SelectRowsAndCols) {
  Matrix m(3, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Matrix r = m.SelectRows({2, 0});
  EXPECT_DOUBLE_EQ(r.At(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(r.At(1, 2), 3.0);
  Matrix c = m.SelectCols({1});
  ASSERT_EQ(c.cols(), 1u);
  EXPECT_DOUBLE_EQ(c.At(2, 0), 8.0);
}

TEST(MatrixTest, BroadcastAndColumnOps) {
  Matrix m(2, 2, {1, 2, 3, 4});
  Matrix row(1, 2, {10, 20});
  m.AddRowBroadcast(row);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 24.0);
  Matrix s = m.ColSum();
  EXPECT_DOUBLE_EQ(s.At(0, 0), 24.0);
  Matrix mean = m.ColMean();
  EXPECT_DOUBLE_EQ(mean.At(0, 1), 23.0);
}

TEST(MatrixTest, RowAccessors) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  auto row = m.Row(1);
  EXPECT_EQ(row, (std::vector<double>{4, 5, 6}));
  m.SetRow(0, {9, 9, 9});
  EXPECT_DOUBLE_EQ(m.At(0, 2), 9.0);
}

// Numerical gradient check helper: compares analytic input gradient of
// f(x) = sum(first output channel) with central differences.
void CheckInputGradient(Mlp* net, const Matrix& x, double tol) {
  Matrix analytic = net->InputGradient(x);
  const double eps = 1e-5;
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) {
      Matrix xp = x, xm = x;
      xp.At(r, c) += eps;
      xm.At(r, c) -= eps;
      double fp = net->Predict(xp).At(r, 0);
      double fm = net->Predict(xm).At(r, 0);
      double numeric = (fp - fm) / (2 * eps);
      EXPECT_NEAR(analytic.At(r, c), numeric, tol)
          << "at (" << r << "," << c << ")";
    }
  }
}

TEST(MlpTest, InputGradientMatchesNumericalTanh) {
  Rng rng(42);
  Mlp net({4, 8, 1}, Activation::kTanh, &rng);
  Matrix x(3, 4);
  x.RandomizeGaussian(&rng, 1.0);
  CheckInputGradient(&net, x, 1e-6);
}

TEST(MlpTest, InputGradientMatchesNumericalSigmoid) {
  Rng rng(43);
  Mlp net({5, 6, 6, 1}, Activation::kSigmoid, &rng);
  Matrix x(2, 5);
  x.RandomizeGaussian(&rng, 1.0);
  CheckInputGradient(&net, x, 1e-6);
}

TEST(MlpTest, InputGradientMatchesNumericalRelu) {
  Rng rng(44);
  Mlp net({4, 8, 1}, Activation::kRelu, &rng);
  // Keep inputs away from ReLU kinks for a clean finite-difference check.
  Matrix x(3, 4);
  x.RandomizeGaussian(&rng, 2.0);
  CheckInputGradient(&net, x, 1e-5);
}

TEST(MlpTest, WeightGradientMatchesNumerical) {
  Rng rng(45);
  Mlp net({3, 4, 1}, Activation::kTanh, &rng);
  Matrix x(5, 3);
  x.RandomizeGaussian(&rng, 1.0);
  std::vector<double> y{1, 2, 3, 4, 5};

  // Analytic: dL/dW for L = 0.5 * sum((out - y)^2), via a tape + sink.
  Mlp::Tape tape;
  Matrix out = net.Forward(x, &tape);
  Matrix grad(out.rows(), out.cols());
  for (size_t r = 0; r < out.rows(); ++r) grad.At(r, 0) = out.At(r, 0) - y[r];
  GradSink sink;
  sink.InitLike(net.Grads());
  net.Backward(grad, &tape, &sink);

  auto loss = [&]() {
    Matrix o = net.Predict(x);
    double acc = 0.0;
    for (size_t r = 0; r < o.rows(); ++r) {
      acc += 0.5 * (o.At(r, 0) - y[r]) * (o.At(r, 0) - y[r]);
    }
    return acc;
  };

  auto params = net.Params();
  const double eps = 1e-6;
  for (size_t p = 0; p < params.size(); ++p) {
    for (size_t k = 0; k < std::min<size_t>(params[p]->size(), 6); ++k) {
      double save = params[p]->data()[k];
      params[p]->data()[k] = save + eps;
      double lp = loss();
      params[p]->data()[k] = save - eps;
      double lm = loss();
      params[p]->data()[k] = save;
      EXPECT_NEAR(sink.slot(p).data()[k], (lp - lm) / (2 * eps), 1e-4);
    }
  }
}

TEST(MlpTest, LearnsLinearFunction) {
  Rng rng(46);
  Mlp net({2, 16, 1}, Activation::kRelu, &rng);
  AdamOptimizer opt(net.Params(), net.Grads(), 0.01);
  Matrix x(64, 2);
  x.RandomizeGaussian(&rng, 1.0);
  std::vector<double> y(64);
  for (size_t i = 0; i < 64; ++i) y[i] = 3.0 * x.At(i, 0) - 2.0 * x.At(i, 1) + 1.0;

  Mlp::Tape tape;
  GradSink sink;
  double last = 1e18;
  for (int epoch = 0; epoch < 400; ++epoch) {
    opt.ZeroGrad();
    sink.InitLike(net.Grads());
    Matrix out = net.Forward(x, &tape);
    Matrix grad(out.rows(), 1);
    double loss = 0.0;
    for (size_t r = 0; r < out.rows(); ++r) {
      double d = out.At(r, 0) - y[r];
      loss += d * d;
      grad.At(r, 0) = 2.0 * d / static_cast<double>(out.rows());
    }
    net.Backward(grad, &tape, &sink);
    sink.AddTo(net.Grads());
    opt.Step();
    last = loss / 64.0;
  }
  EXPECT_LT(last, 0.05);
}

TEST(MlpTest, TapeRecordsAllLayerInputs) {
  Rng rng(47);
  Mlp net({3, 5, 2}, Activation::kRelu, &rng);
  Matrix x(4, 3);
  x.RandomizeGaussian(&rng, 1.0);
  Mlp::Tape tape;
  Matrix out = net.Forward(x, &tape);
  // layers: Linear, ReLU, Linear -> 3 inputs + 1 output = 4 records.
  ASSERT_EQ(tape.activations.size(), net.num_layers() + 1);
  EXPECT_EQ(tape.activations.front().cols(), 3u);
  EXPECT_EQ(tape.activations.back().cols(), 2u);
  for (size_t i = 0; i < out.data().size(); ++i) {
    EXPECT_DOUBLE_EQ(out.data()[i], tape.activations.back().data()[i]);
  }
  // Predict must agree with the taped forward.
  Matrix p = net.Predict(x);
  for (size_t i = 0; i < out.data().size(); ++i) {
    EXPECT_DOUBLE_EQ(out.data()[i], p.data()[i]);
  }
}

TEST(MlpTest, InputGradientLeavesAccumulatedGradsUntouched) {
  // Regression for the documented InputGradient contract: the probe must
  // not disturb optimizer-bound parameter grads. With tape-based backprop
  // and a null sink they are never written at all, so the comparison is
  // byte-for-byte, not approximate.
  Rng rng(54);
  Mlp net({3, 8, 1}, Activation::kRelu, &rng);
  Matrix x(6, 3);
  x.RandomizeGaussian(&rng, 1.0);

  // Accumulate some nonzero parameter grads first.
  Mlp::Tape tape;
  Matrix out = net.Forward(x, &tape);
  Matrix grad(out.rows(), 1);
  for (size_t r = 0; r < out.rows(); ++r) grad.At(r, 0) = 1.0 + out.At(r, 0);
  GradSink sink;
  sink.InitLike(net.Grads());
  net.Backward(grad, &tape, &sink);
  sink.AddTo(net.Grads());

  std::vector<Matrix> before;
  for (Matrix* g : net.Grads()) before.push_back(*g);
  ASSERT_GT(before[0].Norm(), 0.0);

  Matrix probe = net.InputGradient(x);
  ASSERT_EQ(probe.rows(), x.rows());

  std::vector<Matrix*> after = net.Grads();
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < after.size(); ++i) {
    ASSERT_EQ(after[i]->data().size(), before[i].data().size());
    EXPECT_EQ(0, std::memcmp(after[i]->data().data(), before[i].data().data(),
                             before[i].data().size() * sizeof(double)))
        << "grad matrix " << i << " changed";
  }
}

TEST(MlpTest, SaveLoadRoundTrip) {
  Rng rng(48);
  Mlp net({4, 8, 2}, Activation::kRelu, &rng);
  Matrix x(3, 4);
  x.RandomizeGaussian(&rng, 1.0);
  Matrix before = net.Predict(x);

  std::stringstream ss;
  ASSERT_TRUE(net.Save(ss).ok());
  Mlp loaded;
  ASSERT_TRUE(loaded.Load(ss).ok());
  Matrix after = loaded.Predict(x);
  ASSERT_EQ(before.data().size(), after.data().size());
  for (size_t i = 0; i < before.data().size(); ++i) {
    EXPECT_NEAR(before.data()[i], after.data()[i], 1e-9);
  }
}

TEST(MlpTest, CloneIsIndependent) {
  Rng rng(49);
  Mlp net({2, 4, 1}, Activation::kRelu, &rng);
  Mlp copy = net.Clone();
  Matrix x(1, 2, {1.0, -1.0});
  EXPECT_DOUBLE_EQ(net.Predict(x).At(0, 0), copy.Predict(x).At(0, 0));
  // Mutate the original; the clone must not move.
  net.Params()[0]->data()[0] += 1.0;
  EXPECT_NE(net.Predict(x).At(0, 0), copy.Predict(x).At(0, 0));
}

TEST(MlpTest, ShrinkInputsKeepsSelectedColumnsBehaviour) {
  Rng rng(50);
  Mlp net({3, 6, 1}, Activation::kRelu, &rng);
  // If we only keep columns {0, 2}, predictions on inputs whose dropped
  // column was zero must be identical.
  Matrix x(4, 3);
  x.RandomizeGaussian(&rng, 1.0);
  for (size_t r = 0; r < 4; ++r) x.At(r, 1) = 0.0;
  Matrix before = net.Predict(x);
  ASSERT_TRUE(net.ShrinkInputs({0, 2}).ok());
  EXPECT_EQ(net.in_dim(), 2u);
  Matrix xs = x.SelectCols({0, 2});
  Matrix after = net.Predict(xs);
  for (size_t r = 0; r < 4; ++r) {
    EXPECT_NEAR(before.At(r, 0), after.At(r, 0), 1e-12);
  }
}

TEST(MlpTest, ShrinkInputsRejectsBadColumn) {
  Rng rng(51);
  Mlp net({3, 4, 1}, Activation::kRelu, &rng);
  EXPECT_FALSE(net.ShrinkInputs({0, 9}).ok());
}

TEST(OptimizerTest, SgdReducesQuadratic) {
  // Minimise f(w) = (w - 3)^2 with SGD.
  Matrix w(1, 1, {0.0});
  Matrix g(1, 1);
  SgdOptimizer opt({&w}, {&g}, 0.1, 0.9);
  for (int i = 0; i < 200; ++i) {
    g.At(0, 0) = 2.0 * (w.At(0, 0) - 3.0);
    opt.Step();
  }
  EXPECT_NEAR(w.At(0, 0), 3.0, 1e-3);
}

TEST(OptimizerTest, AdamReducesQuadratic) {
  Matrix w(1, 2, {5.0, -5.0});
  Matrix g(1, 2);
  AdamOptimizer opt({&w}, {&g}, 0.05);
  for (int i = 0; i < 2000; ++i) {
    g.At(0, 0) = 2.0 * (w.At(0, 0) - 1.0);
    g.At(0, 1) = 2.0 * (w.At(0, 1) + 2.0);
    opt.Step();
  }
  EXPECT_NEAR(w.At(0, 0), 1.0, 1e-2);
  EXPECT_NEAR(w.At(0, 1), -2.0, 1e-2);
}

TEST(OptimizerTest, ZeroGradClearsAll) {
  Matrix w(1, 1, {0.0});
  Matrix g(1, 1, {5.0});
  SgdOptimizer opt({&w}, {&g}, 0.1);
  opt.ZeroGrad();
  EXPECT_DOUBLE_EQ(g.At(0, 0), 0.0);
}

TEST(LinalgTest, CholeskySolveKnownSystem) {
  Matrix a(2, 2, {4, 2, 2, 3});
  std::vector<double> x;
  ASSERT_TRUE(CholeskySolve(a, {8, 7}, &x).ok());
  EXPECT_NEAR(x[0], 1.25, 1e-12);
  EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(LinalgTest, CholeskyRejectsNonSpd) {
  Matrix a(2, 2, {0, 0, 0, 0});
  std::vector<double> x;
  EXPECT_FALSE(CholeskySolve(a, {1, 1}, &x).ok());
}

TEST(LinalgTest, LeastSquaresRecoversExactLine) {
  // y = 2 n + 5 observed without noise -> coefficients recovered exactly.
  Matrix a(4, 2, {1, 1, 2, 1, 3, 1, 4, 1});
  auto r = LeastSquares(a, {7, 9, 11, 13});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value()[0], 2.0, 1e-9);
  EXPECT_NEAR(r.value()[1], 5.0, 1e-9);
}

TEST(LinalgTest, LeastSquaresNoisyRecovery) {
  Rng rng(52);
  size_t m = 200;
  Matrix a(m, 2);
  std::vector<double> y(m);
  for (size_t i = 0; i < m; ++i) {
    double n = rng.Uniform(1, 1000);
    a.At(i, 0) = n;
    a.At(i, 1) = 1.0;
    y[i] = (0.02 * n + 1.5) * rng.LognormalNoise(0.05);
  }
  auto r = LeastSquares(a, y);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value()[0], 0.02, 0.005);
  EXPECT_NEAR(r.value()[1], 1.5, 1.0);
}

TEST(LinalgTest, LeastSquaresHandlesRankDeficiency) {
  // Two identical columns: ridge fallback must still produce finite output.
  Matrix a(3, 2, {1, 1, 2, 2, 3, 3});
  auto r = LeastSquares(a, {2, 4, 6});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(std::isfinite(r.value()[0]));
  EXPECT_TRUE(std::isfinite(r.value()[1]));
  // The fitted function should still predict well.
  EXPECT_NEAR(r.value()[0] * 2 + r.value()[1] * 2, 4.0, 0.01);
}

TEST(LinalgTest, LeastSquaresRejectsEmpty) {
  Matrix a;
  EXPECT_FALSE(LeastSquares(a, {}).ok());
}

TEST(LinalgTest, NnlsKeepsCoefficientsNonNegative) {
  // Data generated with a negative slope: NNLS must clamp at zero.
  Matrix a(4, 2, {1, 1, 2, 1, 3, 1, 4, 1});
  auto r = NonNegativeLeastSquares(a, {10, 8, 6, 4});
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.value()[0], 0.0);
  EXPECT_GE(r.value()[1], 0.0);
}

TEST(LinalgTest, NnlsMatchesLsqWhenPositive) {
  Matrix a(4, 2, {1, 1, 2, 1, 3, 1, 4, 1});
  auto nn = NonNegativeLeastSquares(a, {7, 9, 11, 13});
  ASSERT_TRUE(nn.ok());
  EXPECT_NEAR(nn.value()[0], 2.0, 1e-4);
  EXPECT_NEAR(nn.value()[1], 5.0, 1e-3);
}

TEST(ScalerTest, StandardizesToZeroMeanUnitVar) {
  Rng rng(53);
  Matrix x(500, 3);
  for (size_t r = 0; r < x.rows(); ++r) {
    x.At(r, 0) = rng.Gaussian(10.0, 5.0);
    x.At(r, 1) = rng.Gaussian(-3.0, 0.5);
    x.At(r, 2) = 7.0;  // constant column
  }
  StandardScaler sc;
  Matrix t = sc.FitTransform(x);
  std::vector<double> c0(t.rows()), c2(t.rows());
  for (size_t r = 0; r < t.rows(); ++r) {
    c0[r] = t.At(r, 0);
    c2[r] = t.At(r, 2);
  }
  EXPECT_NEAR(Mean(c0), 0.0, 1e-9);
  EXPECT_NEAR(Stddev(c0), 1.0, 1e-9);
  // Constant column maps to exactly zero everywhere (not NaN).
  for (double v : c2) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ScalerTest, ShrinkToSubsetsStatistics) {
  Matrix x(3, 3, {1, 10, 100, 2, 20, 200, 3, 30, 300});
  StandardScaler sc;
  sc.Fit(x);
  ASSERT_TRUE(sc.ShrinkTo({2, 0}).ok());
  EXPECT_EQ(sc.dims(), 2u);
  EXPECT_DOUBLE_EQ(sc.mean()[0], 200.0);
  EXPECT_DOUBLE_EQ(sc.mean()[1], 2.0);
  EXPECT_FALSE(sc.ShrinkTo({5}).ok());
}

TEST(ScalerTest, LogTargetRoundTrip) {
  std::vector<double> y{0.5, 10.0, 250.0, 9000.0};
  LogTargetScaler sc;
  sc.Fit(y);
  auto t = sc.Transform(y);
  auto back = sc.InverseTransform(t);
  for (size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(back[i], y[i], 1e-6 * y[i] + 1e-9);
}

TEST(ScalerTest, LogTargetHandlesConstant) {
  LogTargetScaler sc;
  sc.Fit({5.0, 5.0, 5.0});
  EXPECT_NEAR(sc.InverseTransformOne(sc.TransformOne(5.0)), 5.0, 1e-9);
}

TEST(ScalerTest, ClampedPredictionsNeverGoNegative) {
  // Regression: the old clamp allowed `t_min - margin`, and for
  // sub-millisecond labels log1p(y) ~ y, so the margin crossed zero and
  // expm1 produced negative predicted latencies. The lower clamp now stops
  // at the smallest observed label.
  LogTargetScaler sc;
  sc.Fit({0.04, 0.05, 12.0});
  double lo = sc.InverseTransformOne(sc.ClampTransformed(-1e6));
  EXPECT_GE(lo, 0.0);
  EXPECT_NEAR(lo, 0.04, 1e-9);
  // Upward extrapolation keeps its log-space margin.
  double hi = sc.InverseTransformOne(sc.ClampTransformed(1e6));
  EXPECT_GT(hi, 12.0);
}

TEST(ScalerTest, SerializationRoundTrip) {
  Matrix x(3, 2, {1, 2, 3, 4, 5, 6});
  StandardScaler sc;
  sc.Fit(x);
  std::stringstream ss;
  ASSERT_TRUE(sc.Save(ss).ok());
  StandardScaler sc2;
  ASSERT_TRUE(sc2.Load(ss).ok());
  EXPECT_EQ(sc2.mean(), sc.mean());

  LogTargetScaler ls;
  ls.Fit({1.0, 2.0, 3.0});
  std::stringstream ss2;
  ASSERT_TRUE(ls.Save(ss2).ok());
  LogTargetScaler ls2;
  ASSERT_TRUE(ls2.Load(ss2).ok());
  EXPECT_DOUBLE_EQ(ls2.mean(), ls.mean());
  EXPECT_DOUBLE_EQ(ls2.stddev(), ls.stddev());
}

// Property-style sweep: input gradients match numerics across activations
// and widths.
struct GradCase {
  Activation act;
  size_t hidden;
};

class MlpGradSweep : public ::testing::TestWithParam<GradCase> {};

TEST_P(MlpGradSweep, InputGradientMatchesNumerical) {
  GradCase c = GetParam();
  Rng rng(1000 + static_cast<uint64_t>(c.hidden));
  Mlp net({3, c.hidden, 1}, c.act, &rng);
  Matrix x(2, 3);
  x.RandomizeGaussian(&rng, 1.5);
  CheckInputGradient(&net, x, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Activations, MlpGradSweep,
    ::testing::Values(GradCase{Activation::kTanh, 4},
                      GradCase{Activation::kTanh, 16},
                      GradCase{Activation::kSigmoid, 8},
                      GradCase{Activation::kRelu, 8},
                      GradCase{Activation::kRelu, 32}));

}  // namespace
}  // namespace qcfe
