/// Cross-module integration and property tests:
///  * environment invariance — knobs change plans and costs but never query
///    results (the fundamental correctness property of the planner/executor
///    pair, checked across all benchmarks and templates);
///  * end-to-end QCFE vs analytical baseline on every benchmark;
///  * failure injection across the public API.

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "harness/evaluate.h"
#include "sql/data_abstract.h"
#include "util/rng.h"
#include "workload/benchmark.h"
#include "workload/collector.h"

namespace qcfe {
namespace {

class EnvInvarianceSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(EnvInvarianceSweep, ResultsIdenticalAcrossEnvironments) {
  auto bench = MakeBenchmark(GetParam());
  ASSERT_TRUE(bench.ok());
  double scale = GetParam() == "tpch" ? 0.05 : 0.04;
  auto db = (*bench)->BuildDatabase(scale, 123);
  DataAbstract abstract(db->catalog());
  auto templates = (*bench)->Templates();

  // Environments chosen to maximise plan divergence.
  std::vector<Environment> envs(4);
  envs[0].hardware = HardwareProfile::H1();
  envs[1].hardware = HardwareProfile::Hdd();
  envs[1].knobs.enable_indexscan = false;
  envs[2].hardware = HardwareProfile::H2();
  envs[2].knobs.enable_hashjoin = false;
  envs[2].knobs.work_mem_kb = 64;
  envs[3].hardware = HardwareProfile::H1();
  envs[3].knobs.enable_mergejoin = false;
  envs[3].knobs.enable_nestloop = false;
  envs[3].knobs.jit = true;
  for (size_t i = 0; i < envs.size(); ++i) envs[i].id = static_cast<int>(i);

  Rng rng(7);
  size_t checked = 0;
  for (size_t t = 0; t < templates.size(); t += 3) {  // every 3rd template
    auto spec = templates[t].Instantiate(abstract, &rng);
    ASSERT_TRUE(spec.ok()) << templates[t].name;
    std::vector<size_t> row_counts;
    for (const auto& env : envs) {
      Rng noise(9);
      QueryRunResult run;
      auto rel = db->ExecuteForResult(*spec, env, &noise, &run);
      ASSERT_TRUE(rel.ok()) << templates[t].name << ": "
                            << rel.status().ToString();
      row_counts.push_back(rel->NumRows());
    }
    for (size_t i = 1; i < row_counts.size(); ++i) {
      EXPECT_EQ(row_counts[i], row_counts[0])
          << templates[t].name << " returned different results under env "
          << i << " (plans must differ, answers must not)";
    }
    ++checked;
  }
  EXPECT_GT(checked, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, EnvInvarianceSweep,
                         ::testing::Values("tpch", "joblight", "sysbench"));

class QcfePipelineSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(QcfePipelineSweep, QcfeBeatsAnalyticalBaselineEverywhere) {
  HarnessOptions opt = OptionsFor(GetParam(), RunScale::kQuick);
  opt.corpus_size = 300;
  opt.num_envs = 3;
  auto ctx = BenchmarkContext::Create(opt);
  ASSERT_TRUE(ctx.ok());
  std::vector<PlanSample> train, test;
  (*ctx)->Split(300, &train, &test);

  CellConfig pg{"PGSQL", "pgsql", false, 0, 0};
  auto pg_res = RunCell(ctx->get(), pg, train, test);
  ASSERT_TRUE(pg_res.ok());

  CellConfig qcfe{"QCFE(qpp)", "qppnet", true, opt.qpp_epochs, 0};
  auto qcfe_res = RunCell(ctx->get(), qcfe, train, test);
  ASSERT_TRUE(qcfe_res.ok()) << qcfe_res.status().ToString();

  // Order-of-magnitude gap on q-error, like the paper's Table IV.
  EXPECT_LT(qcfe_res->eval.summary.mean_qerror * 3.0,
            pg_res->eval.summary.mean_qerror)
      << GetParam();
  // Correlation must be clearly positive; the exact level at this tiny
  // corpus is benchmark-dependent (job-light is the noisiest, cf. Table IV).
  EXPECT_GT(qcfe_res->eval.summary.pearson, 0.25) << GetParam();
  // The pipeline actually engaged both components.
  ASSERT_NE(qcfe_res->pipeline, nullptr);
  EXPECT_GT(qcfe_res->pipeline->snapshot_store()->size(), 0u);
  EXPECT_GT(qcfe_res->pipeline->reduction().ReductionRatio(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, QcfePipelineSweep,
                         ::testing::Values("tpch", "joblight", "sysbench"));

TEST(FailureInjectionTest, GracefulErrorsAcrossTheApi) {
  auto bench = MakeBenchmark("sysbench");
  auto db = (*bench)->BuildDatabase(0.02, 1);
  Environment env;
  env.hardware = HardwareProfile::H1();
  Rng noise(1);

  // Unknown table.
  QuerySpec bad;
  bad.tables = {"no_such_table"};
  EXPECT_FALSE(db->Run(bad, env, &noise).ok());

  // Unknown filter column.
  QuerySpec bad_col;
  bad_col.tables = {"sbtest1"};
  Predicate p;
  p.column = {"sbtest1", "no_col"};
  p.op = CompareOp::kEq;
  p.literals = {Value(int64_t{1})};
  bad_col.filters = {p};
  auto run = db->Run(bad_col, env, &noise);
  EXPECT_FALSE(run.ok());

  // Collector with no templates / environments.
  std::vector<Environment> envs = {env};
  QueryCollector collector(db.get(), &envs);
  EXPECT_FALSE(collector.Collect({}, 10, 1).ok());
  std::vector<Environment> no_envs;
  QueryCollector empty_collector(db.get(), &no_envs);
  EXPECT_FALSE(
      empty_collector.Collect((*bench)->Templates(), 10, 1).ok());

  // Models refuse empty training sets and predict-before-train.
  BaseFeaturizer featurizer(db->catalog());
  EstimatorRegistry& registry = EstimatorRegistry::Global();
  auto qpp = registry.Create("qppnet", {db->catalog(), &featurizer, 1});
  ASSERT_TRUE(qpp.ok());
  EXPECT_FALSE((*qpp)->Train({}, TrainConfig{}, nullptr).ok());
  auto mscn = registry.Create("mscn", {db->catalog(), &featurizer, 1});
  ASSERT_TRUE(mscn.ok());
  EXPECT_FALSE((*mscn)->Train({}, TrainConfig{}, nullptr).ok());

  // Unknown estimator names fail loudly, in the registry and the pipeline.
  EXPECT_FALSE(registry.Create("no_such_model", {}).ok());

  // Reduction requires a trained model with a featurizer.
  auto pg = registry.Create("pgsql", {});
  ASSERT_TRUE(pg.ok());
  EXPECT_FALSE(ReduceFeatures(**pg, {}, ReductionConfig{}).ok());
}

TEST(DeterminismTest, EndToEndPipelineIsReproducible) {
  auto run_once = [](uint64_t seed) {
    auto bench = MakeBenchmark("sysbench");
    auto db = (*bench)->BuildDatabase(0.03, seed);
    auto envs = EnvironmentSampler::Sample(2, HardwareProfile::H1(), seed + 1);
    auto templates = (*bench)->Templates();
    QueryCollector collector(db.get(), &envs);
    auto corpus = collector.Collect(templates, 120, seed + 2);
    std::vector<PlanSample> train;
    for (const auto& q : corpus->queries) {
      train.push_back({q.plan.get(), q.env_id, q.total_ms});
    }
    PipelineConfig cfg;
    cfg.train.epochs = 5;
    cfg.seed = seed + 3;
    auto built = Pipeline::Fit(db.get(), &envs, &templates, cfg, train);
    return *(*built)->PredictMs(*train[0].plan, train[0].env_id);
  };
  EXPECT_DOUBLE_EQ(run_once(77), run_once(77));
  EXPECT_NE(run_once(77), run_once(78));
}

}  // namespace
}  // namespace qcfe
