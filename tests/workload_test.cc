/// Tests for src/workload: every benchmark builds, analyzes, and every
/// template instantiates/plans/executes across environments; the collector
/// produces balanced labeled corpora; splits are disjoint and exhaustive.

#include <gtest/gtest.h>

#include <set>

#include "sql/data_abstract.h"
#include "sql/simplified_templates.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workload/benchmark.h"
#include "workload/collector.h"

namespace qcfe {
namespace {

// Small scale factors keep the test fast while touching all code paths.
double TestScale(const std::string& name) {
  if (name == "tpch") return 0.08;
  if (name == "joblight") return 0.05;
  return 0.05;  // sysbench
}

class BenchmarkSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkSweep, BuildsAndAnalyzes) {
  auto bench = MakeBenchmark(GetParam());
  ASSERT_TRUE(bench.ok());
  auto db = (*bench)->BuildDatabase(TestScale(GetParam()), 7);
  ASSERT_NE(db, nullptr);
  EXPECT_GT(db->catalog()->num_tables(), 0u);
  for (const auto& t : db->catalog()->TableNames()) {
    const TableStats* ts = db->catalog()->GetStats(t);
    ASSERT_NE(ts, nullptr) << t;
    EXPECT_GT(ts->num_rows, 0u) << t;
    EXPECT_FALSE(ts->columns.empty()) << t;
  }
  EXPECT_GT(db->catalog()->TotalSizeMb(), 0.0);
}

TEST_P(BenchmarkSweep, EveryTemplateExecutesUnderSeveralEnvironments) {
  auto bench = MakeBenchmark(GetParam());
  ASSERT_TRUE(bench.ok());
  auto db = (*bench)->BuildDatabase(TestScale(GetParam()), 7);
  auto templates = (*bench)->Templates();
  ASSERT_FALSE(templates.empty());
  DataAbstract abstract(db->catalog());
  auto envs = EnvironmentSampler::Sample(4, HardwareProfile::H1(), 99);
  Rng rng(13);
  Rng noise(14);
  for (const auto& tmpl : templates) {
    for (const auto& env : envs) {
      auto spec = tmpl.Instantiate(abstract, &rng);
      ASSERT_TRUE(spec.ok()) << tmpl.name << ": " << spec.status().ToString();
      auto run = db->Run(*spec, env, &noise);
      ASSERT_TRUE(run.ok()) << tmpl.name << " env " << env.id << ": "
                            << run.status().ToString() << "\n"
                            << spec->ToString();
      EXPECT_GT(run->total_ms, 0.0);
      EXPECT_GT(run->plan->CountNodes(), 0u);
    }
  }
}

TEST_P(BenchmarkSweep, SimplifiedTemplatePipelineWorks) {
  auto bench = MakeBenchmark(GetParam());
  ASSERT_TRUE(bench.ok());
  auto db = (*bench)->BuildDatabase(TestScale(GetParam()), 7);
  SimplifiedTemplateGenerator gen(db->catalog());
  auto simplified = gen.Generate((*bench)->Templates());
  ASSERT_TRUE(simplified.ok());
  EXPECT_FALSE(simplified->empty());
  DataAbstract abstract(db->catalog());
  Rng rng(15);
  auto specs = gen.Fill(*simplified, abstract, 1, &rng);
  ASSERT_TRUE(specs.ok());
  Environment env;
  env.hardware = HardwareProfile::H1();
  Rng noise(16);
  for (const auto& spec : *specs) {
    auto run = db->Run(spec, env, &noise);
    ASSERT_TRUE(run.ok()) << spec.ToString() << ": "
                          << run.status().ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkSweep,
                         ::testing::Values("tpch", "joblight", "sysbench"));

TEST(BenchmarkTest, FactoryRejectsUnknown) {
  EXPECT_FALSE(MakeBenchmark("oracle").ok());
}

TEST(BenchmarkTest, TemplateCountsMatchPaper) {
  auto tpch = MakeBenchmark("tpch");
  auto joblight = MakeBenchmark("joblight");
  auto sysbench = MakeBenchmark("sysbench");
  ASSERT_TRUE(tpch.ok() && joblight.ok() && sysbench.ok());
  EXPECT_EQ((*tpch)->Templates().size(), 22u);    // TPC-H query templates
  EXPECT_EQ((*joblight)->Templates().size(), 70u);  // job-light queries
  EXPECT_EQ((*sysbench)->Templates().size(), 5u);   // oltp_read_only reads
}

TEST(BenchmarkTest, JobLightTemplatesAreDeterministic) {
  auto b1 = MakeBenchmark("joblight");
  auto b2 = MakeBenchmark("joblight");
  auto t1 = (*b1)->Templates();
  auto t2 = (*b2)->Templates();
  ASSERT_EQ(t1.size(), t2.size());
  for (size_t i = 0; i < t1.size(); ++i) EXPECT_EQ(t1[i].text, t2[i].text);
}

TEST(BenchmarkTest, TpchLineitemDatesCorrelateWithOrders) {
  auto bench = MakeBenchmark("tpch");
  auto db = (*bench)->BuildDatabase(0.05, 7);
  const Table* orders = db->catalog()->GetTable("orders");
  const Table* lineitem = db->catalog()->GetTable("lineitem");
  ASSERT_NE(orders, nullptr);
  ASSERT_NE(lineitem, nullptr);
  // l_shipdate > o_orderdate for the matching order.
  std::map<int64_t, int64_t> order_dates;
  auto ok_col = orders->schema().FindColumn("o_orderkey");
  auto od_col = orders->schema().FindColumn("o_orderdate");
  for (size_t r = 0; r < orders->num_rows(); ++r) {
    order_dates[std::get<int64_t>(orders->GetValue(r, *ok_col))] =
        std::get<int64_t>(orders->GetValue(r, *od_col));
  }
  auto lk_col = lineitem->schema().FindColumn("l_orderkey");
  auto sd_col = lineitem->schema().FindColumn("l_shipdate");
  for (size_t r = 0; r < std::min<size_t>(lineitem->num_rows(), 500); ++r) {
    int64_t ok = std::get<int64_t>(lineitem->GetValue(r, *lk_col));
    int64_t sd = std::get<int64_t>(lineitem->GetValue(r, *sd_col));
    EXPECT_GT(sd, order_dates.at(ok));
  }
}

TEST(BenchmarkTest, JobLightMovieIdsAreSkewed) {
  auto bench = MakeBenchmark("joblight");
  auto db = (*bench)->BuildDatabase(0.05, 7);
  const ColumnStats* cs = db->catalog()->GetColumnStats("cast_info", "movie_id");
  ASSERT_NE(cs, nullptr);
  // Zipf skew: the lowest histogram bucket carries far more than uniform.
  ASSERT_FALSE(cs->histogram.empty());
  double uniform_share = 1.0 / static_cast<double>(cs->histogram.size());
  double first_share = static_cast<double>(cs->histogram.front()) /
                       static_cast<double>(cs->num_rows);
  EXPECT_GT(first_share, 2.0 * uniform_share);
}

TEST(CollectorTest, CollectBalancesTemplatesAndEnvironments) {
  auto bench = MakeBenchmark("sysbench");
  auto db = (*bench)->BuildDatabase(0.05, 7);
  auto envs = EnvironmentSampler::Sample(4, HardwareProfile::H1(), 55);
  QueryCollector collector(db.get(), &envs);
  auto set = collector.Collect((*bench)->Templates(), 200, 77);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->queries.size(), 200u);
  EXPECT_GT(set->collection_ms, 0.0);

  std::map<size_t, int> per_template;
  std::map<int, int> per_env;
  for (const auto& q : set->queries) {
    per_template[q.template_index]++;
    per_env[q.env_id]++;
    EXPECT_NE(q.plan, nullptr);
    EXPECT_GT(q.total_ms, 0.0);
  }
  EXPECT_EQ(per_template.size(), 5u);
  EXPECT_EQ(per_env.size(), 4u);
  for (const auto& [t, c] : per_template) EXPECT_EQ(c, 40);
}

TEST(CollectorTest, RunSpecsUnderEnvKeepsOrder) {
  auto bench = MakeBenchmark("sysbench");
  auto db = (*bench)->BuildDatabase(0.05, 7);
  auto envs = EnvironmentSampler::Sample(2, HardwareProfile::H1(), 55);
  QueryCollector collector(db.get(), &envs);
  DataAbstract abstract(db->catalog());
  Rng rng(1);
  std::vector<QuerySpec> specs;
  for (const auto& t : (*bench)->Templates()) {
    auto s = t.Instantiate(abstract, &rng);
    ASSERT_TRUE(s.ok());
    specs.push_back(*s);
  }
  auto set = collector.RunSpecsUnderEnv(specs, envs[1], 3);
  ASSERT_TRUE(set.ok());
  ASSERT_EQ(set->queries.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(set->queries[i].template_index, i);
    EXPECT_EQ(set->queries[i].env_id, envs[1].id);
  }
}

TEST(CollectorTest, SplitIsDisjointAndExhaustive) {
  auto split = SplitIndices(100, 0.8, 3);
  EXPECT_EQ(split.train.size(), 80u);
  EXPECT_EQ(split.test.size(), 20u);
  std::set<size_t> all(split.train.begin(), split.train.end());
  for (size_t i : split.test) {
    EXPECT_EQ(all.count(i), 0u);
    all.insert(i);
  }
  EXPECT_EQ(all.size(), 100u);
}

TEST(CollectorTest, EnvironmentLatencySpreadIsMaterial) {
  // The Figure 1 premise: the same queries cost materially different amounts
  // under different knob configurations.
  auto bench = MakeBenchmark("sysbench");
  auto db = (*bench)->BuildDatabase(0.05, 7);
  auto envs = EnvironmentSampler::Sample(5, HardwareProfile::H1(), 313);
  DataAbstract abstract(db->catalog());
  auto templates = (*bench)->Templates();

  std::vector<double> env_means;
  for (const auto& env : envs) {
    Rng rng(19);  // same query values for every environment
    Rng noise(20);
    std::vector<double> costs;
    for (int i = 0; i < 60; ++i) {
      const auto& tmpl = templates[static_cast<size_t>(i) % templates.size()];
      auto spec = tmpl.Instantiate(abstract, &rng);
      ASSERT_TRUE(spec.ok());
      auto run = db->Run(*spec, env, &noise);
      ASSERT_TRUE(run.ok());
      costs.push_back(run->total_ms);
    }
    env_means.push_back(Mean(costs));
  }
  double lo = *std::min_element(env_means.begin(), env_means.end());
  double hi = *std::max_element(env_means.begin(), env_means.end());
  EXPECT_GT(hi / lo, 1.5) << "environments too homogeneous";
}

}  // namespace
}  // namespace qcfe
